(* The §2.2 global-flow channels, and what each mechanism sees.

   Three analysers look at the same two leaky programs:

   - Denning & Denning (1977): direct + local indirect flows only. Misses
     both channels — this is precisely the gap the paper closes.
   - CFM (the paper): tracks global flows from conditional termination and
     synchronization. Rejects both.
   - the dynamic taint monitor: per-run tracking; sees some schedules,
     provably cannot see others.

   Plus §5.2's converse case: a program CFM rejects that the flow logic
   (and the runtime) can show secure.

   Run with: dune exec examples/covert_channels.exe *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Ast = Ifc_lang.Ast
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Denning = Ifc_core.Denning
module Paper = Ifc_core.Paper
module Taint = Ifc_exec.Taint
module Ni = Ifc_exec.Noninterference
module Check = Ifc_logic.Check
module Invariance = Ifc_logic_gen.Invariance

let banner title = Fmt.pr "@.=== %s ===@." title

let two = Chain.two

let low = two.Lattice.bottom

let high = two.Lattice.top

let verdict b = if b then "CERTIFIED" else "REJECTED"

let compare_mechanisms name binding (p : Ast.program) =
  banner name;
  Fmt.pr "%s@.@." (Ifc_lang.Pretty.program_to_string p);
  Fmt.pr "binding: %a@." Binding.pp binding;
  Fmt.pr "  Denning & Denning : %s@."
    (verdict (Denning.certified ~on_concurrency:`Ignore binding p.Ast.body));
  Fmt.pr "  CFM               : %s@." (verdict (Cfm.certified binding p.Ast.body))

let () =
  (* ---------------- channel 1: conditional termination --------------- *)
  let b_loop = Binding.make two [ ("x", high); ("y", high); ("z", low) ] in
  compare_mechanisms "channel 1: the termination channel (2.2)" b_loop Paper.sec22_loop;
  Fmt.pr
    "@.z := 1 runs only if the loop over the high variable x terminates;@ whether z \
     changes is an observation of x. Denning's mechanism has no@ notion of this; \
     CFM's flow(while) = sbind(x) reaches mod(z := 1) and@ fails.@.";

  (* Make the leak visible to the empirical tester through a variable:
     with y low, the loop's per-iteration write y := y + 1 lets the low
     observer count iterations — the same high condition, observed. *)
  let b_loop_y = Binding.make two [ ("x", high); ("y", low); ("z", low) ] in
  let r = Ni.test ~pairs:6 ~observer:low b_loop_y Paper.sec22_loop in
  Fmt.pr
    "with y also low (the loop's counter observable): %d violations in %d pairs@."
    (List.length r.Ni.violations)
    r.Ni.pairs_tested;

  (* ---------------- channel 2: synchronization ----------------------- *)
  (* sem is bound high so Denning's local if-check passes — the leak then
     travels wholly through the synchronization, which only CFM tracks. *)
  let b_sem = Binding.make two [ ("x", high); ("y", low); ("sem", high) ] in
  compare_mechanisms "channel 2: the synchronization channel (2.2)" b_sem
    Paper.sec22_semaphore;
  Fmt.pr
    "@.y := 0 executes only if the signal conditioned on x arrives. Denning@ clears \
     the if (sem is high) and sees nothing else; CFM's flow(wait(sem))@ = \
     sbind(sem) = high reaches mod(y := 0) = low and fails.@.";
  let r =
    Ni.test ~termination:`Sensitive ~pairs:6 ~observer:low b_sem Paper.sec22_semaphore
  in
  Fmt.pr
    "termination-sensitive noninterference test: %d violations in %d pairs@ (the \
     observable difference is deadlock itself)@."
    (List.length r.Ni.violations)
    r.Ni.pairs_tested;

  (* ---------------- the 4.2 micro-examples --------------------------- *)
  banner "the 4.2 certification checks";
  let show name src binding =
    let p =
      match Ifc_lang.Parser.parse_program src with
      | Ok p -> p
      | Error e -> Fmt.failwith "parse: %a" Ifc_lang.Parser.pp_error e
    in
    Fmt.pr "%-44s %s@." name (verdict (Cfm.certified binding p.Ast.body))
  in
  let sem_high_y_low = Binding.make two [ ("sem", high); ("y", low) ] in
  let sem_low_y_low = Binding.make two [ ("sem", low); ("y", low) ] in
  show "while true do {y:=y+1; wait(sem)}, sem high:"
    "var y : integer; sem : semaphore initially(0); while true do begin y := y + 1; wait(sem) end"
    sem_high_y_low;
  show "same, sem low:"
    "var y : integer; sem : semaphore initially(0); while true do begin y := y + 1; wait(sem) end"
    sem_low_y_low;
  show "begin wait(sem); y := 1 end, sem high:"
    "var y : integer; sem : semaphore initially(0); begin wait(sem); y := 1 end"
    sem_high_y_low;
  show "begin y := 1; wait(sem) end (reversed):"
    "var y : integer; sem : semaphore initially(0); begin y := 1; wait(sem) end"
    sem_high_y_low;

  (* ---------------- the dynamic monitor's blind spot ----------------- *)
  banner "dynamic monitoring sees only the executed schedule";
  let leaky_fig3 =
    Binding.make two (("x", high) :: List.map (fun v -> (v, low)) (List.tl Paper.fig3_vars))
  in
  List.iter
    (fun x ->
      let r = Taint.run ~strategy:`Round_robin ~inputs:[ ("x", x) ] leaky_fig3 Paper.fig3 in
      Fmt.pr "fig3 with x = %d: monitor %s@." x
        (if List.mem_assoc "y" r.Taint.violations then "flags y (tainted write observed)"
         else "sees nothing (the leak is in the ordering, not any executed write)"))
    [ 0; 1 ];

  (* ---------------- 5.2: CFM is conservative ------------------------- *)
  banner "the other direction (5.2): a secure program CFM rejects";
  Fmt.pr "%s@.@." (Ifc_lang.Pretty.program_to_string Paper.sec52);
  let b52 = Binding.make two [ ("x", high); ("y", low) ] in
  Fmt.pr "CFM: %s (x := 0 lowers x's actual class, but sbind is static)@."
    (verdict (Cfm.certified b52 Paper.sec52.Ast.body));
  let r = Ni.test ~pairs:4 ~observer:low b52 Paper.sec52 in
  Fmt.pr "noninterference test: %d violations (the program is in fact secure)@."
    (List.length r.Ni.violations);
  let t = Taint.run ~strategy:`Leftmost b52 Paper.sec52 in
  Fmt.pr "dynamic monitor: %d violations@." (List.length t.Taint.violations);
  (match Invariance.witness b52 Paper.sec52.Ast.body with
  | Ok _ -> Fmt.pr "completely invariant flow proof: exists (unexpected!)@."
  | Error _ ->
    Fmt.pr
      "completely invariant flow proof: none — but a proof with the intermediate@ \
      \ assertion class(x) <= low after x := 0 exists (see test_logic.ml): the@ \
      \ logic is strictly stronger than CFM, Theorem 2's converse boundary.@.")
