(* Quickstart: the 60-second tour of the public API.

   Build a small parallel program (once from source text, once with the
   AST combinators), certify it against a two-point lattice with the
   Concurrent Flow Mechanism, inspect the failing checks, and ask the
   Theorem-1 machinery for the matching flow proof.

   Run with: dune exec examples/quickstart.exe *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Ast = Ifc_lang.Ast
module Parser = Ifc_lang.Parser
module Pretty = Ifc_lang.Pretty
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Report = Ifc_core.Report
module Invariance = Ifc_logic_gen.Invariance
module Proof = Ifc_logic.Proof

let banner title = Fmt.pr "@.=== %s ===@." title

(* 1. Parse a program. The concrete syntax is the paper's language. *)
let source =
  {|
var secret, public : integer;
    ready : semaphore initially(0);
cobegin
  begin public := 2 * public + 1; signal(ready) end
  || begin wait(ready); secret := secret + public end
coend
|}

let program =
  match Parser.parse_program source with
  | Ok p -> p
  | Error e -> Fmt.failwith "parse error: %a" Parser.pp_error e

(* 2. Pick a classification scheme and a static binding. *)
let two = Chain.two

let low = two.Lattice.bottom

let high = two.Lattice.top

let binding =
  Binding.make two [ ("secret", high); ("public", low); ("ready", low) ]

let () =
  banner "program";
  Fmt.pr "%s@." (Pretty.program_to_string program);

  (* 3. Certify with CFM. This binding is fine: information only flows
     upward (public -> secret). *)
  banner "CFM certification (secret=high, public=low, ready=low)";
  let result = Cfm.analyze_program binding program in
  Fmt.pr "%a@." (Report.pp_result two) result;

  (* 4. Now leak: route the secret back into public view. *)
  banner "a leaky variant";
  let leaky =
    match
      Parser.parse_program
        {|
var secret, public : integer;
    ready : semaphore initially(0);
cobegin
  begin if secret > 0 then signal(ready) fi end
  || begin wait(ready); public := 1 end
coend
|}
    with
    | Ok p -> p
    | Error e -> Fmt.failwith "parse error: %a" Parser.pp_error e
  in
  let leaky_binding =
    Binding.make two [ ("secret", high); ("public", low); ("ready", low) ]
  in
  let result = Cfm.analyze_program leaky_binding leaky in
  Fmt.pr "%a@." (Report.pp_result two) result;
  Fmt.pr
    "@.The wait/signal pair carries information about `secret` into `public`:@ the \
     if-check and the composition check above catch it.@.";

  (* 5. The same verdicts, via the flow logic (Theorems 1 + 2): a
     completely invariant flow proof exists exactly when CFM certifies. *)
  banner "flow proofs (Theorem 1)";
  (match Invariance.witness binding program.Ast.body with
  | Ok proof ->
    Fmt.pr "secure version: proof found with %d rule applications@." (Proof.size proof)
  | Error _ -> Fmt.pr "secure version: UNEXPECTED proof failure@.");
  (match Invariance.witness leaky_binding leaky.Ast.body with
  | Ok _ -> Fmt.pr "leaky version: UNEXPECTED proof@."
  | Error errors ->
    Fmt.pr "leaky version: no proof — %d checker complaints, the first at %a@."
      (List.length errors)
      Ifc_lang.Loc.pp (List.hd errors).Ifc_logic.Check.span);

  (* 6. Programs can also be built with combinators. *)
  banner "AST combinators";
  let built =
    Ast.seq
      [
        Ast.assign "public" Ast.Infix.(Ast.var "public" + Ast.int 1);
        Ast.if_then
          Ast.Infix.(Ast.var "secret" = Ast.int 0)
          (Ast.assign "secret" (Ast.int 1));
      ]
  in
  let p = Ifc_lang.Wellformed.infer_decls (Ast.program built) in
  Fmt.pr "%s@.certified: %b@." (Pretty.program_to_string p)
    (Cfm.certified binding p.Ast.body)
