(* Benchmark and reproduction harness.

   One executable regenerates every figure, theorem, and quantitative
   claim of the paper (see DESIGN.md §5 for the experiment index):

     F2        the Figure 2 mod/flow/cert table, computed
     F3        the Figure 3 verdict matrix and §4.3 requirement chain
     T1/T2     Theorems 1 + 2: CFM certification <=> checked flow proof,
               over a random corpus
     S52       relative strength: CFM-rejected but semantically secure
     C1        §6's complexity claim: certification time is linear in
               program length (Denning, CFM, proof generation+checking)
     SND       empirical soundness: certified programs pass the
               (termination-insensitive) noninterference test
     PIPE      the batch pipeline: throughput at 1/2/4 domains with
               verdict-multiset determinism, and result-cache hit rates
     STORE     the persistent artifact store: cold vs warm vs
               one-line-edit incremental certification rates, and the
               spine-only recompute claim
     MODSYS    compositional certification: store-backed linking whose
               cost follows interface size rather than module body
               size, and the one-module-edit recompute claim
     FUZZ      the differential fuzzing campaign: cases/s through the
               full analyzer matrix, oracle skip rate, and the cost of
               shrinking a planted soundness inversion
     LINT      the static concurrency analyzer: statements/s and
               findings/s over a cobegin-heavy corpus
     CERT      proof certificates: emission and independent re-check
               throughput, certificate bytes per program statement
     SERVER    the certification daemon: concurrent clients over a Unix
               socket, shared-cache hit rate and latency quantiles
     micro     Bechamel micro-benchmarks of every analysis entry point

   Usage: dune exec bench/main.exe [-- SECTION ...]
   Sections: tables fig3 theorems strength scaling ni pipeline store
   modsys fuzz lint cert server micro all
   (default all). Add "quick" to shrink corpus and sweep sizes.

   Besides the human tables, every section prints one or more
   machine-readable lines of the form

     {"section": "scaling", "metric": "cfm_ns_per_node_ratio", "value": 1.1}

   so successive PRs can track the performance trajectory by grepping
   bench output into BENCH_*.json files. *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Extended = Ifc_lattice.Extended
module Mls = Ifc_lattice.Mls
module Ast = Ifc_lang.Ast
module Parser = Ifc_lang.Parser
module Gen = Ifc_lang.Gen
module Metrics = Ifc_lang.Metrics
module Prng = Ifc_support.Prng
module Sset = Ifc_support.Sset
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Denning = Ifc_core.Denning
module Infer = Ifc_core.Infer
module Paper = Ifc_core.Paper
module Generate = Ifc_logic_gen.Generate
module Check = Ifc_logic.Check
module Invariance = Ifc_logic_gen.Invariance
module Entail = Ifc_logic.Entail
module Scheduler = Ifc_exec.Scheduler
module Ni = Ifc_exec.Noninterference
module Campaign = Ifc_fuzz.Campaign
module Job = Ifc_pipeline.Job
module Cache = Ifc_pipeline.Cache
module Batch = Ifc_pipeline.Batch

let two = Chain.two

let low = two.Lattice.bottom

let high = two.Lattice.top

let banner title =
  Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '-')

(* Machine-readable metric lines, one JSON object per line, greppable
   into BENCH_*.json by future PRs tracking the perf trajectory. *)
let metric section name value =
  Fmt.pr "{\"section\": %S, \"metric\": %S, \"value\": %s}@." section name value

let metric_i section name v = metric section name (string_of_int v)

let metric_f section name v = metric section name (Printf.sprintf "%.4f" v)

let random_binding rng lattice stmt =
  let arr = Array.of_list lattice.Lattice.elements in
  Binding.make lattice
    (List.map
       (fun v -> (v, arr.(Prng.int rng (Array.length arr))))
       (Sset.elements (Ifc_lang.Vars.all_vars stmt)))

(* ------------------------------------------------------------------ *)
(* F2: the Figure 2 table, computed over canonical statements. *)

let fig2_table () =
  banner "F2: Figure 2, computed (two-point lattice; e high, x/y low, sem high)";
  let b =
    Binding.make two [ ("e", high); ("x", low); ("y", low); ("sem", high) ]
  in
  let rows =
    [
      ("x := e", "x := e");
      ("x := 1", "x := 1");
      ("if e then x:=1 else y:=1", "if e = 0 then x := 1 else y := 1");
      ("if x then y:=1 (low cond)", "if x = 0 then y := 1 fi");
      ("while e do x := 1", "while e = 0 do x := 1");
      ("while x do y := 1 (low)", "while x = 0 do y := 1");
      ("begin wait(sem); y:=1 end", "begin wait(sem); y := 1 end");
      ("begin y:=1; wait(sem) end", "begin y := 1; wait(sem) end");
      ("cobegin wait(sem) || y:=1", "cobegin wait(sem) || y := 1 coend");
      ("wait(sem)", "wait(sem)");
      ("signal(sem)", "signal(sem)");
      ("skip", "skip");
    ]
  in
  Fmt.pr "%-30s %-6s %-6s %s@." "statement" "mod" "flow" "cert";
  let certified = ref 0 in
  List.iter
    (fun (label, src) ->
      match Parser.parse_stmt src with
      | Error e -> Fmt.pr "%s: parse error %a@." label Parser.pp_error e
      | Ok s ->
        let r = Cfm.analyze b s in
        if r.Cfm.certified then incr certified;
        Fmt.pr "%-30s %-6s %-6s %b@." label (two.Lattice.to_string r.Cfm.mod_)
          (Fmt.str "%a" (Extended.pp two) r.Cfm.flow)
          r.Cfm.certified)
    rows;
  metric_i "tables" "certified_rows" !certified

(* ------------------------------------------------------------------ *)
(* F3: the Figure 3 matrix and requirement chain. *)

let fig3_report () =
  banner "F3: Figure 3 with sbind(x), sbind(y) fixed and everything else free";
  (* CFM column: does ANY binding certify with these two endpoints fixed
     (solved by inference)? Denning column: its verdict on the binding
     most favourable to it (intermediaries escalated so its local checks
     pass) — exposing that it never sees the synchronization leak.
     Logic column: a completely invariant proof exists for the inferred /
     favourable binding. *)
  let denning_friendly x_cls y_cls =
    Binding.make two
      [
        ("x", x_cls); ("y", y_cls); ("m", low); ("modify", high);
        ("modified", high); ("read", low); ("done", low);
      ]
  in
  Fmt.pr "%-10s %-10s %-24s %-22s %s@." "sbind(x)" "sbind(y)" "CFM (any binding)"
    "Denning (favourable)" "proof (CFM binding)";
  List.iter
    (fun (x_cls, y_cls) ->
      let fixed = [ ("x", x_cls); ("y", y_cls) ] in
      let cfm_possible = Infer.infer two ~fixed Paper.fig3 in
      let denning_ok =
        Denning.certified ~on_concurrency:`Ignore (denning_friendly x_cls y_cls)
          Paper.fig3.Ast.body
      in
      let proof =
        match cfm_possible with
        | Ok b -> Invariance.decide b Paper.fig3.Ast.body
        | Error _ -> false
      in
      Fmt.pr "%-10s %-10s %-24s %-22s %b@." (two.Lattice.to_string x_cls)
        (two.Lattice.to_string y_cls)
        (match cfm_possible with
        | Ok _ -> "certifiable"
        | Error _ -> "NO binding certifies")
        (if denning_ok then "certified (leak missed)" else "rejected")
        proof)
    [ (low, low); (low, high); (high, low); (high, high) ];
  Fmt.pr "@.requirement chain (4.3): any certified binding satisfies@.";
  let cs = Infer.constraints Paper.fig3.Ast.body in
  let wanted =
    [
      "sbind(x) <= sbind(modify)";
      "sbind(modify) <= sbind(m)";
      "sbind(m) <= sbind(y)";
    ]
  in
  let derived = ref 0 in
  List.iter
    (fun w ->
      let present =
        List.exists (fun c -> String.equal (Fmt.str "%a" Infer.pp_constr c) w) cs
      in
      if present then incr derived;
      Fmt.pr "  %-34s %s@." w (if present then "derived" else "MISSING"))
    wanted;
  metric_i "fig3" "chain_derived" !derived

(* ------------------------------------------------------------------ *)
(* T1/T2: the equivalence, quantified over a corpus. *)

let theorems ~corpus () =
  banner
    (Printf.sprintf
       "T1/T2: CFM certification <=> completely invariant flow proof (%d programs \
        per lattice)"
       corpus);
  let lattices =
    [ ("two-point", Lattice.stringify two); ("mls", Lattice.stringify Mls.standard) ]
  in
  List.iter
    (fun (name, lat) ->
      let rng = Prng.create 7 in
      let certified = ref 0 and agree = ref 0 and total = ref 0 in
      for i = 1 to corpus do
        let p = Gen.program rng Gen.default ~size:(1 + (i mod 30)) in
        let b = random_binding rng lat p.Ast.body in
        let cert = Cfm.certified b p.Ast.body in
        let proof = Invariance.decide b p.Ast.body in
        incr total;
        if cert then incr certified;
        if Bool.equal cert proof then incr agree
      done;
      Fmt.pr "%-10s programs: %d  certified: %d (%.0f%%)  agreement: %d/%d%s@." name
        !total !certified
        (100. *. float_of_int !certified /. float_of_int !total)
        !agree !total
        (if !agree = !total then "  [theorems hold]" else "  [DIVERGENCE!]");
      metric_f "theorems"
        (name ^ "_agreement_pct")
        (100. *. float_of_int !agree /. float_of_int !total))
    lattices

(* ------------------------------------------------------------------ *)
(* S52: relative strength — secure but rejected. *)

let strength ~corpus () =
  banner "S52: relative strength — CFM-rejected programs that are semantically secure";
  Fmt.pr "(sequential fragment over the two-point lattice)@.";
  let rng = Prng.create 11 in
  let rejected = ref 0 and secure_rejected = ref 0 and tested = ref 0 in
  let cfg = { Gen.sequential with Gen.max_depth = 3 } in
  for i = 1 to corpus do
    let p = Gen.program rng cfg ~size:(2 + (i mod 8)) in
    let b = random_binding rng two p.Ast.body in
    if not (Cfm.certified b p.Ast.body) then begin
      incr rejected;
      let r = Ni.test ~seed:i ~pairs:4 ~max_states:3000 ~observer:low b p in
      if r.Ni.pairs_tested > 0 then begin
        incr tested;
        if Ni.secure r then incr secure_rejected
      end
    end
  done;
  Fmt.pr "rejected by CFM: %d;  of %d testable, empirically secure: %d (%.0f%%)@."
    !rejected !tested !secure_rejected
    (if !tested = 0 then 0.
     else 100. *. float_of_int !secure_rejected /. float_of_int !tested);
  Fmt.pr
    "The paper's 5.2 example is in this class: x := 0; y := x with x high, y@ low \
     is rejected yet secure (the flow logic proves it; CFM cannot).@.";
  metric_i "strength" "rejected" !rejected;
  metric_f "strength" "secure_rejected_pct"
    (if !tested = 0 then 0.
     else 100. *. float_of_int !secure_rejected /. float_of_int !tested)

(* ------------------------------------------------------------------ *)
(* ABL: mechanism ablation — acceptance rates across analysers. *)

let ablation ~corpus () =
  banner "ABL: acceptance rates of the three mechanisms (same corpus and bindings)";
  let rng = Prng.create 99 in
  let denning_n = ref 0 and cfm_n = ref 0 and fs_n = ref 0 and total = ref 0 in
  let inversions = ref 0 in
  for i = 1 to corpus do
    let p = Gen.program rng Gen.default ~size:(1 + (i mod 25)) in
    let b = random_binding rng two p.Ast.body in
    incr total;
    let den = Denning.certified ~on_concurrency:`Ignore b p.Ast.body in
    let cfm = Cfm.certified b p.Ast.body in
    let fs = Ifc_core.Flow_sensitive.certified b p.Ast.body in
    if den then incr denning_n;
    if cfm then incr cfm_n;
    if fs then incr fs_n;
    (* Expected containment: CFM ⊆ Denning (misses channels) and
       CFM ⊆ flow-sensitive (more precise). *)
    if (cfm && not den) || (cfm && not fs) then incr inversions
  done;
  let pct n = 100. *. float_of_int n /. float_of_int !total in
  Fmt.pr "%-36s %6d/%d (%.0f%%)@." "Denning & Denning (no global flows):" !denning_n
    !total (pct !denning_n);
  Fmt.pr "%-36s %6d/%d (%.0f%%)@." "CFM (the paper):" !cfm_n !total (pct !cfm_n);
  Fmt.pr "%-36s %6d/%d (%.0f%%)@." "flow-sensitive (6.0 extension):" !fs_n !total
    (pct !fs_n);
  Fmt.pr "containment violations: %d%s@." !inversions
    (if !inversions = 0 then "  [CFM <= Denning and CFM <= FS hold]" else "  [BUG]");
  Fmt.pr
    "@.Denning accepts more than CFM only because it is blind to global@ flows — \
     every extra acceptance is a potential synchronization or@ termination leak. \
     The flow-sensitive extension accepts more than CFM@ soundly, by tracking \
     current classes.@.";
  metric_f "ablation" "cfm_accept_pct" (pct !cfm_n);
  metric_i "ablation" "containment_violations" !inversions

(* ------------------------------------------------------------------ *)
(* C1: linear-time claim. *)

let time_one f =
  (* Median of 5 timed runs, CPU seconds. *)
  let runs =
    List.init 5 (fun _ ->
        let t0 = Sys.time () in
        ignore (Sys.opaque_identity (f ()));
        Sys.time () -. t0)
  in
  match List.sort compare runs with
  | _ :: _ :: m :: _ -> m
  | m :: _ -> m
  | [] -> 0.

let scaling ~sizes () =
  banner "C1: certification time vs program length (the 6.0 linearity claim)";
  Fmt.pr "%-10s %-10s %12s %12s %12s %14s@." "size" "length" "denning" "cfm"
    "infer" "proof(gen+chk)";
  Fmt.pr "%-10s %-10s %12s %12s %12s %14s@." "(stmts)" "(nodes)" "(us)" "(us)" "(us)"
    "(us)";
  let rows =
    List.map
      (fun size ->
        let rng = Prng.create 42 in
        let p = Gen.program rng Gen.default ~size in
        let b = random_binding rng two p.Ast.body in
        let length = Metrics.length p in
        let t_den =
          time_one (fun () -> Denning.certified ~on_concurrency:`Ignore b p.Ast.body)
        in
        let t_cfm = time_one (fun () -> Cfm.certified b p.Ast.body) in
        let t_inf = time_one (fun () -> Infer.constraints p.Ast.body) in
        let t_proof =
          time_one (fun () ->
              let proof = Generate.theorem1 b p.Ast.body in
              Check.check ~interference:`Trust two proof)
        in
        Fmt.pr "%-10d %-10d %12.1f %12.1f %12.1f %14.1f@."
          (Metrics.of_program p).Metrics.statements length (1e6 *. t_den)
          (1e6 *. t_cfm) (1e6 *. t_inf) (1e6 *. t_proof);
        (length, t_cfm))
      sizes
  in
  match (rows, List.rev rows) with
  | (l0, t0) :: _, (l1, t1) :: _ when l0 <> l1 && t0 > 0. ->
    let per0 = t0 /. float_of_int l0 and per1 = t1 /. float_of_int l1 in
    Fmt.pr
      "@.CFM ns/node at smallest vs largest size: %.1f vs %.1f (ratio %.2f; linear \
       scaling keeps this near 1)@."
      (1e9 *. per0) (1e9 *. per1)
      (per1 /. per0);
    metric_f "scaling" "cfm_ns_per_node_ratio" (per1 /. per0)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* SND: empirical soundness. *)

let soundness ~corpus () =
  banner "SND: certified programs pass the noninterference test";
  let rng = Prng.create 2718 in
  let cfg = { Gen.default with Gen.max_depth = 3 } in
  let checked = ref 0 and violations = ref 0 and attempts = ref 0 in
  while !checked < corpus && !attempts < corpus * 30 do
    incr attempts;
    let p = Gen.program_balanced rng cfg ~size:(2 + (!attempts mod 10)) in
    let vars, _, _, _ = Ifc_lang.Vars.declared p in
    let pairs =
      List.map (fun v -> (v, if Prng.bool rng then high else low)) (Sset.elements vars)
    in
    let b = Binding.make two pairs in
    if List.exists (fun (_, c) -> c = high) pairs && Cfm.certified b p.Ast.body then begin
      let r = Ni.test ~seed:!attempts ~pairs:4 ~max_states:4000 ~observer:low b p in
      if r.Ni.pairs_tested > 0 then begin
        incr checked;
        if not (Ni.secure r) then incr violations
      end
    end
  done;
  Fmt.pr "certified programs tested: %d, noninterference violations: %d%s@." !checked
    !violations
    (if !violations = 0 then "  [sound on this corpus]" else "  [UNSOUND?]");
  (* The counterpoint: the leaky paper examples DO violate. *)
  let leaky =
    Binding.make two
      (("x", high) :: List.map (fun v -> (v, low)) (List.tl Paper.fig3_vars))
  in
  let r = Ni.test ~pairs:4 ~observer:low leaky Paper.fig3 in
  Fmt.pr "control (fig3, x high / y low): %d violations in %d pairs [leak confirmed]@."
    (List.length r.Ni.violations)
    r.Ni.pairs_tested;
  metric_i "ni" "certified_tested" !checked;
  metric_i "ni" "violations" !violations

(* ------------------------------------------------------------------ *)
(* POR: state-space reduction from partial-order reduction. *)

let por ~corpus () =
  banner "POR: interleaving-space reduction (same summaries, fewer states)";
  let explore_pair ?inputs p =
    let full = Ifc_exec.Explore.explore_program ?inputs ~max_states:200_000 p in
    let reduced =
      Ifc_exec.Explore.explore_program ~por:true ?inputs ~max_states:200_000 p
    in
    (full, reduced)
  in
  Fmt.pr "%-34s %10s %10s %9s@." "workload" "full" "por" "ratio";
  let report name (full : Ifc_exec.Explore.summary) (reduced : Ifc_exec.Explore.summary) =
    Fmt.pr "%-34s %10d %10d %8.1fx@." name full.Ifc_exec.Explore.states
      reduced.Ifc_exec.Explore.states
      (float_of_int full.Ifc_exec.Explore.states
      /. float_of_int (max 1 reduced.Ifc_exec.Explore.states))
  in
  let f, r = explore_pair ~inputs:[ ("x", 0) ] Paper.fig3 in
  report "fig3 (x = 0)" f r;
  (match
     Parser.parse_program
       "var a, b, c, d, e, f : integer; cobegin a := 1 || b := 2 || c := 3 || d := 4 || e := 5 || f := 6 coend"
   with
  | Ok p ->
    let f, r = explore_pair p in
    report "6 independent writers" f r
  | Error _ -> ());
  (match
     Parser.parse_program
       {|var a, b, t : integer; s : semaphore initially(0);
         cobegin begin a := 1; a := a + 1; signal(s) end
         || begin b := 2; b := b * 3; wait(s); t := 1 end coend|}
   with
  | Ok p ->
    let f, r = explore_pair p in
    report "2 workers + 1 rendezvous" f r
  | Error _ -> ());
  (* Random corpus aggregate. *)
  let rng = Prng.create 515 in
  let full_total = ref 0 and por_total = ref 0 and n = ref 0 in
  for i = 1 to corpus do
    let p =
      Gen.program_balanced rng { Gen.default with Gen.max_depth = 3 }
        ~size:(2 + (i mod 10))
    in
    let full, reduced = explore_pair p in
    if full.Ifc_exec.Explore.complete && reduced.Ifc_exec.Explore.complete then begin
      incr n;
      full_total := !full_total + full.Ifc_exec.Explore.states;
      por_total := !por_total + reduced.Ifc_exec.Explore.states
    end
  done;
  Fmt.pr "%-34s %10d %10d %8.1fx   (%d programs)@." "random corpus (total states)"
    !full_total !por_total
    (float_of_int !full_total /. float_of_int (max 1 !por_total))
    !n;
  metric_f "por" "corpus_reduction_ratio"
    (float_of_int !full_total /. float_of_int (max 1 !por_total))

(* ------------------------------------------------------------------ *)
(* PIPE: the batch pipeline — throughput scaling over domains,
   verdict determinism, and result-cache hit rates. *)

let pipeline ~corpus () =
  banner
    (Printf.sprintf
       "PIPE: batch certification of a %d-program corpus (cfm + prove per job)"
       corpus);
  let lat = Lattice.stringify two in
  (* The corpus is a pure function of the seed, so every configuration
     below certifies byte-identical inputs. *)
  let make_specs () =
    let rng = Prng.create 271828 in
    List.init corpus (fun i ->
        let p = Gen.program rng Gen.default ~size:(5 + (i mod 40)) in
        let b = random_binding rng lat p.Ast.body in
        Job.make ~id:i
          ~name:(Printf.sprintf "corpus:%d" i)
          ~lattice:lat ~binding:b
          ~analyses:[ Job.Cfm; Job.Prove ]
          p)
  in
  let verdicts summary =
    List.map Job.verdict_string summary.Batch.results |> List.sort compare
  in
  let cores = Domain.recommended_domain_count () in
  if cores < 4 then
    Fmt.pr
      "note: host reports %d available core(s); speedup above 1x needs real \
       parallelism@."
      cores;
  Fmt.pr "%-10s %12s %12s %10s@." "domains" "wall (ms)" "jobs/s" "speedup";
  let runs =
    List.map
      (fun jobs ->
        let summary = Batch.run ~jobs (make_specs ()) in
        (jobs, summary))
      [ 1; 2; 4 ]
  in
  let wall_ms s = Int64.to_float s.Batch.wall_ns /. 1e6 in
  let base_wall =
    match runs with (_, s) :: _ -> wall_ms s | [] -> assert false
  in
  List.iter
    (fun (jobs, s) ->
      let speedup = base_wall /. wall_ms s in
      Fmt.pr "%-10d %12.1f %12.1f %9.2fx@." jobs (wall_ms s)
        (Batch.throughput s) speedup;
      if jobs > 1 then
        metric_f "pipeline" (Printf.sprintf "speedup_%d" jobs) speedup)
    runs;
  let reference = verdicts (snd (List.hd runs)) in
  let deterministic =
    List.for_all (fun (_, s) -> verdicts s = reference) (List.tl runs)
  in
  Fmt.pr "verdict multisets across domain counts: %s@."
    (if deterministic then "identical" else "DIVERGENT!");
  metric_i "pipeline" "corpus" corpus;
  metric "pipeline" "verdicts_deterministic" (string_of_bool deterministic);
  (* Cache: a cold pass fills it, a warm pass should only hit. *)
  let cache = Cache.create ~capacity:(2 * corpus) () in
  let cold = Batch.run ~jobs:4 ~cache (make_specs ()) in
  let warm = Batch.run ~jobs:4 ~cache (make_specs ()) in
  let rate hits misses =
    if hits + misses = 0 then 0.
    else 100. *. float_of_int hits /. float_of_int (hits + misses)
  in
  Fmt.pr "cache cold: %d hits / %d misses; warm: %d hits / %d misses (%.1f%%)@."
    cold.Batch.cache_hits cold.Batch.cache_misses warm.Batch.cache_hits
    warm.Batch.cache_misses
    (rate warm.Batch.cache_hits warm.Batch.cache_misses);
  Fmt.pr "warm verdicts identical: %b;  warm wall: %.1f ms (cold: %.1f ms)@."
    (verdicts warm = verdicts cold)
    (wall_ms warm) (wall_ms cold);
  metric_f "pipeline" "warm_hit_rate_pct"
    (rate warm.Batch.cache_hits warm.Batch.cache_misses);
  metric_f "pipeline" "cache_speedup" (wall_ms cold /. wall_ms warm)

(* ------------------------------------------------------------------ *)
(* FUZZ: the differential fuzzing campaign — end-to-end throughput of
   the analyzer matrix plus semantic oracle, and the cost of shrinking
   a planted inversion down to its minimal program. *)

let fuzz_bench ~cases () =
  banner
    (Printf.sprintf
       "FUZZ: %d-case differential campaign (cfm + denning + fs + prove + ni)"
       cases);
  let jobs = max 1 (min 4 (Domain.recommended_domain_count ())) in
  let cfg = { Campaign.default with cases; seed = 42; jobs } in
  let s = Campaign.run cfg in
  let wall_s = Int64.to_float s.Campaign.elapsed_ns /. 1e9 in
  let cases_per_s = float_of_int s.Campaign.completed /. wall_s in
  let pairs =
    s.Campaign.oracle_pairs_tested + s.Campaign.oracle_pairs_skipped
  in
  let skip_pct =
    if pairs = 0 then 0.
    else 100. *. float_of_int s.Campaign.oracle_pairs_skipped
         /. float_of_int pairs
  in
  Fmt.pr "completed %d cases in %.2f s (%.1f cases/s, %d domains)@."
    s.Campaign.completed wall_s cases_per_s jobs;
  Fmt.pr "oracle pairs: %d tested, %d skipped (%.1f%% skip rate)@."
    s.Campaign.oracle_pairs_tested s.Campaign.oracle_pairs_skipped skip_pct;
  Fmt.pr "inversions=%d gaps=%d@." s.Campaign.inversion_cases
    s.Campaign.gap_cases;
  metric_f "fuzz" "cases_per_sec" cases_per_s;
  metric_f "fuzz" "oracle_skip_pct" skip_pct;
  metric_i "fuzz" "inversions" s.Campaign.inversion_cases;
  metric_i "fuzz" "gaps" s.Campaign.gap_cases;
  (* Shrinking cost: plant one forced inversion and time its reduction
     to the minimal leaking assignment. *)
  let planted =
    Campaign.run
      { Campaign.default with cases = 0; seed = 7; jobs = 1;
        plant_inversion = true }
  in
  (match planted.Campaign.counterexamples with
  | c :: _ ->
    Fmt.pr "planted inversion: %d -> %d statements (%d steps, %d evals)@."
      c.Campaign.original_statements c.Campaign.shrunk_statements
      c.Campaign.shrink.Ifc_fuzz.Shrink.steps
      c.Campaign.shrink.Ifc_fuzz.Shrink.evals;
    metric_i "fuzz" "planted_shrink_steps" c.Campaign.shrink.Ifc_fuzz.Shrink.steps;
    metric_i "fuzz" "planted_shrink_evals" c.Campaign.shrink.Ifc_fuzz.Shrink.evals;
    metric_i "fuzz" "planted_shrunk_statements" c.Campaign.shrunk_statements
  | [] -> Fmt.pr "planted inversion: NOT CAUGHT!@.")

(* ------------------------------------------------------------------ *)
(* LINT: the static concurrency analyzer over a cobegin-heavy corpus —
   statements and findings per second, plus the claim mix. *)

let lint_bench ~corpus () =
  banner
    (Printf.sprintf
       "LINT: static concurrency analysis of a %d-program cobegin-heavy corpus"
       corpus);
  let module J = Ifc_pipeline.Telemetry in
  let module Analyze = Ifc_analysis.Analyze in
  let rng = Prng.create 1979 in
  let cfg = { Gen.default with Gen.max_branch = 4 } in
  let programs =
    List.init corpus (fun i -> Gen.program rng cfg ~size:(5 + (i mod 60)))
  in
  let timer = J.start () in
  let reports = List.map Analyze.run programs in
  let wall_s = Int64.to_float (J.elapsed_ns timer) /. 1e9 in
  let stmts =
    List.fold_left
      (fun a (r : Analyze.report) -> a + r.Analyze.stats.Analyze.statements)
      0 reports
  in
  let findings =
    List.fold_left
      (fun a (r : Analyze.report) -> a + List.length r.Analyze.findings)
      0 reports
  in
  let count f = List.length (List.filter f reports) in
  let racy = count (fun r -> not r.Analyze.claims.Analyze.race_free) in
  let deadlocky = count (fun r -> not r.Analyze.claims.Analyze.deadlock_free) in
  let stuck = count (fun r -> r.Analyze.claims.Analyze.must_block) in
  Fmt.pr "analyzed %d programs (%d statements) in %.3f s@." corpus stmts wall_s;
  Fmt.pr "throughput: %.0f statements/s, %.0f findings/s (%d findings)@."
    (float_of_int stmts /. wall_s)
    (float_of_int findings /. wall_s)
    findings;
  Fmt.pr "claims: %d may race, %d may deadlock, %d must block@." racy deadlocky
    stuck;
  metric_i "lint" "corpus" corpus;
  metric_f "lint" "statements_per_sec" (float_of_int stmts /. wall_s);
  metric_f "lint" "findings_per_sec" (float_of_int findings /. wall_s);
  metric_i "lint" "findings" findings

(* ------------------------------------------------------------------ *)
(* DATAFLOW: the abstract-interpretation engine — solver throughput,
   the lint's cost and false-positive reduction with pruning on vs off,
   and per-module summary reuse through the store on a one-module
   edit. Every third corpus program is wrapped in a statically
   infeasible branch so the whole-program findings inside it are
   false positives the engine must remove. *)

let dataflow_bench ~corpus () =
  banner
    (Printf.sprintf
       "DATAFLOW: interval analysis, pruning and summaries over a \
        %d-program corpus"
       corpus);
  let module J = Ifc_pipeline.Telemetry in
  let module Analyze = Ifc_analysis.Analyze in
  let module Finding = Ifc_analysis.Finding in
  let module Prune = Ifc_dataflow.Prune in
  let module Dflow = Ifc_modsys.Dflow in
  let rng = Prng.create 1979 in
  let cfg = { Gen.default with Gen.max_branch = 4 } in
  let wrap p =
    (* x := 1; if x = 0 then <body> else skip — everything inside the
       arm is unreachable on every input. *)
    let z = "infeasible_z" in
    {
      Ast.decls = Ast.Var_decl { name = z; cls = None } :: p.Ast.decls;
      body =
        Ast.seq
          [
            Ast.assign z (Ast.int 1);
            Ast.if_ (Ast.Binop (Ast.Eq, Ast.var z, Ast.int 0)) ~then_:p.Ast.body
              ~else_:Ast.skip;
          ];
    }
  in
  let programs =
    List.init corpus (fun i ->
        let p = Gen.program rng cfg ~size:(5 + (i mod 60)) in
        if i mod 3 = 0 then wrap p else p)
  in
  let stmts =
    List.fold_left
      (fun a p -> a + (Metrics.of_program p).Metrics.statements)
      0 programs
  in
  let timed f =
    let timer = J.start () in
    let r = List.map f programs in
    (r, Int64.to_float (J.elapsed_ns timer) /. 1e9)
  in
  (* Leg 1: the solver alone — interval fixpoint, pruning, liveness. *)
  let prunes, solver_s = timed Prune.analyze in
  let visits = List.fold_left (fun a r -> a + r.Prune.visits) 0 prunes in
  let pruned_arms =
    List.fold_left (fun a r -> a + List.length r.Prune.pruned) 0 prunes
  in
  (* Leg 2: the full lint with pruning on vs off. *)
  let reports_on, lint_on_s = timed Analyze.run in
  let reports_off, lint_off_s = timed (Analyze.run ~dataflow:false) in
  (* A structural finding is one the concurrency passes emit; guard and
     dataflow lints are excluded so the delta isolates false positives
     removed, not warnings added. *)
  let structural r =
    List.length
      (List.filter
         (fun (f : Finding.t) ->
           match f.Finding.kind with
           | Finding.Guard | Finding.Unreachable | Finding.Dead_store -> false
           | _ -> true)
         r.Analyze.findings)
  in
  let sum f rs = List.fold_left (fun a r -> a + f r) 0 rs in
  let fp_removed = sum structural reports_off - sum structural reports_on in
  let strengthened =
    List.fold_left2
      (fun a (on : Analyze.report) (off : Analyze.report) ->
        let claim c = if c on.Analyze.claims && not (c off.Analyze.claims) then 1 else 0 in
        a
        + claim (fun c -> c.Analyze.race_free)
        + claim (fun c -> c.Analyze.deadlock_free))
      0 reports_on reports_off
  in
  Fmt.pr "solver: %d statements in %.3f s (%.0f stmt/s, %d transfer visits)@."
    stmts solver_s
    (float_of_int stmts /. solver_s)
    visits;
  Fmt.pr "lint with pruning: %.0f stmt/s; without: %.0f stmt/s@."
    (float_of_int stmts /. lint_on_s)
    (float_of_int stmts /. lint_off_s);
  Fmt.pr
    "pruned %d arms; removed %d false-positive findings; strengthened %d \
     claims@."
    pruned_arms fp_removed strengthened;
  (* Leg 3: summary reuse on a one-module edit, through the store. *)
  let low_name = (Lattice.stringify two).Lattice.bottom in
  let make_module ?(salt = 0) ~name ~import size =
    let out = name ^ "_out" in
    let body =
      Ast.seq
        (Ast.assign out (Ast.int (1 + salt))
        :: List.init (max 0 (size - 1)) (fun i ->
               Ast.assign out (Ast.Binop (Ast.Add, Ast.var import, Ast.int i))))
    in
    {
      Ast.iface =
        {
          Ast.m_name = name;
          provides = [ { Ast.iv_name = out; iv_class = low_name } ];
          requires = [ { Ast.iv_name = import; iv_class = low_name } ];
        };
      m_decls = [ Ast.Var_decl { name = out; cls = Some low_name } ];
      m_body = body;
    }
  in
  let make_unit ?edit ~count size =
    {
      Ast.modules =
        List.init count (fun i ->
            let import =
              if i = 0 then "cfg" else Printf.sprintf "m%d_out" (i - 1)
            in
            let salt =
              match edit with Some (j, salt) when j = i -> salt | _ -> 0
            in
            make_module ~salt ~name:(Printf.sprintf "m%d" i) ~import size);
      main =
        Some
          {
            Ast.decls = [ Ast.Var_decl { name = "cfg"; cls = Some low_name } ];
            body = Ast.assign "cfg" (Ast.int 0);
          };
    }
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ifc-bench-dataflow-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  rm_rf dir;
  (match Ifc_store.Store.open_ dir with
  | Error msg -> Fmt.epr "dataflow summary leg skipped: %s@." msg
  | Ok store ->
    let modules = 8 in
    let cold = Dflow.linked ~store (make_unit ~count:modules 200) in
    let warm = Dflow.linked ~store (make_unit ~edit:(3, 7) ~count:modules 200) in
    let ratio =
      float_of_int warm.Dflow.reused
      /. float_of_int (warm.Dflow.computed + warm.Dflow.reused)
    in
    Fmt.pr
      "summaries: cold link computed %d; one-module edit recomputed %d, \
       reused %d (ratio %.3f)@."
      cold.Dflow.computed warm.Dflow.computed warm.Dflow.reused ratio;
    metric_i "dataflow" "edit_summaries_recomputed" warm.Dflow.computed;
    metric_i "dataflow" "edit_summaries_reused" warm.Dflow.reused;
    metric_f "dataflow" "summary_reuse_ratio" ratio);
  rm_rf dir;
  metric_i "dataflow" "corpus" corpus;
  metric_i "dataflow" "statements" stmts;
  metric_f "dataflow" "solver_statements_per_sec"
    (float_of_int stmts /. solver_s);
  metric_i "dataflow" "solver_visits" visits;
  metric_f "dataflow" "lint_statements_per_sec_pruning"
    (float_of_int stmts /. lint_on_s);
  metric_f "dataflow" "lint_statements_per_sec_no_pruning"
    (float_of_int stmts /. lint_off_s);
  metric_i "dataflow" "pruned_arms" pruned_arms;
  metric_i "dataflow" "false_positives_removed" fp_removed;
  metric_i "dataflow" "claims_strengthened" strengthened

(* ------------------------------------------------------------------ *)
(* CHAN: the message-passing workload end to end — certify, lint (with
   channel-graph construction), and explore generated channel programs,
   reporting each leg's throughput. *)

let chan_bench ~corpus () =
  banner
    (Printf.sprintf
       "CHAN: certify + lint + explore a %d-program message-passing corpus"
       corpus);
  let module J = Ifc_pipeline.Telemetry in
  let module Analyze = Ifc_analysis.Analyze in
  let module Explore = Ifc_exec.Explore in
  let stwo = Lattice.stringify two in
  let binding = Binding.make stwo ~default:stwo.Lattice.bottom [] in
  let rng = Prng.create 1979 in
  let programs =
    List.init corpus (fun i -> Gen.program rng Gen.with_channels ~size:(4 + (i mod 40)))
  in
  let stmts =
    List.fold_left
      (fun a p -> a + (Metrics.of_program p).Metrics.statements)
      0 programs
  in
  let timed f =
    let timer = J.start () in
    let r = List.map f programs in
    (r, Int64.to_float (J.elapsed_ns timer) /. 1e9)
  in
  let certified, certify_s = timed (fun p -> Cfm.certified binding p.Ast.body) in
  let reports, lint_s = timed Analyze.run in
  let summaries, explore_s =
    timed (fun p -> Explore.explore_program ~max_states:20_000 p)
  in
  let accepted = List.length (List.filter Fun.id certified) in
  let channels =
    List.fold_left
      (fun a (r : Analyze.report) -> a + List.length r.Analyze.channels)
      0 reports
  in
  let chan_findings =
    List.fold_left
      (fun a (r : Analyze.report) ->
        a
        + List.length
            (List.filter
               (fun (f : Ifc_analysis.Finding.t) ->
                 match f.Ifc_analysis.Finding.kind with
                 | Ifc_analysis.Finding.Chan_deadlock
                 | Ifc_analysis.Finding.Chan_race
                 | Ifc_analysis.Finding.Orphan_message ->
                   true
                 | _ -> false)
               r.Analyze.findings))
      0 reports
  in
  let states =
    List.fold_left (fun a (s : Explore.summary) -> a + s.Explore.states) 0 summaries
  in
  let blocked =
    List.length
      (List.filter (fun (s : Explore.summary) -> s.Explore.chan_blocked <> []) summaries)
  in
  Fmt.pr "corpus: %d programs, %d statements, %d channel endpoints@." corpus
    stmts channels;
  Fmt.pr "certify: %d/%d accepted, %.0f programs/s@." accepted corpus
    (float_of_int corpus /. certify_s);
  Fmt.pr "lint: %.0f statements/s, %d channel findings@."
    (float_of_int stmts /. lint_s)
    chan_findings;
  Fmt.pr "explore: %.0f states/s, %d programs reach a blocked channel@."
    (float_of_int states /. explore_s)
    blocked;
  metric_i "chan" "corpus" corpus;
  metric_i "chan" "channels" channels;
  metric_f "chan" "certify_programs_per_sec" (float_of_int corpus /. certify_s);
  metric_f "chan" "lint_statements_per_sec" (float_of_int stmts /. lint_s);
  metric_f "chan" "explore_states_per_sec" (float_of_int states /. explore_s);
  metric_i "chan" "chan_findings" chan_findings;
  metric_i "chan" "blocked_programs" blocked

(* ------------------------------------------------------------------ *)
(* CERT: proof-certificate emission and independent re-checking
   throughput, plus how certificate size scales with program size. *)

let cert_bench ~corpus () =
  banner
    (Printf.sprintf
       "CERT: emit + independently re-check %d flow-proof certificates"
       corpus);
  let module Cert = Ifc_cert.Cert in
  let module Checker = Ifc_cert.Checker in
  let module J = Ifc_pipeline.Telemetry in
  let stwo = Lattice.stringify two in
  let binding = Binding.make stwo ~default:stwo.Lattice.bottom [] in
  (* Provable programs at the all-low binding: generated, kept when a
     Theorem 1 witness exists. *)
  let rng = Prng.create 20260806 in
  let rec collect acc remaining tries =
    if remaining = 0 || tries >= corpus * 100 then List.rev acc
    else
      let size = 2 + (tries mod 24) in
      let p = Gen.program rng Gen.default ~size in
      match Invariance.witness binding p.Ast.body with
      | Ok proof -> collect ((p, proof) :: acc) (remaining - 1) (tries + 1)
      | Error _ -> collect acc remaining (tries + 1)
  in
  let cases = collect [] corpus 0 in
  let n = List.length cases in
  let timer = J.start () in
  let certs =
    List.map
      (fun (p, proof) ->
        (p, Cert.to_string (Cert.of_proof ~binding ~program:p proof)))
      cases
  in
  let emit_s = Int64.to_float (J.elapsed_ns timer) /. 1e9 in
  let timer = J.start () in
  let valid =
    List.fold_left
      (fun acc (p, text) ->
        match Cert.parse text with
        | Error _ -> acc
        | Ok cert ->
          if Result.is_ok (Checker.check cert p) then acc + 1 else acc)
      0 certs
  in
  let check_s = Int64.to_float (J.elapsed_ns timer) /. 1e9 in
  let bytes = List.fold_left (fun a (_, t) -> a + String.length t) 0 certs in
  let stmts = List.fold_left (fun a (p, _) -> a + Metrics.length p) 0 cases in
  Fmt.pr "emitted %d certificates in %.3f s (%.0f certs/s)@." n emit_s
    (float_of_int n /. emit_s);
  Fmt.pr "re-checked %d certificates in %.3f s (%.0f certs/s), %d valid@." n
    check_s
    (float_of_int n /. check_s)
    valid;
  Fmt.pr "size: %.1f certificate bytes per statement (%d bytes / %d statements)@."
    (float_of_int bytes /. float_of_int stmts)
    bytes stmts;
  metric_i "cert" "corpus" n;
  metric_f "cert" "emit_per_sec" (float_of_int n /. emit_s);
  metric_f "cert" "check_per_sec" (float_of_int n /. check_s);
  metric_i "cert" "checked_valid" valid;
  metric_f "cert" "bytes_per_statement"
    (float_of_int bytes /. float_of_int stmts)

(* ------------------------------------------------------------------ *)
(* SERVER: the certification daemon — N concurrent clients hammering
   one in-process server over a Unix socket, sharing its cache. *)

let server_bench ~clients ~requests () =
  banner
    (Printf.sprintf
       "SERVER: %d concurrent clients x %d requests against one daemon"
       clients requests);
  let module Conn = Ifc_server.Conn in
  let module Server = Ifc_server.Server in
  let module Client = Ifc_server.Client in
  let module Protocol = Ifc_server.Protocol in
  let module Jsonx = Ifc_server.Jsonx in
  let module J = Ifc_pipeline.Telemetry in
  let lat = Lattice.stringify two in
  (* ~16 programs that survive the wire path (pretty-print, re-parse,
     wellformedness), shipped as source + binding text. *)
  let corpus =
    let rng = Prng.create 314159 in
    let rec collect i acc remaining =
      if remaining = 0 then List.rev acc
      else
        let p = Gen.program rng Gen.default ~size:(4 + (i mod 24)) in
        let source = Fmt.str "%a" Ifc_lang.Pretty.pp_program p in
        match Parser.parse_program source with
        | Ok q when Ifc_lang.Wellformed.errors q = [] ->
          let binding =
            Sset.elements (Ifc_lang.Vars.all_vars p.Ast.body)
            |> List.map (fun v ->
                   let levels = Array.of_list lat.Lattice.elements in
                   Printf.sprintf "%s : %s" v
                     levels.(Prng.int rng (Array.length levels)))
            |> String.concat "\n"
          in
          collect (i + 1) ((source, binding) :: acc) (remaining - 1)
        | _ -> collect (i + 1) acc remaining
    in
    Array.of_list (collect 0 [] 16)
  in
  let sock = Filename.temp_file "ifcbench" ".sock" in
  let config =
    {
      Server.default_config with
      Server.endpoints = [ Conn.Unix_socket sock ];
      workers = max 2 (Domain.recommended_domain_count ());
    }
  in
  match Server.create config with
  | Error msg -> Fmt.epr "server bench skipped: %s@." msg
  | Ok server ->
    let run_thread = Thread.create Server.run server in
    let failures = Atomic.make 0 in
    let one_client id =
      match
        Client.with_client ~retry_for:5. (Conn.Unix_socket sock) (fun c ->
            for r = 0 to requests - 1 do
              let source, binding =
                corpus.((id + r) mod Array.length corpus)
              in
              match Client.check c ~binding source with
              | Ok response when Protocol.response_ok response -> ()
              | Ok _ | Error _ -> Atomic.incr failures
            done;
            Ok ())
      with
      | Ok () -> ()
      | Error _ -> Atomic.incr failures
    in
    let timer = J.start () in
    let threads =
      List.init clients (fun id -> Thread.create one_client id)
    in
    List.iter Thread.join threads;
    let wall_s = Int64.to_float (J.elapsed_ns timer) /. 1e9 in
    let total = clients * requests in
    let rps = float_of_int total /. wall_s in
    let stat path stats =
      let rec walk json = function
        | [] -> Option.value ~default:0 (Jsonx.int_opt json)
        | key :: rest -> (
          match Jsonx.member key json with Some v -> walk v rest | None -> 0)
      in
      walk stats ("stats" :: path)
    in
    (match
       Client.with_client ~retry_for:5. (Conn.Unix_socket sock) Client.stats
     with
    | Ok stats ->
      let hits = stat [ "cache"; "hits" ] stats
      and misses = stat [ "cache"; "misses" ] stats in
      let hit_pct =
        if hits + misses = 0 then 0.
        else 100. *. float_of_int hits /. float_of_int (hits + misses)
      in
      let p99_ms = float_of_int (stat [ "latency"; "p99_ns" ] stats) /. 1e6 in
      Fmt.pr
        "%d requests in %.2f s: %.0f req/s; cache %d hits / %d misses \
         (%.1f%%); p50 %.2f ms, p99 %.2f ms; %d failures@."
        total wall_s rps hits misses hit_pct
        (float_of_int (stat [ "latency"; "p50_ns" ] stats) /. 1e6)
        p99_ms (Atomic.get failures);
      metric_f "server" "throughput_rps" rps;
      metric_f "server" "warm_hit_rate_pct" hit_pct;
      metric_f "server" "p99_ms" p99_ms
    | Error msg -> Fmt.epr "stats query failed: %s@." msg);
    metric_i "server" "requests" total;
    metric_i "server" "failures" (Atomic.get failures);
    Server.request_stop server;
    Thread.join run_thread;
    (try Sys.remove sock with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* LOAD: sustained pipelined load at high connection counts. The server
   runs as an [ifc serve] subprocess: its select-based shard loops need
   every fd below FD_SETSIZE, so it must not share a process with the
   thousand client sockets the load generator holds. *)

let load_bench ~scenarios () =
  banner "LOAD: pipelined load against an ifc serve subprocess";
  let module Conn = Ifc_server.Conn in
  let module Loadgen = Ifc_server.Loadgen in
  let ifc =
    Filename.concat (Filename.dirname Sys.executable_name) "../bin/ifc.exe"
  in
  if not (Sys.file_exists ifc) then
    Fmt.epr "load bench skipped: %s not built@." ifc
  else
    List.iter
      (fun (clients, window, requests) ->
        let sock =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "ifc-load-%d-%d.sock" (Unix.getpid ()) clients)
        in
        (try Sys.remove sock with Sys_error _ -> ());
        let argv =
          [|
            ifc; "serve"; "--socket"; sock; "--quiet"; "--shards"; "2";
            "--jobs"; "2"; "--max-connections"; string_of_int (clients + 16);
          |]
        in
        let pid =
          Unix.create_process ifc argv Unix.stdin Unix.stdout Unix.stderr
        in
        Fun.protect
          ~finally:(fun () ->
            (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
            ignore (Unix.waitpid [] pid);
            try Sys.remove sock with Sys_error _ -> ())
          (fun () ->
            let cfg =
              {
                Loadgen.endpoint = Conn.Unix_socket sock;
                clients;
                window;
                requests;
                distinct = 32;
                ops = [ Loadgen.Check ];
                name = "load";
                retry_for = 10.;
              }
            in
            let r = Loadgen.run cfg in
            Fmt.pr
              "%d clients x %d requests (window %d): %.0f req/s over %.2f s; \
               p50 %.2f ms, p95 %.2f ms, p99 %.2f ms; ok %d, failed %d, \
               protocol errors %d, connect errors %d@."
              clients requests window r.Loadgen.throughput_rps
              r.Loadgen.duration_s r.Loadgen.p50_ms r.Loadgen.p95_ms
              r.Loadgen.p99_ms r.Loadgen.ok r.Loadgen.failed
              r.Loadgen.protocol_errors r.Loadgen.connect_errors;
            let tag name = Printf.sprintf "c%d_%s" clients name in
            metric_i "load" (tag "clients") clients;
            metric_i "load" (tag "window") window;
            metric_f "load" (tag "certs_per_sec") r.Loadgen.throughput_rps;
            metric_f "load" (tag "p50_ms") r.Loadgen.p50_ms;
            metric_f "load" (tag "p95_ms") r.Loadgen.p95_ms;
            metric_f "load" (tag "p99_ms") r.Loadgen.p99_ms;
            metric_i "load" (tag "ok") r.Loadgen.ok;
            metric_i "load" (tag "failed") r.Loadgen.failed;
            metric_i "load" (tag "protocol_errors") r.Loadgen.protocol_errors;
            metric_i "load" (tag "connect_errors") r.Loadgen.connect_errors))
      scenarios

(* ------------------------------------------------------------------ *)
(* STORE: the persistent artifact store and incremental certification —
   cold (compute + persist) vs warm (summaries replayed from disk) vs
   one-line-edit (only the spine recomputed) certification rates. *)

let store_bench ~corpus ~edits () =
  banner
    (Printf.sprintf
       "STORE: incremental certification over the persistent store (%d programs)"
       corpus);
  let module Store = Ifc_store.Store in
  let module Incremental = Ifc_store.Incremental in
  let module J = Ifc_pipeline.Telemetry in
  let stwo = Lattice.stringify two in
  let binding = Binding.make stwo ~default:stwo.Lattice.bottom [] in
  let rng = Prng.create 6029 in
  let programs =
    List.init corpus (fun i -> Gen.program rng Gen.default ~size:(20 + (i mod 80)))
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ifc-bench-store-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  rm_rf dir;
  let with_store f =
    match Store.open_ dir with
    | Error msg -> Fmt.epr "store bench skipped: %s@." msg
    | Ok st -> f st
  in
  let certify_all ctx =
    let timer = J.start () in
    let certified =
      List.fold_left
        (fun acc p -> if Incremental.certify_program ctx p then acc + 1 else acc)
        0 programs
    in
    (certified, Int64.to_float (J.elapsed_ns timer) /. 1e9)
  in
  with_store (fun st ->
      (* Cold: every summary computed from scratch and persisted. *)
      let ctx = Incremental.create ~store:st binding in
      let certified, cold_s = certify_all ctx in
      let cold = Incremental.stats ctx in
      Fmt.pr "cold: %d programs (%d certified) in %.3f s (%.0f certs/s), %d \
              summaries computed@."
        corpus certified cold_s
        (float_of_int corpus /. cold_s)
        cold.Incremental.computed;
      metric_f "store" "cold_certs_per_sec" (float_of_int corpus /. cold_s));
  with_store (fun st ->
      (* Warm: a fresh session (empty memo) over the same store — every
         subtree answered by disk lookup, zero lattice work. *)
      let ctx = Incremental.create ~store:st binding in
      let _, warm_s = certify_all ctx in
      let warm = Incremental.stats ctx in
      let total =
        warm.Incremental.computed + warm.Incremental.reused_memory
        + warm.Incremental.reused_disk
      in
      Fmt.pr "warm: %.3f s (%.0f certs/s); %d/%d summaries from disk, %d \
              recomputed@."
        warm_s
        (float_of_int corpus /. warm_s)
        warm.Incremental.reused_disk total warm.Incremental.computed;
      metric_f "store" "warm_certs_per_sec" (float_of_int corpus /. warm_s);
      metric_i "store" "warm_recomputed" warm.Incremental.computed;
      metric_f "store" "warm_disk_reuse_pct"
        (if total = 0 then 0.
         else 100. *. float_of_int warm.Incremental.reused_disk
              /. float_of_int total);
      (* One-line edit: bump the constant in the first assignment of a
         large program; only the spine from that leaf to the root may be
         recomputed, however big the rest of the tree is. *)
      let big = Gen.program (Prng.create 8086) Gen.default ~size:600 in
      let edit k (p : Ast.program) =
        let changed = ref false in
        let rec stmt (s : Ast.stmt) =
          if !changed then s
          else
            match s.Ast.node with
            | Ast.Assign (v, Ast.Int _) ->
              changed := true;
              { s with Ast.node = Ast.Assign (v, Ast.Int k) }
            | Ast.Seq ss -> { s with Ast.node = Ast.Seq (List.map stmt ss) }
            | Ast.Cobegin ss ->
              { s with Ast.node = Ast.Cobegin (List.map stmt ss) }
            | Ast.If (e, a, b) ->
              let a' = stmt a in
              { s with Ast.node = Ast.If (e, a', stmt b) }
            | Ast.While (e, body) ->
              { s with Ast.node = Ast.While (e, stmt body) }
            | Ast.Skip | Ast.Assign _ | Ast.Declassify _ | Ast.Store _
            | Ast.Wait _ | Ast.Signal _ | Ast.Send _ | Ast.Recv _ -> s
        in
        { p with Ast.body = stmt p.Ast.body }
      in
      let ctx = Incremental.create ~store:st binding in
      ignore (Incremental.certify_program ctx big);
      Incremental.reset_stats ctx;
      let timer = J.start () in
      for k = 1 to edits do
        ignore (Incremental.certify_program ctx (edit k big))
      done;
      let edit_s = Int64.to_float (J.elapsed_ns timer) /. 1e9 in
      let s = Incremental.stats ctx in
      let spine =
        float_of_int s.Incremental.computed /. float_of_int (max 1 edits)
      in
      let nodes = Metrics.length big in
      Fmt.pr "one-line edit on a %d-node program: %d re-certifications in \
              %.3f s (%.0f certs/s), %.1f spine nodes recomputed per edit@."
        nodes edits edit_s
        (float_of_int edits /. edit_s)
        spine;
      metric_f "store" "edit_certs_per_sec" (float_of_int edits /. edit_s);
      metric_f "store" "edit_spine_nodes" spine;
      metric_i "store" "edit_program_nodes" nodes;
      let d = Store.disk_stats st in
      Fmt.pr "store: %d entries, %d summaries, %d bytes on disk@."
        d.Store.entries d.Store.summaries
        (d.Store.entry_bytes + d.Store.summary_bytes);
      metric_i "store" "summaries_on_disk" d.Store.summaries);
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* MODSYS: compositional certification — module summaries persist in
   the store, the link step evaluates residual interface constraints,
   and a one-module edit recomputes one summary plus the link. *)

let modsys_bench ~sizes ~modules () =
  banner
    (Printf.sprintf
       "MODSYS: summary-based linking of %d-module units (cost follows \
        interfaces, not bodies)"
       modules);
  let module Link = Ifc_modsys.Link in
  let module Store = Ifc_store.Store in
  let lat = Lattice.stringify two in
  let low_name = lat.Lattice.bottom in
  (* One export, one import, [size] all-low statements: the interface
     stays constant while the body grows. [salt] perturbs a constant so
     an edited module digests differently. *)
  let make_module ?(salt = 0) ~name ~import size =
    let out = name ^ "_out" in
    let body =
      Ast.seq
        (Ast.assign out (Ast.int (1 + salt))
        :: List.init (max 0 (size - 1)) (fun i ->
               Ast.assign out (Ast.Binop (Ast.Add, Ast.var import, Ast.int i))))
    in
    {
      Ast.iface =
        {
          Ast.m_name = name;
          provides = [ { Ast.iv_name = out; iv_class = low_name } ];
          requires = [ { Ast.iv_name = import; iv_class = low_name } ];
        };
      m_decls = [ Ast.Var_decl { name = out; cls = Some low_name } ];
      m_body = body;
    }
  in
  (* Modules chain: each imports its predecessor's export, the first
     imports the main program's [cfg]. *)
  let make_unit ?edit ~count size =
    let mods =
      List.init count (fun i ->
          let import =
            if i = 0 then "cfg" else Printf.sprintf "m%d_out" (i - 1)
          in
          let salt =
            match edit with Some (j, salt) when j = i -> salt | _ -> 0
          in
          make_module ~salt ~name:(Printf.sprintf "m%d" i) ~import size)
    in
    {
      Ast.modules = mods;
      main =
        Some
          {
            Ast.decls = [ Ast.Var_decl { name = "cfg"; cls = Some low_name } ];
            body = Ast.assign "cfg" (Ast.int 0);
          };
    }
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ifc-bench-modsys-%d" (Unix.getpid ()))
  in
  let rec rm_rf path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  rm_rf dir;
  (match Store.open_ dir with
  | Error msg -> Fmt.epr "modsys bench skipped: %s@." msg
  | Ok store ->
    (* Body-size sweep at a fixed interface: whole-program CFM on the
       elaboration vs certify-from-scratch (summaries computed) vs
       store-backed (summaries replayed, only the link step runs). *)
    Fmt.pr "%-14s %12s %12s %12s %10s@." "body (stmts)" "whole (us)"
      "scratch (us)" "linked (us)" "reused";
    let agree = ref 0 in
    let rows =
      List.map
        (fun size ->
          let unit_ = make_unit ~count:modules size in
          let whole_verdict = ref false in
          let whole =
            match Link.binding ~lattice:lat unit_ with
            | Error _ -> 0.
            | Ok b ->
              let p = Link.elaborate unit_ in
              time_one (fun () ->
                  whole_verdict := Cfm.certified b p.Ast.body;
                  !whole_verdict)
          in
          let cold = time_one (fun () -> Link.certify ~lattice:lat unit_) in
          ignore (Link.certify ~store ~lattice:lat unit_);
          let reused = ref 0 in
          let warm =
            time_one (fun () ->
                match Link.certify ~store ~lattice:lat unit_ with
                | Ok o ->
                  reused := o.Link.reused;
                  if Bool.equal o.Link.cert_ok !whole_verdict then incr agree;
                  o.Link.ok
                | Error _ -> false)
          in
          Fmt.pr "%-14d %12.1f %12.1f %12.1f %7d/%d@." (size * modules)
            (1e6 *. whole) (1e6 *. cold) (1e6 *. warm) !reused modules;
          (size, warm))
        sizes
    in
    (match (rows, List.rev rows) with
    | (s0, w0) :: _, (s1, w1) :: _ when s0 <> s1 && w0 > 0. ->
      let growth = w1 /. w0
      and body_growth = float_of_int s1 /. float_of_int s0 in
      Fmt.pr
        "@.store-backed link time grew %.1fx while bodies grew %.0fx — the \
         link step follows the (fixed) interfaces@."
        growth body_growth;
      metric_f "modsys" "linked_growth_vs_body_growth" (growth /. body_growth)
    | _ -> ());
    metric "modsys" "link_matches_whole_program"
      (string_of_bool (!agree > 0 && !agree >= List.length sizes));
    (* One-module edit: perturb one module's body; only its summary is
       recomputed, the rest replay from the store, then the link step
       re-runs. *)
    let base = make_unit ~count:modules 200 in
    ignore (Link.certify ~store ~lattice:lat base);
    let computed = ref 0 and reused = ref 0 and salt = ref 0 in
    let t_edit =
      time_one (fun () ->
          incr salt;
          match
            Link.certify ~store ~lattice:lat
              (make_unit ~edit:(modules / 2, !salt) ~count:modules 200)
          with
          | Ok o ->
            computed := o.Link.computed;
            reused := o.Link.reused;
            o.Link.ok
          | Error _ -> false)
    in
    let t_scratch = time_one (fun () -> Link.certify ~lattice:lat base) in
    Fmt.pr
      "one-module edit (%d modules x 200 stmts): %d summary recomputed, %d \
       reused; re-certify %.1f us vs %.1f us from scratch (%.1fx)@."
      modules !computed !reused (1e6 *. t_edit) (1e6 *. t_scratch)
      (t_scratch /. t_edit);
    metric_i "modsys" "edit_summaries_recomputed" !computed;
    metric_i "modsys" "edit_summaries_reused" !reused;
    metric_f "modsys" "edit_speedup_vs_scratch" (t_scratch /. t_edit));
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel). *)

let micro () =
  banner "micro-benchmarks (Bechamel, ns/run)";
  let open Bechamel in
  let rng = Prng.create 1 in
  let p100 = Gen.program rng Gen.default ~size:100 in
  let b100 = random_binding rng two p100.Ast.body in
  let p100_proof = Generate.theorem1 b100 p100.Ast.body in
  let mls = Mls.standard in
  let mls_elts = Array.of_list mls.Lattice.elements in
  let fig3_b = Binding.make two (List.map (fun v -> (v, high)) Paper.fig3_vars) in
  let seq_p = Paper.fig3_sequential_equivalent in
  let tests =
    [
      Test.make ~name:"cfm-certify-100stmt"
        (Staged.stage (fun () -> Cfm.certified b100 p100.Ast.body));
      Test.make ~name:"cfm-analyze-100stmt"
        (Staged.stage (fun () -> Cfm.analyze b100 p100.Ast.body));
      Test.make ~name:"denning-certify-100stmt"
        (Staged.stage (fun () ->
             Denning.certified ~on_concurrency:`Ignore b100 p100.Ast.body));
      Test.make ~name:"infer-constraints-100stmt"
        (Staged.stage (fun () -> Infer.constraints p100.Ast.body));
      Test.make ~name:"thm1-generate-100stmt"
        (Staged.stage (fun () -> Generate.theorem1 b100 p100.Ast.body));
      Test.make ~name:"proof-check-100stmt"
        (Staged.stage (fun () -> Check.check ~interference:`Trust two p100_proof));
      Test.make ~name:"cfm-certify-fig3"
        (Staged.stage (fun () -> Cfm.certified fig3_b Paper.fig3.Ast.body));
      Test.make ~name:"prove-fig3"
        (Staged.stage (fun () -> Invariance.decide fig3_b Paper.fig3.Ast.body));
      Test.make ~name:"mls-join"
        (Staged.stage (fun () -> mls.Lattice.join mls_elts.(5) mls_elts.(17)));
      Test.make ~name:"mls-leq"
        (Staged.stage (fun () -> mls.Lattice.leq mls_elts.(5) mls_elts.(17)));
      Test.make ~name:"parse-fig3"
        (Staged.stage
           (let src = Ifc_lang.Pretty.program_to_string Paper.fig3 in
            fun () -> Parser.parse_program src));
      Test.make ~name:"run-fig3-roundrobin"
        (Staged.stage (fun () ->
             Scheduler.run_program ~strategy:`Round_robin ~inputs:[ ("x", 1) ]
               Paper.fig3));
      Test.make ~name:"run-sequential-equivalent"
        (Staged.stage (fun () ->
             Scheduler.run_program ~strategy:`Leftmost ~inputs:[ ("x", 1) ] seq_p));
      Test.make ~name:"entail-policy-7vars"
        (Staged.stage
           (let inv = Generate.invariant_of fig3_b Paper.fig3.Ast.body in
            fun () -> Entail.check two inv inv));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let grouped = Test.make_grouped ~name:"ifc" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let names = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) results []) in
  Fmt.pr "%-40s %14s %8s@." "benchmark" "ns/run" "r^2";
  List.iter
    (fun name ->
      let ols_result = Hashtbl.find results name in
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | Some [] | None -> nan
      in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols_result) in
      Fmt.pr "%-40s %14.1f %8.3f@." name estimate r2)
    names;
  metric_i "micro" "benchmarks" (List.length names)

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args in
  let sections =
    match List.filter (fun a -> a <> "quick") args with
    | [] | [ "all" ] ->
      [ "tables"; "fig3"; "theorems"; "strength"; "ablation"; "por"; "scaling";
        "ni"; "pipeline"; "store"; "modsys"; "fuzz"; "lint"; "dataflow";
        "chan"; "cert"; "server"; "load"; "micro" ]
    | s -> s
  in
  let corpus = if quick then 100 else 400 in
  let sizes = if quick then [ 100; 1000; 10_000 ] else [ 100; 1000; 10_000; 100_000 ] in
  let run = function
    | "tables" -> fig2_table ()
    | "fig3" -> fig3_report ()
    | "theorems" -> theorems ~corpus ()
    | "strength" -> strength ~corpus:(corpus / 2) ()
    | "ablation" -> ablation ~corpus ()
    | "por" -> por ~corpus:(if quick then 60 else 150) ()
    | "scaling" -> scaling ~sizes ()
    | "ni" -> soundness ~corpus:(if quick then 15 else 30) ()
    | "pipeline" -> pipeline ~corpus:(if quick then 60 else 240) ()
    | "store" ->
      store_bench
        ~corpus:(if quick then 40 else 120)
        ~edits:(if quick then 50 else 200)
        ()
    | "modsys" ->
      modsys_bench
        ~sizes:(if quick then [ 10; 100; 1000 ] else [ 10; 100; 1000; 4000 ])
        ~modules:8 ()
    | "fuzz" -> fuzz_bench ~cases:(if quick then 40 else 150) ()
    | "lint" -> lint_bench ~corpus:(if quick then 200 else 800) ()
    | "dataflow" -> dataflow_bench ~corpus:(if quick then 200 else 800) ()
    | "chan" -> chan_bench ~corpus:(if quick then 150 else 500) ()
    | "cert" -> cert_bench ~corpus:(if quick then 60 else 200) ()
    | "server" ->
      server_bench
        ~clients:(if quick then 4 else 8)
        ~requests:(if quick then 25 else 100)
        ()
    | "load" ->
      load_bench
        ~scenarios:
          (if quick then [ (64, 4, 20) ]
           else [ (64, 8, 50); (1000, 4, 10) ])
        ()
    | "micro" -> micro ()
    | other -> Fmt.epr "unknown section %S@." other
  in
  List.iter run sections
