(* Binding inference on a staged pipeline.

   The paper assumes the static binding is given; in practice you fix the
   classifications at the trust boundary and solve for the rest. This
   example walks a four-stage pipeline (ingest -> scrub -> aggregate ->
   publish, synchronized by semaphores) through three policies:

   1. everything free: the least binding is all-bottom;
   2. the source fixed high: inference propagates exactly the classes the
      data paths force — semaphores included;
   3. source high and sink low: unsatisfiable, with the failing
      constraint pinpointing where declassification would be needed.

   Run with: dune exec examples/inference_demo.exe *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Infer = Ifc_core.Infer
module Report = Ifc_core.Report

let banner title = Fmt.pr "@.=== %s ===@." title

let four = Chain.four

let cls name = Result.get_ok (four.Lattice.of_string name)

let pipeline =
  match
    Ifc_lang.Parser.parse_program
      {|
var raw, clean, total, report : integer;
    scrubbed, aggregated : semaphore initially(0);
cobegin
  begin clean := raw - raw % 10; signal(scrubbed) end
  || begin wait(scrubbed); total := total + clean; signal(aggregated) end
  || begin wait(aggregated); report := total end
coend
|}
  with
  | Ok p -> p
  | Error e -> Fmt.failwith "parse: %a" Ifc_lang.Parser.pp_error e

let () =
  banner "the pipeline";
  Fmt.pr "%s@." (Ifc_lang.Pretty.program_to_string pipeline);

  banner "its data-flow constraints";
  Fmt.pr "%a@." Report.pp_requirements (Infer.constraints pipeline.Ifc_lang.Ast.body);

  banner "policy 1: nothing fixed";
  (match Infer.infer four ~fixed:[] pipeline with
  | Ok b -> Fmt.pr "least binding: %a@." Binding.pp b
  | Error _ -> assert false);

  banner "policy 2: raw is secret";
  (match Infer.infer four ~fixed:[ ("raw", cls "secret") ] pipeline with
  | Ok b ->
    Fmt.pr "least binding: %a@." Binding.pp b;
    Fmt.pr "certifies: %b@." (Cfm.certified b pipeline.Ifc_lang.Ast.body);
    (* The semaphores are carriers too: scrubbed must rise with clean. *)
    Fmt.pr "note: sbind(scrubbed) = %s — synchronization is data@."
      (four.Lattice.to_string (Binding.sbind b "scrubbed"))
  | Error _ -> assert false);

  banner "policy 3: raw secret, report unclassified (must fail)";
  (match
     Infer.infer four
       ~fixed:[ ("raw", cls "secret"); ("report", cls "unclassified") ]
       pipeline
   with
  | Ok _ -> Fmt.pr "unexpectedly satisfiable@."
  | Error c ->
    Fmt.pr "unsatisfiable. Violated constraint: %a@." Infer.pp_constr c.Infer.constr;
    Fmt.pr "forced to %s, allowed %s, at %a (%s)@."
      (four.Lattice.to_string c.Infer.actual)
      (four.Lattice.to_string c.Infer.allowed)
      Ifc_lang.Loc.pp c.Infer.constr.Infer.span
      (Ifc_core.Cfm.rule_name c.Infer.constr.Infer.rule);
    Fmt.pr
      "@.To publish a report derived from secret data you would need a@ \
       declassification step — future work in the paper's §6, and exactly@ what \
       the conflict localizes.@.");

  banner "inference respects the self-check (strict Figure 2) reading";
  match
    ( Infer.infer four ~fixed:[ ("raw", cls "secret") ] pipeline,
      Infer.infer ~self_check:true four ~fixed:[ ("raw", cls "secret") ] pipeline )
  with
  | Ok b1, Ok b2 ->
    let wider =
      List.for_all
        (fun (v, c) -> four.Lattice.leq c (Binding.sbind b2 v))
        (Binding.bindings b1)
    in
    Fmt.pr "strict-mode least binding dominates the default one: %b@." wider
  | _ -> Fmt.pr "strict mode unsatisfiable here@."
