(* Figure 3, end to end: the paper's flagship example of information flow
   through process synchronization.

   This example reproduces every claim §4.3 makes about the program:

   1. the program transmits x to y by ordering process execution;
   2. it cannot deadlock, and the semaphores return to their initial
      values;
   3. it behaves like the sequential program
      [if x = 0 then begin m := 1; y := m end else begin y := m; m := 1 end];
   4. CFM certification requires sbind(x) <= sbind(modify) <= sbind(m)
      <= sbind(y), hence sbind(x) <= sbind(y);
   5. with sbind(x) = high and sbind(y) = low the program is rejected —
      and the empirical noninterference tester confirms the leak is real.

   Run with: dune exec examples/fig3_synchronization.exe *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Ast = Ifc_lang.Ast
module Smap = Ifc_support.Smap
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Infer = Ifc_core.Infer
module Report = Ifc_core.Report
module Paper = Ifc_core.Paper
module Scheduler = Ifc_exec.Scheduler
module Explore = Ifc_exec.Explore
module Ni = Ifc_exec.Noninterference

let banner title = Fmt.pr "@.=== %s ===@." title

let two = Chain.two

let low = two.Lattice.bottom

let high = two.Lattice.top

let () =
  banner "the program (paper, Figure 3)";
  Fmt.pr "%s@." (Ifc_lang.Pretty.program_to_string Paper.fig3);

  (* Claim 1 + 3: run it and compare with the sequential equivalent. *)
  banner "execution: y reveals whether x = 0";
  List.iter
    (fun x ->
      match
        ( Scheduler.run_program ~strategy:(`Random x) ~inputs:[ ("x", x) ] Paper.fig3,
          Scheduler.run_program ~strategy:`Leftmost ~inputs:[ ("x", x) ]
            Paper.fig3_sequential_equivalent )
      with
      | Scheduler.Terminated par, Scheduler.Terminated seq ->
        Fmt.pr "x = %d  ->  y = %d   (sequential equivalent: y = %d)@." x
          (Smap.find "y" par.Ifc_exec.Step.store)
          (Smap.find "y" seq.Ifc_exec.Step.store)
      | o, _ -> Fmt.pr "x = %d: unexpected outcome %a@." x Scheduler.pp_outcome o)
    [ 0; 1; 2; 7 ];

  (* Claim 2: exhaust all interleavings. *)
  banner "all interleavings (claim: cannot deadlock)";
  List.iter
    (fun x ->
      let s = Explore.explore_program ~inputs:[ ("x", x) ] Paper.fig3 in
      Fmt.pr "x = %d: %d states, %d deadlocks, divergence possible: %b@." x
        s.Explore.states
        (List.length s.Explore.deadlocks)
        s.Explore.has_cycle)
    [ 0; 1 ];

  (* Claim 4: the symbolic certification requirements. *)
  banner "certification requirements (paper 4.3)";
  Fmt.pr "%a@." Report.pp_requirements (Infer.constraints Paper.fig3.Ast.body);
  Fmt.pr
    "@.In particular sbind(x) <= sbind(modify) <= sbind(m) <= sbind(y):@ any \
     certified binding has sbind(x) <= sbind(y).@.";

  (* Claim 5: the leaky binding is rejected... *)
  banner "CFM verdicts";
  let binding_of pairs = Binding.make two pairs in
  let all_low = List.map (fun v -> (v, low)) Paper.fig3_vars in
  let leaky = ("x", high) :: List.remove_assoc "x" all_low in
  let escalated = Result.get_ok (Infer.infer two ~fixed:[ ("x", high) ] Paper.fig3) in
  List.iter
    (fun (name, b) ->
      Fmt.pr "%-34s %s@." name (Report.summary (Cfm.analyze_program b Paper.fig3)))
    [
      ("all low:", binding_of all_low);
      ("x high, rest low (the leak):", binding_of leaky);
      ("least binding fixing x = high:", escalated);
    ];
  Fmt.pr "least binding fixing x = high is: %a@." Binding.pp escalated;

  (* ... and the leak is semantically real. *)
  banner "empirical noninterference (observer = low)";
  let r = Ni.test ~pairs:6 ~observer:low (binding_of leaky) Paper.fig3 in
  Fmt.pr "input pairs tested: %d, violations: %d@." r.Ni.pairs_tested
    (List.length r.Ni.violations);
  (match r.Ni.violations with
  | v :: _ -> Fmt.pr "example violation:@.%a@." Ni.pp_violation v
  | [] -> Fmt.pr "unexpected: no violation found@.");

  (* Bonus: the paper notes the flow does not depend on the auxiliary
     semaphores — remove read/done sequencing and CFM still requires
     sbind(x) <= sbind(y) via modify and m. *)
  banner "without the sequencing semaphores";
  let stripped =
    match
      Ifc_lang.Parser.parse_program
        {|
var x, y, m : integer;
    modify, modified : semaphore initially(0);
cobegin
  begin m := 0; if x = 0 then begin signal(modify); wait(modified) end fi end
  || begin wait(modify); m := 1; signal(modified) end
  || y := m
coend
|}
    with
    | Ok p -> p
    | Error e -> Fmt.failwith "parse: %a" Ifc_lang.Parser.pp_error e
  in
  let cs = Infer.constraints stripped.Ast.body in
  Fmt.pr "%a@." Report.pp_requirements cs;
  let b =
    Binding.make two
      [ ("x", high); ("y", low); ("m", low); ("modify", low); ("modified", low) ]
  in
  Fmt.pr "x high / y low is %s (the race makes the flow possible, and CFM@ considers \
          possible flows)@."
    (Report.summary (Cfm.analyze_program b stripped))
