examples/fig3_synchronization.ml: Fmt Ifc_core Ifc_exec Ifc_lang Ifc_lattice Ifc_support List Result
