examples/inference_demo.mli:
