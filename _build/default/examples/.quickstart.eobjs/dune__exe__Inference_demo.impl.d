examples/inference_demo.ml: Fmt Ifc_core Ifc_lang Ifc_lattice List Result
