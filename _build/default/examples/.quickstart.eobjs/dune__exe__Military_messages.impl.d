examples/military_messages.ml: Fmt Ifc_core Ifc_lang Ifc_lattice
