examples/fig3_synchronization.mli:
