examples/quickstart.ml: Fmt Ifc_core Ifc_lang Ifc_lattice Ifc_logic List
