examples/audit_release.mli:
