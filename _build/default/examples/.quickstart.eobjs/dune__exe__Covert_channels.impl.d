examples/covert_channels.ml: Fmt Ifc_core Ifc_exec Ifc_lang Ifc_lattice Ifc_logic List
