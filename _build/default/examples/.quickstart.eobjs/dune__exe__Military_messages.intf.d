examples/military_messages.mli:
