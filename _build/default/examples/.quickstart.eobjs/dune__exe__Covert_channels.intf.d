examples/covert_channels.mli:
