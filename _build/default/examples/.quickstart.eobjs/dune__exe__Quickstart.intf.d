examples/quickstart.mli:
