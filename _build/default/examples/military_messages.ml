(* A multi-level-security workload over the full MLS lattice.

   A small message-switch: three producers at different clearances
   (unclassified telemetry, secret:{NUC} targeting, secret:{EUR} liaison)
   hand messages to a router process through semaphores; the router files
   each message into the right outbox. The example shows CFM working over
   a 32-element level x category lattice:

   - the correctly-classified switch certifies;
   - misrouting NUC traffic into the EUR outbox is caught (incomparable
     categories, not just levels);
   - inference computes the least clearances for the router's internals.

   Run with: dune exec examples/military_messages.exe *)

module Lattice = Ifc_lattice.Lattice
module Mls = Ifc_lattice.Mls
module Ast = Ifc_lang.Ast
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Infer = Ifc_core.Infer
module Report = Ifc_core.Report

let banner title = Fmt.pr "@.=== %s ===@." title

let mls = Mls.standard

let label s = Mls.label mls s

let parse src =
  match Ifc_lang.Parser.parse_program src with
  | Ok p -> p
  | Error e -> Fmt.failwith "parse: %a" Ifc_lang.Parser.pp_error e

(* Producers write their message and signal; the router copies each into
   its outbox. Every copy is a potential flow the mechanism must clear. *)
let switch =
  parse
    {|
var telemetry, targeting, liaison : integer;
    out_public, out_nuc, out_eur, audit : integer;
    t_ready, n_ready, e_ready : semaphore initially(0);
cobegin
  begin telemetry := 100; signal(t_ready) end
  || begin targeting := 42; signal(n_ready) end
  || begin liaison := 7; signal(e_ready) end
  ||
  begin
    wait(t_ready); out_public := telemetry;
    wait(n_ready); out_nuc := targeting;
    wait(e_ready); out_eur := liaison;
    audit := out_public + 1
  end
coend
|}

let correct_binding =
  Binding.make mls
    [
      ("telemetry", label "unclassified:{}");
      ("targeting", label "secret:{NUC}");
      ("liaison", label "secret:{EUR}");
      ("out_public", label "unclassified:{}");
      ("out_nuc", label "secret:{NUC}");
      ("out_eur", label "secret:{EUR,NUC}");
      (* out_eur also dominates n_ready's class: the router waits on
         n_ready before writing it — ordering is information. *)
      ("audit", label "topsecret:{NUC,EUR,ASI}");
      ("t_ready", label "unclassified:{}");
      ("n_ready", label "secret:{NUC}");
      ("e_ready", label "secret:{EUR,NUC}");
    ]

let () =
  banner "the message switch";
  Fmt.pr "%s@." (Ifc_lang.Pretty.program_to_string switch);

  banner "correctly classified";
  let r = Cfm.analyze_program correct_binding switch in
  Fmt.pr "%s@." (Report.summary r);
  assert r.Cfm.certified;

  banner "misrouting: NUC targeting into the EUR outbox";
  let misrouted =
    parse
      {|
var targeting, out_eur : integer;
    n_ready : semaphore initially(0);
cobegin
  begin targeting := 42; signal(n_ready) end
  || begin wait(n_ready); out_eur := targeting end
coend
|}
  in
  let bad_binding =
    Binding.make mls
      [
        ("targeting", label "secret:{NUC}");
        ("out_eur", label "secret:{EUR}");
        ("n_ready", label "secret:{NUC}");
      ]
  in
  let r = Cfm.analyze_program bad_binding misrouted in
  Fmt.pr "%a@." (Report.pp_result mls) r;
  Fmt.pr
    "@.secret:{NUC} and secret:{EUR} are *incomparable* — same level, disjoint@ \
     need-to-know. Both the direct copy and the synchronization flow fail.@.";

  banner "inference: least clearances for the switch internals";
  (* Fix only the producers and the public outbox; let the analysis find
     everything else. *)
  (match
     Infer.infer mls
       ~fixed:
         [
           ("telemetry", label "unclassified:{}");
           ("targeting", label "secret:{NUC}");
           ("liaison", label "secret:{EUR}");
         ]
       switch
   with
  | Ok least ->
    Fmt.pr "%a@." Binding.pp least;
    assert (Cfm.certified least switch.Ast.body)
  | Error c ->
    Fmt.pr "unsatisfiable: %a@." Infer.pp_constr c.Infer.constr);

  banner "inference detects an impossible policy";
  (match
     Infer.infer mls
       ~fixed:
         [
           ("targeting", label "secret:{NUC}");
           ("out_nuc", label "confidential:{NUC}") (* below the source *);
         ]
       switch
   with
  | Ok _ -> Fmt.pr "unexpectedly satisfiable@."
  | Error c ->
    Fmt.pr "as expected, unsatisfiable:@ %a forces %s but out_nuc is fixed at %s@."
      Infer.pp_constr c.Infer.constr
      (mls.Lattice.to_string c.Infer.actual)
      (mls.Lattice.to_string c.Infer.allowed))
