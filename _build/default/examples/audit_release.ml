(* Controlled release: arrays, declassification, and integrity.

   A records system holds per-patient flags in a secret array; the public
   dashboard may see only the aggregate count, and only through an
   explicit declassification. This example shows:

   1. the array rules — reading a cell at a secret index, or publishing a
      cell directly, is caught (which slot is touched is information);
   2. declassification as a *data* escape hatch: the audited release is
      certified, the same release inside a secret-conditioned branch is
      not (contexts cannot be declassified away);
   3. the same machinery running a Biba-style integrity policy on the
      dual lattice, where the threat is low-integrity data corrupting a
      trusted total.

   Run with: dune exec examples/audit_release.exe *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Ast = Ifc_lang.Ast
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Report = Ifc_core.Report
module Scheduler = Ifc_exec.Scheduler
module Ni = Ifc_exec.Noninterference
module Smap = Ifc_support.Smap

let banner title = Fmt.pr "@.=== %s ===@." title

let two = Chain.two

let low = two.Lattice.bottom

let verdict ok = if ok then "CERTIFIED" else "REJECTED"

let parse src =
  match Ifc_lang.Parser.parse_program src with
  | Ok p -> p
  | Error e -> Fmt.failwith "parse: %a" Ifc_lang.Parser.pp_error e

let certify name p =
  let b = Result.get_ok (Binding.of_program two p) in
  Fmt.pr "%-52s %s@." name (verdict (Cfm.certified b p.Ast.body));
  b

let () =
  banner "the records program";
  let release =
    parse
      {|
var flags : array(4) class high;
    adjustment : integer class high;
    count : integer class high;
    i : integer class low;
    published : integer class low;
begin
  -- collect (secret per-record flags; `adjustment` is a secret input)
  flags[0] := 1; flags[1] := 0; flags[2] := 1; flags[3] := 1;
  -- aggregate (still secret). The counter i is public: the loop's
  -- termination depends on nothing secret, so its global flow is low.
  i := 0; count := adjustment;
  while i < 4 do begin count := count + flags[i]; i := i + 1 end;
  -- audited release of the aggregate only
  published := declassify count to low
end
|}
  in
  Fmt.pr "%s@." (Ifc_lang.Pretty.program_to_string release);

  banner "certification";
  let b = certify "audited aggregate release:" release in
  (match Scheduler.run_program ~strategy:`Leftmost release with
  | Scheduler.Terminated cfg ->
    Fmt.pr "runs to: published = %d@." (Smap.find "published" cfg.Ifc_exec.Step.store)
  | o -> Fmt.pr "unexpected outcome: %a@." Scheduler.pp_outcome o);
  ignore b;

  (* What the mechanism refuses. *)
  let cell_leak =
    parse
      {|
var flags : array(4) class high;
    published : integer class low;
published := flags[2]
|}
  in
  ignore (certify "publishing a raw cell:" cell_leak);
  let index_leak =
    parse
      {|
var board : array(4) class low;
    secret : integer class high;
board[secret % 4] := 1
|}
  in
  ignore (certify "writing a public board at a secret index:" index_leak);
  let context_leak =
    parse
      {|
var secret, published : integer class high;
    out : integer class low;
if secret = 0 then out := declassify published to low fi
|}
  in
  ignore (certify "declassifying under a secret branch:" context_leak);
  Fmt.pr
    "@.Declassification releases data, never control: the branch on `secret`@ is an \
     implicit flow and stays rejected.@.";

  banner "the release is a real (intended) channel";
  let b = Result.get_ok (Binding.of_program two release) in
  let r = Ni.test ~pairs:4 ~observer:low b release in
  Fmt.pr
    "noninterference test: %d violating pairs in %d — the aggregate@ (seeded by the \
     secret `adjustment`) is deliberately observable; every@ such release is marked \
     by a `declassify` the auditor can grep for.@."
    (List.length r.Ni.violations)
    r.Ni.pairs_tested;

  banner "the same machinery as an integrity (Biba) policy";
  (* Dual lattice: flows allowed from trusted to untrusted only. *)
  let integrity = Lattice.dual ~name:"integrity" two in
  let trusted = integrity.Lattice.bottom (* = confidentiality high *) in
  let untrusted = integrity.Lattice.top in
  let total_update =
    parse
      {|
var sensor, total, display : integer;
begin total := total + 1; display := total; sensor := sensor + 1 end
|}
  in
  let good =
    Binding.make integrity
      [ ("sensor", untrusted); ("total", trusted); ("display", untrusted) ]
  in
  Fmt.pr "%-52s %s@." "trusted total -> untrusted display:"
    (verdict (Cfm.certified good total_update.Ast.body));
  let bad = parse {|
var sensor, total : integer;
total := total + sensor
|} in
  let bad_b = Binding.make integrity [ ("sensor", untrusted); ("total", trusted) ] in
  Fmt.pr "%-52s %s@." "unvalidated sensor into the trusted total:"
    (verdict (Cfm.certified bad_b bad.Ast.body));
  let r = Cfm.analyze bad_b bad.Ast.body in
  Fmt.pr "%a@." (Report.pp_result integrity) r;
  Fmt.pr
    "@.Same Figure 2, dual order: `Lattice.dual` turns the confidentiality@ certifier \
     into an integrity certifier for free.@."
