(** Pretty-printer for programs, statements and expressions.

    Output re-parses to a structurally equal AST ([parse ∘ print = id] up
    to spans) — a property the test suite checks on random programs. The
    printer emits the same concrete syntax the parser reads: [begin/end]
    blocks, [cobegin .. || .. coend], keyword boolean connectives. *)

val pp_expr : Format.formatter -> Ast.expr -> unit

val pp_stmt : Format.formatter -> Ast.stmt -> unit

val pp_decl : Format.formatter -> Ast.decl -> unit

val pp_program : Format.formatter -> Ast.program -> unit

val expr_to_string : Ast.expr -> string

val stmt_to_string : Ast.stmt -> string

val program_to_string : Ast.program -> string
