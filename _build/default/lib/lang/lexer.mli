(** Hand-written lexer for the concrete syntax.

    The lexer is table-free and allocation-light: it walks the input string
    once, producing spanned tokens. Comments are ["-- to end of line"] and
    ["(* ... *)"] (nested). The paper's [#] not-equal operator is accepted
    alongside [<>] and [!=], and [!!] (a typesetting artifact for [||] in
    the paper) is accepted as the process separator. *)

type spanned = { token : Token.t; span : Loc.span }

type error = { message : string; pos : Loc.pos }

val tokenize : string -> (spanned list, error) result
(** [tokenize src] lexes all of [src], ending with an [EOF] token. *)

val pp_error : Format.formatter -> error -> unit
