(* Hand-written lexer. See the interface for the accepted syntax. *)

type spanned = { token : Token.t; span : Loc.span }

type error = { message : string; pos : Loc.pos }

let pp_error ppf e = Fmt.pf ppf "%a: %s" Loc.pp_pos e.pos e.message

type state = {
  src : string;
  mutable offset : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.offset < String.length st.src then Some st.src.[st.offset] else None

let peek2 st =
  if st.offset + 1 < String.length st.src then Some st.src.[st.offset + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.offset <- st.offset + 1

let pos st = { Loc.line = st.line; col = st.col }

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

(* Skip whitespace and both comment forms; returns an error only for an
   unterminated block comment. *)
let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '-' when peek2 st = Some '-' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_trivia st
  | Some '(' when peek2 st = Some '*' ->
    let start = pos st in
    advance st;
    advance st;
    let rec in_comment depth =
      match (peek st, peek2 st) with
      | Some '*', Some ')' ->
        advance st;
        advance st;
        if depth = 0 then Ok () else in_comment (depth - 1)
      | Some '(', Some '*' ->
        advance st;
        advance st;
        in_comment (depth + 1)
      | Some _, _ ->
        advance st;
        in_comment depth
      | None, _ -> Error { message = "unterminated comment"; pos = start }
    in
    Result.bind (in_comment 0) (fun () -> skip_trivia st)
  | Some _ | None -> Ok ()

let lex_number st =
  let start = st.offset in
  while match peek st with Some c -> is_digit c | None -> false do
    advance st
  done;
  let text = String.sub st.src start (st.offset - start) in
  match int_of_string_opt text with
  | Some n -> Ok (Token.INT n)
  | None -> Error { message = "integer literal out of range: " ^ text; pos = pos st }

let lex_ident st =
  let start = st.offset in
  while match peek st with Some c -> is_ident_char c | None -> false do
    advance st
  done;
  let text = String.sub st.src start (st.offset - start) in
  match List.assoc_opt (String.lowercase_ascii text) Token.keywords with
  | Some kw -> kw
  | None -> Token.IDENT text

let next_token st =
  Result.bind (skip_trivia st) (fun () ->
      let start = pos st in
      let simple tok n =
        for _ = 1 to n do
          advance st
        done;
        Ok tok
      in
      let result =
        match peek st with
        | None -> Ok Token.EOF
        | Some c when is_digit c -> lex_number st
        | Some c when is_ident_start c -> Ok (lex_ident st)
        | Some ':' -> if peek2 st = Some '=' then simple Token.ASSIGN 2 else simple Token.COLON 1
        | Some ';' -> simple Token.SEMI 1
        | Some ',' -> simple Token.COMMA 1
        | Some '(' -> simple Token.LPAREN 1
        | Some ')' -> simple Token.RPAREN 1
        | Some '[' -> simple Token.LBRACKET 1
        | Some ']' -> simple Token.RBRACKET 1
        | Some '|' ->
          if peek2 st = Some '|' then simple Token.PAR 2
          else Error { message = "expected '||'"; pos = start }
        | Some '!' -> (
          match peek2 st with
          | Some '=' -> simple Token.NE 2
          | Some '!' -> simple Token.PAR 2 (* the paper's rendering of || *)
          | Some _ | None -> Error { message = "expected '!=' or '!!'"; pos = start })
        | Some '+' -> simple Token.PLUS 1
        | Some '-' -> simple Token.MINUS 1
        | Some '*' -> simple Token.STAR 1
        | Some '/' -> simple Token.SLASH 1
        | Some '%' -> simple Token.PERCENT 1
        | Some '=' -> simple Token.EQ 1
        | Some '#' -> simple Token.NE 1
        | Some '<' -> (
          match peek2 st with
          | Some '=' -> simple Token.LE 2
          | Some '>' -> simple Token.NE 2
          | Some _ | None -> simple Token.LT 1)
        | Some '>' -> if peek2 st = Some '=' then simple Token.GE 2 else simple Token.GT 1
        | Some c ->
          Error { message = Printf.sprintf "unexpected character %C" c; pos = start }
      in
      Result.map
        (fun token -> { token; span = Loc.make ~start ~stop:(pos st) })
        result)

let tokenize src =
  let st = { src; offset = 0; line = 1; col = 1 } in
  let rec loop acc =
    match next_token st with
    | Error e -> Error e
    | Ok ({ token = Token.EOF; _ } as tok) -> Ok (List.rev (tok :: acc))
    | Ok tok -> loop (tok :: acc)
  in
  loop []
