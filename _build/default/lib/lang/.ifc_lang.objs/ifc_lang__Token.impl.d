lib/lang/token.ml:
