lib/lang/ast.ml: Bool Int List Loc Stdlib String
