lib/lang/gen.mli: Ast Ifc_support Seq
