lib/lang/pretty.ml: Ast Fmt
