lib/lang/gen.ml: Array Ast Ifc_support List Seq Wellformed
