lib/lang/wellformed.ml: Ast Fmt Hashtbl Ifc_support List Loc Printf Vars
