lib/lang/vars.mli: Ast Ifc_support
