lib/lang/metrics.mli: Ast Format
