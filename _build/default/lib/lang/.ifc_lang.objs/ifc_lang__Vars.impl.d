lib/lang/vars.ml: Ast Ifc_support List
