lib/lang/lexer.ml: Fmt List Loc Printf Result String Token
