lib/lang/lexer.mli: Format Loc Token
