lib/lang/metrics.ml: Ast Fmt List
