(** Source positions and spans for diagnostics.

    Every statement carries a span so certification failures can point at
    the offending construct ("line 7: sbind(sem) <= sbind(y) fails").
    Programs built programmatically (the AST combinators, the random
    generator) use {!dummy}. *)

type pos = { line : int; col : int }

type span = { start : pos; stop : pos }

let dummy_pos = { line = 0; col = 0 }

let dummy = { start = dummy_pos; stop = dummy_pos }

let is_dummy s = s.start.line = 0

let make ~start ~stop = { start; stop }

(** [merge a b] spans from the start of [a] to the end of [b]. *)
let merge a b =
  if is_dummy a then b
  else if is_dummy b then a
  else { start = a.start; stop = b.stop }

let pp_pos ppf p = Fmt.pf ppf "%d:%d" p.line p.col

let pp ppf s =
  if is_dummy s then Fmt.string ppf "<builtin>"
  else if s.start.line = s.stop.line then
    Fmt.pf ppf "line %d, cols %d-%d" s.start.line s.start.col s.stop.col
  else Fmt.pf ppf "lines %d-%d" s.start.line s.stop.line
