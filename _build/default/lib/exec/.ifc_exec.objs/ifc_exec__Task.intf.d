lib/exec/task.mli: Format Ifc_lang
