lib/exec/eval.mli: Format Ifc_lang Ifc_support
