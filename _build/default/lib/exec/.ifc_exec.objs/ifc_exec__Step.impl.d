lib/exec/step.ml: Array Buffer Eval Fmt Fun Ifc_core Ifc_lang Ifc_lattice Ifc_support List Printf Task
