lib/exec/noninterference.mli: Format Ifc_core Ifc_lang Stdlib
