lib/exec/noninterference.ml: Explore Fmt Ifc_core Ifc_lang Ifc_lattice Ifc_support List Step
