lib/exec/scheduler.mli: Eval Format Ifc_lang Step
