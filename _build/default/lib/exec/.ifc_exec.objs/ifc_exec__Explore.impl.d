lib/exec/explore.ml: Fmt Hashtbl Ifc_lang Ifc_support List Step Task
