lib/exec/taint.ml: Array Eval Fmt Fun Ifc_core Ifc_lang Ifc_lattice Ifc_support List Option
