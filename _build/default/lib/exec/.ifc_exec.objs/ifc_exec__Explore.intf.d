lib/exec/explore.mli: Format Ifc_lang Step
