lib/exec/task.ml: Buffer Fmt Ifc_lang List
