lib/exec/step.mli: Eval Format Ifc_core Ifc_lang Ifc_support Task
