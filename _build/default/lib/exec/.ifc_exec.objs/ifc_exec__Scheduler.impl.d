lib/exec/scheduler.ml: Eval Fmt Ifc_support List Step Task
