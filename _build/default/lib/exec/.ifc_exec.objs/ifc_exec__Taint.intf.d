lib/exec/taint.mli: Eval Format Ifc_core Ifc_lang Ifc_lattice Ifc_support Scheduler
