lib/exec/eval.ml: Array Fmt Ifc_lang Ifc_support Printf
