(* Schedulers for the small-step semantics. *)

module Prng = Ifc_support.Prng

type strategy = [ `Round_robin | `Random of int | `Leftmost ]

type outcome =
  | Terminated of Step.config
  | Deadlock of Step.config
  | Fault of string * Step.config
  | Fuel_exhausted of Step.config

type trace = (Step.label * Step.config) list

let pick strategy state choices =
  match choices with
  | [] -> None
  | _ -> (
    let n = List.length choices in
    match strategy with
    | `Leftmost -> Some (List.hd choices)
    | `Random _ -> (
      match state with
      | `Rng rng -> Some (List.nth choices (Prng.int rng n))
      | `Counter _ -> Some (List.hd choices))
    | `Round_robin -> (
      match state with
      | `Counter c ->
        (* Prefer the first enabled redex with index >= cursor, wrapping;
           advances the cursor past the chosen index. *)
        let sorted =
          List.sort (fun a b -> compare a.Step.index b.Step.index) choices
        in
        let chosen =
          match List.find_opt (fun ch -> ch.Step.index >= !c) sorted with
          | Some ch -> ch
          | None -> List.hd sorted
        in
        c := chosen.Step.index + 1;
        Some chosen
      | `Rng _ -> Some (List.hd choices)))

let run_general ?(fuel = 100_000) ~strategy ~record cfg =
  let state =
    match strategy with
    | `Random seed -> `Rng (Prng.create seed)
    | `Round_robin | `Leftmost -> `Counter (ref 0)
  in
  let rec loop cfg fuel =
    if Step.is_terminated cfg then Terminated cfg
    else if fuel <= 0 then Fuel_exhausted cfg
    else
      match Step.enabled cfg with
      | Error msg -> Fault (msg, cfg)
      | Ok [] -> Deadlock cfg
      | Ok choices -> (
        match pick strategy state choices with
        | None -> Deadlock cfg
        | Some choice ->
          record choice.Step.label choice.Step.next;
          loop choice.Step.next (fuel - 1))
  in
  loop cfg fuel

let run ?fuel ~strategy cfg = run_general ?fuel ~strategy ~record:(fun _ _ -> ()) cfg

let run_traced ?fuel ~strategy cfg =
  let trace = ref [] in
  let outcome =
    run_general ?fuel ~strategy ~record:(fun label next -> trace := (label, next) :: !trace) cfg
  in
  (outcome, List.rev !trace)

let run_program ?fuel ?inputs ~strategy p =
  run ?fuel ~strategy (Step.init p ?inputs ())

let final_store = function
  | Terminated cfg -> Some cfg.Step.store
  | Deadlock _ | Fault _ | Fuel_exhausted _ -> None

let pp_outcome ppf = function
  | Terminated cfg -> Fmt.pf ppf "terminated: %a" Eval.pp_store cfg.Step.store
  | Deadlock cfg -> Fmt.pf ppf "deadlock at %a" Task.pp cfg.Step.task
  | Fault (msg, _) -> Fmt.pf ppf "fault: %s" msg
  | Fuel_exhausted _ -> Fmt.string ppf "fuel exhausted"
