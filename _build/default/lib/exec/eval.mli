(** Expression evaluation over integer stores.

    The language is integer-valued; booleans are represented as 0/false,
    non-zero/true, so relational operators yield 0 or 1 and [if]/[while]
    conditions test non-zeroness. Division/modulo by zero, out-of-bounds
    array access and reads of undeclared names raise {!Fault}, which the
    interpreter converts into an execution outcome.

    Arrays are value-semantic: the interpreter copies on write, so
    environments can be shared freely across configurations during
    exhaustive exploration. *)

type store = int Ifc_support.Smap.t

type env = {
  store : store;  (** Scalar variables. *)
  arrays : int array Ifc_support.Smap.t;
      (** Arrays; never mutated in place — see {!store_index}. *)
}

exception Fault of string

val expr : env -> Ifc_lang.Ast.expr -> int
(** [expr env e] evaluates [e] atomically (the paper's indivisibility
    assumption). *)

val truthy : int -> bool

val store_index : env -> string -> int -> int -> env
(** [store_index env a i v] is [env] with [a.(i) <- v] performed
    persistently (copy-on-write). Raises {!Fault} on a bad index or
    unknown array. *)

val env_of_list :
  ?arrays:(string * int array) list -> (string * int) list -> env

val pp_store : Format.formatter -> store -> unit

val pp_env : Format.formatter -> env -> unit
