(* Expression evaluation. *)

module Smap = Ifc_support.Smap
module Ast = Ifc_lang.Ast

type store = int Smap.t

type env = { store : store; arrays : int array Smap.t }

exception Fault of string

let truthy v = v <> 0

let of_bool b = if b then 1 else 0

let lookup env x =
  match Smap.find_opt x env.store with
  | Some v -> v
  | None -> raise (Fault (Printf.sprintf "read of undeclared variable %s" x))

let lookup_array env a =
  match Smap.find_opt a env.arrays with
  | Some arr -> arr
  | None -> raise (Fault (Printf.sprintf "read of undeclared array %s" a))

let rec expr env = function
  | Ast.Int n -> n
  | Ast.Bool b -> of_bool b
  | Ast.Var x -> lookup env x
  | Ast.Index (a, i) ->
    let arr = lookup_array env a in
    let idx = expr env i in
    if idx < 0 || idx >= Array.length arr then
      raise (Fault (Printf.sprintf "index %d out of bounds for %s[%d]" idx a (Array.length arr)))
    else arr.(idx)
  | Ast.Unop (Ast.Neg, e) -> -expr env e
  | Ast.Unop (Ast.Not, e) -> of_bool (not (truthy (expr env e)))
  | Ast.Binop (op, e1, e2) -> (
    let a = expr env e1 and b = expr env e2 in
    match op with
    | Ast.Add -> a + b
    | Ast.Sub -> a - b
    | Ast.Mul -> a * b
    | Ast.Div -> if b = 0 then raise (Fault "division by zero") else a / b
    | Ast.Mod -> if b = 0 then raise (Fault "modulo by zero") else a mod b
    | Ast.Eq -> of_bool (a = b)
    | Ast.Ne -> of_bool (a <> b)
    | Ast.Lt -> of_bool (a < b)
    | Ast.Le -> of_bool (a <= b)
    | Ast.Gt -> of_bool (a > b)
    | Ast.Ge -> of_bool (a >= b)
    | Ast.And -> of_bool (truthy a && truthy b)
    | Ast.Or -> of_bool (truthy a || truthy b))

let store_index env a idx v =
  let arr = lookup_array env a in
  if idx < 0 || idx >= Array.length arr then
    raise (Fault (Printf.sprintf "index %d out of bounds for %s[%d]" idx a (Array.length arr)))
  else begin
    let copy = Array.copy arr in
    copy.(idx) <- v;
    { env with arrays = Smap.add a copy env.arrays }
  end

let env_of_list ?(arrays = []) kvs =
  { store = Smap.of_list kvs; arrays = Smap.of_list arrays }

let pp_store ppf st = Smap.pp Fmt.int ppf st

let pp_array ppf arr =
  Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ",") Fmt.int) (Array.to_list arr)

let pp_env ppf env =
  if Smap.is_empty env.arrays then pp_store ppf env.store
  else Fmt.pf ppf "%a %a" pp_store env.store (Smap.pp pp_array) env.arrays
