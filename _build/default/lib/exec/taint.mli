(** Dynamic information-state monitoring (Definition 2, run-time view).

    Executes a program while tracking the *current* class of every
    variable — the paper's dynamic information state — mirroring the flow
    logic's accounting at run time:

    - an assignment sets [x̄] to [ē (+) local (+) global], where [local]
      is the join of the classes of the conditions guarding the executing
      branch (structural, per process) and [global] is the accumulated
      global-flow class of the run;
    - entering a [while] joins its condition's class into [global]
      (conditional termination);
    - a completed [wait] joins the semaphore's class into [global]
      (conditional delay), and semaphore operations update the semaphore's
      class like assignments.

    A *violation* is a variable whose final class exceeds its static
    binding. The monitor sees one schedule at a time, so unlike CFM it
    accepts runs of some insecure programs (it cannot observe the branch
    not taken) and accepts runs CFM rejects (e.g. §5.2's
    [x := 0; y := x]) — the examples and tests use it to contrast dynamic
    and static enforcement. *)

type 'a report = {
  outcome : [ `Terminated | `Deadlock | `Fault of string | `Fuel_exhausted ];
  store : Eval.store;  (** Final variable values. *)
  classes : 'a Ifc_support.Smap.t;  (** Final information state. *)
  global : 'a;  (** Final global certification class. *)
  violations : (string * 'a) list;
      (** Variables whose final class is not [<=] their binding. *)
}

val run :
  ?fuel:int ->
  ?inputs:(string * int) list ->
  strategy:Scheduler.strategy ->
  'a Ifc_core.Binding.t ->
  Ifc_lang.Ast.program ->
  'a report
(** [run ~strategy b p] executes [p] under the monitor. Every variable's
    initial class is its binding (inputs arrive at their clearance). *)

val pp_report : 'a Ifc_lattice.Lattice.t -> Format.formatter -> 'a report -> unit
