(** Empirical (possibilistic, termination-sensitive) noninterference
    testing.

    This goes beyond the paper's proof-theoretic consistency result: it
    checks the *semantic* property certification is meant to enforce. For
    an observer at level [obs], two initial stores agreeing on variables
    bound [<= obs] are executed under every interleaving (bounded
    exhaustive exploration) and their observable sets compared. Pairs
    whose exploration is incomplete are reported as skipped, not as
    evidence.

    Two comparison modes:

    - [`Insensitive] (default) — paper-faithful: only low projections of
      *terminal* stores are compared, and a side that may fail to finish
      (deadlock, divergence, fault) excuses differences. The paper's
      model tracks flows into variables only; "did the program finish",
      with no subsequent write, is one of the §1 covert channels the
      model deliberately disregards — and indeed CFM certifies programs
      whose pure termination depends on high data (see EXPERIMENTS.md).
      This is the property the suite validates for certified programs.
    - [`Sensitive] — termination behaviour itself ([Deadlock],
      [Divergence], [Fault]) is observable. Strictly stronger; used to
      demonstrate the paper's leaky examples (the §2.2 semaphore channel
      leaks *only* through deadlock when the victim's low write is the
      blocked statement itself). *)

type observable =
  | Low_store of (string * int) list  (** Sorted low projection. *)
  | Deadlock
  | Divergence
  | Fault of string

type violation = {
  inputs_a : (string * int) list;
  inputs_b : (string * int) list;
  only_a : observable list;  (** Observables possible from [a] only. *)
  only_b : observable list;
}

type result = {
  pairs_tested : int;
  pairs_skipped : int;  (** State-space bound hit; no verdict. *)
  violations : violation list;
}

val test :
  ?seed:int ->
  ?pairs:int ->
  ?max_states:int ->
  ?value_range:int ->
  ?termination:[ `Sensitive | `Insensitive ] ->
  observer:'a ->
  'a Ifc_core.Binding.t ->
  Ifc_lang.Ast.program ->
  result
(** [test ~observer b p] draws [pairs] (default 16) random input pairs
    that agree on low variables and differ on at least one high variable
    (values in [0, value_range)], explores both, and compares observable
    sets. If the program has no high variables the result is trivially
    empty. *)

val secure : result -> bool
(** No violations among the tested pairs. *)

val observables :
  ?max_states:int ->
  observer:'a ->
  'a Ifc_core.Binding.t ->
  inputs:(string * int) list ->
  Ifc_lang.Ast.program ->
  (observable list, string) Stdlib.result
(** The observable set from one initial store ([Error] if the exploration
    bound was hit). Exposed for examples and the CLI. *)

val pp_observable : Format.formatter -> observable -> unit

val pp_violation : Format.formatter -> violation -> unit
