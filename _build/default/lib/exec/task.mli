(** Runtime task trees: the control component of a configuration.

    A statement is normalised into a tree in which [begin..end] becomes
    right-nested sequencing, [cobegin..coend] a parallel node, and every
    other statement a leaf. Redexes (the next indivisible actions) are the
    leaves reachable without crossing the *second* component of a [Seq] —
    exactly the interleaving semantics the paper assumes, with assignment
    and expression evaluation indivisible. *)

type t =
  | Nil  (** Finished. *)
  | Leaf of Ifc_lang.Ast.stmt  (** Next indivisible action, or a control
                                   statement about to be expanded. *)
  | Seq of t * t  (** Run the first to completion, then the second. *)
  | Par of t list  (** All must finish (join) before the node finishes. *)

val of_stmt : Ifc_lang.Ast.stmt -> t
(** Normalisation; [Seq]/[Par] never directly carry composition leaves. *)

val is_done : t -> bool

val simplify : t -> t
(** Collapse [Seq (Nil, t)] and fully finished [Par] nodes. Applied after
    every step, so configurations compare structurally. *)

val key : t -> string
(** A canonical serialisation for state-space memoisation. Distinct tasks
    have distinct keys. *)

val pp : Format.formatter -> t -> unit
