(** Schedulers: drive a configuration to completion under a strategy.

    Strategies resolve the nondeterminism among enabled actions:

    - [`Round_robin] — cycle through redex positions; fair, deterministic;
    - [`Random seed] — seeded uniform choice; deterministic per seed;
    - [`Leftmost] — always the first enabled redex (pseudo-sequential).

    [fuel] bounds the number of indivisible steps, converting potential
    divergence into [Fuel_exhausted]. *)

type strategy = [ `Round_robin | `Random of int | `Leftmost ]

type outcome =
  | Terminated of Step.config
  | Deadlock of Step.config  (** Unfinished, but nothing is enabled. *)
  | Fault of string * Step.config  (** Runtime fault (division by zero). *)
  | Fuel_exhausted of Step.config

type trace = (Step.label * Step.config) list
(** The actions taken, oldest first, with the configuration after each. *)

val run :
  ?fuel:int -> strategy:strategy -> Step.config -> outcome
(** [run ~strategy c] executes to an outcome; default [fuel] is 100_000. *)

val run_traced :
  ?fuel:int -> strategy:strategy -> Step.config -> outcome * trace

val run_program :
  ?fuel:int ->
  ?inputs:(string * int) list ->
  strategy:strategy ->
  Ifc_lang.Ast.program ->
  outcome

val final_store : outcome -> Eval.store option
(** The store of a [Terminated] outcome. *)

val pp_outcome : Format.formatter -> outcome -> unit
