(* Text format for user-defined classification schemes. *)

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char ',')
  |> List.map String.trim
  |> List.filter (fun w -> w <> "")

(* One "order:" clause is a comma-separated list of chains "a < b < c". *)
let parse_order_clause ~lineno clause =
  let chains = String.split_on_char ',' clause in
  List.fold_left
    (fun acc chain ->
      Result.bind acc (fun edges ->
          let parts =
            String.split_on_char '<' chain |> List.map String.trim
            |> List.filter (fun w -> w <> "")
          in
          match parts with
          | [] | [ _ ] ->
            Error (Printf.sprintf "line %d: expected a < b [< c ...] in order clause" lineno)
          | first :: rest ->
            let rec link prev acc = function
              | [] -> Ok acc
              | x :: more -> link x ((prev, x) :: acc) more
            in
            link first edges rest))
    (Ok []) chains

let parse text =
  let lines = String.split_on_char '\n' text in
  let state =
    List.fold_left
      (fun acc (lineno, raw) ->
        Result.bind acc (fun (name, elements, edges) ->
            let line = String.trim (strip_comment raw) in
            if line = "" then Ok (name, elements, edges)
            else
              let prefixed p =
                if String.length line >= String.length p
                   && String.equal (String.sub line 0 (String.length p)) p
                then Some (String.trim (String.sub line (String.length p)
                                          (String.length line - String.length p)))
                else None
              in
              match prefixed "lattice" with
              | Some rest when rest <> "" -> Ok (Some rest, elements, edges)
              | _ -> (
                match prefixed "elements:" with
                | Some rest -> Ok (name, elements @ split_words rest, edges)
                | None -> (
                  match prefixed "order:" with
                  | Some rest ->
                    Result.map
                      (fun new_edges -> (name, elements, new_edges @ edges))
                      (parse_order_clause ~lineno rest)
                  | None ->
                    Error (Printf.sprintf "line %d: unrecognised directive %S" lineno line)))))
      (Ok (None, [], []))
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  Result.bind state (fun (name, elements, edges) ->
      let name = Option.value name ~default:"user-lattice" in
      if elements = [] then Error (name ^ ": no elements declared")
      else
        let missing =
          List.filter
            (fun (a, b) -> not (List.mem a elements && List.mem b elements))
            edges
        in
        match missing with
        | (a, b) :: _ ->
          Error
            (Printf.sprintf "%s: order mentions undeclared element in %s < %s" name a b)
        | [] ->
          (* Reflexive-transitive closure by fixpoint over the edge list. *)
          let leq_tbl = Hashtbl.create 64 in
          let set a b = Hashtbl.replace leq_tbl (a, b) () in
          List.iter (fun e -> set e e) elements;
          List.iter (fun (a, b) -> set a b) edges;
          let changed = ref true in
          while !changed do
            changed := false;
            List.iter
              (fun a ->
                List.iter
                  (fun b ->
                    if Hashtbl.mem leq_tbl (a, b) then
                      List.iter
                        (fun c ->
                          if Hashtbl.mem leq_tbl (b, c) && not (Hashtbl.mem leq_tbl (a, c))
                          then begin
                            set a c;
                            changed := true
                          end)
                        elements)
                  elements)
              elements
          done;
          let leq a b = Hashtbl.mem leq_tbl (a, b) in
          (* Antisymmetry check: a declared cycle would collapse classes. *)
          let cycle =
            List.find_opt
              (fun (a, b) -> not (String.equal a b) && leq a b && leq b a)
              (Ifc_support.Listx.cartesian elements elements)
          in
          (match cycle with
          | Some (a, b) ->
            Error (Printf.sprintf "%s: order cycle between %s and %s" name a b)
          | None ->
            Lattice.make_from_order ~name ~elements ~leq ~to_string:Fun.id))

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let to_text (l : string Lattice.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("lattice " ^ l.Lattice.name ^ "\n");
  Buffer.add_string buf ("elements: " ^ String.concat " " l.elements ^ "\n");
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf "order: %s < %s\n" a b))
    (Lattice.covers l);
  Buffer.contents buf
