(** Product of two classification schemes, ordered componentwise.

    Products model orthogonal policy dimensions: e.g. sensitivity level on
    one axis and integrity or compartments on the other. *)

val make : ?name:string -> 'a Lattice.t -> 'b Lattice.t -> ('a * 'b) Lattice.t
(** [make l r] is the product lattice. [elements] is the full cartesian
    product, so its size is [|l| * |r|]. The textual form is
    ["<left>:<right>"] where [<left>] is an element of [l] and [<right>] of
    [r]; parsing splits on the first [':']. *)
