(** Parser for user-defined classification schemes.

    A small text format lets CLI users supply their own lattice:

    {v
    # Anything after '#' is a comment.
    lattice corporate
    elements: public internal secret board
    order: public < internal < secret
    order: internal < board
    order: board < top
    order: secret < top
    elements: top
    v}

    The declared order is closed reflexively and transitively, then
    validated to be a lattice (unique lubs/glbs, extrema) by
    {!Lattice.make_from_order}; elements are strings. *)

val parse : string -> (string Lattice.t, string) result
(** [parse text] parses and validates a scheme from [text]. The error
    message carries a line number for syntax errors and a law/witness
    description for structural ones. *)

val parse_file : string -> (string Lattice.t, string) result
(** [parse_file path] reads [path] and applies {!parse}. *)

val to_text : string Lattice.t -> string
(** [to_text l] renders [l] back in the specification format (covering
    edges only); [parse (to_text l)] reconstructs an order-isomorphic
    scheme. *)
