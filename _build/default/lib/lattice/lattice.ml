(* Finite security classification schemes (paper, Definition 1). See the
   interface for the design discussion. *)

type 'a t = {
  name : string;
  elements : 'a list;
  equal : 'a -> 'a -> bool;
  compare : 'a -> 'a -> int;
  leq : 'a -> 'a -> bool;
  join : 'a -> 'a -> 'a;
  meet : 'a -> 'a -> 'a;
  bottom : 'a;
  top : 'a;
  to_string : 'a -> string;
  of_string : string -> ('a, string) result;
}

let pp l ppf x = Fmt.string ppf (l.to_string x)

let mem l x = List.exists (l.equal x) l.elements

let joins l xs = List.fold_left l.join l.bottom xs

let meets l xs = List.fold_left l.meet l.top xs

let lt l x y = l.leq x y && not (l.equal x y)

let comparable l x y = l.leq x y || l.leq y x

let covers l =
  let strictly_between x y z = lt l x z && lt l z y in
  List.concat_map
    (fun x ->
      List.filter_map
        (fun y ->
          if lt l x y && not (List.exists (strictly_between x y) l.elements)
          then Some (x, y)
          else None)
        l.elements)
    l.elements

let height l =
  (* Longest chain via memoised depth over the covering DAG. *)
  let cov = covers l in
  let tbl = Hashtbl.create 17 in
  let rec depth x =
    match Hashtbl.find_opt tbl (l.to_string x) with
    | Some d -> d
    | None ->
      let ups = List.filter_map (fun (a, b) -> if l.equal a x then Some b else None) cov in
      let d = List.fold_left (fun acc y -> max acc (1 + depth y)) 0 ups in
      Hashtbl.add tbl (l.to_string x) d;
      d
  in
  depth l.bottom

let rename name l = { l with name }

let to_dot l =
  let buf = Buffer.create 256 in
  let quote s = "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\"" in
  Buffer.add_string buf "digraph lattice {\n  rankdir=BT;\n  node [shape=box];\n";
  List.iter
    (fun x -> Buffer.add_string buf (Printf.sprintf "  %s;\n" (quote (l.to_string x))))
    l.elements;
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s;\n" (quote (l.to_string a)) (quote (l.to_string b))))
    (covers l);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let dual ?name l =
  {
    l with
    name = (match name with Some n -> n | None -> "dual(" ^ l.name ^ ")");
    leq = (fun a b -> l.leq b a);
    join = l.meet;
    meet = l.join;
    bottom = l.top;
    top = l.bottom;
  }

let stringify l =
  let parse s =
    match l.of_string s with
    | Ok x -> x
    | Error msg -> invalid_arg ("Lattice.stringify: " ^ msg)
  in
  {
    name = l.name;
    elements = List.map l.to_string l.elements;
    equal = String.equal;
    compare = String.compare;
    leq = (fun a b -> l.leq (parse a) (parse b));
    join = (fun a b -> l.to_string (l.join (parse a) (parse b)));
    meet = (fun a b -> l.to_string (l.meet (parse a) (parse b)));
    bottom = l.to_string l.bottom;
    top = l.to_string l.top;
    to_string = Fun.id;
    of_string =
      (fun s -> Result.map l.to_string (l.of_string s));
  }

(* Build a lattice from an explicit order by searching for lubs/glbs.
   We precompute nothing: [elements] lists stay small (construction from an
   order is only used for parsed, user-defined schemes). *)
let make_from_order ~name ~elements ~leq ~to_string =
  let equal x y = leq x y && leq y x in
  let ( let* ) = Result.bind in
  let unique_bound ~what ~dir x y =
    (* dir = true: least upper bound; dir = false: greatest lower bound. *)
    let is_bound z = if dir then leq x z && leq y z else leq z x && leq z y in
    let bounds = List.filter is_bound elements in
    let extremal z =
      List.for_all (fun w -> if dir then leq z w else leq w z) bounds
    in
    match List.filter extremal bounds with
    | [ z ] -> Ok z
    | [] ->
      Error
        (Printf.sprintf "%s: no %s for %s and %s" name what (to_string x) (to_string y))
    | z :: _ as several ->
      (* With antisymmetry this cannot happen; report it to diagnose bad
         user-supplied orders rather than asserting. *)
      if List.for_all (equal z) several then Ok z
      else
        Error
          (Printf.sprintf "%s: multiple %ss for %s and %s" name what (to_string x)
             (to_string y))
  in
  let* () =
    if elements = [] then Error (name ^ ": empty carrier") else Ok ()
  in
  let* () =
    let reflexive = List.for_all (fun x -> leq x x) elements in
    if reflexive then Ok () else Error (name ^ ": order is not reflexive")
  in
  let* () =
    let transitive =
      List.for_all
        (fun x ->
          List.for_all
            (fun y ->
              List.for_all
                (fun z -> (not (leq x y && leq y z)) || leq x z)
                elements)
            elements)
        elements
    in
    if transitive then Ok () else Error (name ^ ": order is not transitive")
  in
  let* () =
    let names = List.map to_string elements in
    let sorted = List.sort_uniq String.compare names in
    if List.length sorted = List.length names then Ok ()
    else Error (name ^ ": duplicate element names")
  in
  (* Precompute the binary operation tables as association structures keyed
     by element indices so the returned operations are O(n) worst case but
     typically table lookups. *)
  let arr = Array.of_list elements in
  let n = Array.length arr in
  let index x =
    let rec go i = if i >= n then None else if equal arr.(i) x then Some i else go (i + 1) in
    go 0
  in
  let* join_table =
    let tbl = Array.make_matrix n n 0 in
    let rec fill i j =
      if i >= n then Ok tbl
      else if j >= n then fill (i + 1) 0
      else
        let* z = unique_bound ~what:"least upper bound" ~dir:true arr.(i) arr.(j) in
        match index z with
        | Some k ->
          tbl.(i).(j) <- k;
          fill i (j + 1)
        | None -> Error (name ^ ": internal index error")
    in
    fill 0 0
  in
  let* meet_table =
    let tbl = Array.make_matrix n n 0 in
    let rec fill i j =
      if i >= n then Ok tbl
      else if j >= n then fill (i + 1) 0
      else
        let* z = unique_bound ~what:"greatest lower bound" ~dir:false arr.(i) arr.(j) in
        match index z with
        | Some k ->
          tbl.(i).(j) <- k;
          fill i (j + 1)
        | None -> Error (name ^ ": internal index error")
    in
    fill 0 0
  in
  let op table x y =
    match (index x, index y) with
    | Some i, Some j -> arr.(table.(i).(j))
    | _ -> invalid_arg (name ^ ": element not in lattice")
  in
  let* bottom =
    match List.filter (fun x -> List.for_all (leq x) elements) elements with
    | [ b ] -> Ok b
    | b :: _ as several when List.for_all (equal b) several -> Ok b
    | _ -> Error (name ^ ": no minimum element")
  in
  let* top =
    match List.filter (fun x -> List.for_all (fun y -> leq y x) elements) elements with
    | [ t ] -> Ok t
    | t :: _ as several when List.for_all (equal t) several -> Ok t
    | _ -> Error (name ^ ": no maximum element")
  in
  let of_string s =
    match List.find_opt (fun x -> String.equal (to_string x) s) elements with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "%s: unknown class %S" name s)
  in
  let compare x y = String.compare (to_string x) (to_string y) in
  Ok
    {
      name;
      elements;
      equal;
      compare;
      leq;
      join = op join_table;
      meet = op meet_table;
      bottom;
      top;
      to_string;
      of_string;
    }
