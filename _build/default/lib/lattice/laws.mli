(** Lattice law validation.

    Definition 1 requires a *complete lattice*; for a finite carrier that is
    equivalent to the usual lattice axioms plus extrema. This module checks
    them, exhaustively when the carrier is small and on a deterministic
    sample otherwise, and reports the first counterexample found. It backs
    both the construction-time validation of parsed schemes and the
    property-based test suite. *)

type violation = {
  law : string;  (** Name of the violated law, e.g. ["join-commutative"]. *)
  witness : string;  (** Printed elements witnessing the violation. *)
}

val check : ?sample:int -> ?seed:int -> 'a Lattice.t -> (unit, violation) result
(** [check l] validates all laws. When [l] has more than [sample] (default
    64) elements, triples are drawn pseudo-randomly from seed [seed]
    (default 0) instead of enumerated; the check is then probabilistic but
    deterministic. *)

val laws : string list
(** Names of all checked laws, for reporting. *)
