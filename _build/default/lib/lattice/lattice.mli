(** Finite security classification schemes (paper, Definition 1).

    A security classification scheme is a finite complete lattice [(C, <=)].
    Lattices are represented as first-class values — a record of operations
    over an abstract element type ['a] — so every analysis in the toolkit is
    polymorphic in the scheme: the same CFM code runs over the two-point
    {low, high} lattice, a 65536-element powerset of categories, or a lattice
    parsed at runtime from a user specification. *)

type 'a t = {
  name : string;  (** Human-readable scheme name. *)
  elements : 'a list;  (** Every element of [C]; finite by Definition 1. *)
  equal : 'a -> 'a -> bool;
  compare : 'a -> 'a -> int;  (** A total order used only for containers. *)
  leq : 'a -> 'a -> bool;  (** The partial order [<=]. *)
  join : 'a -> 'a -> 'a;  (** Least upper bound [⊕]. *)
  meet : 'a -> 'a -> 'a;  (** Greatest lower bound [⊗]. *)
  bottom : 'a;  (** [low], the minimum of [C]. *)
  top : 'a;  (** [high], the maximum of [C]. *)
  to_string : 'a -> string;
  of_string : string -> ('a, string) result;
}

val pp : 'a t -> Format.formatter -> 'a -> unit
(** [pp l] is a pretty-printer for elements of [l]. *)

val mem : 'a t -> 'a -> bool
(** [mem l x] is true iff [x] is an element of [l]. *)

val joins : 'a t -> 'a list -> 'a
(** [joins l xs] is the least upper bound of [xs] ([l.bottom] when empty). *)

val meets : 'a t -> 'a list -> 'a
(** [meets l xs] is the greatest lower bound of [xs] ([l.top] when empty).
    This convention — the meet of no constraints is the most permissive
    class — is exactly what [mod] of a statement that modifies nothing
    requires. *)

val lt : 'a t -> 'a -> 'a -> bool
(** [lt l x y] is strict ordering: [leq x y] and not [equal x y]. *)

val comparable : 'a t -> 'a -> 'a -> bool
(** [comparable l x y] is true iff [x <= y] or [y <= x]. *)

val covers : 'a t -> ('a * 'a) list
(** [covers l] is the covering relation (Hasse diagram edges): pairs
    [(x, y)] with [x < y] and no [z] strictly between. *)

val height : 'a t -> int
(** [height l] is the length of the longest chain minus one. *)

val make_from_order :
  name:string ->
  elements:'a list ->
  leq:('a -> 'a -> bool) ->
  to_string:('a -> string) ->
  ('a t, string) result
(** [make_from_order ~name ~elements ~leq ~to_string] builds a lattice from
    a finite set and its partial order, computing joins and meets by search.
    Returns [Error _] when the order is not a lattice (some pair lacks a
    unique least upper or greatest lower bound) or lacks extrema.
    Structural equality is used for [equal]; [of_string] inverts
    [to_string] over [elements]. Cost of construction is O(n^3). *)

val rename : string -> 'a t -> 'a t
(** [rename name l] is [l] with its [name] replaced. *)

val to_dot : 'a t -> string
(** [to_dot l] renders the Hasse diagram (covering edges, bottom at the
    bottom) as a Graphviz digraph — pipe through [dot -Tsvg] to see the
    scheme. *)

val dual : ?name:string -> 'a t -> 'a t
(** [dual l] is the order-theoretic dual: [leq] flipped, [join]/[meet] and
    [bottom]/[top] swapped. Integrity policies (Biba) are the dual of
    confidentiality policies: information may flow from high to low
    *integrity*, so running CFM over [dual l] certifies integrity with no
    other change. *)

val stringify : 'a t -> string t
(** [stringify l] is the same scheme with elements represented by their
    printed names — the uniform representation the CLI works with.
    Operations parse on entry (O(|C|) per call via [of_string]), so this
    is for driver-level code, not inner loops. *)
