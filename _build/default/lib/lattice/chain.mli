(** Linear (totally ordered) classification schemes.

    Chains are the classic military-style hierarchies: every pair of classes
    is comparable, join is [max] and meet is [min]. Elements are represented
    by their level index, [0] being the least sensitive. *)

val make : ?name:string -> string list -> int Lattice.t
(** [make names] is the chain whose levels are [names], ordered from least
    to most sensitive. Raises [Invalid_argument] on an empty or duplicate
    list. *)

val two : int Lattice.t
(** The two-point lattice [{low < high}] used throughout the paper. *)

val three : int Lattice.t
(** [{low < mid < high}]. *)

val four : int Lattice.t
(** [{unclassified < confidential < secret < topsecret}]. *)

val of_size : int -> int Lattice.t
(** [of_size n] is an [n]-level chain with levels named [L0 .. L(n-1)].
    Used by benchmarks to scale lattice height independently of shape. *)

val level : int Lattice.t -> int -> int
(** [level chain i] is the element at index [i], checked against bounds. *)
