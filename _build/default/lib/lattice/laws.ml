(* Validation of the lattice axioms over a finite carrier. *)

type violation = { law : string; witness : string }

let laws =
  [
    "leq-reflexive";
    "leq-antisymmetric";
    "leq-transitive";
    "join-upper-bound";
    "join-least";
    "meet-lower-bound";
    "meet-greatest";
    "join-commutative";
    "meet-commutative";
    "join-associative";
    "meet-associative";
    "join-idempotent";
    "meet-idempotent";
    "absorption";
    "bottom-least";
    "top-greatest";
    "leq-join-consistent";
  ]

let check ?(sample = 64) ?(seed = 0) (l : 'a Lattice.t) =
  let open Lattice in
  let pp x = l.to_string x in
  let elements =
    if List.length l.elements <= sample then l.elements
    else begin
      let rng = Ifc_support.Prng.create seed in
      let arr = Array.of_list l.elements in
      List.init sample (fun _ -> arr.(Ifc_support.Prng.int rng (Array.length arr)))
      |> List.cons l.bottom
      |> List.cons l.top
    end
  in
  let fail law witness = Error { law; witness } in
  let check1 law pred =
    let rec go = function
      | [] -> Ok ()
      | x :: rest -> if pred x then go rest else fail law (pp x)
    in
    go elements
  in
  let check2 law pred =
    let rec go = function
      | [] -> Ok ()
      | x :: rest ->
        let rec inner = function
          | [] -> go rest
          | y :: more ->
            if pred x y then inner more else fail law (pp x ^ ", " ^ pp y)
        in
        inner elements
    in
    go elements
  in
  let check3 law pred =
    let rec go = function
      | [] -> Ok ()
      | x :: rest ->
        let rec mid = function
          | [] -> go rest
          | y :: more ->
            let rec inner = function
              | [] -> mid more
              | z :: zs ->
                if pred x y z then inner zs
                else fail law (String.concat ", " [ pp x; pp y; pp z ])
            in
            inner elements
        in
        mid elements
    in
    go elements
  in
  let ( let* ) = Result.bind in
  let* () = check1 "leq-reflexive" (fun x -> l.leq x x) in
  let* () =
    check2 "leq-antisymmetric" (fun x y -> (not (l.leq x y && l.leq y x)) || l.equal x y)
  in
  let* () =
    check3 "leq-transitive" (fun x y z -> (not (l.leq x y && l.leq y z)) || l.leq x z)
  in
  let* () =
    check2 "join-upper-bound" (fun x y ->
        let j = l.join x y in
        l.leq x j && l.leq y j)
  in
  let* () =
    check3 "join-least" (fun x y z ->
        (not (l.leq x z && l.leq y z)) || l.leq (l.join x y) z)
  in
  let* () =
    check2 "meet-lower-bound" (fun x y ->
        let m = l.meet x y in
        l.leq m x && l.leq m y)
  in
  let* () =
    check3 "meet-greatest" (fun x y z ->
        (not (l.leq z x && l.leq z y)) || l.leq z (l.meet x y))
  in
  let* () = check2 "join-commutative" (fun x y -> l.equal (l.join x y) (l.join y x)) in
  let* () = check2 "meet-commutative" (fun x y -> l.equal (l.meet x y) (l.meet y x)) in
  let* () =
    check3 "join-associative" (fun x y z ->
        l.equal (l.join x (l.join y z)) (l.join (l.join x y) z))
  in
  let* () =
    check3 "meet-associative" (fun x y z ->
        l.equal (l.meet x (l.meet y z)) (l.meet (l.meet x y) z))
  in
  let* () = check1 "join-idempotent" (fun x -> l.equal (l.join x x) x) in
  let* () = check1 "meet-idempotent" (fun x -> l.equal (l.meet x x) x) in
  let* () =
    check2 "absorption" (fun x y ->
        l.equal (l.join x (l.meet x y)) x && l.equal (l.meet x (l.join x y)) x)
  in
  let* () = check1 "bottom-least" (fun x -> l.leq l.bottom x) in
  let* () = check1 "top-greatest" (fun x -> l.leq x l.top) in
  check2 "leq-join-consistent" (fun x y ->
      Bool.equal (l.leq x y) (l.equal (l.join x y) y))
