(** Multi-level security schemes: hierarchical level × category set.

    The classic Bell–LaPadula / Denning lattice: an element is a pair of a
    clearance level and a compartment set; [l1 <= l2] iff the level is no
    higher and the compartments are included. Labels read and print as
    ["SECRET:{NUC,EUR}"]. *)

type elt = int * int
(** Level index paired with a category bitmask. *)

val make : ?name:string -> levels:string list -> categories:string list -> unit -> elt Lattice.t
(** [make ~levels ~categories ()] is the MLS lattice. [levels] are ordered
    least-sensitive first. Constraints on sizes are those of {!Chain.make}
    and {!Powerset.make}. *)

val label : elt Lattice.t -> string -> elt
(** [label l s] parses label [s], raising [Invalid_argument] on failure —
    a convenience for examples and tests where labels are literals. *)

val standard : elt Lattice.t
(** A ready-made 4-level, 3-category scheme
    (levels [unclassified..topsecret], categories [NUC, EUR, ASI]) used in
    examples and benchmarks. *)
