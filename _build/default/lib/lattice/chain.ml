(* Linear classification schemes: join = max, meet = min. *)

let make ?name names =
  if names = [] then invalid_arg "Chain.make: empty level list";
  let arr = Array.of_list names in
  let n = Array.length arr in
  if List.length (List.sort_uniq String.compare names) <> n then
    invalid_arg "Chain.make: duplicate level names";
  let name =
    match name with Some s -> s | None -> "chain(" ^ String.concat "<" names ^ ")"
  in
  let to_string i =
    if i < 0 || i >= n then invalid_arg "Chain: level out of range" else arr.(i)
  in
  let of_string s =
    let rec go i =
      if i >= n then Error (Printf.sprintf "%s: unknown class %S" name s)
      else if String.equal arr.(i) s then Ok i
      else go (i + 1)
    in
    go 0
  in
  {
    Lattice.name;
    elements = List.init n Fun.id;
    equal = Int.equal;
    compare = Int.compare;
    leq = ( <= );
    join = max;
    meet = min;
    bottom = 0;
    top = n - 1;
    to_string;
    of_string;
  }

let two = make ~name:"two-point" [ "low"; "high" ]

let three = make ~name:"three-point" [ "low"; "mid"; "high" ]

let four =
  make ~name:"four-level" [ "unclassified"; "confidential"; "secret"; "topsecret" ]

let of_size n =
  if n <= 0 then invalid_arg "Chain.of_size: need at least one level";
  make ~name:(Printf.sprintf "chain-%d" n) (List.init n (Printf.sprintf "L%d"))

let level (chain : int Lattice.t) i =
  if i < 0 || i > chain.top then invalid_arg "Chain.level: out of range" else i
