(* Multi-level security lattices: chain of levels x powerset of categories. *)

type elt = int * int

let make ?name ~levels ~categories () =
  let chain = Chain.make levels in
  let cats = Powerset.make categories in
  let name =
    match name with
    | Some s -> s
    | None ->
      Printf.sprintf "mls(%s; %s)" (String.concat "<" levels) (String.concat "," categories)
  in
  Product.make ~name chain cats

let label (l : elt Lattice.t) s =
  match l.Lattice.of_string s with
  | Ok x -> x
  | Error msg -> invalid_arg ("Mls.label: " ^ msg)

let standard =
  make ~name:"mls-standard"
    ~levels:[ "unclassified"; "confidential"; "secret"; "topsecret" ]
    ~categories:[ "NUC"; "EUR"; "ASI" ] ()
