lib/lattice/chain.ml: Array Fun Int Lattice List Printf String
