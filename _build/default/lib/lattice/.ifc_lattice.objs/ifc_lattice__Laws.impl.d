lib/lattice/laws.ml: Array Bool Ifc_support Lattice List Result String
