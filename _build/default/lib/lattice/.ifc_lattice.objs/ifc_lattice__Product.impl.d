lib/lattice/product.ml: Ifc_support Lattice Printf Result String
