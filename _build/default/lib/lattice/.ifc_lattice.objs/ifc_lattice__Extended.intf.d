lib/lattice/extended.mli: Format Lattice
