lib/lattice/mls.ml: Chain Lattice Powerset Printf Product String
