lib/lattice/lattice.mli: Format
