lib/lattice/lattice.ml: Array Buffer Fmt Fun Hashtbl List Printf Result String
