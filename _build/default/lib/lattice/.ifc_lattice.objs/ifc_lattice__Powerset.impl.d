lib/lattice/powerset.ml: Array Fun Hashtbl Int Lattice List Printf Result String
