lib/lattice/chain.mli: Lattice
