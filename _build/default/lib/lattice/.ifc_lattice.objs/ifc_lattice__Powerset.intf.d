lib/lattice/powerset.mli: Lattice
