lib/lattice/mls.mli: Lattice
