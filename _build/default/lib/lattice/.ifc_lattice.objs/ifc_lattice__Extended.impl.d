lib/lattice/extended.ml: Fmt Lattice List Result String
