lib/lattice/product.mli: Lattice
