lib/lattice/spec.mli: Lattice
