lib/lattice/laws.mli: Lattice
