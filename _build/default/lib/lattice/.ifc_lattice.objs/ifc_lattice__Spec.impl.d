lib/lattice/spec.ml: Buffer Fun Hashtbl Ifc_support In_channel Lattice List Option Printf Result String
