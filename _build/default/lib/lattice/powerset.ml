(* Powerset lattices over a finite category set, as bitmasks. *)

let max_categories = 20

(* The category array is recovered from the printed form, so we keep a
   registry keyed by lattice name to implement [of_categories]/[categories]
   without widening the Lattice.t record. *)
let registry : (string, string array) Hashtbl.t = Hashtbl.create 7

let make ?name cats =
  if cats = [] then invalid_arg "Powerset.make: empty category list";
  let arr = Array.of_list cats in
  let n = Array.length arr in
  if n > max_categories then invalid_arg "Powerset.make: too many categories";
  if List.length (List.sort_uniq String.compare cats) <> n then
    invalid_arg "Powerset.make: duplicate categories";
  let name =
    match name with
    | Some s -> s
    | None -> "powerset(" ^ String.concat "," cats ^ ")"
  in
  Hashtbl.replace registry name arr;
  let full = (1 lsl n) - 1 in
  let to_string x =
    let present = ref [] in
    for i = n - 1 downto 0 do
      if x land (1 lsl i) <> 0 then present := arr.(i) :: !present
    done;
    "{" ^ String.concat "," !present ^ "}"
  in
  let of_string s =
    let s = String.trim s in
    let len = String.length s in
    if len < 2 || s.[0] <> '{' || s.[len - 1] <> '}' then
      Error (Printf.sprintf "%s: expected {cat,...}, got %S" name s)
    else
      let inner = String.trim (String.sub s 1 (len - 2)) in
      if inner = "" then Ok 0
      else
        let parts = String.split_on_char ',' inner |> List.map String.trim in
        List.fold_left
          (fun acc part ->
            Result.bind acc (fun mask ->
                let rec find i =
                  if i >= n then Error (Printf.sprintf "%s: unknown category %S" name part)
                  else if String.equal arr.(i) part then Ok (mask lor (1 lsl i))
                  else find (i + 1)
                in
                find 0))
          (Ok 0) parts
  in
  {
    Lattice.name;
    elements = List.init (full + 1) Fun.id;
    equal = Int.equal;
    compare = Int.compare;
    leq = (fun x y -> x land y = x);
    join = ( lor );
    meet = ( land );
    bottom = 0;
    top = full;
    to_string;
    of_string;
  }

let lookup (l : int Lattice.t) =
  match Hashtbl.find_opt registry l.Lattice.name with
  | Some arr -> arr
  | None -> invalid_arg "Powerset: not a powerset lattice"

let of_categories l names =
  let arr = lookup l in
  List.fold_left
    (fun mask cat ->
      let rec find i =
        if i >= Array.length arr then
          invalid_arg (Printf.sprintf "Powerset.of_categories: unknown %S" cat)
        else if String.equal arr.(i) cat then mask lor (1 lsl i)
        else find (i + 1)
      in
      find 0)
    0 names

let categories l x =
  let arr = lookup l in
  let present = ref [] in
  for i = Array.length arr - 1 downto 0 do
    if x land (1 lsl i) <> 0 then present := arr.(i) :: !present
  done;
  !present
