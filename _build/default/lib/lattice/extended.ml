(* Extended classification schemes (Definition 4): adjoin nil below C'. *)

type 'a elt = Nil | El of 'a

let lift x = El x

let is_nil = function Nil -> true | El _ -> false

let get ~default = function Nil -> default | El x -> x

let make (l : 'a Lattice.t) =
  let equal x y =
    match (x, y) with
    | Nil, Nil -> true
    | El a, El b -> l.Lattice.equal a b
    | Nil, El _ | El _, Nil -> false
  in
  let compare x y =
    match (x, y) with
    | Nil, Nil -> 0
    | Nil, El _ -> -1
    | El _, Nil -> 1
    | El a, El b -> l.compare a b
  in
  let leq x y =
    match (x, y) with
    | Nil, _ -> true
    | El _, Nil -> false
    | El a, El b -> l.leq a b
  in
  let join x y =
    match (x, y) with
    | Nil, z | z, Nil -> z
    | El a, El b -> El (l.join a b)
  in
  let meet x y =
    match (x, y) with
    | Nil, _ | _, Nil -> Nil
    | El a, El b -> El (l.meet a b)
  in
  let to_string = function Nil -> "nil" | El a -> l.to_string a in
  let of_string s =
    if String.equal s "nil" then Ok Nil else Result.map lift (l.of_string s)
  in
  {
    Lattice.name = "extended(" ^ l.name ^ ")";
    elements = Nil :: List.map lift l.elements;
    equal;
    compare;
    leq;
    join;
    meet;
    bottom = Nil;
    top = El l.top;
    to_string;
    of_string;
  }

let pp l ppf x = Fmt.string ppf (match x with Nil -> "nil" | El a -> l.Lattice.to_string a)
