(** Powerset (category / compartment) classification schemes.

    The lattice of subsets of a finite category set, ordered by inclusion:
    Denning's "need-to-know" compartments. Elements are bitmasks over the
    category array, so [join]/[meet] are single word operations and the
    scheme scales to thousands of elements for benchmarking. *)

val make : ?name:string -> string list -> int Lattice.t
(** [make categories] is the powerset lattice over [categories]. The element
    representation is a bitmask; bit [i] set means category [i] is present.
    At most 20 categories (2^20 elements are enumerated in [elements]).
    Raises [Invalid_argument] on empty, duplicate, or too many categories.
    Textual form is [{A,B}]; the empty set prints as [{}]. *)

val of_categories : int Lattice.t -> string list -> int
(** [of_categories l names] is the element of [l] holding exactly [names].
    Raises [Invalid_argument] for unknown category names. *)

val categories : int Lattice.t -> int -> string list
(** [categories l x] lists the categories present in [x]. *)
