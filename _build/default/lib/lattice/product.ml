(* Componentwise products of classification schemes. *)

let make ?name (l : 'a Lattice.t) (r : 'b Lattice.t) =
  let name =
    match name with
    | Some s -> s
    | None -> Printf.sprintf "%s x %s" l.Lattice.name r.Lattice.name
  in
  let to_string (a, b) = l.to_string a ^ ":" ^ r.to_string b in
  let of_string s =
    match String.index_opt s ':' with
    | None -> Error (Printf.sprintf "%s: expected left:right, got %S" name s)
    | Some i ->
      let left = String.sub s 0 i
      and right = String.sub s (i + 1) (String.length s - i - 1) in
      Result.bind (l.of_string left) (fun a ->
          Result.map (fun b -> (a, b)) (r.of_string right))
  in
  {
    Lattice.name;
    elements = Ifc_support.Listx.cartesian l.elements r.elements;
    equal = (fun (a1, b1) (a2, b2) -> l.equal a1 a2 && r.equal b1 b2);
    compare =
      (fun (a1, b1) (a2, b2) ->
        let c = l.compare a1 a2 in
        if c <> 0 then c else r.compare b1 b2);
    leq = (fun (a1, b1) (a2, b2) -> l.leq a1 a2 && r.leq b1 b2);
    join = (fun (a1, b1) (a2, b2) -> (l.join a1 a2, r.join b1 b2));
    meet = (fun (a1, b1) (a2, b2) -> (l.meet a1 a2, r.meet b1 b2));
    bottom = (l.bottom, r.bottom);
    top = (l.top, r.top);
    to_string;
    of_string;
  }
