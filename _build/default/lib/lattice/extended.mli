(** Extended classification schemes (paper, Definition 4).

    CFM's [flow] function needs to distinguish "no global flow at all" from
    "a global flow of the least sensitive class": a [while] loop over a
    low-classified condition *does* produce a global flow (of class [low]),
    whereas an assignment produces none. The paper therefore adjoins a new
    minimum element [nil] below the whole scheme. [nil] is the identity of
    [⊕] on the extended scheme, so folding [flow] over components with
    initial value [nil] computes exactly Figure 2's case analysis. *)

type 'a elt = Nil | El of 'a

val make : 'a Lattice.t -> 'a elt Lattice.t
(** [make l] is the extended scheme [C = C' ∪ {nil}] of Definition 4. The
    bottom is [Nil]; the top is [El l.top]; [Nil] prints as ["nil"]. *)

val lift : 'a -> 'a elt
(** [lift x] is [El x]. *)

val is_nil : 'a elt -> bool

val get : default:'a -> 'a elt -> 'a
(** [get ~default x] projects back to the base scheme, mapping [Nil] to
    [default]. *)

val pp : 'a Lattice.t -> Format.formatter -> 'a elt -> unit
