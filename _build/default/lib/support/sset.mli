(** String sets (variable, array and semaphore names). *)

include Set.S with type elt = string

val pp : Format.formatter -> t -> unit
(** Prints [{a, b, c}], sorted, on one line. *)
