(** String-keyed maps, the workhorse container of the toolkit.

    Variables, semaphores and lattice element names are all strings, so a
    single specialised map module keeps signatures readable everywhere. *)

include Map.Make (String)

(** [of_list kvs] builds a map from an association list; later bindings win. *)
let of_list kvs = List.fold_left (fun m (k, v) -> add k v m) empty kvs

(** [keys m] is the sorted list of keys of [m]. *)
let keys m = fold (fun k _ acc -> k :: acc) m [] |> List.rev

(** [values m] is the list of values of [m] in key order. *)
let values m = fold (fun _ v acc -> v :: acc) m [] |> List.rev

(** [find_or ~default k m] is the binding of [k], or [default] if absent. *)
let find_or ~default k m = match find_opt k m with Some v -> v | None -> default

(** [pp pp_v ppf m] prints [m] as [{k1 -> v1; k2 -> v2}] in key order. *)
let pp pp_v ppf m =
  let items = bindings m in
  let pp_item ppf (k, v) = Fmt.pf ppf "%s -> %a" k pp_v v in
  Fmt.pf ppf "@[<h>{%a}@]" (Fmt.list ~sep:(Fmt.any "; ") pp_item) items
