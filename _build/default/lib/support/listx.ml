(** List utilities missing from the standard library (OCaml 5.1). *)

(** [fold_left_map1 f init xs] folds while also producing per-element
    results, like [List.fold_left_map]. Re-exported for older call sites. *)
let fold_left_map = List.fold_left_map

(** [pairs xs] is the list of all ordered pairs [(xi, xj)] with [i < j]. *)
let rec pairs = function
  | [] -> []
  | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest

(** [cartesian xs ys] is the cartesian product, in row-major order. *)
let cartesian xs ys =
  List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

(** [sequences n xs] enumerates all length-[n] sequences over [xs]
    (|xs|^n elements); used by the complete entailment decider. *)
let rec sequences n xs =
  if n <= 0 then [ [] ]
  else
    let rest = sequences (n - 1) xs in
    List.concat_map (fun x -> List.map (fun seq -> x :: seq) rest) xs

(** [take n xs] is the first [n] elements of [xs] (all of [xs] if shorter). *)
let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(** [drop n xs] is [xs] without its first [n] elements. *)
let rec drop n = function
  | xs when n <= 0 -> xs
  | [] -> []
  | _ :: rest -> drop (n - 1) rest

(** [index_of p xs] is the index of the first element satisfying [p]. *)
let index_of p xs =
  let rec go i = function
    | [] -> None
    | x :: rest -> if p x then Some i else go (i + 1) rest
  in
  go 0 xs

(** [dedup cmp xs] removes duplicates, keeping first occurrences and the
    original order. Quadratic; fine for the small lists it is used on. *)
let dedup compare xs =
  let rec go seen = function
    | [] -> []
    | x :: rest ->
      if List.exists (fun y -> compare x y = 0) seen then go seen rest
      else x :: go (x :: seen) rest
  in
  go [] xs

(** [transpose rows] transposes a rectangular list-of-lists. *)
let rec transpose = function
  | [] -> []
  | [] :: _ -> []
  | rows -> List.map List.hd rows :: transpose (List.map List.tl rows)
