(** A small, deterministic, splittable PRNG (SplitMix64).

    The toolkit never uses global randomness: program generators, random
    schedulers and noninterference testers all thread an explicit [t] so
    every test and benchmark is reproducible from a seed.  SplitMix64 is
    used because it is trivially splittable, which lets independent
    subcomputations (e.g. the per-process choices of a random scheduler)
    draw from decorrelated streams. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* Core SplitMix64 mixing function. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

(** [split t] returns a fresh generator whose stream is decorrelated from
    future draws of [t]. *)
let split t =
  let seed = next_int64 t in
  { state = mix64 seed }

(** [bits t] is a non-negative 62-bit random integer. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)
let int t n =
  assert (n > 0);
  bits t mod n

(** [bool t] is a uniform boolean. *)
let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [range t lo hi] is uniform in [\[lo, hi\]] inclusive. *)
let range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

(** [choose t xs] picks a uniform element of the non-empty list [xs]. *)
let choose t xs =
  match xs with
  | [] -> invalid_arg "Prng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))

(** [weighted t pairs] picks among [(weight, value)] pairs with probability
    proportional to weight.  Weights must be positive. *)
let weighted t pairs =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 pairs in
  if total <= 0 then invalid_arg "Prng.weighted: non-positive total weight";
  let rec pick n = function
    | [] -> invalid_arg "Prng.weighted: empty list"
    | [ (_, v) ] -> v
    | (w, v) :: rest -> if n < w then v else pick (n - w) rest
  in
  pick (int t total) pairs

(** [shuffle t xs] is a uniformly random permutation of [xs]. *)
let shuffle t xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
