(** List utilities missing from the standard library. *)

val fold_left_map :
  ('acc -> 'a -> 'acc * 'b) -> 'acc -> 'a list -> 'acc * 'b list

val pairs : 'a list -> ('a * 'a) list
(** All ordered pairs [(xi, xj)] with [i < j]. *)

val cartesian : 'a list -> 'b list -> ('a * 'b) list

val sequences : int -> 'a list -> 'a list list
(** [sequences n xs] enumerates all length-[n] sequences over [xs]
    ([|xs|^n] of them); used by the complete entailment decider. *)

val take : int -> 'a list -> 'a list

val drop : int -> 'a list -> 'a list

val index_of : ('a -> bool) -> 'a list -> int option

val dedup : ('a -> 'a -> int) -> 'a list -> 'a list
(** Remove duplicates (per the comparator), keeping first occurrences in
    order. Quadratic; for short lists. *)

val transpose : 'a list list -> 'a list list
(** Transpose a rectangular list-of-lists. *)
