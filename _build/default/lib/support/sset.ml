(** String sets (variable names, semaphore names). *)

include Set.Make (String)

(** [pp ppf s] prints [s] as [{a, b, c}]. *)
let pp ppf s =
  Fmt.pf ppf "@[<h>{%a}@]" (Fmt.list ~sep:(Fmt.any ", ") Fmt.string) (elements s)
