(** A small, deterministic, splittable PRNG (SplitMix64).

    The toolkit never uses global randomness: program generators, random
    schedulers and noninterference testers all thread an explicit [t] so
    every test and benchmark is reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t
(** [copy t] snapshots the state; the copy and the original then evolve
    independently but identically. *)

val split : t -> t
(** [split t] returns a generator whose stream is decorrelated from
    future draws of [t] — for handing to independent subcomputations. *)

val bits : t -> int
(** A non-negative 62-bit draw. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val bool : t -> bool

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val weighted : t -> (int * 'a) list -> 'a
(** [(weight, value)] selection proportional to weight; weights must sum
    to a positive total. *)

val shuffle : t -> 'a list -> 'a list
(** A uniform permutation (Fisher–Yates). *)
