lib/support/listx.mli:
