lib/support/prng.mli:
