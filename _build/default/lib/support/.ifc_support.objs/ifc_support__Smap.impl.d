lib/support/smap.ml: Fmt List Map String
