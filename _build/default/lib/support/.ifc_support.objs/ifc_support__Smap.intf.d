lib/support/smap.mli: Fmt Format Map
