lib/support/sset.ml: Fmt Set String
