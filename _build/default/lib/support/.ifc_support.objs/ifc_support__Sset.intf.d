lib/support/sset.mli: Format Set
