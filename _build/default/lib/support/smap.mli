(** String-keyed maps — the workhorse container of the toolkit.

    Variables, arrays and semaphores are all named by strings, so one
    specialised map module keeps signatures readable everywhere. *)

include Map.S with type key = string

val of_list : (string * 'a) list -> 'a t
(** Later bindings win. *)

val keys : 'a t -> string list
(** Sorted. *)

val values : 'a t -> 'a list
(** In key order. *)

val find_or : default:'a -> string -> 'a t -> 'a

val pp : 'a Fmt.t -> Format.formatter -> 'a t -> unit
(** Prints [{k1 -> v1; k2 -> v2}] in key order, on one line. *)
