(** The Denning & Denning certification mechanism (CACM 1977; paper §4.1).

    The baseline CFM extends. It performs the direct-flow check on
    assignments and the local-indirect check [sbind(e) <= mod(S)] on
    alternation and iteration, but tracks **no global flows**: conditional
    non-termination and synchronization channels are invisible to it.

    The original mechanism targets sequential programs that terminate on
    all inputs. To run it on this toolkit's language we must pick a
    behaviour for the parallel constructs:

    - [`Reject] — refuse any program containing [cobegin], [wait] or
      [signal] (the historically faithful reading);
    - [`Ignore] — treat [wait]/[signal] as certified no-ops and [cobegin]
      as independent composition (the "Denning checks only" reading, used
      to compare the two mechanisms on concurrent corpora, e.g. to count
      how many leaky programs the baseline misses).

    A key relationship, verified by the property suite: on any program,
    CFM certification implies Denning([`Ignore]) certification — CFM's
    checks are a strict superset. *)

type 'a result = {
  certified : bool;
  checks : 'a Cfm.check list;
      (** Reuses {!Cfm.check}; only [Assign_direct] and [If_local] rules
          appear ([If_local] is also used for the [while] condition check,
          which in this mechanism is local, not global). *)
  rejected_constructs : Ifc_lang.Loc.span list;
      (** Non-empty only under [`Reject]: the offending constructs. *)
}

val analyze :
  on_concurrency:[ `Reject | `Ignore ] ->
  'a Binding.t ->
  Ifc_lang.Ast.stmt ->
  'a result

val certified :
  on_concurrency:[ `Reject | `Ignore ] ->
  'a Binding.t ->
  Ifc_lang.Ast.stmt ->
  bool

val analyze_program :
  on_concurrency:[ `Reject | `Ignore ] ->
  'a Binding.t ->
  Ifc_lang.Ast.program ->
  'a result
