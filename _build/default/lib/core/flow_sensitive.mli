(** Flow-sensitive certification — the paper's §6 future work.

    CFM binds each variable to one class for the whole program, which is
    why §5.2's [begin x := 0; y := x end] is rejected under
    [x = high, y = low] even though it is secure: after [x := 0] the
    *current* class of [x] is [low]. The flow logic can prove this by
    strengthening assertions mid-proof; this module is the corresponding
    *mechanism*: a forward abstract interpretation that tracks the current
    class of every variable (the information state of Definition 2),
    joining at branch merges and iterating loops to a fixpoint, with the
    certification variables [local] (context) and [global] (conditional
    termination and synchronization) accounted exactly as in the logic.

    A program is accepted iff, from inputs at their bindings, every
    variable's class at termination is bounded by its binding. Accepted
    programs strictly include CFM-certified ones on the sequential
    fragment (a tested property), and include §5.2's example.

    Concurrency is handled conservatively: the branches of a [cobegin] are
    analysed flow-*insensitively* — every variable a branch or its
    siblings may write is pre-saturated with the join of everything that
    can reach it in any interleaving (its own binding-level information),
    i.e. inside [cobegin] the analysis degrades to CFM's static view.
    This keeps the analysis sound for races without an interference
    analysis; sequential code before and after stays flow-sensitive. *)

type 'a state = {
  classes : 'a Ifc_support.Smap.t;  (** Current class of each variable. *)
  global : 'a;  (** Accumulated global-flow class. *)
}

type 'a result = {
  accepted : bool;
  final : 'a state;
  violations : (string * 'a) list;
      (** Variables whose final class exceeds their binding. *)
}

val analyze : 'a Binding.t -> Ifc_lang.Ast.stmt -> 'a result
(** [analyze b s] runs the abstract interpretation from the initial state
    [v ↦ sbind(v)], [global = bottom]. *)

val certified : 'a Binding.t -> Ifc_lang.Ast.stmt -> bool

val certified_program : 'a Binding.t -> Ifc_lang.Ast.program -> bool
