(** The paper's example programs, parsed once and shared by tests,
    examples and benchmarks.

    Each value is the program text as printed in the paper (§2.2, §4.2,
    §4.3/Figure 3, §5.2), wrapped with the declarations the paper gives or
    implies. Two corrections to the (visibly corrupted) scan of Figure 3,
    both checked against the paper's own stated properties:

    - the scan shows a second [wait(done)] in the first process with no
      matching [signal], under which the program would *always* deadlock —
      contradicting §4.3's "the program of Figure 3 cannot deadlock" and
      "the final values of the semaphores are the same as their initial
      values". We drop the duplicate.
    - with the scan's order of the two [if] gates, the final value of [y]
      is the negation of what §4.3's explicitly given sequential
      equivalent ([if x = 0 then begin m := 1; y := m end else begin
      y := m; m := 1 end]) computes. We order the gates ([x = 0] before
      the rendezvous with the writer) so the semantic-equivalence claim
      holds; the test suite executes both and checks the equivalence.

    Neither correction affects any certification condition: the constraint
    chain [sbind(x) <= sbind(modify) <= sbind(m) <= sbind(y)] of §4.3 is
    derived from the corrected program exactly as the paper derives it. *)

val fig3 : Ifc_lang.Ast.program
(** Figure 3 — information flow using synchronization. Variables [x, y,
    m]; semaphores [modify, modified, read, done], initially 0. *)

val fig3_vars : string list
(** The seven names of Figure 3, in the paper's order. *)

val fig3_sequential_equivalent : Ifc_lang.Ast.program
(** §4.3's "same effect on x and y" sequential program. *)

val sec22_if : Ifc_lang.Ast.program
(** §2.2's local-flow example: [if x = 0 then y := 1]. *)

val sec22_loop : Ifc_lang.Ast.program
(** §2.2's global-flow loop: [while x # 0 do begin y := y + 1;
    x := x - 1 end; z := 1] — [z] reveals termination, hence [x]. *)

val sec22_semaphore : Ifc_lang.Ast.program
(** §2.2's synchronization channel:
    [cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end
    coend]. Deadlocks exactly when [x <> 0]. *)

val sec42_while : Ifc_lang.Ast.program
(** §4.2's iteration-check example:
    [while true do begin y := y + 1; wait(sem) end]. *)

val sec42_seq : Ifc_lang.Ast.program
(** §4.2's composition-check example: [begin wait(sem); y := 1 end]. *)

val sec52 : Ifc_lang.Ast.program
(** §5.2's relative-strength example: [begin x := 0; y := x end]. *)

val all : (string * Ifc_lang.Ast.program) list
(** Every program above with a short identifier, for table-driven tests. *)
