(** Static bindings (paper, Definition 3).

    A static binding maps every program variable — semaphores included — to
    a class of the scheme. Constants are bound to [low] and expressions to
    the join of their parts, so only the variable map is stored. *)

type 'a t

val lattice : 'a t -> 'a Ifc_lattice.Lattice.t

val make :
  'a Ifc_lattice.Lattice.t -> ?default:'a -> (string * 'a) list -> 'a t
(** [make l bindings] binds each named variable; variables not listed are
    bound to [default] (the lattice bottom if omitted). *)

val of_program :
  'a Ifc_lattice.Lattice.t ->
  ?default:'a ->
  ?overrides:(string * 'a) list ->
  Ifc_lang.Ast.program ->
  ('a t, string) result
(** [of_program l p] resolves the [class] annotations of [p]'s declarations
    against [l]; [overrides] take precedence over annotations. Returns
    [Error _] for an annotation naming no class of [l]. *)

val of_spec :
  'a Ifc_lattice.Lattice.t -> ?default:'a -> string -> ('a t, string) result
(** [of_spec l text] parses lines of the form ["name : class"] (blank lines
    and [#]-comments ignored). Class syntax is whatever [l.of_string]
    accepts, so MLS labels like [secret:{NUC}] work. *)

val sbind : 'a t -> string -> 'a
(** [sbind b v] is the class of variable [v] (Definition 3's sbind). *)

val bind : 'a t -> string -> 'a -> 'a t
(** [bind b v c] is [b] with [v] rebound to [c]. *)

val expr_class : 'a t -> Ifc_lang.Ast.expr -> 'a
(** [expr_class b e] is [sbind(e)]: constants are [low], [e1 op e2] is
    [sbind(e1) ⊕ sbind(e2)] (Definitions 2 and 3). *)

val bindings : 'a t -> (string * 'a) list
(** All explicit bindings, sorted by name. *)

val names : 'a t -> string list

val pp : Format.formatter -> 'a t -> unit
