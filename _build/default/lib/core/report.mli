(** Human-readable certification reports.

    Renders {!Cfm} and {!Denning} results the way the paper's §4.3
    discussion reads: one line per check, the failing ones first, with the
    concrete classes on both sides, plus the symbolic constraint view from
    {!Infer} for "certification is possible only if ..." statements. *)

val pp_check :
  'a Ifc_lattice.Lattice.t -> Format.formatter -> 'a Cfm.check -> unit

val pp_result :
  ?program:Ifc_lang.Ast.program ->
  'a Ifc_lattice.Lattice.t ->
  Format.formatter ->
  'a Cfm.result ->
  unit
(** Full report: verdict, [mod]/[flow] of the whole statement, then every
    check. When [program] is given its binding-relevant declarations are
    echoed first. *)

val pp_denning :
  'a Ifc_lattice.Lattice.t -> Format.formatter -> 'a Denning.result -> unit

val pp_verdict : Format.formatter -> bool -> unit
(** [CERTIFIED] / [REJECTED]. *)

val summary : 'a Cfm.result -> string
(** One line: verdict plus check counts. *)

val pp_requirements : Format.formatter -> Infer.constr list -> unit
(** The symbolic conditions under which certification succeeds — the §4.3
    style "only if sbind(x) <= sbind(modify)" list, deduplicated. *)
