(* The paper's example programs. See the interface for the Figure 3
   correction note. *)

let parse name src =
  match Ifc_lang.Parser.parse_program src with
  | Ok p -> p
  | Error e ->
    (* These sources are fixed at build time; a parse failure is a bug in
       this module, caught by the test suite immediately. *)
    invalid_arg (Fmt.str "Paper.%s: %a" name Ifc_lang.Parser.pp_error e)

let fig3 =
  parse "fig3"
    {|
var x, y, m : integer;
    modify, modified, read, done : semaphore initially(0);
cobegin
  begin
    m := 0;
    if x = 0 then begin signal(modify); wait(modified) end;
    signal(read);
    wait(done);
    if x # 0 then begin signal(modify); wait(modified) end
  end
  || begin wait(modify); m := 1; signal(modified) end
  || begin wait(read); y := m; signal(done) end
coend
|}

let fig3_vars = [ "x"; "y"; "m"; "modify"; "modified"; "read"; "done" ]

let fig3_sequential_equivalent =
  parse "fig3_sequential_equivalent"
    {|
var x, y, m : integer;
begin
  m := 0;
  if x = 0
  then begin m := 1; y := m end
  else begin y := m; m := 1 end
end
|}

let sec22_if = parse "sec22_if" {|
var x, y : integer;
if x = 0 then y := 1
|}

let sec22_loop =
  parse "sec22_loop"
    {|
var x, y, z : integer;
begin
  while x # 0 do begin y := y + 1; x := x - 1 end;
  z := 1
end
|}

let sec22_semaphore =
  parse "sec22_semaphore"
    {|
var x, y : integer;
    sem : semaphore initially(0);
cobegin
  if x = 0 then signal(sem)
  || begin wait(sem); y := 0 end
coend
|}

let sec42_while =
  parse "sec42_while"
    {|
var y : integer;
    sem : semaphore initially(0);
while true do begin y := y + 1; wait(sem) end
|}

let sec42_seq =
  parse "sec42_seq"
    {|
var y : integer;
    sem : semaphore initially(0);
begin wait(sem); y := 1 end
|}

let sec52 = parse "sec52" {|
var x, y : integer;
begin x := 0; y := x end
|}

let all =
  [
    ("fig3", fig3);
    ("fig3-sequential", fig3_sequential_equivalent);
    ("sec22-if", sec22_if);
    ("sec22-loop", sec22_loop);
    ("sec22-semaphore", sec22_semaphore);
    ("sec42-while", sec42_while);
    ("sec42-seq", sec42_seq);
    ("sec52", sec52);
  ]
