(** Binding inference: solve for the least static binding certifying a
    program.

    The paper assumes the binding is given; in practice one fixes the
    classifications of a few interface variables (inputs, outputs,
    semaphores crossing a trust boundary) and wants the analysis to find
    classes for the rest — or to report that none exist. Every CFM check
    is an inequality [join(atoms) <= sbind(v)] or [join(atoms) <= const]
    once the meet on the right ([mod]) is decomposed variable by variable,
    so the least solution is a Kleene iteration over the finite lattice.

    This also yields a *symbolic* view of certification: the constraint
    list for the paper's Figure 3 program literally contains
    [sbind(x) <= sbind(modify)], [sbind(modify) <= sbind(m)] and
    [sbind(m) <= sbind(y)] — the three conditions §4.3 derives by hand. *)

type atom =
  | Const_low  (** The class of constants. *)
  | Const_named of string
      (** A class named in the program text ([declassify .. to C]),
          resolved against the lattice at {!solve} time; unresolvable
          names evaluate to top (conservative). *)
  | Class of string  (** [sbind(v)]. *)

type constr = {
  span : Ifc_lang.Loc.span;
  rule : Cfm.rule;
  lhs : atom list;  (** Join of the atoms; empty list means [low]. *)
  rhs : string;  (** The single variable whose class bounds the join. *)
}

val constraints : ?self_check:bool -> Ifc_lang.Ast.stmt -> constr list
(** [constraints s] extracts every CFM check of [s] symbolically. The
    result does not depend on any lattice or binding — certification of
    [s] w.r.t. [b] holds iff every constraint is satisfied by [b] (a
    property the test suite checks against {!Cfm.certified} on random
    programs). *)

val pp_constr : Format.formatter -> constr -> unit
(** Prints e.g. [sbind(x) (+) sbind(y) <= sbind(z)]. *)

type 'a conflict = {
  constr : constr;
  actual : 'a;  (** The least value forced on the left-hand side. *)
  allowed : 'a;  (** The fixed upper bound it violates. *)
}

val solve :
  'a Ifc_lattice.Lattice.t ->
  fixed:(string * 'a) list ->
  constr list ->
  ('a Ifc_support.Smap.t, 'a conflict) result
(** [solve l ~fixed cs] computes the least assignment of classes to the
    non-[fixed] variables satisfying [cs], with fixed variables held at
    their given classes; unconstrained free variables rest at bottom.
    Returns the first violated fixed bound otherwise. *)

val infer :
  ?self_check:bool ->
  'a Ifc_lattice.Lattice.t ->
  fixed:(string * 'a) list ->
  Ifc_lang.Ast.program ->
  ('a Binding.t, 'a conflict) result
(** [infer l ~fixed p] is {!constraints} + {!solve} packaged as a binding:
    the least binding certifying [p] that respects [fixed]. The test suite
    verifies [Cfm.certified (infer ...) p] on random programs. *)
