(* Rendering of certification results. *)

module Lattice = Ifc_lattice.Lattice
module Extended = Ifc_lattice.Extended
module Loc = Ifc_lang.Loc

let pp_verdict ppf ok = Fmt.string ppf (if ok then "CERTIFIED" else "REJECTED")

let pp_check (l : 'a Lattice.t) ppf (c : 'a Cfm.check) =
  Fmt.pf ppf "[%s] %a: %s: %a <= %s"
    (if c.ok then "ok" else "FAIL")
    Loc.pp c.span (Cfm.rule_name c.rule)
    (Extended.pp l) c.lhs (l.to_string c.rhs)

let pp_result ?program (l : 'a Lattice.t) ppf (r : 'a Cfm.result) =
  Option.iter
    (fun (p : Ifc_lang.Ast.program) ->
      if p.decls <> [] then
        Fmt.pf ppf "declarations:@   @[<v>%a@]@."
          (Fmt.list ~sep:Fmt.cut Ifc_lang.Pretty.pp_decl)
          p.decls)
    program;
  let failed = Cfm.failed_checks r in
  Fmt.pf ppf "@[<v>verdict: %a@ mod(S) = %s@ flow(S) = %a@ checks: %d total, %d failed@ %a@]"
    pp_verdict r.certified (l.to_string r.mod_) (Extended.pp l) r.flow
    (List.length r.checks) (List.length failed)
    (Fmt.list ~sep:Fmt.cut (pp_check l))
    (failed @ List.filter (fun (c : 'a Cfm.check) -> c.ok) r.checks)

let pp_denning (l : 'a Lattice.t) ppf (r : 'a Denning.result) =
  Fmt.pf ppf "@[<v>verdict: %a@ checks: %d total, %d failed@ %a@]" pp_verdict r.certified
    (List.length r.checks)
    (List.length (List.filter (fun (c : 'a Cfm.check) -> not c.ok) r.checks))
    (Fmt.list ~sep:Fmt.cut (pp_check l))
    r.checks;
  match r.rejected_constructs with
  | [] -> ()
  | spans ->
    Fmt.pf ppf "@ rejected parallel constructs:@   @[<v>%a@]"
      (Fmt.list ~sep:Fmt.cut Loc.pp) spans

let summary (r : 'a Cfm.result) =
  Fmt.str "%a (%d checks, %d failed)" pp_verdict r.certified (List.length r.checks)
    (List.length (Cfm.failed_checks r))

let pp_requirements ppf constrs =
  (* Deduplicate by printed form and drop trivial [low <= _] constraints:
     what remains is the §4.3-style list of necessary conditions. *)
  let interesting (c : Infer.constr) =
    List.exists
      (function
        | Infer.Class v -> v <> c.rhs
        | Infer.Const_named _ -> true
        | Infer.Const_low -> false)
      c.lhs
  in
  let rendered =
    List.filter interesting constrs
    |> List.map (Fmt.str "%a" Infer.pp_constr)
    |> List.sort_uniq String.compare
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Fmt.string) rendered
