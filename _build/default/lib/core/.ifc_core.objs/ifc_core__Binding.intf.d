lib/core/binding.mli: Format Ifc_lang Ifc_lattice
