lib/core/infer.ml: Binding Cfm Fmt Ifc_lang Ifc_lattice Ifc_support List Option Result String
