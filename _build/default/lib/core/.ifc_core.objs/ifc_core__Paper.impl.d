lib/core/paper.ml: Fmt Ifc_lang
