lib/core/paper.mli: Ifc_lang
