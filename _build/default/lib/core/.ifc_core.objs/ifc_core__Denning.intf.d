lib/core/denning.mli: Binding Cfm Ifc_lang
