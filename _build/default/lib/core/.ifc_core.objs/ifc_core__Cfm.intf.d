lib/core/cfm.mli: Binding Ifc_lang Ifc_lattice
