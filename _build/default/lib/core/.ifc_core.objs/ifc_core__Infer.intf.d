lib/core/infer.mli: Binding Cfm Format Ifc_lang Ifc_lattice Ifc_support
