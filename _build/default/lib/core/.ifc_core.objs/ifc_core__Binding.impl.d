lib/core/binding.ml: Fmt Ifc_lang Ifc_lattice Ifc_support List Option Printf Result String
