lib/core/denning.ml: Binding Cfm Ifc_lang Ifc_lattice List
