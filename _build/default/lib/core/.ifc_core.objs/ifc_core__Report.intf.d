lib/core/report.mli: Cfm Denning Format Ifc_lang Ifc_lattice Infer
