lib/core/report.ml: Cfm Denning Fmt Ifc_lang Ifc_lattice Infer List Option String
