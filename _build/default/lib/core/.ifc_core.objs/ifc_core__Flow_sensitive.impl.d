lib/core/flow_sensitive.ml: Binding Cfm Ifc_lang Ifc_lattice Ifc_support List
