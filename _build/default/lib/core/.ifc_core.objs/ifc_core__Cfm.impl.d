lib/core/cfm.ml: Binding Ifc_lang Ifc_lattice List Printf
