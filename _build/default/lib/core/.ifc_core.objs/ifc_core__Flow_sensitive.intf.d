lib/core/flow_sensitive.mli: Binding Ifc_lang Ifc_support
