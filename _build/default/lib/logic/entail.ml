(* Entailment between flow assertions. *)

module Lattice = Ifc_lattice.Lattice

(* --------------------------------------------------------------- *)
(* Syntactic checker *)

(* Derive [atom <= goal] from hypotheses [hyps], where [atom] is a single
   symbol or constant and [goal] a normalized class expression. Chaining
   through hypotheses is bounded by a visited set on symbols. *)
let rec derive_atom (l : 'a Lattice.t) hyps visited atom (goal : 'a Cexpr.normal) =
  match atom with
  | `Const c ->
    (* A constant is only provably below the goal's constant part: goal
       symbols are arbitrary in some valuation, and hypotheses bound
       symbols, not constants. Sound, and complete for the assertions the
       proof rules produce. *)
    l.Lattice.leq c goal.Cexpr.const
  | `Sym s ->
    List.exists (fun s' -> Cexpr.compare_sym s s' = 0) goal.Cexpr.atoms
    || (not (List.mem s visited))
       && List.exists
            (fun (h : 'a Assertion.atom) ->
              let lhs_n = Cexpr.normalize l h.Assertion.lhs in
              (* h : lhs <= rhs with s among lhs's atoms gives s <= rhs. *)
              List.exists (fun s' -> Cexpr.compare_sym s s' = 0) lhs_n.Cexpr.atoms
              && derive_expr l hyps (s :: visited) h.Assertion.rhs goal)
            hyps

(* Derive [e <= goal] by deriving every join component. *)
and derive_expr l hyps visited e goal =
  let n = Cexpr.normalize l e in
  derive_atom l hyps visited (`Const n.Cexpr.const) goal
  && List.for_all (fun s -> derive_atom l hyps visited (`Sym s) goal) n.Cexpr.atoms

let check (l : 'a Lattice.t) hyps goals =
  List.for_all
    (fun (g : 'a Assertion.atom) ->
      let goal_n = Cexpr.normalize l g.Assertion.rhs in
      derive_expr l hyps [] g.Assertion.lhs goal_n)
    goals

(* --------------------------------------------------------------- *)
(* Complete decider by valuation enumeration *)

let decide ?(max_valuations = 200_000) (l : 'a Lattice.t) hyps goals =
  let syms =
    List.sort_uniq Cexpr.compare_sym (Assertion.syms hyps @ Assertion.syms goals)
  in
  let n_elems = List.length l.Lattice.elements in
  let n_syms = List.length syms in
  (* valuations = n_elems ^ n_syms; overflow-safe check. *)
  let rec count acc k =
    if k = 0 then Some acc
    else if acc > max_valuations then None
    else count (acc * n_elems) (k - 1)
  in
  match count 1 n_syms with
  | None ->
    Error
      (Printf.sprintf "entailment: %d^%d valuations exceed the limit %d" n_elems n_syms
         max_valuations)
  | Some _ ->
    let arr = Array.of_list l.Lattice.elements in
    let sym_arr = Array.of_list syms in
    let assignment = Array.make n_syms 0 in
    let env s =
      let rec find i =
        if i >= n_syms then l.Lattice.bottom
        else if Cexpr.compare_sym sym_arr.(i) s = 0 then arr.(assignment.(i))
        else find (i + 1)
      in
      find 0
    in
    let rec enumerate i =
      if i = n_syms then
        (not (Assertion.holds l env hyps)) || Assertion.holds l env goals
      else begin
        let rec loop v =
          if v >= Array.length arr then true
          else begin
            assignment.(i) <- v;
            enumerate (i + 1) && loop (v + 1)
          end
        in
        loop 0
      end
    in
    Ok (enumerate 0)
