(** Independent validation of flow-proof derivations against Figure 1.

    The checker verifies, at every node, that the rule instance is a
    correct application: axioms by simultaneous substitution and
    normalized assertion equality, structural rules by the shape
    constraints on the [{V, L, G}] decomposition, side conditions and the
    consequence steps by entailment, and the concurrency rule additionally
    by interference freedom.

    It shares no code with the Theorem-1 generator, so
    "generated proofs check" is a meaningful property — and, per the
    paper's Theorems 1 and 2, checking the generated proof is equivalent
    to CFM certification (tested on random programs in the suite). *)

type error = { span : Ifc_lang.Loc.span; rule : string; reason : string }

val pp_error : Format.formatter -> error -> unit

type entailer = [ `Syntactic | `Complete ]
(** Which entailment procedure discharges side conditions: the sound
    syntactic checker (default; validates everything the generator emits)
    or the complete-but-exponential decider (small proofs only). *)

val check :
  ?entailer:entailer ->
  ?interference:[ `Check | `Trust ] ->
  'a Ifc_lattice.Lattice.t ->
  'a Proof.t ->
  (unit, error list) result
(** [check l p] validates the derivation [p]. [`Trust] skips the
    (quadratic) interference-freedom check of the concurrency rule. *)

val valid : ?entailer:entailer -> 'a Ifc_lattice.Lattice.t -> 'a Proof.t -> bool
