(** Class expressions of the flow logic (paper §3.1).

    Terms denote security classes: constants of the scheme, the current
    class [v̄] of a program variable, the certification variables [local]
    and [global], and joins thereof. (Meets never occur in Figure 1's
    assertions, so they are not represented; [mod] lives in {!Ifc_core.Cfm},
    not here.) *)

type 'a t =
  | Const of 'a
  | Cls of string  (** [v̄], the current class of variable [v]. *)
  | Local
  | Global
  | Join of 'a t * 'a t

(** Substitutable symbols. *)
type sym = S_cls of string | S_local | S_global

val join : 'a t -> 'a t -> 'a t

val joins : 'a Ifc_lattice.Lattice.t -> 'a t list -> 'a t
(** [joins l es] folds [Join]; the empty join is [Const l.bottom]. *)

val of_expr : 'a Ifc_lattice.Lattice.t -> Ifc_lang.Ast.expr -> 'a t
(** [of_expr l e] is [ē]: constants map to [low], [e1 op e2] to the join
    (Definition 2). *)

val subst : (sym -> 'a t option) -> 'a t -> 'a t
(** [subst f e] simultaneously replaces every symbol [s] with [f s] when
    that is [Some _]. Simultaneous: replacement terms are not re-visited. *)

val subst1 : sym -> 'a t -> 'a t -> 'a t
(** [subst1 s r e] replaces just [s] by [r]. *)

val syms : 'a t -> sym list
(** Symbols occurring in [e], without duplicates, in first-occurrence
    order. *)

val eval : 'a Ifc_lattice.Lattice.t -> (sym -> 'a) -> 'a t -> 'a
(** [eval l env e] is the class denoted by [e] under valuation [env]. *)

(** Normal form: a join of distinct non-constant atoms plus one constant.
    Two expressions denote the same class in every lattice and valuation
    iff they have equal normal forms with equal constants. *)
type 'a normal = { const : 'a; atoms : sym list (* sorted, distinct *) }

val normalize : 'a Ifc_lattice.Lattice.t -> 'a t -> 'a normal

val of_normal : 'a normal -> 'a t

val equal : 'a Ifc_lattice.Lattice.t -> 'a t -> 'a t -> bool
(** Equality of normal forms. *)

val compare_sym : sym -> sym -> int

val pp : 'a Ifc_lattice.Lattice.t -> Format.formatter -> 'a t -> unit
(** Prints e.g. [class(x) (+) local (+) high]. *)
