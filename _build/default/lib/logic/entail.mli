(** Entailment between flow assertions ([P |- Q], paper §3.1).

    Two procedures:

    - {!check} — a sound syntactic derivation search: decompose each goal
      atom's left join and discharge the pieces by join-upper-bound,
      constant comparison, and transitive chaining through hypotheses. It
      validates every entailment the Theorem-1 construction produces, and
      never accepts a false entailment (the property suite tests it against
      {!decide}).

    - {!decide} — sound and complete for the assertion language, by
      enumerating all valuations of the free symbols over the (finite)
      scheme: [P |- Q] iff every valuation satisfying [P] satisfies [Q].
      Exponential, so bounded by [max_valuations]; intended for tests and
      small problems. *)

val check : 'a Ifc_lattice.Lattice.t -> 'a Assertion.t -> 'a Assertion.t -> bool
(** Sound, incomplete, fast. *)

val decide :
  ?max_valuations:int ->
  'a Ifc_lattice.Lattice.t ->
  'a Assertion.t ->
  'a Assertion.t ->
  (bool, string) result
(** Sound and complete; [Error _] when the valuation count would exceed
    [max_valuations] (default [200_000]). *)
