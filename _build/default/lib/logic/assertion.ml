(* Flow assertions: conjunctions of class-expression inequalities. *)

module Lattice = Ifc_lattice.Lattice

type 'a atom = { lhs : 'a Cexpr.t; rhs : 'a Cexpr.t }

type 'a t = 'a atom list

let atom lhs rhs = { lhs; rhs }

let subst f p = List.map (fun a -> { lhs = Cexpr.subst f a.lhs; rhs = Cexpr.subst f a.rhs }) p

let atom_key (l : 'a Lattice.t) a =
  let n e =
    let { Cexpr.const; atoms } = Cexpr.normalize l e in
    (l.Lattice.to_string const, atoms)
  in
  (n a.lhs, n a.rhs)

let equal (l : 'a Lattice.t) p q =
  let norm p = List.sort_uniq compare (List.map (atom_key l) p) in
  norm p = norm q

let holds (l : 'a Lattice.t) env p =
  List.for_all (fun a -> l.Lattice.leq (Cexpr.eval l env a.lhs) (Cexpr.eval l env a.rhs)) p

let syms p =
  let all = List.concat_map (fun a -> Cexpr.syms a.lhs @ Cexpr.syms a.rhs) p in
  List.sort_uniq Cexpr.compare_sym all

let policy binding vars =
  List.map
    (fun v -> atom (Cexpr.Cls v) (Cexpr.Const (Ifc_core.Binding.sbind binding v)))
    (List.sort_uniq String.compare vars)

type 'a triple = { v : 'a t; l : 'a Cexpr.t; g : 'a Cexpr.t }

let of_triple { v; l; g } =
  v @ [ atom Cexpr.Local l; atom Cexpr.Global g ]

let mentions_cert e =
  List.exists
    (function Cexpr.S_local | Cexpr.S_global -> true | Cexpr.S_cls _ -> false)
    (Cexpr.syms e)

let triple_of (lat : 'a Lattice.t) p =
  let is_exactly sym e =
    match Cexpr.normalize lat e with
    | { Cexpr.const; atoms = [ s ] } when Cexpr.compare_sym s sym = 0 ->
      lat.Lattice.equal const lat.Lattice.bottom
    | _ -> false
  in
  let classify (v, ls, gs, ok) a =
    if not ok then (v, ls, gs, false)
    else if is_exactly Cexpr.S_local a.lhs then
      if mentions_cert a.rhs then (v, ls, gs, false) else (v, a.rhs :: ls, gs, ok)
    else if is_exactly Cexpr.S_global a.lhs then
      if mentions_cert a.rhs then (v, ls, gs, false) else (v, ls, a.rhs :: gs, ok)
    else if mentions_cert a.lhs || mentions_cert a.rhs then (v, ls, gs, false)
    else (a :: v, ls, gs, ok)
  in
  let v, ls, gs, ok = List.fold_left classify ([], [], [], true) p in
  match (ok, ls, gs) with
  | true, _ :: _, _ :: _ ->
    (* Multiple bounds on the same certification variable conjoin to the
       bound evaluated as a meet; we only accept the single-bound form the
       rules produce, but tolerate duplicates of an identical bound. *)
    let dedup bounds =
      match Ifc_support.Listx.dedup (fun a b ->
                if Cexpr.equal lat a b then 0 else 1) bounds
      with
      | [ b ] -> Some b
      | _ -> None
    in
    Option.bind (dedup ls) (fun l ->
        Option.map (fun g -> { v = List.rev v; l; g }) (dedup gs))
  | _, _, _ -> None

let pp (l : 'a Lattice.t) ppf p =
  let pp_atom ppf a = Fmt.pf ppf "%a <= %a" (Cexpr.pp l) a.lhs (Cexpr.pp l) a.rhs in
  match p with
  | [] -> Fmt.string ppf "true"
  | _ -> Fmt.pf ppf "@[<hv>%a@]" (Fmt.list ~sep:(Fmt.any ",@ ") pp_atom) p
