lib/logic/entail.mli: Assertion Ifc_lattice
