lib/logic/invariance.mli: Check Ifc_core Ifc_lang Proof
