lib/logic/check.mli: Format Ifc_lang Ifc_lattice Proof
