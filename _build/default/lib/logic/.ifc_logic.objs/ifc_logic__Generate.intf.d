lib/logic/generate.mli: Assertion Ifc_core Ifc_lang Proof
