lib/logic/assertion.mli: Cexpr Format Ifc_core Ifc_lattice
