lib/logic/cexpr.ml: Fmt Ifc_lang Ifc_lattice List String
