lib/logic/cexpr.mli: Format Ifc_lang Ifc_lattice
