lib/logic/proof.mli: Assertion Format Ifc_lang Ifc_lattice
