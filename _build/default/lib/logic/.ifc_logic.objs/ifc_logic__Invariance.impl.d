lib/logic/invariance.ml: Check Generate Ifc_core Ifc_lattice
