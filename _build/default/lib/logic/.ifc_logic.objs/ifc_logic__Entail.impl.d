lib/logic/entail.ml: Array Assertion Cexpr Ifc_lattice List Printf
