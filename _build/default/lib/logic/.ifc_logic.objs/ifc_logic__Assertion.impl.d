lib/logic/assertion.ml: Cexpr Fmt Ifc_core Ifc_lattice Ifc_support List Option String
