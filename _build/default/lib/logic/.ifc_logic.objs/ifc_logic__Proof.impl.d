lib/logic/proof.ml: Assertion Fmt Ifc_lang Ifc_lattice List String
