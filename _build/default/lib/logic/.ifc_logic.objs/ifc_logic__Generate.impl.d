lib/logic/generate.ml: Assertion Cexpr Ifc_core Ifc_lang Ifc_lattice Ifc_support List Option Proof String
