lib/logic/check.ml: Assertion Cexpr Entail Fmt Ifc_lang Ifc_lattice List Proof Result String
