(** Flow assertions (paper §3.1).

    An assertion is a conjunction of inequalities between class
    expressions, [e1 <= e2]. The paper's [{V, L, G}] notation partitions an
    assertion into a part [V] free of [local]/[global], a bound
    [local <= l], and a bound [global <= g]; {!triple_of} recovers that
    partition when it exists, which the structural rules (alternation,
    iteration, concurrency) require. *)

type 'a atom = { lhs : 'a Cexpr.t; rhs : 'a Cexpr.t }

type 'a t = 'a atom list
(** Conjunction; the empty list is [true]. *)

val atom : 'a Cexpr.t -> 'a Cexpr.t -> 'a atom

val subst : (Cexpr.sym -> 'a Cexpr.t option) -> 'a t -> 'a t
(** Simultaneous substitution in both sides of every atom. *)

val equal : 'a Ifc_lattice.Lattice.t -> 'a t -> 'a t -> bool
(** Equality up to atom normalization, atom order and duplication. *)

val holds : 'a Ifc_lattice.Lattice.t -> (Cexpr.sym -> 'a) -> 'a t -> bool
(** [holds l env p] evaluates [p] under the valuation [env]. *)

val syms : 'a t -> Cexpr.sym list
(** All symbols of the assertion, without duplicates. *)

val policy : 'a Ifc_core.Binding.t -> string list -> 'a t
(** [policy b vars] is Definition 6's policy assertion for binding [b]
    restricted to [vars]: the conjunction of [v̄ <= sbind(v)]. *)

(** The [{V, L, G}] decomposition: [V] mentions neither [local] nor
    [global]; the bounds [l] and [g] are class expressions free of both. *)
type 'a triple = { v : 'a t; l : 'a Cexpr.t; g : 'a Cexpr.t }

val of_triple : 'a triple -> 'a t
(** [V @ [local <= l; global <= g]]. *)

val triple_of : 'a Ifc_lattice.Lattice.t -> 'a t -> 'a triple option
(** [triple_of l p] recovers the decomposition: exactly one atom bounding
    [Local], one bounding [Global] (joining multiple bounds if present),
    every other atom free of both symbols, and the bounds themselves free
    of both. [None] when [p] is not in [{V,L,G}] form. *)

val pp : 'a Ifc_lattice.Lattice.t -> Format.formatter -> 'a t -> unit
