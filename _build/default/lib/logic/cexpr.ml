(* Class expressions of the flow logic. *)

module Lattice = Ifc_lattice.Lattice
module Ast = Ifc_lang.Ast

type 'a t =
  | Const of 'a
  | Cls of string
  | Local
  | Global
  | Join of 'a t * 'a t

type sym = S_cls of string | S_local | S_global

let join a b = Join (a, b)

let joins (l : 'a Lattice.t) = function
  | [] -> Const l.Lattice.bottom
  | e :: rest -> List.fold_left join e rest

let rec of_expr (l : 'a Lattice.t) = function
  | Ast.Int _ | Ast.Bool _ -> Const l.Lattice.bottom
  | Ast.Var x -> Cls x
  | Ast.Index (a, i) -> Join (Cls a, of_expr l i)
  | Ast.Unop (_, e) -> of_expr l e
  | Ast.Binop (_, e1, e2) -> Join (of_expr l e1, of_expr l e2)

let rec subst f = function
  | Const _ as e -> e
  | Cls v as e -> ( match f (S_cls v) with Some r -> r | None -> e)
  | Local as e -> ( match f S_local with Some r -> r | None -> e)
  | Global as e -> ( match f S_global with Some r -> r | None -> e)
  | Join (a, b) -> Join (subst f a, subst f b)

let subst1 s r e = subst (fun s' -> if s' = s then Some r else None) e

let compare_sym a b =
  match (a, b) with
  | S_local, S_local | S_global, S_global -> 0
  | S_local, _ -> -1
  | _, S_local -> 1
  | S_global, _ -> -1
  | _, S_global -> 1
  | S_cls x, S_cls y -> String.compare x y

let syms e =
  let rec go acc = function
    | Const _ -> acc
    | Cls v -> if List.mem (S_cls v) acc then acc else S_cls v :: acc
    | Local -> if List.mem S_local acc then acc else S_local :: acc
    | Global -> if List.mem S_global acc then acc else S_global :: acc
    | Join (a, b) -> go (go acc a) b
  in
  List.rev (go [] e)

let rec eval (l : 'a Lattice.t) env = function
  | Const c -> c
  | Cls v -> env (S_cls v)
  | Local -> env S_local
  | Global -> env S_global
  | Join (a, b) -> l.Lattice.join (eval l env a) (eval l env b)

type 'a normal = { const : 'a; atoms : sym list }

let normalize (l : 'a Lattice.t) e =
  let rec go (const, atoms) = function
    | Const c -> (l.Lattice.join const c, atoms)
    | Cls v -> (const, S_cls v :: atoms)
    | Local -> (const, S_local :: atoms)
    | Global -> (const, S_global :: atoms)
    | Join (a, b) -> go (go (const, atoms) a) b
  in
  let const, atoms = go (l.Lattice.bottom, []) e in
  { const; atoms = List.sort_uniq compare_sym atoms }

let of_normal { const; atoms } =
  let atom_expr = function
    | S_cls v -> Cls v
    | S_local -> Local
    | S_global -> Global
  in
  List.fold_left (fun acc s -> Join (acc, atom_expr s)) (Const const) atoms

let equal (l : 'a Lattice.t) a b =
  let na = normalize l a and nb = normalize l b in
  l.Lattice.equal na.const nb.const
  && List.length na.atoms = List.length nb.atoms
  && List.for_all2 (fun x y -> compare_sym x y = 0) na.atoms nb.atoms

let pp_sym ppf = function
  | S_cls v -> Fmt.pf ppf "class(%s)" v
  | S_local -> Fmt.string ppf "local"
  | S_global -> Fmt.string ppf "global"

let pp (l : 'a Lattice.t) ppf e =
  let { const; atoms } = normalize l e in
  match (atoms, l.Lattice.equal const l.Lattice.bottom) with
  | [], _ -> Fmt.string ppf (l.Lattice.to_string const)
  | _, true -> Fmt.pf ppf "%a" (Fmt.list ~sep:(Fmt.any " (+) ") pp_sym) atoms
  | _, false ->
    Fmt.pf ppf "%a (+) %s"
      (Fmt.list ~sep:(Fmt.any " (+) ") pp_sym)
      atoms (l.Lattice.to_string const)
