(* Tests for the Concurrent Flow Mechanism (Figure 2) and the Denning
   baseline, including every worked example in the paper. *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Extended = Ifc_lattice.Extended
module Ast = Ifc_lang.Ast
module Parser = Ifc_lang.Parser
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Denning = Ifc_core.Denning
module Infer = Ifc_core.Infer
module Gen = Ifc_lang.Gen
module Prng = Ifc_support.Prng

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let two = Chain.two

let low = two.Lattice.bottom

let high = two.Lattice.top

let stmt src =
  match Parser.parse_stmt src with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let binding pairs = Binding.make two pairs

(* Convenience: extended-flow equality on the two-point lattice. *)
let flow_eq name expected actual =
  let ext = Extended.make two in
  if not (ext.Lattice.equal expected actual) then
    Alcotest.failf "%s: expected flow %s, got %s" name (ext.Lattice.to_string expected)
      (ext.Lattice.to_string actual)

(* ------------------------------------------------------------------ *)
(* Figure 2, construct by construct *)

let test_assign () =
  let b = binding [ ("x", high); ("y", low) ] in
  let s = stmt "x := y" in
  let r = Cfm.analyze b s in
  check "low into high certified" true r.certified;
  check_int "mod = sbind(x)" high r.mod_;
  flow_eq "assign flow" Extended.Nil r.flow;
  let r' = Cfm.analyze b (stmt "y := x") in
  check "high into low rejected" false r'.certified

let test_assign_expr_class () =
  let b = binding [ ("x", high); ("y", low); ("z", low) ] in
  check "join of operands" false (Cfm.certified b (stmt "z := y + x"));
  check "constants are low" true (Cfm.certified b (stmt "z := 1 + 2 * 3"));
  check "high target accepts join" true (Cfm.certified b (stmt "x := y + x"))

let test_skip () =
  let b = binding [] in
  let r = Cfm.analyze b Ast.skip in
  check "skip certified" true r.certified;
  check_int "mod(skip) = top" two.Lattice.top r.mod_;
  flow_eq "flow(skip)" Extended.Nil r.flow

let test_if_local_flow () =
  let b = binding [ ("x", high); ("y", low) ] in
  (* The §2.2 example: if x = 0 then y := 1 transmits x to y. *)
  check "implicit flow rejected" false (Cfm.certified b (stmt "if x = 0 then y := 1"));
  check "high target fine" true
    (Cfm.certified (binding [ ("x", high); ("y", high) ]) (stmt "if x = 0 then y := 1"))

let test_if_mod_is_meet () =
  let b = binding [ ("c", low); ("x", high); ("y", low) ] in
  let r = Cfm.analyze b (stmt "if c = 0 then x := 1 else y := 2") in
  check_int "mod = high meet low" low r.mod_;
  check "certified (c low)" true r.certified;
  let b' = binding [ ("c", high); ("x", high); ("y", low) ] in
  check "rejected via low branch" false
    (Cfm.certified b' (stmt "if c = 0 then x := 1 else y := 2"))

let test_if_flow_propagation () =
  let b = binding [ ("c", high); ("s", high) ] in
  (* A wait inside a branch exports a global flow tainted by the
     condition. *)
  let r = Cfm.analyze b (stmt "if c = 0 then wait(s) else skip") in
  flow_eq "flow = sbind(s)+sbind(c)" (Extended.El high) r.flow;
  let b2 = binding [ ("c", low); ("s", low) ] in
  let r2 = Cfm.analyze b2 (stmt "if c = 0 then wait(s) else skip") in
  flow_eq "flow low" (Extended.El low) r2.flow;
  let r3 = Cfm.analyze b2 (stmt "if c = 0 then x := 1 else skip") in
  flow_eq "no body flow -> nil (condition ignored)" Extended.Nil r3.flow

let test_while_flow () =
  let b = binding [ ("x", high); ("y", low) ] in
  let r = Cfm.analyze b (stmt "while x > 0 do x := x - 1") in
  (* flow = sbind(e) even when the body is flow-free. *)
  flow_eq "loop always flows" (Extended.El high) r.flow;
  check "self-contained high loop certified" true r.certified;
  (* §2.2's loop channel: while x # 0 do skip-ish body modifying y later is
     handled at composition; here the in-loop variant. *)
  check "low var modified under high loop rejected" false
    (Cfm.certified b (stmt "while x > 0 do y := 1"))

let test_while_global_check_catches_sem () =
  (* The paper's §4.2 example: while true do begin y := y + 1; wait(sem)
     end requires sbind(sem) <= sbind(y). *)
  let prog = stmt "while true do begin y := y + 1; wait(sem) end" in
  check "sem high, y low rejected" false
    (Cfm.certified (binding [ ("y", low); ("sem", high) ]) prog);
  check "sem low, y low certified" true
    (Cfm.certified (binding [ ("y", low); ("sem", low) ]) prog);
  check "sem high, y high certified" true
    (Cfm.certified (binding [ ("y", high); ("sem", high) ]) prog)

let test_seq_global_check () =
  (* §4.2: begin wait(sem); y := 1 end certified only if
     sbind(sem) <= sbind(y). *)
  let prog = stmt "begin wait(sem); y := 1 end" in
  check "rejected" false (Cfm.certified (binding [ ("sem", high); ("y", low) ]) prog);
  check "accepted" true (Cfm.certified (binding [ ("sem", high); ("y", high) ]) prog);
  (* Global flows do NOT act backwards: modification before the wait is
     fine. *)
  let before = stmt "begin y := 1; wait(sem) end" in
  check "backwards ok" true (Cfm.certified (binding [ ("sem", high); ("y", low) ]) before)

let test_seq_flow_accumulates () =
  let b = binding [ ("s", low); ("t", high) ] in
  let r = Cfm.analyze b (stmt "begin wait(s); wait(t) end") in
  flow_eq "flow join" (Extended.El high) r.flow;
  (* but s-then-t ordering requires sbind(s) <= sbind(t): ok here. *)
  check "certified" true r.certified;
  let r' = Cfm.analyze b (stmt "begin wait(t); wait(s) end") in
  check "t-then-s rejected (high flow into low sem)" false r'.certified

let test_wait_signal () =
  let b = binding [ ("s", high) ] in
  let rw = Cfm.analyze b (stmt "wait(s)") in
  check "wait certified alone" true rw.certified;
  check_int "mod(wait) = sbind(s)" high rw.mod_;
  flow_eq "flow(wait) = sbind(s)" (Extended.El high) rw.flow;
  let rs = Cfm.analyze b (stmt "signal(s)") in
  check "signal certified" true rs.certified;
  check_int "mod(signal)" high rs.mod_;
  flow_eq "flow(signal) = nil" Extended.Nil rs.flow

let test_cobegin_no_cross_check () =
  (* Parallel composition, unlike sequential, adds no checks: a high wait
     in one branch does not constrain a low assignment in a sibling. *)
  let b = binding [ ("s", high); ("y", low) ] in
  check "parallel certified" true (Cfm.certified b (stmt "cobegin wait(s) || y := 1 coend"));
  check "sequential rejected" false (Cfm.certified b (stmt "begin wait(s); y := 1 end"))

let test_cobegin_flow_and_mod () =
  let b = binding [ ("s", high); ("t", low); ("x", low) ] in
  let r = Cfm.analyze b (stmt "cobegin wait(s) || wait(t) || x := 1 coend") in
  flow_eq "flow joins branches" (Extended.El high) r.flow;
  check_int "mod is meet" low r.mod_

let test_cobegin_inside_seq_exports_flow () =
  (* The cobegin's flow participates in an enclosing composition. *)
  let b = binding [ ("s", high); ("y", low) ] in
  check "flow escapes cobegin" false
    (Cfm.certified b (stmt "begin cobegin wait(s) || skip coend; y := 1 end"))

(* ------------------------------------------------------------------ *)
(* §2.2 global-flow examples *)

let test_loop_termination_channel () =
  (* while x # 0 do x := x - 1;  z := 1  — z reveals termination, i.e. x. *)
  let prog = stmt "begin while x # 0 do x := x - 1; z := 1 end" in
  let b = binding [ ("x", high); ("z", low) ] in
  check "CFM catches termination channel" false (Cfm.certified b prog);
  check "Denning misses it" true (Denning.certified ~on_concurrency:`Ignore b prog);
  check "CFM accepts when z is high" true
    (Cfm.certified (binding [ ("x", high); ("z", high) ]) prog)

let test_loop_channel_inner_y () =
  (* The full §2.2 fragment also assigns y inside the loop: y := y + 1 is
     modified under the high condition, caught by the while check. *)
  let prog = stmt "begin while x # 0 do begin y := y + 1; x := x - 1 end; z := 1 end" in
  let b = binding [ ("x", high); ("y", low); ("z", low) ] in
  let r = Cfm.analyze b prog in
  check "rejected" false r.certified;
  check "several failures" true (List.length (Cfm.failed_checks r) >= 2)

let test_semaphore_channel () =
  (* cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end
     coend transmits x to y (§2.2). *)
  let prog =
    stmt "cobegin if x = 0 then signal(sem) || begin wait(sem); y := 0 end coend"
  in
  let b = binding [ ("x", high); ("sem", high); ("y", low) ] in
  check "CFM rejects" false (Cfm.certified b prog);
  check "Denning(ignore) misses" true (Denning.certified ~on_concurrency:`Ignore b prog);
  (* With sem low the leak is pushed to the if-check instead. *)
  let b2 = binding [ ("x", high); ("sem", low); ("y", low) ] in
  check "still rejected via if-check" false (Cfm.certified b2 prog);
  (* All-high is fine. *)
  let b3 = binding [ ("x", high); ("sem", high); ("y", high) ] in
  check "all-high certified" true (Cfm.certified b3 prog)

(* ------------------------------------------------------------------ *)
(* Figure 3 *)

let fig3 () = Ifc_core.Paper.fig3

let fig3_binding pairs = Binding.make two pairs

let fig3_all names cls = List.map (fun n -> (n, cls)) names

let fig3_vars = [ "x"; "y"; "m"; "modify"; "modified"; "read"; "done" ]

let test_fig3_rejects_high_to_low () =
  (* sbind(x) = high, everything else low: the synchronization leak from x
     to y must be caught. *)
  let b = fig3_binding (("x", high) :: fig3_all [ "y"; "m"; "modify"; "modified"; "read"; "done" ] low) in
  check "rejected" false (Cfm.certified b (fig3 ()).body)

let test_fig3_certifies_all_high () =
  let b = fig3_binding (fig3_all fig3_vars high) in
  check "all high certified" true (Cfm.certified b (fig3 ()).body)

let test_fig3_certifies_all_low () =
  let b = fig3_binding (fig3_all fig3_vars low) in
  check "all low certified" true (Cfm.certified b (fig3 ()).body)

let test_fig3_denning_misses_leak () =
  let b = fig3_binding (("x", high) :: fig3_all [ "y"; "m"; "modify"; "modified"; "read"; "done" ] low) in
  (* Denning's checks see only the two ifs, whose bodies modify only
     high-bindable semaphores... with all sems low the if-check fails; so
     give Denning the configuration where its checks all pass: sems high
     enough for the if but no global tracking. *)
  let b2 =
    fig3_binding
      (("x", high) :: ("modify", high) :: ("modified", high)
      :: fig3_all [ "y"; "m"; "read"; "done" ] low)
  in
  ignore b;
  check "Denning certifies the leaky binding" true
    (Denning.certified ~on_concurrency:`Ignore b2 (fig3 ()).body);
  check "CFM rejects the same binding" false (Cfm.certified b2 (fig3 ()).body)

let test_fig3_necessary_conditions () =
  (* §4.3: certification requires sbind(x) <= sbind(modify),
     sbind(modify) <= sbind(m), sbind(m) <= sbind(y); hence any certified
     binding has sbind(x) <= sbind(y). Enumerate all 2^7 two-point
     bindings and check the implication. *)
  let p = fig3 () in
  let rec all_bindings = function
    | [] -> [ [] ]
    | v :: rest ->
      let tails = all_bindings rest in
      List.concat_map (fun t -> [ (v, low) :: t; (v, high) :: t ]) tails
  in
  let sbind pairs v = List.assoc v pairs in
  let count = ref 0 in
  List.iter
    (fun pairs ->
      let b = fig3_binding pairs in
      if Cfm.certified b p.body then begin
        incr count;
        check "x <= modify" true (two.Lattice.leq (sbind pairs "x") (sbind pairs "modify"));
        check "modify <= m" true (two.Lattice.leq (sbind pairs "modify") (sbind pairs "m"));
        check "m <= y" true (two.Lattice.leq (sbind pairs "m") (sbind pairs "y"));
        check "x <= y (the leak)" true (two.Lattice.leq (sbind pairs "x") (sbind pairs "y"))
      end)
    (all_bindings fig3_vars);
  check "some bindings certify" true (!count > 0)

let test_fig3_inference_matches_paper () =
  (* Fix sbind(x) = high; the least certifying binding must raise modify,
     m and y to high — exactly the §4.3 chain. *)
  let p = fig3 () in
  match Infer.infer two ~fixed:[ ("x", high) ] p with
  | Error _ -> Alcotest.fail "inference failed"
  | Ok b ->
    check_int "modify raised" high (Binding.sbind b "modify");
    check_int "m raised" high (Binding.sbind b "m");
    check_int "y raised" high (Binding.sbind b "y");
    check "result certifies" true (Cfm.certified b p.body)

(* ------------------------------------------------------------------ *)
(* §5.2 relative strength *)

let test_52_example_rejected () =
  (* begin x := 0; y := x end with x high, y low: semantically secure but
     CFM-rejected (the logic can prove it; see Test_logic). *)
  let b = binding [ ("x", high); ("y", low) ] in
  check "CFM rejects" false (Cfm.certified b (stmt "begin x := 0; y := x end"))

(* ------------------------------------------------------------------ *)
(* self_check option (j <= i reading) *)

let test_self_check_stricter () =
  (* A statement whose own flow exceeds its own mod: certifiable under
     j < i, rejected under j <= i once placed in a composition. *)
  (* if c then wait(s) else x := 1 with c,x low and s high: every Figure 2
     check passes (mod = low >= sbind(c)), yet flow(S) = high > mod(S) —
     the readings differ exactly here. *)
  let b = binding [ ("c", low); ("x", low); ("s", high) ] in
  let s = stmt "begin if c = 0 then wait(s) else x := 1 end" in
  check "default reading accepts" true (Cfm.certified b s);
  check "strict reading rejects" false (Cfm.certified ~self_check:true b s)

let test_self_check_subset_property =
  let count = 300 in
  fun () ->
    let rng = Prng.create 77 in
    let classes = [| low; high |] in
    for i = 1 to count do
      let p = Gen.program rng Gen.default ~size:(1 + (i mod 30)) in
      let vars = Ifc_lang.Vars.all_vars p.body in
      let pairs =
        List.map (fun v -> (v, classes.(Prng.int rng 2))) (Ifc_support.Sset.elements vars)
      in
      let b = binding pairs in
      if Cfm.certified ~self_check:true b p.body then
        check "strict implies default" true (Cfm.certified b p.body)
    done

(* ------------------------------------------------------------------ *)
(* CFM vs Denning: containment, and agreement on the sequential loop-free
   fragment. *)

let random_binding rng lattice p =
  let arr = Array.of_list lattice.Lattice.elements in
  let vars = Ifc_lang.Vars.all_vars p.Ast.body in
  Binding.make lattice
    (List.map
       (fun v -> (v, arr.(Prng.int rng (Array.length arr))))
       (Ifc_support.Sset.elements vars))

let test_cfm_subset_of_denning =
  let count = 300 in
  fun () ->
    let rng = Prng.create 123 in
    let four = Chain.four in
    for i = 1 to count do
      let p = Gen.program rng Gen.default ~size:(1 + (i mod 40)) in
      let b = random_binding rng four p in
      if Cfm.certified b p.body then
        check "CFM certified implies Denning(ignore) certified" true
          (Denning.certified ~on_concurrency:`Ignore b p.body)
    done

let test_agree_on_loopfree_sequential =
  let count = 300 in
  fun () ->
    let rng = Prng.create 321 in
    let cfg = { Gen.sequential with allow_loops = false } in
    for i = 1 to count do
      let p = Gen.program rng cfg ~size:(1 + (i mod 40)) in
      let b = random_binding rng two p in
      check "identical verdicts" (Denning.certified ~on_concurrency:`Ignore b p.body)
        (Cfm.certified b p.body)
    done

let test_denning_reject_mode () =
  let b = binding [ ("s", low) ] in
  let r = Denning.analyze ~on_concurrency:`Reject b (stmt "cobegin wait(s) || skip coend") in
  check "rejected" false r.certified;
  check_int "two offending constructs" 2 (List.length r.rejected_constructs);
  let r' = Denning.analyze ~on_concurrency:`Reject b (stmt "x := 1") in
  check "sequential fine" true r'.certified

(* ------------------------------------------------------------------ *)
(* analyze/certified agreement; analyze_program; failed_checks *)

let test_analyze_agrees_with_certified =
  let count = 500 in
  fun () ->
    let rng = Prng.create 999 in
    for i = 1 to count do
      let p = Gen.program rng Gen.default ~size:(1 + (i mod 50)) in
      let b = random_binding rng Chain.four p in
      let r = Cfm.analyze b p.body in
      check "same verdict" (Cfm.certified b p.body) r.certified;
      check "verdict = no failed checks" (Cfm.failed_checks r = []) r.certified
    done

let test_mod_flow_match_analysis =
  let count = 200 in
  fun () ->
    let rng = Prng.create 555 in
    let ext = Extended.make Chain.four in
    for i = 1 to count do
      let p = Gen.program rng Gen.default ~size:(1 + (i mod 30)) in
      let b = random_binding rng Chain.four p in
      let r = Cfm.analyze b p.body in
      check_int "mod agrees" (Cfm.mod_of b p.body) r.mod_;
      check "flow agrees" true (ext.Lattice.equal (Cfm.flow_of b p.body) r.flow)
    done

(* ------------------------------------------------------------------ *)
(* Inference *)

let test_infer_least_and_certifying =
  let count = 200 in
  fun () ->
    let rng = Prng.create 2024 in
    let four = Chain.four in
    for i = 1 to count do
      let p = Gen.program rng Gen.default ~size:(1 + (i mod 25)) in
      match Infer.infer four ~fixed:[] p with
      | Error _ -> Alcotest.fail "unconstrained inference cannot fail"
      | Ok b -> check "inferred binding certifies" true (Cfm.certified b p.body)
    done

let test_infer_conflict () =
  let p =
    Ifc_lang.Wellformed.infer_decls
      (Ast.program (stmt "y := x"))
  in
  match Infer.infer two ~fixed:[ ("x", high); ("y", low) ] p with
  | Ok _ -> Alcotest.fail "expected a conflict"
  | Error c ->
    check_int "violating class" high c.actual;
    check_int "allowed" low c.allowed

let test_constraints_equiv_cert =
  (* The symbolic constraints are exactly CFM: for random programs and
     random bindings, all-constraints-satisfied iff certified. *)
  let count = 400 in
  fun () ->
    let rng = Prng.create 31337 in
    let four = Chain.four in
    for i = 1 to count do
      let p = Gen.program rng Gen.default ~size:(1 + (i mod 30)) in
      let b = random_binding rng four p in
      let cs = Infer.constraints p.body in
      let atom_value = function
        | Infer.Const_low -> four.Lattice.bottom
        | Infer.Const_named c -> Result.value ~default:four.Lattice.top (four.Lattice.of_string c)
        | Infer.Class v -> Binding.sbind b v
      in
      let satisfied =
        List.for_all
          (fun (c : Infer.constr) ->
            four.Lattice.leq
              (Lattice.joins four (List.map atom_value c.lhs))
              (Binding.sbind b c.rhs))
          cs
      in
      check "constraints iff certified" (Cfm.certified b p.body) satisfied
    done

let test_fig3_symbolic_requirements () =
  let p = fig3 () in
  let cs = Infer.constraints p.body in
  let rendered = List.map (Fmt.str "%a" Infer.pp_constr) cs in
  let mem needle = List.exists (fun s -> String.equal s needle) rendered in
  check "x <= modify present" true (mem "sbind(x) <= sbind(modify)");
  check "modify <= m present" true (mem "sbind(modify) <= sbind(m)");
  check "m <= y present" true (mem "sbind(read) <= sbind(y)" || mem "sbind(m) <= sbind(y)")

let suite =
  ( "cfm",
    [
      Alcotest.test_case "assign" `Quick test_assign;
      Alcotest.test_case "assign expression class" `Quick test_assign_expr_class;
      Alcotest.test_case "skip" `Quick test_skip;
      Alcotest.test_case "if local flow" `Quick test_if_local_flow;
      Alcotest.test_case "if mod is meet" `Quick test_if_mod_is_meet;
      Alcotest.test_case "if flow propagation" `Quick test_if_flow_propagation;
      Alcotest.test_case "while flow" `Quick test_while_flow;
      Alcotest.test_case "while global check (paper 4.2)" `Quick
        test_while_global_check_catches_sem;
      Alcotest.test_case "seq global check (paper 4.2)" `Quick test_seq_global_check;
      Alcotest.test_case "seq flow accumulates" `Quick test_seq_flow_accumulates;
      Alcotest.test_case "wait/signal" `Quick test_wait_signal;
      Alcotest.test_case "cobegin no cross-check" `Quick test_cobegin_no_cross_check;
      Alcotest.test_case "cobegin flow and mod" `Quick test_cobegin_flow_and_mod;
      Alcotest.test_case "cobegin flow escapes to seq" `Quick
        test_cobegin_inside_seq_exports_flow;
      Alcotest.test_case "2.2 loop termination channel" `Quick test_loop_termination_channel;
      Alcotest.test_case "2.2 loop channel inner" `Quick test_loop_channel_inner_y;
      Alcotest.test_case "2.2 semaphore channel" `Quick test_semaphore_channel;
      Alcotest.test_case "fig3 rejects high-to-low" `Quick test_fig3_rejects_high_to_low;
      Alcotest.test_case "fig3 all high certified" `Quick test_fig3_certifies_all_high;
      Alcotest.test_case "fig3 all low certified" `Quick test_fig3_certifies_all_low;
      Alcotest.test_case "fig3 Denning misses leak" `Quick test_fig3_denning_misses_leak;
      Alcotest.test_case "fig3 necessary conditions (4.3)" `Quick
        test_fig3_necessary_conditions;
      Alcotest.test_case "fig3 inference matches paper" `Quick
        test_fig3_inference_matches_paper;
      Alcotest.test_case "5.2 example rejected by CFM" `Quick test_52_example_rejected;
      Alcotest.test_case "self_check stricter" `Quick test_self_check_stricter;
      Alcotest.test_case "self_check subset (qcheck-style)" `Quick
        test_self_check_subset_property;
      Alcotest.test_case "CFM subset of Denning" `Quick test_cfm_subset_of_denning;
      Alcotest.test_case "agree on loop-free sequential" `Quick
        test_agree_on_loopfree_sequential;
      Alcotest.test_case "Denning reject mode" `Quick test_denning_reject_mode;
      Alcotest.test_case "analyze agrees with certified" `Quick
        test_analyze_agrees_with_certified;
      Alcotest.test_case "mod/flow match analysis" `Quick test_mod_flow_match_analysis;
      Alcotest.test_case "infer certifies" `Quick test_infer_least_and_certifying;
      Alcotest.test_case "infer conflict" `Quick test_infer_conflict;
      Alcotest.test_case "constraints iff certified" `Quick test_constraints_equiv_cert;
      Alcotest.test_case "fig3 symbolic requirements" `Quick
        test_fig3_symbolic_requirements;
    ] )
