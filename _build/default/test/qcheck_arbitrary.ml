(* QCheck arbitraries for programs and bindings, with real shrinking.

   The generators delegate to Ifc_lang.Gen (seeded by QCheck's random
   state) and the shrinkers to Gen.shrink_program, so failing properties
   minimise to small witnesses. *)

module Ast = Ifc_lang.Ast
module Gen = Ifc_lang.Gen
module Prng = Ifc_support.Prng
module Lattice = Ifc_lattice.Lattice
module Binding = Ifc_core.Binding

let program_gen ?(cfg = Gen.default) ?(max_size = 30) () : Ast.program QCheck.Gen.t =
 fun rand_state ->
  let seed = QCheck.Gen.int_bound max_int rand_state in
  let size = 1 + QCheck.Gen.int_bound (max_size - 1) rand_state in
  Gen.program (Prng.create seed) cfg ~size

let shrink_iter p yield = Seq.iter yield (Gen.shrink_program p)

let program ?cfg ?max_size () =
  QCheck.make
    ~print:Ifc_lang.Pretty.program_to_string
    ~shrink:shrink_iter
    (program_gen ?cfg ?max_size ())

(* A program paired with a random binding over its variables. Shrinking
   shrinks the program and keeps the binding assignment rule (class chosen
   by a hash of the variable name and a salt), so bindings stay consistent
   across shrinks. *)
type 'a bound_program = { prog : Ast.program; salt : int; lattice : 'a Lattice.t }

let binding_of { prog; salt; lattice } =
  let arr = Array.of_list lattice.Lattice.elements in
  let class_of v = arr.(abs (Hashtbl.hash (salt, v)) mod Array.length arr) in
  Binding.make lattice
    (List.map
       (fun v -> (v, class_of v))
       (Ifc_support.Sset.elements (Ifc_lang.Vars.all_vars prog.Ast.body)))

let bound_program ?cfg ?max_size lattice =
  let gen rand_state =
    let prog = program_gen ?cfg ?max_size () rand_state in
    let salt = QCheck.Gen.int_bound 1_000_000 rand_state in
    { prog; salt; lattice }
  in
  let print bp =
    Fmt.str "%s@.binding: %a"
      (Ifc_lang.Pretty.program_to_string bp.prog)
      Binding.pp (binding_of bp)
  in
  let shrink bp yield =
    Seq.iter (fun prog' -> yield { bp with prog = prog' }) (Gen.shrink_program bp.prog)
  in
  QCheck.make ~print ~shrink gen
