test/test_paper.ml: Alcotest Fmt Ifc_core Ifc_lang Ifc_lattice Ifc_support List Result String
