test/test_exec.ml: Alcotest Fmt Fun Ifc_core Ifc_exec Ifc_lang Ifc_lattice Ifc_support List Printf String
