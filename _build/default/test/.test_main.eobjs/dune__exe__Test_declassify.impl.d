test/test_declassify.ml: Alcotest Ifc_core Ifc_exec Ifc_lang Ifc_lattice Ifc_logic Ifc_support List Result
