test/qcheck_arbitrary.ml: Array Fmt Hashtbl Ifc_core Ifc_lang Ifc_lattice Ifc_support List QCheck Seq
