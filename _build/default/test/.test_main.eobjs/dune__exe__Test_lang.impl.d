test/test_lang.ml: Alcotest Ifc_lang Ifc_support List Printf Result Seq
