test/test_lattice.ml: Alcotest Array Fun Ifc_core Ifc_lang Ifc_lattice List QCheck QCheck_alcotest Result String
