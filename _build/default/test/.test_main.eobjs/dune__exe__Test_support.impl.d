test/test_support.ml: Alcotest Array Fmt Fun Hashtbl Ifc_support List Option
