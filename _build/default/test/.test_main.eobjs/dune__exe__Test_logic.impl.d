test/test_logic.ml: Alcotest Array Fmt Ifc_core Ifc_lang Ifc_lattice Ifc_logic Ifc_support List Printf QCheck QCheck_alcotest Result String
