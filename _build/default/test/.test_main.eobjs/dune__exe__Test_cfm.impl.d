test/test_cfm.ml: Alcotest Array Fmt Ifc_core Ifc_lang Ifc_lattice Ifc_support List Result String
