test/test_arrays.ml: Alcotest Array Ifc_core Ifc_exec Ifc_lang Ifc_lattice Ifc_logic Ifc_support List Result
