test/test_properties.ml: Bool Bytes Char Ifc_core Ifc_exec Ifc_lang Ifc_lattice Ifc_logic Ifc_support List QCheck QCheck_alcotest Qcheck_arbitrary Result Seq
