test/test_corpus.ml: Alcotest Ifc_core Ifc_lang Ifc_lattice Ifc_logic List
