test/test_flow_sensitive.ml: Alcotest Array Ifc_core Ifc_exec Ifc_lang Ifc_lattice Ifc_support List
