(* Tests for the support substrate: the splittable PRNG, list utilities,
   and the string containers. *)

module Prng = Ifc_support.Prng
module Listx = Ifc_support.Listx
module Smap = Ifc_support.Smap
module Sset = Ifc_support.Sset

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* PRNG *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Prng.bits a) (Prng.bits b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let draws rng = List.init 10 (fun _ -> Prng.bits rng) in
  check "different streams" false (draws a = draws b)

let test_prng_int_range () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 13 in
    check "in range" true (v >= 0 && v < 13)
  done

let test_prng_range_inclusive () =
  let rng = Prng.create 5 in
  let seen = Array.make 4 false in
  for _ = 1 to 500 do
    let v = Prng.range rng 3 6 in
    check "range bounds" true (v >= 3 && v <= 6);
    seen.(v - 3) <- true
  done;
  check "all values hit" true (Array.for_all Fun.id seen)

let test_prng_split_decorrelates () =
  let parent = Prng.create 9 in
  let child = Prng.split parent in
  let a = List.init 20 (fun _ -> Prng.bits parent) in
  let b = List.init 20 (fun _ -> Prng.bits child) in
  check "distinct streams" false (a = b)

let test_prng_copy_independent () =
  let a = Prng.create 3 in
  ignore (Prng.bits a);
  let b = Prng.copy a in
  check_int "copies agree" (Prng.bits a) (Prng.bits b)

let test_prng_choose_weighted () =
  let rng = Prng.create 17 in
  for _ = 1 to 200 do
    check "choose member" true (List.mem (Prng.choose rng [ 1; 2; 3 ]) [ 1; 2; 3 ])
  done;
  (* A zero-weight option is never selected. *)
  for _ = 1 to 200 do
    check_int "weighted respects weights" 1 (Prng.weighted rng [ (5, 1) ])
  done;
  let counts = Hashtbl.create 3 in
  for _ = 1 to 3000 do
    let v = Prng.weighted rng [ (1, `A); (9, `B) ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let b_count = Option.value ~default:0 (Hashtbl.find_opt counts `B) in
  check "weights roughly respected" true (b_count > 2400)

let test_prng_shuffle_permutation () =
  let rng = Prng.create 23 in
  let original = List.init 30 Fun.id in
  let shuffled = Prng.shuffle rng original in
  check "same multiset" true (List.sort compare shuffled = original);
  check "actually shuffles" false (shuffled = original)

(* ------------------------------------------------------------------ *)
(* Listx *)

let test_listx_pairs () =
  check "pairs" true
    (Listx.pairs [ 1; 2; 3 ] = [ (1, 2); (1, 3); (2, 3) ]);
  check "empty" true (Listx.pairs ([] : int list) = [])

let test_listx_cartesian () =
  check "cartesian" true
    (Listx.cartesian [ 1; 2 ] [ "a"; "b" ]
    = [ (1, "a"); (1, "b"); (2, "a"); (2, "b") ])

let test_listx_sequences () =
  check_int "2^3 sequences" 8 (List.length (Listx.sequences 3 [ 0; 1 ]));
  check "zero length" true (Listx.sequences 0 [ 1; 2 ] = [ [] ]);
  check "all distinct" true
    (let seqs = Listx.sequences 3 [ 0; 1 ] in
     List.length (List.sort_uniq compare seqs) = 8)

let test_listx_take_drop () =
  check "take" true (Listx.take 2 [ 1; 2; 3 ] = [ 1; 2 ]);
  check "take too many" true (Listx.take 9 [ 1 ] = [ 1 ]);
  check "drop" true (Listx.drop 2 [ 1; 2; 3 ] = [ 3 ]);
  check "drop all" true (Listx.drop 9 [ 1; 2 ] = ([] : int list))

let test_listx_index_of () =
  check "found" true (Listx.index_of (( = ) 3) [ 1; 3; 5 ] = Some 1);
  check "missing" true (Listx.index_of (( = ) 9) [ 1; 3; 5 ] = None)

let test_listx_dedup () =
  check "dedup keeps order" true (Listx.dedup compare [ 3; 1; 3; 2; 1 ] = [ 3; 1; 2 ])

let test_listx_transpose () =
  check "transpose" true
    (Listx.transpose [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ] ] = [ [ 1; 3; 5 ]; [ 2; 4; 6 ] ])

(* ------------------------------------------------------------------ *)
(* Smap / Sset *)

let test_smap_helpers () =
  let m = Smap.of_list [ ("b", 2); ("a", 1); ("b", 3) ] in
  check_int "later binding wins" 3 (Smap.find "b" m);
  check "keys sorted" true (Smap.keys m = [ "a"; "b" ]);
  check "values in key order" true (Smap.values m = [ 1; 3 ]);
  check_int "find_or hit" 1 (Smap.find_or ~default:9 "a" m);
  check_int "find_or miss" 9 (Smap.find_or ~default:9 "z" m);
  let printed = Fmt.str "%a" (Smap.pp Fmt.int) m in
  check "pp shows bindings" true (printed = "{a -> 1; b -> 3}")

let test_sset_pp () =
  let s = Sset.of_list [ "b"; "a" ] in
  check "pp sorted" true (Fmt.str "%a" Sset.pp s = "{a, b}")

let suite =
  ( "support",
    [
      Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
      Alcotest.test_case "prng seeds differ" `Quick test_prng_seeds_differ;
      Alcotest.test_case "prng int range" `Quick test_prng_int_range;
      Alcotest.test_case "prng range inclusive" `Quick test_prng_range_inclusive;
      Alcotest.test_case "prng split decorrelates" `Quick test_prng_split_decorrelates;
      Alcotest.test_case "prng copy" `Quick test_prng_copy_independent;
      Alcotest.test_case "prng choose/weighted" `Quick test_prng_choose_weighted;
      Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutation;
      Alcotest.test_case "listx pairs" `Quick test_listx_pairs;
      Alcotest.test_case "listx cartesian" `Quick test_listx_cartesian;
      Alcotest.test_case "listx sequences" `Quick test_listx_sequences;
      Alcotest.test_case "listx take/drop" `Quick test_listx_take_drop;
      Alcotest.test_case "listx index_of" `Quick test_listx_index_of;
      Alcotest.test_case "listx dedup" `Quick test_listx_dedup;
      Alcotest.test_case "listx transpose" `Quick test_listx_transpose;
      Alcotest.test_case "smap helpers" `Quick test_smap_helpers;
      Alcotest.test_case "sset pp" `Quick test_sset_pp;
    ] )
