(* Tests for the classification-scheme substrate (Definitions 1 and 4). *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Powerset = Ifc_lattice.Powerset
module Product = Ifc_lattice.Product
module Mls = Ifc_lattice.Mls
module Extended = Ifc_lattice.Extended
module Laws = Ifc_lattice.Laws
module Spec = Ifc_lattice.Spec

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Chains *)

let test_two_point () =
  let l = Chain.two in
  check "low <= high" true (l.leq l.bottom l.top);
  check "high <= low fails" false (l.leq l.top l.bottom);
  check_int "join low high" l.top (l.join l.bottom l.top);
  check_int "meet low high" l.bottom (l.meet l.bottom l.top);
  check_string "print low" "low" (l.to_string l.bottom);
  check_string "print high" "high" (l.to_string l.top)

let test_chain_parse () =
  let l = Chain.four in
  (match l.of_string "secret" with
  | Ok c -> check_string "roundtrip" "secret" (l.to_string c)
  | Error e -> Alcotest.fail e);
  check "unknown class rejected" true (Result.is_error (l.of_string "zebra"))

let test_chain_order () =
  let l = Chain.four in
  let classes = l.elements in
  check_int "four levels" 4 (List.length classes);
  List.iteri
    (fun i x -> List.iteri (fun j y -> check "total order" (i <= j) (l.leq x y)) classes)
    classes

let test_chain_of_size () =
  let l = Chain.of_size 7 in
  check_int "seven elements" 7 (List.length l.elements);
  check_int "height" 6 (Lattice.height l)

let test_chain_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Chain.make: empty level list") (fun () ->
      ignore (Chain.make []));
  Alcotest.check_raises "duplicates" (Invalid_argument "Chain.make: duplicate level names")
    (fun () -> ignore (Chain.make [ "a"; "a" ]))

(* ------------------------------------------------------------------ *)
(* Powersets *)

let cats = Powerset.make [ "NUC"; "EUR"; "ASI" ]

let test_powerset_basics () =
  let nuc = Powerset.of_categories cats [ "NUC" ] in
  let eur = Powerset.of_categories cats [ "EUR" ] in
  let both = Powerset.of_categories cats [ "NUC"; "EUR" ] in
  check "nuc <= nuc+eur" true (cats.leq nuc both);
  check "nuc <= eur fails" false (cats.leq nuc eur);
  check "incomparable" false (Lattice.comparable cats nuc eur);
  check_int "join" both (cats.join nuc eur);
  check_int "meet" cats.bottom (cats.meet nuc eur);
  check_int "eight elements" 8 (List.length cats.elements)

let test_powerset_strings () =
  let both = Powerset.of_categories cats [ "NUC"; "EUR" ] in
  check_string "print" "{NUC,EUR}" (cats.to_string both);
  (match cats.of_string "{EUR , NUC}" with
  | Ok x -> check_int "parse unordered" both x
  | Error e -> Alcotest.fail e);
  (match cats.of_string "{}" with
  | Ok x -> check_int "parse empty" cats.bottom x
  | Error e -> Alcotest.fail e);
  check "garbage rejected" true (Result.is_error (cats.of_string "NUC"));
  check "unknown category" true (Result.is_error (cats.of_string "{SPACE}"))

let test_powerset_categories_roundtrip () =
  List.iter
    (fun x ->
      let names = Powerset.categories cats x in
      check_int "roundtrip" x (Powerset.of_categories cats names))
    cats.elements

(* ------------------------------------------------------------------ *)
(* Products and MLS *)

let test_product_order () =
  let p = Product.make Chain.two Chain.two in
  let mid1 = (0, 1) and mid2 = (1, 0) in
  check "componentwise" true (p.leq p.bottom mid1);
  check "incomparable mids" false (Lattice.comparable p mid1 mid2);
  check "join of mids is top" true (p.equal (p.join mid1 mid2) p.top);
  check "meet of mids is bottom" true (p.equal (p.meet mid1 mid2) p.bottom);
  check_int "size" 4 (List.length p.elements)

let test_mls_labels () =
  let l = Mls.standard in
  let s_nuc = Mls.label l "secret:{NUC}" in
  let ts_nuc = Mls.label l "topsecret:{NUC}" in
  let s_nuc_eur = Mls.label l "secret:{NUC,EUR}" in
  let c_eur = Mls.label l "confidential:{EUR}" in
  check "level raise" true (l.leq s_nuc ts_nuc);
  check "category widen" true (l.leq s_nuc s_nuc_eur);
  check "cross is incomparable" false (Lattice.comparable l s_nuc c_eur);
  check_string "print" "secret:{NUC}" (l.to_string s_nuc);
  check_int "32 elements" 32 (List.length l.elements)

(* ------------------------------------------------------------------ *)
(* Extended scheme (Definition 4) *)

let test_extended_nil () =
  let e = Extended.make Chain.two in
  check "nil below everything" true (List.for_all (e.leq e.bottom) e.elements);
  check "nothing below nil" true
    (List.for_all
       (fun x -> Extended.is_nil x || not (e.leq x Extended.Nil))
       e.elements);
  check "nil is join identity" true
    (List.for_all (fun x -> e.equal (e.join Extended.Nil x) x) e.elements);
  check "nil absorbs meet" true
    (List.for_all (fun x -> e.equal (e.meet Extended.Nil x) Extended.Nil) e.elements);
  check_int "one extra element" 3 (List.length e.elements);
  check_string "prints nil" "nil" (e.to_string e.bottom);
  (match e.of_string "nil" with
  | Ok x -> check "parses nil" true (Extended.is_nil x)
  | Error err -> Alcotest.fail err);
  match e.of_string "high" with
  | Ok (Extended.El _) -> ()
  | Ok Extended.Nil -> Alcotest.fail "high parsed as nil"
  | Error err -> Alcotest.fail err

let test_extended_preserves_base () =
  let base = Chain.four in
  let e = Extended.make base in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          check "order agrees with base" (base.leq x y)
            (e.leq (Extended.lift x) (Extended.lift y)))
        base.elements)
    base.elements

(* ------------------------------------------------------------------ *)
(* Laws *)

let law_cases =
  let checkable name lattice_check =
    Alcotest.test_case ("laws: " ^ name) `Quick (fun () ->
        match lattice_check with
        | Ok () -> ()
        | Error { Laws.law; witness } -> Alcotest.fail (law ^ " violated by " ^ witness))
  in
  [
    checkable "two-point" (Laws.check Chain.two);
    checkable "four-chain" (Laws.check Chain.four);
    checkable "powerset-3" (Laws.check cats);
    checkable "product" (Laws.check (Product.make Chain.two cats));
    checkable "mls-standard" (Laws.check Mls.standard);
    checkable "extended-two" (Laws.check (Extended.make Chain.two));
    checkable "extended-mls" (Laws.check (Extended.make Mls.standard));
    checkable "big-powerset-sampled" (Laws.check ~sample:24 (Powerset.make
      [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h"; "i"; "j"; "k"; "l" ]));
  ]

let test_laws_catch_broken_lattice () =
  (* Sabotage the join of an otherwise fine lattice; the checker must
     report a violation. *)
  let broken = { Chain.two with Lattice.join = (fun _ _ -> 0) } in
  match Laws.check broken with
  | Ok () -> Alcotest.fail "broken lattice passed the law check"
  | Error { Laws.law; _ } ->
    check "a join law fails" true
      (List.mem law [ "join-upper-bound"; "join-least"; "leq-join-consistent" ])

(* ------------------------------------------------------------------ *)
(* Spec parser *)

let diamond_spec =
  {|
# A diamond: bottom < left,right < top
lattice diamond
elements: bottom left right top
order: bottom < left < top
order: bottom < right < top
|}

let test_spec_diamond () =
  match Spec.parse diamond_spec with
  | Error e -> Alcotest.fail e
  | Ok l ->
    check_string "name" "diamond" l.name;
    check_string "bottom elem" "bottom" (l.to_string l.bottom);
    check_string "top elem" "top" (l.to_string l.top);
    check "left/right incomparable" false (Lattice.comparable l "left" "right");
    check_string "join" "top" (l.to_string (l.join "left" "right"));
    check_string "meet" "bottom" (l.to_string (l.meet "left" "right"));
    (match Laws.check l with
    | Ok () -> ()
    | Error { Laws.law; witness } -> Alcotest.fail (law ^ ": " ^ witness))

let test_spec_roundtrip () =
  match Spec.parse diamond_spec with
  | Error e -> Alcotest.fail e
  | Ok l -> (
    match Spec.parse (Spec.to_text l) with
    | Error e -> Alcotest.fail ("reparse failed: " ^ e)
    | Ok l2 ->
      List.iter
        (fun x ->
          List.iter
            (fun y -> check "same order" (l.leq x y) (l2.leq x y))
            l.elements)
        l.elements)

let test_spec_errors () =
  let cases =
    [
      ("not a lattice", "lattice l\nelements: a b c\norder: a < b, a < c");
      (* b and c have no upper bound *)
      ("cycle", "lattice l\nelements: a b\norder: a < b, b < a");
      ("undeclared", "lattice l\nelements: a b\norder: a < z");
      ("no elements", "lattice l\norder: a < b");
      ("bad directive", "lattice l\nelements: a\nfoo: bar");
    ]
  in
  List.iter
    (fun (name, text) -> check name true (Result.is_error (Spec.parse text)))
    cases

let test_spec_single_element () =
  match Spec.parse "lattice one\nelements: only" with
  | Error e -> Alcotest.fail e
  | Ok l ->
    check "bottom = top" true (l.equal l.bottom l.top);
    check_int "height 0" 0 (Lattice.height l)

(* ------------------------------------------------------------------ *)
(* Generic structure helpers *)

let test_covers_and_height () =
  let l = Chain.four in
  check_int "chain covers" 3 (List.length (Lattice.covers l));
  check_int "chain height" 3 (Lattice.height l);
  check_int "powerset height" 3 (Lattice.height cats);
  check_int "powerset covers" 12 (List.length (Lattice.covers cats))

let test_dual () =
  let l = Chain.four in
  let d = Lattice.dual l in
  check "leq flipped" true (d.leq l.top l.bottom);
  check "dual bottom is top" true (d.equal d.bottom l.top);
  check "join is meet" true (d.equal (d.join 1 2) (l.meet 1 2));
  (match Laws.check d with
  | Ok () -> ()
  | Error { Laws.law; witness } -> Alcotest.fail (law ^ ": " ^ witness));
  (* Involution: the dual of the dual restores the original order. *)
  let dd = Lattice.dual d in
  List.iter
    (fun x -> List.iter (fun y -> check "involution" (l.leq x y) (dd.leq x y)) l.elements)
    l.elements;
  (* Integrity certification: trusted -> untrusted flows are the ones
     allowed. With confidentiality low=untrusted this flips. *)
  let b =
    Ifc_core.Binding.make d [ ("trusted", l.top); ("untrusted", l.bottom) ]
  in
  let stmt src =
    match Ifc_lang.Parser.parse_stmt src with
    | Ok s -> s
    | Error _ -> Alcotest.fail "parse"
  in
  check "trusted into untrusted ok" true
    (Ifc_core.Cfm.certified b (stmt "untrusted := trusted"));
  check "untrusted into trusted rejected" false
    (Ifc_core.Cfm.certified b (stmt "trusted := untrusted"))

let test_joins_meets_empty () =
  let l = Chain.four in
  check_int "empty join is bottom" l.bottom (Lattice.joins l []);
  check_int "empty meet is top" l.top (Lattice.meets l [])

let test_make_from_order_rejects_nonlattice () =
  let elements = [ "a"; "b"; "c"; "d" ] in
  (* a < c, a < d, b < c, b < d: no lub for a,b; no glb for c,d. *)
  let leq x y =
    String.equal x y
    || match (x, y) with "a", ("c" | "d") | "b", ("c" | "d") -> true | _ -> false
  in
  check "rejected" true
    (Result.is_error
       (Lattice.make_from_order ~name:"m2" ~elements ~leq ~to_string:Fun.id))

(* ------------------------------------------------------------------ *)
(* Property-based: random elements obey the algebra on larger schemes. *)

let qcheck_lattice_props =
  let l = Product.make Chain.four (Powerset.make [ "a"; "b"; "c"; "d" ]) in
  let arr = Array.of_list l.elements in
  let gen_elt = QCheck.map (fun i -> arr.(i mod Array.length arr)) QCheck.small_nat in
  let triple = QCheck.triple gen_elt gen_elt gen_elt in
  [
    QCheck.Test.make ~name:"distributivity (chain x powerset)" ~count:500 triple
      (fun (x, y, z) ->
        l.equal (l.meet x (l.join y z)) (l.join (l.meet x y) (l.meet x z)));
    QCheck.Test.make ~name:"join monotone" ~count:500 triple (fun (x, y, z) ->
        QCheck.assume (l.leq x y);
        l.leq (l.join x z) (l.join y z));
    QCheck.Test.make ~name:"meet monotone" ~count:500 triple (fun (x, y, z) ->
        QCheck.assume (l.leq x y);
        l.leq (l.meet x z) (l.meet y z));
  ]
  |> List.map (QCheck_alcotest.to_alcotest ~long:false)

let suite =
  ( "lattice",
    [
      Alcotest.test_case "two-point basics" `Quick test_two_point;
      Alcotest.test_case "chain parse" `Quick test_chain_parse;
      Alcotest.test_case "chain order" `Quick test_chain_order;
      Alcotest.test_case "chain of_size" `Quick test_chain_of_size;
      Alcotest.test_case "chain invalid" `Quick test_chain_invalid;
      Alcotest.test_case "powerset basics" `Quick test_powerset_basics;
      Alcotest.test_case "powerset strings" `Quick test_powerset_strings;
      Alcotest.test_case "powerset categories roundtrip" `Quick
        test_powerset_categories_roundtrip;
      Alcotest.test_case "product order" `Quick test_product_order;
      Alcotest.test_case "mls labels" `Quick test_mls_labels;
      Alcotest.test_case "extended nil" `Quick test_extended_nil;
      Alcotest.test_case "extended preserves base" `Quick test_extended_preserves_base;
      Alcotest.test_case "laws catch broken lattice" `Quick
        test_laws_catch_broken_lattice;
      Alcotest.test_case "spec diamond" `Quick test_spec_diamond;
      Alcotest.test_case "spec roundtrip" `Quick test_spec_roundtrip;
      Alcotest.test_case "spec errors" `Quick test_spec_errors;
      Alcotest.test_case "spec single element" `Quick test_spec_single_element;
      Alcotest.test_case "covers and height" `Quick test_covers_and_height;
      Alcotest.test_case "dual (integrity)" `Quick test_dual;
      Alcotest.test_case "joins/meets of empty" `Quick test_joins_meets_empty;
      Alcotest.test_case "make_from_order rejects non-lattice" `Quick
        test_make_from_order_rejects_nonlattice;
    ]
    @ law_cases @ qcheck_lattice_props )
