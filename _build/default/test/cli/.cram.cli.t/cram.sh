  $ ../../bin/ifc.exe check --binding leaky.bind fig3.ifc | head -15
  $ ../../bin/ifc.exe check --binding leaky.bind fig3.ifc > /dev/null; echo "exit $?"
  $ ../../bin/ifc.exe check --requirements fig3.ifc | grep -E 'sbind\((x|modify|m)\) <= sbind\((modify|m|y)\)$' | sort
  $ ../../bin/ifc.exe denning --binding denning-friendly.bind fig3.ifc | head -2
  $ ../../bin/ifc.exe check --binding denning-friendly.bind fig3.ifc | head -1
  $ ../../bin/ifc.exe infer --fix x=high fig3.ifc
  $ ../../bin/ifc.exe infer --fix x=high --fix y=low fig3.ifc; echo "exit $?"
  $ ../../bin/ifc.exe prove fig3.ifc
  $ ../../bin/ifc.exe prove --binding leaky.bind fig3.ifc | head -1
  $ ../../bin/ifc.exe run --input x=0 fig3.ifc
  $ ../../bin/ifc.exe run --input x=7 fig3.ifc
  $ ../../bin/ifc.exe explore --input x=1 fig3.ifc | head -6
  $ ../../bin/ifc.exe taint --binding leaky.bind --input x=0 fig3.ifc | tail -1; echo "exit $?"
  $ ../../bin/ifc.exe ni --binding leaky.bind --pairs 4 fig3.ifc | head -1; echo "exit $?"
  $ ../../bin/ifc.exe lattice corporate.lat
  $ ../../bin/ifc.exe check --lattice corporate.lat --binding corporate.bind chain.ifc; echo "exit $?"
  $ ../../bin/ifc.exe check --binding sec52.bind sec52.ifc | head -1
  $ ../../bin/ifc.exe check --flow-sensitive --binding sec52.bind sec52.ifc | tail -1; echo "exit $?"
  $ ../../bin/ifc.exe gen --size 8 --seed 3 2>/dev/null > g1.txt
  $ ../../bin/ifc.exe gen --size 8 --seed 3 2>/dev/null > g2.txt
  $ cmp g1.txt g2.txt && echo same
  $ echo 'var x : integer; x := ' > bad.ifc
  $ ../../bin/ifc.exe check bad.ifc; echo "exit $?"
  $ echo 'y := 1' > undecl.ifc
  $ ../../bin/ifc.exe check undecl.ifc; echo "exit $?"
  $ printf 'var a : array(2) class low; h : integer class high;\na[h] := 1\n' > arr.ifc
  $ ../../bin/ifc.exe check arr.ifc | grep -E 'verdict|store'; echo "exit $?"
  $ printf 'var h : integer class high; y : integer class low;\ny := declassify h to low\n' > decl.ifc
  $ ../../bin/ifc.exe check decl.ifc | grep verdict
  $ printf 'var h : integer class high; y : integer class low;\nif h = 0 then y := declassify h to low fi\n' > decl2.ifc
  $ ../../bin/ifc.exe check decl2.ifc | grep -E 'verdict|FAIL'
  $ printf 'var x:integer;begin x:=1;if x=1 then x:=x+2 fi end' > messy.ifc
  $ ../../bin/ifc.exe fmt messy.ifc | tee formatted.ifc
  $ ../../bin/ifc.exe fmt formatted.ifc | cmp - formatted.ifc && echo idempotent
  $ ../../bin/ifc.exe lattice two --dot
  $ printf 'var x : integer; s : semaphore initially(0);\ncobegin begin wait(s); x := 1 end || signal(s) coend\n' > graph.ifc
  $ ../../bin/ifc.exe explore --dot graph.ifc
