(* Tests for the language front end: lexer, parser, printer, analyses. *)

module Ast = Ifc_lang.Ast
module Lexer = Ifc_lang.Lexer
module Parser = Ifc_lang.Parser
module Pretty = Ifc_lang.Pretty
module Vars = Ifc_lang.Vars
module Wellformed = Ifc_lang.Wellformed
module Metrics = Ifc_lang.Metrics
module Gen = Ifc_lang.Gen
module Token = Ifc_lang.Token
module Sset = Ifc_support.Sset
module Prng = Ifc_support.Prng

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let parse_stmt_exn src =
  match Parser.parse_stmt src with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let parse_program_exn src =
  match Parser.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let parse_expr_exn src =
  match Parser.parse_expr src with
  | Ok e -> e
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

(* ------------------------------------------------------------------ *)
(* Lexer *)

let tokens_of src =
  match Lexer.tokenize src with
  | Ok toks -> List.map (fun t -> t.Lexer.token) toks
  | Error e -> Alcotest.failf "lex error: %a" Lexer.pp_error e

let test_lexer_basics () =
  let toks = tokens_of "x := y + 42" in
  Alcotest.(check int) "token count" 6 (List.length toks);
  check "shapes" true
    (toks
    = [ Token.IDENT "x"; Token.ASSIGN; Token.IDENT "y"; Token.PLUS; Token.INT 42; Token.EOF ])

let test_lexer_not_equal_forms () =
  List.iter
    (fun src -> check src true (List.mem Token.NE (tokens_of src)))
    [ "x # 0"; "x <> 0"; "x != 0" ]

let test_lexer_par_forms () =
  check "||" true (List.mem Token.PAR (tokens_of "cobegin skip || skip coend"));
  check "!! (paper artifact)" true (List.mem Token.PAR (tokens_of "skip !! skip"))

let test_lexer_comments () =
  let toks = tokens_of "x -- line comment\n := (* block (* nested *) *) 1" in
  check "comments stripped" true
    (toks = [ Token.IDENT "x"; Token.ASSIGN; Token.INT 1; Token.EOF ])

let test_lexer_errors () =
  check "unterminated comment" true (Result.is_error (Lexer.tokenize "(* oops"));
  check "stray char" true (Result.is_error (Lexer.tokenize "x := $"));
  check "lone bang" true (Result.is_error (Lexer.tokenize "x ! y"));
  check "lone pipe" true (Result.is_error (Lexer.tokenize "a | b"))

let test_lexer_positions () =
  match Lexer.tokenize "x :=\n  1" with
  | Error e -> Alcotest.failf "lex error: %a" Lexer.pp_error e
  | Ok toks ->
    let one = List.find (fun t -> t.Lexer.token = Token.INT 1) toks in
    check_int "line" 2 one.Lexer.span.start.line;
    check_int "col" 3 one.Lexer.span.start.col

let test_lexer_keywords_case_insensitive () =
  check "IF lexes as keyword" true (List.mem Token.KW_IF (tokens_of "IF x THEN skip"))

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_assign () =
  match (parse_stmt_exn "x := y + 1").node with
  | Ast.Assign ("x", Ast.Binop (Ast.Add, Ast.Var "y", Ast.Int 1)) -> ()
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_precedence () =
  let e = parse_expr_exn "1 + 2 * 3 = 7 and not 4 < 5 or true" in
  (* or(and(=(+(1,*(2,3)),7), not(<(4,5))), true) *)
  match e with
  | Ast.Binop
      ( Ast.Or,
        Ast.Binop
          ( Ast.And,
            Ast.Binop
              (Ast.Eq, Ast.Binop (Ast.Add, Ast.Int 1, Ast.Binop (Ast.Mul, Ast.Int 2, Ast.Int 3)), Ast.Int 7),
            Ast.Unop (Ast.Not, Ast.Binop (Ast.Lt, Ast.Int 4, Ast.Int 5)) ),
        Ast.Bool true ) ->
    ()
  | _ -> Alcotest.fail "precedence mis-parsed"

let test_parse_left_assoc () =
  match parse_expr_exn "10 - 3 - 2" with
  | Ast.Binop (Ast.Sub, Ast.Binop (Ast.Sub, Ast.Int 10, Ast.Int 3), Ast.Int 2) -> ()
  | _ -> Alcotest.fail "subtraction not left-associative"

let test_parse_dangling_else () =
  match (parse_stmt_exn "if x = 0 then if y = 0 then skip else z := 1").node with
  | Ast.If (_, { node = Ast.If (_, _, { node = Ast.Assign ("z", _); _ }); _ }, { node = Ast.Skip; _ })
    ->
    ()
  | _ -> Alcotest.fail "else bound to the wrong if"

let test_parse_fi_disambiguates () =
  match (parse_stmt_exn "if x = 0 then if y = 0 then skip fi else z := 1").node with
  | Ast.If (_, { node = Ast.If (_, _, { node = Ast.Skip; _ }); _ }, { node = Ast.Assign ("z", _); _ })
    ->
    ()
  | _ -> Alcotest.fail "fi did not close the inner if"

let test_parse_cobegin () =
  match (parse_stmt_exn "cobegin x := 1 || y := 2 || wait(s) coend").node with
  | Ast.Cobegin [ _; _; { node = Ast.Wait "s"; _ } ] -> ()
  | _ -> Alcotest.fail "cobegin shape"

let test_parse_program_decls () =
  let p =
    parse_program_exn
      {|
var x, y : integer class high;
    m : integer;
    modify : semaphore initially(0) class low;
begin m := 0; wait(modify) end
|}
  in
  check_int "decl count" 4 (List.length p.decls);
  (match p.decls with
  | [ Ast.Var_decl { name = "x"; cls = Some "high" };
      Ast.Var_decl { name = "y"; cls = Some "high" };
      Ast.Var_decl { name = "m"; cls = None };
      Ast.Sem_decl { name = "modify"; init = 0; cls = Some "low" } ] ->
    ()
  | _ -> Alcotest.fail "declaration shapes");
  match p.body.node with Ast.Seq [ _; _ ] -> () | _ -> Alcotest.fail "body shape"

let test_parse_paper_fig3 () =
  (* The exact Figure 3 program, as printed in the paper (modulo || for
     the typeset !!). *)
  let src =
    {|
var x, y, m : integer;
    modify, modified, read, done : semaphore initially(0);
cobegin
  begin
    m := 0;
    if x # 0 then begin signal(modify); wait(modified) end;
    signal(read); wait(done);
    if x = 0 then begin signal(modify); wait(modified) end;
    wait(done)
  end
  || begin wait(modify); m := 1; signal(modified) end
  || begin wait(read); y := m; signal(done) end
coend
|}
  in
  let p = parse_program_exn src in
  check_int "seven declarations" 7 (List.length p.decls);
  check "well-formed" true (Wellformed.is_valid p);
  match p.body.node with
  | Ast.Cobegin [ _; _; _ ] -> ()
  | _ -> Alcotest.fail "three processes expected"

let test_parse_errors () =
  let cases =
    [
      ("missing then", "if x = 0 skip");
      ("missing coend", "cobegin skip || skip");
      ("missing assign rhs", "x :=");
      ("stray end", "begin skip end end");
      ("bad decl type", "var x : float; skip");
      ("trailing garbage", "skip skip");
      ("empty input", "");
      ("wait without paren", "wait s");
    ]
  in
  List.iter
    (fun (name, src) -> check name true (Result.is_error (Parser.parse_program src)))
    cases

(* ------------------------------------------------------------------ *)
(* Pretty-printer round trip *)

let roundtrip_stmt s =
  let printed = Pretty.stmt_to_string s in
  match Parser.parse_stmt printed with
  | Error e -> Alcotest.failf "reparse failed on %S: %a" printed Parser.pp_error e
  | Ok s' ->
    if not (Ast.equal_stmt s s') then
      Alcotest.failf "round trip changed the AST:@.%s@.vs@.%s" printed
        (Pretty.stmt_to_string s')

let test_roundtrip_fixed () =
  List.iter
    (fun src -> roundtrip_stmt (parse_stmt_exn src))
    [
      "skip";
      "x := -y + 3 * (z - 1)";
      "x := - -y";
      "if x = 0 and y > 1 or not z < 2 then x := 1 else y := 2";
      "while x # 0 do begin x := x - 1; signal(s) end";
      "cobegin begin wait(s); y := 1 end || if x = 0 then signal(s) coend";
      "begin skip; skip; begin skip; x := 1 end end";
    ]

let test_roundtrip_random =
  let count = 200 in
  fun () ->
    let rng = Prng.create 42 in
    for i = 1 to count do
      let size = 1 + (i mod 40) in
      let s = Gen.stmt rng Gen.default ~size in
      roundtrip_stmt s
    done

let test_roundtrip_program () =
  let p =
    parse_program_exn
      "var a : integer class high; s : semaphore initially(2); begin a := 1; wait(s) end"
  in
  let printed = Pretty.program_to_string p in
  match Parser.parse_program printed with
  | Error e -> Alcotest.failf "reparse failed: %a on %S" Parser.pp_error e printed
  | Ok p' -> check "program roundtrip" true (Ast.equal_program p p')

(* ------------------------------------------------------------------ *)
(* Vars *)

let test_vars_modified () =
  let s = parse_stmt_exn "begin x := 1; if y = 0 then z := 2 else wait(s); while w > 0 do signal(t) end" in
  let m = Vars.modified s in
  check "modified set" true
    (Sset.equal m (Sset.of_list [ "x"; "z"; "s"; "t" ]))

let test_vars_read () =
  let s = parse_stmt_exn "begin x := a + b; if c = 0 then skip; wait(s) end" in
  check "read set" true
    (Sset.equal (Vars.read s) (Sset.of_list [ "a"; "b"; "c"; "s" ]))

let test_vars_semaphores () =
  let s = parse_stmt_exn "cobegin wait(s) || signal(t) || x := 1 coend" in
  check "semaphores" true (Sset.equal (Vars.semaphores s) (Sset.of_list [ "s"; "t" ]))

(* ------------------------------------------------------------------ *)
(* Well-formedness *)

let test_wellformed_undeclared () =
  let p = parse_program_exn "var x : integer; y := 1" in
  check "undeclared y" false (Wellformed.is_valid p)

let test_wellformed_sem_in_expr () =
  let p = parse_program_exn "var x : integer; s : semaphore initially(0); x := s" in
  check "semaphore read rejected" false (Wellformed.is_valid p)

let test_wellformed_assign_to_sem () =
  let p = parse_program_exn "var s : semaphore initially(0); s := 1" in
  check "assignment to semaphore rejected" false (Wellformed.is_valid p)

let test_wellformed_var_as_sem () =
  let p = parse_program_exn "var x : integer; wait(x)" in
  check "wait on integer rejected" false (Wellformed.is_valid p)

let test_wellformed_duplicate () =
  let p = parse_program_exn "var x : integer; x : integer; skip" in
  check "duplicate decl rejected" false (Wellformed.is_valid p);
  let msg =
    match Wellformed.errors p with
    | [ i ] -> i.Wellformed.message
    | _ -> Alcotest.fail "expected exactly one error"
  in
  check "same-kind message" true
    (msg = "duplicate declaration of x (both as integer variable)")

let test_wellformed_duplicate_cross_kind () =
  (* Redeclaring a name as a different kind is the nastier bug; the
     message must name both kinds in declaration order. *)
  let p =
    parse_program_exn "var x : integer; x : semaphore initially(0); skip"
  in
  check "cross-kind duplicate rejected" false (Wellformed.is_valid p);
  (match Wellformed.errors p with
  | [ i ] ->
    check "cross-kind message" true
      (i.Wellformed.message
      = "duplicate declaration of x (first as integer variable, again as \
         semaphore)")
  | _ -> Alcotest.fail "expected exactly one error");
  let p2 = parse_program_exn "var a : array(4); a : integer; skip" in
  (match Wellformed.errors p2 with
  | [ i ] ->
    check "array/integer message" true
      (i.Wellformed.message
      = "duplicate declaration of a (first as array, again as integer \
         variable)")
  | _ -> Alcotest.fail "expected exactly one error");
  (* Three declarations of one name report one error per extra decl. *)
  let p3 =
    parse_program_exn
      "var y : integer; y : integer; y : semaphore initially(1); skip"
  in
  check_int "two errors for a triplicate" 2 (List.length (Wellformed.errors p3))

let test_wellformed_duplicate_channel () =
  (* Channels join the kind-aware duplicate diagnostics: the message
     names both kinds in declaration order, whichever comes first. *)
  let p = parse_program_exn "var c : channel(1); c : integer; skip" in
  check "channel/integer duplicate rejected" false (Wellformed.is_valid p);
  (match Wellformed.errors p with
  | [ i ] ->
    check "channel-first message" true
      (i.Wellformed.message
      = "duplicate declaration of c (first as channel, again as integer \
         variable)")
  | _ -> Alcotest.fail "expected exactly one error");
  let p2 =
    parse_program_exn "var c : semaphore initially(0); c : channel(2); skip"
  in
  (match Wellformed.errors p2 with
  | [ i ] ->
    check "semaphore/channel message" true
      (i.Wellformed.message
      = "duplicate declaration of c (first as semaphore, again as channel)")
  | _ -> Alcotest.fail "expected exactly one error");
  let p3 = parse_program_exn "var c : channel(1); c : channel(2); skip" in
  (match Wellformed.errors p3 with
  | [ i ] ->
    check "same-kind channel message" true
      (i.Wellformed.message = "duplicate declaration of c (both as channel)")
  | _ -> Alcotest.fail "expected exactly one error")

let test_wellformed_atomicity_warning () =
  let p =
    parse_program_exn
      "var x, y, z : integer; cobegin x := y + y || y := 1 coend"
  in
  check "errors absent" true (Wellformed.is_valid p);
  let warnings =
    List.filter (fun i -> i.Wellformed.severity = Wellformed.Warning) (Wellformed.check p)
  in
  check_int "one atomicity warning" 1 (List.length warnings)

let test_wellformed_atomicity_ok_single_ref () =
  let p = parse_program_exn "var x, y : integer; cobegin x := y + 1 || y := 1 coend" in
  check "no warnings" true (Wellformed.check p = [])

let test_infer_decls () =
  let body = parse_stmt_exn "begin x := 1; wait(s) end" in
  let p = Wellformed.infer_decls (Ast.program body) in
  check "valid after inference" true (Wellformed.is_valid p);
  check_int "two decls" 2 (List.length p.decls)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics () =
  let s =
    parse_stmt_exn
      "begin x := 1; while x > 0 do if y = 0 then x := 2 else wait(s); cobegin skip || signal(t) coend end"
  in
  let m = Metrics.of_stmt s in
  check_int "statements" 9 m.statements;
  check_int "assignments" 2 m.assignments;
  check_int "loops" 1 m.loops;
  check_int "branches" 1 m.branches;
  check_int "cobegins" 1 m.cobegins;
  check_int "sync ops" 2 m.sync_ops;
  check_int "width" 2 m.max_width

(* ------------------------------------------------------------------ *)
(* Generator *)

let test_gen_wellformed =
  let count = 100 in
  fun () ->
    let rng = Prng.create 7 in
    for i = 1 to count do
      let p = Gen.program rng Gen.default ~size:(1 + (i mod 60)) in
      if not (Wellformed.is_valid p) then
        Alcotest.failf "generated ill-formed program:@.%s" (Pretty.program_to_string p)
    done

let test_gen_sequential_config () =
  let rng = Prng.create 11 in
  for _ = 1 to 50 do
    let p = Gen.program rng Gen.sequential ~size:30 in
    let m = Metrics.of_program p in
    check_int "no cobegin" 0 m.cobegins;
    check_int "no sync" 0 m.sync_ops
  done

let test_gen_size_tracks_request () =
  let rng = Prng.create 3 in
  List.iter
    (fun size ->
      let p = Gen.program rng Gen.default ~size in
      let m = Metrics.of_program p in
      check
        (Printf.sprintf "size %d within 4x (got %d)" size m.statements)
        true
        (m.statements >= size / 4 && m.statements <= size * 4))
    [ 10; 50; 200; 1000 ]

let test_gen_balanced_terminating_counts () =
  let rng = Prng.create 19 in
  for _ = 1 to 30 do
    let p = Gen.program_balanced rng Gen.default ~size:20 in
    check "balanced program well-formed" true (Wellformed.is_valid p)
  done

(* Every if/while guard of a statement, for coverage assertions below. *)
let rec guards (s : Ast.stmt) acc =
  match s.node with
  | Ast.Skip | Ast.Assign _ | Ast.Declassify _ | Ast.Store _ | Ast.Wait _
  | Ast.Signal _ | Ast.Send _ | Ast.Recv _ ->
    acc
  | Ast.If (e, a, b) -> guards b (guards a (e :: acc))
  | Ast.While (e, b) -> guards b (e :: acc)
  | Ast.Seq ss | Ast.Cobegin ss ->
    List.fold_left (fun acc s -> guards s acc) acc ss

let rec expr_has_index = function
  | Ast.Int _ | Ast.Bool _ | Ast.Var _ -> false
  | Ast.Index _ -> true
  | Ast.Unop (_, e) -> expr_has_index e
  | Ast.Binop (_, a, b) -> expr_has_index a || expr_has_index b

let collect_guards cfg ~seed ~count ~size =
  let rng = Prng.create seed in
  List.concat_map
    (fun _ ->
      let p = Gen.program rng cfg ~size in
      guards p.Ast.body [])
    (List.init count Fun.id)

let test_gen_guards_cover_shapes () =
  let gs = collect_guards Gen.with_arrays ~seed:29 ~count:80 ~size:25 in
  check "guards generated at all" true (List.length gs > 50);
  check "some guard reads an array" true (List.exists expr_has_index gs);
  check "some guard has a compound scrutinee" true
    (List.exists
       (function Ast.Binop (_, Ast.Binop _, _) -> true | _ -> false)
       gs);
  check "plain variable guards still dominate" true
    (let plain =
       List.length
         (List.filter
            (function Ast.Binop (_, Ast.Var _, Ast.Int _) -> true | _ -> false)
            gs)
     in
     2 * plain > List.length gs)

let test_gen_guards_no_arrays_without_config () =
  List.iter
    (fun (name, cfg) ->
      let gs = collect_guards cfg ~seed:31 ~count:60 ~size:25 in
      check
        (name ^ ": array-free config never emits array reads in guards")
        false
        (List.exists expr_has_index gs))
    [ ("sequential", Gen.sequential); ("default", Gen.default) ]

let test_shrink_preserves_wellformedness () =
  let rng = Prng.create 23 in
  for _ = 1 to 20 do
    let p = Gen.program rng Gen.default ~size:15 in
    Seq.iter
      (fun p' ->
        if not (Wellformed.is_valid p') then
          Alcotest.failf "shrink broke program:@.%s" (Pretty.program_to_string p'))
      (Seq.take 20 (Gen.shrink_program p))
  done

let test_shrink_strictly_smaller_available () =
  let s = parse_stmt_exn "begin x := 1; y := 2 end" in
  let shrinks = List.of_seq (Gen.shrink_stmt s) in
  check "has shrinks" true (shrinks <> []);
  check "some shrink smaller" true
    (List.exists (fun s' -> (Metrics.of_stmt s').statements < 3) shrinks)

let suite =
  ( "lang",
    [
      Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
      Alcotest.test_case "lexer not-equal forms" `Quick test_lexer_not_equal_forms;
      Alcotest.test_case "lexer par forms" `Quick test_lexer_par_forms;
      Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
      Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
      Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
      Alcotest.test_case "lexer keyword case" `Quick test_lexer_keywords_case_insensitive;
      Alcotest.test_case "parse assign" `Quick test_parse_assign;
      Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
      Alcotest.test_case "parse left assoc" `Quick test_parse_left_assoc;
      Alcotest.test_case "parse dangling else" `Quick test_parse_dangling_else;
      Alcotest.test_case "parse fi disambiguates" `Quick test_parse_fi_disambiguates;
      Alcotest.test_case "parse cobegin" `Quick test_parse_cobegin;
      Alcotest.test_case "parse program decls" `Quick test_parse_program_decls;
      Alcotest.test_case "parse paper figure 3" `Quick test_parse_paper_fig3;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "roundtrip fixed cases" `Quick test_roundtrip_fixed;
      Alcotest.test_case "roundtrip random programs" `Quick test_roundtrip_random;
      Alcotest.test_case "roundtrip program with decls" `Quick test_roundtrip_program;
      Alcotest.test_case "vars modified" `Quick test_vars_modified;
      Alcotest.test_case "vars read" `Quick test_vars_read;
      Alcotest.test_case "vars semaphores" `Quick test_vars_semaphores;
      Alcotest.test_case "wellformed undeclared" `Quick test_wellformed_undeclared;
      Alcotest.test_case "wellformed sem in expr" `Quick test_wellformed_sem_in_expr;
      Alcotest.test_case "wellformed assign to sem" `Quick test_wellformed_assign_to_sem;
      Alcotest.test_case "wellformed var as sem" `Quick test_wellformed_var_as_sem;
      Alcotest.test_case "wellformed duplicate" `Quick test_wellformed_duplicate;
      Alcotest.test_case "wellformed duplicate cross-kind" `Quick
        test_wellformed_duplicate_cross_kind;
      Alcotest.test_case "wellformed duplicate channel" `Quick
        test_wellformed_duplicate_channel;
      Alcotest.test_case "atomicity warning" `Quick test_wellformed_atomicity_warning;
      Alcotest.test_case "atomicity single ref ok" `Quick
        test_wellformed_atomicity_ok_single_ref;
      Alcotest.test_case "infer decls" `Quick test_infer_decls;
      Alcotest.test_case "metrics" `Quick test_metrics;
      Alcotest.test_case "generator well-formed" `Quick test_gen_wellformed;
      Alcotest.test_case "generator sequential config" `Quick test_gen_sequential_config;
      Alcotest.test_case "generator size tracking" `Quick test_gen_size_tracks_request;
      Alcotest.test_case "generator balanced" `Quick test_gen_balanced_terminating_counts;
      Alcotest.test_case "generator guard shapes" `Quick test_gen_guards_cover_shapes;
      Alcotest.test_case "generator guard shapes gated" `Quick
        test_gen_guards_no_arrays_without_config;
      Alcotest.test_case "shrink preserves wellformedness" `Quick
        test_shrink_preserves_wellformedness;
      Alcotest.test_case "shrink produces smaller" `Quick
        test_shrink_strictly_smaller_available;
    ] )
