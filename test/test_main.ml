let () =
  Alcotest.run "reitman79"
    [ Test_support.suite; Test_lattice.suite; Test_lang.suite; Test_paper.suite;
      Test_cfm.suite; Test_logic.suite; Test_exec.suite; Test_flow_sensitive.suite;
      Test_arrays.suite; Test_declassify.suite; Test_corpus.suite;
      Test_properties.suite; Test_analysis.suite; Test_cert.suite;
      Test_pipeline.suite; Test_store.suite; Test_modsys.suite;
      Test_dataflow.suite; Test_fuzz.suite; Test_server.suite ]
