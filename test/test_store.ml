(* Tests for the persistent content-addressed artifact store: entry and
   summary round-trips, crash safety (truncation, torn renames, junk —
   all must degrade to a recompute, never a wrong answer), generation
   heat (preload, record_heat, gc), the tier's independent certificate
   re-validation, warm-restart batches, and incremental certification
   agreeing with the reference CFM while recomputing only the spine. *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Ast = Ifc_lang.Ast
module Gen = Ifc_lang.Gen
module Metrics = Ifc_lang.Metrics
module Prng = Ifc_support.Prng
module Sset = Ifc_support.Sset
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Cache = Ifc_pipeline.Cache
module Job = Ifc_pipeline.Job
module Batch = Ifc_pipeline.Batch
module Store = Ifc_store.Store
module Incremental = Ifc_store.Incremental

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let two = Lattice.stringify Chain.two

let ( // ) = Filename.concat

(* Each test gets a throwaway store directory. *)
let fresh_dir () =
  let path = Filename.temp_file "ifc-store" "" in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (path // f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let open_exn ?bump dir =
  match Store.open_ ?bump dir with
  | Ok st -> st
  | Error msg -> Alcotest.failf "Store.open_ %s: %s" dir msg

let random_binding rng lat stmt =
  let arr = Array.of_list lat.Lattice.elements in
  Binding.make lat
    (List.map
       (fun v -> (v, arr.(Prng.int rng (Array.length arr))))
       (Sset.elements (Ifc_lang.Vars.all_vars stmt)))

let corpus ?(analyses = [ Job.Cfm ]) n =
  let rng = Prng.create 19790101 in
  List.init n (fun i ->
      let p = Gen.program rng Gen.default ~size:(1 + (i mod 20)) in
      let b = random_binding rng two p.Ast.body in
      Job.make ~id:i
        ~name:(Printf.sprintf "corpus:%d" i)
        ~lattice:two ~binding:b ~analyses p)

let some_digest = String.make 32 'a'

let result ?(analysis = "cfm") ?(verdict = true) ?artifact () =
  { Job.analysis; verdict; checks = 3; duration_ns = 17L; artifact }

let overwrite path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Round-trips *)

let test_entry_round_trip () =
  with_dir (fun dir ->
      let st = open_exn dir in
      let results =
        [
          result ();
          result ~analysis:"cert" ~verdict:false
            ~artifact:"not really a cert\nwith a second line\n" ();
          result ~analysis:"lint" ~artifact:"{\"findings\": []}" ();
        ]
      in
      (* The cert artifact is garbage on purpose: plain [find] is
         structural only; semantic checking belongs to the tier. *)
      Store.add st ~digest:some_digest results;
      (match Store.find st ~digest:some_digest with
      | None -> Alcotest.fail "entry vanished"
      | Some read ->
        check "results survive the disk round-trip byte-for-byte" true
          (read = results));
      check "absent digest misses" true
        (Store.find st ~digest:(String.make 32 'b') = None);
      let d = Store.disk_stats st in
      check_int "one entry on disk" 1 d.Store.entries;
      check_int "nothing quarantined" 0 d.Store.quarantined)

let test_summary_round_trip () =
  with_dir (fun dir ->
      let st = open_exn dir in
      let s = { Store.s_mod = "high"; s_flow = None; s_cert = true } in
      Store.add_summary st ~digest:some_digest s;
      check "summary round-trips" true
        (Store.find_summary st ~digest:some_digest = Some s);
      let s2 = { Store.s_mod = "low"; s_flow = Some "high"; s_cert = false } in
      Store.add_summary st ~digest:some_digest s2;
      check "last write wins" true
        (Store.find_summary st ~digest:some_digest = Some s2))

let test_reopen_bumps_generation () =
  with_dir (fun dir ->
      let g1 = Store.generation (open_exn dir) in
      let g2 = Store.generation (open_exn dir) in
      check "reopening bumps" true (g2 = g1 + 1);
      let g3 = Store.generation (open_exn ~bump:false dir) in
      check_int "bump:false inspects without aging" g2 g3)

(* ------------------------------------------------------------------ *)
(* Crash safety and corruption *)

let test_truncated_entry_recomputes_not_crashes () =
  with_dir (fun dir ->
      let st = open_exn dir in
      Store.add st ~digest:some_digest [ result () ];
      let path = dir // "objects" // some_digest in
      let raw =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (* A torn write: the file stops mid-entry, checksum gone. *)
      overwrite path (String.sub raw 0 (String.length raw / 2));
      check "truncated entry reads as a miss" true
        (Store.find st ~digest:some_digest = None);
      check "damaged file moved out of objects/" false (Sys.file_exists path);
      check_int "damaged file kept in quarantine" 1
        (Store.disk_stats st).Store.quarantined;
      (* The slot is usable again: a recompute re-adds and hits. *)
      Store.add st ~digest:some_digest [ result () ];
      check "recomputed entry hits" true
        (Store.find st ~digest:some_digest <> None))

let test_flipped_byte_quarantined () =
  with_dir (fun dir ->
      let st = open_exn dir in
      Store.add st ~digest:some_digest [ result ~verdict:true () ];
      let path = dir // "objects" // some_digest in
      let raw =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (* Flip the verdict in place: the checksum must catch it — a
         tampered verdict is served as a miss, never as [false]. *)
      let sub = "verdict true" and by = "verdict false" in
      let n = String.length raw and m = String.length sub in
      let rec find i =
        if i + m > n then Alcotest.fail "verdict line not found"
        else if String.equal (String.sub raw i m) sub then i
        else find (i + 1)
      in
      let i = find 0 in
      overwrite path
        (String.sub raw 0 i ^ by ^ String.sub raw (i + m) (n - i - m));
      check "tampered entry is a miss" true
        (Store.find st ~digest:some_digest = None);
      check_int "tampered entry quarantined" 1
        (Store.disk_stats st).Store.quarantined)

let test_staging_leftovers_swept_by_gc () =
  with_dir (fun dir ->
      let st = open_exn dir in
      Store.add st ~digest:some_digest [ result () ];
      (* A crash between staging and rename leaves a tmp file; a
         concurrent writer in another process (the in-process mutex
         does not reach it) also stages here before renaming. Only the
         aged file is a crash leftover — the fresh one may be an
         in-flight publish and must survive the sweep untouched. *)
      let stale = dir // "tmp" // "deadbeef.0.tmp" in
      let fresh = dir // "tmp" // "cafe.1.tmp" in
      overwrite stale "half an entry";
      overwrite fresh "a concurrent writer's staged entry, mid-publish";
      Unix.utimes stale 1. 1.;
      let report = Store.gc st in
      check_int "stale staging leftover swept" 1 report.Store.tmp_swept;
      check "stale leftover gone" false (Sys.file_exists stale);
      check "fresh staging file kept whole" true (Sys.file_exists fresh);
      check_int "live entry kept" 1 report.Store.live;
      check "entry still readable after gc" true
        (Store.find st ~digest:some_digest <> None);
      (* Once aged past the guard, the leftover goes too: [tmp_age] is
         the only thing keeping it. *)
      Unix.utimes fresh 1. 1.;
      let again = Store.gc st in
      check_int "aged leftover swept on a later pass" 1 again.Store.tmp_swept;
      check "aged leftover gone" false (Sys.file_exists fresh))

let test_gc_keeps_concurrent_writer_publish_whole () =
  with_dir (fun dir ->
      let st = open_exn dir in
      (* Race gc against a live writer: a publish staged in tmp/ while
         the sweep runs must either reach its final name intact or stay
         staged — never be half-collected. The writer here is a second
         handle on the same directory, standing in for another
         process. *)
      let writer = open_exn dir in
      let victim = String.make 32 'e' in
      let publisher =
        Thread.create
          (fun () ->
            for _ = 1 to 50 do
              Store.add writer ~digest:victim [ result ~verdict:true () ]
            done)
          ()
      in
      for _ = 1 to 20 do
        ignore (Store.gc st)
      done;
      Thread.join publisher;
      (* The published entry survived every sweep, whole: it still
         parses, checksums, and serves its verdict. *)
      check "published entry readable after racing gc" true
        (Store.find st ~digest:victim <> None);
      let verify = Store.verify st in
      check_int "nothing torn for verify to quarantine" 0
        verify.Store.quarantined)

let test_verify_quarantines_junk_and_damage () =
  with_dir (fun dir ->
      let st = open_exn dir in
      Store.add st ~digest:some_digest [ result () ];
      Store.add_summary st ~digest:some_digest
        { Store.s_mod = "high"; s_flow = None; s_cert = true };
      (* Three kinds of rot: a junk name, a zero-length entry, and an
         entry whose certificate artifact does not even parse. *)
      overwrite (dir // "objects" // "README") "not an entry";
      overwrite (dir // "objects" // String.make 32 'c') "";
      let bad_cert = String.make 32 'd' in
      Store.add st ~digest:bad_cert
        [ result ~analysis:"cert" ~artifact:"garbage bytes" () ];
      let report = Store.verify st in
      check_int "all files checked" 5 report.Store.checked;
      check_int "two fine" 2 report.Store.ok;
      check_int "three quarantined" 3 report.Store.quarantined;
      check "junk name flagged" true
        (List.mem "README" report.Store.quarantined_files);
      (* Verification is idempotent: a second pass is all-clean. *)
      let again = Store.verify st in
      check_int "second pass checks survivors" 2 again.Store.checked;
      check_int "second pass quarantines nothing" 0 again.Store.quarantined)

(* ------------------------------------------------------------------ *)
(* Heat: preload, record_heat, gc *)

let test_preload_hottest_generation () =
  with_dir (fun dir ->
      let st1 = open_exn dir in
      Store.add st1 ~digest:(String.make 32 '0') [ result () ];
      Store.add st1 ~digest:(String.make 32 '1') [ result () ];
      (* A new session: its writes are hotter than the old ones. *)
      let st2 = open_exn dir in
      Store.add st2 ~digest:(String.make 32 '2') [ result () ];
      let cache = Cache.create ~capacity:8 () in
      let n = Store.preload st2 cache in
      check_int "only the hottest generation preloads" 1 n;
      check "hot entry resident" true (Cache.mem cache (String.make 32 '2'));
      check "cold entry not resident" false
        (Cache.mem cache (String.make 32 '0')))

let test_record_heat_resurrects_hot_set () =
  with_dir (fun dir ->
      let st1 = open_exn dir in
      Store.add st1 ~digest:(String.make 32 '0') [ result () ];
      Store.add st1 ~digest:(String.make 32 '1') [ result () ];
      let st2 = open_exn dir in
      (* Session 2 only ever touched entry 0 — mark it hot at drain. *)
      let cache = Cache.create ~capacity:8 () in
      Cache.add cache (String.make 32 '0') [ result () ];
      Store.record_heat st2 cache;
      let st3 = open_exn dir in
      let cache3 = Cache.create ~capacity:8 () in
      check_int "only the re-stamped entry preloads" 1
        (Store.preload st3 cache3);
      check "it is the one session 2 kept" true
        (Cache.mem cache3 (String.make 32 '0')))

let test_gc_sweeps_cold_generations () =
  with_dir (fun dir ->
      let st1 = open_exn dir in
      Store.add st1 ~digest:(String.make 32 '0') [ result () ];
      (* Age the first entry out of a keep-1 window. *)
      let st2 = open_exn dir in
      ignore (Store.generation st2);
      let st3 = open_exn dir in
      Store.add st3 ~digest:(String.make 32 '1') [ result () ];
      let report = Store.gc ~keep:1 st3 in
      check_int "cold entry swept" 1 report.Store.swept;
      check_int "hot entry live" 1 report.Store.live;
      check "swept bytes accounted" true (report.Store.bytes_freed > 0);
      check "cold entry gone" true
        (Store.find st3 ~digest:(String.make 32 '0') = None);
      check "hot entry kept" true
        (Store.find st3 ~digest:(String.make 32 '1') <> None))

let test_manifest_recovery () =
  with_dir (fun dir ->
      let st1 = open_exn dir in
      let gen = Store.generation st1 in
      Store.add st1 ~digest:some_digest [ result () ];
      (* Lose the manifest: the counter recovers from entry stamps, so
         new writes still sort as newest. *)
      Sys.remove (dir // "manifest");
      let st2 = open_exn dir in
      check "generation recovered past the stamp" true
        (Store.generation st2 > gen);
      check "entry still readable" true
        (Store.find st2 ~digest:some_digest <> None))

(* ------------------------------------------------------------------ *)
(* The tier: certificate re-validation on the read path *)

let test_tier_revalidates_certificates () =
  with_dir (fun dir ->
      let st = open_exn dir in
      let specs = corpus ~analyses:[ Job.Cfm; Job.Cert ] 6 in
      let spec = List.hd specs in
      let digest = Job.digest spec in
      (* An honestly computed entry round-trips through the tier. *)
      (match (Job.run spec).Job.outcome with
      | Error e -> Alcotest.failf "job errored: %s" e
      | Ok results ->
        Store.add st ~digest results;
        let tier = Store.tier st in
        check "honest certificate accepted" true
          (tier.Ifc_pipeline.Tier.find spec ~digest <> None));
      (* A certificate from program A stored under program B's digest:
         the checker rejects it and the entry is quarantined. *)
      let other = List.nth specs 1 in
      (match (Job.run spec).Job.outcome with
      | Error e -> Alcotest.failf "job errored: %s" e
      | Ok results ->
        let other_digest = Job.digest other in
        Store.add st ~digest:other_digest results;
        let tier = Store.tier st in
        check "mismatched certificate refused" true
          (tier.Ifc_pipeline.Tier.find other ~digest:other_digest = None);
        check "mismatched entry quarantined" true
          ((Store.disk_stats st).Store.quarantined > 0));
      (* A positive cert verdict without its artifact is refused too. *)
      let bare = String.make 32 'e' in
      Store.add st ~digest:bare [ result ~analysis:"cert" ~verdict:true () ];
      let tier = Store.tier st in
      check "certificate-less cert verdict refused" true
        (tier.Ifc_pipeline.Tier.find spec ~digest:bare = None))

(* ------------------------------------------------------------------ *)
(* Batch over the store: the warm-restart acceptance criterion *)

let test_batch_warm_restart_from_store () =
  with_dir (fun dir ->
      let specs = corpus 24 in
      let verdicts s =
        List.map (fun r -> (r.Job.job_digest, Job.verdict_string r)) s.Batch.results
      in
      (* Session 1: cold — everything computed and persisted. *)
      let st1 = open_exn dir in
      let cache1 = Cache.create ~capacity:64 () in
      let cold = Batch.run ~jobs:2 ~cache:cache1 ~store:(Store.tier st1) specs in
      check_int "cold run hits no store" 0 cold.Batch.store_hits;
      check_int "cold run misses everything" 24 cold.Batch.store_misses;
      (* Session 2: a fresh process (new cache, reopened store) with
         preload — the acceptance criterion: every job answered without
         recomputation. *)
      let st2 = open_exn dir in
      let cache2 = Cache.create ~capacity:64 () in
      let tier2 = Store.tier st2 in
      let preloaded = tier2.Ifc_pipeline.Tier.preload cache2 in
      check_int "warm start preloads the whole hot set" 24 preloaded;
      let warm = Batch.run ~jobs:2 ~cache:cache2 ~store:tier2 specs in
      check_int "warm run: all 24 from cache" 24 warm.Batch.cache_hits;
      check_int "warm run: zero cache misses" 0 warm.Batch.cache_misses;
      check "warm results all marked cached" true
        (List.for_all (fun r -> r.Job.from_cache) warm.Batch.results);
      check "warm verdicts byte-identical to cold" true
        (verdicts warm = verdicts cold);
      (* Session 3: no preload — misses fall through to disk, not to
         compute, and promotion makes the second pass memory-only. *)
      let st3 = open_exn dir in
      let cache3 = Cache.create ~capacity:64 () in
      let disk = Batch.run ~jobs:2 ~cache:cache3 ~store:(Store.tier st3) specs in
      check_int "unpreloaded run answered by the disk tier" 24
        disk.Batch.store_hits;
      check_int "no disk misses" 0 disk.Batch.store_misses;
      check "disk hits marked cached" true
        (List.for_all (fun r -> r.Job.from_cache) disk.Batch.results);
      let promoted = Batch.run ~jobs:2 ~cache:cache3 ~store:(Store.tier st3) specs in
      check_int "promoted pass is memory-only" 24 promoted.Batch.cache_hits;
      check_int "promoted pass never reaches disk" 0 promoted.Batch.store_hits)

(* ------------------------------------------------------------------ *)
(* Incremental certification *)

let test_incremental_matches_cfm () =
  let rng = Prng.create 515253 in
  let ok = ref 0 in
  for i = 1 to 120 do
    let p = Gen.program rng Gen.default ~size:(1 + (i mod 30)) in
    let b = random_binding rng two p.Ast.body in
    let self_check = i mod 3 = 0 in
    let ctx = Incremental.create ~self_check b in
    let reference = Cfm.analyze ~self_check b p.Ast.body in
    let s = Incremental.certify ctx p.Ast.body in
    if
      s.Incremental.cert = reference.Cfm.certified
      && String.equal s.Incremental.mod_ (two.Lattice.to_string reference.Cfm.mod_)
    then incr ok
  done;
  check_int "incremental agrees with Cfm.analyze on 120 random programs" 120 !ok

let test_incremental_memo_reuse () =
  let b = Binding.make two ~default:two.Lattice.bottom [] in
  let ctx = Incremental.create b in
  let p = Gen.program (Prng.create 99) Gen.default ~size:60 in
  ignore (Incremental.certify_program ctx p);
  let first = Incremental.stats ctx in
  check "first pass computes" true (first.Incremental.computed > 0);
  ignore (Incremental.certify_program ctx p);
  let second = Incremental.stats ctx in
  check_int "second pass computes nothing new" first.Incremental.computed
    second.Incremental.computed;
  check "second pass is all memo" true
    (second.Incremental.reused_memory > first.Incremental.reused_memory)

(* One-line edit: the acceptance assertion. Only the spine — the nodes
   from the changed leaf to the root — may be recomputed. *)
let test_incremental_one_line_edit_recomputes_spine_only () =
  with_dir (fun dir ->
      let b = Binding.make two ~default:two.Lattice.bottom [] in
      let big = Gen.program (Prng.create 4242) Gen.default ~size:400 in
      let edit (p : Ast.program) =
        let changed = ref false in
        let rec stmt (s : Ast.stmt) =
          if !changed then s
          else
            match s.Ast.node with
            | Ast.Assign (v, Ast.Int k) ->
              changed := true;
              { s with Ast.node = Ast.Assign (v, Ast.Int (k + 1)) }
            | Ast.Seq ss -> { s with Ast.node = Ast.Seq (List.map stmt ss) }
            | Ast.Cobegin ss ->
              { s with Ast.node = Ast.Cobegin (List.map stmt ss) }
            | Ast.If (e, x, y) ->
              let x' = stmt x in
              { s with Ast.node = Ast.If (e, x', stmt y) }
            | Ast.While (e, body) ->
              { s with Ast.node = Ast.While (e, stmt body) }
            | Ast.Skip | Ast.Assign _ | Ast.Declassify _ | Ast.Store _
            | Ast.Wait _ | Ast.Signal _ | Ast.Send _ | Ast.Recv _ -> s
        in
        let body = stmt p.Ast.body in
        check "edit found an assignment to change" true !changed;
        { p with Ast.body }
      in
      let st = open_exn dir in
      let ctx = Incremental.create ~store:st b in
      let before = Incremental.certify_program ctx big in
      Incremental.reset_stats ctx;
      let edited = edit big in
      let after = Incremental.certify_program ctx edited in
      let s = Incremental.stats ctx in
      let nodes = Metrics.length big in
      check "edited verdict agrees with reference CFM" true
        (Bool.equal after (Cfm.certified b edited.Ast.body));
      check "verdict of the original was computed too" true
        (Bool.equal before (Cfm.certified b big.Ast.body));
      check "the edit recomputed something" true (s.Incremental.computed > 0);
      (* The spine is bounded by the tree depth; on a 400-size program
         that is far below even a tenth of the nodes. *)
      check
        (Printf.sprintf "spine only: %d recomputed of %d nodes"
           s.Incremental.computed nodes)
        true
        (s.Incremental.computed * 10 < nodes);
      check "unchanged subtrees reused, not recomputed" true
        (s.Incremental.reused_memory > s.Incremental.computed);
      (* A cold session over the same store sees both versions. *)
      let st2 = open_exn dir in
      let ctx2 = Incremental.create ~store:st2 b in
      ignore (Incremental.certify_program ctx2 edited);
      let s2 = Incremental.stats ctx2 in
      check_int "warm restart recomputes nothing" 0 s2.Incremental.computed;
      check "warm restart reads summaries from disk" true
        (s2.Incremental.reused_disk > 0))

let test_incremental_survives_corrupt_summary () =
  with_dir (fun dir ->
      let b = Binding.make two ~default:two.Lattice.bottom [] in
      let p = Gen.program (Prng.create 7) Gen.default ~size:40 in
      let st = open_exn dir in
      let ctx = Incremental.create ~store:st b in
      let verdict = Incremental.certify_program ctx p in
      (* Trash every persisted summary. *)
      Array.iter
        (fun name -> overwrite (dir // "summaries" // name) "rotten")
        (Sys.readdir (dir // "summaries"));
      let st2 = open_exn dir in
      let ctx2 = Incremental.create ~store:st2 b in
      check "corrupt summaries degrade to recompute, same verdict" true
        (Bool.equal verdict (Incremental.certify_program ctx2 p));
      let s = Incremental.stats ctx2 in
      check_int "nothing served from the rotten store" 0
        s.Incremental.reused_disk;
      check "rotten summaries quarantined" true
        ((Store.disk_stats st2).Store.quarantined > 0))

let suite =
  ( "store",
    [
      Alcotest.test_case "entry round-trip" `Quick test_entry_round_trip;
      Alcotest.test_case "summary round-trip" `Quick test_summary_round_trip;
      Alcotest.test_case "reopen bumps generation" `Quick
        test_reopen_bumps_generation;
      Alcotest.test_case "truncated entry recomputes" `Quick
        test_truncated_entry_recomputes_not_crashes;
      Alcotest.test_case "flipped byte quarantined" `Quick
        test_flipped_byte_quarantined;
      Alcotest.test_case "gc sweeps staging leftovers" `Quick
        test_staging_leftovers_swept_by_gc;
      Alcotest.test_case "gc never tears a racing publish" `Quick
        test_gc_keeps_concurrent_writer_publish_whole;
      Alcotest.test_case "verify quarantines junk+damage" `Quick
        test_verify_quarantines_junk_and_damage;
      Alcotest.test_case "preload hottest generation" `Quick
        test_preload_hottest_generation;
      Alcotest.test_case "record_heat resurrects hot set" `Quick
        test_record_heat_resurrects_hot_set;
      Alcotest.test_case "gc sweeps cold generations" `Quick
        test_gc_sweeps_cold_generations;
      Alcotest.test_case "manifest recovery" `Quick test_manifest_recovery;
      Alcotest.test_case "tier re-validates certificates" `Quick
        test_tier_revalidates_certificates;
      Alcotest.test_case "batch warm restart from store" `Quick
        test_batch_warm_restart_from_store;
      Alcotest.test_case "incremental = cfm on random corpus" `Quick
        test_incremental_matches_cfm;
      Alcotest.test_case "incremental memo reuse" `Quick
        test_incremental_memo_reuse;
      Alcotest.test_case "one-line edit recomputes spine only" `Quick
        test_incremental_one_line_edit_recomputes_spine_only;
      Alcotest.test_case "incremental survives corrupt summaries" `Quick
        test_incremental_survives_corrupt_summary;
    ] )
