(* Tests for the proof-certificate subsystem: canonical round-trips,
   parser robustness on mutated input, tamper rejection with node paths,
   generator/checker agreement on random programs, and emit-and-check
   coverage of the paper programs and the persisted fuzz corpus. *)

module Ast = Ifc_lang.Ast
module Parser = Ifc_lang.Parser
module Vars = Ifc_lang.Vars
module Binding = Ifc_core.Binding
module Paper = Ifc_core.Paper
module Chain = Ifc_lattice.Chain
module Lattice = Ifc_lattice.Lattice
module Invariance = Ifc_logic_gen.Invariance
module Cert = Ifc_cert.Cert
module Checker = Ifc_cert.Checker
module Corpus = Ifc_fuzz.Corpus
module Sset = Ifc_support.Sset

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let qtest ?(count = 60) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let two = Lattice.stringify Chain.two

let parse_program_exn src =
  match Parser.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let all_low p = Binding.make two ~default:two.Lattice.bottom []
  |> fun b -> ignore p; b

let emit_exn binding (p : Ast.program) =
  match Invariance.witness binding p.Ast.body with
  | Error errs ->
    Alcotest.failf "program unexpectedly not provable (%d errors)"
      (List.length errs)
  | Ok proof -> Cert.of_proof ~binding ~program:p proof

let sec52 = parse_program_exn "var x, y : integer;\nbegin x := 0; y := x end"

let sec52_cert_text () = Cert.to_string (emit_exn (all_low sec52) sec52)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let replace_first ~sub ~by text =
  let nt = String.length text and ns = String.length sub in
  let rec find i =
    if i + ns > nt then None
    else if String.sub text i ns = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.failf "fixture drift: %S not found in certificate" sub
  | Some i ->
    String.sub text 0 i ^ by ^ String.sub text (i + ns) (nt - i - ns)

(* ------------------------------------------------------------------ *)
(* Round-trips *)

let test_roundtrip_structural () =
  let cert = emit_exn (all_low sec52) sec52 in
  let text = Cert.to_string cert in
  match Cert.parse text with
  | Error e -> Alcotest.failf "own output must parse: %a" Cert.pp_parse_error e
  | Ok parsed ->
    check_int "node count survives" (Cert.node_count cert)
      (Cert.node_count parsed);
    check_string "digest survives" cert.Cert.program_digest
      parsed.Cert.program_digest;
    check "binds survive" true (cert.Cert.binds = parsed.Cert.binds);
    (match Checker.check parsed sec52 with
    | Ok () -> ()
    | Error (f :: _) ->
      Alcotest.failf "checker must accept a fresh certificate: %a"
        Checker.pp_failure f
    | Error [] -> Alcotest.fail "rejected with no failures")

let test_roundtrip_byte_identical () =
  let text = sec52_cert_text () in
  match Cert.parse text with
  | Error e -> Alcotest.failf "parse failed: %a" Cert.pp_parse_error e
  | Ok parsed ->
    check_string "re-emission is byte-identical" text (Cert.to_string parsed)

let test_digest_is_pretty_printed_form () =
  (* Whitespace and comments in the source must not change the digest. *)
  let noisy =
    parse_program_exn
      "-- a comment\nvar x, y : integer;\nbegin  x := 0;\n  y := x end"
  in
  check_string "digest insensitive to concrete syntax"
    (Cert.program_digest sec52) (Cert.program_digest noisy)

(* ------------------------------------------------------------------ *)
(* Parser robustness: mutations never escape as exceptions *)

let structured_result text =
  match Cert.parse text with
  | Ok _ -> true
  | Error e -> not (contains_substring e.Cert.reason "internal error")
  | exception exn ->
    Alcotest.failf "parse raised on %S...: %s"
      (String.sub text 0 (min 40 (String.length text)))
      (Printexc.to_string exn)

let test_parser_truncations () =
  let text = sec52_cert_text () in
  for len = 0 to String.length text - 1 do
    check
      (Printf.sprintf "truncation at %d is structured" len)
      true
      (structured_result (String.sub text 0 len))
  done

let test_parser_byte_flips () =
  let text = sec52_cert_text () in
  String.iteri
    (fun i _ ->
      let b = Bytes.of_string text in
      Bytes.set b i (Char.chr ((Char.code (Bytes.get b i) + 13) mod 128));
      check
        (Printf.sprintf "byte flip at %d is structured" i)
        true
        (structured_result (Bytes.to_string b)))
    text

let test_parser_line_surgery () =
  let text = sec52_cert_text () in
  let lines = String.split_on_char '\n' text in
  let n = List.length lines in
  for drop = 0 to n - 1 do
    let mutated =
      List.filteri (fun i _ -> i <> drop) lines |> String.concat "\n"
    in
    check
      (Printf.sprintf "dropping line %d is structured" drop)
      true
      (structured_result mutated)
  done;
  check "duplicated body is structured" true (structured_result (text ^ text));
  check "leading garbage is structured" true
    (structured_result ("junk\n" ^ text));
  check "trailing garbage is structured" true
    (structured_result (text ^ "trailing\n"))

let test_parser_rejects_wrong_version () =
  let text = replace_first ~sub:"ifc-cert 1" ~by:"ifc-cert 2"
      (sec52_cert_text ())
  in
  match Cert.parse text with
  | Ok _ -> Alcotest.fail "future version must not parse"
  | Error e -> check_int "error on line 1" 1 e.Cert.line

(* ------------------------------------------------------------------ *)
(* Tamper detection: each class of forgery names the offending node *)

let reject_path program text expected_path =
  match Cert.parse text with
  | Error e ->
    Alcotest.failf "tampered file should parse, not %a" Cert.pp_parse_error e
  | Ok cert -> (
    match Checker.check cert program with
    | Ok () -> Alcotest.fail "tampered certificate must be rejected"
    | Error (first :: _) ->
      check_string "first failure names the node" expected_path
        first.Checker.path
    | Error [] -> Alcotest.fail "rejected with no failures")

let test_tamper_assertion_class () =
  (* Weaken one assertion: claim a high bound where the proof needs low.
     The first [const(low)] in the canonical text sits in the root node's
     assertion, so the checker's first failure names the root path. *)
  let text =
    replace_first ~sub:"const(low)" ~by:"const(high)" (sec52_cert_text ())
  in
  reject_path sec52 text "0"

let test_tamper_rule_swap () =
  (* Re-label the first assign as the (arity-identical) skip axiom: the
     statement at that path is still an assignment, so the skip rule
     cannot apply. *)
  let text =
    replace_first ~sub:": assign" ~by:": skip" (sec52_cert_text ())
  in
  reject_path sec52 text "0.0.0"

let test_tamper_digest_repoint () =
  (* Stamp the certificate for a different program. *)
  let other = parse_program_exn "var x, y : integer;\nbegin x := 1; y := x end" in
  let text =
    replace_first
      ~sub:(Cert.program_digest sec52)
      ~by:(Cert.program_digest other)
      (sec52_cert_text ())
  in
  reject_path sec52 text "program"

let test_tamper_binding_forgery () =
  (* Lower a variable the program leaks into: the policy invariant the
     checker derives from the recorded binds no longer holds. *)
  let binding = Binding.make two ~default:"low" [ ("x", "high") ] in
  let leaky = parse_program_exn "var x, y : integer;\nbegin y := 0; x := y end" in
  let cert = emit_exn binding leaky in
  let text =
    replace_first ~sub:"bind: x = high" ~by:"bind: x = low"
      (Cert.to_string cert)
  in
  match Cert.parse text with
  | Error e ->
    Alcotest.failf "forged binding should parse, not %a" Cert.pp_parse_error e
  | Ok forged -> (
    match Checker.check forged leaky with
    | Ok () -> Alcotest.fail "forged binding must be rejected"
    | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Generator/checker agreement on random programs *)

let arb_bound = Qcheck_arbitrary.bound_program ~max_size:14 two

let decide_matches_cert_accept =
  qtest "decision procedure and certificate checker agree"
    arb_bound
    (fun bp ->
      let program = bp.Qcheck_arbitrary.prog in
      let binding = Qcheck_arbitrary.binding_of bp in
      match Invariance.witness binding program.Ast.body with
      | Error _ -> true
      | Ok proof -> (
        let cert = Cert.of_proof ~binding ~program proof in
        match Cert.parse (Cert.to_string cert) with
        | Error _ -> false
        | Ok parsed -> Result.is_ok (Checker.check parsed program)))

let reemission_canonical =
  qtest "re-emission of any provable program is byte-identical"
    arb_bound
    (fun bp ->
      let program = bp.Qcheck_arbitrary.prog in
      let binding = Qcheck_arbitrary.binding_of bp in
      match Invariance.witness binding program.Ast.body with
      | Error _ -> true
      | Ok proof -> (
        let text = Cert.to_string (Cert.of_proof ~binding ~program proof) in
        match Cert.parse text with
        | Error _ -> false
        | Ok parsed -> String.equal text (Cert.to_string parsed)))

(* ------------------------------------------------------------------ *)
(* Coverage: paper programs and the persisted fuzz corpus *)

let emit_and_check name binding program =
  match Invariance.witness binding program.Ast.body with
  | Error _ -> Alcotest.failf "%s: expected provable" name
  | Ok proof -> (
    let cert = Cert.of_proof ~binding ~program proof in
    let text = Cert.to_string cert in
    match Cert.parse text with
    | Error e -> Alcotest.failf "%s: emitted cert must parse: %a" name
        Cert.pp_parse_error e
    | Ok parsed -> (
      match Checker.check parsed program with
      | Ok () ->
        check_string (name ^ ": canonical re-emission") text
          (Cert.to_string parsed)
      | Error (f :: _) ->
        Alcotest.failf "%s: checker rejected: %a" name Checker.pp_failure f
      | Error [] -> Alcotest.failf "%s: rejected with no failures" name))

let test_paper_programs_certify () =
  let provable = ref 0 in
  List.iter
    (fun (name, program) ->
      let binding = Binding.make two ~default:two.Lattice.bottom [] in
      if Result.is_ok (Invariance.witness binding program.Ast.body) then begin
        incr provable;
        emit_and_check name binding program
      end)
    Paper.all;
  check "most paper programs are provable at the all-low binding" true
    (!provable >= 5)

let corpus_dir = Filename.concat "corpus" "fuzz"

let test_corpus_provable_entries_certify () =
  match Corpus.load corpus_dir with
  | Error msg -> Alcotest.failf "corpus load failed: %s" msg
  | Ok entries ->
    let provable =
      List.filter (fun e -> e.Corpus.expected.Corpus.prove) entries
    in
    check "at least one corpus entry is logic-provable" true (provable <> []);
    List.iter
      (fun (e : Corpus.entry) ->
        emit_and_check ("corpus " ^ e.Corpus.name) e.Corpus.binding
          e.Corpus.program)
      provable

let suite =
  ( "cert",
    [
      Alcotest.test_case "round-trip structural" `Quick test_roundtrip_structural;
      Alcotest.test_case "round-trip byte-identical" `Quick
        test_roundtrip_byte_identical;
      Alcotest.test_case "digest of pretty-printed form" `Quick
        test_digest_is_pretty_printed_form;
      Alcotest.test_case "parser: truncations" `Quick test_parser_truncations;
      Alcotest.test_case "parser: byte flips" `Quick test_parser_byte_flips;
      Alcotest.test_case "parser: line surgery" `Quick test_parser_line_surgery;
      Alcotest.test_case "parser: wrong version" `Quick
        test_parser_rejects_wrong_version;
      Alcotest.test_case "tamper: assertion class" `Quick
        test_tamper_assertion_class;
      Alcotest.test_case "tamper: rule swap" `Quick test_tamper_rule_swap;
      Alcotest.test_case "tamper: digest re-point" `Quick
        test_tamper_digest_repoint;
      Alcotest.test_case "tamper: binding forgery" `Quick
        test_tamper_binding_forgery;
      decide_matches_cert_accept;
      reemission_canonical;
      Alcotest.test_case "paper programs emit-and-check" `Quick
        test_paper_programs_certify;
      Alcotest.test_case "corpus provable entries emit-and-check" `Quick
        test_corpus_provable_entries_certify;
    ] )
