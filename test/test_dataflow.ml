(* Tests for the abstract-interpretation dataflow engine: worklist
   solver order-independence, widening termination on adversarial loop
   nests, interval/concrete agreement, guard-lint delegation pinned
   byte-for-byte, infeasible-path pruning cross-checked against the
   executor, dead stores, flow-witness replay, and summary round-trips
   through the store seam. *)

module Ast = Ifc_lang.Ast
module Loc = Ifc_lang.Loc
module Parser = Ifc_lang.Parser
module Pretty = Ifc_lang.Pretty
module Binding = Ifc_core.Binding
module Chain = Ifc_lattice.Chain
module Lattice = Ifc_lattice.Lattice
module Eval = Ifc_exec.Eval
module Explore = Ifc_exec.Explore
module Cfg = Ifc_dataflow.Cfg
module Solver = Ifc_dataflow.Solver
module Interval = Ifc_dataflow.Interval
module Prune = Ifc_dataflow.Prune
module Witness = Ifc_dataflow.Witness
module Dsummary = Ifc_dataflow.Dsummary
module Dflow = Ifc_modsys.Dflow
module Store = Ifc_store.Store
module Sset = Ifc_support.Sset
module Prng = Ifc_support.Prng

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let qtest ?(count = 80) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let two = Lattice.stringify Chain.two

let parse_exn src =
  match Parser.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

(* Generated programs carry dummy spans; span-level assertions need real
   ones. The pretty-print/re-parse round trip is pinned elsewhere, so
   this is semantics-preserving. *)
let with_spans p = parse_exn (Pretty.program_to_string p)

(* ------------------------------------------------------------------ *)
(* Solver *)

module Intervals = Solver.Make (Interval.Dom)

let interval_graph (cfg : Cfg.t) =
  {
    Intervals.node_count = cfg.Cfg.node_count;
    edges =
      List.map
        (fun (e : Cfg.edge) ->
          {
            Intervals.src = e.Cfg.src;
            dst = e.Cfg.dst;
            transfer = Interval.transfer ~volatile:e.Cfg.volatile e.Cfg.action;
          })
        cfg.Cfg.edges;
    entry = [ cfg.Cfg.entry ];
    widen_points = cfg.Cfg.loop_heads;
  }

(* The fixpoint of a monotone problem does not depend on the order the
   worklist is drained in: identity, reversed, and a scrambled priority
   must all land on the same node states. *)
let test_solver_order_independent =
  qtest "solver fixpoint is work-order independent"
    (Qcheck_arbitrary.program ~max_size:25 ())
    (fun p ->
      let g = interval_graph (Cfg.of_program p) in
      let reference, _ = Intervals.solve g ~init:Interval.top_env in
      List.for_all
        (fun order ->
          let states, _ = Intervals.solve ~order g ~init:Interval.top_env in
          Array.for_all2
            (fun a b -> Interval.Dom.equal a b)
            reference states)
        [ (fun n -> -n); (fun n -> (n * 7919) mod 101); (fun _ -> 0) ])

(* Widening keeps adversarial loop nests cheap: a triple nest counting
   to large constants would take ~10^9 visits without it. *)
let test_widening_terminates () =
  let p =
    parse_exn
      {|
var i, j, k, acc : integer;
begin
  i := 0;
  while i < 100000 do begin
    j := 0;
    while j < 100000 do begin
      k := 0;
      while k < 100000 do begin
        acc := acc + i + j + k;
        k := k + 1
      end;
      j := j + 1
    end;
    i := i + 1
  end
end
|}
  in
  let r = Prune.analyze p in
  check "no arm pruned" true (r.Prune.pruned = []);
  check "fixpoint visits bounded by widening" true (r.Prune.visits < 2_000)

let test_widening_terminates_random =
  qtest ~count:60 "interval fixpoint terminates on random programs"
    (Qcheck_arbitrary.program ~max_size:30 ())
    (fun p ->
      let r = Prune.analyze p in
      (* Without widening the triple-nest fixture above would need ~10^9
         transfer applications; any random 30-statement program must
         stabilise in a tiny fraction of that. *)
      r.Prune.visits < 100_000)

(* ------------------------------------------------------------------ *)
(* Interval domain vs the concrete evaluator *)

let rec exprs_of_stmt (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.Skip | Ast.Wait _ | Ast.Signal _ | Ast.Recv _ -> []
  | Ast.Assign (_, e) | Ast.Declassify (_, e, _) | Ast.Send (_, e) -> [ e ]
  | Ast.Store (_, i, e) -> [ i; e ]
  | Ast.If (c, a, b) -> (c :: exprs_of_stmt a) @ exprs_of_stmt b
  | Ast.While (c, b) -> c :: exprs_of_stmt b
  | Ast.Seq ss | Ast.Cobegin ss -> List.concat_map exprs_of_stmt ss

(* Abstract evaluation in a singleton environment contains the concrete
   value: for every expression of a generated program and every store
   mapping its variables to small ints, [Eval.expr] (when it does not
   fault) lands inside [Interval.eval] of the pointwise-singleton
   environment. This is the domain's soundness statement specialised to
   straight-line reads. *)
let test_interval_agrees_with_eval =
  qtest "interval eval contains concrete eval"
    QCheck.(pair (Qcheck_arbitrary.program ~max_size:25 ()) (int_bound 1000))
    (fun (p, salt) ->
      let vars = Sset.elements (Ifc_lang.Vars.all_vars p.Ast.body) in
      let store =
        List.map (fun v -> (v, (Hashtbl.hash (salt, v) mod 15) - 7)) vars
      in
      let arrays =
        List.filter_map
          (function
            | Ast.Arr_decl { name; size; _ } -> Some (name, Array.make size 0)
            | Ast.Var_decl _ | Ast.Sem_decl _ | Ast.Chan_decl _ -> None)
          p.Ast.decls
      in
      let cenv = Eval.env_of_list ~arrays store in
      let aenv =
        List.fold_left
          (fun env (v, n) -> Interval.set v (Interval.singleton n) env)
          Interval.top_env store
      in
      List.for_all
        (fun e ->
          match Eval.expr cenv e with
          | exception Eval.Fault _ -> true
          | n ->
            Interval.contains (Interval.eval ~volatile:Sset.empty aenv e) n)
        (exprs_of_stmt p.Ast.body))

(* ------------------------------------------------------------------ *)
(* Guard-lint delegation: pinned to the lint's historical semantics *)

let test_const_bool_pinned () =
  let parse_guard src =
    match (parse_exn ("var x : integer;\nbegin\n  while " ^ src ^ " do skip\nend")).Ast.body.Ast.node with
    | Ast.Seq [ { Ast.node = Ast.While (g, _); _ } ] | Ast.While (g, _) -> g
    | _ -> Alcotest.fail "guard fixture shape"
  in
  let cb src = Interval.const_bool (parse_guard src) in
  check "true is constant" true (cb "true" = Some true);
  check "1 = 1 folds" true (cb "1 = 1" = Some true);
  check "2 < 1 folds" true (cb "2 < 1" = Some false);
  (* A constant integer guard is truthy but deliberately NOT constant to
     the lint — the historical Guards.eval kept ints and bools apart. *)
  check "bare integer is not a constant guard" true (cb "3" = None);
  check "variable blocks folding" true (cb "x = x" = None);
  check "division by zero blocks folding" true (cb "1 / 0 = 1" = None)

(* ------------------------------------------------------------------ *)
(* Pruning: soundness against the executor, and the seeded fixture *)

let span_contains ~(outer : Loc.span) ~(inner : Loc.span) =
  let leq (a : Loc.pos) (b : Loc.pos) =
    a.Loc.line < b.Loc.line || (a.Loc.line = b.Loc.line && a.Loc.col <= b.Loc.col)
  in
  leq outer.Loc.start inner.Loc.start && leq inner.Loc.stop outer.Loc.stop

(* No execution may step a statement inside a pruned arm: bounded
   exploration from the all-zero store and a seeded store must never
   visit a span a pruned span contains. This is the same cross-check the
   fuzzer's [prune-unsound] class runs on every case. *)
let test_prune_sound_vs_exploration =
  qtest ~count:60 "pruned arms are never visited by exploration"
    QCheck.(pair (Qcheck_arbitrary.program ~max_size:20 ()) (int_bound 1000))
    (fun (p0, seed) ->
      let p = with_spans p0 in
      let r = Prune.analyze p in
      if r.Prune.pruned = [] then true
      else begin
        let ints =
          List.filter_map
            (function
              | Ast.Var_decl { name; _ } -> Some name
              | Ast.Arr_decl _ | Ast.Sem_decl _ | Ast.Chan_decl _ -> None)
            p.Ast.decls
        in
        let rng = Prng.create seed in
        let seeded = List.map (fun v -> (v, Prng.int rng 8)) ints in
        let visited =
          List.concat_map
            (fun s -> s.Explore.visited_spans)
            [
              Explore.explore_program ~max_states:4_000 p;
              Explore.explore_program ~max_states:4_000 ~inputs:seeded p;
            ]
        in
        List.for_all
          (fun (pr : Prune.pruned) ->
            not
              (List.exists
                 (fun inner ->
                   span_contains ~outer:pr.Prune.p_span ~inner)
                 visited))
          r.Prune.pruned
      end)

let prune_race_src =
  {|
var x, y : integer;
begin
  x := 1;
  if x = 0 then
    cobegin y := 1 || y := 2 coend
  else
    skip
end
|}

(* The acceptance fixture: a whole-program false positive the engine
   removes. Unpruned, the cobegin races on y; pruned, the arm is dead,
   the race claim strengthens, and the only finding is the unreachable
   warning. *)
let test_prune_removes_false_positive () =
  let p = parse_exn prune_race_src in
  let pruned_report = Ifc_analysis.Analyze.run p in
  let raw_report = Ifc_analysis.Analyze.run ~dataflow:false p in
  check "unpruned: race reported" true
    (List.exists
       (fun (f : Ifc_analysis.Finding.t) ->
         f.Ifc_analysis.Finding.kind = Ifc_analysis.Finding.Race)
       raw_report.Ifc_analysis.Analyze.findings);
  check "unpruned: race_free claim withdrawn" false
    raw_report.Ifc_analysis.Analyze.claims.Ifc_analysis.Analyze.race_free;
  check "pruned: no race finding" false
    (List.exists
       (fun (f : Ifc_analysis.Finding.t) ->
         f.Ifc_analysis.Finding.kind = Ifc_analysis.Finding.Race)
       pruned_report.Ifc_analysis.Analyze.findings);
  check "pruned: race_free claim holds" true
    pruned_report.Ifc_analysis.Analyze.claims.Ifc_analysis.Analyze.race_free;
  check_int "pruned: one arm" 1
    (List.length pruned_report.Ifc_analysis.Analyze.pruned);
  check "pruned: unreachable warning emitted" true
    (List.exists
       (fun (f : Ifc_analysis.Finding.t) ->
         f.Ifc_analysis.Finding.kind = Ifc_analysis.Finding.Unreachable)
       pruned_report.Ifc_analysis.Analyze.findings);
  (* And the executor agrees the arm is dead. *)
  let s = Explore.explore_program p in
  let pr = List.hd pruned_report.Ifc_analysis.Analyze.pruned in
  check "exploration never enters the arm" false
    (List.exists
       (fun inner -> span_contains ~outer:pr.Prune.p_span ~inner)
       s.Explore.visited_spans)

let test_const_guard_not_double_reported () =
  (* Constant guards stay Guards findings, byte-for-byte; pruning must
     not add a second (unreachable) finding for the same arm. *)
  let p = parse_exn "var y : integer;\nbegin\n  if false then y := 1 else skip\nend" in
  let report = Ifc_analysis.Analyze.run p in
  let kinds =
    List.map
      (fun (f : Ifc_analysis.Finding.t) -> f.Ifc_analysis.Finding.kind)
      report.Ifc_analysis.Analyze.findings
  in
  check "guard finding present" true
    (List.mem Ifc_analysis.Finding.Guard kinds);
  check "no unreachable finding for a constant guard" false
    (List.mem Ifc_analysis.Finding.Unreachable kinds);
  check_int "arm still pruned" 1 (List.length report.Ifc_analysis.Analyze.pruned)

let test_dead_store () =
  let p =
    parse_exn
      "var x, y : integer;\nbegin\n  x := 5;\n  x := y;\n  y := x\nend"
  in
  let r = Prune.analyze p in
  check_int "one dead store" 1 (List.length r.Prune.dead_stores);
  check_string "dead store names x" "x" (fst (List.hd r.Prune.dead_stores));
  let report = Ifc_analysis.Analyze.run p in
  check "dead-store warning emitted" true
    (List.exists
       (fun (f : Ifc_analysis.Finding.t) ->
         f.Ifc_analysis.Finding.kind = Ifc_analysis.Finding.Dead_store)
       report.Ifc_analysis.Analyze.findings)

let test_dead_store_pinned_by_cobegin () =
  (* A variable a sibling branch reads is never a dead store, whatever
     the sequential order suggests. *)
  let p =
    parse_exn
      "var x, y : integer;\nbegin\n  cobegin begin x := 5; x := 2 end || y := x coend\nend"
  in
  let r = Prune.analyze p in
  check "no dead store across cobegin" true (r.Prune.dead_stores = [])

(* ------------------------------------------------------------------ *)
(* Witnesses *)

let leak_binding () =
  Binding.make two ~default:two.Lattice.bottom [ ("x", two.Lattice.top) ]

(* Every emitted witness replays: on any rejected generated program the
   chain explain produces must survive its own step-by-step validation.
   This is the honest half of the [witness-bogus] differential. *)
let test_witness_replays =
  qtest ~count:80 "every emitted witness replays"
    (Qcheck_arbitrary.bound_program ~max_size:20 two)
    (fun bp ->
      let p = with_spans bp.Qcheck_arbitrary.prog in
      let binding = Qcheck_arbitrary.binding_of bp in
      match Witness.explain binding p with
      | None -> true (* accepted: nothing to witness *)
      | Some w -> Witness.replay binding p w)

let test_witness_direct_leak () =
  let p = parse_exn "var x, y : integer;\nbegin\n  y := x\nend" in
  let binding = leak_binding () in
  match Witness.explain binding p with
  | None -> Alcotest.fail "expected a witness for a direct leak"
  | Some w ->
    check "cfm mode" true (w.Witness.w_mode = Witness.Cfm_mode);
    check "source names x" true (List.mem "x" w.Witness.w_source);
    check "sink is the assignment rule" true
      (w.Witness.w_sink_var = Some "y");
    check "replays" true (Witness.replay binding p w)

let test_witness_global_flow () =
  (* The paper's global flow: waiting on a high semaphore then writing
     low. The witness must trace the flow to the wait. *)
  let p =
    parse_exn
      "var y : integer;\n\
      \    s : semaphore initially(0);\n\
       cobegin\n\
      \  begin wait(s); y := 1 end\n\
      \  || signal(s)\n\
       coend"
  in
  let binding =
    Binding.make two ~default:two.Lattice.bottom [ ("s", two.Lattice.top) ]
  in
  match Witness.explain binding p with
  | None -> Alcotest.fail "expected a witness for a global flow"
  | Some w ->
    check "source names the semaphore" true (List.mem "s" w.Witness.w_source);
    check "replays" true (Witness.replay binding p w)

let test_witness_corruption_caught () =
  let p = parse_exn "var x, y : integer;\nbegin\n  y := x\nend" in
  let binding = leak_binding () in
  match Witness.explain binding p with
  | None -> Alcotest.fail "expected a witness"
  | Some w ->
    let shift (pos : Loc.pos) = { pos with Loc.line = pos.Loc.line + 1000 } in
    let bogus =
      {
        w with
        Witness.w_sink_span =
          {
            Loc.start = shift w.Witness.w_sink_span.Loc.start;
            stop = shift w.Witness.w_sink_span.Loc.stop;
          };
      }
    in
    check "shifted sink fails replay" false (Witness.replay binding p bogus);
    let wrong_rule = { w with Witness.w_sink_rule = "no-such-rule" } in
    check "wrong rule fails replay" false (Witness.replay binding p wrong_rule);
    (* A source whose class does not exceed the sink's bound cannot
       explain the rejection. *)
    let wrong_source = { w with Witness.w_source = [ "y" ] } in
    check "low source fails replay" false
      (Witness.replay binding p wrong_source)

(* ------------------------------------------------------------------ *)
(* Summaries *)

let test_dsummary_roundtrip =
  qtest "dataflow facts round-trip through the summary line"
    (Qcheck_arbitrary.program ~max_size:25 ())
    (fun p0 ->
      let p = with_spans p0 in
      let facts = Dsummary.of_program p in
      match Dsummary.parse (Dsummary.render facts) with
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e
      | Ok facts' ->
        facts' = facts
        &&
        (* Re-applying recorded facts reproduces the directly pruned
           program, statement for statement. *)
        let direct = Prune.analyze p in
        let applied = Dsummary.apply p facts' in
        Pretty.program_to_string applied.Prune.program
        = Pretty.program_to_string direct.Prune.program)

let fresh_dir () =
  let path = Filename.temp_file "ifc-dataflow" "" in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun f -> rm_rf (Filename.concat path f))
        (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let linked_src =
  "module helper\n\
   provides (h : class <= high)\n\
   var h : integer class high;\n\
  \    t : integer class low;\n\
   begin\n\
  \  t := 1;\n\
  \  if t = 0 then h := 2 else skip\n\
   end\n\
   end\n\n\
   var z : integer class low;\n\
   begin z := 1; z := 2 end"

let test_dflow_store_reuse () =
  let l =
    match Parser.parse_linked linked_src with
    | Ok l -> l
    | Error e -> Alcotest.failf "parse_linked: %a" Parser.pp_error e
  in
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let store =
        match Store.open_ dir with
        | Ok st -> st
        | Error msg -> Alcotest.failf "store: %s" msg
      in
      let first = Dflow.linked ~store l in
      check_int "first link computes the module" 1 first.Dflow.computed;
      check_int "first link reuses nothing" 0 first.Dflow.reused;
      let second = Dflow.linked ~store l in
      check_int "second link computes nothing" 0 second.Dflow.computed;
      check_int "second link reuses the module" 1 second.Dflow.reused;
      check "facts identical" true (first.Dflow.facts = second.Dflow.facts);
      (* The facts carry the module's dead store and pruned arm, and
         re-apply to the elaboration. *)
      check_int "one pruned arm recorded" 1
        (List.length first.Dflow.facts.Dsummary.d_pruned);
      check "dead store recorded" true
        (List.exists
           (fun (x, _) -> x = "z")
           first.Dflow.facts.Dsummary.d_dead);
      let p = Ifc_modsys.Link.elaborate l in
      let applied = Dsummary.apply p first.Dflow.facts in
      check_int "apply rewrites without re-walking" 0 applied.Prune.visits;
      check "elaboration pruned" true (applied.Prune.pruned <> []))

let suite =
  ( "dataflow",
    [
      test_solver_order_independent;
      Alcotest.test_case "widening terminates adversarial nest" `Quick
        test_widening_terminates;
      test_widening_terminates_random;
      test_interval_agrees_with_eval;
      Alcotest.test_case "const_bool pinned to guard semantics" `Quick
        test_const_bool_pinned;
      test_prune_sound_vs_exploration;
      Alcotest.test_case "pruning removes the seeded false positive" `Quick
        test_prune_removes_false_positive;
      Alcotest.test_case "constant guards are not double-reported" `Quick
        test_const_guard_not_double_reported;
      Alcotest.test_case "dead store reported" `Quick test_dead_store;
      Alcotest.test_case "cobegin pins stores live" `Quick
        test_dead_store_pinned_by_cobegin;
      test_witness_replays;
      Alcotest.test_case "witness for a direct leak" `Quick
        test_witness_direct_leak;
      Alcotest.test_case "witness traces a global flow" `Quick
        test_witness_global_flow;
      Alcotest.test_case "corrupted witnesses fail replay" `Quick
        test_witness_corruption_caught;
      test_dsummary_roundtrip;
      Alcotest.test_case "summary reuse through the store" `Quick
        test_dflow_store_reuse;
    ] )
