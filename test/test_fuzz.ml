(* Tests for the differential fuzzing subsystem: the disagreement
   taxonomy, shrinker invariants, the persisted corpus (replay and
   round-trip), the planted-inversion hook end-to-end, and worker-count
   determinism of whole campaigns. *)

module Ast = Ifc_lang.Ast
module Gen = Ifc_lang.Gen
module Metrics = Ifc_lang.Metrics
module Parser = Ifc_lang.Parser
module Wellformed = Ifc_lang.Wellformed
module Binding = Ifc_core.Binding
module Chain = Ifc_lattice.Chain
module Lattice = Ifc_lattice.Lattice
module Classify = Ifc_fuzz.Classify
module Oracle = Ifc_fuzz.Oracle
module Shrink = Ifc_fuzz.Shrink
module Corpus = Ifc_fuzz.Corpus
module Campaign = Ifc_fuzz.Campaign

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let qtest ?(count = 50) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let two = Lattice.stringify Chain.two

let parse_program_exn src =
  match Parser.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* A scratch directory the corpus writer will create. *)
let fresh_dir () =
  let path = Filename.temp_file "ifc-fuzz" "" in
  Sys.remove path;
  path

(* ------------------------------------------------------------------ *)
(* Taxonomy *)

let v ~cfm ~denning ~fs ~prove ?(cert_ok = true) ?(viol = 0)
    ?(lint_race_free = true) ?(lint_deadlock_free = true)
    ?(lint_must_block = false) ?(lint_chan_race_free = true)
    ?(lint_chan_deadlock_free = true) ?(lint_findings = 0) ?(dyn_race = false)
    ?(dyn_deadlock = false) ?(dyn_terminal = true) ?(dyn_complete = true)
    ?(dyn_chan_race = false) ?(dyn_chan_deadlock = false)
    ?(store_divergent = false) ?(prune_spans = 0) ?(prune_violated = false)
    ?(witness_checked = false) ?(witness_ok = true) ?(refine_checked = false)
    ?(refine_claimed_safe = false) ?(refine_dyn_leak = false) () =
  {
    Classify.cfm;
    denning;
    fs;
    prove;
    cert_ok;
    ni_tested = 8;
    ni_skipped = 0;
    ni_violations = viol;
    lint_race_free;
    lint_deadlock_free;
    lint_must_block;
    lint_chan_race_free;
    lint_chan_deadlock_free;
    lint_findings;
    dyn_race;
    dyn_deadlock;
    dyn_terminal;
    dyn_complete;
    dyn_chan_race;
    dyn_chan_deadlock;
    store_divergent;
    prune_spans;
    prune_violated;
    witness_checked;
    witness_ok;
    refine_checked;
    refine_claimed_safe;
    refine_dyn_leak;
  }

let primary_of vv = Classify.primary vv (Classify.classify vv)

let test_classify_table () =
  check_string "healthy certified" "certified-agreement"
    (primary_of (v ~cfm:true ~denning:true ~fs:true ~prove:true ()));
  check_string "unsound certification outranks all" "unsound-certification"
    (primary_of (v ~cfm:true ~denning:true ~fs:true ~prove:true ~viol:1 ()));
  check_string "logic mismatch (prove without cfm)" "logic-mismatch"
    (primary_of (v ~cfm:false ~denning:false ~fs:false ~prove:true ()));
  check_string "logic mismatch (cfm without prove)" "logic-mismatch"
    (primary_of (v ~cfm:true ~denning:true ~fs:true ~prove:false ()));
  check_string "cert round-trip break is an inversion" "cert-inversion"
    (primary_of (v ~cfm:true ~denning:true ~fs:true ~prove:true ~cert_ok:false ()));
  check_string "stale store verdict is an inversion" "store-stale"
    (primary_of
       (v ~cfm:true ~denning:true ~fs:true ~prove:true ~store_divergent:true ()));
  check_string "cert inversion outranks store-stale" "cert-inversion"
    (primary_of
       (v ~cfm:true ~denning:true ~fs:true ~prove:true ~cert_ok:false
          ~store_divergent:true ()));
  check_string "store-stale outranks hierarchy labels" "store-stale"
    (primary_of
       (v ~cfm:true ~denning:false ~fs:true ~prove:true ~store_divergent:true ()));
  check_string "cert verdict is vacuous without a proof" "unconfirmed-rejection"
    (primary_of
       (v ~cfm:false ~denning:false ~fs:false ~prove:false ~cert_ok:true ()));
  check_string "logic mismatch outranks cert inversion" "logic-mismatch"
    (primary_of (v ~cfm:false ~denning:false ~fs:false ~prove:true ~cert_ok:false ()));
  check_string "cfm above denning is an inversion" "hierarchy-denning"
    (primary_of (v ~cfm:true ~denning:false ~fs:true ~prove:true ()));
  check_string "cfm above flow-sensitive is an inversion" "hierarchy-fs"
    (primary_of (v ~cfm:true ~denning:true ~fs:false ~prove:true ()));
  check_string "denning gap" "denning-gap"
    (primary_of (v ~cfm:false ~denning:true ~fs:false ~prove:false ~viol:1 ()));
  check_string "fs gap" "fs-gap"
    (primary_of (v ~cfm:false ~denning:false ~fs:true ~prove:false ()));
  check_string "confirmed rejection" "confirmed-rejection"
    (primary_of (v ~cfm:false ~denning:false ~fs:false ~prove:false ~viol:2 ()));
  check_string "unconfirmed rejection" "unconfirmed-rejection"
    (primary_of (v ~cfm:false ~denning:false ~fs:false ~prove:false ()));
  check_string "claimed race-free but a race was witnessed" "race-unsound"
    (primary_of
       (v ~cfm:false ~denning:false ~fs:false ~prove:false ~dyn_race:true ()));
  check_string "claimed deadlock-free but a deadlock was reached"
    "deadlock-unsound"
    (primary_of
       (v ~cfm:false ~denning:false ~fs:false ~prove:false ~dyn_deadlock:true ()));
  check_string "claimed must-block but a run terminated" "deadlock-unsound"
    (primary_of
       (v ~cfm:false ~denning:false ~fs:false ~prove:false ~lint_must_block:true
          ~lint_deadlock_free:false ()));
  check_string "no inversion when the analyzer already warned"
    "unconfirmed-rejection"
    (primary_of
       (v ~cfm:false ~denning:false ~fs:false ~prove:false
          ~lint_race_free:false ~lint_findings:1 ~dyn_race:true ()));
  check_string "a reached deadlock is fine when not claimed free"
    "unconfirmed-rejection"
    (primary_of
       (v ~cfm:false ~denning:false ~fs:false ~prove:false
          ~lint_deadlock_free:false ~dyn_deadlock:true ~dyn_terminal:false ()));
  check_string "cert inversion outranks race-unsound" "cert-inversion"
    (primary_of
       (v ~cfm:true ~denning:true ~fs:true ~prove:true ~cert_ok:false
          ~dyn_race:true ()));
  check_string "claimed chan-race-free but contention was witnessed"
    "chan-race-unsound"
    (primary_of
       (v ~cfm:false ~denning:false ~fs:false ~prove:false ~dyn_chan_race:true ()));
  check_string "claimed chan-deadlock-free but a blocked channel was reached"
    "chan-deadlock-unsound"
    (primary_of
       (v ~cfm:false ~denning:false ~fs:false ~prove:false
          ~dyn_chan_deadlock:true ()));
  check_string "no chan inversion when the channel lint already warned"
    "unconfirmed-rejection"
    (primary_of
       (v ~cfm:false ~denning:false ~fs:false ~prove:false
          ~lint_chan_deadlock_free:false ~lint_findings:1 ~dyn_chan_deadlock:true
          ()));
  check_string "chan-deadlock-unsound outranks generic deadlock-unsound"
    "chan-deadlock-unsound"
    (primary_of
       (v ~cfm:false ~denning:false ~fs:false ~prove:false
          ~dyn_chan_deadlock:true ~dyn_deadlock:true ()));
  check_string "refuted refinement claim is an inversion" "refine-unsound"
    (primary_of
       (v ~cfm:false ~denning:false ~fs:false ~prove:false ~refine_checked:true
          ~refine_claimed_safe:true ~refine_dyn_leak:true ()));
  check_string "refine-unsound outranks the hierarchy labels" "refine-unsound"
    (primary_of
       (v ~cfm:true ~denning:false ~fs:true ~prove:true ~refine_checked:true
          ~refine_claimed_safe:true ~refine_dyn_leak:true ()));
  check_string "accepted refinement without a leak is benign" "refine-accepted"
    (primary_of
       (v ~cfm:false ~denning:false ~fs:false ~prove:false ~refine_checked:true
          ~refine_claimed_safe:true ()));
  check_string "rejected refinement is benign" "refine-rejected"
    (primary_of
       (v ~cfm:false ~denning:false ~fs:false ~prove:false ~refine_checked:true
          ()));
  check_string "a leak under a rejected claim is no inversion" "refine-rejected"
    (primary_of
       (v ~cfm:false ~denning:false ~fs:false ~prove:false ~refine_checked:true
          ~refine_dyn_leak:true ()))

let test_classify_labels_total () =
  (* Every primary label the classifier can emit is in the canonical
     report order. *)
  List.iter
    (fun (cfm, denning, fs, prove, cert_ok, viol) ->
      let vv = v ~cfm ~denning ~fs ~prove ~cert_ok ~viol () in
      check
        (Printf.sprintf "label of (%b,%b,%b,%b,%b,%d) is canonical" cfm denning
           fs prove cert_ok viol)
        true
        (List.mem (primary_of vv) Classify.class_labels))
    (List.concat_map
       (fun viol ->
         List.concat_map
           (fun bits ->
             [
               ( bits land 16 <> 0,
                 bits land 8 <> 0,
                 bits land 4 <> 0,
                 bits land 2 <> 0,
                 bits land 1 <> 0,
                 viol );
             ])
           (List.init 32 Fun.id))
       [ 0; 1 ])

(* ------------------------------------------------------------------ *)
(* Oracle sanity on the paper's shapes *)

let test_oracle_sec52_is_fs_gap () =
  let p = parse_program_exn "var x, y : integer; begin x := 0; y := x end" in
  let binding = Binding.make two ~default:"low" [ ("x", "high") ] in
  let vv = Oracle.run ~ni_seed:1 ~ni_pairs:4 ~max_states:2_000 binding p in
  check_string "sec52 classifies as fs-gap" "fs-gap" (primary_of vv)

let test_oracle_direct_leak_confirmed () =
  let p = parse_program_exn "var x, y : integer; y := x" in
  let binding = Binding.make two ~default:"low" [ ("x", "high") ] in
  let vv = Oracle.run ~ni_seed:1 ~ni_pairs:4 ~max_states:2_000 binding p in
  check_string "direct leak is a confirmed rejection" "confirmed-rejection"
    (primary_of vv);
  let forced = Oracle.run ~override_cfm:true ~ni_seed:1 ~ni_pairs:4
      ~max_states:2_000 binding p
  in
  check_string "forcing cfm turns it into an unsound certification"
    "unsound-certification" (primary_of forced)

(* ------------------------------------------------------------------ *)
(* Shrinker invariants *)

let arb_program = Qcheck_arbitrary.program ~max_size:20 ()

let shrink_candidates_invariant =
  qtest "shrink candidates stay valid and never grow" arb_program (fun p ->
      let size = Metrics.length p in
      Seq.for_all
        (fun c -> Wellformed.is_valid c && Metrics.length c <= size)
        (Seq.take 150 (Gen.shrink_program p)))

let minimize_bounded =
  qtest "minimize terminates within measure steps and budget" arb_program
    (fun p ->
      let budget = 200 in
      let q, stats = Shrink.minimize ~budget ~keep:Wellformed.is_valid p in
      Wellformed.is_valid q
      && Metrics.length q <= Metrics.length p
      && stats.Shrink.steps <= Metrics.length p
      && stats.Shrink.evals <= budget)

let minimize_preserves_predicate =
  qtest "minimize preserves a non-trivial predicate" arb_program (fun p ->
      let keep q = (Metrics.of_program q).Metrics.assignments >= 1 in
      if not (keep p) then true
      else begin
        let q, _ = Shrink.minimize ~keep p in
        keep q && Wellformed.is_valid q
      end)

(* ------------------------------------------------------------------ *)
(* Corpus *)

let corpus_dir = Filename.concat "corpus" "fuzz"

let test_corpus_replay () =
  match Corpus.load corpus_dir with
  | Error msg -> Alcotest.failf "corpus load failed: %s" msg
  | Ok entries ->
    check "seeded entries present" true (List.length entries >= 2);
    check "sec52 seeded" true
      (List.exists (fun e -> e.Corpus.name = "sec52") entries);
    check "fig3-sync seeded" true
      (List.exists (fun e -> e.Corpus.name = "fig3-sync") entries);
    check "deadlock seeded" true
      (List.exists (fun e -> e.Corpus.name = "deadlock") entries);
    check "handshake-leak seeded" true
      (List.exists (fun e -> e.Corpus.name = "handshake-leak") entries);
    check "chan-prodcons seeded" true
      (List.exists (fun e -> e.Corpus.name = "chan-prodcons") entries);
    check "chan-leak seeded" true
      (List.exists (fun e -> e.Corpus.name = "chan-leak") entries);
    check "chan-deadlock seeded" true
      (List.exists (fun e -> e.Corpus.name = "chan-deadlock") entries);
    check "certified-lib seeded (linked syntax)" true
      (List.exists (fun e -> e.Corpus.name = "certified-lib") entries);
    check "refined-ok seeded (linked syntax)" true
      (List.exists (fun e -> e.Corpus.name = "refined-ok") entries);
    check "refined-leak seeded (linked syntax)" true
      (List.exists (fun e -> e.Corpus.name = "refined-leak") entries);
    check "prune-race seeded (dataflow pruning)" true
      (List.exists (fun e -> e.Corpus.name = "prune-race") entries);
    List.iter
      (fun (e : Corpus.entry) ->
        let name = e.Corpus.name in
        let exp = e.Corpus.expected in
        check (name ^ ": well-formed") true (Wellformed.is_valid e.Corpus.program);
        check (name ^ ": class label canonical") true
          (List.mem exp.Corpus.cls Classify.class_labels);
        check_int
          (name ^ ": statement count matches")
          exp.Corpus.statements
          (Metrics.of_program e.Corpus.program).Metrics.statements;
        let vv = Corpus.replay_verdicts e.Corpus.binding e.Corpus.program in
        check (name ^ ": cfm") true (Bool.equal exp.Corpus.cfm vv.Classify.cfm);
        check (name ^ ": denning") true
          (Bool.equal exp.Corpus.denning vv.Classify.denning);
        check (name ^ ": fs") true (Bool.equal exp.Corpus.fs vv.Classify.fs);
        check (name ^ ": prove") true
          (Bool.equal exp.Corpus.prove vv.Classify.prove);
        check (name ^ ": cert") true
          (Bool.equal exp.Corpus.cert vv.Classify.cert_ok);
        check (name ^ ": interfering") true
          (Bool.equal exp.Corpus.interfering (vv.Classify.ni_violations > 0));
        check (name ^ ": race_free") true
          (Bool.equal exp.Corpus.race_free vv.Classify.lint_race_free);
        check (name ^ ": deadlock_free") true
          (Bool.equal exp.Corpus.deadlock_free vv.Classify.lint_deadlock_free);
        check (name ^ ": must_block") true
          (Bool.equal exp.Corpus.must_block vv.Classify.lint_must_block);
        check (name ^ ": chan_race_free") true
          (Bool.equal exp.Corpus.chan_race_free vv.Classify.lint_chan_race_free);
        check (name ^ ": chan_deadlock_free") true
          (Bool.equal exp.Corpus.chan_deadlock_free
             vv.Classify.lint_chan_deadlock_free);
        check_int (name ^ ": lint_findings") exp.Corpus.lint_findings
          vv.Classify.lint_findings;
        check_int (name ^ ": pruned") exp.Corpus.pruned
          vv.Classify.prune_spans;
        check (name ^ ": prune refuted by exploration") false
          vv.Classify.prune_violated;
        check (name ^ ": witness_ok") true
          (Bool.equal exp.Corpus.witness_ok vv.Classify.witness_ok))
      (entries : Corpus.entry list)

let test_corpus_roundtrip () =
  let dir = fresh_dir () in
  let program = parse_program_exn "var x, y : integer; y := x" in
  let binding = Binding.make two ~default:"low" [ ("x", "high") ] in
  let vv = Corpus.replay_verdicts binding program in
  let expected =
    Corpus.expected_of_verdicts ~cls:"confirmed-rejection" program vv
  in
  let path =
    Corpus.write ~dir ~name:"direct-leak" ~lattice_name:"two" ~binding
      ~expected ~note:"round-trip fixture" program
  in
  check "program file written" true (Sys.file_exists path);
  match Corpus.load dir with
  | Error msg -> Alcotest.failf "reload failed: %s" msg
  | Ok [ e ] ->
    check "program round-trips" true (Ast.equal_program program e.Corpus.program);
    check_string "class kept" "confirmed-rejection" e.Corpus.expected.Corpus.cls;
    check_string "lattice kept" "two" e.Corpus.lattice_name;
    check "note kept" true (e.Corpus.note = Some "round-trip fixture");
    check "interference recorded" true e.Corpus.expected.Corpus.interfering;
    check_string "binding kept" "high" (Binding.sbind e.Corpus.binding "x")
  | Ok entries -> Alcotest.failf "expected 1 entry, got %d" (List.length entries)

let test_corpus_missing_dir_is_empty () =
  match Corpus.load (Filename.concat (fresh_dir ()) "nowhere") with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "phantom entries"
  | Error msg -> Alcotest.failf "missing dir should be empty, got: %s" msg

let test_corpus_rejects_orphan_program () =
  let dir = fresh_dir () in
  let program = parse_program_exn "var x : integer; x := 1" in
  let binding = Binding.make two ~default:"low" [] in
  let vv = Corpus.replay_verdicts binding program in
  let expected =
    Corpus.expected_of_verdicts ~cls:"certified-agreement" program vv
  in
  let path =
    Corpus.write ~dir ~name:"orphan" ~lattice_name:"two" ~binding ~expected
      program
  in
  Sys.remove (Filename.chop_suffix path ".ifc" ^ ".expect");
  match Corpus.load dir with
  | Error msg ->
    check "missing sidecar reported" true (contains_substring msg "missing sidecar")
  | Ok _ -> Alcotest.fail "orphan .ifc must not load"

(* ------------------------------------------------------------------ *)
(* Campaigns *)

let test_planted_inversion_end_to_end () =
  let dir = fresh_dir () in
  let config =
    {
      Campaign.default with
      Campaign.cases = 0;
      jobs = 1;
      plant_inversion = true;
      corpus_dir = Some dir;
    }
  in
  let s = Campaign.run config in
  check_int "one case ran" 1 s.Campaign.completed;
  check_int "one inversion case" 1 s.Campaign.inversion_cases;
  check_int "exit code flags the inversion" 2 (Campaign.exit_code s);
  match s.Campaign.counterexamples with
  | [ c ] ->
    check "shrunk within the acceptance bound" true
      (c.Campaign.shrunk_statements <= 6);
    check_int "in fact fully minimal" 1 c.Campaign.shrunk_statements;
    check_string "classified as unsound certification" "unsound-certification"
      c.Campaign.label;
    check "persisted to the corpus" true (c.Campaign.corpus_path <> None);
    (match Corpus.load dir with
    | Ok [ e ] ->
      (* The sidecar records HONEST verdicts: replaying against the real
         (healthy) analyzers validates. *)
      let vv = Corpus.replay_verdicts e.Corpus.binding e.Corpus.program in
      check "honest cfm rejects the persisted program" true
        (Bool.equal e.Corpus.expected.Corpus.cfm vv.Classify.cfm);
      check "cfm verdict is a rejection" false vv.Classify.cfm;
      check "interference preserved by shrinking" true
        (vv.Classify.ni_violations > 0)
    | Ok entries ->
      Alcotest.failf "expected 1 corpus entry, got %d" (List.length entries)
    | Error msg -> Alcotest.failf "corpus reload failed: %s" msg)
  | cs -> Alcotest.failf "expected exactly one counterexample, got %d" (List.length cs)

let test_planted_cert_inversion_end_to_end () =
  let dir = fresh_dir () in
  let config =
    {
      Campaign.default with
      Campaign.cases = 0;
      jobs = 1;
      plant_cert_inversion = true;
      corpus_dir = Some dir;
    }
  in
  let s = Campaign.run config in
  check_int "one case ran" 1 s.Campaign.completed;
  check_int "one inversion case" 1 s.Campaign.inversion_cases;
  check_int "exit code flags the inversion" 2 (Campaign.exit_code s);
  match s.Campaign.counterexamples with
  | [ c ] ->
    check_string "classified as cert inversion" "cert-inversion"
      c.Campaign.label;
    check "shrunk below the planted padding" true
      (c.Campaign.shrunk_statements < c.Campaign.original_statements);
    check "persisted to the corpus" true (c.Campaign.corpus_path <> None);
    (match Corpus.load dir with
    | Ok [ e ] ->
      check "corpus name carries the label" true
        (contains_substring e.Corpus.name "cert-inversion");
      (* The sidecar records HONEST verdicts: the real certificate
         pipeline round-trips the shrunk program cleanly. *)
      let vv = Corpus.replay_verdicts e.Corpus.binding e.Corpus.program in
      check "shrunk program stays provable" true vv.Classify.prove;
      check "honest cert round-trip accepts" true vv.Classify.cert_ok;
      check "sidecar recorded the honest cert verdict" true
        e.Corpus.expected.Corpus.cert
    | Ok entries ->
      Alcotest.failf "expected 1 corpus entry, got %d" (List.length entries)
    | Error msg -> Alcotest.failf "corpus reload failed: %s" msg)
  | cs ->
    Alcotest.failf "expected exactly one counterexample, got %d" (List.length cs)

let test_planted_lint_unsound_end_to_end () =
  let dir = fresh_dir () in
  let config =
    {
      Campaign.default with
      Campaign.cases = 0;
      jobs = 1;
      plant_lint_unsound = true;
      corpus_dir = Some dir;
    }
  in
  let s = Campaign.run config in
  check_int "one case ran" 1 s.Campaign.completed;
  check_int "one inversion case" 1 s.Campaign.inversion_cases;
  check_int "exit code flags the inversion" 2 (Campaign.exit_code s);
  match s.Campaign.counterexamples with
  | [ c ] ->
    check_string "classified as deadlock-unsound" "deadlock-unsound"
      c.Campaign.label;
    (* The planted program blocks on an unsignalled semaphore; the lying
       analyzer claims it safe and dynamic exploration refutes it. The
       shrinker keeps the refutation alive down to the bare wait. *)
    check "shrunk below the planted padding" true
      (c.Campaign.shrunk_statements < c.Campaign.original_statements);
    check "persisted to the corpus" true (c.Campaign.corpus_path <> None);
    (match Corpus.load dir with
    | Ok [ e ] ->
      check "corpus name carries the label" true
        (contains_substring e.Corpus.name "deadlock-unsound");
      (* The sidecar records HONEST verdicts: the real analyzer reports
         the deadlock the planted override hid. *)
      check "honest analyzer sees the block" false
        e.Corpus.expected.Corpus.deadlock_free;
      check "honest analyzer has findings" true
        (e.Corpus.expected.Corpus.lint_findings > 0);
      let vv = Corpus.replay_verdicts e.Corpus.binding e.Corpus.program in
      check "replay agrees" true
        (Bool.equal e.Corpus.expected.Corpus.deadlock_free
           vv.Classify.lint_deadlock_free)
    | Ok entries ->
      Alcotest.failf "expected 1 corpus entry, got %d" (List.length entries)
    | Error msg -> Alcotest.failf "corpus reload failed: %s" msg)
  | cs ->
    Alcotest.failf "expected exactly one counterexample, got %d" (List.length cs)

let test_planted_chan_unsound_end_to_end () =
  let dir = fresh_dir () in
  let config =
    {
      Campaign.default with
      Campaign.cases = 0;
      jobs = 1;
      plant_chan_unsound = true;
      corpus_dir = Some dir;
    }
  in
  let s = Campaign.run config in
  check_int "one case ran" 1 s.Campaign.completed;
  check_int "one inversion case" 1 s.Campaign.inversion_cases;
  check_int "exit code flags the inversion" 2 (Campaign.exit_code s);
  match s.Campaign.counterexamples with
  | [ c ] ->
    (* The channel-specific label outranks the generic deadlock-unsound
       label the same witness also triggers. *)
    check_string "classified as chan-deadlock-unsound" "chan-deadlock-unsound"
      c.Campaign.label;
    (* The planted program blocks on a recv nobody feeds; the lying
       analyzer claims it safe and dynamic exploration refutes it with a
       blocked channel at the stuck state. The shrinker keeps that
       refutation alive down to the bare recv. *)
    check "shrunk below the planted padding" true
      (c.Campaign.shrunk_statements < c.Campaign.original_statements);
    check_int "in fact fully minimal" 1 c.Campaign.shrunk_statements;
    check "persisted to the corpus" true (c.Campaign.corpus_path <> None);
    (match Corpus.load dir with
    | Ok [ e ] ->
      check "corpus name carries the label" true
        (contains_substring e.Corpus.name "chan-deadlock-unsound");
      (* The sidecar records HONEST verdicts: the real channel lint
         reports the starved recv the planted override hid. *)
      check "honest analyzer sees the blocked channel" false
        e.Corpus.expected.Corpus.chan_deadlock_free;
      check "honest analyzer has findings" true
        (e.Corpus.expected.Corpus.lint_findings > 0);
      let vv = Corpus.replay_verdicts e.Corpus.binding e.Corpus.program in
      check "replay agrees" true
        (Bool.equal e.Corpus.expected.Corpus.chan_deadlock_free
           vv.Classify.lint_chan_deadlock_free);
      check "replay witnesses the blocked channel" true
        vv.Classify.dyn_chan_deadlock
    | Ok entries ->
      Alcotest.failf "expected 1 corpus entry, got %d" (List.length entries)
    | Error msg -> Alcotest.failf "corpus reload failed: %s" msg)
  | cs ->
    Alcotest.failf "expected exactly one counterexample, got %d" (List.length cs)

let test_planted_refine_unsound_end_to_end () =
  let dir = fresh_dir () in
  let config =
    {
      Campaign.default with
      Campaign.cases = 0;
      jobs = 1;
      plant_refine_unsound = true;
      corpus_dir = Some dir;
    }
  in
  let s = Campaign.run config in
  check_int "one case ran" 1 s.Campaign.completed;
  check_int "one inversion case" 1 s.Campaign.inversion_cases;
  check_int "exit code flags the inversion" 2 (Campaign.exit_code s);
  match s.Campaign.counterexamples with
  | [ c ] ->
    check_string "classified as refine-unsound" "refine-unsound"
      c.Campaign.label;
    (* The planted replacement pipes the link-wide secret into the low
       export; the honest refinement check rejects it, the forced claim
       says "accepted", and the executor refutes the claim on the swapped
       unit. Shrinking keeps the refutation alive while minimizing every
       module body around the leaking assignment. *)
    check "displayed counterexample is the swapped elaboration" true
      (contains_substring
         (Fmt.str "%a" Ifc_lang.Pretty.pp_stmt c.Campaign.program.Ast.body)
         "out := secret");
    check "persisted to the corpus" true (c.Campaign.corpus_path <> None);
    (match Corpus.load dir with
    | Ok [ e ] ->
      check "corpus name carries the label" true
        (contains_substring e.Corpus.name "refine-unsound");
      check "persisted in linked syntax" true
        (Parser.looks_linked
           (In_channel.with_open_bin
              (Option.get c.Campaign.corpus_path)
              In_channel.input_all));
      (* The sidecar records HONEST verdicts on the swapped unit's
         elaboration: CFM rejects it and the oracle confirms the leak. *)
      check "honest cfm rejects the swapped unit" false
        e.Corpus.expected.Corpus.cfm;
      check "leak recorded" true e.Corpus.expected.Corpus.interfering;
      let vv = Corpus.replay_verdicts e.Corpus.binding e.Corpus.program in
      check "replay agrees on the rejection" false vv.Classify.cfm;
      check "replay witnesses the leak" true (vv.Classify.ni_violations > 0)
    | Ok entries ->
      Alcotest.failf "expected 1 corpus entry, got %d" (List.length entries)
    | Error msg -> Alcotest.failf "corpus reload failed: %s" msg)
  | cs ->
    Alcotest.failf "expected exactly one counterexample, got %d" (List.length cs)

let test_refine_cases_clean () =
  let s =
    Campaign.run
      {
        Campaign.default with
        Campaign.cases = 0;
        Campaign.refine_cases = 16;
        seed = 3;
        jobs = 2;
        ni_pairs = 3;
        max_states = 2_000;
      }
  in
  (* The honest refinement checker is sound: no generated replacement may
     be both claimed safe and refuted by the executor. *)
  check_int "no inversions on a healthy toolchain" 0 s.Campaign.inversion_cases;
  check_int "no errors" 0 s.Campaign.errors;
  check_int "every refine case completed" 16 s.Campaign.completed;
  let count label =
    Option.value ~default:0 (List.assoc_opt label s.Campaign.class_counts)
  in
  check_int "every case lands on a refine label" 16
    (count "refine-accepted" + count "refine-rejected");
  check "both refinement outcomes are exercised" true
    (count "refine-accepted" > 0 && count "refine-rejected" > 0)

let test_campaign_worker_count_determinism () =
  let config jobs =
    {
      Campaign.default with
      Campaign.cases = 24;
      seed = 5;
      jobs;
      ni_pairs = 3;
      max_states = 2_000;
    }
  in
  let a = Campaign.run (config 1) in
  let b = Campaign.run (config 3) in
  check_string "summary json identical across worker counts"
    (Campaign.summary_json a) (Campaign.summary_json b);
  check_string "report identical across worker counts"
    (Fmt.str "%a" Campaign.pp_summary a)
    (Fmt.str "%a" Campaign.pp_summary b)

let test_campaign_healthy_run_is_clean () =
  let s =
    Campaign.run
      {
        Campaign.default with
        Campaign.cases = 24;
        seed = 11;
        jobs = 2;
        ni_pairs = 3;
        max_states = 2_000;
      }
  in
  check_int "no inversions on a healthy toolchain" 0 s.Campaign.inversion_cases;
  check_int "no errors" 0 s.Campaign.errors;
  check_int "clean exit" 0 (Campaign.exit_code s);
  check_int "every case completed" 24 s.Campaign.completed;
  check_int "class counts cover all cases" 24
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Campaign.class_counts)

let test_planted_store_stale_end_to_end () =
  let store = fresh_dir () in
  let config =
    {
      Campaign.default with
      Campaign.cases = 0;
      jobs = 1;
      plant_store_stale = true;
      store_dir = Some store;
    }
  in
  let s = Campaign.run config in
  check_int "one case ran" 1 s.Campaign.completed;
  check_int "one inversion case" 1 s.Campaign.inversion_cases;
  check_int "exit code flags the inversion" 2 (Campaign.exit_code s);
  match s.Campaign.counterexamples with
  | [ c ] ->
    check_string "classified as store-stale" "store-stale" c.Campaign.label;
    (* Shrink candidates miss in the store, so the counterexample stays
       the planted program — exactly the artifact that diverged. *)
    check_int "not shrunk past the stored artifact"
      c.Campaign.original_statements c.Campaign.shrunk_statements
  | cs ->
    Alcotest.failf "expected exactly one counterexample, got %d" (List.length cs)

let test_store_replay_round_trip () =
  let store = fresh_dir () in
  let config =
    {
      Campaign.default with
      Campaign.cases = 12;
      jobs = 2;
      store_dir = Some store;
    }
  in
  (* Pass 1 populates the store with honest verdicts; pass 2 replays
     every case against them. A healthy store diverges nowhere and the
     reports are byte-identical. *)
  let first = Campaign.run config in
  let second = Campaign.run config in
  check_int "first pass finds no inversions" 0 first.Campaign.inversion_cases;
  check_int "replay finds no store-stale" 0 second.Campaign.inversion_cases;
  check_string "summaries byte-identical across replay"
    (Campaign.summary_json first)
    (Campaign.summary_json second)

let suite =
  ( "fuzz",
    [
      Alcotest.test_case "classify table" `Quick test_classify_table;
      Alcotest.test_case "classify labels total" `Quick test_classify_labels_total;
      Alcotest.test_case "oracle sec52 fs-gap" `Quick test_oracle_sec52_is_fs_gap;
      Alcotest.test_case "oracle direct leak" `Quick test_oracle_direct_leak_confirmed;
      shrink_candidates_invariant;
      minimize_bounded;
      minimize_preserves_predicate;
      Alcotest.test_case "corpus replay" `Quick test_corpus_replay;
      Alcotest.test_case "corpus round-trip" `Quick test_corpus_roundtrip;
      Alcotest.test_case "corpus missing dir" `Quick test_corpus_missing_dir_is_empty;
      Alcotest.test_case "corpus orphan program" `Quick test_corpus_rejects_orphan_program;
      Alcotest.test_case "planted inversion end-to-end" `Quick
        test_planted_inversion_end_to_end;
      Alcotest.test_case "planted cert inversion end-to-end" `Quick
        test_planted_cert_inversion_end_to_end;
      Alcotest.test_case "planted lint-unsound end-to-end" `Quick
        test_planted_lint_unsound_end_to_end;
      Alcotest.test_case "planted chan-unsound end-to-end" `Quick
        test_planted_chan_unsound_end_to_end;
      Alcotest.test_case "planted store-stale end-to-end" `Quick
        test_planted_store_stale_end_to_end;
      Alcotest.test_case "planted refine-unsound end-to-end" `Quick
        test_planted_refine_unsound_end_to_end;
      Alcotest.test_case "refine cases clean" `Quick test_refine_cases_clean;
      Alcotest.test_case "store replay round-trip" `Quick
        test_store_replay_round_trip;
      Alcotest.test_case "worker-count determinism" `Quick
        test_campaign_worker_count_determinism;
      Alcotest.test_case "healthy campaign clean" `Quick
        test_campaign_healthy_run_is_clean;
    ] )
