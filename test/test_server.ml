(* Tests for the certification daemon: the JSON parser it trusts with
   socket input, the wire protocol, the latency histogram and JSONL sink
   hygiene it reports through, and — over real sockets — the service
   guarantees: concurrent clients see sequential verdicts, deadlines
   time out without collateral damage, malformed and oversized requests
   never kill a connection, limits answer [overloaded], SIGTERM drains,
   and the shared cache warms to a 100% hit rate. *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Ast = Ifc_lang.Ast
module Gen = Ifc_lang.Gen
module Parser = Ifc_lang.Parser
module Vars = Ifc_lang.Vars
module Prng = Ifc_support.Prng
module Sset = Ifc_support.Sset
module Binding = Ifc_core.Binding
module Job = Ifc_pipeline.Job
module J = Ifc_pipeline.Telemetry
module Jsonx = Ifc_server.Jsonx
module Protocol = Ifc_server.Protocol
module Conn = Ifc_server.Conn
module Limits = Ifc_server.Limits
module Server = Ifc_server.Server
module Client = Ifc_server.Client

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_str = Alcotest.(check string)

let two = Lattice.stringify Chain.two

let fail_result = function
  | Ok v -> v
  | Error msg -> Alcotest.fail msg

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Jsonx: parsing and round-trips through Telemetry's renderer *)

let roundtrip value =
  match Jsonx.parse (J.json_to_string value) with
  | Ok parsed -> parsed
  | Error msg -> Alcotest.failf "re-parse failed: %s" msg

let test_jsonx_roundtrip_values () =
  List.iter
    (fun v -> check "round-trip" true (roundtrip v = v))
    [
      J.Null;
      J.Bool true;
      J.Bool false;
      J.Int 0;
      J.Int (-42);
      J.Int max_int;
      J.Float 1.5;
      J.Float (-0.125);
      J.String "";
      J.List [ J.Int 1; J.Null; J.String "x" ];
      J.Obj [ ("a", J.Int 1); ("b", J.Obj [ ("c", J.List []) ]) ];
    ]

let test_jsonx_roundtrip_escaping () =
  (* The satellite check: Telemetry's hand-rolled escaping must survive
     a real JSON parser byte-for-byte. *)
  List.iter
    (fun s -> check_str "string round-trip" s
        (match roundtrip (J.String s) with
        | J.String s' -> s'
        | _ -> Alcotest.fail "not a string"))
    [
      "plain";
      "quote \" inside";
      "back\\slash";
      "newline\nand\rreturn\tand tab";
      "control \001 \031 bytes";
      "nul \000 byte";
      "non-ASCII: h\xc3\xa9llo \xe2\x80\xa6 \xf0\x9f\x98\x80";
      "mixed \"\\\n\t\xc3\xa9";
    ]

let test_jsonx_unicode_escapes () =
  (* \uXXXX escapes decode to UTF-8, surrogate pairs included. *)
  let parse_string s =
    match Jsonx.parse s with
    | Ok (J.String v) -> v
    | Ok _ -> Alcotest.fail "not a string"
    | Error msg -> Alcotest.failf "parse failed: %s" msg
  in
  check_str "BMP escape" "\xc3\xa9" (parse_string {|"é"|});
  check_str "ASCII escape" "A" (parse_string {|"A"|});
  check_str "surrogate pair" "\xf0\x9f\x98\x80" (parse_string {|"😀"|});
  check_str "escaped controls" "\n\t" (parse_string {|"\n\t"|})

let test_jsonx_rejects () =
  let rejects label s =
    check label true (match Jsonx.parse s with Error _ -> true | Ok _ -> false)
  in
  rejects "empty" "";
  rejects "garbage" "hello";
  rejects "trailing garbage" "{} trailing";
  rejects "two values" "1 2";
  rejects "raw newline in string" "\"a\nb\"";
  rejects "raw control in string" "\"a\001b\"";
  rejects "lone high surrogate" {|"\ud83d"|};
  rejects "lone low surrogate" {|"\ude00"|};
  rejects "bad escape" {|"\q"|};
  rejects "unterminated string" "\"abc";
  rejects "unterminated object" "{\"a\": 1";
  rejects "deep nesting" (String.concat "" (List.init 600 (fun _ -> "[")));
  check "valid object accepted" true
    (Jsonx.parse {|{"a": [1, 2.5, true, null, "x"]}|} |> Result.is_ok)

let test_jsonx_accessors () =
  let json = fail_result (Jsonx.parse {|{"s": "v", "i": 7, "f": 7.0, "b": true, "l": [1]}|}) in
  check "member hit" true (Jsonx.member "s" json <> None);
  check "member miss" true (Jsonx.member "zz" json = None);
  check_str "mem_string" "v" (Option.get (Jsonx.mem_string "s" json));
  check_int "mem_int on Int" 7 (Option.get (Jsonx.mem_int "i" json));
  check_int "mem_int on integral Float" 7 (Option.get (Jsonx.mem_int "f" json));
  check "mem_bool" true (Option.get (Jsonx.mem_bool "b" json));
  check "list_opt" true
    (match Option.bind (Jsonx.member "l" json) Jsonx.list_opt with
    | Some [ J.Int 1 ] -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Latency histogram *)

let test_histogram () =
  let h = J.histogram () in
  check_int "empty" 0 (J.observations h);
  check "empty quantile" true (J.quantile_ns h 0.5 = 0L);
  for _ = 1 to 90 do J.observe h 1000L done;
  for _ = 1 to 10 do J.observe h 1_000_000L done;
  J.observe h (-5L);
  (* negative clamps to 0 *)
  check_int "count" 101 (J.observations h);
  (* Quantiles are bucket upper bounds: 1000 ns lands in the first
     bucket (upper 1024 ns), 1 ms in the 1048576 ns bucket. *)
  check "p50 within an octave" true (J.quantile_ns h 0.5 = 1024L);
  check "p99 within an octave" true (J.quantile_ns h 0.99 = 1_048_576L);
  check "quantiles monotone" true (J.quantile_ns h 0.5 <= J.quantile_ns h 0.99);
  let fields = J.histogram_fields h in
  let get name =
    match List.assoc name fields with
    | J.Int i -> Int64.of_int i
    | J.Float f -> Int64.of_float f
    | _ -> Alcotest.failf "field %s not numeric" name
  in
  check "max recorded" true (get "max_ns" = 1_000_000L);
  check_int "count field" 101 (Int64.to_int (get "count"));
  (* The stats op and bench reports quote p50/p95/p99 straight from
     these fields; pin the bucket geometry they are computed over:
     33 powers-of-two buckets from 1024 ns up. *)
  check_int "bucket count pinned" 33 J.bucket_count;
  check "first bucket upper bound" true (J.bucket_upper_ns 0 = 1024L);
  for i = 1 to J.bucket_count - 1 do
    check (Printf.sprintf "bucket %d doubles" i) true
      (J.bucket_upper_ns i = Int64.mul 2L (J.bucket_upper_ns (i - 1)))
  done;
  check "p95 field present" true (List.mem_assoc "p95_ns" fields);
  let p50 = get "p50_ns" and p95 = get "p95_ns" and p99 = get "p99_ns" in
  check "p50 <= p95 <= p99" true (p50 <= p95 && p95 <= p99);
  check "p95 equals quantile" true (p95 = J.quantile_ns h 0.95)

(* ------------------------------------------------------------------ *)
(* Sink hygiene: whole lines on every exit path *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let assert_whole_jsonl label contents =
  check (label ^ ": non-empty") true (String.length contents > 0);
  check (label ^ ": ends in newline") true
    (contents.[String.length contents - 1] = '\n');
  List.iteri
    (fun i line ->
      match Jsonx.parse line with
      | Ok (J.Obj _) -> ()
      | Ok _ -> Alcotest.failf "%s: line %d is not an object" label i
      | Error msg -> Alcotest.failf "%s: line %d unparsable: %s" label i msg)
    (String.split_on_char '\n' (String.trim contents))

let test_sink_flushes_every_event () =
  let path = Filename.temp_file "ifc_sink" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let sink = J.open_sink path in
  J.emit sink [ ("event", J.String "one") ];
  J.emit sink [ ("text", J.String "tricky \"\n\\ line") ];
  (* Visible and complete before close: emit flushes per event. *)
  assert_whole_jsonl "before close" (read_file path);
  J.close sink;
  assert_whole_jsonl "after close" (read_file path);
  check_int "events written" 2 (J.events_written sink)

let test_with_sink_closes_on_raise () =
  let path = Filename.temp_file "ifc_sink" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let escaped = ref None in
  (try
     J.with_sink path (fun sink ->
         J.emit sink [ ("event", J.String "before crash") ];
         escaped := Some sink;
         failwith "boom")
   with Failure _ -> ());
  assert_whole_jsonl "after raise" (read_file path);
  (* The sink really was closed: emit after close is a silent no-op. *)
  (match !escaped with
  | Some sink -> J.emit sink [ ("event", J.String "after close") ]
  | None -> Alcotest.fail "with_sink never ran");
  check "no event after close" true
    (not (String.length (read_file path) > 0
          && String.length (read_file path)
             <> String.length (read_file path)));
  check_int "only the pre-crash event" 1
    (List.length
       (String.split_on_char '\n' (String.trim (read_file path))))

(* ------------------------------------------------------------------ *)
(* Protocol parsing *)

let test_protocol_parse () =
  (* A client-built line parses back to the same request. *)
  let line =
    Protocol.check_line ~id:(J.Int 3) ~name:"t" ~lattice:"mls"
      ~binding:"x : low" ~analyses:[ "denning"; "cfm" ] ~self_check:true
      ~deadline_ms:250 "begin x := 0 end"
  in
  let parsed = Protocol.parse_request line in
  check "id echoed" true (parsed.Protocol.id = J.Int 3);
  (match parsed.Protocol.op with
  | Ok (Protocol.Check r) ->
    check_str "name" "t" r.Protocol.name;
    check_str "lattice" "mls" r.Protocol.lattice;
    check "binding" true (r.Protocol.binding = Some "x : low");
    check "analyses" true (r.Protocol.analyses = [ "denning"; "cfm" ]);
    check "self_check" true r.Protocol.self_check;
    check "deadline" true (r.Protocol.deadline_ms = Some 250)
  | _ -> Alcotest.fail "expected a check op");
  (* Analyses also accepted as a CSV string. *)
  (match
     (Protocol.parse_request
        {|{"v": 1, "op": "check", "program": "p", "analyses": "cfm, prove"}|})
       .Protocol.op
   with
  | Ok (Protocol.Check r) ->
    check "csv analyses" true (r.Protocol.analyses = [ "cfm"; "prove" ])
  | _ -> Alcotest.fail "csv analyses rejected");
  let expect_error label line code =
    let parsed = Protocol.parse_request line in
    match parsed.Protocol.op with
    | Error (got, _) -> check_str label code (Protocol.code_string got)
    | Ok _ -> Alcotest.failf "%s: unexpectedly parsed" label
  in
  expect_error "garbage" "not json" "parse_error";
  expect_error "non-object" "[1,2]" "parse_error";
  expect_error "missing version" {|{"op": "ping"}|} "bad_version";
  expect_error "wrong version" {|{"v": 99, "op": "ping"}|} "bad_version";
  expect_error "missing op" {|{"v": 1}|} "bad_request";
  expect_error "unknown op" {|{"v": 1, "op": "frobnicate"}|} "bad_request";
  expect_error "check without program" {|{"v": 1, "op": "check"}|} "bad_request";
  expect_error "bad deadline" {|{"v": 1, "op": "check", "program": "p", "deadline_ms": -1}|}
    "bad_request";
  (* Ids are recovered even from envelope failures. *)
  check "id survives bad version" true
    ((Protocol.parse_request {|{"v": 99, "id": 7}|}).Protocol.id = J.Int 7);
  (* cert ops: version 2 only; emit is the default action, check carries
     the certificate text verbatim. *)
  (match
     (Protocol.parse_request (Protocol.cert_emit_line ~name:"c" "p")).Protocol.op
   with
  | Ok (Protocol.Cert r) ->
    check_str "cert name" "c" r.Protocol.cert_name;
    check "emit action" true (r.Protocol.action = Protocol.Cert_emit)
  | _ -> Alcotest.fail "cert emit line rejected");
  (match
     (Protocol.parse_request (Protocol.cert_check_line ~cert:"ifc-cert 1" "p"))
       .Protocol.op
   with
  | Ok (Protocol.Cert r) ->
    check "check action" true (r.Protocol.action = Protocol.Cert_check "ifc-cert 1")
  | _ -> Alcotest.fail "cert check line rejected");
  expect_error "cert under v1" {|{"v": 1, "op": "cert", "program": "p"}|}
    "bad_request";
  expect_error "cert check without cert"
    {|{"v": 2, "op": "cert", "action": "check", "program": "p"}|} "bad_request";
  expect_error "cert unknown action"
    {|{"v": 2, "op": "cert", "action": "mint", "program": "p"}|} "bad_request";
  (* Every request records the version it declared, so responses can
     echo it and version-1 clients never see version-2 envelopes. *)
  check_int "v1 recorded" 1
    (Protocol.parse_request {|{"v": 1, "op": "ping"}|}).Protocol.v;
  check_int "v2 recorded" 2
    (Protocol.parse_request {|{"v": 2, "op": "ping"}|}).Protocol.v;
  check_int "v3 recorded" 3
    (Protocol.parse_request {|{"v": 3, "op": "ping"}|}).Protocol.v;
  check_int "client lines declare the current version" Protocol.version
    (Protocol.parse_request (Protocol.cert_emit_line "p")).Protocol.v;
  (* Only a v>=4 declaration opts a request into pipelining. *)
  check "v3 is not pipelined" false
    (Protocol.parse_request {|{"v": 3, "op": "ping"}|}).Protocol.pipelined;
  check "v4 is pipelined" true
    (Protocol.parse_request {|{"v": 4, "op": "ping"}|}).Protocol.pipelined;
  check "errors are never pipelined" false
    (Protocol.parse_request {|{"v": 99, "op": "ping"}|}).Protocol.pipelined;
  check "pipelined_line matches the gate" true
    (Protocol.pipelined_line {|{"v": 4, "op": "ping"}|}
    && (not (Protocol.pipelined_line {|{"v": 3, "op": "ping"}|}))
    && (not (Protocol.pipelined_line {|{"v": 99, "op": "ping"}|}))
    && not (Protocol.pipelined_line "not json"));
  (* lint ops: version 3 only; the request carries just the program. *)
  (match (Protocol.parse_request (Protocol.lint_line ~name:"l" "p")).Protocol.op with
  | Ok (Protocol.Lint r) ->
    check_str "lint name" "l" r.Protocol.lint_name;
    check_str "lint program" "p" r.Protocol.lint_program
  | _ -> Alcotest.fail "lint line rejected");
  expect_error "lint under v2" {|{"v": 2, "op": "lint", "program": "p"}|}
    "bad_request";
  expect_error "lint without program" {|{"v": 3, "op": "lint"}|} "bad_request"

(* ------------------------------------------------------------------ *)
(* Socket-level helpers *)

let temp_sock () =
  let path = Filename.temp_file "ifcsrv" ".sock" in
  (* temp_file creates a placeholder; the server unlinks stale paths
     before binding. *)
  path

let with_server ?(workers = 2) ?(cache_capacity = 256) ?(limits = Limits.default)
    ?shards ?(endpoints = `Unix) f =
  let sock = temp_sock () in
  let endpoints =
    match endpoints with
    | `Unix -> [ Conn.Unix_socket sock ]
    | `Tcp -> [ Conn.Tcp ("127.0.0.1", 0) ]
  in
  let shards =
    Option.value ~default:Server.default_config.Server.shards shards
  in
  let config =
    { Server.default_config with endpoints; workers; cache_capacity; limits; shards }
  in
  let server = fail_result (Server.create config) in
  let thread = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop server;
      Thread.join thread;
      try Sys.remove sock with Sys_error _ -> ())
    (fun () -> f (List.hd endpoints) server)

let with_conn endpoint f =
  fail_result (Client.with_client ~retry_for:5. endpoint f)

let quick_program = "var x, y : integer;\nbegin x := 1; y := x end"

(* A small linked unit for the version-5 modsys op: one producer module
   feeding one consumer through a bounded export. *)
let quick_linked =
  "module producer\n\
   provides (out : class <= high)\n\
   requires (cfg : class >= low)\n\
   var out : integer class high;\n\
   begin out := cfg + 1 end\n\
   end\n\
   module consumer\n\
   requires (out : class >= low)\n\
   var sink : integer class high;\n\
   begin sink := out end\n\
   end\n\
   var cfg : integer class low;\n\
   begin cfg := 1 end"

let leaky_linked =
  "module leaker\n\
   provides (out : class <= low)\n\
   requires (secret : class >= low)\n\
   var out : integer class low;\n\
   begin out := secret end\n\
   end\n\
   var secret : integer class high;\n\
   begin secret := 1 end"

(* A check the worker chews on for ~100 ms: empirical noninterference
   single-steps this loop once per tested pair. *)
let slow_program =
  "var h, x, y : integer;\nbegin\n  x := 0;\n  while x < 4000 do x := x + 1 od;\n  y := x\nend"

let slow_binding = "h : high\nx : low\ny : low"

let slow_check ?deadline_ms client =
  Client.check client ~name:"slow" ~binding:slow_binding
    ~analyses:[ "ni" ] ~ni_pairs:1 ~ni_max_states:10_000_000 ?deadline_ms
    slow_program

let response_code response =
  match Protocol.response_error response with
  | Some (code, _) -> code
  | None -> "ok"

let stat_int path response =
  let rec walk json = function
    | [] -> Option.value ~default:(-1) (Jsonx.int_opt json)
    | key :: rest -> (
      match Jsonx.member key json with
      | Some v -> walk v rest
      | None -> -1)
  in
  walk response ("stats" :: path)

(* ------------------------------------------------------------------ *)
(* Concurrent clients get exactly the sequential verdicts. *)

(* Generated programs go over the wire as source text, so keep only
   those that survive the server's own pretty-print → parse →
   wellformedness path. *)
let corpus n =
  let rng = Prng.create 20260806 in
  let levels = Array.of_list two.Lattice.elements in
  let rec collect i acc remaining =
    if remaining = 0 then List.rev acc
    else
      let program = Gen.program rng Gen.default ~size:(1 + (i mod 15)) in
      let source = Fmt.str "%a" Ifc_lang.Pretty.pp_program program in
      match Parser.parse_program source with
      | Ok reparsed when Ifc_lang.Wellformed.errors reparsed = [] ->
        let binding_text =
          Sset.elements (Vars.all_vars program.Ast.body)
          |> List.map (fun v ->
                 Printf.sprintf "%s : %s" v
                   levels.(Prng.int rng (Array.length levels)))
          |> String.concat "\n"
        in
        collect (i + 1)
          ((Printf.sprintf "corpus:%d" i, source, binding_text) :: acc)
          (remaining - 1)
      | _ -> collect (i + 1) acc remaining
  in
  collect 0 [] n

let sequential_verdict (name, source, binding_text) =
  let program =
    match Parser.parse_program source with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse %s: %s" name (Fmt.str "%a" Parser.pp_error e)
  in
  let binding = fail_result (Binding.of_spec two binding_text) in
  Job.verdict_string
    (Job.run (Job.make ~id:0 ~name ~lattice:two ~binding ~analyses:[ Job.Cfm ] program))

let test_concurrent_matches_sequential () =
  let jobs = corpus 24 in
  let expected = List.map sequential_verdict jobs in
  with_server ~workers:3 @@ fun endpoint _server ->
  let one_client () =
    with_conn endpoint @@ fun client ->
    Ok
      (List.map
         (fun (name, source, binding) ->
           let response =
             fail_result
               (Client.check client ~name ~binding ~analyses:[ "cfm" ] source)
           in
           check ("ok: " ^ name) true (Protocol.response_ok response);
           Option.get (Protocol.response_verdict response))
         jobs)
  in
  let results = Array.make 4 [] in
  let threads =
    List.init 4 (fun i -> Thread.create (fun () -> results.(i) <- one_client ()) ())
  in
  List.iter Thread.join threads;
  Array.iteri
    (fun i verdicts ->
      check (Printf.sprintf "client %d matches sequential" i) true
        (verdicts = expected))
    results

(* ------------------------------------------------------------------ *)
(* Deadlines, cancellation, robustness *)

let test_timeout_spares_other_requests () =
  with_server ~workers:2 @@ fun endpoint _server ->
  let timed_out = ref "unset" in
  let slow_thread =
    Thread.create
      (fun () ->
        with_conn endpoint @@ fun client ->
        let response = fail_result (slow_check ~deadline_ms:10 client) in
        timed_out := response_code response;
        (* The connection survives its own timeout. *)
        let* () = Client.ping client in
        Ok ())
      ()
  in
  (* Meanwhile a quick request on another connection completes. *)
  with_conn endpoint (fun client ->
      let response =
        fail_result (Client.check client ~name:"quick" quick_program)
      in
      check "quick request passes during slow one" true
        (Protocol.response_ok response);
      Ok ());
  Thread.join slow_thread;
  check_str "slow request timed out" "timeout" !timed_out

let test_expired_queued_job_is_cancelled () =
  (* One worker: a slow job occupies it, so a short-deadline request
     expires while still queued and the pool skips it entirely. *)
  with_server ~workers:1 @@ fun endpoint _server ->
  let slow_thread =
    Thread.create
      (fun () -> with_conn endpoint (fun client -> slow_check client)) ()
  in
  Thread.delay 0.03;
  with_conn endpoint (fun client ->
      let response = fail_result (Client.check client ~deadline_ms:5 quick_program) in
      check_str "queued request timed out" "timeout" (response_code response);
      Ok ());
  Thread.join slow_thread;
  (* The worker increments jobs.cancelled when it dequeues the expired
     task, which can land just after the slow response is delivered —
     poll briefly rather than race it. *)
  with_conn endpoint (fun client ->
      let deadline = Unix.gettimeofday () +. 2. in
      let rec cancelled_count () =
        let stats = fail_result (Client.stats client) in
        let n = stat_int [ "counters"; "jobs.cancelled" ] stats in
        if n >= 1 || Unix.gettimeofday () > deadline then n
        else begin
          Thread.delay 0.02;
          cancelled_count ()
        end
      in
      check "cancelled job counted" true (cancelled_count () >= 1);
      Ok ())

let test_malformed_requests_keep_connection () =
  with_server @@ fun endpoint _server ->
  with_conn endpoint (fun client ->
      let expect code line =
        let response = fail_result (Client.request client line) in
        check_str ("code for " ^ line) code (response_code response)
      in
      expect "parse_error" "definitely not json";
      expect "parse_error" "[1, 2, 3]";
      expect "bad_version" {|{"op": "ping"}|};
      expect "bad_version" {|{"v": 99, "op": "ping"}|};
      expect "bad_request" {|{"v": 1, "op": "frobnicate"}|};
      expect "bad_request" {|{"v": 1, "op": "check"}|};
      expect "bad_request"
        {|{"v": 1, "op": "check", "program": "x := ("}|};
      (* After all that abuse, the same connection still serves. *)
      let* () = Client.ping client in
      Ok ())

let test_oversized_request_keeps_connection () =
  let limits = { Limits.default with Limits.max_request_bytes = 256 } in
  with_server ~limits @@ fun endpoint _server ->
  with_conn endpoint (fun client ->
      let big = String.make 10_000 'x' in
      let response =
        fail_result (Client.check client ~name:"big" big)
      in
      check_str "oversized rejected" "oversized" (response_code response);
      let* () = Client.ping client in
      let response = fail_result (Client.check client quick_program) in
      check "normal request works after oversized" true
        (Protocol.response_ok response);
      Ok ())

let test_connection_cap_answers_overloaded () =
  let limits = { Limits.default with Limits.max_connections = 1 } in
  with_server ~limits @@ fun endpoint _server ->
  with_conn endpoint (fun first ->
      (* A round-trip guarantees the first connection is registered. *)
      let* () = Client.ping first in
      let second = fail_result (Client.connect ~retry_for:5. endpoint) in
      Fun.protect ~finally:(fun () -> Client.close second) @@ fun () ->
      (* The server volunteers one overloaded line, then closes. *)
      let response = fail_result (Client.request second (Protocol.ping_line ())) in
      check_str "overloaded" "overloaded" (response_code response);
      check "then EOF" true
        (match Client.request second (Protocol.ping_line ()) with
        | Error _ -> true
        | Ok _ -> false);
      (* The first connection is unaffected. *)
      let* () = Client.ping first in
      Ok ())

let test_cert_over_the_wire () =
  with_server @@ fun endpoint _server ->
  with_conn endpoint (fun client ->
      (* Emit: the client declares the current protocol version and the
         response envelope echoes it back, carrying a parseable
         version-1 certificate. *)
      let response =
        fail_result (Client.cert_emit client ~name:"wire" quick_program)
      in
      check "emit ok" true (Protocol.response_ok response);
      check "version echoed" true
        (Jsonx.member "v" response = Some (J.Int Protocol.version));
      let cert_text =
        match Option.bind (Jsonx.member "cert" response) Jsonx.string_opt with
        | Some text -> text
        | None -> Alcotest.fail "emit response carries no cert"
      in
      (match Ifc_cert.Cert.parse cert_text with
      | Ok cert ->
        check "nodes over the wire" true (Ifc_cert.Cert.node_count cert > 0)
      | Error e ->
        Alcotest.failf "wire cert unparseable: %a" Ifc_cert.Cert.pp_parse_error e);
      (* Check: the emitted certificate validates against its program... *)
      let response =
        fail_result (Client.cert_check client ~cert:cert_text quick_program)
      in
      check "check ok" true (Protocol.response_ok response);
      check "valid" true (Jsonx.member "valid" response = Some (J.Bool true));
      (* ...but not against a different program (digest mismatch). *)
      let response =
        fail_result (Client.cert_check client ~cert:cert_text slow_program)
      in
      check "mismatch answered" true (Protocol.response_ok response);
      check "mismatch invalid" true
        (Jsonx.member "valid" response = Some (J.Bool false));
      (* Garbage certificates are a structured refusal, not a crash. *)
      let response =
        fail_result (Client.cert_check client ~cert:"not a cert" quick_program)
      in
      check_str "garbage cert" "bad_request" (response_code response);
      (* The connection survives all of it. *)
      let* () = Client.ping client in
      Ok ())

let test_lint_over_the_wire () =
  with_server @@ fun endpoint _server ->
  with_conn endpoint (fun client ->
      (* A clean program passes with an empty findings list in the report. *)
      let response = fail_result (Client.lint client ~name:"wire" quick_program) in
      check "lint ok" true (Protocol.response_ok response);
      check "version echoed" true
        (Jsonx.member "v" response = Some (J.Int Protocol.version));
      check "clean verdict" true
        (Jsonx.member "verdict" response = Some (J.String "pass"));
      let report response =
        match Jsonx.member "report" response with
        | Some r -> r
        | None -> Alcotest.fail "lint response carries no report"
      in
      check "no findings" true
        (Jsonx.member "findings" (report response) = Some (J.List []));
      (* A racy program fails and the report withdraws the race-freedom
         claim. *)
      let racy = "var x : integer;\nbegin cobegin x := 1 || x := 2 coend end" in
      let response = fail_result (Client.lint client racy) in
      check "racy answered" true (Protocol.response_ok response);
      check "racy verdict" true
        (Jsonx.member "verdict" response = Some (J.String "fail"));
      check "findings reported" true
        (match Jsonx.member "findings" (report response) with
        | Some (J.List (_ :: _)) -> true
        | _ -> false);
      check "race claim withdrawn" true
        (match Jsonx.member "claims" (report response) with
        | Some claims -> Jsonx.member "race_free" claims = Some (J.Bool false)
        | None -> false);
      (* A second identical request rides the digest cache. *)
      let response = fail_result (Client.lint client racy) in
      check "cache hit" true
        (Jsonx.member "cache" response = Some (J.String "hit"));
      (* Unparseable programs are a structured refusal, not a crash. *)
      let response = fail_result (Client.lint client "var") in
      check_str "parse refusal" "bad_request" (response_code response);
      let* () = Client.ping client in
      Ok ())

let test_v1_clients_unaffected () =
  with_server @@ fun endpoint _server ->
  with_conn endpoint (fun client ->
      (* A version-1 request still gets a version-1 envelope. *)
      let response =
        fail_result (Client.request client {|{"v": 1, "id": 1, "op": "ping"}|})
      in
      check "v1 ok" true (Protocol.response_ok response);
      check "v1 echoed" true (Jsonx.member "v" response = Some (J.Int 1));
      (* The version-2 op is refused politely at version 1. *)
      let response =
        fail_result
          (Client.request client {|{"v": 1, "op": "cert", "program": "p"}|})
      in
      check_str "cert needs v2" "bad_request" (response_code response);
      let* () = Client.ping client in
      Ok ())

let test_tcp_endpoint () =
  with_server ~endpoints:`Tcp @@ fun _endpoint server ->
  let port = Option.get (Server.port server) in
  check "ephemeral port bound" true (port > 0);
  with_conn (Conn.Tcp ("127.0.0.1", port)) (fun client ->
      let* () = Client.ping client in
      let response = fail_result (Client.check client quick_program) in
      check "check over tcp" true (Protocol.response_ok response);
      Ok ())

(* ------------------------------------------------------------------ *)
(* Graceful shutdown on SIGTERM *)

let test_sigterm_drains_in_flight () =
  (* A real SIGTERM delivered to this process, handled exactly as the
     CLI wires it (handler → request_stop), must let the in-flight slow
     request finish with a real response before [Server.run] returns.
     (The full separate-process version, including exit code 0, lives in
     the serve.t cram test — [Unix.fork] is off-limits once worker
     domains exist.) *)
  let sock = temp_sock () in
  let config =
    { Server.default_config with Server.endpoints = [ Conn.Unix_socket sock ] }
  in
  let server = fail_result (Server.create config) in
  let previous =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Server.request_stop server))
  in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.signal Sys.sigterm previous);
      try Sys.remove sock with Sys_error _ -> ())
  @@ fun () ->
  let run_thread = Thread.create Server.run server in
  let slow_response = ref None in
  let slow_thread =
    Thread.create
      (fun () ->
        with_conn (Conn.Unix_socket sock) (fun client ->
            slow_response := Some (fail_result (slow_check client));
            Ok ()))
      ()
  in
  (* Let the slow request get in flight, then TERM ourselves. *)
  Thread.delay 0.03;
  Unix.kill (Unix.getpid ()) Sys.sigterm;
  Thread.join run_thread;
  check "run returned after SIGTERM" true (Server.stopped server);
  Thread.join slow_thread;
  (match !slow_response with
  | Some response ->
    check "in-flight request drained, not dropped" true
      (Protocol.response_ok response)
  | None -> Alcotest.fail "slow request got no response");
  (* The drained server is really gone: new connections fail. *)
  check "socket closed after drain" true
    (match Client.connect (Conn.Unix_socket sock) with
    | Error _ -> true
    | Ok c ->
      Client.close c;
      false)

(* ------------------------------------------------------------------ *)
(* Stats and cache warmth *)

let test_stats_and_warm_cache () =
  with_server @@ fun endpoint _server ->
  with_conn endpoint (fun client ->
      let* () = Client.ping client in
      let run () =
        fail_result
          (Client.check client ~name:"same" ~binding:"x : low\ny : low"
             quick_program)
      in
      let first = run () in
      check_str "first is a miss" "miss"
        (Option.get (Jsonx.mem_string "cache" first));
      for _ = 1 to 4 do
        let warm = run () in
        check_str "repeat is a hit" "hit"
          (Option.get (Jsonx.mem_string "cache" warm));
        check_str "warm verdict agrees"
          (Option.get (Protocol.response_verdict first))
          (Option.get (Protocol.response_verdict warm))
      done;
      let stats = fail_result (Client.stats client) in
      check "uptime counted" true (stat_int [ "uptime_ns" ] stats > 0);
      check_int "one miss" 1 (stat_int [ "cache"; "misses" ] stats);
      check_int "four hits" 4 (stat_int [ "cache"; "hits" ] stats);
      (* PROTOCOL.md splits entry loss by cause. Both fields are always
         present in the cache object (stat_int answers -1 for absent
         keys): an idle cache reports zero evictions (capacity
         pressure) and zero invalidations (explicit removal). *)
      check_int "evictions present and zero" 0
        (stat_int [ "cache"; "evictions" ] stats);
      check_int "invalidations present and zero" 0
        (stat_int [ "cache"; "invalidations" ] stats);
      check_int "checks counted" 5 (stat_int [ "counters"; "op.check" ] stats);
      check "requests counted" true (stat_int [ "counters"; "requests" ] stats >= 6);
      (* Untouched counters are simply absent from the snapshot. *)
      check "no errors" true (stat_int [ "counters"; "errors" ] stats <= 0);
      check "latency observed" true (stat_int [ "latency"; "count" ] stats >= 5);
      check "a connection is active" true
        (stat_int [ "active_connections" ] stats >= 1);
      (* 100% warm hit rate on repeated identical requests, measured as
         a stats delta. *)
      let before = stat_int [ "cache"; "hits" ] stats in
      for _ = 1 to 10 do
        ignore (run ())
      done;
      let stats = fail_result (Client.stats client) in
      check_int "10 more hits" (before + 10) (stat_int [ "cache"; "hits" ] stats);
      check_int "still one miss" 1 (stat_int [ "cache"; "misses" ] stats);
      Ok ())

(* ------------------------------------------------------------------ *)
(* Protocol v4: exhaustive version gate, pipelining, backpressure *)

(* The deterministic fault-injection hook: while [f] runs, any pooled
   job whose name starts with "stall" sleeps [ms] on its worker. *)
let with_stall ms f =
  Unix.putenv "IFC_SERVE_PLANT_STALL" (string_of_int ms);
  Fun.protect ~finally:(fun () -> Unix.putenv "IFC_SERVE_PLANT_STALL" "") f

(* Raw pipelined conversation: write every line up front, then collect
   [n] response lines in arrival order. *)
let pipelined_exchange endpoint lines n =
  fail_result
    (Client.with_client ~retry_for:5. endpoint (fun client ->
         let fd = Client.fd client and reader = Client.reader client in
         List.iter
           (fun line ->
             if not (Conn.write_line fd line) then
               Alcotest.fail "pipelined write failed")
           lines;
         let rec collect acc k =
           if k = 0 then Ok (List.rev acc)
           else
             match Conn.next_line reader with
             | `Line l -> collect (l :: acc) (k - 1)
             | `Eof -> Alcotest.fail "connection closed mid-pipeline"
             | `Oversized -> Alcotest.fail "oversized response"
             | `Stop -> Alcotest.fail "read interrupted"
         in
         collect [] n))

let response_id line =
  match Jsonx.parse line with
  | Ok json ->
    Option.value ~default:(-1)
      (Option.bind (Jsonx.member "id" json) Jsonx.int_opt)
  | Error _ -> -1

let response_code_of_line line =
  match Jsonx.parse line with
  | Ok json -> response_code json
  | Error _ -> "unparseable"

(* A check request for a program no other test submits, so its first
   submission is always a cache miss. *)
let stall_check_line ~v ~id ~salt ?deadline_ms () =
  let program =
    J.json_to_string
      (J.String
         (Printf.sprintf "var s, t : integer;\nbegin s := %d; t := s end" salt))
  in
  let deadline =
    match deadline_ms with
    | Some ms -> Printf.sprintf {|, "deadline_ms": %d|} ms
    | None -> ""
  in
  Printf.sprintf
    {|{"v": %d, "id": %d, "op": "check", "name": "stall-%d", "program": %s%s}|}
    v id salt program deadline

let test_version_gate_exhaustive () =
  with_server ~workers:1 @@ fun _endpoint server ->
  let handle line = Server.handle server (`Line line) in
  (* The version digit is at byte 5 of every envelope; masking it — and
     the per-request timing field — is how we assert responses are
     byte-identical across versions. *)
  let mask line =
    let line = String.mapi (fun i c -> if i = 5 then 'V' else c) line in
    let key = "\"duration_ns\":" in
    let n = String.length line and k = String.length key in
    let buf = Buffer.create n in
    let i = ref 0 in
    while !i < n do
      if !i + k <= n && String.sub line !i k = key then begin
        Buffer.add_string buf key;
        Buffer.add_char buf '_';
        i := !i + k;
        while !i < n && line.[!i] >= '0' && line.[!i] <= '9' do
          incr i
        done
      end
      else begin
        Buffer.add_char buf line.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  (* ping: available and byte-stable at every version. *)
  for v = 1 to 5 do
    check_str
      (Printf.sprintf "ping v%d" v)
      (Printf.sprintf {|{"v":%d,"id":7,"ok":true,"op":"ping"}|} v)
      (handle (Printf.sprintf {|{"v": %d, "id": 7, "op": "ping"}|} v))
  done;
  (* stats: available at every version, envelope prefix pinned. *)
  for v = 1 to 5 do
    let r = handle (Printf.sprintf {|{"v": %d, "op": "stats"}|} v) in
    let prefix =
      Printf.sprintf {|{"v":%d,"id":null,"ok":true,"op":"stats",|} v
    in
    check
      (Printf.sprintf "stats v%d prefix" v)
      true
      (String.length r >= String.length prefix
      && String.sub r 0 (String.length prefix) = prefix)
  done;
  (* check: available at every version. Prime the cache once, then the
     hit responses at v1 through v4 must agree byte for byte modulo the
     echoed version digit. *)
  let check_req v =
    Printf.sprintf {|{"v": %d, "id": 9, "op": "check", "program": %s}|} v
      (J.json_to_string (J.String quick_program))
  in
  ignore (handle (check_req 1));
  let baseline = handle (check_req 1) in
  check "check hit baseline ok" true
    (match Jsonx.parse baseline with
    | Ok json -> Protocol.response_ok json
    | Error _ -> false);
  for v = 2 to 5 do
    check_str
      (Printf.sprintf "check v%d envelope identical" v)
      (mask baseline)
      (mask (handle (check_req v)))
  done;
  (* cert: gated at version 2, refusal message verbatim. *)
  let cert_req v =
    Printf.sprintf {|{"v": %d, "op": "cert", "program": %s}|} v
      (J.json_to_string (J.String quick_program))
  in
  check_str "cert v1 refused verbatim"
    {|{"v":1,"id":null,"ok":false,"error":{"code":"bad_request","message":"op \"cert\" requires protocol version 2 (request declared 1)"}}|}
    (handle (cert_req 1));
  ignore (handle (cert_req 2));
  let cert_baseline = handle (cert_req 2) in
  check "cert hit baseline ok" true
    (match Jsonx.parse cert_baseline with
    | Ok json -> Protocol.response_ok json
    | Error _ -> false);
  for v = 3 to 5 do
    check_str
      (Printf.sprintf "cert v%d envelope identical" v)
      (mask cert_baseline)
      (mask (handle (cert_req v)))
  done;
  (* lint: gated at version 3, refusal messages verbatim per declared
     version. *)
  let lint_req v =
    Printf.sprintf {|{"v": %d, "op": "lint", "program": %s}|} v
      (J.json_to_string (J.String quick_program))
  in
  check_str "lint v1 refused verbatim"
    {|{"v":1,"id":null,"ok":false,"error":{"code":"bad_request","message":"op \"lint\" requires protocol version 3 (request declared 1)"}}|}
    (handle (lint_req 1));
  check_str "lint v2 refused verbatim"
    {|{"v":2,"id":null,"ok":false,"error":{"code":"bad_request","message":"op \"lint\" requires protocol version 3 (request declared 2)"}}|}
    (handle (lint_req 2));
  ignore (handle (lint_req 3));
  let lint_baseline = handle (lint_req 3) in
  check_str "lint v4 envelope identical" (mask lint_baseline)
    (mask (handle (lint_req 4)));
  check_str "lint v5 envelope identical" (mask lint_baseline)
    (mask (handle (lint_req 5)));
  (* modsys: gated at version 5, refusal messages verbatim per declared
     version. *)
  let modsys_req v =
    Printf.sprintf
      {|{"v": %d, "op": "modsys", "action": "summary", "program": %s}|} v
      (J.json_to_string (J.String quick_linked))
  in
  for v = 1 to 4 do
    check_str
      (Printf.sprintf "modsys v%d refused verbatim" v)
      (Printf.sprintf
         {|{"v":%d,"id":null,"ok":false,"error":{"code":"bad_request","message":"op \"modsys\" requires protocol version 5 (request declared %d)"}}|}
         v v)
      (handle (modsys_req v))
  done;
  check "modsys v5 accepted" true
    (match Jsonx.parse (handle (modsys_req 5)) with
    | Ok json -> Protocol.response_ok json
    | Error _ -> false);
  (* Envelope failures: messages and envelopes verbatim. The response
     version for requests that never declared a usable version is the
     server's own. *)
  check_str "missing v verbatim"
    {|{"v":5,"id":null,"ok":false,"error":{"code":"bad_version","message":"missing \"v\" (protocol version) field"}}|}
    (handle {|{"op": "ping"}|});
  check_str "unsupported v verbatim"
    {|{"v":5,"id":3,"ok":false,"error":{"code":"bad_version","message":"unsupported protocol version (this server speaks 1 through 5)"}}|}
    (handle {|{"v": 99, "id": 3, "op": "ping"}|});
  check_str "v0 also unsupported"
    {|{"v":5,"id":null,"ok":false,"error":{"code":"bad_version","message":"unsupported protocol version (this server speaks 1 through 5)"}}|}
    (handle {|{"v": 0, "op": "ping"}|});
  for v = 1 to 5 do
    check_str
      (Printf.sprintf "unknown op v%d verbatim" v)
      (Printf.sprintf
         {|{"v":%d,"id":null,"ok":false,"error":{"code":"bad_request","message":"unknown op \"frobnicate\" (use check, cert, lint, modsys, stats, or ping)"}}|}
         v)
      (handle (Printf.sprintf {|{"v": %d, "op": "frobnicate"}|} v));
    check_str
      (Printf.sprintf "missing op v%d verbatim" v)
      (Printf.sprintf
         {|{"v":%d,"id":null,"ok":false,"error":{"code":"bad_request","message":"missing string \"op\" field"}}|}
         v)
      (handle (Printf.sprintf {|{"v": %d}|} v))
  done

let contains_sub hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* A requested connection/client count at or above FD_SETSIZE must be
   refused with a configuration error up front, never surface as a raw
   EINVAL out of Unix.select mid-run. *)
let test_fd_setsize_guard () =
  check "0 (unlimited) passes" true (Limits.check_fd_budget ~what:"x" 0 = Ok ());
  check "1023 passes" true
    (Limits.check_fd_budget ~what:"x" (Limits.fd_setsize - 1) = Ok ());
  (match Limits.check_fd_budget ~what:"--clients" Limits.fd_setsize with
  | Error msg ->
    check "message names the knob" true (contains_sub msg "--clients");
    check "message names FD_SETSIZE" true (contains_sub msg "FD_SETSIZE");
    check "message never mentions EINVAL" false (contains_sub msg "EINVAL")
  | Ok () -> Alcotest.fail "FD_SETSIZE clients must be rejected");
  let config =
    {
      Server.default_config with
      Server.endpoints = [ Conn.Unix_socket (temp_sock ()) ];
      limits = { Limits.default with Limits.max_connections = 4096 };
    }
  in
  match Server.create config with
  | Error msg ->
    check "serve refuses oversized max-connections" true
      (contains_sub msg "FD_SETSIZE")
  | Ok server ->
    Server.request_stop server;
    Alcotest.fail "server accepted max_connections above FD_SETSIZE"

let test_modsys_ops () =
  with_server ~workers:1 @@ fun _endpoint server ->
  let handle line = Server.handle server (`Line line) in
  let json_of line =
    match Jsonx.parse line with
    | Ok j -> j
    | Error _ -> Alcotest.failf "unparseable response: %s" line
  in
  let str_member key json =
    match Jsonx.member key json with Some (J.String s) -> Some s | _ -> None
  in
  (* link: pooled and cached, response carries the ifc-cert 2 text. *)
  let link_line = Protocol.modsys_line ~name:"quick" quick_linked in
  let r1 = json_of (handle link_line) in
  check "link ok" true (Protocol.response_ok r1);
  check "link verdict pass" true (Protocol.response_verdict r1 = Some "pass");
  check "link action echoed" true (str_member "action" r1 = Some "link");
  (match str_member "cert" r1 with
  | Some text ->
    check "cert is version 2" true
      (String.length text >= 10 && String.sub text 0 10 = "ifc-cert 2")
  | None -> Alcotest.fail "link response carries no cert");
  let r2 = json_of (handle link_line) in
  check "second link is a cache hit" true (str_member "cache" r2 = Some "hit");
  (* A leaking unit fails the link without erroring. *)
  let leak = json_of (handle (Protocol.modsys_line ~name:"leak" leaky_linked)) in
  check "leak link ok envelope" true (Protocol.response_ok leak);
  check "leak link verdict fail" true (Protocol.response_verdict leak = Some "fail");
  check "leak link has no cert" true (Jsonx.member "cert" leak = None);
  (* summary: one node per module, inline. *)
  let s =
    json_of (handle (Protocol.modsys_line ~action:"summary" quick_linked))
  in
  check "summary ok" true (Protocol.response_ok s);
  (match Jsonx.member "modules" s with
  | Some (J.List mods) -> check_int "two summary nodes" 2 (List.length mods)
  | _ -> Alcotest.fail "summary response carries no modules list");
  (* refine: compare a replacement module against the unit's first
     module. A body that leaks the import is rejected. *)
  let base_module =
    "module producer\n\
     provides (out : class <= high)\n\
     requires (cfg : class >= low)\n\
     var out : integer class high;\n\
     begin out := cfg + 1 end\n\
     end"
  in
  let refine_line = handle
      (Protocol.modsys_line ~action:"refine" ~replacement:base_module
         quick_linked)
  in
  let refine_ok = json_of refine_line in
  if not (Protocol.response_ok refine_ok) then
    Alcotest.failf "refine response: %s" refine_line;
  check "refine self ok" true (Protocol.response_ok refine_ok);
  check "refine self valid" true
    (Jsonx.member "valid" refine_ok = Some (J.Bool true));
  (* Parse errors surface as bad_request, not internal faults. *)
  (match
     Jsonx.parse (handle (Protocol.modsys_line ~name:"bad" "module oops"))
   with
  | Ok bad ->
    check "garbled unit refused" true
      (match Protocol.response_error bad with
      | Some ("bad_request", _) -> true
      | _ -> false)
  | Error _ -> Alcotest.fail "unparseable bad_request response")

let test_pipelined_out_of_order () =
  (* A stalled pooled request must not block a later request on the
     same pipelined connection: the ping overtakes it. *)
  with_stall 150 @@ fun () ->
  with_server ~workers:1 @@ fun endpoint _server ->
  let lines =
    [
      stall_check_line ~v:4 ~id:1 ~salt:9001 ();
      Printf.sprintf {|{"v": 4, "id": 2, "op": "ping"}|};
    ]
  in
  let responses = pipelined_exchange endpoint lines 2 in
  check_int "two responses" 2 (List.length responses);
  check_int "ping overtakes the stalled check" 2
    (response_id (List.nth responses 0));
  check_int "stalled check answers second" 1
    (response_id (List.nth responses 1));
  List.iter
    (fun line -> check_str "both ok" "ok" (response_code_of_line line))
    responses

let test_serial_clients_stay_ordered () =
  (* The same two requests declared at version 3 flow through the
     serial path: responses arrive in request order even though the
     first one stalls. *)
  with_stall 100 @@ fun () ->
  with_server ~workers:1 @@ fun endpoint _server ->
  let lines =
    [
      stall_check_line ~v:3 ~id:1 ~salt:9002 ();
      Printf.sprintf {|{"v": 3, "id": 2, "op": "ping"}|};
    ]
  in
  let responses = pipelined_exchange endpoint lines 2 in
  check_int "stalled check answers first" 1 (response_id (List.nth responses 0));
  check_int "ping answers second" 2 (response_id (List.nth responses 1))

let test_backpressure_inflight_cap () =
  (* max_inflight 2: with both slots stalled on the worker, further
     pipelined requests get a structured overloaded refusal while the
     earlier in-flight requests still complete. *)
  with_stall 200 @@ fun () ->
  with_server ~workers:2
    ~limits:{ Limits.default with Limits.max_inflight = 2 }
  @@ fun endpoint _server ->
  let lines =
    List.init 6 (fun i -> stall_check_line ~v:4 ~id:i ~salt:(9100 + i) ())
  in
  let responses = pipelined_exchange endpoint lines 6 in
  let codes = List.map response_code_of_line responses in
  let count code = List.length (List.filter (( = ) code) codes) in
  check_int "two in-flight complete" 2 (count "ok");
  check_int "four refused as overloaded" 4 (count "overloaded");
  (* The refusal message names the limit. *)
  List.iter
    (fun line ->
      if response_code_of_line line = "overloaded" then
        check "refusal names the limit" true
          (match Jsonx.parse line with
          | Ok json -> (
            match Protocol.response_error json with
            | Some (_, msg) ->
              msg = "connection is at its 2 in-flight request limit"
            | None -> false)
          | Error _ -> false))
    responses;
  (* Refusals are immediate; the stalled completions arrive last. *)
  check_str "refusal arrives before completions" "overloaded"
    (response_code_of_line (List.hd responses))

let test_deadline_under_pipelining () =
  (* A pipelined request's deadline fires while it is stalled on the
     worker; the connection survives and later requests are unharmed. *)
  with_stall 300 @@ fun () ->
  with_server ~workers:1 @@ fun endpoint _server ->
  let lines =
    [
      stall_check_line ~v:4 ~id:1 ~salt:9200 ~deadline_ms:20 ();
      Printf.sprintf {|{"v": 4, "id": 2, "op": "ping"}|};
    ]
  in
  let responses = pipelined_exchange endpoint lines 2 in
  let by_id id =
    List.find (fun line -> response_id line = id) responses
  in
  check_str "stalled request times out" "timeout"
    (response_code_of_line (by_id 1));
  check "timeout names the deadline" true
    (match Jsonx.parse (by_id 1) with
    | Ok json -> (
      match Protocol.response_error json with
      | Some (_, msg) -> msg = "request exceeded its 20 ms deadline"
      | None -> false)
    | Error _ -> false);
  check_str "later request unharmed" "ok" (response_code_of_line (by_id 2))

let test_mid_pipeline_disconnect () =
  (* A client that floods pipelined requests and vanishes must not hurt
     the server or other connections. *)
  with_stall 100 @@ fun () ->
  with_server ~workers:1 @@ fun endpoint _server ->
  (match Client.connect ~retry_for:5. endpoint with
  | Error msg -> Alcotest.fail msg
  | Ok client ->
    let fd = Client.fd client in
    List.iter
      (fun i -> ignore (Conn.write_line fd (stall_check_line ~v:4 ~id:i ~salt:(9300 + i) ())))
      [ 0; 1; 2; 3; 4 ];
    (* Vanish with everything still in flight. *)
    Client.close client);
  (* The server keeps serving. *)
  with_conn endpoint (fun client ->
      let* () = Client.ping client in
      let stats = fail_result (Client.stats client) in
      check "server still answers stats" true
        (stat_int [ "counters"; "requests" ] stats >= 1);
      Ok ())

let test_oversized_mid_pipeline () =
  (* An oversized line between two pipelined requests gets its own
     structured refusal and the connection keeps going. *)
  with_server
    ~limits:{ Limits.default with Limits.max_request_bytes = 512 }
  @@ fun endpoint _server ->
  let lines =
    [
      {|{"v": 4, "id": 1, "op": "ping"}|};
      String.concat ""
        [ {|{"v": 4, "id": 99, "op": "check", "program": "|};
          String.make 2048 'x'; {|"}|} ];
      {|{"v": 4, "id": 2, "op": "ping"}|};
    ]
  in
  let responses = pipelined_exchange endpoint lines 3 in
  let codes = List.map response_code_of_line responses in
  let count code = List.length (List.filter (( = ) code) codes) in
  check_int "two pings ok" 2 (count "ok");
  check_int "one oversized refusal" 1 (count "oversized")

let test_oracle_engines_agree () =
  (* The acceptance oracle: a 500-request seeded stream replayed
     serially against the legacy engine and pipelined against the
     sharded engine produces byte-identical responses per id. *)
  match Ifc_server.Oracle.run ~requests:500 () with
  | Error msg -> Alcotest.fail msg
  | Ok r ->
    check_int "all requests compared" 500 r.Ifc_server.Oracle.compared;
    (match r.Ifc_server.Oracle.divergences with
    | [] -> ()
    | d :: _ ->
      Alcotest.failf "engines diverged at id %d:\n  request %s\n  legacy  %s\n  sharded %s"
        d.Ifc_server.Oracle.id d.Ifc_server.Oracle.request
        d.Ifc_server.Oracle.legacy d.Ifc_server.Oracle.sharded)

(* QCheck: on a pipelined connection, every request is answered exactly
   once with a response correlated to its id and carrying its op — no
   cross-talk — whatever the shard count. *)
let pipelined_framing_test ~shards =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 1 25) (pair (int_range 0 3) (int_range 0 5)))
        (int_range 1 6))
  in
  let prop (ops, window) =
    with_server ~workers:1 ~shards (fun endpoint _server ->
        let op_name = function
          | 0 -> "ping"
          | 1 -> "check"
          | 2 -> "cert"
          | _ -> "lint"
        in
        let line i (op, variant) =
          match op with
          | 0 -> Printf.sprintf {|{"v": 4, "id": %d, "op": "ping"}|} i
          | op ->
            Printf.sprintf {|{"v": 4, "id": %d, "op": "%s", "program": %s}|} i
              (op_name op)
              (J.json_to_string
                 (J.String (Ifc_server.Loadgen.program_variant variant)))
        in
        let requests = List.mapi line ops in
        (* Window-limited send interleaved with reads, like a real
           pipelined client. *)
        let responses =
          fail_result
            (Client.with_client ~retry_for:5. endpoint (fun client ->
                 let fd = Client.fd client and reader = Client.reader client in
                 let todo = ref requests
                 and inflight = ref 0
                 and got = ref [] in
                 let send () =
                   while !inflight < window && !todo <> [] do
                     (match !todo with
                     | line :: rest ->
                       if not (Conn.write_line fd line) then
                         Alcotest.fail "write failed";
                       todo := rest;
                       incr inflight
                     | [] -> ())
                   done
                 in
                 send ();
                 while List.length !got < List.length requests do
                   (match Conn.next_line reader with
                   | `Line l ->
                     got := l :: !got;
                     decr inflight
                   | _ -> Alcotest.fail "connection broke mid-stream");
                   send ()
                 done;
                 Ok !got))
        in
        (* Exactly one response per id, each echoing its request's op. *)
        let expected = List.mapi (fun i (op, _) -> (i, op_name op)) ops in
        List.length responses = List.length expected
        && List.for_all
             (fun (i, op) ->
               List.length
                 (List.filter
                    (fun line ->
                      response_id line = i
                      && (match Jsonx.parse line with
                         | Ok json ->
                           Jsonx.mem_string "op" json = Some op
                           && Protocol.response_ok json
                         | Error _ -> false))
                    responses)
               = 1)
             expected)
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:(Printf.sprintf "pipelined framing (%d shard%s)" shards
                (if shards = 1 then "" else "s"))
       ~count:6
       (QCheck.make gen) prop)

(* ------------------------------------------------------------------ *)

let quick name f = Alcotest.test_case name `Quick f

let suite =
  ( "server",
    [
      quick "jsonx round-trips values" test_jsonx_roundtrip_values;
      quick "jsonx round-trips escaping" test_jsonx_roundtrip_escaping;
      quick "jsonx decodes unicode escapes" test_jsonx_unicode_escapes;
      quick "jsonx rejects malformed input" test_jsonx_rejects;
      quick "jsonx accessors" test_jsonx_accessors;
      quick "latency histogram" test_histogram;
      quick "sink flushes whole lines" test_sink_flushes_every_event;
      quick "with_sink closes on raise" test_with_sink_closes_on_raise;
      quick "protocol parsing" test_protocol_parse;
      quick "concurrent clients match sequential" test_concurrent_matches_sequential;
      quick "timeout spares other requests" test_timeout_spares_other_requests;
      quick "expired queued job is cancelled" test_expired_queued_job_is_cancelled;
      quick "malformed requests keep the connection" test_malformed_requests_keep_connection;
      quick "oversized request keeps the connection" test_oversized_request_keeps_connection;
      quick "connection cap answers overloaded" test_connection_cap_answers_overloaded;
      quick "cert emit and check over the wire" test_cert_over_the_wire;
      quick "lint over the wire" test_lint_over_the_wire;
      quick "version-1 clients unaffected" test_v1_clients_unaffected;
      quick "tcp endpoint with ephemeral port" test_tcp_endpoint;
      quick "sigterm drains in-flight requests" test_sigterm_drains_in_flight;
      quick "stats and warm cache" test_stats_and_warm_cache;
      quick "version gate exhaustive" test_version_gate_exhaustive;
      quick "modsys ops over the wire" test_modsys_ops;
      quick "FD_SETSIZE guard" test_fd_setsize_guard;
      quick "pipelined responses out of order" test_pipelined_out_of_order;
      quick "serial clients stay ordered" test_serial_clients_stay_ordered;
      quick "backpressure refuses over max-inflight" test_backpressure_inflight_cap;
      quick "deadline fires under pipelining" test_deadline_under_pipelining;
      quick "mid-pipeline disconnect is harmless" test_mid_pipeline_disconnect;
      quick "oversized mid-pipeline request" test_oversized_mid_pipeline;
      quick "differential oracle: engines agree" test_oracle_engines_agree;
      pipelined_framing_test ~shards:1;
      pipelined_framing_test ~shards:2;
      pipelined_framing_test ~shards:4;
    ] )
