(* Tests for the flow logic: class expressions, assertions, entailment,
   the Figure 1 proof checker, the Theorem 1 generator, and the Theorem
   1+2 equivalence with CFM. *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Ast = Ifc_lang.Ast
module Parser = Ifc_lang.Parser
module Gen = Ifc_lang.Gen
module Prng = Ifc_support.Prng
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Cexpr = Ifc_logic.Cexpr
module Assertion = Ifc_logic.Assertion
module Entail = Ifc_logic.Entail
module Proof = Ifc_logic.Proof
module Check = Ifc_logic.Check
module Generate = Ifc_logic_gen.Generate
module Invariance = Ifc_logic_gen.Invariance

let check = Alcotest.(check bool)

let two = Chain.two

let low = two.Lattice.bottom

let high = two.Lattice.top

let stmt src =
  match Parser.parse_stmt src with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let binding pairs = Binding.make two pairs

(* ------------------------------------------------------------------ *)
(* Class expressions *)

let test_cexpr_normalize () =
  let e =
    Cexpr.Join
      ( Cexpr.Join (Cexpr.Cls "x", Cexpr.Const low),
        Cexpr.Join (Cexpr.Local, Cexpr.Join (Cexpr.Cls "x", Cexpr.Const high)) )
  in
  let n = Cexpr.normalize two e in
  Alcotest.(check int) "const folded" high n.Cexpr.const;
  Alcotest.(check int) "two atoms" 2 (List.length n.Cexpr.atoms);
  check "normal form roundtrip" true (Cexpr.equal two e (Cexpr.of_normal n))

let test_cexpr_equal_modulo_assoc () =
  let a = Cexpr.Join (Cexpr.Cls "x", Cexpr.Join (Cexpr.Cls "y", Cexpr.Local)) in
  let b = Cexpr.Join (Cexpr.Join (Cexpr.Local, Cexpr.Cls "y"), Cexpr.Cls "x") in
  check "assoc/comm equality" true (Cexpr.equal two a b);
  check "idempotence" true (Cexpr.equal two a (Cexpr.Join (a, a)));
  check "different" false (Cexpr.equal two a (Cexpr.Cls "x"))

let test_cexpr_subst_simultaneous () =
  (* [x <- y, y <- x] must swap, not chain. *)
  let e = Cexpr.Join (Cexpr.Cls "x", Cexpr.Cls "y") in
  let sigma = function
    | Cexpr.S_cls "x" -> Some (Cexpr.Cls "y")
    | Cexpr.S_cls "y" -> Some (Cexpr.Cls "x")
    | _ -> None
  in
  check "swap" true (Cexpr.equal two (Cexpr.subst sigma e) e);
  let e2 = Cexpr.subst sigma (Cexpr.Cls "x") in
  check "x becomes y" true (Cexpr.equal two e2 (Cexpr.Cls "y"))

let test_cexpr_of_expr () =
  let e =
    match Parser.parse_expr "x + 3 * y" with Ok e -> e | Error _ -> Alcotest.fail "parse"
  in
  let c = Cexpr.of_expr two e in
  check "class of expr" true
    (Cexpr.equal two c (Cexpr.Join (Cexpr.Cls "x", Cexpr.Cls "y")))

let test_cexpr_eval () =
  let env = function
    | Cexpr.S_cls "x" -> high
    | Cexpr.S_cls _ -> low
    | Cexpr.S_local -> low
    | Cexpr.S_global -> low
  in
  Alcotest.(check int) "eval join" high
    (Cexpr.eval two env (Cexpr.Join (Cexpr.Cls "x", Cexpr.Local)));
  Alcotest.(check int) "eval const" low (Cexpr.eval two env (Cexpr.Const low))

(* ------------------------------------------------------------------ *)
(* Assertions *)

let policy_xy = Assertion.policy (binding [ ("x", high); ("y", low) ]) [ "x"; "y" ]

let test_assertion_triple () =
  let a =
    Assertion.of_triple
      { Assertion.v = policy_xy; l = Cexpr.Const low; g = Cexpr.Const high }
  in
  match Assertion.triple_of two a with
  | None -> Alcotest.fail "triple_of failed"
  | Some t ->
    check "v recovered" true (Assertion.equal two t.Assertion.v policy_xy);
    check "l recovered" true (Cexpr.equal two t.Assertion.l (Cexpr.Const low));
    check "g recovered" true (Cexpr.equal two t.Assertion.g (Cexpr.Const high))

let test_assertion_triple_rejects_mixed () =
  (* local occurring in a V atom breaks the {V,L,G} form. *)
  let bad =
    [ Assertion.atom (Cexpr.Join (Cexpr.Cls "x", Cexpr.Local)) (Cexpr.Const high);
      Assertion.atom Cexpr.Local (Cexpr.Const low);
      Assertion.atom Cexpr.Global (Cexpr.Const low) ]
  in
  check "rejected" true (Assertion.triple_of two bad = None);
  (* missing global bound *)
  let missing = [ Assertion.atom Cexpr.Local (Cexpr.Const low) ] in
  check "missing bound rejected" true (Assertion.triple_of two missing = None)

let test_assertion_equal_unordered () =
  let a = policy_xy and b = List.rev policy_xy in
  check "order irrelevant" true (Assertion.equal two a b);
  check "duplicates irrelevant" true (Assertion.equal two a (a @ a))

let test_assertion_holds () =
  let env = function
    | Cexpr.S_cls "x" -> high
    | _ -> low
  in
  check "x<=high, y<=low holds" true (Assertion.holds two env policy_xy);
  let env_bad = fun _ -> high in
  check "y=high violates" false (Assertion.holds two env_bad policy_xy)

(* ------------------------------------------------------------------ *)
(* Entailment *)

let atom l r = Assertion.atom l r

let test_entail_basic () =
  let hyps =
    [ atom (Cexpr.Cls "x") (Cexpr.Const low); atom Cexpr.Local (Cexpr.Const low) ]
  in
  check "join of lows" true
    (Entail.check two hyps
       [ atom (Cexpr.Join (Cexpr.Cls "x", Cexpr.Local)) (Cexpr.Const low) ]);
  check "cannot raise" false
    (Entail.check two [ atom (Cexpr.Cls "x") (Cexpr.Const high) ]
       [ atom (Cexpr.Cls "x") (Cexpr.Const low) ])

let test_entail_chaining () =
  (* x <= local, local <= low |- x <= low: via the hypothesis chain. *)
  let hyps =
    [ atom (Cexpr.Cls "x") Cexpr.Local; atom Cexpr.Local (Cexpr.Const low) ]
  in
  check "chain" true (Entail.check two hyps [ atom (Cexpr.Cls "x") (Cexpr.Const low) ])

let test_entail_join_ub () =
  (* |- x <= x (+) y without hypotheses. *)
  check "join upper bound" true
    (Entail.check two []
       [ atom (Cexpr.Cls "x") (Cexpr.Join (Cexpr.Cls "x", Cexpr.Cls "y")) ])

let test_entail_cycle_safe () =
  (* x <= y, y <= x must terminate (and prove x <= y). *)
  let hyps = [ atom (Cexpr.Cls "x") (Cexpr.Cls "y"); atom (Cexpr.Cls "y") (Cexpr.Cls "x") ] in
  check "terminates, proves" true (Entail.check two hyps [ atom (Cexpr.Cls "x") (Cexpr.Cls "y") ]);
  check "terminates, rejects" false
    (Entail.check two hyps [ atom (Cexpr.Cls "x") (Cexpr.Const low) ])

let test_decide_complete () =
  (* decide is complete: x <= y, y <= z |- x <= z even written with joins
     the syntactic checker handles too. *)
  let hyps = [ atom (Cexpr.Cls "x") (Cexpr.Cls "y"); atom (Cexpr.Cls "y") (Cexpr.Cls "z") ] in
  (match Entail.decide two hyps [ atom (Cexpr.Cls "x") (Cexpr.Cls "z") ] with
  | Ok b -> check "transitive" true b
  | Error e -> Alcotest.fail e);
  match Entail.decide two [] [ atom (Cexpr.Cls "x") (Cexpr.Const low) ] with
  | Ok b -> check "unconstrained is not low" false b
  | Error e -> Alcotest.fail e

let test_decide_limit () =
  let many = List.init 40 (fun i -> atom (Cexpr.Cls (Printf.sprintf "v%d" i)) (Cexpr.Const low)) in
  check "limit reported" true (Result.is_error (Entail.decide ~max_valuations:100 two many many))

(* qcheck: the syntactic checker is sound w.r.t. the complete decider. *)
let qcheck_entail_sound =
  let gen_cexpr =
    QCheck.Gen.(
      sized_size (int_bound 4) (fix (fun self n ->
          if n <= 0 then
            oneof
              [ map (fun b -> Cexpr.Const (if b then high else low)) bool;
                oneofl [ Cexpr.Cls "x"; Cexpr.Cls "y"; Cexpr.Local; Cexpr.Global ] ]
          else map2 (fun a b -> Cexpr.Join (a, b)) (self (n / 2)) (self (n / 2)))))
  in
  let gen_atom = QCheck.Gen.map2 atom gen_cexpr gen_cexpr in
  let gen_assertion = QCheck.Gen.(list_size (int_bound 4) gen_atom) in
  let arb = QCheck.make QCheck.Gen.(pair gen_assertion gen_assertion) in
  QCheck.Test.make ~name:"syntactic entailment sound wrt complete" ~count:1000 arb
    (fun (hyps, goals) ->
      if Entail.check two hyps goals then
        match Entail.decide two hyps goals with
        | Ok b -> b
        | Error _ -> QCheck.assume_fail ()
      else true)
  |> QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Proof checker on hand-built proofs *)

let const c = Cexpr.Const c

let bounds_lg l g rest = rest @ [ atom Cexpr.Local (const l); atom Cexpr.Global (const g) ]

let test_check_52_manual_proof () =
  (* The §5.2 proof that begin x := 0; y := x end preserves the policy
     x<=high, y<=low — a proof CFM has no counterpart for. *)
  let s = stmt "begin x := 0; y := x end" in
  let s1, s2 =
    match s.Ast.node with Ast.Seq [ a; b ] -> (a, b) | _ -> Alcotest.fail "shape"
  in
  let p_pre =
    bounds_lg low low
      [ atom (Cexpr.Cls "x") (const high); atom (Cexpr.Cls "y") (const low) ]
  in
  let mid =
    bounds_lg low low
      [ atom (Cexpr.Cls "x") (const low); atom (Cexpr.Cls "y") (const low) ]
  in
  (* x := 0 : axiom pre is mid[x <- low(+)local(+)global]. *)
  let sigma_x = function
    | Cexpr.S_cls "x" ->
      Some (Cexpr.Join (const low, Cexpr.Join (Cexpr.Local, Cexpr.Global)))
    | _ -> None
  in
  let ax1 =
    Proof.make ~pre:(Assertion.subst sigma_x mid) ~stmt:s1 ~post:mid Proof.Axiom_assign
  in
  let p1 = Proof.make ~pre:p_pre ~stmt:s1 ~post:mid (Proof.Consequence ax1) in
  let sigma_y = function
    | Cexpr.S_cls "y" ->
      Some (Cexpr.Join (Cexpr.Cls "x", Cexpr.Join (Cexpr.Local, Cexpr.Global)))
    | _ -> None
  in
  let ax2 =
    Proof.make ~pre:(Assertion.subst sigma_y mid) ~stmt:s2 ~post:mid Proof.Axiom_assign
  in
  let p2 = Proof.make ~pre:mid ~stmt:s2 ~post:mid (Proof.Consequence ax2) in
  let whole = Proof.make ~pre:p_pre ~stmt:s ~post:mid (Proof.Composition [ p1; p2 ]) in
  (match Check.check two whole with
  | Ok () -> ()
  | Error es -> Alcotest.failf "checker rejected: %a" (Fmt.list Check.pp_error) es);
  (* And CFM indeed cannot certify it (tested in Test_cfm too). *)
  check "CFM rejects" false
    (Cfm.certified (binding [ ("x", high); ("y", low) ]) s);
  (* The proof strengthens the policy mid-stream, so it is NOT completely
     invariant — exactly the paper's point. *)
  check "not completely invariant" false
    (Proof.completely_invariant two ~invariant:p_pre whole)

let test_check_rejects_bogus_axiom () =
  (* {y<=low} x := y {y<=low, x<=low} with x high into low and a pre that
     does not match the substitution: must be rejected. *)
  let s = stmt "x := y" in
  let post =
    bounds_lg low low
      [ atom (Cexpr.Cls "x") (const low); atom (Cexpr.Cls "y") (const high) ]
  in
  let bogus = Proof.make ~pre:post ~stmt:s ~post Proof.Axiom_assign in
  check "rejected" false (Check.valid two bogus)

let test_check_rejects_wrong_shape () =
  let s = stmt "x := y" in
  let a = bounds_lg low low [] in
  let bogus = Proof.make ~pre:a ~stmt:s ~post:a Proof.Axiom_wait in
  check "wait rule on assign rejected" false (Check.valid two bogus)

let test_check_rejects_false_consequence () =
  let s = stmt "x := 1" in
  let weak = bounds_lg low low [ atom (Cexpr.Cls "x") (const high) ] in
  let strong = bounds_lg low low [ atom (Cexpr.Cls "x") (const low) ] in
  (* x<=high |- x<=low is false; consequence must fail. *)
  let sigma = function
    | Cexpr.S_cls "x" ->
      Some (Cexpr.Join (const low, Cexpr.Join (Cexpr.Local, Cexpr.Global)))
    | _ -> None
  in
  let ax = Proof.make ~pre:(Assertion.subst sigma weak) ~stmt:s ~post:weak Proof.Axiom_assign in
  let bad = Proof.make ~pre:(Assertion.subst sigma weak) ~stmt:s ~post:strong (Proof.Consequence ax) in
  check "rejected" false (Check.valid two bad)

(* Structural-rule rejections: mutate a valid generated proof in each of
   the ways the rules forbid and confirm the checker objects. *)

let test_check_rejects_mutated_structures () =
  (* A valid generated fixture must check (guards the fixtures below)... *)
  let fixture = Generate.theorem1 (binding [ ("x", high) ]) (stmt "while x > 0 do x := x - 1") in
  (match Check.check two fixture with
  | Ok () -> ()
  | Error es -> Alcotest.failf "fixture proof invalid: %a" (Fmt.list Check.pp_error) es);
  (* ... while an iteration whose body is not an invariant is refused. *)
  let body = stmt "x := x - 1" in
  let whole = stmt "while x > 0 do x := x - 1" in
  let a_pre = bounds_lg low low [ atom (Cexpr.Cls "x") (const high) ] in
  let a_post = bounds_lg low high [ atom (Cexpr.Cls "x") (const high) ] in
  let body_proof = Proof.make ~pre:a_pre ~stmt:body ~post:a_post Proof.Axiom_assign in
  let broken =
    Proof.make ~pre:a_pre ~stmt:whole ~post:a_post (Proof.Iteration body_proof)
  in
  check "non-invariant body rejected" false (Check.valid two broken)

let test_check_rejects_composition_gaps () =
  (* Adjacent post/pre mismatch inside a composition. *)
  let s = stmt "begin x := 1; x := 2 end" in
  let s1, s2 =
    match s.Ast.node with Ast.Seq [ a; b ] -> (a, b) | _ -> Alcotest.fail "shape"
  in
  let p_low = bounds_lg low low [ atom (Cexpr.Cls "x") (const low) ] in
  let p_high = bounds_lg low low [ atom (Cexpr.Cls "x") (const high) ] in
  let sigma = function
    | Cexpr.S_cls "x" ->
      Some (Cexpr.Join (const low, Cexpr.Join (Cexpr.Local, Cexpr.Global)))
    | _ -> None
  in
  let ax1 = Proof.make ~pre:(Assertion.subst sigma p_low) ~stmt:s1 ~post:p_low Proof.Axiom_assign in
  let ax2 = Proof.make ~pre:(Assertion.subst sigma p_high) ~stmt:s2 ~post:p_high Proof.Axiom_assign in
  (* ax1 ends at {x<=low,...}; ax2 begins at a *different* assertion. *)
  let broken =
    Proof.make ~pre:ax1.Proof.pre ~stmt:s ~post:p_high (Proof.Composition [ ax1; ax2 ])
  in
  check "post/pre gap rejected" false (Check.valid two broken);
  (* Arity mismatch. *)
  let broken2 =
    Proof.make ~pre:ax1.Proof.pre ~stmt:s ~post:p_low (Proof.Composition [ ax1 ])
  in
  check "arity mismatch rejected" false (Check.valid two broken2)

let test_check_rejects_alternation_violations () =
  (* Branch proofs that disagree on their postconditions. *)
  let s = stmt "if c = 0 then x := 1 else x := 2" in
  let s1, s2 =
    match s.Ast.node with Ast.If (_, a, b) -> (a, b) | _ -> Alcotest.fail "shape"
  in
  let post1 = bounds_lg low low [ atom (Cexpr.Cls "x") (const low) ] in
  let post2 = bounds_lg low low [ atom (Cexpr.Cls "x") (const high) ] in
  let sigma post = Assertion.subst (function
    | Cexpr.S_cls "x" ->
      Some (Cexpr.Join (const low, Cexpr.Join (Cexpr.Local, Cexpr.Global)))
    | _ -> None) post
  in
  let p1 = Proof.make ~pre:(sigma post1) ~stmt:s1 ~post:post1 Proof.Axiom_assign in
  let p2 = Proof.make ~pre:(sigma post2) ~stmt:s2 ~post:post2 Proof.Axiom_assign in
  let broken =
    Proof.make ~pre:(sigma post1) ~stmt:s ~post:post1 (Proof.Alternation (p1, p2))
  in
  check "disagreeing branch posts rejected" false (Check.valid two broken)

let test_check_rejects_interference () =
  (* Two processes sharing x: one asserts x <= low invariantly, the other
     assigns high data to x. The concurrency rule's interference check
     must refuse. *)
  let s = stmt "cobegin y := x || x := h coend" in
  let s1, s2 =
    match s.Ast.node with Ast.Cobegin [ a; b ] -> (a, b) | _ -> Alcotest.fail "shape"
  in
  let v1 = [ atom (Cexpr.Cls "x") (const low); atom (Cexpr.Cls "y") (const low) ] in
  let v2 = [ atom (Cexpr.Cls "h") (const high); atom (Cexpr.Cls "x") (const high) ] in
  let tri v = bounds_lg low low v in
  let sigma_y p = Assertion.subst (function
    | Cexpr.S_cls "y" ->
      Some (Cexpr.Join (Cexpr.Cls "x", Cexpr.Join (Cexpr.Local, Cexpr.Global)))
    | _ -> None) p
  in
  let sigma_x p = Assertion.subst (function
    | Cexpr.S_cls "x" ->
      Some (Cexpr.Join (Cexpr.Cls "h", Cexpr.Join (Cexpr.Local, Cexpr.Global)))
    | _ -> None) p
  in
  let p1_post = tri v1 in
  let p1 = Proof.make ~pre:(sigma_y p1_post) ~stmt:s1 ~post:p1_post Proof.Axiom_assign in
  let p1 = Proof.make ~pre:(tri v1) ~stmt:s1 ~post:p1_post (Proof.Consequence p1) in
  let p2_post = tri v2 in
  let p2 = Proof.make ~pre:(sigma_x p2_post) ~stmt:s2 ~post:p2_post Proof.Axiom_assign in
  let p2 = Proof.make ~pre:(tri v2) ~stmt:s2 ~post:p2_post (Proof.Consequence p2) in
  let whole =
    Proof.make ~pre:(tri (v1 @ v2)) ~stmt:s ~post:(tri (v1 @ v2))
      (Proof.Concurrency [ p1; p2 ])
  in
  (* The x <= low assertion in process 1 is NOT preserved by x := h. With
     the interference check on, the proof must fail; trusting it, the
     (unsound) proof would pass the remaining shape checks. *)
  check "interference detected" false
    (Result.is_ok (Check.check ~interference:`Check two whole));
  check "trust mode skips the check" true
    (Result.is_ok (Check.check ~interference:`Trust two whole))

(* ------------------------------------------------------------------ *)
(* Theorem 1 generator *)

let all_two_bindings vars =
  let rec go = function
    | [] -> [ [] ]
    | v :: rest ->
      let tails = go rest in
      List.concat_map (fun t -> [ (v, low) :: t; (v, high) :: t ]) tails
  in
  go vars

let test_generate_simple_certified () =
  let s = stmt "begin x := 1; y := x end" in
  let b = binding [ ("x", low); ("y", high) ] in
  match Invariance.witness b s with
  | Error es -> Alcotest.failf "rejected: %a" (Fmt.list Check.pp_error) es
  | Ok proof ->
    check "completely invariant" true
      (Proof.completely_invariant two ~invariant:(Generate.invariant_of b s) proof)

let test_generate_uncertified_fails_check () =
  let s = stmt "y := x" in
  let b = binding [ ("x", high); ("y", low) ] in
  check "CFM rejects" false (Cfm.certified b s);
  check "generated proof fails the checker" false (Invariance.decide b s)

let test_generate_fig3 () =
  let s = Ifc_core.Paper.fig3.Ast.body in
  let vars = Ifc_core.Paper.fig3_vars in
  (* All-high binding certifies; its Theorem-1 proof must check, cobegin
     interference freedom included. *)
  let b_ok = binding (List.map (fun v -> (v, high)) vars) in
  (match Invariance.witness b_ok s with
  | Ok proof ->
    check "invariant" true
      (Proof.completely_invariant two ~invariant:(Generate.invariant_of b_ok s) proof)
  | Error es -> Alcotest.failf "fig3 all-high rejected: %a" (Fmt.list Check.pp_error) es);
  (* x high, rest low: uncertified, so the proof must fail. *)
  let b_leak = binding (("x", high) :: List.map (fun v -> (v, low)) (List.tl vars)) in
  check "leaky binding fails" false (Invariance.decide b_leak s)

let test_theorem1_all_l_g () =
  (* For a certified S, the proof exists for every l, g with
     l (+) g <= mod(S). For l (+) g not below mod(S) nothing is claimed,
     but our construction may still fail — only check the promised side. *)
  let s = stmt "begin wait(sem); y := 1 end" in
  let b = binding [ ("sem", high); ("y", high) ] in
  let mod_s = Cfm.mod_of b s in
  List.iter
    (fun l ->
      List.iter
        (fun g ->
          if two.Lattice.leq (two.Lattice.join l g) mod_s then
            check
              (Printf.sprintf "l=%s g=%s" (two.Lattice.to_string l) (two.Lattice.to_string g))
              true
              (Invariance.decide_at ~l ~g b s))
        two.Lattice.elements)
    two.Lattice.elements

(* ------------------------------------------------------------------ *)
(* The headline property: Theorems 1 + 2 — generated-proof-checks iff
   CFM-certified, over random programs and bindings. *)

let random_binding rng lattice s =
  let arr = Array.of_list lattice.Lattice.elements in
  let vars = Ifc_lang.Vars.all_vars s in
  Binding.make lattice
    (List.map
       (fun v -> (v, arr.(Prng.int rng (Array.length arr))))
       (Ifc_support.Sset.elements vars))

let theorem_equivalence_case lattice seed count name =
  Alcotest.test_case name `Quick (fun () ->
      let rng = Prng.create seed in
      let certified = ref 0 in
      for i = 1 to count do
        let p = Gen.program rng Gen.default ~size:(1 + (i mod 25)) in
        let b = random_binding rng lattice p.Ast.body in
        let cert = Cfm.certified b p.Ast.body in
        if cert then incr certified;
        let proof_ok = Invariance.decide b p.Ast.body in
        if cert <> proof_ok then
          Alcotest.failf "divergence (cert=%b proof=%b) on:@.%s@.binding: %a" cert
            proof_ok
            (Ifc_lang.Pretty.program_to_string p)
            Binding.pp b
      done;
      (* Guard against a vacuous test run. *)
      check "some programs certified" true (!certified > 0))

let equivalence_cases =
  [
    theorem_equivalence_case two 101 250 "thm1+2 equivalence (two-point)";
    theorem_equivalence_case Chain.four 202 150 "thm1+2 equivalence (four-chain)";
    theorem_equivalence_case
      (Ifc_lattice.Product.make Chain.two (Ifc_lattice.Powerset.make [ "a"; "b" ]))
      303 150 "thm1+2 equivalence (two x powerset)";
  ]

let test_generated_proofs_completely_invariant () =
  let rng = Prng.create 404 in
  for i = 1 to 100 do
    let p = Gen.program rng Gen.default ~size:(1 + (i mod 20)) in
    let b = random_binding rng two p.Ast.body in
    if Cfm.certified b p.Ast.body then
      match Invariance.witness b p.Ast.body with
      | Error es -> Alcotest.failf "rejected: %a" (Fmt.list Check.pp_error) es
      | Ok proof ->
        check "completely invariant" true
          (Proof.completely_invariant two
             ~invariant:(Generate.invariant_of b p.Ast.body)
             proof)
  done

let test_checker_complete_entailer_agrees () =
  (* On small certified programs the complete entailer must agree with the
     syntactic one. *)
  let rng = Prng.create 505 in
  for i = 1 to 60 do
    let p = Gen.program rng { Gen.default with vars = [ "x"; "y" ]; sems = [ "s" ] }
        ~size:(1 + (i mod 8))
    in
    let b = random_binding rng two p.Ast.body in
    let proof = Generate.theorem1 b p.Ast.body in
    let syntactic = Check.valid ~entailer:`Syntactic two proof in
    let complete = Check.valid ~entailer:`Complete two proof in
    if syntactic <> complete then
      Alcotest.failf "entailer divergence on:@.%s" (Ifc_lang.Pretty.program_to_string p)
  done

let test_proof_size_linear () =
  (* The derivation has O(|S|) rule applications — the efficiency claim
     carries over to proof generation. *)
  let rng = Prng.create 606 in
  List.iter
    (fun size ->
      let p = Gen.program rng Gen.default ~size in
      let b = random_binding rng two p.Ast.body in
      let proof = Generate.theorem1 b p.Ast.body in
      let stmts = (Ifc_lang.Metrics.of_program p).Ifc_lang.Metrics.statements in
      check
        (Printf.sprintf "size %d: %d nodes for %d stmts" size (Proof.size proof) stmts)
        true
        (Proof.size proof <= (3 * stmts) + 3))
    [ 10; 50; 200 ]

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_pp_smoke () =
  let s = stmt "begin wait(s); y := 1 end" in
  let b = binding [ ("s", low); ("y", low) ] in
  let proof = Generate.theorem1 b s in
  let rendered = Fmt.str "%a" (Proof.pp two) proof in
  check "renders something" true (String.length rendered > 50);
  check "mentions composition" true (contains rendered "composition")

let suite =
  ( "logic",
    [
      Alcotest.test_case "cexpr normalize" `Quick test_cexpr_normalize;
      Alcotest.test_case "cexpr equality" `Quick test_cexpr_equal_modulo_assoc;
      Alcotest.test_case "cexpr simultaneous subst" `Quick test_cexpr_subst_simultaneous;
      Alcotest.test_case "cexpr of_expr" `Quick test_cexpr_of_expr;
      Alcotest.test_case "cexpr eval" `Quick test_cexpr_eval;
      Alcotest.test_case "assertion triple" `Quick test_assertion_triple;
      Alcotest.test_case "assertion triple rejects mixed" `Quick
        test_assertion_triple_rejects_mixed;
      Alcotest.test_case "assertion equal unordered" `Quick test_assertion_equal_unordered;
      Alcotest.test_case "assertion holds" `Quick test_assertion_holds;
      Alcotest.test_case "entail basic" `Quick test_entail_basic;
      Alcotest.test_case "entail chaining" `Quick test_entail_chaining;
      Alcotest.test_case "entail join ub" `Quick test_entail_join_ub;
      Alcotest.test_case "entail cycle safe" `Quick test_entail_cycle_safe;
      Alcotest.test_case "decide complete" `Quick test_decide_complete;
      Alcotest.test_case "decide limit" `Quick test_decide_limit;
      qcheck_entail_sound;
      Alcotest.test_case "5.2 manual proof checks" `Quick test_check_52_manual_proof;
      Alcotest.test_case "checker rejects bogus axiom" `Quick
        test_check_rejects_bogus_axiom;
      Alcotest.test_case "checker rejects wrong shape" `Quick test_check_rejects_wrong_shape;
      Alcotest.test_case "checker rejects false consequence" `Quick
        test_check_rejects_false_consequence;
      Alcotest.test_case "checker rejects broken iteration" `Quick
        test_check_rejects_mutated_structures;
      Alcotest.test_case "checker rejects composition gaps" `Quick
        test_check_rejects_composition_gaps;
      Alcotest.test_case "checker rejects alternation violations" `Quick
        test_check_rejects_alternation_violations;
      Alcotest.test_case "checker detects interference" `Quick
        test_check_rejects_interference;
      Alcotest.test_case "generate simple certified" `Quick test_generate_simple_certified;
      Alcotest.test_case "generate uncertified fails" `Quick
        test_generate_uncertified_fails_check;
      Alcotest.test_case "generate fig3" `Quick test_generate_fig3;
      Alcotest.test_case "theorem1 all l,g" `Quick test_theorem1_all_l_g;
      Alcotest.test_case "generated proofs completely invariant" `Quick
        test_generated_proofs_completely_invariant;
      Alcotest.test_case "entailers agree on generated proofs" `Quick
        test_checker_complete_entailer_agrees;
      Alcotest.test_case "proof size linear" `Quick test_proof_size_linear;
      Alcotest.test_case "proof pp smoke" `Quick test_pp_smoke;
    ]
    @ equivalence_cases )
