(* Tests for the operational semantics: evaluation, stepping, schedulers,
   exhaustive exploration, the dynamic taint monitor, and the
   noninterference tester — including semantic validation of the paper's
   Figure 3 claims. *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Ast = Ifc_lang.Ast
module Parser = Ifc_lang.Parser
module Gen = Ifc_lang.Gen
module Prng = Ifc_support.Prng
module Smap = Ifc_support.Smap
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Paper = Ifc_core.Paper
module Eval = Ifc_exec.Eval
module Task = Ifc_exec.Task
module Step = Ifc_exec.Step
module Scheduler = Ifc_exec.Scheduler
module Explore = Ifc_exec.Explore
module Taint = Ifc_exec.Taint
module Ni = Ifc_exec.Noninterference

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let two = Chain.two

let low = two.Lattice.bottom

let high = two.Lattice.top

let program src =
  match Parser.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let expr src =
  match Parser.parse_expr src with
  | Ok e -> e
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

(* ------------------------------------------------------------------ *)
(* Evaluation *)

let test_eval_arith () =
  let st = Eval.env_of_list [ ("x", 7); ("y", 2) ] in
  check_int "add" 9 (Eval.expr st (expr "x + y"));
  check_int "mul" 14 (Eval.expr st (expr "x * y"));
  check_int "div" 3 (Eval.expr st (expr "x / y"));
  check_int "mod" 1 (Eval.expr st (expr "x % y"));
  check_int "neg" (-7) (Eval.expr st (expr "-x"));
  check_int "precedence" 11 (Eval.expr st (expr "x + y * 2"))

let test_eval_bool () =
  let st = Eval.env_of_list [ ("x", 0); ("y", 5) ] in
  check_int "eq true" 1 (Eval.expr st (expr "x = 0"));
  check_int "ne" 1 (Eval.expr st (expr "y # 0"));
  check_int "lt" 1 (Eval.expr st (expr "x < y"));
  check_int "and" 0 (Eval.expr st (expr "x = 0 and y = 0"));
  check_int "or" 1 (Eval.expr st (expr "x = 0 or y = 0"));
  check_int "not" 1 (Eval.expr st (expr "not (x = 1)"));
  check_int "truthy nonzero" 1 (Eval.expr st (expr "y and true"))

let test_eval_faults () =
  let st = Eval.env_of_list [ ("x", 1) ] in
  (try
     ignore (Eval.expr st (expr "x / 0"));
     Alcotest.fail "expected fault"
   with Eval.Fault _ -> ());
  try
    ignore (Eval.expr st (expr "q + 1"));
    Alcotest.fail "expected fault"
  with Eval.Fault _ -> ()

(* ------------------------------------------------------------------ *)
(* Tasks and stepping *)

let stmt src =
  match Parser.parse_stmt src with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let test_task_shapes () =
  let t = Task.of_stmt (stmt "begin x := 1; cobegin skip || skip coend end") in
  (match t with
  | Task.Seq (Task.Leaf _, Task.Seq (Task.Par [ _; _ ], Task.Nil)) -> ()
  | _ -> Alcotest.fail "unexpected task shape");
  check "not done" false (Task.is_done t);
  check "nil done" true (Task.is_done Task.Nil);
  check "keys differ" true
    (Task.key t <> Task.key (Task.of_stmt (stmt "x := 1")))

let test_step_terminates_sequential () =
  let p = program "var x, y : integer; begin x := 3; y := x * 2 end" in
  match Scheduler.run_program ~strategy:`Leftmost p with
  | Scheduler.Terminated cfg ->
    check_int "x" 3 (Smap.find "x" cfg.Step.store);
    check_int "y" 6 (Smap.find "y" cfg.Step.store)
  | o -> Alcotest.failf "unexpected outcome: %a" Scheduler.pp_outcome o

let test_step_if_while () =
  let p =
    program
      "var n, acc : integer; begin n := 5; acc := 1; while n > 0 do begin acc := acc * n; n := n - 1 end end"
  in
  match Scheduler.run_program ~strategy:`Round_robin p with
  | Scheduler.Terminated cfg -> check_int "5!" 120 (Smap.find "acc" cfg.Step.store)
  | o -> Alcotest.failf "unexpected outcome: %a" Scheduler.pp_outcome o

let test_wait_blocks_and_deadlocks () =
  let p = program "var s : semaphore initially(0); wait(s)" in
  (match Scheduler.run_program ~strategy:`Leftmost p with
  | Scheduler.Deadlock _ -> ()
  | o -> Alcotest.failf "expected deadlock, got %a" Scheduler.pp_outcome o);
  let p2 = program "var s : semaphore initially(1); wait(s)" in
  match Scheduler.run_program ~strategy:`Leftmost p2 with
  | Scheduler.Terminated cfg -> check_int "s consumed" 0 (Smap.find "s" cfg.Step.sems)
  | o -> Alcotest.failf "expected termination, got %a" Scheduler.pp_outcome o

let test_signal_unblocks () =
  let p =
    program
      "var x : integer; s : semaphore initially(0); cobegin begin wait(s); x := 1 end || signal(s) coend"
  in
  List.iter
    (fun strategy ->
      match Scheduler.run_program ~strategy p with
      | Scheduler.Terminated cfg -> check_int "x set" 1 (Smap.find "x" cfg.Step.store)
      | o -> Alcotest.failf "unexpected: %a" Scheduler.pp_outcome o)
    [ `Round_robin; `Random 1; `Random 2; `Leftmost ]

let test_fault_outcome () =
  let p = program "var x, y : integer; y := x / 0" in
  match Scheduler.run_program ~strategy:`Leftmost p with
  | Scheduler.Fault (msg, _) -> check "mentions zero" true (String.length msg > 0)
  | o -> Alcotest.failf "expected fault, got %a" Scheduler.pp_outcome o

let test_fuel_exhaustion () =
  let p = program "var x : integer; while true do x := x + 1" in
  match Scheduler.run_program ~fuel:100 ~strategy:`Leftmost p with
  | Scheduler.Fuel_exhausted _ -> ()
  | o -> Alcotest.failf "expected fuel exhaustion, got %a" Scheduler.pp_outcome o

let test_interleaving_nondeterminism () =
  (* Two racing writers: both final values must be reachable. *)
  let p = program "var x : integer; cobegin x := 1 || x := 2 coend" in
  let finals =
    List.filter_map
      (fun seed ->
        match Scheduler.run_program ~strategy:(`Random seed) p with
        | Scheduler.Terminated cfg -> Some (Smap.find "x" cfg.Step.store)
        | _ -> None)
      (List.init 20 Fun.id)
  in
  check "1 reachable" true (List.mem 1 finals);
  check "2 reachable" true (List.mem 2 finals)

let test_round_robin_fairness () =
  (* A spinning process must not starve its sibling under round-robin;
     leftmost scheduling does starve it. *)
  let p =
    program
      "var w, z : integer; cobegin while true do w := w + 1 || z := 1 coend"
  in
  (match Scheduler.run_program ~fuel:1000 ~strategy:`Round_robin p with
  | Scheduler.Fuel_exhausted cfg ->
    check_int "sibling ran under round-robin" 1 (Smap.find "z" cfg.Step.store)
  | o -> Alcotest.failf "unexpected: %a" Scheduler.pp_outcome o);
  match Scheduler.run_program ~fuel:1000 ~strategy:`Leftmost p with
  | Scheduler.Fuel_exhausted cfg ->
    check_int "leftmost starves the sibling" 0 (Smap.find "z" cfg.Step.store)
  | o -> Alcotest.failf "unexpected: %a" Scheduler.pp_outcome o

let test_run_traced () =
  let p = program "var x : integer; begin x := 1; if x = 1 then x := 2 fi end" in
  let outcome, trace = Scheduler.run_traced ~strategy:`Leftmost (Step.init p ()) in
  (match outcome with
  | Scheduler.Terminated _ -> ()
  | o -> Alcotest.failf "unexpected: %a" Scheduler.pp_outcome o);
  let labels = List.map fst trace in
  check "assign recorded" true (List.mem (Step.L_assign ("x", 1)) labels);
  check "branch recorded" true (List.mem (Step.L_branch true) labels);
  check "final assign recorded" true (List.mem (Step.L_assign ("x", 2)) labels);
  check_int "three actions" 3 (List.length trace)

(* ------------------------------------------------------------------ *)
(* Exploration *)

let test_explore_counts () =
  let p = program "var x : integer; cobegin x := 1 || x := 2 coend" in
  let s = Explore.explore_program p in
  check "complete" true s.Explore.complete;
  check_int "two distinct terminals" 2 (List.length s.Explore.terminals);
  check "no deadlock" false (Explore.can_deadlock s);
  check "no cycle" false s.Explore.has_cycle

let test_explore_detects_deadlock_branch () =
  (* §2.2 semaphore channel: deadlocks iff x <> 0. *)
  let p = Paper.sec22_semaphore in
  let dead0 = Explore.explore_program ~inputs:[ ("x", 0) ] p in
  check "x=0 no deadlock" false (Explore.can_deadlock dead0);
  let dead1 = Explore.explore_program ~inputs:[ ("x", 1) ] p in
  check "x=1 deadlocks" true (Explore.can_deadlock dead1)

let test_explore_detects_cycle () =
  let p = program "var x : integer; while x = x do skip" in
  let s = Explore.explore_program p in
  check "cycle found" true s.Explore.has_cycle;
  check "complete" true s.Explore.complete

let test_explore_bound () =
  let p = program "var x : integer; while true do x := x + 1" in
  let s = Explore.explore_program ~max_states:50 p in
  check "incomplete" false s.Explore.complete

(* ------------------------------------------------------------------ *)
(* Channels *)

let test_chan_rendezvous () =
  let p =
    program
      {|var x, y : integer; c : channel(1);
        cobegin begin x := 7; send(c, x) end || recv(c, y) coend|}
  in
  let s = Explore.explore_program p in
  check "complete" true s.Explore.complete;
  check "no deadlock" false (Explore.can_deadlock s);
  check "send/recv is rendezvous, not contention" true (s.Explore.chan_races = []);
  check "delivered value in every terminal" true
    (List.for_all
       (fun cfg -> Smap.find "y" cfg.Step.store = 7)
       s.Explore.terminals)

let test_chan_recv_blocks_forever () =
  let p = program "var x : integer; c : channel(1); begin recv(c, x) end" in
  let s = Explore.explore_program p in
  check "deadlocks" true (Explore.can_deadlock s);
  check "no terminal" true (s.Explore.terminals = []);
  Alcotest.(check (list string)) "blocked channel named" [ "c" ]
    s.Explore.chan_blocked

let test_chan_send_blocks_at_capacity () =
  let p =
    program
      {|var x : integer; c : channel(1);
        begin send(c, x); send(c, x) end|}
  in
  let s = Explore.explore_program p in
  check "second send overflows" true (Explore.can_deadlock s);
  Alcotest.(check (list string)) "blocked channel named" [ "c" ]
    s.Explore.chan_blocked;
  (* Raising the capacity clears the block. *)
  let p2 =
    program
      {|var x : integer; c : channel(2);
        begin send(c, x); send(c, x) end|}
  in
  let s2 = Explore.explore_program p2 in
  check "capacity 2 terminates" false (Explore.can_deadlock s2)

let test_chan_fifo_order () =
  let p =
    program
      {|var x, y : integer; c : channel(2);
        begin send(c, 1); send(c, 2); recv(c, x); recv(c, y) end|}
  in
  let s = Explore.explore_program p in
  check "complete" true s.Explore.complete;
  (match s.Explore.terminals with
  | [ cfg ] ->
    check_int "first message first" 1 (Smap.find "x" cfg.Step.store);
    check_int "second message second" 2 (Smap.find "y" cfg.Step.store)
  | ts -> Alcotest.failf "expected one terminal, got %d" (List.length ts))

let test_chan_contention_witness () =
  let p =
    program
      {|var x, y, z : integer; c : channel(2);
        cobegin send(c, 1) || send(c, 2) || begin recv(c, x); recv(c, y) end coend|}
  in
  let s = Explore.explore_program p in
  Alcotest.(check (list string)) "contended channel witnessed" [ "c" ]
    s.Explore.chan_races;
  (* Both delivery orders are reachable. *)
  let firsts =
    List.sort_uniq compare
      (List.map (fun cfg -> Smap.find "x" cfg.Step.store) s.Explore.terminals)
  in
  Alcotest.(check (list int)) "schedule decides which lands first" [ 1; 2 ] firsts

let test_ni_chan_leak () =
  (* Distributed non-interference: a high payload crossing a channel to
     a low variable is observable at low. *)
  let leak =
    program
      {|var x, y : integer; c : channel(1);
        cobegin send(c, x) || recv(c, y) coend|}
  in
  let b = Binding.make two [ ("x", high); ("y", low); ("c", low) ] in
  let r = Ni.test ~observer:low ~pairs:6 b leak in
  check "channel leak observable" false (Ni.secure r);
  (* The same wiring with a low payload is secure. *)
  let b2 = Binding.make two [ ("x", low); ("y", low); ("c", low) ] in
  let r2 = Ni.test ~observer:low ~pairs:6 b2 leak in
  check "low payload secure" true (Ni.secure r2)

let test_explore_agrees_with_scheduler () =
  (* Every scheduler-produced final store appears among explored
     terminals. *)
  let rng = Prng.create 99 in
  for i = 1 to 40 do
    let p =
      Gen.program_balanced rng
        { Gen.default with allow_loops = false; max_depth = 3 }
        ~size:(1 + (i mod 12))
    in
    let s = Explore.explore_program ~max_states:5000 p in
    if s.Explore.complete then
      match Scheduler.run_program ~strategy:(`Random i) p with
      | Scheduler.Terminated cfg ->
        let key = Step.key cfg in
        check "terminal found by exploration" true
          (List.exists (fun t -> Step.key t = key) s.Explore.terminals)
      | _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* Partial-order reduction *)

let summary_signature (s : Explore.summary) =
  ( List.sort_uniq compare (List.map Step.key s.Explore.terminals),
    s.Explore.deadlocks <> [],
    List.sort_uniq compare s.Explore.faults,
    s.Explore.has_cycle )

let test_por_equivalence =
  let count = 250 in
  fun () ->
    let rng = Prng.create 8080 in
    let tried = ref 0 in
    let reduced_somewhere = ref false in
    for i = 1 to count do
      let p =
        Gen.program_balanced rng
          { Gen.default with Gen.max_depth = 3 }
          ~size:(2 + (i mod 10))
      in
      let inputs =
        List.filter_map
          (function
            | Ast.Var_decl { name; _ } -> Some (name, Prng.int rng 3)
            | Ast.Arr_decl _ | Ast.Sem_decl _ | Ast.Chan_decl _ -> None)
          p.Ast.decls
      in
      let full = Explore.explore_program ~max_states:6000 ~inputs p in
      let por = Explore.explore_program ~por:true ~max_states:6000 ~inputs p in
      if full.Explore.complete && por.Explore.complete then begin
        incr tried;
        if por.Explore.states < full.Explore.states then reduced_somewhere := true;
        if summary_signature full <> summary_signature por then
          Alcotest.failf
            "POR changed the summary on:@.%s@.full: %a@.por: %a"
            (Ifc_lang.Pretty.program_to_string p)
            Explore.pp full Explore.pp por;
        check "POR never explores more" true
          (por.Explore.states <= full.Explore.states)
      end
    done;
    check "enough complete explorations" true (!tried > 150);
    check "reduction actually happened somewhere" true !reduced_somewhere

let test_por_reduces_fig3 () =
  let full = Explore.explore_program ~inputs:[ ("x", 1) ] Paper.fig3 in
  let por = Explore.explore_program ~por:true ~inputs:[ ("x", 1) ] Paper.fig3 in
  check "same terminals" true
    (List.sort_uniq compare (List.map Step.key full.Explore.terminals)
    = List.sort_uniq compare (List.map Step.key por.Explore.terminals));
  check "fewer or equal states" true (por.Explore.states <= full.Explore.states)

let test_por_independent_writers () =
  (* n processes writing private variables: full exploration is
     factorial-ish, POR collapses it to a straight line. *)
  let p =
    program
      "var a, b, c, d, e : integer; cobegin a := 1 || b := 2 || c := 3 || d := 4 || e := 5 coend"
  in
  let full = Explore.explore_program p in
  let por = Explore.explore_program ~por:true p in
  check_int "single terminal either way" 1 (List.length por.Explore.terminals);
  (* Full exploration visits the whole write-subset cube (2^5 states);
     POR walks a single line (6 states). *)
  check "full sees the subset cube" true (full.Explore.states >= 32);
  check "POR collapses to a line" true (por.Explore.states <= 6)

(* ------------------------------------------------------------------ *)
(* Figure 3 semantics: the paper's §4.3 claims, executed. *)

let run_fig3 strategy x =
  match
    Scheduler.run_program ~strategy ~inputs:[ ("x", x) ] Paper.fig3
  with
  | Scheduler.Terminated cfg -> cfg
  | o -> Alcotest.failf "fig3 x=%d: %a" x Scheduler.pp_outcome o

let test_fig3_transmits_x_to_y () =
  List.iter
    (fun strategy ->
      let y0 = Smap.find "y" (run_fig3 strategy 0).Step.store in
      let y1 = Smap.find "y" (run_fig3 strategy 1).Step.store in
      check_int "x=0 -> y=1" 1 y0;
      check_int "x<>0 -> y=0" 0 y1)
    [ `Round_robin; `Leftmost; `Random 7; `Random 42 ]

let test_fig3_cannot_deadlock () =
  List.iter
    (fun x ->
      let s = Explore.explore_program ~inputs:[ ("x", x) ] Paper.fig3 in
      check "complete" true s.Explore.complete;
      check "no deadlock (4.3 claim)" false (Explore.can_deadlock s);
      check "no divergence" false s.Explore.has_cycle;
      (* Deterministic final y across ALL interleavings. *)
      let ys =
        List.sort_uniq compare
          (List.map (fun t -> Smap.find "y" t.Step.store) s.Explore.terminals)
      in
      check_int "single y value" 1 (List.length ys))
    [ 0; 1; 2 ]

let test_fig3_semaphores_restored () =
  (* §4.3: final semaphore values equal their initial values. *)
  List.iter
    (fun x ->
      let cfg = run_fig3 `Round_robin x in
      List.iter
        (fun s -> check_int ("sem " ^ s) 0 (Smap.find s cfg.Step.sems))
        [ "modify"; "modified"; "read"; "done" ])
    [ 0; 3 ]

let test_fig3_matches_sequential_equivalent () =
  List.iter
    (fun x ->
      let par = run_fig3 (`Random 5) x in
      match
        Scheduler.run_program ~strategy:`Leftmost ~inputs:[ ("x", x) ]
          Paper.fig3_sequential_equivalent
      with
      | Scheduler.Terminated seq ->
        check_int
          (Printf.sprintf "y agrees at x=%d" x)
          (Smap.find "y" seq.Step.store)
          (Smap.find "y" par.Step.store);
        check_int
          (Printf.sprintf "m agrees at x=%d" x)
          (Smap.find "m" seq.Step.store)
          (Smap.find "m" par.Step.store)
      | o -> Alcotest.failf "sequential equivalent: %a" Scheduler.pp_outcome o)
    [ 0; 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Taint monitor *)

let fig3_binding_leaky () =
  Binding.make two
    (("x", high) :: List.map (fun v -> (v, low)) (List.tl Paper.fig3_vars))

let test_taint_fig3_detects_leak () =
  (* Dynamic monitoring of the Figure 3 runs. At x = 0 the tainted write
     m := 1 (guarded by x) happens before y := m, so y's class rises to
     high and is flagged. At x <> 0 the read of m happens while m is still
     untainted — the leak is through *ordering*, which a single-run
     monitor cannot see. This blindness is exactly why the paper's static
     mechanism is needed; CFM rejects the binding either way. *)
  let b = fig3_binding_leaky () in
  let r0 = Taint.run ~strategy:`Round_robin ~inputs:[ ("x", 0) ] b Paper.fig3 in
  check "x=0 terminated" true (r0.Taint.outcome = `Terminated);
  check "x=0: y flagged" true (List.mem_assoc "y" r0.Taint.violations);
  let r1 = Taint.run ~strategy:`Round_robin ~inputs:[ ("x", 1) ] b Paper.fig3 in
  check "x=1 terminated" true (r1.Taint.outcome = `Terminated);
  check "x=1: monitor is blind to the ordering leak" false
    (List.mem_assoc "y" r1.Taint.violations);
  check "CFM rejects regardless" false (Cfm.certified b Paper.fig3.Ast.body)

let test_taint_52_accepts () =
  (* §5.2: x := 0; y := x is dynamically clean even with x high. *)
  let b = Binding.make two [ ("x", high); ("y", low) ] in
  let r = Taint.run ~strategy:`Leftmost b Paper.sec52 in
  check "terminated" true (r.Taint.outcome = `Terminated);
  check "no violations" true (r.Taint.violations = []);
  check "CFM still rejects" false (Cfm.certified b Paper.sec52.Ast.body)

let test_taint_direct_flow () =
  let p = program "var x, y : integer; y := x + 1" in
  let b = Binding.make two [ ("x", high); ("y", low) ] in
  let r = Taint.run ~strategy:`Leftmost b p in
  check "y violation" true (List.mem_assoc "y" r.Taint.violations)

let test_taint_local_implicit_flow () =
  let p = program "var x, y : integer; if x = 0 then y := 1 else y := 2" in
  let b = Binding.make two [ ("x", high); ("y", low) ] in
  let r = Taint.run ~strategy:`Leftmost ~inputs:[ ("x", 0) ] b p in
  check "executed branch tracked" true (List.mem_assoc "y" r.Taint.violations)

let test_taint_loop_global_flow () =
  (* After a high-conditioned loop, global is high, so later assignments
     are tainted — mirroring the flow logic. *)
  let p = program "var x, z : integer; begin while x > 0 do x := x - 1; z := 1 end" in
  let b = Binding.make two [ ("x", high); ("z", low) ] in
  let r = Taint.run ~strategy:`Leftmost ~inputs:[ ("x", 2) ] b p in
  check_int "global high" high r.Taint.global;
  check "z flagged" true (List.mem_assoc "z" r.Taint.violations)

let test_taint_clean_program () =
  let p = program "var a, b : integer; begin a := 1; b := a + 2 end" in
  let b = Binding.make two [ ("a", low); ("b", high) ] in
  let r = Taint.run ~strategy:`Round_robin b p in
  check "no violations" true (r.Taint.violations = [])

(* ------------------------------------------------------------------ *)
(* Noninterference *)

let test_ni_fig3_violation () =
  let b = fig3_binding_leaky () in
  let r = Ni.test ~observer:low ~pairs:6 b Paper.fig3 in
  check "violations found" false (Ni.secure r);
  check "tested pairs" true (r.Ni.pairs_tested > 0)

let test_ni_sec22_semaphore_violation () =
  (* The deadlock-channel program: the observable difference is the
     Deadlock marker itself. *)
  let b = Binding.make two [ ("x", high); ("y", low); ("sem", low) ] in
  let r =
    Ni.test ~termination:`Sensitive ~observer:low ~pairs:6 b Paper.sec22_semaphore
  in
  check "violation via termination behaviour" false (Ni.secure r);
  (* In the paper-faithful insensitive mode the deadlock excuses the
     difference — the leak here is purely a termination channel. *)
  let r' = Ni.test ~observer:low ~pairs:6 b Paper.sec22_semaphore in
  check "insensitive mode excuses pure deadlock channel" true (Ni.secure r')

let test_ni_sec22_loop_violation () =
  let b = Binding.make two [ ("x", high); ("y", high); ("z", low) ] in
  (* x in {0,1,...}: x>0 loops terminate; all runs terminate but y... z
     always becomes 1 here; the channel in this variant is y's value, which
     is high. Use a variant where divergence differs: while x # 0 with
     negative... keep it simple: observe y at low instead. *)
  let b2 = Binding.make two [ ("x", high); ("y", low); ("z", low) ] in
  ignore b;
  let r = Ni.test ~observer:low ~pairs:6 b2 Paper.sec22_loop in
  check "loop channel observable" false (Ni.secure r)

let test_ni_certified_programs_secure () =
  (* The empirical soundness harness: CFM-certified programs pass the
     noninterference test. *)
  let rng = Prng.create 2718 in
  let cfg = { Gen.default with Gen.max_depth = 3 } in
  let checked = ref 0 in
  let attempts = ref 0 in
  while !checked < 25 && !attempts < 400 do
    incr attempts;
    let p = Gen.program_balanced rng cfg ~size:(2 + (!attempts mod 10)) in
    let vars, _, _, _ = Ifc_lang.Vars.declared p in
    let pairs =
      List.map
        (fun v -> (v, if Prng.bool rng then high else low))
        (Ifc_support.Sset.elements vars)
    in
    let b = Binding.make two pairs in
    let has_high = List.exists (fun (_, c) -> c = high) pairs in
    if has_high && Cfm.certified b p.Ast.body then begin
      let r = Ni.test ~seed:!attempts ~observer:low ~pairs:4 ~max_states:4000 b p in
      if r.Ni.pairs_tested > 0 then begin
        incr checked;
        if not (Ni.secure r) then
          Alcotest.failf "certified program violates NI:@.%s@.binding: %a@.%a"
            (Ifc_lang.Pretty.program_to_string p)
            Binding.pp b
            (Fmt.list Ni.pp_violation) r.Ni.violations
      end
    end
  done;
  check "exercised enough certified programs" true (!checked >= 10)

let test_ni_no_high_vars_trivial () =
  let p = program "var a : integer; a := 1" in
  let b = Binding.make two [ ("a", low) ] in
  let r = Ni.test ~observer:low b p in
  check_int "no pairs" 0 r.Ni.pairs_tested;
  check "secure" true (Ni.secure r)

let suite =
  ( "exec",
    [
      Alcotest.test_case "eval arithmetic" `Quick test_eval_arith;
      Alcotest.test_case "eval booleans" `Quick test_eval_bool;
      Alcotest.test_case "eval faults" `Quick test_eval_faults;
      Alcotest.test_case "task shapes" `Quick test_task_shapes;
      Alcotest.test_case "sequential execution" `Quick test_step_terminates_sequential;
      Alcotest.test_case "if/while execution" `Quick test_step_if_while;
      Alcotest.test_case "wait blocks/deadlocks" `Quick test_wait_blocks_and_deadlocks;
      Alcotest.test_case "signal unblocks" `Quick test_signal_unblocks;
      Alcotest.test_case "fault outcome" `Quick test_fault_outcome;
      Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
      Alcotest.test_case "interleaving nondeterminism" `Quick
        test_interleaving_nondeterminism;
      Alcotest.test_case "round-robin fairness" `Quick test_round_robin_fairness;
      Alcotest.test_case "run traced" `Quick test_run_traced;
      Alcotest.test_case "explore counts" `Quick test_explore_counts;
      Alcotest.test_case "explore finds deadlock branch" `Quick
        test_explore_detects_deadlock_branch;
      Alcotest.test_case "explore detects cycle" `Quick test_explore_detects_cycle;
      Alcotest.test_case "explore bound" `Quick test_explore_bound;
      Alcotest.test_case "chan rendezvous" `Quick test_chan_rendezvous;
      Alcotest.test_case "chan recv blocks forever" `Quick
        test_chan_recv_blocks_forever;
      Alcotest.test_case "chan send blocks at capacity" `Quick
        test_chan_send_blocks_at_capacity;
      Alcotest.test_case "chan fifo order" `Quick test_chan_fifo_order;
      Alcotest.test_case "chan contention witness" `Quick
        test_chan_contention_witness;
      Alcotest.test_case "NI channel leak" `Quick test_ni_chan_leak;
      Alcotest.test_case "explore agrees with scheduler" `Quick
        test_explore_agrees_with_scheduler;
      Alcotest.test_case "POR preserves summaries (property)" `Quick
        test_por_equivalence;
      Alcotest.test_case "POR reduces fig3" `Quick test_por_reduces_fig3;
      Alcotest.test_case "POR collapses independent writers" `Quick
        test_por_independent_writers;
      Alcotest.test_case "fig3 transmits x to y" `Quick test_fig3_transmits_x_to_y;
      Alcotest.test_case "fig3 cannot deadlock (4.3)" `Quick test_fig3_cannot_deadlock;
      Alcotest.test_case "fig3 semaphores restored (4.3)" `Quick
        test_fig3_semaphores_restored;
      Alcotest.test_case "fig3 matches sequential equivalent (4.3)" `Quick
        test_fig3_matches_sequential_equivalent;
      Alcotest.test_case "taint fig3 detects leak" `Quick test_taint_fig3_detects_leak;
      Alcotest.test_case "taint 5.2 accepts" `Quick test_taint_52_accepts;
      Alcotest.test_case "taint direct flow" `Quick test_taint_direct_flow;
      Alcotest.test_case "taint local implicit flow" `Quick test_taint_local_implicit_flow;
      Alcotest.test_case "taint loop global flow" `Quick test_taint_loop_global_flow;
      Alcotest.test_case "taint clean program" `Quick test_taint_clean_program;
      Alcotest.test_case "NI fig3 violation" `Quick test_ni_fig3_violation;
      Alcotest.test_case "NI semaphore channel violation" `Quick
        test_ni_sec22_semaphore_violation;
      Alcotest.test_case "NI loop channel violation" `Quick test_ni_sec22_loop_violation;
      Alcotest.test_case "NI certified programs secure" `Slow
        test_ni_certified_programs_secure;
      Alcotest.test_case "NI trivial without high vars" `Quick test_ni_no_high_vars_trivial;
    ] )
