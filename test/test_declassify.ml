(* Tests for the declassification extension: [x := declassify e to C]
   releases the *data* of [e] at class [C] while contexts (local/global)
   remain enforced — "where" declassification in modern terms. *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Ast = Ifc_lang.Ast
module Parser = Ifc_lang.Parser
module Pretty = Ifc_lang.Pretty
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Denning = Ifc_core.Denning
module Infer = Ifc_core.Infer
module Fs = Ifc_core.Flow_sensitive
module Invariance = Ifc_logic_gen.Invariance
module Scheduler = Ifc_exec.Scheduler
module Taint = Ifc_exec.Taint
module Ni = Ifc_exec.Noninterference
module Smap = Ifc_support.Smap

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let two = Chain.two

let low = two.Lattice.bottom

let high = two.Lattice.top

let stmt src =
  match Parser.parse_stmt src with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let program src =
  match Parser.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let binding pairs = Binding.make two pairs

let b_xy = binding [ ("x", high); ("y", low) ]

let test_parse_and_roundtrip () =
  (match (stmt "y := declassify x + 1 to low").Ast.node with
  | Ast.Declassify ("y", Ast.Binop (Ast.Add, Ast.Var "x", Ast.Int 1), "low") -> ()
  | _ -> Alcotest.fail "shape");
  List.iter
    (fun src ->
      let s = stmt src in
      match Parser.parse_stmt (Pretty.stmt_to_string s) with
      | Ok s' -> check src true (Ast.equal_stmt s s')
      | Error e -> Alcotest.failf "reparse: %a" Parser.pp_error e)
    [ "y := declassify x to low"; "y := declassify x * x + 1 to high" ];
  check "missing to" true (Result.is_error (Parser.parse_stmt "y := declassify x"))

let test_cfm_basic_release () =
  check "direct flow rejected" false (Cfm.certified b_xy (stmt "y := x"));
  check "declassified release accepted" true
    (Cfm.certified b_xy (stmt "y := declassify x to low"));
  check "cannot launder upward-only names" false
    (Cfm.certified b_xy (stmt "y := declassify x to high"))

let test_cfm_context_still_enforced () =
  (* Declassification releases data, not control: a declassify under a
     high branch or after a high wait still leaks the context. *)
  check "high branch context" false
    (Cfm.certified b_xy (stmt "if x = 0 then y := declassify x to low fi"));
  let b = binding [ ("x", high); ("y", low); ("sem", high) ] in
  check "high global context" false
    (Cfm.certified b (stmt "begin wait(sem); y := declassify x to low end"));
  check "loop context" false
    (Cfm.certified b_xy (stmt "begin while x > 0 do x := x - 1; y := declassify x to low end"))

let test_cfm_unknown_class_conservative () =
  check "unknown class fails closed" false
    (Cfm.certified b_xy (stmt "y := declassify x to mystery"));
  (* ... even when the target is high (top <= high holds on two-point,
     so use a three-point lattice to see the conservatism). *)
  let three = Chain.three in
  let b = Binding.make three [ ("x", three.Lattice.top); ("y", 1) ] in
  check "unknown class is top" false
    (Cfm.certified b (stmt "y := declassify x to nonsense"))

let test_denning_same_rule () =
  check "baseline agrees" true
    (Denning.certified ~on_concurrency:`Ignore b_xy (stmt "y := declassify x to low"))

let test_infer_with_declassify () =
  let p =
    program
      "var x, y, z : integer; begin y := declassify x to low; z := y end"
  in
  match Infer.infer two ~fixed:[ ("x", high) ] p with
  | Ok b ->
    check_int "y stays low" low (Binding.sbind b "y");
    check_int "z stays low" low (Binding.sbind b "z")
  | Error _ -> Alcotest.fail "inference failed"

let test_theorem_equivalence_cases () =
  (* The flow-logic axiom and the CFM check must keep agreeing. *)
  List.iter
    (fun (src, pairs) ->
      let s = stmt src in
      let b = binding pairs in
      check
        (src ^ " equivalence")
        (Cfm.certified b s)
        (Invariance.decide b s))
    [
      ("y := declassify x to low", [ ("x", high); ("y", low) ]);
      ("y := declassify x to high", [ ("x", high); ("y", low) ]);
      ("if x = 0 then y := declassify x to low fi", [ ("x", high); ("y", low) ]);
      ("begin wait(s); y := declassify x to low end",
       [ ("x", high); ("y", low); ("s", high) ]);
      ("begin y := declassify x to low; z := y end",
       [ ("x", high); ("y", low); ("z", low) ]);
    ]

let test_fs_declassify () =
  check "FS accepts the release" true (Fs.certified b_xy (stmt "y := declassify x to low"));
  check "FS keeps context" false
    (Fs.certified b_xy (stmt "if x = 0 then y := declassify x to low fi"));
  (* Flow-sensitively, the released class then propagates as data. *)
  let b = binding [ ("x", high); ("y", low); ("z", low) ] in
  check "released data flows on at its new class" true
    (Fs.certified b (stmt "begin y := declassify x to low; z := y end"))

let test_exec_and_taint () =
  let p =
    program
      {|var x : integer class high; y : integer class low;
        y := declassify x * 2 to low|}
  in
  (match Scheduler.run_program ~strategy:`Leftmost ~inputs:[ ("x", 21) ] p with
  | Scheduler.Terminated cfg -> check_int "value computed" 42 (Smap.find "y" cfg.Ifc_exec.Step.store)
  | o -> Alcotest.failf "unexpected: %a" Scheduler.pp_outcome o);
  let b = Result.get_ok (Binding.of_program two p) in
  let r = Taint.run ~strategy:`Leftmost ~inputs:[ ("x", 3) ] b p in
  check "monitor honours the release" true (r.Taint.violations = []);
  (* Context still taints dynamically. *)
  let p2 =
    program
      {|var x : integer class high; y : integer class low;
        if x = 0 then y := declassify x to low fi|}
  in
  let b2 = Result.get_ok (Binding.of_program two p2) in
  let r2 = Taint.run ~strategy:`Leftmost ~inputs:[ ("x", 0) ] b2 p2 in
  check "context violation seen" true (List.mem_assoc "y" r2.Taint.violations)

let test_ni_escape_hatch_leaks_by_design () =
  (* Declassification intentionally breaks noninterference — that is what
     an escape hatch is. The tester documents it. *)
  let p =
    program
      {|var x : integer class high; y : integer class low;
        y := declassify x to low|}
  in
  let b = Result.get_ok (Binding.of_program two p) in
  check "certified" true (Cfm.certified b p.Ast.body);
  let r = Ni.test ~pairs:4 ~observer:low b p in
  check "NI violated, by design" false (Ni.secure r)

let suite =
  ( "declassify",
    [
      Alcotest.test_case "parse and roundtrip" `Quick test_parse_and_roundtrip;
      Alcotest.test_case "basic release" `Quick test_cfm_basic_release;
      Alcotest.test_case "context still enforced" `Quick test_cfm_context_still_enforced;
      Alcotest.test_case "unknown class conservative" `Quick
        test_cfm_unknown_class_conservative;
      Alcotest.test_case "denning same rule" `Quick test_denning_same_rule;
      Alcotest.test_case "inference with declassify" `Quick test_infer_with_declassify;
      Alcotest.test_case "theorem equivalence cases" `Quick test_theorem_equivalence_cases;
      Alcotest.test_case "flow-sensitive declassify" `Quick test_fs_declassify;
      Alcotest.test_case "exec and taint" `Quick test_exec_and_taint;
      Alcotest.test_case "NI escape hatch" `Quick test_ni_escape_hatch_leaks_by_design;
    ] )
