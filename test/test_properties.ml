(* The toolkit's headline cross-cutting properties as QCheck tests with
   shrinking: failures minimise to small counterexample programs. Several
   overlap deliberately with hand-rolled loops elsewhere in the suite —
   these versions shrink, those versions pin seeds. *)

module Ast = Ifc_lang.Ast
module Gen = Ifc_lang.Gen
module Chain = Ifc_lattice.Chain
module Lattice = Ifc_lattice.Lattice
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Denning = Ifc_core.Denning
module Infer = Ifc_core.Infer
module Fs = Ifc_core.Flow_sensitive
module Invariance = Ifc_logic_gen.Invariance
module Arb = Qcheck_arbitrary

let two = Chain.two

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let roundtrip =
  qtest ~count:300 "print/parse round trip" (Arb.program ())
    (fun p ->
      match Ifc_lang.Parser.parse_program (Ifc_lang.Pretty.program_to_string p) with
      | Ok p' -> Ast.equal_program p p'
      | Error _ -> false)

let wellformed =
  qtest ~count:300 "generated programs are well-formed" (Arb.program ())
    (fun p -> Ifc_lang.Wellformed.is_valid p)

let theorems_equivalence =
  qtest ~count:200 "thm 1+2: cert(S) <=> checked proof (shrinkable)"
    (Arb.bound_program two)
    (fun bp ->
      let b = Arb.binding_of bp in
      Bool.equal
        (Cfm.certified b bp.Arb.prog.Ast.body)
        (Invariance.decide b bp.Arb.prog.Ast.body))

let cfm_below_denning =
  qtest ~count:200 "CFM certified => Denning certified" (Arb.bound_program two)
    (fun bp ->
      let b = Arb.binding_of bp in
      (not (Cfm.certified b bp.Arb.prog.Ast.body))
      || Denning.certified ~on_concurrency:`Ignore b bp.Arb.prog.Ast.body)

let cfm_below_fs =
  qtest ~count:200 "CFM certified => flow-sensitive accepted" (Arb.bound_program two)
    (fun bp ->
      let b = Arb.binding_of bp in
      (not (Cfm.certified b bp.Arb.prog.Ast.body))
      || Fs.certified b bp.Arb.prog.Ast.body)

let constraints_characterise_cfm =
  qtest ~count:200 "symbolic constraints characterise cert" (Arb.bound_program two)
    (fun bp ->
      let b = Arb.binding_of bp in
      let satisfied =
        List.for_all
          (fun (c : Infer.constr) ->
            let value = function
              | Infer.Const_low -> two.Lattice.bottom
              | Infer.Const_named c ->
                Result.value ~default:two.Lattice.top (two.Lattice.of_string c)
              | Infer.Class v -> Binding.sbind b v
            in
            two.Lattice.leq
              (Ifc_lattice.Lattice.joins two (List.map value c.Infer.lhs))
              (Binding.sbind b c.Infer.rhs))
          (Infer.constraints bp.Arb.prog.Ast.body)
      in
      Bool.equal satisfied (Cfm.certified b bp.Arb.prog.Ast.body))

let inference_least =
  qtest ~count:150 "inferred binding certifies and is pointwise least"
    (Arb.bound_program Chain.four)
    (fun bp ->
      let p = bp.Arb.prog in
      match Infer.infer Chain.four ~fixed:[] p with
      | Error _ -> false
      | Ok least ->
        Cfm.certified least p.Ast.body
        &&
        (* Leastness against an independent witness: any certifying
           binding dominates the inferred one on every variable. *)
        let witness = Arb.binding_of bp in
        (not (Cfm.certified witness p.Ast.body))
        || List.for_all
             (fun v ->
               Chain.four.Lattice.leq (Binding.sbind least v) (Binding.sbind witness v))
             (Ifc_support.Sset.elements (Ifc_lang.Vars.all_vars p.Ast.body)))

let self_check_subset =
  qtest ~count:200 "strict (j<=i) reading certifies a subset" (Arb.bound_program two)
    (fun bp ->
      let b = Arb.binding_of bp in
      (not (Cfm.certified ~self_check:true b bp.Arb.prog.Ast.body))
      || Cfm.certified b bp.Arb.prog.Ast.body)

let mod_flow_monotone_in_binding =
  (* Raising a binding pointwise raises mod(S) and flow(S). *)
  qtest ~count:200 "mod/flow monotone in the binding" (Arb.bound_program two)
    (fun bp ->
      let body = bp.Arb.prog.Ast.body in
      let b = Arb.binding_of bp in
      let raised =
        List.fold_left
          (fun acc (v, _) -> Binding.bind acc v two.Lattice.top)
          b (Binding.bindings b)
      in
      let ext = Ifc_lattice.Extended.make two in
      two.Lattice.leq (Cfm.mod_of b body) (Cfm.mod_of raised body)
      && ext.Lattice.leq (Cfm.flow_of b body) (Cfm.flow_of raised body))

let denning_agrees_on_loopfree_seq =
  let cfg = { Gen.sequential with Gen.allow_loops = false } in
  qtest ~count:200 "Denning = CFM on loop-free sequential programs"
    (Arb.bound_program ~cfg two)
    (fun bp ->
      let b = Arb.binding_of bp in
      Bool.equal
        (Denning.certified ~on_concurrency:`Ignore b bp.Arb.prog.Ast.body)
        (Cfm.certified b bp.Arb.prog.Ast.body))

let metrics_positive =
  qtest ~count:200 "metrics are consistent" (Arb.program ())
    (fun p ->
      let m = Ifc_lang.Metrics.of_program p in
      m.Ifc_lang.Metrics.statements > 0
      && m.Ifc_lang.Metrics.statements
         >= m.Ifc_lang.Metrics.assignments + m.Ifc_lang.Metrics.sync_ops
      && Ifc_lang.Metrics.length p >= m.Ifc_lang.Metrics.statements)

let parser_never_crashes =
  (* Fuzz the parser with mutated program text: it must return Ok or
     Error, never raise. *)
  let gen =
    QCheck.Gen.(
      map2
        (fun p (pos, c) ->
          let s = Bytes.of_string (Ifc_lang.Pretty.program_to_string p) in
          if Bytes.length s > 0 then
            Bytes.set s (pos mod Bytes.length s) (Char.chr (32 + (c mod 95)));
          Bytes.to_string s)
        (Qcheck_arbitrary.program_gen ())
        (pair small_nat small_nat))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"parser total on mutated sources" ~count:500
       (QCheck.make gen)
       (fun src ->
         match Ifc_lang.Parser.parse_program src with
         | Ok _ | Error _ -> true
         | exception _ -> false))

let taskkey_injective_enough =
  (* Distinct residual tasks get distinct keys (exploration memoisation
     correctness): compare keys of a program's task against a shrink's. *)
  qtest ~count:200 "task keys distinguish distinct programs" (Arb.program ())
    (fun p ->
      let t = Ifc_exec.Task.of_stmt p.Ast.body in
      match List.of_seq (Seq.take 1 (Gen.shrink_program p)) with
      | [ p' ] when not (Ast.equal_stmt p.Ast.body p'.Ast.body) ->
        Ifc_exec.Task.key t <> Ifc_exec.Task.key (Ifc_exec.Task.of_stmt p'.Ast.body)
      | _ -> true)

let arrays_roundtrip =
  qtest ~count:200 "round trip (array corpus)" (Arb.program ~cfg:Gen.with_arrays ())
    (fun p ->
      match Ifc_lang.Parser.parse_program (Ifc_lang.Pretty.program_to_string p) with
      | Ok p' -> Ast.equal_program p p'
      | Error _ -> false)

let arrays_theorems =
  qtest ~count:150 "thm 1+2 over the array corpus"
    (Arb.bound_program ~cfg:Gen.with_arrays two)
    (fun bp ->
      let b = Arb.binding_of bp in
      Bool.equal
        (Cfm.certified b bp.Arb.prog.Ast.body)
        (Invariance.decide b bp.Arb.prog.Ast.body))

let channels_roundtrip =
  qtest ~count:200 "round trip (channel corpus)"
    (Arb.program ~cfg:Gen.with_channels ())
    (fun p ->
      match Ifc_lang.Parser.parse_program (Ifc_lang.Pretty.program_to_string p) with
      | Ok p' -> Ast.equal_program p p'
      | Error _ -> false)

let channels_theorems =
  qtest ~count:150 "thm 1+2 over the channel corpus"
    (Arb.bound_program ~cfg:Gen.with_channels two)
    (fun bp ->
      let b = Arb.binding_of bp in
      Bool.equal
        (Cfm.certified b bp.Arb.prog.Ast.body)
        (Invariance.decide b bp.Arb.prog.Ast.body))

let channel_shrinks_stay_wellformed =
  (* The shrinker re-infers declarations, so no shrink may orphan a
     send/recv: every channel the shrunk body uses stays declared, and
     the shrunk program stays well-formed outright. *)
  qtest ~count:100 "shrinks never orphan a channel endpoint"
    (Arb.program ~cfg:Gen.with_channels ())
    (fun p ->
      Seq.fold_left
        (fun ok p' ->
          let _, _, _, chans = Ifc_lang.Vars.declared p' in
          ok
          && Ifc_lang.Wellformed.is_valid p'
          && Ifc_support.Sset.subset
               (Ifc_lang.Vars.channels p'.Ast.body)
               chans)
        true
        (Seq.take 30 (Gen.shrink_program p)))

let theorem1_all_premises =
  (* Theorem 1 promises a proof for EVERY l, g with l (+) g <= mod(S) when
     S is certified; sweep the whole two-point square. *)
  qtest ~count:150 "thm 1 holds at every admissible (l,g)" (Arb.bound_program two)
    (fun bp ->
      let body = bp.Arb.prog.Ast.body in
      let b = Arb.binding_of bp in
      (not (Cfm.certified b body))
      ||
      let mod_s = Cfm.mod_of b body in
      List.for_all
        (fun l ->
          List.for_all
            (fun g ->
              (not (two.Lattice.leq (two.Lattice.join l g) mod_s))
              || Invariance.decide_at ~l ~g b body)
            two.Lattice.elements)
        two.Lattice.elements)

let suite =
  ( "properties",
    [
      roundtrip;
      arrays_roundtrip;
      arrays_theorems;
      channels_roundtrip;
      channels_theorems;
      channel_shrinks_stay_wellformed;
      theorem1_all_premises;
      wellformed;
      theorems_equivalence;
      cfm_below_denning;
      cfm_below_fs;
      constraints_characterise_cfm;
      inference_least;
      self_check_subset;
      mod_flow_monotone_in_binding;
      denning_agrees_on_loopfree_seq;
      metrics_positive;
      parser_never_crashes;
      taskkey_injective_enough;
    ] )
