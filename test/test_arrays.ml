(* Tests for the array extension — Denning & Denning's original array
   treatment, threaded through every layer: syntax, well-formedness, CFM,
   the baseline, inference, flow-sensitivity, the flow logic, and the
   semantics. *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Ast = Ifc_lang.Ast
module Parser = Ifc_lang.Parser
module Pretty = Ifc_lang.Pretty
module Wellformed = Ifc_lang.Wellformed
module Gen = Ifc_lang.Gen
module Prng = Ifc_support.Prng
module Smap = Ifc_support.Smap
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Denning = Ifc_core.Denning
module Infer = Ifc_core.Infer
module Fs = Ifc_core.Flow_sensitive
module Invariance = Ifc_logic_gen.Invariance
module Scheduler = Ifc_exec.Scheduler
module Explore = Ifc_exec.Explore
module Taint = Ifc_exec.Taint
module Ni = Ifc_exec.Noninterference

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let two = Chain.two

let low = two.Lattice.bottom

let high = two.Lattice.top

let program src =
  match Parser.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let stmt src =
  match Parser.parse_stmt src with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let binding pairs = Binding.make two pairs

(* ------------------------------------------------------------------ *)
(* Syntax *)

let test_parse_array_forms () =
  (match (stmt "a[i + 1] := x * 2").Ast.node with
  | Ast.Store ("a", Ast.Binop (Ast.Add, Ast.Var "i", Ast.Int 1), _) -> ()
  | _ -> Alcotest.fail "store shape");
  (match Parser.parse_expr "a[b[0]] + 1" with
  | Ok (Ast.Binop (Ast.Add, Ast.Index ("a", Ast.Index ("b", Ast.Int 0)), Ast.Int 1)) -> ()
  | Ok _ -> Alcotest.fail "nested index shape"
  | Error e -> Alcotest.failf "parse: %a" Parser.pp_error e);
  let p = program "var a : array(4) class high; b : array(2); skip" in
  match p.Ast.decls with
  | [ Ast.Arr_decl { name = "a"; size = 4; cls = Some "high" };
      Ast.Arr_decl { name = "b"; size = 2; cls = None } ] ->
    ()
  | _ -> Alcotest.fail "decl shapes"

let test_parse_array_errors () =
  List.iter
    (fun src -> check src true (Result.is_error (Parser.parse_stmt src)))
    [ "a[1 := 2"; "a[] := 2"; "a[1]" ]

let test_array_roundtrip () =
  List.iter
    (fun src ->
      let s = stmt src in
      match Parser.parse_stmt (Pretty.stmt_to_string s) with
      | Ok s' -> check src true (Ast.equal_stmt s s')
      | Error e -> Alcotest.failf "reparse: %a" Parser.pp_error e)
    [
      "a[0] := 1";
      "a[i * 2 + 1] := a[i] + b[0]";
      "if a[x] = 0 then b[y] := a[0] fi";
      "while a[0] > 0 do a[0] := a[0] - 1";
    ];
  let p = program "var a : array(3) class low; a[0] := 1" in
  match Parser.parse_program (Pretty.program_to_string p) with
  | Ok p' -> check "program roundtrip" true (Ast.equal_program p p')
  | Error e -> Alcotest.failf "reparse: %a" Parser.pp_error e

let test_wellformed_namespaces () =
  check "scalar as array" false
    (Wellformed.is_valid (program "var x : integer; x[0] := 1"));
  check "array as scalar" false
    (Wellformed.is_valid (program "var a : array(2); a := 1"));
  check "array read without index" false
    (Wellformed.is_valid (program "var a : array(2); x : integer; x := a"));
  check "array as semaphore" false
    (Wellformed.is_valid (program "var a : array(2); wait(a)"));
  check "undeclared array" false (Wellformed.is_valid (program "var x : integer; q[0] := x"));
  check "zero size" false (Wellformed.is_valid (program "var a : array(0); a[0] := 1"));
  check "fine" true
    (Wellformed.is_valid (program "var a : array(2); x : integer; a[x] := a[0] + 1"))

let test_infer_decls_arrays () =
  let p = Wellformed.infer_decls (Ast.program (stmt "a[0] := b[1] + x")) in
  check "valid" true (Wellformed.is_valid p);
  check_int "three decls" 3 (List.length p.Ast.decls)

(* ------------------------------------------------------------------ *)
(* Static analyses *)

let test_cfm_store_value_flow () =
  let b = binding [ ("a", low); ("h", high); ("i", low) ] in
  check "high value into low array" false (Cfm.certified b (stmt "a[i] := h"));
  check "low value fine" true (Cfm.certified b (stmt "a[i] := i + 1"))

let test_cfm_store_index_flow () =
  (* The index is information: writing 1 at a secret position reveals the
     position. This is exactly Denning & Denning's array rule. *)
  let b = binding [ ("a", low); ("h", high) ] in
  check "high index into low array" false (Cfm.certified b (stmt "a[h] := 1"));
  let b2 = binding [ ("a", high); ("h", high) ] in
  check "high array accepts" true (Cfm.certified b2 (stmt "a[h] := 1"))

let test_cfm_index_read_flow () =
  let b = binding [ ("a", low); ("h", high); ("y", low) ] in
  check "reading at secret index leaks" false (Cfm.certified b (stmt "y := a[h]"));
  check "reading at public index fine" true (Cfm.certified b (stmt "y := a[0]"));
  let b2 = binding [ ("a", high); ("y", low) ] in
  check "reading high array leaks" false (Cfm.certified b2 (stmt "y := a[0]"))

let test_denning_agrees_on_stores () =
  let b = binding [ ("a", low); ("h", high) ] in
  check "denning rejects too" false
    (Denning.certified ~on_concurrency:`Ignore b (stmt "a[h] := 1"))

let test_infer_array_constraints () =
  let p = Wellformed.infer_decls (Ast.program (stmt "a[h] := 1")) in
  match Infer.infer two ~fixed:[ ("h", high) ] p with
  | Ok b -> check_int "array raised to high" high (Binding.sbind b "a")
  | Error _ -> Alcotest.fail "inference failed"

let test_fs_weak_update () =
  (* No strong updates on arrays: storing a public value does NOT scrub
     the array — other slots may still hold the secret. *)
  let b = binding [ ("a", low); ("h", high); ("y", low) ] in
  check "tainted array not scrubbed" false
    (Fs.certified b (stmt "begin a[0] := h; a[0] := 0; y := a[1] end"));
  (* Scalars do scrub (contrast). *)
  check "scalar scrubs" true (Fs.certified b (stmt "begin y := h; y := 0 end"))

let test_theorem_equivalence_with_arrays =
  (* The headline theorem property over the array-enabled generator. *)
  let count = 250 in
  fun () ->
    let rng = Prng.create 112233 in
    let certified = ref 0 in
    for i = 1 to count do
      let p = Gen.program rng Gen.with_arrays ~size:(1 + (i mod 25)) in
      let vars = Ifc_lang.Vars.all_vars p.Ast.body in
      let b =
        binding
          (List.map
             (fun v -> (v, if Prng.bool rng then high else low))
             (Ifc_support.Sset.elements vars))
      in
      let cert = Cfm.certified b p.Ast.body in
      if cert then incr certified;
      if cert <> Invariance.decide b p.Ast.body then
        Alcotest.failf "thm divergence on:@.%s@.binding: %a"
          (Pretty.program_to_string p) Binding.pp b;
      if cert && not (Fs.certified b p.Ast.body) then
        Alcotest.failf "FS does not dominate on:@.%s" (Pretty.program_to_string p)
    done;
    check "some certified" true (!certified > 0)

(* ------------------------------------------------------------------ *)
(* Semantics *)

let test_exec_array_ops () =
  let p =
    program
      {|var a : array(3); i, sum : integer;
        begin
          a[0] := 5; a[1] := 7; a[2] := 9;
          i := 0; sum := 0;
          while i < 3 do begin sum := sum + a[i]; i := i + 1 end
        end|}
  in
  match Scheduler.run_program ~strategy:`Leftmost p with
  | Scheduler.Terminated cfg ->
    check_int "sum of cells" 21 (Smap.find "sum" cfg.Ifc_exec.Step.store)
  | o -> Alcotest.failf "unexpected: %a" Scheduler.pp_outcome o

let test_exec_out_of_bounds_faults () =
  List.iter
    (fun src ->
      match Scheduler.run_program ~strategy:`Leftmost (program src) with
      | Scheduler.Fault _ -> ()
      | o -> Alcotest.failf "expected fault on %s, got %a" src Scheduler.pp_outcome o)
    [
      "var a : array(2); a[5] := 1";
      "var a : array(2); a[-1] := 1";
      "var a : array(2); x : integer; x := a[2]";
    ]

let test_exec_arrays_are_per_path () =
  (* Copy-on-write: exploring both branches of a race must not let one
     branch's array write leak into the other's configurations. *)
  let p =
    program
      "var a : array(1); x : integer; cobegin a[0] := 1 || a[0] := 2 coend"
  in
  let s = Explore.explore_program p in
  check "complete" true s.Explore.complete;
  let finals =
    List.map
      (fun c -> (Smap.find "a" c.Ifc_exec.Step.arrays).(0))
      s.Explore.terminals
    |> List.sort_uniq compare
  in
  check "both final values reachable" true (finals = [ 1; 2 ])

let test_taint_array_weak_update () =
  let p =
    program
      {|var a : array(2) class low; h : integer class high; y : integer class low;
        begin a[0] := h; a[0] := 0; y := a[1] end|}
  in
  let b = Result.get_ok (Binding.of_program two p) in
  let r = Taint.run ~strategy:`Leftmost b p in
  check "terminated" true (r.Taint.outcome = `Terminated);
  (* The array class stays high (weak update), so y := a[1] taints y. *)
  check "a flagged" true (List.mem_assoc "a" r.Taint.violations);
  check "y flagged" true (List.mem_assoc "y" r.Taint.violations)

let test_ni_array_channel () =
  (* Secret selects which slot changes; a low observer reading the cells
     sees it. CFM rejects; the tester confirms the leak. *)
  let p =
    program
      {|var a : array(2) class low; h : integer class high;
        begin a[0] := 0; a[1] := 0; a[h % 2] := 1 end|}
  in
  let b = Result.get_ok (Binding.of_program two p) in
  check "CFM rejects the index channel" false (Cfm.certified b p.Ast.body);
  let r = Ni.test ~pairs:6 ~observer:low b p in
  check "leak is real" false (Ni.secure r)

let test_ni_certified_array_programs_secure () =
  let rng = Prng.create 9090 in
  let cfg = { Gen.with_arrays with Gen.max_depth = 3 } in
  let checked = ref 0 and attempts = ref 0 in
  while !checked < 12 && !attempts < 400 do
    incr attempts;
    let p = Gen.program_balanced rng cfg ~size:(2 + (!attempts mod 8)) in
    let vars, arrays, sems, _chans = Ifc_lang.Vars.declared p in
    let names =
      Ifc_support.Sset.elements (Ifc_support.Sset.union vars (Ifc_support.Sset.union arrays sems))
    in
    let pairs = List.map (fun v -> (v, if Prng.bool rng then high else low)) names in
    let b = binding pairs in
    if List.exists (fun (_, c) -> c = high) pairs && Cfm.certified b p.Ast.body then begin
      let r = Ni.test ~seed:!attempts ~pairs:3 ~max_states:4000 ~observer:low b p in
      if r.Ni.pairs_tested > 0 then begin
        incr checked;
        if not (Ni.secure r) then
          Alcotest.failf "certified array program violates NI:@.%s@.binding: %a"
            (Pretty.program_to_string p) Binding.pp b
      end
    end
  done;
  check "exercised" true (!checked >= 5)

let suite =
  ( "arrays",
    [
      Alcotest.test_case "parse array forms" `Quick test_parse_array_forms;
      Alcotest.test_case "parse array errors" `Quick test_parse_array_errors;
      Alcotest.test_case "array roundtrip" `Quick test_array_roundtrip;
      Alcotest.test_case "wellformed namespaces" `Quick test_wellformed_namespaces;
      Alcotest.test_case "infer_decls arrays" `Quick test_infer_decls_arrays;
      Alcotest.test_case "cfm store value flow" `Quick test_cfm_store_value_flow;
      Alcotest.test_case "cfm store index flow" `Quick test_cfm_store_index_flow;
      Alcotest.test_case "cfm index read flow" `Quick test_cfm_index_read_flow;
      Alcotest.test_case "denning agrees on stores" `Quick test_denning_agrees_on_stores;
      Alcotest.test_case "infer array constraints" `Quick test_infer_array_constraints;
      Alcotest.test_case "flow-sensitive weak update" `Quick test_fs_weak_update;
      Alcotest.test_case "thm 1+2 with arrays (property)" `Quick
        test_theorem_equivalence_with_arrays;
      Alcotest.test_case "exec array ops" `Quick test_exec_array_ops;
      Alcotest.test_case "exec out-of-bounds faults" `Quick test_exec_out_of_bounds_faults;
      Alcotest.test_case "exec arrays are per-path" `Quick test_exec_arrays_are_per_path;
      Alcotest.test_case "taint array weak update" `Quick test_taint_array_weak_update;
      Alcotest.test_case "NI array index channel" `Quick test_ni_array_channel;
      Alcotest.test_case "NI certified array programs secure" `Slow
        test_ni_certified_array_programs_secure;
    ] )
