(* Tests for the paper-corpus module and the report/binding plumbing the
   CLI builds on. *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Mls = Ifc_lattice.Mls
module Ast = Ifc_lang.Ast
module Wellformed = Ifc_lang.Wellformed
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Report = Ifc_core.Report
module Paper = Ifc_core.Paper

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let two = Chain.two

let low = two.Lattice.bottom

let high = two.Lattice.top

(* ------------------------------------------------------------------ *)
(* Corpus sanity *)

let test_all_programs_wellformed () =
  List.iter
    (fun (name, p) ->
      if not (Wellformed.is_valid p) then
        Alcotest.failf "paper program %s is ill-formed" name)
    Paper.all

let test_all_programs_roundtrip () =
  List.iter
    (fun (name, p) ->
      let printed = Ifc_lang.Pretty.program_to_string p in
      match Ifc_lang.Parser.parse_program printed with
      | Ok p' -> check (name ^ " roundtrips") true (Ast.equal_program p p')
      | Error e -> Alcotest.failf "%s reparse: %a" name Ifc_lang.Parser.pp_error e)
    Paper.all

let test_fig3_vars_complete () =
  let declared, _arrays, sems, _chans = Ifc_lang.Vars.declared Paper.fig3 in
  let all = Ifc_support.Sset.union declared sems in
  List.iter
    (fun v -> check ("declares " ^ v) true (Ifc_support.Sset.mem v all))
    Paper.fig3_vars;
  check_int "exactly seven" 7 (Ifc_support.Sset.cardinal all)

(* ------------------------------------------------------------------ *)
(* Binding plumbing *)

let test_binding_of_program_annotations () =
  let p =
    match
      Ifc_lang.Parser.parse_program
        "var a : integer class high; b : integer; s : semaphore initially(0) class low; skip"
    with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse: %a" Ifc_lang.Parser.pp_error e
  in
  (match Binding.of_program two p with
  | Ok b ->
    check_int "annotated high" high (Binding.sbind b "a");
    check_int "unannotated defaults to bottom" low (Binding.sbind b "b");
    check_int "semaphore annotation" low (Binding.sbind b "s")
  | Error e -> Alcotest.fail e);
  (* Unknown class names are reported. *)
  let bad =
    match Ifc_lang.Parser.parse_program "var a : integer class ultra; skip" with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse: %a" Ifc_lang.Parser.pp_error e
  in
  check "unknown class rejected" true (Result.is_error (Binding.of_program two bad));
  (* Overrides beat annotations. *)
  match Binding.of_program two ~overrides:[ ("a", low) ] p with
  | Ok b -> check_int "override wins" low (Binding.sbind b "a")
  | Error e -> Alcotest.fail e

let test_binding_of_spec () =
  (match Binding.of_spec two "x : high\n# comment\n\ny : low # trailing" with
  | Ok b ->
    check_int "x" high (Binding.sbind b "x");
    check_int "y" low (Binding.sbind b "y")
  | Error e -> Alcotest.fail e);
  check "bad class" true (Result.is_error (Binding.of_spec two "x : purple"));
  check "missing colon" true (Result.is_error (Binding.of_spec two "x high"));
  (* MLS labels contain colons; the first colon separates. *)
  let mls = Mls.standard in
  match Binding.of_spec mls "doc : secret:{NUC}" with
  | Ok b ->
    check "mls label parsed" true
      (mls.Lattice.equal (Binding.sbind b "doc") (Mls.label mls "secret:{NUC}"))
  | Error e -> Alcotest.fail e

let test_binding_default () =
  let b = Binding.make two ~default:high [ ("x", low) ] in
  check_int "explicit" low (Binding.sbind b "x");
  check_int "default" high (Binding.sbind b "anything")

let test_expr_class () =
  let b = Binding.make two [ ("h", high); ("l", low) ] in
  let expr src =
    match Ifc_lang.Parser.parse_expr src with
    | Ok e -> e
    | Error e -> Alcotest.failf "parse: %a" Ifc_lang.Parser.pp_error e
  in
  check_int "constant is low" low (Binding.expr_class b (expr "42"));
  check_int "join" high (Binding.expr_class b (expr "l + h * 2"));
  check_int "boolean op too" high (Binding.expr_class b (expr "h = 0 and l = 1"))

(* ------------------------------------------------------------------ *)
(* Report rendering *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let index_of haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then max_int else if String.sub haystack i n = needle then i else go (i + 1)
  in
  go 0

let test_report_summary_and_checks () =
  let b = Binding.make two [ ("x", high); ("y", low) ] in
  let s =
    match Ifc_lang.Parser.parse_stmt "begin y := x; x := y end" with
    | Ok s -> s
    | Error e -> Alcotest.failf "parse: %a" Ifc_lang.Parser.pp_error e
  in
  let r = Cfm.analyze b s in
  let summary = Report.summary r in
  check "summary says rejected" true (contains summary "REJECTED");
  let full = Fmt.str "%a" (Report.pp_result two) r in
  check "full report has FAIL line" true (contains full "[FAIL]");
  check "full report shows classes" true (contains full "high <= low");
  check "failures listed first" true (index_of full "[FAIL]" < index_of full "[ok]")

let test_report_requirements_dedup () =
  let s =
    match Ifc_lang.Parser.parse_stmt "begin y := x; y := x end" with
    | Ok s -> s
    | Error e -> Alcotest.failf "parse: %a" Ifc_lang.Parser.pp_error e
  in
  let rendered =
    Fmt.str "%a" Report.pp_requirements (Ifc_core.Infer.constraints s)
  in
  (* The same constraint appears twice in the program but once in the
     rendered requirement list. *)
  let first = index_of rendered "sbind(x) <= sbind(y)" in
  check "present" true (first < max_int);
  let rest = String.sub rendered (first + 1) (String.length rendered - first - 1) in
  check "deduplicated" true (index_of rest "sbind(x) <= sbind(y)" = max_int)

let test_denning_report_renders () =
  let b = Binding.make two [ ("s", low) ] in
  let st =
    match Ifc_lang.Parser.parse_stmt "cobegin wait(s) || skip coend" with
    | Ok s -> s
    | Error e -> Alcotest.failf "parse: %a" Ifc_lang.Parser.pp_error e
  in
  let r = Ifc_core.Denning.analyze ~on_concurrency:`Reject b st in
  let rendered = Fmt.str "%a" (Report.pp_denning two) r in
  check "mentions rejected constructs" true (contains rendered "rejected parallel")

let suite =
  ( "paper",
    [
      Alcotest.test_case "all programs well-formed" `Quick test_all_programs_wellformed;
      Alcotest.test_case "all programs roundtrip" `Quick test_all_programs_roundtrip;
      Alcotest.test_case "fig3 vars complete" `Quick test_fig3_vars_complete;
      Alcotest.test_case "binding of_program annotations" `Quick
        test_binding_of_program_annotations;
      Alcotest.test_case "binding of_spec" `Quick test_binding_of_spec;
      Alcotest.test_case "binding default" `Quick test_binding_default;
      Alcotest.test_case "expr class" `Quick test_expr_class;
      Alcotest.test_case "report summary/checks" `Quick test_report_summary_and_checks;
      Alcotest.test_case "report requirements dedup" `Quick
        test_report_requirements_dedup;
      Alcotest.test_case "denning report" `Quick test_denning_report_renders;
    ] )
