(* Tests for the module system: linked parsing and printing, summary
   exactness against direct CFM, summary-based linking vs whole-program
   certification, ifc-cert 2 round-trips and tamper rejection,
   store-backed summary reuse, refinement soundness, and the Job.Link
   pipeline bridge. *)

module Ast = Ifc_lang.Ast
module Parser = Ifc_lang.Parser
module Pretty = Ifc_lang.Pretty
module Gen = Ifc_lang.Gen
module Wellformed = Ifc_lang.Wellformed
module Vars = Ifc_lang.Vars
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Chain = Ifc_lattice.Chain
module Lattice = Ifc_lattice.Lattice
module Linked = Ifc_cert.Linked
module Summary = Ifc_modsys.Summary
module Link = Ifc_modsys.Link
module Refine = Ifc_modsys.Refine
module Job = Ifc_pipeline.Job
module Store = Ifc_store.Store
module Prng = Ifc_support.Prng
module Sset = Ifc_support.Sset

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let qtest ?(count = 60) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let two = Lattice.stringify Chain.two

let ( // ) = Filename.concat

let fresh_dir () =
  let path = Filename.temp_file "ifc-modsys" "" in
  Sys.remove path;
  path

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (path // f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let open_exn dir =
  match Store.open_ dir with
  | Ok st -> st
  | Error msg -> Alcotest.failf "Store.open_ %s: %s" dir msg

let parse_linked_exn src =
  match Parser.parse_linked src with
  | Ok l -> l
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let certify_exn ?store l =
  match Link.certify ?store ~lattice:two l with
  | Ok o -> o
  | Error e -> Alcotest.failf "certify: %s" e

let binding_exn l =
  match Link.binding ~lattice:two l with
  | Ok b -> b
  | Error e -> Alcotest.failf "binding: %s" e

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let replace_first ~sub ~by text =
  let nt = String.length text and ns = String.length sub in
  let rec find i =
    if i + ns > nt then None
    else if String.sub text i ns = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.failf "fixture drift: %S not found" sub
  | Some i -> String.sub text 0 i ^ by ^ String.sub text (i + ns) (nt - i - ns)

(* A certified library: producer computes from a low config, consumer
   sinks the product into a high variable, main supplies the config. *)
let lib_src =
  "module producer\n\
   provides (out : class <= high)\n\
   requires (cfg : class >= low)\n\
   var out : integer class high;\n\
   begin out := cfg + 1 end\n\
   end\n\n\
   module consumer\n\
   requires (out : class >= low)\n\
   var sink : integer class high;\n\
   begin sink := out end\n\
   end\n\n\
   var cfg : integer class low;\n\
   begin cfg := 1 end"

(* A leaking unit: the residual constraint cls(secret) <= low fails once
   the linker binds secret to high. *)
let leak_src =
  "module leaker\n\
   provides (out : class <= low)\n\
   requires (secret : class >= low)\n\
   var out : integer class low;\n\
   begin out := secret end\n\
   end\n\n\
   var secret : integer class high;\n\
   begin skip end"

(* Flow-clean but interface-dirty: the export's declared class exceeds
   its provides bound. *)
let shady_src =
  "module shady\n\
   provides (out : class <= low)\n\
   var out : integer class high;\n\
   out := 0\n\
   end"

(* ------------------------------------------------------------------ *)
(* Language layer *)

let test_roundtrip () =
  let l = parse_linked_exn lib_src in
  check_int "two modules" 2 (List.length l.Ast.modules);
  check "has main" true (l.Ast.main <> None);
  let printed = Pretty.linked_to_string l in
  let l2 = parse_linked_exn printed in
  check "round-trips" true (Ast.equal_linked l l2);
  check_string "second print is stable" printed (Pretty.linked_to_string l2)

let test_looks_linked () =
  check "module source" true (Parser.looks_linked lib_src);
  check "plain program" false
    (Parser.looks_linked "var x : integer;\nbegin x := 0 end")

let test_wellformed () =
  let l = parse_linked_exn lib_src in
  check "library is well-formed" true (Wellformed.linked_is_valid l);
  let dup = parse_linked_exn (lib_src ^ "") in
  let dup = { dup with Ast.modules = dup.Ast.modules @ dup.Ast.modules } in
  check "duplicate module names rejected" false (Wellformed.linked_is_valid dup);
  let dangling =
    parse_linked_exn
      "module a\nrequires (ghost : class >= low)\nvar x : integer;\nx := ghost\nend"
  in
  check "unresolvable import rejected" false (Wellformed.linked_is_valid dangling)

(* ------------------------------------------------------------------ *)
(* Linking *)

let test_certify_lib () =
  let l = parse_linked_exn lib_src in
  let o = certify_exn l in
  check "certifies" true o.Link.ok;
  check "flow verdict" true o.Link.cert_ok;
  check "interface verdict" true o.Link.iface_ok;
  check_int "all summaries computed" 2 o.Link.computed

let test_certify_leak () =
  let l = parse_linked_exn leak_src in
  let o = certify_exn l in
  check "does not certify" false o.Link.ok;
  check "flow verdict false" false o.Link.cert_ok;
  check "an issue names the constraint" true
    (List.exists (fun i -> contains_substring i "cls(secret) <= const(low)") o.Link.issues)

let test_iface_separate_from_flow () =
  let l = parse_linked_exn shady_src in
  let o = certify_exn l in
  check "flow verdict true" true o.Link.cert_ok;
  check "interface verdict false" false o.Link.iface_ok;
  check "overall false" false o.Link.ok

(* The acceptance criterion: the compositional flow verdict agrees with
   whole-program CFM on the elaboration, byte for byte. *)
let agreement_exn l =
  let o = certify_exn l in
  let bind = binding_exn l in
  let whole = Cfm.certified bind (Link.elaborate l).Ast.body in
  check "cert_ok = whole-program CFM" whole o.Link.cert_ok

let test_agreement_hand_cases () =
  List.iter (fun src -> agreement_exn (parse_linked_exn src))
    [ lib_src; leak_src; shady_src ]

(* ------------------------------------------------------------------ *)
(* Random exactness: a summary resolved under a concrete class
   assignment equals direct CFM on the module body. *)

let class_of salt v =
  let arr = Array.of_list two.Lattice.elements in
  arr.(abs (Hashtbl.hash (salt, v)) mod Array.length arr)

let prop_summary_exact (bp : string Qcheck_arbitrary.bound_program) =
  let prog = bp.Qcheck_arbitrary.prog in
  let salt = bp.Qcheck_arbitrary.salt in
  let vars = Sset.elements (Vars.all_vars prog.Ast.body) in
  let is_import v = abs (Hashtbl.hash (salt + 1, v)) mod 3 = 0 in
  let imports = List.filter is_import vars in
  let locals = List.filter (fun v -> not (is_import v)) vars in
  let m =
    {
      Ast.iface =
        {
          Ast.m_name = "m";
          provides = [];
          requires =
            List.map (fun v -> { Ast.iv_name = v; iv_class = "low" }) imports;
        };
      m_decls =
        List.map (fun v -> Ast.Var_decl { name = v; cls = Some (class_of salt v) }) locals;
      m_body = prog.Ast.body;
    }
  in
  match Summary.summarize ~lattice:two m with
  | Error e -> QCheck.Test.fail_reportf "summarize: %s" e
  | Ok s ->
    let bind = Binding.make two (List.map (fun v -> (v, class_of salt v)) vars) in
    let cls v = Some (class_of salt v) in
    let r = Cfm.analyze bind prog.Ast.body in
    let resolved_mod = Summary.resolve_smod ~lattice:two ~cls s.Linked.smod in
    let resolved_flow = Summary.resolve_sflow ~lattice:two ~cls s.Linked.sflow in
    let summary_cert =
      s.Linked.locals_ok
      && List.for_all
           (fun c -> Summary.eval_constr ~lattice:two ~cls c = Some true)
           s.Linked.constraints
    in
    if resolved_mod <> Some r.Cfm.mod_ then
      QCheck.Test.fail_reportf "mod mismatch: %s"
        (match resolved_mod with Some m -> m | None -> "<unresolved>")
    else if resolved_flow <> Some r.Cfm.flow then
      QCheck.Test.fail_report "flow mismatch"
    else if summary_cert <> r.Cfm.certified then
      QCheck.Test.fail_reportf "verdict mismatch: summary %b, direct %b" summary_cert
        r.Cfm.certified
    else true

(* ------------------------------------------------------------------ *)
(* Random agreement: compositional link of generated modules equals
   whole-program certification of the elaboration. *)

let ensure_var_decl name decls =
  let declares n = function
    | Ast.Var_decl { name; _ }
    | Ast.Arr_decl { name; _ }
    | Ast.Sem_decl { name; _ }
    | Ast.Chan_decl { name; _ } ->
      String.equal name n
  in
  if List.exists (declares name) decls then decls
  else decls @ [ Ast.Var_decl { name; cls = None } ]

let drop_var_decl name decls =
  List.filter
    (function Ast.Var_decl { name = n; _ } -> not (String.equal n name) | _ -> true)
    decls

let annotate salt decls =
  List.map
    (function
      | Ast.Var_decl { name; _ } -> Ast.Var_decl { name; cls = Some (class_of salt name) }
      | d -> d)
    decls

let gen_linked seed =
  let rng = Prng.create seed in
  let salt = seed lxor 0x2545 in
  let cfg1 = { Gen.sequential with Gen.vars = [ "aa"; "ab"; "ac" ] } in
  let cfg2 = { Gen.sequential with Gen.vars = [ "ba"; "bb"; "aa" ] } in
  let p1 = Gen.program rng cfg1 ~size:8 in
  let p2 = Gen.program rng cfg2 ~size:8 in
  let m1 =
    {
      Ast.iface =
        {
          Ast.m_name = "m1";
          provides = [ { Ast.iv_name = "aa"; iv_class = "high" } ];
          requires = [];
        };
      m_decls = annotate salt (ensure_var_decl "aa" p1.Ast.decls);
      m_body = p1.Ast.body;
    }
  in
  let m2 =
    {
      Ast.iface =
        {
          Ast.m_name = "m2";
          provides = [];
          requires = [ { Ast.iv_name = "aa"; iv_class = "low" } ];
        };
      m_decls = annotate (salt + 1) (drop_var_decl "aa" p2.Ast.decls);
      m_body = p2.Ast.body;
    }
  in
  let main =
    if seed mod 2 = 0 then None
    else
      Some (Gen.program rng { Gen.sequential with Gen.vars = [ "ca"; "cb" ] } ~size:5)
  in
  { Ast.modules = [ m1; m2 ]; main }

let prop_link_agrees seed =
  let l = gen_linked seed in
  if not (Wellformed.linked_is_valid l) then QCheck.assume_fail ()
  else
    match Link.certify ~lattice:two l with
    | Error e -> QCheck.Test.fail_reportf "certify: %s" e
    | Ok o -> (
      match Link.binding ~lattice:two l with
      | Error e -> QCheck.Test.fail_reportf "binding: %s" e
      | Ok bind ->
        let whole = Cfm.certified bind (Link.elaborate l).Ast.body in
        if o.Link.cert_ok <> whole then
          QCheck.Test.fail_reportf "link says %b, whole-program CFM says %b\n%s"
            o.Link.cert_ok whole
            (Pretty.linked_to_string l)
        else true)

(* ------------------------------------------------------------------ *)
(* ifc-cert 2 *)

let emit_exn ?store ?with_components l =
  match Link.emit ?store ?with_components ~lattice:two l with
  | Ok (text, components) -> (text, components)
  | Error e -> Alcotest.failf "emit: %s" e

let test_emit_roundtrip () =
  let l = parse_linked_exn lib_src in
  let text, components = emit_exn l in
  check "version sniffs as 2" true (Linked.sniff_version text = Some 2);
  check_int "both modules have components" 2 (List.length components);
  match Linked.parse text with
  | Error e -> Alcotest.failf "own output must parse (line %d: %s)" e.Ifc_cert.Cert.line e.Ifc_cert.Cert.reason
  | Ok parsed ->
    check_string "re-emission is byte-identical" text (Linked.to_string parsed);
    (match Linked.check ~components:(List.map snd components) parsed l with
    | Ok () -> ()
    | Error fs ->
      Alcotest.failf "checker rejects own output: %s: %s"
        (List.hd fs).Linked.path (List.hd fs).Linked.reason)

let test_tampered_summary_rejected () =
  let l = parse_linked_exn lib_src in
  let text, _ = emit_exn l in
  let tampered = replace_first ~sub:"  locals: ok" ~by:"  locals: fail" text in
  match Linked.parse tampered with
  | Error _ -> Alcotest.fail "tampered text should still parse"
  | Ok parsed -> (
    match Linked.check parsed l with
    | Ok () -> Alcotest.fail "checker must reject a tampered summary node"
    | Error fs ->
      check "failure names the summary" true
        (List.exists (fun (f : Linked.failure) -> f.Linked.rule = "locals") fs))

let test_tampered_constraint_rejected () =
  let l = parse_linked_exn lib_src in
  let text, _ = emit_exn l in
  (* Slip a violated constraint into the producer's (empty) residue: the
     checker must re-evaluate what the certificate claims, not trust it. *)
  let tampered =
    replace_first ~sub:"  constraints: {}" ~by:"  constraints: {const(high) <= cls(cfg)}"
      text
  in
  match Linked.parse tampered with
  | Error _ -> Alcotest.fail "tampered text should still parse"
  | Ok parsed -> (
    match Linked.check parsed l with
    | Ok () -> Alcotest.fail "checker must re-evaluate residual constraints"
    | Error fs ->
      check "failure is a constraint failure" true
        (List.exists (fun (f : Linked.failure) -> f.Linked.rule = "constraint") fs))

let test_tampered_component_rejected () =
  let l = parse_linked_exn lib_src in
  let text, components = emit_exn l in
  match Linked.parse text with
  | Error _ -> Alcotest.fail "own output must parse"
  | Ok parsed -> (
    let tampered =
      List.map (fun (_, c) -> replace_first ~sub:"ifc-cert 1" ~by:"ifc-cert 1 " c) components
    in
    match Linked.check ~components:tampered parsed l with
    | Ok () -> Alcotest.fail "checker must reject mangled component certificates"
    | Error _ -> ())

let test_wrong_unit_rejected () =
  let l = parse_linked_exn lib_src in
  let other = parse_linked_exn leak_src in
  let text, _ = emit_exn l in
  match Linked.parse text with
  | Error _ -> Alcotest.fail "own output must parse"
  | Ok parsed -> (
    match Linked.check parsed other with
    | Ok () -> Alcotest.fail "certificate must not transfer to another unit"
    | Error fs ->
      check "digest failure reported" true
        (List.exists (fun (f : Linked.failure) -> f.Linked.rule = "digest") fs))

let test_v1_rejected_by_v2_parser () =
  match Linked.parse "ifc-cert 1\n" with
  | Ok _ -> Alcotest.fail "version-1 header must be rejected"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Store-backed reuse *)

let lib_src_edited =
  replace_first ~sub:"sink := out" ~by:"sink := out + 1" lib_src

let test_store_reuse () =
  with_dir (fun dir ->
      let st = open_exn dir in
      let l = parse_linked_exn lib_src in
      let o1 = certify_exn ~store:st l in
      check_int "first run computes both" 2 o1.Link.computed;
      check_int "first run reuses none" 0 o1.Link.reused;
      let o2 = certify_exn ~store:st l in
      check_int "second run computes none" 0 o2.Link.computed;
      check_int "second run reuses both" 2 o2.Link.reused;
      check "verdicts agree" o1.Link.ok o2.Link.ok;
      (* Edit one module: only that module's summary is recomputed. *)
      let l' = parse_linked_exn lib_src_edited in
      let o3 = certify_exn ~store:st l' in
      check_int "one module recomputed after the edit" 1 o3.Link.computed;
      check_int "the other is reused" 1 o3.Link.reused)

let test_store_roundtrip_summary () =
  with_dir (fun dir ->
      let st = open_exn dir in
      let l = parse_linked_exn lib_src in
      let m = List.hd l.Ast.modules in
      match Summary.summarize ~lattice:two m with
      | Error e -> Alcotest.failf "summarize: %s" e
      | Ok s ->
        let key = Summary.key ~lattice:two m in
        Summary.to_store st ~key s;
        (match Summary.of_store st ~key with
        | None -> Alcotest.fail "stored summary must be found"
        | Some s' -> check "summary round-trips through the store" true (s = s')))

(* ------------------------------------------------------------------ *)
(* Refinement *)

let filter_base_src =
  "module filter\n\
   provides (out : class <= low)\n\
   requires (inp : class >= low)\n\
   var out : integer class low;\n\
   out := 0\n\
   end"

let filter_ok_src =
  "module filter\n\
   provides (out : class <= low)\n\
   requires (inp : class >= low)\n\
   var out : integer class low;\n\
   out := 1\n\
   end"

let filter_leak_src =
  "module filter\n\
   provides (out : class <= low)\n\
   requires (inp : class >= low)\n\
   var out : integer class low;\n\
   out := inp\n\
   end"

let parse_module_exn src =
  match (parse_linked_exn src).Ast.modules with
  | [ m ] -> m
  | _ -> Alcotest.fail "expected exactly one module"

let refine_exn ~base replacement =
  match Refine.check_against ~lattice:two ~base replacement with
  | Ok r -> r
  | Error e -> Alcotest.failf "refine: %s" e

let test_refine_self () =
  let base = parse_module_exn filter_base_src in
  let r = refine_exn ~base base in
  check "a module refines itself" true r.Refine.ok

let test_refine_ok () =
  let base = parse_module_exn filter_base_src in
  let r = refine_exn ~base (parse_module_exn filter_ok_src) in
  check "constant-for-constant passes" true r.Refine.ok

let test_refine_leak_rejected () =
  let base = parse_module_exn filter_base_src in
  let r = refine_exn ~base (parse_module_exn filter_leak_src) in
  check "new residual constraint rejected" false r.Refine.ok;
  check "reason mentions the constraint" true
    (List.exists (fun s -> contains_substring s "residual constraint") r.Refine.reasons)

(* Soundness, concretely: the rejected refinement really does break a
   link the accepted one survives. *)
let test_refine_soundness_witness () =
  let unit_with m_src =
    parse_linked_exn
      (m_src
      ^ "\n\nvar inp : integer class high; sink : integer class low;\n\
         begin sink := out end")
  in
  check "base unit certifies" true (certify_exn (unit_with filter_base_src)).Link.ok;
  check "accepted refinement keeps the link certified" true
    (certify_exn (unit_with filter_ok_src)).Link.ok;
  check "rejected refinement breaks the link" false
    (certify_exn (unit_with filter_leak_src)).Link.ok

(* ------------------------------------------------------------------ *)
(* Pipeline bridge *)

let test_job_link () =
  let l = parse_linked_exn lib_src in
  let analysis = Link.job_analysis ~lattice:two l in
  let spec =
    Job.make ~id:0 ~name:"lib" ~lattice:two ~binding:(binding_exn l)
      ~analyses:[ analysis ] (Link.elaborate l)
  in
  let r = Job.run spec in
  check "job passes" true (Job.verdict r = `Pass);
  (match r.Job.outcome with
  | Ok [ ar ] ->
    check_string "analysis name" "link" ar.Job.analysis;
    check "artifact is the linked certificate" true
      (match ar.Job.artifact with
      | Some text -> Linked.sniff_version text = Some 2
      | None -> false)
  | _ -> Alcotest.fail "expected exactly one analysis result");
  (* Interface bounds join the cache key even when elaborations agree. *)
  let weak = parse_linked_exn (replace_first ~sub:"<= low" ~by:"<= high" shady_src) in
  let strict = parse_linked_exn shady_src in
  check "elaborations coincide" true
    (Pretty.program_to_string (Link.elaborate weak)
    = Pretty.program_to_string (Link.elaborate strict));
  check "cache keys differ" true
    (Job.analysis_key (Link.job_analysis ~lattice:two weak)
    <> Job.analysis_key (Link.job_analysis ~lattice:two strict))

let suite =
  ( "modsys",
    [
      Alcotest.test_case "linked round-trip" `Quick test_roundtrip;
      Alcotest.test_case "looks_linked" `Quick test_looks_linked;
      Alcotest.test_case "linked wellformedness" `Quick test_wellformed;
      Alcotest.test_case "certify library" `Quick test_certify_lib;
      Alcotest.test_case "certify leak" `Quick test_certify_leak;
      Alcotest.test_case "iface verdict separate" `Quick test_iface_separate_from_flow;
      Alcotest.test_case "agreement on hand cases" `Quick test_agreement_hand_cases;
      qtest ~count:200 "summary = direct CFM on random modules"
        (Qcheck_arbitrary.bound_program two) prop_summary_exact;
      qtest ~count:200 "link = whole-program CFM on random units"
        QCheck.(int_bound 1_000_000) prop_link_agrees;
      Alcotest.test_case "ifc-cert 2 round-trip" `Quick test_emit_roundtrip;
      Alcotest.test_case "tampered summary rejected" `Quick test_tampered_summary_rejected;
      Alcotest.test_case "tampered constraint rejected" `Quick
        test_tampered_constraint_rejected;
      Alcotest.test_case "tampered component rejected" `Quick
        test_tampered_component_rejected;
      Alcotest.test_case "wrong unit rejected" `Quick test_wrong_unit_rejected;
      Alcotest.test_case "v1 header rejected by v2 parser" `Quick
        test_v1_rejected_by_v2_parser;
      Alcotest.test_case "store-backed summary reuse" `Quick test_store_reuse;
      Alcotest.test_case "summary store round-trip" `Quick test_store_roundtrip_summary;
      Alcotest.test_case "refine: self" `Quick test_refine_self;
      Alcotest.test_case "refine: accepted" `Quick test_refine_ok;
      Alcotest.test_case "refine: leak rejected" `Quick test_refine_leak_rejected;
      Alcotest.test_case "refine: soundness witness" `Quick test_refine_soundness_witness;
      Alcotest.test_case "Job.Link bridge" `Quick test_job_link;
    ] )
