(* Tests for the batch certification pipeline: the domain pool, the LRU
   result cache, the JSONL telemetry sink, and — the load-bearing
   property — batch determinism: verdicts are a function of the job
   specs alone, never of the worker count, scheduling, or cache state. *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Ast = Ifc_lang.Ast
module Gen = Ifc_lang.Gen
module Prng = Ifc_support.Prng
module Sset = Ifc_support.Sset
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Pool = Ifc_pipeline.Pool
module Cache = Ifc_pipeline.Cache
module Job = Ifc_pipeline.Job
module Batch = Ifc_pipeline.Batch
module Telemetry = Ifc_pipeline.Telemetry

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let two = Lattice.stringify Chain.two

(* ------------------------------------------------------------------ *)
(* A reproducible corpus with random bindings, like the bench uses. *)

let random_binding rng lat stmt =
  let arr = Array.of_list lat.Lattice.elements in
  Binding.make lat
    (List.map
       (fun v -> (v, arr.(Prng.int rng (Array.length arr))))
       (Sset.elements (Ifc_lang.Vars.all_vars stmt)))

let corpus ?(analyses = [ Job.Cfm ]) n =
  let rng = Prng.create 20260806 in
  List.init n (fun i ->
      let p = Gen.program rng Gen.default ~size:(1 + (i mod 20)) in
      let b = random_binding rng two p.Ast.body in
      Job.make ~id:i
        ~name:(Printf.sprintf "corpus:%d" i)
        ~lattice:two ~binding:b ~analyses p)

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_runs_everything () =
  let count = Atomic.make 0 in
  Pool.run ~workers:4
    (List.init 100 (fun _ () -> Atomic.incr count));
  check_int "all tasks ran" 100 (Atomic.get count)

let test_pool_survives_raising_tasks () =
  let count = Atomic.make 0 and errors = Atomic.make 0 in
  Pool.run ~workers:2
    ~on_error:(fun ~worker:_ _ -> Atomic.incr errors)
    (List.init 50 (fun i () ->
         if i mod 5 = 0 then failwith "boom" else Atomic.incr count));
  check_int "non-raising tasks all ran" 40 (Atomic.get count);
  check_int "every raise was reported" 10 (Atomic.get errors)

let test_pool_shutdown_drains_and_rejects () =
  let count = Atomic.make 0 in
  let pool = Pool.create ~workers:2 () in
  List.iter (fun task -> Pool.submit pool task)
    (List.init 20 (fun _ () -> Atomic.incr count));
  Pool.shutdown pool;
  check_int "queued tasks drained before exit" 20 (Atomic.get count);
  check "submit after shutdown raises" true
    (try
       Pool.submit pool (fun () -> ());
       false
     with Invalid_argument _ -> true);
  (* Idempotent. *)
  Pool.shutdown pool

let test_pool_rejects_zero_workers () =
  check "workers < 1 rejected" true
    (try
       ignore (Pool.create ~workers:0 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  (* Touch "a" so "b" is the LRU victim when "c" arrives. *)
  check "a hits" true (Cache.find c "a" = Some 1);
  Cache.add c "c" 3;
  check "b evicted" true (Cache.find c "b" = None);
  check "a survives" true (Cache.find c "a" = Some 1);
  check "c present" true (Cache.find c "c" = Some 3);
  let stats = Cache.stats c in
  check_int "one eviction" 1 stats.Cache.evictions;
  check_int "size at capacity" 2 stats.Cache.size

let test_cache_counters () =
  let c = Cache.create ~capacity:8 () in
  check "miss on empty" true (Cache.find c "k" = None);
  Cache.add c "k" 42;
  check "hit after add" true (Cache.find c "k" = Some 42);
  check "mem is counter-neutral" true (Cache.mem c "k");
  let stats = Cache.stats c in
  check_int "hits" 1 stats.Cache.hits;
  check_int "misses" 1 stats.Cache.misses;
  check "hit rate 50%" true (Float.equal (Cache.hit_rate stats) 50.)

let test_cache_capacity_one () =
  (* The degenerate boundary: every insert of a new key evicts. *)
  let c = Cache.create ~capacity:1 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  check "a evicted" true (Cache.find c "a" = None);
  check "b present" true (Cache.find c "b" = Some 2);
  let stats = Cache.stats c in
  check_int "one eviction at capacity 1" 1 stats.Cache.evictions;
  check_int "size stays 1" 1 stats.Cache.size

let test_cache_exact_capacity_boundary () =
  (* Filling to exactly capacity evicts nothing; one past it evicts
     exactly the LRU entry, recency refreshed by an intervening find. *)
  let c = Cache.create ~capacity:3 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Cache.add c "c" 3;
  check_int "no eviction at exact capacity" 0 (Cache.stats c).Cache.evictions;
  check "a hits" true (Cache.find c "a" = Some 1);
  Cache.add c "d" 4;
  check "b was the LRU victim" true (Cache.find c "b" = None);
  check "a survives (refreshed)" true (Cache.find c "a" = Some 1);
  check "c survives" true (Cache.find c "c" = Some 3);
  check "d present" true (Cache.find c "d" = Some 4);
  check_int "exactly one eviction" 1 (Cache.stats c).Cache.evictions

let test_cache_reinsert_refreshes_recency () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  (* Re-inserting "a" must refresh it, making "b" the victim. *)
  Cache.add c "a" 10;
  Cache.add c "c" 3;
  check "b evicted after a's re-insert" true (Cache.find c "b" = None);
  check "a survives with new value" true (Cache.find c "a" = Some 10);
  check "c present" true (Cache.find c "c" = Some 3)

let test_cache_mem_is_recency_neutral () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  (* mem must NOT refresh: "a" stays the LRU victim. *)
  check "mem sees a" true (Cache.mem c "a");
  Cache.add c "c" 3;
  check "a still evicted despite mem" true (Cache.find c "a" = None);
  check "b survives" true (Cache.find c "b" = Some 2)

let test_cache_fold_lru_order () =
  let c = Cache.create ~capacity:8 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  Cache.add c "c" 3;
  (* Touch "a": recency becomes a, c, b. *)
  check "a hits" true (Cache.find c "a" = Some 1);
  let keys = List.rev (Cache.fold c (fun acc k _ -> k :: acc) []) in
  Alcotest.(check (list string)) "MRU-first order" [ "a"; "c"; "b" ] keys;
  let before = Cache.stats c in
  ignore (Cache.fold c (fun acc _ _ -> acc + 1) 0);
  let after = Cache.stats c in
  check_int "fold is hit-neutral" before.Cache.hits after.Cache.hits;
  check_int "fold is miss-neutral" before.Cache.misses after.Cache.misses;
  (* Recency-neutral too: the fold must not have bumped "b". *)
  let c2 = Cache.create ~capacity:2 () in
  Cache.add c2 "x" 1;
  Cache.add c2 "y" 2;
  ignore (Cache.fold c2 (fun acc k _ -> k :: acc) []);
  Cache.add c2 "z" 3;
  check "x still the LRU victim after fold" true (Cache.find c2 "x" = None)

let test_cache_invalidation_vs_eviction () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  check "remove reports presence" true (Cache.remove c "a");
  check "remove of absent is false" false (Cache.remove c "nope");
  check "a gone" true (Cache.find c "a" = None);
  Cache.add c "c" 3;
  Cache.add c "d" 4;
  (* b, c, d through capacity 2: exactly one capacity eviction. *)
  let stats = Cache.stats c in
  check_int "one invalidation" 1 stats.Cache.invalidations;
  check_int "one eviction" 1 stats.Cache.evictions;
  check_int "size" 2 stats.Cache.size

let test_cache_striped_semantics () =
  (* With [shards > 1] the cache is an array of independent LRU
     stripes. Lookups still route by key, stats sum every stripe, and
     total size never exceeds total capacity. *)
  let c = Cache.create ~shards:4 ~capacity:64 () in
  check_int "shards recorded" 4 (Cache.shards c);
  check_int "single-stripe default" 1 (Cache.shards (Cache.create ()));
  for i = 0 to 99 do
    Cache.add c ("k" ^ string_of_int i) i
  done;
  for i = 0 to 99 do
    (* Re-add duplicates: replaces in place, never double-counts. *)
    Cache.add c ("k" ^ string_of_int i) i
  done;
  let found = ref 0 in
  for i = 0 to 99 do
    match Cache.find c ("k" ^ string_of_int i) with
    | Some v ->
      incr found;
      check "value routed to the right stripe" true (v = i)
    | None -> ()
  done;
  let stats = Cache.stats c in
  check_int "hits + misses = lookups" 100 (stats.Cache.hits + stats.Cache.misses);
  check_int "hits are the found ones" !found stats.Cache.hits;
  check "size bounded by capacity" true (stats.Cache.size <= 64);
  check "evictions happened" true (stats.Cache.evictions > 0);
  (* fold visits exactly the resident entries. *)
  check_int "fold covers residents" stats.Cache.size
    (Cache.fold c (fun acc _ _ -> acc + 1) 0);
  (* remove routes like find. *)
  let resident_key =
    Cache.fold c (fun acc k _ -> match acc with Some _ -> acc | None -> Some k)
      None
  in
  (match resident_key with
  | Some k ->
    check "remove routed" true (Cache.remove c k);
    check "removed gone" true (Cache.find c k = None)
  | None -> Alcotest.fail "striped cache unexpectedly empty");
  Cache.clear c;
  check_int "clear empties every stripe" 0 (Cache.stats c).Cache.size

let test_cache_striped_concurrent () =
  (* Hammer all stripes from the pool: totals must still reconcile. *)
  let c = Cache.create ~shards:4 ~capacity:128 () in
  Pool.run ~workers:4
    (List.init 400 (fun i () ->
         let key = "k" ^ string_of_int (i mod 64) in
         match Cache.find c key with
         | Some _ -> ()
         | None -> Cache.add c key i));
  let stats = Cache.stats c in
  check_int "lookups all accounted" 400 (stats.Cache.hits + stats.Cache.misses);
  check "at most 64 distinct keys" true (stats.Cache.size <= 64)

let test_cache_concurrent_access () =
  let c = Cache.create ~capacity:64 () in
  Pool.run ~workers:4
    (List.init 200 (fun i () ->
         let key = "k" ^ string_of_int (i mod 32) in
         match Cache.find c key with
         | Some _ -> ()
         | None -> Cache.add c key i));
  let stats = Cache.stats c in
  check_int "lookups all accounted" 200 (stats.Cache.hits + stats.Cache.misses);
  check "no eviction below capacity" true (stats.Cache.evictions = 0);
  check "at most 32 distinct keys" true (stats.Cache.size <= 32)

(* ------------------------------------------------------------------ *)
(* Telemetry *)

let test_telemetry_json_escaping () =
  let open Telemetry in
  Alcotest.(check string)
    "escaping" {|{"a b":"line\nbreak \"q\" \\ tab\t","n":[1,true,null]}|}
    (json_to_string
       (Obj
          [
            ("a b", String "line\nbreak \"q\" \\ tab\t");
            ("n", List [ Int 1; Bool true; Null ]);
          ]))

let test_telemetry_sink_jsonl () =
  let path = Filename.temp_file "ifc_pipeline" ".jsonl" in
  let sink = Telemetry.open_sink path in
  Telemetry.emit sink [ ("event", Telemetry.String "one"); ("n", Telemetry.Int 1) ];
  Telemetry.emit sink [ ("event", Telemetry.String "two") ];
  Telemetry.close sink;
  Telemetry.emit sink [ ("event", Telemetry.String "dropped") ];
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Sys.remove path;
  check_int "two events, close is final" 2 (List.length lines);
  List.iteri
    (fun i line ->
      check "object per line" true
        (String.length line > 1 && line.[0] = '{' && line.[String.length line - 1] = '}');
      check "sequence numbers in order" true
        (String.length line > 8
        && String.sub line 0 8 = Printf.sprintf {|{"seq":%d|} i))
    lines

let test_telemetry_counters () =
  let c = Telemetry.counters () in
  Pool.run ~workers:4 (List.init 100 (fun _ () -> Telemetry.incr c "jobs"));
  Telemetry.add c "other" 5;
  check_int "atomic under contention" 100 (Telemetry.count c "jobs");
  check_int "missing counter is 0" 0 (Telemetry.count c "nope");
  Alcotest.(check (list (pair string int)))
    "snapshot sorted" [ ("jobs", 100); ("other", 5) ] (Telemetry.snapshot c)

(* ------------------------------------------------------------------ *)
(* Batch determinism: the tentpole property. *)

let sequential_verdicts specs =
  List.map
    (fun spec -> Cfm.certified spec.Job.binding spec.Job.program.Ast.body)
    specs

let batch_verdicts summary =
  List.map
    (fun r -> match Job.verdict r with `Pass -> true | _ -> false)
    summary.Batch.results

let test_batch_matches_sequential_cfm () =
  let specs = corpus 40 in
  let expected = sequential_verdicts specs in
  List.iter
    (fun jobs ->
      let summary = Batch.run ~jobs specs in
      check_int
        (Printf.sprintf "all %d jobs completed at jobs=%d" 40 jobs)
        40 summary.Batch.total;
      check_int "no errors" 0 summary.Batch.errored;
      Alcotest.(check (list bool))
        (Printf.sprintf "verdicts at jobs=%d equal sequential Cfm.certify" jobs)
        expected (batch_verdicts summary))
    [ 1; 2; 4 ]

let test_batch_results_in_spec_order () =
  let specs = corpus 25 in
  let summary = Batch.run ~jobs:4 specs in
  List.iteri
    (fun i r ->
      check_int "result ids are dense and ordered" i r.Job.job_id;
      Alcotest.(check string)
        "names preserved"
        (Printf.sprintf "corpus:%d" i)
        r.Job.job_name)
    summary.Batch.results

let test_batch_warm_cache_all_hits () =
  let specs = corpus 30 in
  let cache = Cache.create ~capacity:64 () in
  let cold = Batch.run ~jobs:2 ~cache specs in
  check_int "cold run misses everything" 30 cold.Batch.cache_misses;
  check_int "cold run hits nothing" 0 cold.Batch.cache_hits;
  let warm = Batch.run ~jobs:2 ~cache specs in
  check_int "warm run hits everything" 30 warm.Batch.cache_hits;
  check_int "warm run misses nothing" 0 warm.Batch.cache_misses;
  check "warm results all marked cached" true
    (List.for_all (fun r -> r.Job.from_cache) warm.Batch.results);
  Alcotest.(check (list bool))
    "warm verdicts identical" (batch_verdicts cold) (batch_verdicts warm)

let test_batch_poisoned_job_is_isolated () =
  let poison =
    Job.Custom ("poison", fun _ _ -> failwith "injected analysis fault")
  in
  let specs =
    List.mapi
      (fun i spec ->
        if i = 3 then { spec with Job.analyses = [ poison ] } else spec)
      (corpus 10)
  in
  List.iter
    (fun jobs ->
      let summary = Batch.run ~jobs specs in
      check_int "every job reported" 10 summary.Batch.total;
      check_int "exactly one error" 1 summary.Batch.errored;
      let poisoned = List.nth summary.Batch.results 3 in
      check "the poisoned job carries the message" true
        (match poisoned.Job.outcome with
        | Error msg ->
          (* Printexc renders Failure as Failure("..."). *)
          let contains s sub =
            let n = String.length sub in
            let rec go i =
              i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
            in
            go 0
          in
          contains msg "injected analysis fault"
        | Ok _ -> false);
      List.iteri
        (fun i r ->
          if i <> 3 then
            check "other jobs unaffected" true
              (match r.Job.outcome with Ok _ -> true | Error _ -> false))
        summary.Batch.results)
    [ 1; 2; 4 ]

let test_batch_error_not_cached () =
  let poison = Job.Custom ("poison", fun _ _ -> failwith "boom") in
  let specs =
    List.map (fun s -> { s with Job.analyses = [ poison ] }) (corpus 4)
  in
  let cache = Cache.create () in
  let first = Batch.run ~cache specs in
  check_int "all errored" 4 first.Batch.errored;
  let second = Batch.run ~cache specs in
  check_int "errors never populate the cache" 0 second.Batch.cache_hits

let test_batch_digest_sensitivity () =
  let specs = corpus 1 in
  let spec = List.hd specs in
  let d = Job.digest spec in
  check "digest stable" true (String.equal d (Job.digest spec));
  check "digest differs on self_check" false
    (String.equal d (Job.digest { spec with Job.self_check = true }));
  check "digest differs on analyses" false
    (String.equal d (Job.digest { spec with Job.analyses = [ Job.Denning ] }));
  check "digest ignores id and name" true
    (String.equal d (Job.digest { spec with Job.id = 99; Job.name = "other" }))

let test_batch_multi_analysis_jsonl () =
  let path = Filename.temp_file "ifc_batch" ".jsonl" in
  let sink = Telemetry.open_sink path in
  let specs = corpus ~analyses:[ Job.Denning; Job.Cfm; Job.Prove ] 12 in
  let summary = Batch.run ~jobs:2 ~sink specs in
  Telemetry.close sink;
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  Sys.remove path;
  check_int "one event per job plus a summary" 13 (List.length lines);
  check_int "summary totals add up" 12
    (summary.Batch.passed + summary.Batch.failed + summary.Batch.errored);
  (* CFM ⊆ Denning on every job: per-analysis tallies must respect it. *)
  let passes name =
    List.assoc_opt name
      (List.map (fun (n, p, _) -> (n, p)) summary.Batch.per_analysis)
    |> Option.value ~default:0
  in
  check "cfm passes <= denning passes" true (passes "cfm" <= passes "denning");
  (* Theorems 1/2: prove agrees with cfm exactly. *)
  check_int "prove agrees with cfm" (passes "cfm") (passes "prove")

let suite =
  ( "pipeline",
    [
      Alcotest.test_case "pool runs everything" `Quick test_pool_runs_everything;
      Alcotest.test_case "pool survives raising tasks" `Quick
        test_pool_survives_raising_tasks;
      Alcotest.test_case "pool shutdown drains+rejects" `Quick
        test_pool_shutdown_drains_and_rejects;
      Alcotest.test_case "pool rejects zero workers" `Quick
        test_pool_rejects_zero_workers;
      Alcotest.test_case "cache lru eviction" `Quick test_cache_lru_eviction;
      Alcotest.test_case "cache counters" `Quick test_cache_counters;
      Alcotest.test_case "cache capacity one" `Quick test_cache_capacity_one;
      Alcotest.test_case "cache exact capacity boundary" `Quick
        test_cache_exact_capacity_boundary;
      Alcotest.test_case "cache re-insert refreshes recency" `Quick
        test_cache_reinsert_refreshes_recency;
      Alcotest.test_case "cache mem is recency-neutral" `Quick
        test_cache_mem_is_recency_neutral;
      Alcotest.test_case "cache fold is MRU-first and neutral" `Quick
        test_cache_fold_lru_order;
      Alcotest.test_case "cache invalidation vs eviction split" `Quick
        test_cache_invalidation_vs_eviction;
      Alcotest.test_case "cache concurrent access" `Quick
        test_cache_concurrent_access;
      Alcotest.test_case "cache striped semantics" `Quick
        test_cache_striped_semantics;
      Alcotest.test_case "cache striped concurrent" `Quick
        test_cache_striped_concurrent;
      Alcotest.test_case "telemetry json escaping" `Quick
        test_telemetry_json_escaping;
      Alcotest.test_case "telemetry sink jsonl" `Quick test_telemetry_sink_jsonl;
      Alcotest.test_case "telemetry counters" `Quick test_telemetry_counters;
      Alcotest.test_case "batch = sequential cfm at jobs 1/2/4" `Quick
        test_batch_matches_sequential_cfm;
      Alcotest.test_case "batch results in spec order" `Quick
        test_batch_results_in_spec_order;
      Alcotest.test_case "batch warm cache all hits" `Quick
        test_batch_warm_cache_all_hits;
      Alcotest.test_case "batch poisoned job isolated" `Quick
        test_batch_poisoned_job_is_isolated;
      Alcotest.test_case "batch errors not cached" `Quick
        test_batch_error_not_cached;
      Alcotest.test_case "job digest sensitivity" `Quick
        test_batch_digest_sensitivity;
      Alcotest.test_case "batch multi-analysis + jsonl" `Quick
        test_batch_multi_analysis_jsonl;
    ] )
