(* A curated regression corpus: realistic programs with pinned verdicts
   for all three mechanisms. Each entry also re-validates the Theorem 1+2
   equivalence (proof exists iff CFM certifies) — so any future change to
   the analyzer or the logic that shifts a verdict shows up here with a
   named, readable witness. *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Parser = Ifc_lang.Parser
module Wellformed = Ifc_lang.Wellformed
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Denning = Ifc_core.Denning
module Fs = Ifc_core.Flow_sensitive
module Invariance = Ifc_logic_gen.Invariance

let two = Chain.two

type entry = {
  name : string;
  source : string;  (** Annotated program text. *)
  cfm : bool;
  denning : bool;
  fs : bool;
}

let corpus =
  [
    {
      name = "producer-consumer ring";
      source =
        {|
var item, produced, consumed : integer class high;
    slots : semaphore initially(2) class high;
    items : semaphore initially(0) class high;
cobegin
  begin wait(slots); item := item + 1; produced := produced + 1; signal(items) end
  || begin wait(items); consumed := consumed + item; signal(slots) end
coend
|};
      cfm = true;
      denning = true;
      fs = true;
    };
    {
      name = "producer-consumer leaking into a public counter";
      source =
        {|
var item : integer class high;
    tally : integer class low;
    items : semaphore initially(0) class high;
cobegin
  begin item := item * 2; signal(items) end
  || begin wait(items); tally := tally + 1 end
coend
|};
      (* tally is written after a wait on a high semaphore. *)
      cfm = false;
      denning = true;
      fs = false;
    };
    {
      name = "mutex-protected shared counter";
      source =
        {|
var shared : integer class low;
    lock : semaphore initially(1) class low;
cobegin
  begin wait(lock); shared := shared + 1; signal(lock) end
  || begin wait(lock); shared := shared + 10; signal(lock) end
coend
|};
      cfm = true;
      denning = true;
      fs = true;
    };
    {
      name = "barrier then publish";
      source =
        {|
var a, b : integer class low;
    done_a, done_b : semaphore initially(0) class low;
    total : integer class low;
begin
  cobegin
    begin a := 1; signal(done_a) end
    || begin b := 2; signal(done_b) end
  coend;
  wait(done_a); wait(done_b);
  total := a + b
end
|};
      cfm = true;
      denning = true;
      fs = true;
    };
    {
      name = "password check writes a public flag";
      source =
        {|
var password, guess : integer class high;
    ok : integer class low;
if guess = password then ok := 1 else ok := 0
|};
      cfm = false;
      denning = false;
      fs = false;
    };
    {
      name = "password check with audited release";
      source =
        {|
var password, guess, result : integer class high;
    ok : integer class low;
begin
  if guess = password then result := 1 else result := 0;
  ok := declassify result to low
end
|};
      cfm = true;
      denning = true;
      fs = true;
    };
    {
      name = "retry loop bounded by secret";
      source =
        {|
var attempts : integer class high;
    banner : integer class low;
begin
  while attempts > 0 do attempts := attempts - 1;
  banner := 1
end
|};
      (* The loop's termination reveals attempts; banner is written after. *)
      cfm = false;
      denning = true;
      fs = false;
    };
    {
      name = "scrubbed scratch variable (5.2 pattern)";
      source =
        {|
var secret : integer class high;
    scratch : integer class low;
begin scratch := secret; scratch := 0 end
|};
      cfm = false;
      denning = false;
      fs = true;
    };
    {
      name = "per-level log buffers";
      source =
        {|
var lowlog : array(4) class low;
    highlog : array(4) class high;
    event : integer class low;
    secret_event : integer class high;
begin
  lowlog[0] := event;
  highlog[0] := event;
  highlog[1] := secret_event
end
|};
      cfm = true;
      denning = true;
      fs = true;
    };
    {
      name = "secret-indexed write into a public buffer";
      source =
        {|
var buffer : array(4) class low;
    position : integer class high;
buffer[position] := 0
|};
      cfm = false;
      denning = false;
      fs = false;
    };
    {
      name = "nested cobegin fan-out";
      source =
        {|
var a, b, c : integer class low;
cobegin
  a := 1
  || cobegin b := 2 || c := 3 coend
coend
|};
      cfm = true;
      denning = true;
      fs = true;
    };
    {
      name = "handshake whose answer is the timing of a signal";
      source =
        {|
var query : integer class high;
    reply : semaphore initially(0) class high;
    display : integer class low;
cobegin
  begin if query > 10 then signal(reply) fi end
  || begin wait(reply); display := 1 end
coend
|};
      cfm = false;
      denning = true;
      fs = false;
    };
    {
      name = "secret pipeline entirely above the observer";
      source =
        {|
var raw, cooked, stored : integer class high;
    hand_off : semaphore initially(0) class high;
cobegin
  begin cooked := raw * raw; signal(hand_off) end
  || begin wait(hand_off); stored := cooked end
coend
|};
      cfm = true;
      denning = true;
      fs = true;
    };
    {
      name = "declassify cannot launder a loop's termination";
      source =
        {|
var secret : integer class high;
    out : integer class low;
begin
  while secret > 0 do secret := secret - 1;
  out := declassify secret to low
end
|};
      cfm = false;
      denning = true;
      fs = false;
    };
  ]

let check = Alcotest.(check bool)

let run_entry e () =
  let p =
    match Parser.parse_program e.source with
    | Ok p -> p
    | Error err -> Alcotest.failf "%s: parse error %a" e.name Parser.pp_error err
  in
  check "well-formed" true (Wellformed.is_valid p);
  let b =
    match Binding.of_program two p with
    | Ok b -> b
    | Error msg -> Alcotest.failf "%s: binding error %s" e.name msg
  in
  let cfm = Cfm.certified b p.Ifc_lang.Ast.body in
  check "CFM verdict" e.cfm cfm;
  check "Denning verdict" e.denning
    (Denning.certified ~on_concurrency:`Ignore b p.Ifc_lang.Ast.body);
  check "flow-sensitive verdict" e.fs (Fs.certified b p.Ifc_lang.Ast.body);
  (* Cross-validation invariants on every corpus entry. *)
  check "thm 1+2 equivalence" cfm (Invariance.decide b p.Ifc_lang.Ast.body);
  if cfm then begin
    check "CFM <= Denning" true
      (Denning.certified ~on_concurrency:`Ignore b p.Ifc_lang.Ast.body);
    check "CFM <= FS" true (Fs.certified b p.Ifc_lang.Ast.body)
  end

let suite =
  ( "corpus",
    List.map (fun e -> Alcotest.test_case e.name `Quick (run_entry e)) corpus )
