(* Tests for the flow-sensitive certifier (the §6 future-work extension):
   it must accept everything CFM accepts, additionally accept programs
   whose security depends on class *changes* (§5.2), and stay sound. *)

module Lattice = Ifc_lattice.Lattice
module Chain = Ifc_lattice.Chain
module Ast = Ifc_lang.Ast
module Parser = Ifc_lang.Parser
module Gen = Ifc_lang.Gen
module Prng = Ifc_support.Prng
module Sset = Ifc_support.Sset
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Fs = Ifc_core.Flow_sensitive
module Paper = Ifc_core.Paper
module Ni = Ifc_exec.Noninterference

let check = Alcotest.(check bool)

let two = Chain.two

let low = two.Lattice.bottom

let high = two.Lattice.top

let stmt src =
  match Parser.parse_stmt src with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let binding pairs = Binding.make two pairs

let test_accepts_52 () =
  (* The paper's motivating case for dynamic classifications. *)
  let b = binding [ ("x", high); ("y", low) ] in
  check "CFM rejects" false (Cfm.certified b Paper.sec52.Ast.body);
  check "flow-sensitive accepts" true (Fs.certified b Paper.sec52.Ast.body)

let test_rejects_direct_leak () =
  let b = binding [ ("x", high); ("y", low) ] in
  check "y := x rejected" false (Fs.certified b (stmt "y := x"));
  check "y := x + 1 rejected" false (Fs.certified b (stmt "y := x + 1"))

let test_overwrite_clears () =
  (* y briefly holds high data but is scrubbed before termination: secure
     under final-state observation, and accepted. *)
  let b = binding [ ("x", high); ("y", low) ] in
  check "scrubbed" true (Fs.certified b (stmt "begin y := x; y := 0 end"));
  check "not scrubbed" false (Fs.certified b (stmt "begin y := x; skip end"))

let test_implicit_flow () =
  let b = binding [ ("x", high); ("y", low) ] in
  check "branch write rejected" false
    (Fs.certified b (stmt "if x = 0 then y := 1 else y := 2"));
  check "both-branches-same still rejected (conservative)" false
    (Fs.certified b (stmt "if x = 0 then y := 1 else y := 1"));
  (* ... but scrubbing after the branch is fine. *)
  check "scrub after branch" true
    (Fs.certified b (stmt "begin if x = 0 then y := 1 else y := 2; y := 0 end"))

let test_loop_termination_channel () =
  let b = binding [ ("x", high); ("z", low) ] in
  check "write after high loop rejected" false
    (Fs.certified b (stmt "begin while x > 0 do x := x - 1; z := 1 end"))

let test_loop_fixpoint_converges () =
  (* Class laundering through a loop: w picks up x's class on iteration 1
     and passes it to y on iteration 2 — only a fixpoint sees it. *)
  let b = binding [ ("x", high); ("w", low); ("y", low); ("n", low) ] in
  let s = stmt "while n > 0 do begin y := w; w := x; n := n - 1 end" in
  let r = Fs.analyze b s in
  check "laundering caught" false r.Fs.accepted;
  check "y flagged" true (List.mem_assoc "y" r.Fs.violations);
  check "w flagged" true (List.mem_assoc "w" r.Fs.violations)

let test_while_condition_current_class () =
  (* The loop condition's class is its *current* class: after x := 0 the
     loop over x is harmless. *)
  let b = binding [ ("x", high); ("y", low); ("n", low) ] in
  check "declassified condition" true
    (Fs.certified b (stmt "begin x := 0; while x < 3 do begin y := 1; x := x + 1 end end"))

let test_sequential_wait_signal () =
  let b = binding [ ("sem", high); ("y", low) ] in
  check "wait taints global" false
    (Fs.certified b (stmt "begin wait(sem); y := 1 end"));
  check "write before wait fine" true
    (Fs.certified b (stmt "begin y := 1; wait(sem) end"));
  (* Unlike variables, semaphores never declassify: signals only add to
     the count, so the initial count's information is never overwritten.
     Even after signalling, a wait on a high semaphore taints global. *)
  let b2 = binding [ ("sem", high); ("x", high); ("y", low) ] in
  check "sem never declassifies" false
    (Fs.certified b2 (stmt "begin x := 0; signal(sem); wait(sem); y := 1 end"));
  (* A low-bound semaphore stays low through signal/wait. *)
  let b3 = binding [ ("sem", low); ("y", low) ] in
  check "low sem round trip" true
    (Fs.certified b3 (stmt "begin signal(sem); wait(sem); y := 1 end"))

let test_cobegin_degrades_to_cfm () =
  let b = binding [ ("x", high); ("y", low); ("s", low) ] in
  (* Inside cobegin the analysis is CFM: the semaphore channel is
     rejected even though a per-schedule view might miss it. *)
  check "sem channel rejected" false
    (Fs.certified b (stmt "cobegin if x = 0 then signal(s) || begin wait(s); y := 0 end coend"));
  (* And a CFM-certifiable cobegin passes, with flow-sensitivity resuming
     after it. *)
  let b2 = binding [ ("a", low); ("b", low); ("h", high) ] in
  check "clean cobegin + scrub" true
    (Fs.certified b2 (stmt "begin cobegin a := 1 || b := 2 coend; b := h; b := 0 end"))

let test_cobegin_entry_condition () =
  (* Laundered-high data flowing INTO a cobegin must block the CFM
     degradation: inside, reads are justified by bindings only. *)
  let b = binding [ ("h", high); ("a", low); ("b", low) ] in
  check "tainted entry rejected" false
    (Fs.certified b (stmt "begin a := h; cobegin b := a || skip coend end"));
  check "clean entry accepted" true
    (Fs.certified b (stmt "begin a := 0; cobegin b := a || skip coend end"))

(* The headline property: on ANY program, CFM-certified implies
   flow-sensitive-accepted. *)
let test_fs_dominates_cfm =
  let count = 400 in
  fun () ->
    let rng = Prng.create 4242 in
    let lattices = [ two; Chain.four ] in
    List.iter
      (fun lat ->
        let arr = Array.of_list lat.Lattice.elements in
        for i = 1 to count do
          let p = Gen.program rng Gen.default ~size:(1 + (i mod 30)) in
          let vars = Ifc_lang.Vars.all_vars p.Ast.body in
          let b =
            Binding.make lat
              (List.map
                 (fun v -> (v, arr.(Prng.int rng (Array.length arr))))
                 (Sset.elements vars))
          in
          if Cfm.certified b p.Ast.body && not (Fs.certified b p.Ast.body) then
            Alcotest.failf "CFM-certified but FS-rejected:@.%s@.binding: %a"
              (Ifc_lang.Pretty.program_to_string p)
              Binding.pp b
        done)
      lattices

(* Empirical soundness: accepted programs pass the (termination-
   insensitive) noninterference test. *)
let test_fs_sound_on_corpus () =
  let rng = Prng.create 777 in
  let cfg = { Gen.default with Gen.max_depth = 3 } in
  let checked = ref 0 and attempts = ref 0 in
  while !checked < 20 && !attempts < 500 do
    incr attempts;
    let p = Gen.program_balanced rng cfg ~size:(2 + (!attempts mod 10)) in
    let vars, _, _, _ = Ifc_lang.Vars.declared p in
    let pairs =
      List.map (fun v -> (v, if Prng.bool rng then high else low)) (Sset.elements vars)
    in
    let b = binding pairs in
    if List.exists (fun (_, c) -> c = high) pairs && Fs.certified b p.Ast.body then begin
      let r = Ni.test ~seed:!attempts ~pairs:4 ~max_states:4000 ~observer:low b p in
      if r.Ni.pairs_tested > 0 then begin
        incr checked;
        if not (Ni.secure r) then
          Alcotest.failf "FS-accepted program violates NI:@.%s@.binding: %a"
            (Ifc_lang.Pretty.program_to_string p)
            Binding.pp b
      end
    end
  done;
  check "exercised" true (!checked >= 10)

let test_fs_strictly_more_permissive_stats () =
  (* Quantify: some CFM-rejected sequential programs are FS-accepted, and
     never the other way around. *)
  let rng = Prng.create 31 in
  let extra = ref 0 and total = ref 0 in
  for i = 1 to 300 do
    let p = Gen.program rng Gen.sequential ~size:(2 + (i mod 12)) in
    let vars = Ifc_lang.Vars.all_vars p.Ast.body in
    let b =
      binding
        (List.map (fun v -> (v, if Prng.bool rng then high else low)) (Sset.elements vars))
    in
    incr total;
    let cfm = Cfm.certified b p.Ast.body and fs = Fs.certified b p.Ast.body in
    check "no inversion" false (cfm && not fs);
    if fs && not cfm then incr extra
  done;
  check "strictly more permissive on the corpus" true (!extra > 0)

let suite =
  ( "flow-sensitive",
    [
      Alcotest.test_case "accepts 5.2" `Quick test_accepts_52;
      Alcotest.test_case "rejects direct leak" `Quick test_rejects_direct_leak;
      Alcotest.test_case "overwrite clears" `Quick test_overwrite_clears;
      Alcotest.test_case "implicit flow" `Quick test_implicit_flow;
      Alcotest.test_case "loop termination channel" `Quick test_loop_termination_channel;
      Alcotest.test_case "loop fixpoint converges" `Quick test_loop_fixpoint_converges;
      Alcotest.test_case "while condition current class" `Quick
        test_while_condition_current_class;
      Alcotest.test_case "sequential wait/signal" `Quick test_sequential_wait_signal;
      Alcotest.test_case "cobegin degrades to CFM" `Quick test_cobegin_degrades_to_cfm;
      Alcotest.test_case "cobegin entry condition" `Quick test_cobegin_entry_condition;
      Alcotest.test_case "FS dominates CFM (property)" `Quick test_fs_dominates_cfm;
      Alcotest.test_case "FS sound on corpus" `Slow test_fs_sound_on_corpus;
      Alcotest.test_case "FS strictly more permissive" `Quick
        test_fs_strictly_more_permissive_stats;
    ] )
