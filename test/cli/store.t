The persistent content-addressed store: a cold batch populates it, a
warm restart answers every job from the preloaded hottest generation
with byte-identical verdicts and zero recomputation, and damage is
quarantined by `store verify` — served as a recompute, never as a
wrong answer. Wall-clock lines are elided; everything else is
deterministic under a fixed seed.

  $ rm -rf store
  $ ../../bin/ifc.exe batch --gen 8 --seed 7 --store store --verbose | grep -v '^wall'
  store: preloaded 0 entries from store
  [0] gen:7:0 fail
  [1] gen:7:1 fail
  [2] gen:7:2 fail
  [3] gen:7:3 fail
  [4] gen:7:4 fail
  [5] gen:7:5 pass
  [6] gen:7:6 fail
  [7] gen:7:7 fail
  jobs: 8 total, 1 passed, 7 failed, 0 errored
  cache: 0 hits, 8 misses (0.0% hit rate)
  store: 0 disk hits, 8 disk misses (0.0% hit rate)
  per-analysis: cfm 1/8 pass

A second process over the same corpus and store starts warm: the
hottest generation is preloaded, every job hits, and the per-job
verdict lines are identical to the cold run's.

  $ ../../bin/ifc.exe batch --gen 8 --seed 7 --store store --verbose | grep -v '^wall'
  store: preloaded 8 entries from store
  [0] gen:7:0 fail (cached)
  [1] gen:7:1 fail (cached)
  [2] gen:7:2 fail (cached)
  [3] gen:7:3 fail (cached)
  [4] gen:7:4 fail (cached)
  [5] gen:7:5 pass (cached)
  [6] gen:7:6 fail (cached)
  [7] gen:7:7 fail (cached)
  jobs: 8 total, 1 passed, 7 failed, 0 errored
  cache: 8 hits, 0 misses (100.0% hit rate)
  per-analysis: cfm 1/8 pass

The store can be inspected and verified offline.

  $ ../../bin/ifc.exe store stats store | grep -v 'bytes)'
  generation: 2
  quarantined: 0
  $ ../../bin/ifc.exe store verify store
  checked: 8, ok: 8, quarantined: 0

Corruption never reaches a caller. A junk file and a truncated entry
are both quarantined (exit 2 signals the sweep found damage) …

  $ echo "not an entry" > store/objects/deadbeef
  $ entry=$(ls store/objects | head -n 1)
  $ head -c 20 "store/objects/$entry" > store/tmp/cut && mv store/tmp/cut "store/objects/$entry"
  $ ../../bin/ifc.exe store verify store
  quarantined: 1850ac0729e9f446319055a1bad8cfdc
  quarantined: deadbeef
  checked: 9, ok: 7, quarantined: 2
  [2]

… after which the sweep is clean, and the damaged digest is simply
recomputed on the next run.

  $ ../../bin/ifc.exe store verify store
  checked: 7, ok: 7, quarantined: 0
  $ ../../bin/ifc.exe batch --gen 8 --seed 7 --store store --verbose | grep -v '^wall'
  store: preloaded 7 entries from store
  [0] gen:7:0 fail (cached)
  [1] gen:7:1 fail
  [2] gen:7:2 fail (cached)
  [3] gen:7:3 fail (cached)
  [4] gen:7:4 fail (cached)
  [5] gen:7:5 pass (cached)
  [6] gen:7:6 fail (cached)
  [7] gen:7:7 fail (cached)
  jobs: 8 total, 1 passed, 7 failed, 0 errored
  cache: 7 hits, 1 misses (87.5% hit rate)
  store: 0 disk hits, 1 disk misses (0.0% hit rate)
  per-analysis: cfm 1/8 pass

Generational garbage collection drops entries not touched for --keep
generations; the working set above was just re-read, so it survives.

  $ ../../bin/ifc.exe store gc --keep 2 store
  live: 8, swept: 0, staging swept: 0, bytes freed: 0
