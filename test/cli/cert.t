Proof certificates: emit, independently re-check, and tamper with them.

The §5.2 assignment chain is provable at its declared binding;
[cert emit] self-checks the certificate before writing it:

  $ ../../bin/ifc.exe cert emit sec52.ifc -o sec52.cert
  certificate written to sec52.cert (1254 bytes)

The independent checker re-validates every Figure 1 rule instance:

  $ ../../bin/ifc.exe cert check sec52.cert sec52.ifc
  certificate valid: 5 nodes, 2 bound variables

So does the Figure 3 confinement example — 36 nodes spanning the
parallel and synchronization rules:

  $ ../../bin/ifc.exe cert emit fig3.ifc -o fig3.cert
  certificate written to fig3.cert (17277 bytes)
  $ ../../bin/ifc.exe cert check fig3.cert fig3.ifc
  certificate valid: 36 nodes, 7 bound variables

Emission is canonical: a second run is byte-identical, and
[prove --emit-cert] writes exactly the same file:

  $ ../../bin/ifc.exe cert emit sec52.ifc > again.cert
  $ cmp sec52.cert again.cert && echo identical
  identical
  $ ../../bin/ifc.exe prove --emit-cert proved.cert sec52.ifc
  flow proof found: 5 rule applications, completely invariant
  certificate written to proved.cert (1254 bytes)
  $ cmp sec52.cert proved.cert && echo identical
  identical

Channel programs certify end-to-end: the producer/consumer proof
carries the send/recv rule nodes and the independent checker
re-validates them:

  $ ../../bin/ifc.exe prove prodcons.ifc
  flow proof found: 5 rule applications, completely invariant
  $ ../../bin/ifc.exe cert emit prodcons.ifc -o prodcons.cert
  certificate written to prodcons.cert (1458 bytes)
  $ ../../bin/ifc.exe cert check prodcons.cert prodcons.ifc
  certificate valid: 5 nodes, 3 bound variables
  $ grep -c 'send\|recv' prodcons.cert
  2

Weakening an assertion is caught, and the rejection names the offending
node's path (exit 2):

  $ sed 's/const(low)/const(high)/' sec52.cert > tampered.cert
  $ ../../bin/ifc.exe cert check tampered.cert sec52.ifc
  certificate rejected (6 failures), first: at 0.0.0: [assign] pre must be post[x <- e(+)local(+)global]:
  class(y) <= high, global <= low, local (+) global <= low, local <= low is not
  local (+) global <= high, class(y) <= low, global <= low, local <= low
  [2]

A certificate recording a different binding than the caller expects is
refused:

  $ ../../bin/ifc.exe cert check -b sec52.bind sec52.cert sec52.ifc
  certificate rejected: binding mismatch: x is low in the certificate
  [2]

Malformed input is a structured parse error, not a crash (exit 1):

  $ echo garbage > bad.cert
  $ ../../bin/ifc.exe cert check bad.cert sec52.ifc
  ifc: bad.cert: line 1: expected version header "ifc-cert 1"
  [1]
