Golden tests for the ifc command-line driver, run against the paper's
Figure 3 program (fig3.ifc) and friends.

Certification with x secret and y public must fail, pointing at the
synchronization checks:

  $ ../../bin/ifc.exe check --binding leaky.bind fig3.ifc | head -15
  declarations:
    x : integer;
    y : integer;
    m : integer;
    modify : semaphore initially(0);
    modified : semaphore initially(0);
    read : semaphore initially(0);
    done : semaphore initially(0);
  verdict: REJECTED
  mod(S) = low
  flow(S) = high
  checks: 15 total, 5 failed
  [FAIL] line 6, cols 5-59: if: sbind(e) <= mod(S): high <= low
  [FAIL] line 9, cols 5-59: if: sbind(e) <= mod(S): high <= low
  [FAIL] line 7, cols 5-17: begin: flow(S1..S2) <= mod(S3): high <= low

The exit code distinguishes rejection (2) from errors (1):

  $ ../../bin/ifc.exe check --binding leaky.bind fig3.ifc > /dev/null; echo "exit $?"
  exit 2

The symbolic requirements include the 4.3 chain:

  $ ../../bin/ifc.exe check --requirements fig3.ifc | grep -E 'sbind\((x|modify|m)\) <= sbind\((modify|m|y)\)$' | sort
  sbind(done) (+) sbind(modified) (+) sbind(x) <= sbind(modify)
  sbind(m) <= sbind(y)
  sbind(modify) <= sbind(m)
  sbind(x) <= sbind(modify)

The Denning baseline sees nothing wrong with a binding whose local checks
pass:

  $ ../../bin/ifc.exe denning --binding denning-friendly.bind fig3.ifc | head -2
  verdict: CERTIFIED
  checks: 5 total, 0 failed

  $ ../../bin/ifc.exe check --binding denning-friendly.bind fig3.ifc | head -1
  declarations:

Inference escalates the chain when x is fixed high:

  $ ../../bin/ifc.exe infer --fix x=high fig3.ifc
  least certifying binding:
  {done -> high; m -> high; modified -> high; modify -> high; read -> high; x -> high; y -> high}

And reports a conflict when the endpoints are contradictory:

  $ ../../bin/ifc.exe infer --fix x=high --fix y=low fig3.ifc; echo "exit $?"
  unsatisfiable: sbind(m) <= sbind(y) forces high, but y is fixed at low
  (from assign: sbind(e) <= sbind(x) at line 12, cols 24-30)
  exit 2

The Theorem-1 flow proof exists exactly when CFM certifies:

  $ ../../bin/ifc.exe prove fig3.ifc
  flow proof found: 36 rule applications, completely invariant

  $ ../../bin/ifc.exe prove --binding leaky.bind fig3.ifc | head -1
  no completely invariant flow proof (program not certifiable):

Running the program shows the flow (y reveals whether x = 0):

  $ ../../bin/ifc.exe run --input x=0 fig3.ifc
  terminated: {m -> 1; x -> 0; y -> 1}

  $ ../../bin/ifc.exe run --input x=7 fig3.ifc
  terminated: {m -> 1; x -> 7; y -> 0}

Exploration confirms the paper's no-deadlock claim:

  $ ../../bin/ifc.exe explore --input x=1 fig3.ifc | head -6
  states: 15
  terminals: 1
  deadlocks: 0
  faults: 0
  divergence possible: false
  terminal 1: {m -> 1; x -> 1; y -> 0}

The dynamic monitor flags the x = 0 schedule:

  $ ../../bin/ifc.exe taint --binding leaky.bind --input x=0 fig3.ifc | tail -1; echo "exit $?"
  done at high
  exit 0

Noninterference testing finds the leak empirically:

  $ ../../bin/ifc.exe ni --binding leaky.bind --pairs 4 fig3.ifc | head -1; echo "exit $?"
  pairs tested: 4, skipped: 0, violations: 2
  exit 0

Batch certification fans a corpus over a domain pool; verdicts are a
function of the specs alone, never the worker count (the wall-time line
is the only nondeterministic output, so it is filtered):

  $ ../../bin/ifc.exe batch --jobs 2 --binding leaky.bind --verbose --log batch.jsonl fig3.ifc sec52.ifc chain.ifc | grep -v '^wall:'
  [0] fig3.ifc fail
  [1] sec52.ifc fail
  [2] chain.ifc pass
  jobs: 3 total, 1 passed, 2 failed, 0 errored
  per-analysis: cfm 1/3 pass

The JSONL log is one self-contained object per line — three job events
plus the trailing summary event:

  $ wc -l < batch.jsonl
  4
  $ grep -c '^{"seq":.*}$' batch.jsonl
  4
  $ grep -c '"event":"job"' batch.jsonl
  3

With the result cache, a repeated corpus hits on every second-round
digest and reports identical verdicts:

  $ ../../bin/ifc.exe batch --jobs 1 --cache --repeat 2 --binding leaky.bind fig3.ifc sec52.ifc chain.ifc | grep -E '^(jobs|cache):'
  jobs: 6 total, 2 passed, 4 failed, 0 errored
  cache: 3 hits, 3 misses (50.0% hit rate)

A user-defined lattice can be loaded, inspected, and used:

  $ ../../bin/ifc.exe lattice corporate.lat
  lattice corporate: 3 classes, height 2
  bottom: public, top: secret
    public < internal
    internal < secret
  all 17 lattice laws hold

  $ ../../bin/ifc.exe check --lattice corporate.lat --binding corporate.bind chain.ifc; echo "exit $?"
  declarations:
    src : integer;
    dst : integer;
  verdict: REJECTED
  mod(S) = internal
  flow(S) = nil
  checks: 1 total, 1 failed
  [FAIL] line 2, cols 1-11: assign: sbind(e) <= sbind(x): secret <= internal
  exit 2

The flow-sensitive extension accepts the 5.2 program CFM rejects:

  $ ../../bin/ifc.exe check --binding sec52.bind sec52.ifc | head -1
  declarations:

  $ ../../bin/ifc.exe check --flow-sensitive --binding sec52.bind sec52.ifc | tail -1; echo "exit $?"
  flow-sensitive verdict: CERTIFIED
  exit 0

Program generation is deterministic per seed:

  $ ../../bin/ifc.exe gen --size 8 --seed 3 2>/dev/null > g1.txt
  $ ../../bin/ifc.exe gen --size 8 --seed 3 2>/dev/null > g2.txt
  $ cmp g1.txt g2.txt && echo same
  same

Parse errors carry positions:

  $ echo 'var x : integer; x := ' > bad.ifc
  $ ../../bin/ifc.exe check bad.ifc; echo "exit $?"
  ifc: bad.ifc: 2:1: expected an expression but found '<eof>'
  exit 1

Ill-formed programs are rejected before analysis:

  $ echo 'y := 1' > undecl.ifc
  $ ../../bin/ifc.exe check undecl.ifc; echo "exit $?"
  ifc: error: line 1, cols 1-7: undeclared variable y
  exit 1

Arrays follow Denning & Denning's index rule:

  $ printf 'var a : array(2) class low; h : integer class high;\na[h] := 1\n' > arr.ifc
  $ ../../bin/ifc.exe check arr.ifc | grep -E 'verdict|store'; echo "exit $?"
  verdict: REJECTED
  [FAIL] line 2, cols 1-10: store: sbind(i) (+) sbind(e) <= sbind(a): high <= low
  exit 0

Declassification releases data but never control:

  $ printf 'var h : integer class high; y : integer class low;\ny := declassify h to low\n' > decl.ifc
  $ ../../bin/ifc.exe check decl.ifc | grep verdict
  verdict: CERTIFIED

  $ printf 'var h : integer class high; y : integer class low;\nif h = 0 then y := declassify h to low fi\n' > decl2.ifc
  $ ../../bin/ifc.exe check decl2.ifc | grep -E 'verdict|FAIL'
  verdict: REJECTED
  [FAIL] line 2, cols 1-42: if: sbind(e) <= mod(S): high <= low

The formatter canonicalises a program (idempotently):

  $ printf 'var x:integer;begin x:=1;if x=1 then x:=x+2 fi end' > messy.ifc
  $ ../../bin/ifc.exe fmt messy.ifc | tee formatted.ifc
  var
    x : integer;
  begin x := 1; if x = 1 then x := x + 2 fi end
  $ ../../bin/ifc.exe fmt formatted.ifc | cmp - formatted.ifc && echo idempotent
  idempotent

Lattices and state spaces export to Graphviz:

  $ ../../bin/ifc.exe lattice two --dot
  digraph lattice {
    rankdir=BT;
    node [shape=box];
    "low";
    "high";
    "low" -> "high";
  }

  $ printf 'var x : integer; s : semaphore initially(0);\ncobegin begin wait(s); x := 1 end || signal(s) coend\n' > graph.ifc
  $ ../../bin/ifc.exe explore --dot graph.ifc
  digraph states {
    rankdir=LR;
    node [shape=circle,label=""];
    n0 [shape=point];
    n0 -> n1 [label="signal(s)"];
    n1 -> n2 [label="wait(s)"];
    n2 -> n3 [label="x := 1"];
    n3 [shape=doublecircle];
  }
