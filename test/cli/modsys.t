Compositional certification on the CLI: summarize a linked unit, link
it from summaries (store-backed reuse on the second run), certify it
as a one-shot verdict, emit and independently re-check an `ifc-cert 2`
certificate — rejecting a tampered summary node — and judge a
refinement.

  $ cat > lib.ifc <<'EOF'
  > module source
  >   provides (out : class <= low)
  >   requires (cfg : class >= low)
  >   var out : integer class low;
  >   out := cfg + 1
  > end
  > 
  > module sink
  >   provides (res : class <= high)
  >   requires (out : class >= low)
  >   var res : integer class high;
  >   res := out
  > end
  > 
  > var cfg : integer class low;
  >     secret : integer class high;
  > cfg := 0
  > EOF

Per-module summaries, with imports left symbolic:

  $ ../../bin/ifc.exe modsys summary lib.ifc
  module source (fresh)
  summary source:
    body: b8c9f783bbf54f7c3c11d0630a769fd9
    cert: -
    provides: out <= low
    requires: cfg >= low
    exports: out = low
    mod: const(low)
    flow: nil
    constraints: {cls(cfg) <= const(low)}
    obligations: sends() recvs() waits() signals()
    locals: ok
    bounds: ok
  module sink (fresh)
  summary sink:
    body: 2057de19f37aef61a07d18632071ddba
    cert: -
    provides: res <= high
    requires: out >= low
    exports: res = high
    mod: const(high)
    flow: nil
    constraints: {}
    obligations: sends() recvs() waits() signals()
    locals: ok
    bounds: ok

Linking certifies from the summaries alone and writes a version-2
certificate. With a store, the second link reuses both summaries.

  $ ../../bin/ifc.exe modsys link lib.ifc -o lib.cert --store certs
  link: 2 summaries computed, 0 reused from store
  linked certificate written to lib.cert (1308 bytes, 2 summaries)
  $ ../../bin/ifc.exe modsys link lib.ifc -o lib2.cert --store certs
  link: 0 summaries computed, 2 reused from store
  linked certificate written to lib2.cert (1308 bytes, 2 summaries)
  $ cmp lib.cert lib2.cert
  $ head -4 lib.cert
  ifc-cert 2
  linked: bae6db14925d8303a205dbc5f132aefc
  lattice: lattice two-point
  lattice: elements: low high

The one-shot verdict runs the same pipeline:

  $ ../../bin/ifc.exe check --modular lib.ifc
  modular certification: CERTIFIED (2 modules + main)

`cert check` sniffs the version and routes a linked certificate to the
independent summary checker, which re-evaluates every recorded claim
rather than trusting it — a summary node tampered to carry a violated
residual constraint is rejected by name:

  $ ../../bin/ifc.exe cert check lib.cert lib.ifc
  certificate valid: 2 summary nodes, 3 bound variables
  $ sed 's/constraints: {}/constraints: {const(high) <= cls(cfg)}/' lib.cert > tampered.cert
  $ ../../bin/ifc.exe cert check tampered.cert lib.ifc
  certificate rejected (1 failures), first: summary sink: constraint: residual constraint const(high) <= cls(cfg) does not hold
  [2]

A replacement that imports a name outside the interface is not a
refinement:

  $ cat > swap.ifc <<'EOF'
  > module source
  >   provides (out : class <= low)
  >   requires (secret : class >= high)
  >   var out : integer class low;
  >   out := secret
  > end
  > EOF
  $ ../../bin/ifc.exe modsys refine lib.ifc swap.ifc
  refinement REJECTED: source may not replace source:
    replacement requires secret, which the interface does not
    replacement adds a residual constraint the base does not have
  [2]
