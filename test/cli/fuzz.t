Golden tests for the differential fuzzing campaign driver.

Fixed-seed campaigns are byte-deterministic at any worker count: all
randomness derives from (seed, case index), results are aggregated in
index order, and timing is confined to stderr (silenced here).

  $ ../../bin/ifc.exe fuzz --seed 42 --cases 50 --jobs 1 --quiet > run-a.out 2>/dev/null
  $ ../../bin/ifc.exe fuzz --seed 42 --cases 50 --jobs 2 --quiet > run-b.out 2>/dev/null
  $ ../../bin/ifc.exe fuzz --seed 42 --cases 50 --jobs 2 --quiet > run-c.out 2>/dev/null
  $ cmp run-a.out run-b.out && cmp run-b.out run-c.out && echo deterministic
  deterministic

A healthy toolchain shows zero soundness inversions and a clean exit,
while the paper's expected strictness gaps (Denning and flow-sensitive
accepting CFM-rejected programs) do turn up and are merely counted:

  $ cat run-a.out
  fuzz campaign: seed=42 cases=75 lattice=two
    completed=75 timed-out=0 errors=0
    oracle pairs: tested=222 skipped=10
    classes:
      unsound-certification    0
      refine-unsound           0
      logic-mismatch           0
      cert-inversion           0
      store-stale              0
      chan-race-unsound        0
      chan-deadlock-unsound    0
      race-unsound             0
      deadlock-unsound         0
      prune-unsound            0
      witness-bogus            0
      hierarchy-denning        0
      hierarchy-fs             0
      denning-gap              1
      fs-gap                   0
      confirmed-rejection      14
      certified-agreement      15
      unconfirmed-rejection    20
      refine-accepted          14
      refine-rejected          11
    inversions=0 gaps=1
  {"fuzz":"summary","seed":42,"cases":75,"completed":75,"timed_out":0,"errors":0,"inversions":0,"gaps":1,"classes":{"unsound-certification":0,"refine-unsound":0,"logic-mismatch":0,"cert-inversion":0,"store-stale":0,"chan-race-unsound":0,"chan-deadlock-unsound":0,"race-unsound":0,"deadlock-unsound":0,"prune-unsound":0,"witness-bogus":0,"hierarchy-denning":0,"hierarchy-fs":0,"denning-gap":1,"fs-gap":0,"confirmed-rejection":14,"certified-agreement":15,"unconfirmed-rejection":20,"refine-accepted":14,"refine-rejected":11},"oracle":{"pairs_tested":222,"pairs_skipped":10},"shrink":{"steps":0,"evals":0},"counterexamples":[]}

  $ ../../bin/ifc.exe fuzz --seed 42 --cases 50 --jobs 2 --quiet > /dev/null 2>&1; echo "exit $?"
  exit 0

The hidden fault-injection hook plants one extra case whose CFM verdict
is forcibly wrong. The campaign must catch it, shrink it to the single
leaking assignment, persist it to the corpus with honest verdicts, and
exit 2:

  $ IFC_FUZZ_PLANT_INVERSION=1 ../../bin/ifc.exe fuzz --seed 7 --cases 8 --refine-cases 0 --jobs 2 \
  >   --corpus corpus.out --quiet > planted.out 2>/dev/null; echo "exit $?"
  exit 2

  $ grep -v '^{' planted.out | grep -E 'inversions=|counterexample|y := x'
    inversions=1 gaps=0
    counterexample case=8 class=unsound-certification statements 6 -> 1 corpus=corpus.out/inv-unsound-certification-7f1d530cad22.ifc
      y := x

The persisted program is the minimal counterexample:

  $ cat corpus.out/*.ifc
  var
    x : integer;
    y : integer;
  y := x

and its sidecar records the classification plus the honest analyzer
verdicts (CFM really rejects this program — the forced verdict is not
persisted), so replaying the corpus validates against a healthy build:

  $ grep -E 'class:|cfm:|interfering:|statements:' corpus.out/*.expect
  class: unsound-certification
  cfm: false
  interfering: true
  statements: 1

The planted run is itself deterministic, so the corpus file name
(content digest) is stable:

  $ ls corpus.out
  inv-unsound-certification-7f1d530cad22.expect
  inv-unsound-certification-7f1d530cad22.ifc

A second hook plants a case whose certificate round-trip is forcibly
broken (the proof exists but the emitted certificate fails the
independent checker). The cross-check catches it as a cert-inversion,
shrinks it, and persists it with honest verdicts — on a healthy build
the replayed certificate round-trip succeeds (cert: true):

  $ IFC_FUZZ_PLANT_CERT_INVERSION=1 ../../bin/ifc.exe fuzz --seed 7 --cases 0 --refine-cases 0 --jobs 2 \
  >   --corpus corpus.cert --quiet > planted-cert.out 2>/dev/null; echo "exit $?"
  exit 2

  $ grep -v '^{' planted-cert.out | grep -E 'cert-inversion|inversions='
      cert-inversion           1
    inversions=1 gaps=0
    counterexample case=0 class=cert-inversion statements 6 -> 1 corpus=corpus.cert/inv-cert-inversion-e2cd20cf8cb9.ifc

  $ grep -E 'class:|prove:|cert:|statements:' corpus.cert/*.expect
  class: cert-inversion
  prove: true
  cert: true
  statements: 1

A third hook plants a module pair whose refinement claim is forcibly
"accepted" while the replacement pipes the link-wide secret into its low
export. The executor refutes the claim on the swapped unit, the case
classifies as refine-unsound, shrinks to a minimal module pair, and the
swapped unit persists in linked syntax with honest verdicts:

  $ IFC_FUZZ_PLANT_REFINE_UNSOUND=1 ../../bin/ifc.exe fuzz --seed 7 --cases 0 --refine-cases 0 --jobs 2 \
  >   --corpus corpus.ref --quiet > planted-ref.out 2>/dev/null; echo "exit $?"
  exit 2

  $ grep -v '^{' planted-ref.out | grep -E 'refine-unsound|inversions='
      refine-unsound           1
    inversions=1 gaps=0
    counterexample case=0 class=refine-unsound statements 4 -> 4 corpus=corpus.ref/inv-refine-unsound-a92d73a0320c.ifc

  $ head -1 corpus.ref/*.ifc
  module src provides (out : class <= low) requires (secret : class >= high)

  $ grep -E 'class:|cfm:|interfering:' corpus.ref/*.expect
  class: refine-unsound
  cfm: false
  interfering: true
