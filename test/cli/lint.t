Golden tests for `ifc lint`, the static concurrency analyzer: may-happen-
in-parallel races, semaphore liveness, and the paper's "conditional delay"
observability warnings.

Figure 3's handshake is race-unsafe at the mailbox m and both conditional
handshakes leak through the delay of the waiting process:

  $ ../../bin/ifc.exe lint fig3.ifc
  line 6, cols 5-59: warning[imbalance]: branches differ in wait/signal balance on modified, modify; the branch taken is observable through the conditional delay of the waiting process
  line 9, cols 5-59: warning[imbalance]: branches differ in wait/signal balance on modified, modify; the branch taken is observable through the conditional delay of the waiting process
  line 11, cols 26-32: warning[race]: possible read/write race on m with a parallel process (see line 12, cols 24-30)
  0 errors, 3 warnings over 23 statements (6 accesses, 3 parallel pairs)
  claims: race-free false, deadlock-free false, must-block false, chan-race-free true, chan-deadlock-free true
  [2]

Findings exit 2, like a rejected certification:

  $ ../../bin/ifc.exe lint fig3.ifc > /dev/null; echo "exit $?"
  exit 2

A sequential program is clean and exits 0:

  $ ../../bin/ifc.exe lint sec52.ifc; echo "exit $?"
  0 errors, 0 warnings over 3 statements (3 accesses, 1 parallel pairs)
  claims: race-free true, deadlock-free true, must-block false, chan-race-free true, chan-deadlock-free true
  exit 0

A wait that no signal can ever satisfy is a guaranteed deadlock — an
error, and the analyzer claims the program can never terminate:

  $ ../../bin/ifc.exe lint deadlock.ifc; echo "exit $?"
  line 9, cols 3-10: error[deadlock]: every execution performs at least 1 wait(s) but at most 0 units can ever be supplied (initially 0); some wait blocks forever
  1 error, 0 warnings over 3 statements (1 accesses, 0 parallel pairs)
  claims: race-free true, deadlock-free false, must-block true, chan-race-free true, chan-deadlock-free true
  exit 2

A recv on a channel nobody ever feeds is a guaranteed communication
deadlock: an error from the channel lint, a must-block claim, and a
per-channel summary showing the starved endpoint:

  $ ../../bin/ifc.exe lint chan-deadlock.ifc; echo "exit $?"
  line 7, cols 3-13: error[chan-deadlock]: no send on c can precede or run alongside this recv; it blocks forever whenever reached
  1 error, 0 warnings over 2 statements (1 accesses, 0 parallel pairs)
  claims: race-free true, deadlock-free false, must-block true, chan-race-free true, chan-deadlock-free false
  channel c: cap 1, sends [0, 0], recvs [1, 1], 0 may-communicate edges
  exit 2

A producer/consumer pair is clean — the recv is fed through a
may-communicate edge — but channel-deadlock-freedom is deliberately
withheld (the recv may transiently block on the empty queue):

  $ ../../bin/ifc.exe lint prodcons.ifc; echo "exit $?"
  0 errors, 0 warnings over 3 statements (2 accesses, 0 parallel pairs)
  claims: race-free true, deadlock-free false, must-block false, chan-race-free true, chan-deadlock-free false
  channel c: cap 1, sends [1, 1], recvs [1, 1], 1 may-communicate edge
  exit 0

--json emits the same report as one machine-readable object (the byte-
identical artifact the batch pipeline caches and `ifc serve` returns):

  $ ../../bin/ifc.exe lint --json deadlock.ifc
  {"findings":[{"kind":"deadlock","severity":"error","span":"line 9, cols 3-10","message":"every execution performs at least 1 wait(s) but at most 0 units can ever be supplied (initially 0); some wait blocks forever"}],"claims":{"race_free":true,"deadlock_free":false,"must_block":true,"chan_race_free":true,"chan_deadlock_free":true},"channels":[],"stats":{"statements":3,"accesses":1,"pairs":0},"pruned":[]}
  [2]

  $ ../../bin/ifc.exe lint --json sec52.ifc
  {"findings":[],"claims":{"race_free":true,"deadlock_free":true,"must_block":false,"chan_race_free":true,"chan_deadlock_free":true},"channels":[],"stats":{"statements":3,"accesses":3,"pairs":1},"pruned":[]}

  $ ../../bin/ifc.exe lint --json chan-deadlock.ifc
  {"findings":[{"kind":"chan-deadlock","severity":"error","span":"line 7, cols 3-13","message":"no send on c can precede or run alongside this recv; it blocks forever whenever reached"}],"claims":{"race_free":true,"deadlock_free":false,"must_block":true,"chan_race_free":true,"chan_deadlock_free":false},"channels":[{"name":"c","cap":1,"send_min":0,"send_max":0,"recv_min":1,"recv_max":1,"edges":0}],"stats":{"statements":2,"accesses":1,"pairs":0},"pruned":[]}
  [2]

Unreadable programs are an error (exit 1), not a verdict:

  $ echo 'var x : integer; begin x := end' > bad.ifc
  $ ../../bin/ifc.exe lint bad.ifc; echo "exit $?"
  ifc: bad.ifc: 1:29: expected an expression but found 'end'
  exit 1
