End-to-end test of the certification daemon: ifc serve in the
background, ifc client over a Unix-domain socket, SIGTERM drain.

The socket lives in a fresh short directory: AF_UNIX paths are capped
at ~108 bytes and dune sandboxes nest deep.

  $ SOCK_DIR=$(mktemp -d)
  $ SOCK="$SOCK_DIR/ifc.sock"

  $ ../../bin/ifc.exe serve --socket "$SOCK" --quiet &
  $ SERVER_PID=$!

The client retries the connection while the server starts:

  $ ../../bin/ifc.exe client --socket "$SOCK" --wait 10 ping
  pong

The paper's Figure 3 covert-channel program, certified over the wire:
with x secret and y public the synchronization flow x -> m -> y must be
rejected, exactly as the in-process checker rejects it.

  $ ../../bin/ifc.exe client --socket "$SOCK" check --binding leaky.bind fig3.ifc
  fig3.ifc: fail (cache miss)
  [2]

The shared result cache answers the identical request without
recomputing:

  $ ../../bin/ifc.exe client --socket "$SOCK" check --binding leaky.bind fig3.ifc
  fig3.ifc: fail (cache hit)
  [2]

A permissive binding certifies, and pass means exit 0:

  $ ../../bin/ifc.exe client --socket "$SOCK" check fig3.ifc
  fig3.ifc: pass (cache miss)

The stats operation sees all of the above:

  $ ../../bin/ifc.exe client --socket "$SOCK" --json stats | grep -o '"op.check":3'
  "op.check":3
  $ ../../bin/ifc.exe client --socket "$SOCK" --json stats | grep -o '"hits":1,'
  "hits":1,

SIGTERM drains and the server exits 0:

  $ kill -TERM $SERVER_PID
  $ wait $SERVER_PID

Backpressure under protocol-v4 pipelining: a server planted with a
deterministic 300 ms stall (IFC_SERVE_PLANT_STALL) and a 2-request
in-flight cap refuses the overflow with a structured overloaded error
while the two admitted requests still complete. The loadgen drives one
pipelined connection with 6 stall-named requests in flight at once.

  $ IFC_SERVE_PLANT_STALL=300 ../../bin/ifc.exe serve --socket "$SOCK" --max-inflight 2 --quiet &
  $ SERVER_PID=$!
  $ ../../bin/ifc.exe loadgen --socket "$SOCK" --clients 1 --window 6 --requests 6 --distinct 6 --name stall --json | grep -o '"ok":2,"failed":4,"protocol_errors":0'
  "ok":2,"failed":4,"protocol_errors":0
  $ ../../bin/ifc.exe client --socket "$SOCK" --json stats | grep -o '"error.overloaded":4'
  "error.overloaded":4
  $ kill -TERM $SERVER_PID
  $ wait $SERVER_PID

The differential oracle replays one seeded stream against the legacy
and sharded engines and demands identical responses:

  $ ../../bin/ifc.exe loadgen --oracle --oracle-requests 60
  oracle: 60 requests replayed, 0 divergence(s)

  $ rm -rf "$SOCK_DIR"
