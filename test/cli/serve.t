End-to-end test of the certification daemon: ifc serve in the
background, ifc client over a Unix-domain socket, SIGTERM drain.

The socket lives in a fresh short directory: AF_UNIX paths are capped
at ~108 bytes and dune sandboxes nest deep.

  $ SOCK_DIR=$(mktemp -d)
  $ SOCK="$SOCK_DIR/ifc.sock"

  $ ../../bin/ifc.exe serve --socket "$SOCK" --quiet &
  $ SERVER_PID=$!

The client retries the connection while the server starts:

  $ ../../bin/ifc.exe client --socket "$SOCK" --wait 10 ping
  pong

The paper's Figure 3 covert-channel program, certified over the wire:
with x secret and y public the synchronization flow x -> m -> y must be
rejected, exactly as the in-process checker rejects it.

  $ ../../bin/ifc.exe client --socket "$SOCK" check --binding leaky.bind fig3.ifc
  fig3.ifc: fail (cache miss)
  [2]

The shared result cache answers the identical request without
recomputing:

  $ ../../bin/ifc.exe client --socket "$SOCK" check --binding leaky.bind fig3.ifc
  fig3.ifc: fail (cache hit)
  [2]

A permissive binding certifies, and pass means exit 0:

  $ ../../bin/ifc.exe client --socket "$SOCK" check fig3.ifc
  fig3.ifc: pass (cache miss)

The stats operation sees all of the above:

  $ ../../bin/ifc.exe client --socket "$SOCK" --json stats | grep -o '"op.check":3'
  "op.check":3
  $ ../../bin/ifc.exe client --socket "$SOCK" --json stats | grep -o '"hits":1,'
  "hits":1,

SIGTERM drains and the server exits 0:

  $ kill -TERM $SERVER_PID
  $ wait $SERVER_PID

  $ rm -rf "$SOCK_DIR"
