Golden tests for the dataflow engine on the CLI: infeasible-path
pruning in `ifc lint`, the pinned `--json` schema, flow witnesses under
`--explain`, and the modular summary path through the store.

The canonical whole-program false positive: the cobegin races on y, but
the guard x = 0 is statically false after x := 1 — pruning rewrites the
arm to skip, the race vanishes (race-free stays claimed), and the only
finding is the unreachable-arm warning:

  $ cat > prune-race.ifc <<'EOF'
  > var x, y : integer;
  > begin
  >   x := 1;
  >   if x = 0 then
  >     cobegin y := 1 || y := 2 coend
  >   else
  >     skip
  > end
  > EOF

  $ ../../bin/ifc.exe lint prune-race.ifc
  line 5, cols 5-35: warning[unreachable]: then branch is unreachable on every input (see lines 4-7)
  0 errors, 1 warning over 7 statements (2 accesses, 1 parallel pairs)
  claims: race-free true, deadlock-free true, must-block false, chan-race-free true, chan-deadlock-free true
  pruned: then at line 5, cols 5-35 (guard at lines 4-7)
  [2]

--no-prune restores the pre-engine behaviour — the spurious race
returns and the race-free claim is withdrawn:

  $ ../../bin/ifc.exe lint --no-prune prune-race.ifc
  line 5, cols 13-19: warning[race]: possible write/write race on y with a parallel process (see line 5, cols 23-29)
  0 errors, 1 warning over 7 statements (4 accesses, 2 parallel pairs)
  claims: race-free false, deadlock-free true, must-block false, chan-race-free true, chan-deadlock-free true
  [2]

The JSON report is a pinned schema (documented in PROTOCOL.md): the
top-level keys are findings, claims, channels, stats, pruned — in that
order — and each pruned arm carries arm/span/stmt:

  $ ../../bin/ifc.exe lint --json prune-race.ifc
  {"findings":[{"kind":"unreachable","severity":"warning","span":"line 5, cols 5-35","message":"then branch is unreachable on every input","related":"lines 4-7"}],"claims":{"race_free":true,"deadlock_free":true,"must_block":false,"chan_race_free":true,"chan_deadlock_free":true},"channels":[],"stats":{"statements":7,"accesses":2,"pairs":1},"pruned":[{"arm":"then","span":"line 5, cols 5-35","stmt":"lines 4-7"}]}
  [2]

A definitely-overwritten assignment is a dead-store warning:

  $ cat > dead.ifc <<'EOF'
  > var x, y : integer;
  > begin
  >   x := 5;
  >   x := y;
  >   y := x
  > end
  > EOF

  $ ../../bin/ifc.exe lint dead.ifc
  line 3, cols 3-9: warning[dead-store]: value assigned to x is overwritten before any read
  0 errors, 1 warning over 4 statements (5 accesses, 4 parallel pairs)
  claims: race-free true, deadlock-free true, must-block false, chan-race-free true, chan-deadlock-free true
  [2]

A constant guard stays a guard finding, byte-for-byte — pruning still
removes the arm but does not double-report it as unreachable:

  $ cat > constguard.ifc <<'EOF'
  > var y : integer;
  > begin
  >   if false then y := 1 else skip
  > end
  > EOF

  $ ../../bin/ifc.exe lint constguard.ifc
  line 3, cols 3-33: warning[guard]: if guard is constantly false; the then branch never executes
  0 errors, 1 warning over 4 statements (0 accesses, 0 parallel pairs)
  claims: race-free true, deadlock-free true, must-block false, chan-race-free true, chan-deadlock-free true
  pruned: then at line 3, cols 17-23 (guard at line 3, cols 3-33)
  [2]

`check --explain` appends a flow witness to a rejection: the source
variables whose classes broke the constraint, the propagation steps,
and the failed sink check. sec52.ifc copies high x into low y:

  $ ../../bin/ifc.exe check --explain --binding leaky.bind sec52.ifc | tail -3
  
  witness (cfm): assign: sbind(e) <= sbind(x) at line 2, cols 15-21 [y]
    source: x


`lint --explain` shows the same witness after the concurrency report
(lint findings and certification are independent — this program lints
clean but leaks):

  $ ../../bin/ifc.exe lint --explain --binding leaky.bind sec52.ifc
  0 errors, 0 warnings over 3 statements (3 accesses, 1 parallel pairs)
  claims: race-free true, deadlock-free true, must-block false, chan-race-free true, chan-deadlock-free true
  witness (cfm): assign: sbind(e) <= sbind(x) at line 2, cols 15-21 [y]
    source: x

Under --json the witness is an additional top-level key, present only
with --explain:

  $ ../../bin/ifc.exe lint --explain --json --binding leaky.bind sec52.ifc
  {"findings":[],"claims":{"race_free":true,"deadlock_free":true,"must_block":false,"chan_race_free":true,"chan_deadlock_free":true},"channels":[],"stats":{"statements":3,"accesses":3,"pairs":1},"pruned":[],"witness":{"mode":"cfm","source":["x"],"steps":[],"sink_span":"line 2, cols 15-21","sink_rule":"assign: sbind(e) <= sbind(x)","sink_var":"y"}}

An accepted program has no witness to show:

  $ printf 'x : low\ny : low\n' > alllow.bind
  $ ../../bin/ifc.exe lint --explain --binding alllow.bind sec52.ifc | tail -1
  flow explanation: certified; no witness to show

Modular lint: per-module dataflow facts ride the store's summary seam —
the facts depend only on the module body, so one module edited means
one summary recomputed. Second run reuses the helper's summary:

  $ cat > dl-lib.ifc <<'EOF'
  > module helper
  >   provides (h : class <= high)
  >   var h : integer class high;
  >       t : integer class low;
  >   begin
  >     t := 1;
  >     if t = 0 then h := 2 else skip
  >   end
  > end
  > 
  > var z : integer class low;
  > begin z := 1; z := 2 end
  > EOF

  $ ../../bin/ifc.exe lint --modular --store dlstore dl-lib.ifc
  dataflow: 1 summaries computed, 0 reused from store
  line 7, cols 19-25: warning[unreachable]: then branch is unreachable on every input (see line 7, cols 5-35)
  line 12, cols 7-13: warning[dead-store]: value assigned to z is overwritten before any read
  0 errors, 2 warnings over 9 statements (4 accesses, 2 parallel pairs)
  claims: race-free true, deadlock-free true, must-block false, chan-race-free true, chan-deadlock-free true
  pruned: then at line 7, cols 19-25 (guard at line 7, cols 5-35)
  [2]

  $ ../../bin/ifc.exe lint --modular --store dlstore dl-lib.ifc 2>&1 >/dev/null
  dataflow: 0 summaries computed, 1 reused from store
  [2]
