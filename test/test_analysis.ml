(* Tests for the static concurrency analyzer: MHP structure and
   handshake refinement, race detection, semaphore liveness, guard
   lints, the dynamic race witness they are cross-checked against, and
   the soundness property tying static claims to complete exploration. *)

module Ast = Ifc_lang.Ast
module Parser = Ifc_lang.Parser
module Gen = Ifc_lang.Gen
module Paper = Ifc_core.Paper
module Mhp = Ifc_analysis.Mhp
module Semlive = Ifc_analysis.Semlive
module Guards = Ifc_analysis.Guards
module Finding = Ifc_analysis.Finding
module Analyze = Ifc_analysis.Analyze
module Explore = Ifc_exec.Explore
module Smap = Ifc_support.Smap
module Arb = Qcheck_arbitrary

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let program src =
  match Parser.parse_program src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e

let kinds report =
  List.map (fun (f : Finding.t) -> Finding.kind_name f.Finding.kind)
    report.Analyze.findings

let relation =
  Alcotest.testable
    (fun ppf r ->
      Fmt.string ppf
        (match r with
        | Mhp.Equal -> "equal"
        | Mhp.Before -> "before"
        | Mhp.After -> "after"
        | Mhp.Parallel -> "parallel"
        | Mhp.Exclusive -> "exclusive"))
    ( = )

(* ------------------------------------------------------------------ *)
(* MHP structure *)

let test_mhp_relations () =
  let t =
    Mhp.create
      (program
         {|var x, y, z : integer;
           begin
             x := 1;
             cobegin y := 1 || z := 1 coend;
             if x = 0 then y := 2 else z := 2 fi
           end|})
  in
  Alcotest.check relation "seq orders" Mhp.Before (Mhp.relate t [ 0 ] [ 1 ]);
  Alcotest.check relation "seq orders (flip)" Mhp.After (Mhp.relate t [ 1 ] [ 0 ]);
  Alcotest.check relation "cobegin branches are parallel" Mhp.Parallel
    (Mhp.relate t [ 1; 0 ] [ 1; 1 ]);
  Alcotest.check relation "if arms are exclusive" Mhp.Exclusive
    (Mhp.relate t [ 2; 0 ] [ 2; 1 ]);
  Alcotest.check relation "guard read precedes its arm" Mhp.Before
    (Mhp.relate t [ 2 ] [ 2; 0 ]);
  Alcotest.check relation "equal" Mhp.Equal (Mhp.relate t [ 1; 0 ] [ 1; 0 ]);
  Alcotest.check relation "across constructs via seq" Mhp.Before
    (Mhp.relate t [ 1; 0 ] [ 2; 1 ])

let test_mhp_accesses () =
  let t =
    Mhp.create
      (program
         "var x, y : integer; a : array(4);\n\
          begin x := y + 1; a[x] := 2; while y < 3 do y := y + 1 end")
  in
  (* x:=y+1 -> write x, read y; a(x):=2 -> write a, read x;
     while guard -> read y; body -> write y, read y. *)
  check_int "access count" 7 (List.length (Mhp.accesses t));
  let writes =
    List.filter (fun (a : Mhp.access) -> a.Mhp.write) (Mhp.accesses t)
  in
  Alcotest.(check (list string))
    "write targets" [ "x"; "a"; "y" ]
    (List.map (fun (a : Mhp.access) -> a.Mhp.var) writes)

(* ------------------------------------------------------------------ *)
(* Handshake refinement *)

let handshake_src =
  {|var x, y : integer; s : semaphore initially(0);
    cobegin
      begin x := 1; signal(s) end
      || begin wait(s); y := x end
    coend|}

let test_handshake_orders () =
  let t = Mhp.create (program handshake_src) in
  (* x := 1 at [0;0], signal at [0;1], wait at [1;0], y := x at [1;1]. *)
  check "x:=1 precedes y:=x through the handshake" true
    (Mhp.handshake_ordered t [ 0; 0 ] [ 1; 1 ]);
  check "so the pair is not MHP" false
    (Mhp.may_happen_in_parallel t [ 0; 0 ] [ 1; 1 ]);
  check "no reverse edge" false (Mhp.handshake_ordered t [ 1; 1 ] [ 0; 0 ]);
  (* The wait itself is not ordered after the signal's predecessor by
     anything but the handshake; unrelated parallel points stay MHP. *)
  check "signal and wait sites are not data accesses" true
    (List.for_all
       (fun (a : Mhp.access) -> a.Mhp.var <> "s")
       (Mhp.accesses t))

let test_handshake_suppresses_race () =
  let r = Analyze.run (program handshake_src) in
  Alcotest.(check (list string)) "no findings" [] (kinds r);
  check "race_free" true r.Analyze.claims.Analyze.race_free;
  (* The wait is not covered by the initial count, so the analyzer will
     not claim the program free of transient blocking. *)
  check "not claimed deadlock_free" false
    r.Analyze.claims.Analyze.deadlock_free;
  check "not must_block" false r.Analyze.claims.Analyze.must_block

let test_nonzero_init_breaks_eligibility () =
  (* With initially(1) the wait can be satisfied by the initial unit, so
     the handshake proves nothing and the race must be reported. *)
  let src =
    {|var x, y : integer; s : semaphore initially(1);
      cobegin
        begin x := 1; signal(s) end
        || begin wait(s); y := x end
      coend|}
  in
  let r = Analyze.run (program src) in
  check "race reported" true (List.mem "race" (kinds r));
  check "not race_free" false r.Analyze.claims.Analyze.race_free

let test_looping_site_breaks_eligibility () =
  (* A signal site under a while makes the semaphore ineligible: a unit
     from an earlier iteration could satisfy the wait. *)
  let src =
    {|var x, y, i : integer; s : semaphore initially(0);
      cobegin
        while i < 2 do begin x := 1; signal(s); i := i + 1 end
        || begin wait(s); y := x end
      coend|}
  in
  let r = Analyze.run (program src) in
  check "race reported" true (List.mem "race" (kinds r))

let test_plain_race_detected () =
  let r =
    Analyze.run
      (program "var x : integer; cobegin x := 1 || x := 2 coend")
  in
  check "write/write race" true (List.mem "race" (kinds r));
  check "not race_free" false r.Analyze.claims.Analyze.race_free;
  let f =
    List.find
      (fun (f : Finding.t) -> f.Finding.kind = Finding.Race)
      r.Analyze.findings
  in
  check "race carries the second endpoint" true (f.Finding.related <> None)

let test_exclusive_arms_do_not_race () =
  let r =
    Analyze.run
      (program
         "var x, e : integer; if e = 0 then x := 1 else x := 2 fi")
  in
  check "no race between if arms" false (List.mem "race" (kinds r))

(* ------------------------------------------------------------------ *)
(* Semaphore liveness *)

let test_guaranteed_deadlock () =
  let r =
    Analyze.run
      (program
         {|var x : integer; s : semaphore initially(0);
           begin wait(s); x := 1 end|})
  in
  check "deadlock reported" true (List.mem "deadlock" (kinds r));
  check "must_block" true r.Analyze.claims.Analyze.must_block;
  check "not deadlock_free" false r.Analyze.claims.Analyze.deadlock_free;
  let f =
    List.find
      (fun (f : Finding.t) -> f.Finding.kind = Finding.Deadlock)
      r.Analyze.findings
  in
  check "deadlock is an error" true (f.Finding.severity = Finding.Error)

let test_initial_count_covers_wait () =
  let r =
    Analyze.run
      (program
         {|var x : integer; s : semaphore initially(2);
           begin wait(s); x := 1 end|})
  in
  check "no deadlock finding" false (List.mem "deadlock" (kinds r));
  check "deadlock_free" true r.Analyze.claims.Analyze.deadlock_free

let test_lost_signal () =
  let r =
    Analyze.run
      (program
         "var x : integer; s : semaphore initially(0);\n\
          begin x := 1; signal(s) end")
  in
  check "lost signal reported" true (List.mem "lost-signal" (kinds r))

let test_if_imbalance () =
  let r =
    Analyze.run
      (program
         {|var e : integer; s : semaphore initially(1);
           cobegin
             begin if e = 0 then signal(s) else skip fi end
             || wait(s)
           coend|})
  in
  check "imbalance reported" true (List.mem "imbalance" (kinds r))

let test_loop_synchronization_imbalance () =
  let r =
    Analyze.run
      (program
         {|var i : integer; s : semaphore initially(0);
           while i < 3 do begin signal(s); i := i + 1 end|})
  in
  check "loop synchronization reported" true (List.mem "imbalance" (kinds r))

let test_usages_interval () =
  let p =
    program
      {|var i, e : integer; s : semaphore initially(0);
        begin
          while i < 2 do wait(s);
          if e = 0 then signal(s) else skip fi
        end|}
  in
  let u = Smap.find "s" (Semlive.usages p.Ast.body) in
  check_int "loop wait_min is 0" 0 u.Semlive.wait_min;
  check "loop wait_max is unbounded" true (u.Semlive.wait_max = Semlive.Inf);
  check_int "branch signal_min is 0" 0 u.Semlive.signal_min;
  check "branch signal_max is 1" true (u.Semlive.signal_max = Semlive.Fin 1)

(* ------------------------------------------------------------------ *)
(* Channel lint *)

let test_chan_starved_recv () =
  let r =
    Analyze.run
      (program "var x : integer; c : channel(1); begin recv(c, x) end")
  in
  check "chan-deadlock reported" true (List.mem "chan-deadlock" (kinds r));
  check "must_block" true r.Analyze.claims.Analyze.must_block;
  check "not chan_deadlock_free" false
    r.Analyze.claims.Analyze.chan_deadlock_free;
  check "not deadlock_free" false r.Analyze.claims.Analyze.deadlock_free;
  let f =
    List.find
      (fun (f : Finding.t) -> f.Finding.kind = Finding.Chan_deadlock)
      r.Analyze.findings
  in
  check "starved recv is an error" true (f.Finding.severity = Finding.Error)

let test_chan_orphan_send () =
  let r =
    Analyze.run
      (program "var x : integer; c : channel(1); begin send(c, x) end")
  in
  check "orphan-message reported" true (List.mem "orphan-message" (kinds r));
  (* One send into capacity 1 never blocks and nobody receives: this is
     the only shape whose conservative channel-deadlock-freedom claim
     survives. *)
  check "chan_deadlock_free" true r.Analyze.claims.Analyze.chan_deadlock_free;
  check "not must_block" false r.Analyze.claims.Analyze.must_block

let test_chan_prodcons_clean () =
  let r =
    Analyze.run
      (program
         {|var x, y : integer; c : channel(1);
           cobegin send(c, x) || recv(c, y) coend|})
  in
  Alcotest.(check (list string)) "no findings" [] (kinds r);
  check "chan_race_free" true r.Analyze.claims.Analyze.chan_race_free;
  (* The recv may transiently block waiting for the send, so the
     conservative deadlock-freedom claim is withheld without a finding. *)
  check "deadlock-freedom withheld" false
    r.Analyze.claims.Analyze.chan_deadlock_free

let test_chan_contention () =
  let r =
    Analyze.run
      (program
         {|var x, y, z : integer; c : channel(2);
           cobegin send(c, x) || send(c, y) || begin recv(c, z); recv(c, z) end coend|})
  in
  check "chan-race reported" true (List.mem "chan-race" (kinds r));
  check "not chan_race_free" false r.Analyze.claims.Analyze.chan_race_free

let test_chan_overflow () =
  let r =
    Analyze.run
      (program
         {|var x : integer; c : channel(1);
           begin send(c, x); send(c, x) end|})
  in
  check "chan-deadlock reported" true (List.mem "chan-deadlock" (kinds r));
  check "must_block" true r.Analyze.claims.Analyze.must_block

let test_chan_summaries () =
  let r =
    Analyze.run
      (program
         {|var x, y : integer; c : channel(3) class low;
           cobegin send(c, x) || recv(c, y) coend|})
  in
  match r.Analyze.channels with
  | [ s ] ->
    Alcotest.(check string) "name" "c" s.Ifc_chan.Lint.s_chan;
    check_int "cap" 3 s.Ifc_chan.Lint.s_cap;
    check "class" true (s.Ifc_chan.Lint.s_cls = Some "low");
    check_int "send_min" 1 s.Ifc_chan.Lint.s_send_min;
    check "send_max" true (s.Ifc_chan.Lint.s_send_max = Ifc_chan.Lint.Fin 1);
    check_int "recv_min" 1 s.Ifc_chan.Lint.s_recv_min;
    check "recv_max" true (s.Ifc_chan.Lint.s_recv_max = Ifc_chan.Lint.Fin 1);
    check_int "one may-communicate edge" 1 s.Ifc_chan.Lint.s_degree
  | ss -> Alcotest.failf "expected one channel summary, got %d" (List.length ss)

(* ------------------------------------------------------------------ *)
(* Guard lints *)

let test_constant_guards () =
  let r =
    Analyze.run
      (program
         {|var x : integer;
           begin
             if 1 = 1 then x := 1 else x := 2 fi;
             while 2 < 1 do x := 3
           end|})
  in
  check_int "two guard lints" 2
    (List.length
       (List.filter (fun k -> k = "guard") (kinds r)));
  check "guards do not affect claims" true r.Analyze.claims.Analyze.race_free

let test_variable_guard_not_linted () =
  let r =
    Analyze.run (program "var x : integer; while x < 3 do x := x + 1")
  in
  Alcotest.(check (list string)) "clean" [] (kinds r)

(* ------------------------------------------------------------------ *)
(* The dynamic race witness the fuzzer cross-checks against *)

let test_dynamic_race_witness () =
  let s =
    Explore.explore_program
      (program "var x : integer; cobegin x := 1 || x := 2 coend")
  in
  Alcotest.(check (list string)) "x witnessed" [ "x" ] s.Explore.races

let test_dynamic_no_race_through_handshake () =
  let s = Explore.explore_program (program handshake_src) in
  Alcotest.(check (list string)) "no witness" [] s.Explore.races;
  check "exploration complete" true s.Explore.complete

let test_sem_ops_never_witness () =
  let s =
    Explore.explore_program
      (program
         "var x : integer; s : semaphore initially(0);\n\
          cobegin signal(s) || wait(s) coend")
  in
  Alcotest.(check (list string)) "sem ops are not data" [] s.Explore.races

(* ------------------------------------------------------------------ *)
(* Whole-program fixtures *)

let test_quickstart_clean () =
  let src =
    {|var secret, public : integer;
      ready : semaphore initially(0);
      cobegin
        begin public := 2 * public + 1; signal(ready) end
        || begin wait(ready); secret := secret + public end
      coend|}
  in
  let r = Analyze.run (program src) in
  Alcotest.(check (list string)) "no findings" [] (kinds r);
  check "race_free" true r.Analyze.claims.Analyze.race_free

let test_fig3_report () =
  let r = Analyze.run Paper.fig3 in
  check "fig3 has the m race" true (List.mem "race" (kinds r));
  check_int "fig3 has two conditional-delay imbalances" 2
    (List.length (List.filter (fun k -> k = "imbalance") (kinds r)));
  check "not race_free" false r.Analyze.claims.Analyze.race_free

let test_report_sorted_and_counted () =
  let r = Analyze.run Paper.fig3 in
  let rec sorted = function
    | a :: (b :: _ as rest) -> Finding.compare a b <= 0 && sorted rest
    | _ -> true
  in
  check "findings sorted" true (sorted r.Analyze.findings);
  check "statements counted" true (r.Analyze.stats.Analyze.statements > 0);
  check "accesses counted" true (r.Analyze.stats.Analyze.accesses > 0)

(* ------------------------------------------------------------------ *)
(* Soundness: complete dynamic exploration never refutes static claims *)

let qtest ?(count = 150) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb prop)

let claims_sound =
  qtest "complete exploration never refutes static claims"
    (Arb.program ~max_size:10 ())
    (fun p ->
      let r = Analyze.run p in
      let s = Explore.explore_program ~max_states:30_000 p in
      (* Bounded or faulting explorations prove nothing; skip them. *)
      if (not s.Explore.complete) || s.Explore.faults <> [] then true
      else
        ((not r.Analyze.claims.Analyze.race_free) || s.Explore.races = [])
        && ((not r.Analyze.claims.Analyze.deadlock_free)
           || s.Explore.deadlocks = [])
        && ((not r.Analyze.claims.Analyze.must_block)
           || s.Explore.terminals = []))

let deadlock_free_implies_no_deadlock =
  qtest "deadlock_free => can_deadlock is false"
    (Arb.program ~max_size:10 ())
    (fun p ->
      let r = Analyze.run p in
      if not r.Analyze.claims.Analyze.deadlock_free then true
      else
        let s = Explore.explore_program ~max_states:30_000 p in
        (not s.Explore.complete) || not (Explore.can_deadlock s))

(* ------------------------------------------------------------------ *)

let suite =
  ( "analysis",
    [
      Alcotest.test_case "mhp relations" `Quick test_mhp_relations;
      Alcotest.test_case "mhp accesses" `Quick test_mhp_accesses;
      Alcotest.test_case "handshake orders" `Quick test_handshake_orders;
      Alcotest.test_case "handshake suppresses race" `Quick
        test_handshake_suppresses_race;
      Alcotest.test_case "nonzero init breaks eligibility" `Quick
        test_nonzero_init_breaks_eligibility;
      Alcotest.test_case "looping site breaks eligibility" `Quick
        test_looping_site_breaks_eligibility;
      Alcotest.test_case "plain race detected" `Quick test_plain_race_detected;
      Alcotest.test_case "exclusive arms do not race" `Quick
        test_exclusive_arms_do_not_race;
      Alcotest.test_case "guaranteed deadlock" `Quick test_guaranteed_deadlock;
      Alcotest.test_case "initial count covers wait" `Quick
        test_initial_count_covers_wait;
      Alcotest.test_case "lost signal" `Quick test_lost_signal;
      Alcotest.test_case "if imbalance" `Quick test_if_imbalance;
      Alcotest.test_case "loop synchronization imbalance" `Quick
        test_loop_synchronization_imbalance;
      Alcotest.test_case "usage intervals" `Quick test_usages_interval;
      Alcotest.test_case "chan starved recv" `Quick test_chan_starved_recv;
      Alcotest.test_case "chan orphan send" `Quick test_chan_orphan_send;
      Alcotest.test_case "chan producer/consumer clean" `Quick
        test_chan_prodcons_clean;
      Alcotest.test_case "chan contention" `Quick test_chan_contention;
      Alcotest.test_case "chan overflow" `Quick test_chan_overflow;
      Alcotest.test_case "chan summaries" `Quick test_chan_summaries;
      Alcotest.test_case "constant guards" `Quick test_constant_guards;
      Alcotest.test_case "variable guard not linted" `Quick
        test_variable_guard_not_linted;
      Alcotest.test_case "dynamic race witness" `Quick test_dynamic_race_witness;
      Alcotest.test_case "no dynamic race through handshake" `Quick
        test_dynamic_no_race_through_handshake;
      Alcotest.test_case "sem ops never witness" `Quick
        test_sem_ops_never_witness;
      Alcotest.test_case "quickstart program is clean" `Quick
        test_quickstart_clean;
      Alcotest.test_case "fig3 report" `Quick test_fig3_report;
      Alcotest.test_case "report sorted and counted" `Quick
        test_report_sorted_and_counted;
      claims_sound;
      deadlock_free_implies_no_deadlock;
    ] )
