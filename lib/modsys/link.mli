(** Linking certified modules from their summaries alone.

    [certify] never re-walks a module body: each module resolves to a
    summary (store-backed via {!Summary.of_store} when a store is
    supplied, computed and persisted otherwise), and the link step
    evaluates — in time proportional to interface size —

    - every summary's residual constraints under the linked binding,
    - the top-level sequential-composition checks from the summaries'
      symbolic [mod]/[flow] (the main program, which is the link step's
      own body, is walked directly),
    - interface conformance: export classes within their [provides]
      bounds, import classes at or above their [requires] bounds.

    The flow verdict ([cert_ok]) coincides exactly with whole-program
    CFM on the {!elaborate}d unit — the decomposition into atoms loses
    nothing — which the round-trip tests and CI byte-compare. [emit]
    packages the result as an [ifc-cert 2] certificate
    ({!Ifc_cert.Linked}) with optional per-module component
    certificates, self-checked before being returned. *)

module Lattice := Ifc_lattice.Lattice
module Linked := Ifc_cert.Linked
module Store := Ifc_store.Store

type outcome = {
  ok : bool;  (** [cert_ok && iface_ok]. *)
  cert_ok : bool;
      (** The flow verdict: equals whole-program CFM on the elaboration. *)
  iface_ok : bool;
      (** Export classes within bounds and import classes at or above
          their required lower bounds. *)
  issues : string list;  (** Human-readable notes for every failure. *)
  summaries : Linked.summary list;  (** One per module, in unit order. *)
  computed : int;  (** Summaries computed this call. *)
  reused : int;  (** Summaries served from the store. *)
}

val elaborate : Ifc_lang.Ast.linked -> Ifc_lang.Ast.program
(** The whole-program reference: all declarations merged (modules first,
    then main), bodies composed sequentially with main last. *)

val binding :
  lattice:string Lattice.t ->
  ?default:string ->
  Ifc_lang.Ast.linked ->
  (string Ifc_core.Binding.t, string) result
(** The linked binding: {!Ifc_core.Binding.of_program} over the
    elaboration. *)

val certify :
  ?store:Store.t ->
  lattice:string Lattice.t ->
  ?default:string ->
  Ifc_lang.Ast.linked ->
  (outcome, string) result
(** Certify a linked unit from summaries. [Error] reports structural
    problems (unresolvable class names); analysis failures land in the
    outcome. *)

val emit :
  ?store:Store.t ->
  ?with_components:bool ->
  lattice:string Lattice.t ->
  ?default:string ->
  Ifc_lang.Ast.linked ->
  (string * (string * string) list, string) result
(** [emit l] certifies and serializes an [ifc-cert 2] certificate,
    returning its text plus [(module name, component certificate text)]
    for every module whose import-closed body admits a version-1
    certificate ([~with_components:false] skips those). The linked
    certificate is parsed back and re-checked with
    {!Ifc_cert.Linked.check} (components included) before being
    returned; a unit that does not certify is an [Error]. *)

val job_analysis :
  ?store:Store.t ->
  lattice:string Lattice.t ->
  ?default:string ->
  Ifc_lang.Ast.linked ->
  Ifc_pipeline.Job.analysis
(** A [Job.Link] analysis for the unit: run it in a spec whose program is
    {!elaborate}[ l] and whose binding is {!binding}[ l], and the verdict
    — with the emitted certificate as artifact — lands in the pipeline's
    digest-keyed cache. One module edited means one summary recomputed
    plus the link step; nothing else. *)
