(* Refinement checking: summary-vs-summary dominance. Each clause is the
   monotone direction of one quantity Link.certify consumes, so passing
   here implies every certified link survives the swap. *)

module Lattice = Ifc_lattice.Lattice
module Ast = Ifc_lang.Ast
module Linked = Ifc_cert.Linked

type report = { ok : bool; reasons : string list }

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let check ~lattice ?default ~(iface : Ast.iface) ~(base : Linked.summary)
    (replacement : Ast.module_unit) =
  Result.map
    (fun (r : Linked.summary) ->
      let reasons = ref [] in
      let reject fmt = Printf.ksprintf (fun s -> reasons := s :: !reasons) fmt in
      let resolve what cls =
        match lattice.Lattice.of_string cls with
        | Ok c -> Some c
        | Error _ ->
          reject "unknown class %s in %s" cls what;
          None
      in
      if not r.Linked.locals_ok then
        reject "replacement's import-free internal checks fail";
      if not r.Linked.exports_ok then
        reject "replacement's exports exceed its own interface bounds";
      (* Interface coverage: every provided name of the interface, at or
         below its bound. *)
      List.iter
        (fun (e : Ast.iface_entry) ->
          match List.assoc_opt e.iv_name r.Linked.exports with
          | None -> reject "replacement does not provide %s" e.iv_name
          | Some cls -> (
            match (resolve "replacement export" cls, resolve "provides bound" e.iv_class)
            with
            | Some c, Some bound ->
              if not (lattice.Lattice.leq c bound) then
                reject "replacement exports %s at %s, above the interface bound %s"
                  e.iv_name cls e.iv_class
            | _ -> ()))
        iface.provides;
      (* Requires: no new import, no strengthened lower bound. *)
      List.iter
        (fun (y, bound) ->
          match
            List.find_opt (fun (e : Ast.iface_entry) -> String.equal e.iv_name y)
              iface.requires
          with
          | None -> reject "replacement requires %s, which the interface does not" y
          | Some e -> (
            match (resolve "replacement requires" bound, resolve "requires bound" e.iv_class)
            with
            | Some b, Some ib ->
              if not (lattice.Lattice.leq b ib) then
                reject
                  "replacement requires %s at bound %s, above the interface's %s" y
                  bound e.iv_class
            | _ -> ()))
        r.Linked.requires;
      (* Residual constraints: a subset of the base's — no new obligation
         on the linker. *)
      List.iter
        (fun c ->
          if not (List.mem c base.Linked.constraints) then
            reject "replacement adds a residual constraint the base does not have")
        r.Linked.constraints;
      (* Flow: at or below the base's. *)
      (match (r.Linked.sflow, base.Linked.sflow) with
      | Linked.F_nil, _ -> ()
      | Linked.F_sym { base = b; over = [] }, Linked.F_nil -> (
        match resolve "replacement flow" b with
        | Some c when lattice.Lattice.equal c lattice.Lattice.bottom -> ()
        | Some _ -> reject "replacement produces a global flow where the base has none"
        | None -> ())
      | Linked.F_sym _, Linked.F_nil ->
        reject "replacement produces a global flow where the base has none"
      | Linked.F_sym { base = rb; over = ro }, Linked.F_sym { base = bb; over = bo } ->
        (match (resolve "replacement flow" rb, resolve "base flow" bb) with
        | Some rc, Some bc ->
          if not (lattice.Lattice.leq rc bc) then
            reject "replacement's flow base %s is above the base module's %s" rb bb
        | _ -> ());
        if not (subset ro bo) then
          reject "replacement's flow mentions an import the base's does not");
      (* Mod: at or above the base's. *)
      (match
         ( lattice.Lattice.of_string base.Linked.smod.Linked.floor,
           lattice.Lattice.of_string r.Linked.smod.Linked.floor )
       with
      | Ok bf, Ok rf ->
        if not (lattice.Lattice.leq bf rf) then
          reject "replacement's mod floor %s is below the base module's %s"
            r.Linked.smod.Linked.floor base.Linked.smod.Linked.floor
      | _ -> ignore (resolve "replacement mod" r.Linked.smod.Linked.floor));
      if not (subset r.Linked.smod.Linked.under base.Linked.smod.Linked.under) then
        reject "replacement's mod meets in an import the base's does not";
      (* Obligations: within the base's synchronization surface. *)
      let within what xs ys = if not (subset xs ys) then reject "replacement %s" what in
      within "sends on a channel the base does not" r.Linked.sends base.Linked.sends;
      within "receives on a channel the base does not" r.Linked.recvs base.Linked.recvs;
      within "waits on a semaphore the base does not" r.Linked.waits base.Linked.waits;
      within "signals a semaphore the base does not" r.Linked.signals base.Linked.signals;
      { ok = !reasons = []; reasons = List.rev !reasons })
    (Summary.summarize ~lattice ?default replacement)

let check_against ~lattice ?default ~(base : Ast.module_unit) replacement =
  Result.bind (Summary.summarize ~lattice ?default base) (fun bs ->
      check ~lattice ?default ~iface:base.Ast.iface ~base:bs replacement)
