(* Summary-based linking. certify evaluates summaries under the linked
   binding; emit packages the verdict as an ifc-cert 2 certificate. The
   flow verdict must coincide exactly with whole-program CFM on the
   elaboration — the round-trip tests byte-compare the two. *)

module Lattice = Ifc_lattice.Lattice
module Extended = Ifc_lattice.Extended
module Ast = Ifc_lang.Ast
module Wellformed = Ifc_lang.Wellformed
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Cert = Ifc_cert.Cert
module Linked = Ifc_cert.Linked
module Invariance = Ifc_logic_gen.Invariance
module Store = Ifc_store.Store
module Sset = Ifc_support.Sset

type outcome = {
  ok : bool;
  cert_ok : bool;
  iface_ok : bool;
  issues : string list;
  summaries : Linked.summary list;
  computed : int;
  reused : int;
}

let elaborate (l : Ast.linked) =
  let module_decls = List.concat_map (fun (m : Ast.module_unit) -> m.Ast.m_decls) l.modules in
  let main_decls, main_bodies =
    match l.main with None -> ([], []) | Some p -> (p.Ast.decls, [ p.Ast.body ])
  in
  let bodies =
    List.map (fun (m : Ast.module_unit) -> m.Ast.m_body) l.modules @ main_bodies
  in
  { Ast.decls = module_decls @ main_decls; body = Ast.seq bodies }

let binding ~lattice ?default l = Binding.of_program lattice ?default (elaborate l)

let render_constr = function
  | Linked.Upper (y, k) -> Printf.sprintf "cls(%s) <= const(%s)" y k
  | Linked.Lower (k, y) -> Printf.sprintf "const(%s) <= cls(%s)" k y
  | Linked.Rel (y, z) -> Printf.sprintf "cls(%s) <= cls(%s)" y z

(* Resolve each module to a summary, store-backed when possible. *)
let summaries ?store ~lattice ?default (l : Ast.linked) =
  let computed = ref 0 and reused = ref 0 in
  let rec go acc = function
    | [] -> Ok (List.rev acc, !computed, !reused)
    | (m : Ast.module_unit) :: rest -> (
      let key = Summary.key ~lattice ?default m in
      match Option.bind store (fun st -> Summary.of_store st ~key) with
      | Some s ->
        incr reused;
        go (s :: acc) rest
      | None -> (
        match Summary.summarize ~lattice ?default m with
        | Error e -> Error (Printf.sprintf "module %s: %s" m.Ast.iface.Ast.m_name e)
        | Ok s ->
          incr computed;
          Option.iter (fun st -> Summary.to_store st ~key s) store;
          go (s :: acc) rest))
  in
  go [] l.Ast.modules

let certify ?store ~lattice ?default (l : Ast.linked) =
  match Wellformed.linked_errors l with
  | { Wellformed.message; _ } :: _ -> Error ("ill-formed linked unit: " ^ message)
  | [] -> (
    match binding ~lattice ?default l with
    | Error e -> Error e
    | Ok bind -> (
      match summaries ?store ~lattice ?default l with
      | Error e -> Error e
      | Ok (sums, computed, reused) ->
        let issues = ref [] in
        let cert_ok = ref true and iface_ok = ref true in
        let flow_issue fmt =
          Printf.ksprintf
            (fun s ->
              cert_ok := false;
              issues := s :: !issues)
            fmt
        in
        let iface_issue fmt =
          Printf.ksprintf
            (fun s ->
              iface_ok := false;
              issues := s :: !issues)
            fmt
        in
        let cls y = Some (lattice.Lattice.to_string (Binding.sbind bind y)) in
        (* Per-summary verdicts: discharged locals, residual constraints
           under the linked binding, interface conformance. *)
        List.iter
          (fun (s : Linked.summary) ->
            if not s.Linked.locals_ok then
              flow_issue "module %s: an import-free internal check fails" s.Linked.m_name;
            List.iter
              (fun c ->
                match Summary.eval_constr ~lattice ~cls c with
                | Some true -> ()
                | Some false ->
                  flow_issue "module %s: residual constraint %s does not hold"
                    s.Linked.m_name (render_constr c)
                | None ->
                  flow_issue "module %s: residual constraint %s does not resolve"
                    s.Linked.m_name (render_constr c))
              s.Linked.constraints;
            if not s.Linked.exports_ok then
              iface_issue "module %s: an export class exceeds its provides bound"
                s.Linked.m_name;
            List.iter
              (fun (y, bound) ->
                match lattice.Lattice.of_string bound with
                | Error _ ->
                  iface_issue "module %s: unknown class %s in requires bound"
                    s.Linked.m_name bound
                | Ok b ->
                  if not (lattice.Lattice.leq b (Binding.sbind bind y)) then
                    iface_issue
                      "module %s: import %s links below its required bound %s"
                      s.Linked.m_name y bound)
              s.Linked.requires)
          sums;
        (* The link step: top-level sequential composition over the
           summaries' symbolic mod/flow; main — the link's own body — is
           walked directly. Mirrors CFM's Seq rule, i = 0 skipped. *)
        let items =
          List.map
            (fun (s : Linked.summary) ->
              ( s.Linked.m_name,
                Summary.resolve_smod ~lattice ~cls s.Linked.smod,
                Summary.resolve_sflow ~lattice ~cls s.Linked.sflow ))
            sums
          @
          match l.Ast.main with
          | None -> []
          | Some p ->
            let r = Cfm.analyze bind p.Ast.body in
            if not r.Cfm.certified then
              flow_issue "main program fails certification under the linked binding";
            [ ("main", Some r.Cfm.mod_, Some r.Cfm.flow) ]
        in
        let flow_join f1 f2 =
          match (f1, f2) with
          | Extended.Nil, f | f, Extended.Nil -> f
          | Extended.El a, Extended.El b -> Extended.El (lattice.Lattice.join a b)
        in
        let _ =
          List.fold_left
            (fun (i, prefix) (name, mod_, flow) ->
              (match (mod_, prefix) with
              | None, _ ->
                flow_issue "module %s: summary mod does not resolve" name
              | Some m, Extended.El f when i > 0 ->
                if not (lattice.Lattice.leq f m) then
                  flow_issue
                    "link %d: prefix flow does not settle below mod of %s" i name
              | Some _, _ -> ());
              let prefix =
                match flow with
                | Some f -> flow_join prefix f
                | None ->
                  flow_issue "module %s: summary flow does not resolve" name;
                  prefix
              in
              (i + 1, prefix))
            (0, Extended.Nil) items
        in
        Ok
          {
            ok = !cert_ok && !iface_ok;
            cert_ok = !cert_ok;
            iface_ok = !iface_ok;
            issues = List.rev !issues;
            summaries = sums;
            computed;
            reused;
          }))

let emit ?store ?(with_components = true) ~lattice ?default (l : Ast.linked) =
  Result.bind (certify ?store ~lattice ?default l) (fun outcome ->
      if not outcome.ok then
        Error
          ("linked unit does not certify: "
          ^ String.concat "; " (if outcome.issues = [] then [ "?" ] else outcome.issues))
      else
        Result.bind (binding ~lattice ?default l) (fun bind ->
            let to_s = lattice.Lattice.to_string in
            let binds =
              Sset.elements (Linked.bind_domain l)
              |> List.map (fun v -> (v, to_s (Binding.sbind bind v)))
            in
            (* Component certificates: a version-1 proof of each module's
               import-closed body, when one exists (a module may certify
               only in its linked context — then the summary stands alone
               and its cert field stays "-"). *)
            let components, summaries =
              if not with_components then ([], outcome.summaries)
              else
                List.fold_left2
                  (fun (comps, sums) (m : Ast.module_unit) (s : Linked.summary) ->
                    let keep () = (comps, s :: sums) in
                    let cp = Linked.closed_program m in
                    match Binding.of_program lattice ?default cp with
                    | Error _ -> keep ()
                    | Ok cb ->
                      if not (Cfm.certified cb cp.Ast.body) then keep ()
                      else (
                        match Invariance.witness cb cp.Ast.body with
                        | Error _ -> keep ()
                        | Ok proof ->
                          let text =
                            Cert.to_string (Cert.of_proof ~binding:cb ~program:cp proof)
                          in
                          let digest = Digest.to_hex (Digest.string text) in
                          ( (s.Linked.m_name, text) :: comps,
                            { s with Linked.cert_digest = Some digest } :: sums )))
                  ([], []) l.Ast.modules outcome.summaries
                |> fun (comps, sums) -> (List.rev comps, List.rev sums)
            in
            let main_cert =
              match Linked.main_program ~binds l with
              | None -> Ok None
              | Some mp -> (
                match Invariance.witness bind mp.Ast.body with
                | Ok proof -> Ok (Some (Cert.of_proof ~binding:bind ~program:mp proof))
                | Error _ -> Error "main program admits no invariant proof")
            in
            Result.bind main_cert (fun main_cert ->
                let cert =
                  {
                    Linked.linked_digest = Linked.linked_digest l;
                    lattice;
                    binds;
                    summaries;
                    main_cert;
                  }
                in
                let text = Linked.to_string cert in
                (* Self-check before handing the certificate out. *)
                match Linked.parse text with
                | Error e ->
                  Error
                    (Printf.sprintf "emitted certificate does not parse (line %d: %s)"
                       e.Cert.line e.Cert.reason)
                | Ok parsed -> (
                  match
                    Linked.check ~components:(List.map snd components) parsed l
                  with
                  | Ok () -> Ok (text, components)
                  | Error fs ->
                    let show (f : Linked.failure) =
                      Printf.sprintf "%s: %s: %s" f.Linked.path f.Linked.rule
                        f.Linked.reason
                    in
                    Error
                      ("emitted certificate fails self-check: "
                      ^ String.concat "; " (List.map show fs))))))

(* A digest-cached pipeline analysis for a linked unit. The closure
   ignores the spec's binding/program (the elaboration — equal inputs by
   construction) and re-derives everything from the unit; the cache key
   carries the linked digest, which also covers the interface bounds the
   elaboration does not record. *)
let job_analysis ?store ~lattice ?default (l : Ast.linked) =
  Ifc_pipeline.Job.Link
    ( Linked.linked_digest l,
      fun _binding _program ->
        match certify ?store ~lattice ?default l with
        | Error _ -> (false, 0, None)
        | Ok o ->
          let checks =
            List.fold_left
              (fun acc (s : Linked.summary) ->
                acc + 1 + List.length s.Linked.constraints)
              0 o.summaries
          in
          if not o.ok then (false, checks, None)
          else (
            match emit ?store ~lattice ?default l with
            | Ok (text, _) -> (true, checks, Some text)
            | Error _ -> (false, checks, None)) )
