(** Per-module flow summaries: the symbolic walk behind compositional
    certification.

    [summarize] runs the Figure 2 traversal over a module body with the
    module's imports held {e symbolic}: a class is the join of a concrete
    part with the (unknown) classes of the imports it mentions, a [mod]
    the meet of a concrete floor with import classes. Every certification
    check the walk would perform decomposes into atomic comparisons —
    [join(a, b) <= X] iff [a <= X] and [b <= X]; [A <= meet(B, C)] iff
    [A <= B] and [A <= C] — so each check either discharges now (both
    sides concrete: folded into [locals_ok]) or leaves a residual atomic
    constraint over import classes ({!Ifc_cert.Linked.constr}). Link-time
    evaluation therefore costs the number of {e distinct} atoms — bounded
    by interface size and lattice size, never by module body size.

    The walk mirrors [Ifc_core.Cfm.traverse] case for case (the same
    discipline as the incremental certifier's [combine]); the equivalence
    "summary resolved under a linked binding = direct CFM on the body" is
    under test on random modules. Summaries are persisted through the
    store's summary seam ({!Ifc_store.Store.add_summary}), keyed by
    {!key} — the module's structural digest plus the classification
    context. *)

module Lattice := Ifc_lattice.Lattice
module Linked := Ifc_cert.Linked
module Store := Ifc_store.Store

val summarize :
  lattice:string Lattice.t ->
  ?default:string ->
  Ifc_lang.Ast.module_unit ->
  (Linked.summary, string) result
(** [summarize ~lattice m] computes [m]'s summary. [?default] is the
    class of undeclared locals (the lattice bottom when omitted), and
    must match the default used for the linked binding later. [Error]
    reports an unresolvable class name in a declaration or interface
    bound. The summary's [cert_digest] is [None]; {!Link.emit} fills it
    when a component certificate is emitted. *)

val key :
  lattice:string Lattice.t -> ?default:string -> Ifc_lang.Ast.module_unit -> string
(** The store digest for [m]'s summary: MD5 over the module's structural
    digest and the context (lattice name, elements, default class). Two
    sessions with equal contexts share summaries; any difference changes
    every key. *)

val of_store : Store.t -> key:string -> Linked.summary option
(** Look a summary up through the store's summary seam (checksummed,
    quarantined on damage — see {!Ifc_store.Store.find_summary}). *)

val to_store : Store.t -> key:string -> Linked.summary -> unit

val resolve_smod :
  lattice:string Lattice.t ->
  cls:(string -> string option) ->
  Linked.smod ->
  string option
(** Evaluate a symbolic [mod] under a concrete class assignment for
    imports; [None] if an import is unbound. *)

val resolve_sflow :
  lattice:string Lattice.t ->
  cls:(string -> string option) ->
  Linked.sflow ->
  string Ifc_lattice.Extended.elt option

val eval_constr :
  lattice:string Lattice.t ->
  cls:(string -> string option) ->
  Linked.constr ->
  bool option
(** Evaluate one residual constraint; [None] if a mentioned name is
    unbound or a constant does not parse. *)
