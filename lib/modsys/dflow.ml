(* Dataflow facts persisted through the store's summary seam. *)

module Ast = Ifc_lang.Ast
module Store = Ifc_store.Store
module Linked = Ifc_cert.Linked
module Dsummary = Ifc_dataflow.Dsummary

let key m =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" [ "ifc-dataflow 1"; Linked.module_digest m ]))

let of_store store ~key =
  match Store.find_summary store ~digest:key with
  | None -> None
  | Some s -> (
    match Dsummary.parse s.Store.s_mod with
    | Ok facts -> Some facts
    | Error _ -> None)

let to_store store ~key facts =
  Store.add_summary store ~digest:key
    { Store.s_mod = Dsummary.render facts; s_flow = None; s_cert = true }

type outcome = { facts : Dsummary.t; computed : int; reused : int }

let linked ?store (l : Ast.linked) =
  let computed = ref 0 and reused = ref 0 in
  let module_facts m =
    let k = key m in
    let cached = Option.bind store (fun st -> of_store st ~key:k) in
    match cached with
    | Some facts ->
      incr reused;
      facts
    | None ->
      let facts = Dsummary.of_program (Ast.module_program m) in
      incr computed;
      Option.iter (fun st -> to_store st ~key:k facts) store;
      facts
  in
  let per_module = List.map module_facts l.Ast.modules in
  let main_facts =
    match l.Ast.main with
    | Some p -> [ Dsummary.of_program p ]
    | None -> []
  in
  { facts = Dsummary.concat (per_module @ main_facts); computed = !computed; reused = !reused }
