(* The symbolic Figure 2 walk. Each case mirrors Cfm.traverse exactly;
   the only difference is the domain: classes carry an import part. *)

module Lattice = Ifc_lattice.Lattice
module Extended = Ifc_lattice.Extended
module Ast = Ifc_lang.Ast
module Binding = Ifc_core.Binding
module Linked = Ifc_cert.Linked
module Store = Ifc_store.Store
module Sset = Ifc_support.Sset

(* Join-form symbolic class: base ⊕ ⊕_{y ∈ over} cls(y). *)
type sym = { base : string; over : Sset.t }

(* Meet-form symbolic mod: floor ⊗ ⊗_{y ∈ under} cls(y). *)
type symod = { floor : string; under : Sset.t }

type syflow = F_nil | F_el of sym

type walk_state = {
  lat : string Lattice.t;
  bind : string Binding.t;
  imports : Sset.t;
  mutable constraints : Linked.constr list;
  mutable locals_ok : bool;
  mutable sends : Sset.t;
  mutable recvs : Sset.t;
  mutable waits : Sset.t;
  mutable signals : Sset.t;
}

let sym_const _st c = { base = c; over = Sset.empty }

let sym_join st a b = { base = st.lat.Lattice.join a.base b.base; over = Sset.union a.over b.over }

let sym_of_name st x =
  if Sset.mem x st.imports then { base = st.lat.Lattice.bottom; over = Sset.singleton x }
  else sym_const st (Binding.sbind st.bind x)

let rec sym_of_expr st = function
  | Ast.Int _ | Ast.Bool _ -> sym_const st st.lat.Lattice.bottom
  | Ast.Var x -> sym_of_name st x
  | Ast.Index (a, i) -> sym_join st (sym_of_name st a) (sym_of_expr st i)
  | Ast.Unop (_, e) -> sym_of_expr st e
  | Ast.Binop (_, e1, e2) -> sym_join st (sym_of_expr st e1) (sym_of_expr st e2)

let mod_of_name st x =
  if Sset.mem x st.imports then { floor = st.lat.Lattice.top; under = Sset.singleton x }
  else { floor = Binding.sbind st.bind x; under = Sset.empty }

let mod_meet st a b =
  { floor = st.lat.Lattice.meet a.floor b.floor; under = Sset.union a.under b.under }

let mod_top st = { floor = st.lat.Lattice.top; under = Sset.empty }

let flow_join st f1 f2 =
  match (f1, f2) with
  | F_nil, f | f, F_nil -> f
  | F_el a, F_el b -> F_el (sym_join st a b)

(* Decompose a symbolic check [flow <= mod] into atoms. Concrete/concrete
   atoms discharge now into [locals_ok]; anything touching an import
   becomes a residual constraint. Trivial atoms — a bottom on the left, a
   top on the right, cls(y) <= cls(y) — are dropped, which is what keeps
   the residue bounded by the interface, not the body. *)
let record st lhs rhs =
  match lhs with
  | F_nil -> ()
  | F_el { base; over } ->
    let l = st.lat in
    let lhs_atoms =
      (if l.Lattice.equal base l.Lattice.bottom then [] else [ `Const base ])
      @ List.map (fun y -> `Cls y) (Sset.elements over)
    in
    let rhs_atoms =
      (if l.Lattice.equal rhs.floor l.Lattice.top then [] else [ `Const rhs.floor ])
      @ List.map (fun z -> `Cls z) (Sset.elements rhs.under)
    in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            match (a, b) with
            | `Const k1, `Const k2 ->
              if not (l.Lattice.leq k1 k2) then st.locals_ok <- false
            | `Cls y, `Const k ->
              st.constraints <- Linked.Upper (y, l.Lattice.to_string k) :: st.constraints
            | `Const k, `Cls z ->
              st.constraints <- Linked.Lower (l.Lattice.to_string k, z) :: st.constraints
            | `Cls y, `Cls z ->
              if not (String.equal y z) then
                st.constraints <- Linked.Rel (y, z) :: st.constraints)
          rhs_atoms)
      lhs_atoms

(* The traversal. Returns (mod, flow); checks and obligations accumulate
   in the state. self_check is pinned to false — the default reading, and
   the one Link and the whole-program comparison use. *)
let rec go st (s : Ast.stmt) =
  let l = st.lat in
  match s.node with
  | Ast.Skip -> (mod_top st, F_nil)
  | Ast.Assign (x, e) ->
    let target = mod_of_name st x in
    record st (F_el (sym_of_expr st e)) target;
    (target, F_nil)
  | Ast.Declassify (x, _, cls) ->
    let target = mod_of_name st x in
    let source =
      match l.Lattice.of_string cls with Ok c -> c | Error _ -> l.Lattice.top
    in
    record st (F_el (sym_const st source)) target;
    (target, F_nil)
  | Ast.Store (a, i, e) ->
    let target = mod_of_name st a in
    let source = sym_join st (sym_of_expr st i) (sym_of_expr st e) in
    record st (F_el source) target;
    (target, F_nil)
  | Ast.Wait sem ->
    st.waits <- Sset.add sem st.waits;
    (mod_of_name st sem, F_el (sym_of_name st sem))
  | Ast.Signal sem ->
    st.signals <- Sset.add sem st.signals;
    (mod_of_name st sem, F_nil)
  | Ast.Send (chan, e) ->
    st.sends <- Sset.add chan st.sends;
    let c = mod_of_name st chan in
    record st (F_el (sym_of_expr st e)) c;
    (c, F_nil)
  | Ast.Recv (chan, x) ->
    st.recvs <- Sset.add chan st.recvs;
    let target = mod_of_name st x in
    record st (F_el (sym_of_name st chan)) target;
    (mod_meet st (mod_of_name st chan) target, F_el (sym_of_name st chan))
  | Ast.If (cond, then_, else_) ->
    let m1, f1 = go st then_ in
    let m2, f2 = go st else_ in
    let e_sym = sym_of_expr st cond in
    let mod_ = mod_meet st m1 m2 in
    let flow =
      match flow_join st f1 f2 with
      | F_nil -> F_nil
      | F_el f -> F_el (sym_join st f e_sym)
    in
    record st (F_el e_sym) mod_;
    (mod_, flow)
  | Ast.While (cond, body) ->
    let m1, f1 = go st body in
    let e_sym = sym_of_expr st cond in
    let flow =
      F_el
        (match f1 with
        | F_nil -> e_sym
        | F_el f -> sym_join st f e_sym)
    in
    record st flow m1;
    (m1, flow)
  | Ast.Seq stmts ->
    let results = List.map (fun s' -> go st s') stmts in
    let mod_ = List.fold_left (fun acc (m, _) -> mod_meet st acc m) (mod_top st) results in
    let flow = List.fold_left (fun acc (_, f) -> flow_join st acc f) F_nil results in
    let _ =
      List.fold_left
        (fun (i, prefix) (mi, fi) ->
          if i > 0 then record st prefix mi;
          (i + 1, flow_join st prefix fi))
        (0, F_nil) results
    in
    (mod_, flow)
  | Ast.Cobegin branches ->
    let results = List.map (fun s' -> go st s') branches in
    let mod_ = List.fold_left (fun acc (m, _) -> mod_meet st acc m) (mod_top st) results in
    let flow = List.fold_left (fun acc (_, f) -> flow_join st acc f) F_nil results in
    (mod_, flow)

let summarize ~lattice ?default (m : Ast.module_unit) =
  let resolve what cls =
    match lattice.Lattice.of_string cls with
    | Ok c -> Ok c
    | Error _ -> Error (Printf.sprintf "unknown class %s in %s" cls what)
  in
  let rec resolve_entries what = function
    | [] -> Ok []
    | (e : Ast.iface_entry) :: rest ->
      Result.bind (resolve what e.iv_class) (fun c ->
          Result.map (fun tail -> (e.iv_name, c) :: tail) (resolve_entries what rest))
  in
  Result.bind
    (Result.map_error
       (fun _ -> "unresolvable class annotation in module declarations")
       (Binding.of_program lattice ?default (Ast.module_program m)))
    (fun bind ->
      Result.bind (resolve_entries "provides" m.iface.provides) (fun provides ->
          Result.bind (resolve_entries "requires" m.iface.requires) (fun requires ->
              let st =
                {
                  lat = lattice;
                  bind;
                  imports = Sset.of_list (List.map fst requires);
                  constraints = [];
                  locals_ok = true;
                  sends = Sset.empty;
                  recvs = Sset.empty;
                  waits = Sset.empty;
                  signals = Sset.empty;
                }
              in
              let mod_, flow = go st m.m_body in
              let to_s = lattice.Lattice.to_string in
              let exports =
                List.map (fun (x, _) -> (x, to_s (Binding.sbind bind x))) provides
              in
              let exports_ok =
                List.for_all
                  (fun (x, bound) -> lattice.Lattice.leq (Binding.sbind bind x) bound)
                  provides
              in
              Ok
                {
                  Linked.m_name = m.iface.m_name;
                  body_digest = Linked.module_digest m;
                  cert_digest = None;
                  provides =
                    List.map (fun (x, c) -> (x, to_s c)) provides;
                  requires =
                    List.map (fun (y, c) -> (y, to_s c)) requires;
                  exports;
                  smod = { Linked.floor = to_s mod_.floor; under = Sset.elements mod_.under };
                  sflow =
                    (match flow with
                    | F_nil -> Linked.F_nil
                    | F_el { base; over } ->
                      Linked.F_sym { base = to_s base; over = Sset.elements over });
                  constraints = st.constraints;
                  sends = Sset.elements st.sends;
                  recvs = Sset.elements st.recvs;
                  waits = Sset.elements st.waits;
                  signals = Sset.elements st.signals;
                  locals_ok = st.locals_ok;
                  exports_ok;
                })))

(* ------------------------------------------------------------------ *)
(* Store persistence *)

let key ~lattice ?default m =
  let default_s =
    lattice.Lattice.to_string (Option.value default ~default:lattice.Lattice.bottom)
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            "ifc-modsys 1";
            Linked.module_digest m;
            lattice.Lattice.name;
            String.concat ","
              (List.map lattice.Lattice.to_string lattice.Lattice.elements);
            default_s;
          ]))

let of_store store ~key =
  match Store.find_summary store ~digest:key with
  | None -> None
  | Some s -> (
    match Linked.summary_of_line s.Store.s_mod with
    | Ok summary when summary.Linked.locals_ok = s.Store.s_cert -> Some summary
    | Ok _ | Error _ -> None)

let to_store store ~key (s : Linked.summary) =
  Store.add_summary store ~digest:key
    { Store.s_mod = Linked.summary_to_line s; s_flow = None; s_cert = s.Linked.locals_ok }

(* ------------------------------------------------------------------ *)
(* Resolution under a concrete class assignment *)

let resolve_smod ~lattice ~cls (m : Linked.smod) =
  let parts =
    (match lattice.Lattice.of_string m.Linked.floor with
    | Ok v -> Some v
    | Error _ -> None)
    :: List.map
         (fun y ->
           Option.bind (cls y) (fun s ->
               match lattice.Lattice.of_string s with Ok v -> Some v | Error _ -> None))
         m.Linked.under
  in
  if List.exists Option.is_none parts then None
  else Some (Lattice.meets lattice (List.filter_map Fun.id parts))

let resolve_sflow ~lattice ~cls = function
  | Linked.F_nil -> Some Extended.Nil
  | Linked.F_sym { base; over } ->
    let parts =
      (match lattice.Lattice.of_string base with Ok v -> Some v | Error _ -> None)
      :: List.map
           (fun y ->
             Option.bind (cls y) (fun s ->
                 match lattice.Lattice.of_string s with
                 | Ok v -> Some v
                 | Error _ -> None))
           over
    in
    if List.exists Option.is_none parts then None
    else Some (Extended.El (Lattice.joins lattice (List.filter_map Fun.id parts)))

let eval_constr ~lattice ~cls constr =
  let resolve s =
    match lattice.Lattice.of_string s with Ok v -> Some v | Error _ -> None
  in
  let of_name y = Option.bind (cls y) resolve in
  match constr with
  | Linked.Upper (y, k) -> (
    match (of_name y, resolve k) with
    | Some cy, Some kv -> Some (lattice.Lattice.leq cy kv)
    | _ -> None)
  | Linked.Lower (k, y) -> (
    match (of_name y, resolve k) with
    | Some cy, Some kv -> Some (lattice.Lattice.leq kv cy)
    | _ -> None)
  | Linked.Rel (y, z) -> (
    match (of_name y, of_name z) with
    | Some cy, Some cz -> Some (lattice.Lattice.leq cy cz)
    | _ -> None)
