(** Security-preserving refinement: may a replacement module stand in
    for whatever currently implements an interface?

    [check] compares the replacement's summary against the interface and
    against the summary of the module it replaces, and accepts only when
    every certified link stays certified after the swap — the summary
    comparison is monotone in each quantity CFM consumes:

    - constraints: a subset of the base's (no new residual obligation on
      the linker);
    - flow: at or below the base's symbolic flow (never a new global
      flow);
    - mod: at or above the base's symbolic mod (never a weaker
      composition target);
    - obligations: channel endpoints and wait/signal sets within the
      base's (no new synchronization surface);
    - interface: every provided name exported at or below its bound,
      requires a subset of the interface's at equal-or-lower bounds.

    A replacement passing [check] therefore satisfies {e refinement
    soundness}: [Link.certify] of any unit that certified with the base
    module certifies with the replacement. The [refine-unsound] fuzzing
    inversion hunts for violations of exactly this implication. *)

module Lattice := Ifc_lattice.Lattice

type report = {
  ok : bool;
  reasons : string list;  (** Why the refinement was rejected; empty iff [ok]. *)
}

val check :
  lattice:string Lattice.t ->
  ?default:string ->
  iface:Ifc_lang.Ast.iface ->
  base:Ifc_cert.Linked.summary ->
  Ifc_lang.Ast.module_unit ->
  (report, string) result
(** [check ~iface ~base replacement]: is [replacement] a sound stand-in
    for the module summarized by [base] behind [iface]? [Error] reports a
    structural problem (unresolvable class names in the replacement). *)

val check_against :
  lattice:string Lattice.t ->
  ?default:string ->
  base:Ifc_lang.Ast.module_unit ->
  Ifc_lang.Ast.module_unit ->
  (report, string) result
(** [check_against ~base replacement] summarizes [base] itself and uses
    its interface: the common "swap one module of a unit" case. *)
