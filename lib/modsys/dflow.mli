(** Dataflow summaries through the store seam.

    The dataflow facts of a module ([Ifc_dataflow.Dsummary]) depend
    only on the module body — the interval analysis assumes nothing
    about entry values, so the facts hold in any linking context. They
    are therefore cached like certification summaries: keyed by the
    module's structural digest (no lattice in the key — pruning is
    classification-free), checksummed and quarantined by the store's
    summary seam.

    [linked] is the lint-side analogue of {!Link.certify}: every
    module's facts resolve from the store (or are computed once and
    persisted), only the main program is analyzed fresh, and the
    concatenated facts re-apply to the elaborated unit via
    {!Ifc_dataflow.Dsummary.apply} — one module edited means one
    summary recomputed. *)

module Ast := Ifc_lang.Ast
module Store := Ifc_store.Store
module Dsummary := Ifc_dataflow.Dsummary

val key : Ast.module_unit -> string

val of_store : Store.t -> key:string -> Dsummary.t option

val to_store : Store.t -> key:string -> Dsummary.t -> unit

type outcome = {
  facts : Dsummary.t;  (** All modules' facts plus main's, concatenated. *)
  computed : int;  (** Module summaries computed this call. *)
  reused : int;  (** Module summaries served from the store. *)
}

val linked : ?store:Store.t -> Ast.linked -> outcome
