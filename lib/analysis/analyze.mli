(** The static concurrency analyzer: one pass over a program combining
    may-happen-in-parallel race detection ({!Mhp}), semaphore liveness
    ({!Semlive}), the channel lint ({!Ifc_chan.Lint} over the channel
    graph, with MHP injected) and guard lints ({!Guards}) into a single
    report.

    Before the structural passes run, the interval dataflow engine
    ({!Ifc_dataflow.Prune}) rewrites statically unreachable branch arms
    to [skip]: a race or deadlock inside an arm no execution reaches is
    not reported, and each pruned arm with a non-constant guard becomes
    an [unreachable] warning (constant guards remain {!Guards}
    findings, byte-for-byte). A backward liveness pass adds
    [dead-store] warnings. Pruning only ever removes findings and
    strengthens claims; the differential fuzzer cross-checks every
    pruned span against bounded exploration ([prune-unsound]).

    The report's {e claims} are the analyzer's positive safety
    statements, phrased so that bounded dynamic exploration can refute
    them: a concrete interleaving with co-enabled conflicting accesses
    refutes [race_free]; a reachable stuck state refutes
    [deadlock_free]; a reachable terminal state refutes [must_block].
    The differential fuzzer cross-checks exactly these (labels
    [race-unsound] / [deadlock-unsound]); see DESIGN.md for why the
    claims as implemented are sound. *)

type claims = {
  race_free : bool;  (** No race findings. *)
  deadlock_free : bool;
      (** No execution can block — on a semaphore {e or} a channel —
          even transiently (semaphore liveness and channel lint both
          agree). *)
  must_block : bool;
      (** No execution terminates: a guaranteed block through either
          semaphores or channels. *)
  chan_race_free : bool;
      (** No same-endpoint channel contention findings
          ({!Ifc_chan.Lint}). *)
  chan_deadlock_free : bool;
      (** The channel-only component of [deadlock_free]: no execution
          can block on a channel, even transiently. *)
}

type stats = {
  statements : int;  (** Statement nodes analyzed. *)
  accesses : int;  (** Data access points considered. *)
  pairs : int;  (** May-happen-in-parallel access pairs examined. *)
}

type report = {
  findings : Finding.t list;  (** Sorted with {!Finding.compare}. *)
  claims : claims;
  stats : stats;
  channels : Ifc_chan.Lint.summary list;
      (** Per-channel summary records, in declaration order. *)
  pruned : Ifc_dataflow.Prune.pruned list;
      (** Arms rewritten to [skip] before the structural passes. *)
}

val run :
  ?dataflow:bool ->
  ?prune:Ifc_dataflow.Prune.result ->
  Ifc_lang.Ast.program ->
  report
(** [run p] analyzes [p]. [~dataflow:false] disables pruning and the
    dataflow lints (the pre-engine behaviour, kept for differential
    testing); [?prune] supplies a pre-computed pruning result — the
    summary path for linked units — instead of running the engine. *)

val pp_report : Format.formatter -> report -> unit
(** One line per finding ({!Finding.pp}); nothing for a clean report. *)
