(* Diagnostics of the static concurrency analyzer. *)

module Loc = Ifc_lang.Loc

type kind =
  | Race
  | Deadlock
  | Chan_deadlock
  | Chan_race
  | Orphan_message
  | Lost_signal
  | Imbalance
  | Guard
  | Unreachable
  | Dead_store

type severity = Error | Warning

type t = {
  kind : kind;
  severity : severity;
  span : Loc.span;
  related : Loc.span option;
  message : string;
}

let kind_name = function
  | Race -> "race"
  | Deadlock -> "deadlock"
  | Chan_deadlock -> "chan-deadlock"
  | Chan_race -> "chan-race"
  | Orphan_message -> "orphan-message"
  | Lost_signal -> "lost-signal"
  | Imbalance -> "imbalance"
  | Guard -> "guard"
  | Unreachable -> "unreachable"
  | Dead_store -> "dead-store"

let severity_name = function Error -> "error" | Warning -> "warning"

let make ?related kind severity span message =
  { kind; severity; span; related; message }

let severity_rank = function Error -> 0 | Warning -> 1

let kind_rank = function
  | Deadlock -> 0
  | Chan_deadlock -> 1
  | Race -> 2
  | Chan_race -> 3
  | Lost_signal -> 4
  | Orphan_message -> 5
  | Imbalance -> 6
  | Guard -> 7
  | Unreachable -> 8
  | Dead_store -> 9

let pos_key (s : Loc.span) = (s.Loc.start.Loc.line, s.Loc.start.Loc.col)

let compare a b =
  let c = Stdlib.compare (pos_key a.span) (pos_key b.span) in
  if c <> 0 then c
  else
    let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
    if c <> 0 then c
    else
      let c = Stdlib.compare (kind_rank a.kind) (kind_rank b.kind) in
      if c <> 0 then c else String.compare a.message b.message

let pp ppf t =
  Fmt.pf ppf "%a: %s[%s]: %s" Loc.pp t.span (severity_name t.severity)
    (kind_name t.kind) t.message;
  match t.related with
  | Some span when not (Loc.is_dummy span) -> Fmt.pf ppf " (see %a)" Loc.pp span
  | _ -> ()
