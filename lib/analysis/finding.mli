(** Findings of the static concurrency analyzer.

    One finding is one user-facing diagnostic with a source span: a
    possible data race, a statically guaranteed deadlock, a signal that
    can never be consumed, a wait/signal imbalance between control-flow
    arms (the paper's "conditional delay" channel, Figure 3), or a
    trivial guard. Findings are what [ifc lint] prints and what rides the
    pipeline cache as a job artifact. *)

type kind =
  | Race  (** Conflicting accesses at may-happen-in-parallel points. *)
  | Deadlock  (** A [wait] whose semaphore can never cover it. *)
  | Chan_deadlock
      (** A [recv] that can never be fed, or channel counting proves
          every execution blocks ({!Ifc_chan.Lint}). *)
  | Chan_race
      (** Two parallel sends (or recvs) on one channel: message order
          depends on the schedule. *)
  | Orphan_message  (** A sent message no recv can ever consume. *)
  | Lost_signal  (** Signals that no execution can ever consume. *)
  | Imbalance
      (** Control-flow arms with different wait/signal balance — the
          branch taken is observable through synchronization alone. *)
  | Guard  (** A constant [if]/[while] guard. *)
  | Unreachable
      (** A branch arm or loop body no execution can reach, proved by
          the interval analysis over a non-constant guard (constant
          guards stay {!Guard} findings). *)
  | Dead_store
      (** An assignment definitely overwritten before any read. *)

type severity = Error | Warning

type t = {
  kind : kind;
  severity : severity;
  span : Ifc_lang.Loc.span;
  related : Ifc_lang.Loc.span option;
      (** The second endpoint of a race, when there is one. *)
  message : string;
}

val kind_name : kind -> string
(** ["race"], ["deadlock"], ["chan-deadlock"], ["chan-race"],
    ["orphan-message"], ["lost-signal"], ["imbalance"], ["guard"],
    ["unreachable"], ["dead-store"]. *)

val severity_name : severity -> string
(** ["error"] or ["warning"]. *)

val make :
  ?related:Ifc_lang.Loc.span -> kind -> severity -> Ifc_lang.Loc.span ->
  string -> t

val compare : t -> t -> int
(** Source order: by span start, then severity (errors first), then kind
    and message — a stable report order for any input. *)

val pp : Format.formatter -> t -> unit
(** One line: [<span>: <severity>[<kind>]: <message>], reusing
    {!Ifc_lang.Loc.pp} for the span. *)
