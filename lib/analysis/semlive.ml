(* Interval counting of semaphore operations: deadlock, lost signals,
   and wait/signal imbalance between control-flow arms. *)

module Ast = Ifc_lang.Ast
module Loc = Ifc_lang.Loc
module Smap = Ifc_support.Smap

type count = Fin of int | Inf

let add_count a b =
  match (a, b) with Fin x, Fin y -> Fin (x + y) | _ -> Inf

let max_count a b =
  match (a, b) with Fin x, Fin y -> Fin (max x y) | _ -> Inf

let le_count a b =
  match (a, b) with
  | Fin x, Fin y -> x <= y
  | _, Inf -> true
  | Inf, Fin _ -> false

let pp_count ppf = function
  | Fin n -> Fmt.int ppf n
  | Inf -> Fmt.string ppf "unboundedly many"

type usage = {
  wait_min : int;
  wait_max : count;
  signal_min : int;
  signal_max : count;
  first_wait : Loc.span option;
  first_signal : Loc.span option;
}

let zero =
  {
    wait_min = 0;
    wait_max = Fin 0;
    signal_min = 0;
    signal_max = Fin 0;
    first_wait = None;
    first_signal = None;
  }

let first a b = match a with Some _ -> a | None -> b

(* Sequencing (and cobegin: every branch runs to completion) adds. *)
let seq_usage a b =
  {
    wait_min = a.wait_min + b.wait_min;
    wait_max = add_count a.wait_max b.wait_max;
    signal_min = a.signal_min + b.signal_min;
    signal_max = add_count a.signal_max b.signal_max;
    first_wait = first a.first_wait b.first_wait;
    first_signal = first a.first_signal b.first_signal;
  }

(* Alternation: exactly one arm runs, so take the envelope. *)
let alt_usage a b =
  {
    wait_min = min a.wait_min b.wait_min;
    wait_max = max_count a.wait_max b.wait_max;
    signal_min = min a.signal_min b.signal_min;
    signal_max = max_count a.signal_max b.signal_max;
    first_wait = first a.first_wait b.first_wait;
    first_signal = first a.first_signal b.first_signal;
  }

(* Iteration: possibly zero times, possibly unboundedly many. *)
let loop_usage a =
  {
    wait_min = 0;
    wait_max = (if a.wait_max = Fin 0 then Fin 0 else Inf);
    signal_min = 0;
    signal_max = (if a.signal_max = Fin 0 then Fin 0 else Inf);
    first_wait = a.first_wait;
    first_signal = a.first_signal;
  }

let merge_with f a b =
  Smap.merge
    (fun _ l r ->
      match (l, r) with
      | Some u, Some v -> Some (f u v)
      | Some u, None -> Some (f u zero)
      | None, Some v -> Some (f zero v)
      | None, None -> None)
    a b

let rec usages (s : Ast.stmt) =
  match s.Ast.node with
  (* Channel ops are no semaphore usage: their blocking discipline is
     the channel lint's subject ({!Ifc_chan}). *)
  | Ast.Skip | Ast.Assign _ | Ast.Declassify _ | Ast.Store _ | Ast.Send _
  | Ast.Recv _ ->
    Smap.empty
  | Ast.Wait sem ->
    Smap.singleton sem
      { zero with wait_min = 1; wait_max = Fin 1; first_wait = Some s.Ast.span }
  | Ast.Signal sem ->
    Smap.singleton sem
      {
        zero with
        signal_min = 1;
        signal_max = Fin 1;
        first_signal = Some s.Ast.span;
      }
  | Ast.Seq ss | Ast.Cobegin ss ->
    List.fold_left
      (fun acc c -> merge_with seq_usage acc (usages c))
      Smap.empty ss
  | Ast.If (_, a, b) -> merge_with alt_usage (usages a) (usages b)
  | Ast.While (_, b) -> Smap.map loop_usage (usages b)

type result = {
  findings : Finding.t list;
  deadlock_free : bool;
  must_block : bool;
}

(* ------------------------------------------------------------------ *)
(* Imbalance: an if whose arms use a semaphore differently, or a while
   whose body synchronizes at all. The synchronization behaviour then
   depends on the guard — the paper's conditional-delay channel. *)

let balance u = (u.wait_min, u.wait_max, u.signal_min, u.signal_max)

let imbalanced_sems a b =
  let ua = usages a and ub = usages b in
  Smap.merge
    (fun _ l r ->
      let l = Option.value ~default:zero l
      and r = Option.value ~default:zero r in
      if balance l = balance r then None else Some ())
    ua ub
  |> Smap.keys

let stmt_children (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.If (_, a, b) -> [ a; b ]
  | Ast.While (_, b) -> [ b ]
  | Ast.Seq ss | Ast.Cobegin ss -> ss
  | _ -> []

let collect_imbalance body =
  let out = ref [] in
  let emit span fmt = Format.kasprintf (fun m ->
      out := Finding.make Finding.Imbalance Finding.Warning span m :: !out) fmt
  in
  let rec walk (s : Ast.stmt) =
    (match s.Ast.node with
    | Ast.If (_, a, b) -> (
      match imbalanced_sems a b with
      | [] -> ()
      | sems ->
        emit s.Ast.span
          "branches differ in wait/signal balance on %s; the branch taken \
           is observable through the conditional delay of the waiting \
           process"
          (String.concat ", " sems))
    | Ast.While (_, b) -> (
      let syncing =
        Smap.filter
          (fun _ u -> u.wait_max <> Fin 0 || u.signal_max <> Fin 0)
          (usages b)
        |> Smap.keys
      in
      match syncing with
      | [] -> ()
      | sems ->
        emit s.Ast.span
          "loop body synchronizes on %s; the iteration count is observable \
           through the conditional delay of the waiting process"
          (String.concat ", " sems))
    | _ -> ());
    List.iter walk (stmt_children s)
  in
  walk body;
  List.rev !out

(* ------------------------------------------------------------------ *)

let analyze (p : Ast.program) =
  let inits =
    List.fold_left
      (fun acc -> function
        | Ast.Sem_decl { name; init; _ } -> Smap.add name init acc
        | Ast.Var_decl _ | Ast.Arr_decl _ | Ast.Chan_decl _ -> acc)
      Smap.empty p.Ast.decls
  in
  let u = usages p.Ast.body in
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  let deadlock_free = ref true and must_block = ref false in
  Smap.iter
    (fun sem usage ->
      let init = Smap.find_or ~default:0 sem inits in
      let supply_max = add_count (Fin init) usage.signal_max in
      let supply_min = init + usage.signal_min in
      (* deadlock_free: no interleaving can block, even transiently —
         the initial count alone covers the most waits any execution
         performs. *)
      if not (le_count usage.wait_max (Fin init)) then deadlock_free := false;
      (* Guaranteed deadlock: the fewest waits any execution performs
         already exceed the most units it could ever be supplied. *)
      if not (le_count (Fin usage.wait_min) supply_max) then begin
        must_block := true;
        let span =
          Option.value ~default:Loc.dummy usage.first_wait
        in
        emit
          (Finding.make ?related:usage.first_signal Finding.Deadlock
             Finding.Error span
             (Format.asprintf
                "every execution performs at least %d wait(%s) but at most \
                 %a unit%s can ever be supplied (initially %d); some wait \
                 blocks forever"
                usage.wait_min sem pp_count supply_max
                (match supply_max with Fin 1 -> "" | _ -> "s")
                init))
      end
      (* Lost signals: units that no execution can ever consume. *)
      else if not (le_count (Fin supply_min) usage.wait_max) then begin
        let span =
          Option.value
            ~default:(Option.value ~default:Loc.dummy usage.first_wait)
            usage.first_signal
        in
        emit
          (Finding.make ?related:usage.first_wait Finding.Lost_signal
             Finding.Warning span
             (Format.asprintf
                "every execution supplies at least %d unit%s of %s \
                 (initially %d) but performs at most %a wait%s; leftover \
                 units are never consumed"
                supply_min
                (if supply_min = 1 then "" else "s")
                sem init pp_count usage.wait_max
                (match usage.wait_max with Fin 1 -> "" | _ -> "s")))
      end)
    u;
  let findings = List.rev !findings @ collect_imbalance p.Ast.body in
  { findings; deadlock_free = !deadlock_free; must_block = !must_block }
