(** May-happen-in-parallel analysis over the [Seq]/[Cobegin] tree,
    refined by must-precede edges from matching [wait]/[signal] pairs.

    Program points are identified by their tree path — the list of child
    indices from the program body down to the statement. Two points'
    structural relation is decided at their lowest common ancestor:
    through a [Seq] they are ordered, through a [Cobegin] they may run in
    parallel, through an [If] they are mutually exclusive. A point that
    is a prefix of another is the guard read of an enclosing [if]/[while]
    and precedes it.

    The parallel verdict is then refined: [p] must precede [q] when [q]
    is dominated by a [wait(s)] (every path to [q] first completes one),
    every [signal(s)] site lies sequentially after [p], and [s] is
    {e handshake-eligible} — initial count 0 and no [wait]/[signal] site
    of [s] under a [while]. Eligibility is what makes the edge sound:
    with a zero start and once-only sites, the unit a dominating wait
    consumes can only come from a signal that [p] precedes, so [p]
    completed before [q] started. Without it, a leftover unit from an
    earlier loop iteration could satisfy the wait and break the edge
    (see DESIGN.md). The refinement is deliberately not transitively
    closed: chaining edges through a conditionally-executed middle point
    is unsound. *)

type relation =
  | Equal
  | Before  (** Sequentially ordered: left completes before right starts. *)
  | After
  | Parallel  (** Different branches of a common [Cobegin]. *)
  | Exclusive  (** Different arms of a common [If]: never both execute. *)

(** One data access: an assignment/store target write, or a read of a
    variable in an expression (including [if]/[while] guard reads,
    attributed to the statement's span). Arrays are whole-object accesses
    (weak updates), matching the certifiers' treatment. *)
type access = {
  path : int list;
  span : Ifc_lang.Loc.span;
  var : string;
  write : bool;
}

type t

val create : Ifc_lang.Ast.program -> t

val accesses : t -> access list
(** Every data access point of the body, in source order. Semaphore
    operations are not data accesses (they are the liveness analysis's
    subject, {!Semlive}); a [send]'s payload read and a [recv]'s target
    write are, but the channel endpoint itself is not (see
    {!send_sites}/{!recv_sites}). *)

(** One synchronization site of a semaphore or channel. *)
type sem_site = {
  site_path : int list;
  site_span : Ifc_lang.Loc.span;
  under_loop : bool;  (** The site sits under a [while]. *)
}

val send_sites : t -> sem_site list Ifc_support.Smap.t
(** Per-channel [send] sites of the body, in source order. *)

val recv_sites : t -> sem_site list Ifc_support.Smap.t
(** Per-channel [recv] sites of the body, in source order. *)

val relate : t -> int list -> int list -> relation
(** Structural relation of two program points (no semaphore
    refinement). *)

val may_happen_in_parallel : t -> int list -> int list -> bool
(** [Parallel] and not ordered by a handshake in either direction. *)

val handshake_ordered : t -> int list -> int list -> bool
(** [handshake_ordered t p q]: [p] must complete before [q] starts,
    established by an eligible wait/signal handshake as described
    above. *)
