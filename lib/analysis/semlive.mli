(** Semaphore liveness: interval counting of [wait]/[signal] operations.

    For every semaphore the analysis computes how many waits and signals
    a complete execution of each construct performs, as intervals:
    sequencing and [cobegin] add, alternation takes the per-arm min/max
    envelope, iteration contributes zero at least and unboundedly many at
    most. Against the declared initial counts this yields:

    - {b guaranteed deadlock}: every execution needs more waits on [s]
      than the initial count plus every possible signal can supply — no
      execution terminates, and the permanently blocked [wait] is the
      paper's "conditional delay" information channel made absolute;
    - {b lost signals}: units of [s] that no execution can ever consume;
    - {b imbalance}: an [if] whose arms differ in wait/signal usage, or a
      [while] whose body synchronizes at all — the control decision is
      observable through synchronization alone (Figure 3's leak shape).

    The [deadlock_free] claim is deliberately stronger than "no
    guaranteed deadlock": it holds only when every wait is covered by the
    initial count alone, so no interleaving can even block temporarily —
    the claim dynamic exploration is allowed to refute (see
    {!Analyze}). *)

type count = Fin of int | Inf

type usage = {
  wait_min : int;  (** Fewest waits any complete execution performs. *)
  wait_max : count;
  signal_min : int;
  signal_max : count;
  first_wait : Ifc_lang.Loc.span option;  (** Leftmost wait site. *)
  first_signal : Ifc_lang.Loc.span option;
}

val usages : Ifc_lang.Ast.stmt -> usage Ifc_support.Smap.t
(** Per-semaphore usage of one complete execution of the statement. *)

type result = {
  findings : Finding.t list;
      (** Guaranteed deadlocks (errors), lost signals and imbalances
          (warnings), in discovery order. *)
  deadlock_free : bool;
      (** Every wait is covered by its semaphore's initial count: no
          execution can block, even transiently. *)
  must_block : bool;
      (** Some semaphore's minimum demand exceeds everything it can ever
          be supplied: no execution terminates. *)
}

val analyze : Ifc_lang.Ast.program -> result
