(* The analyzer entry point: races via MHP, liveness, guard lints —
   after infeasible-path pruning by the interval dataflow engine. *)

module Ast = Ifc_lang.Ast
module Prune = Ifc_dataflow.Prune
module Loc = Ifc_lang.Loc
module Metrics = Ifc_lang.Metrics
module Wellformed = Ifc_lang.Wellformed

type claims = {
  race_free : bool;
  deadlock_free : bool;
  must_block : bool;
  chan_race_free : bool;
  chan_deadlock_free : bool;
}

type stats = { statements : int; accesses : int; pairs : int }

type report = {
  findings : Finding.t list;
  claims : claims;
  stats : stats;
  channels : Ifc_chan.Lint.summary list;
  pruned : Prune.pruned list;
}

(* ------------------------------------------------------------------ *)
(* Race detection.

   Accesses are grouped into endpoints — one per (statement, variable)
   with read/write flags — then every endpoint pair on the same variable
   with at least one write and no ordering (structural or handshake) is
   a finding. Arrays are whole-object: two stores to a[0] and a[1]
   conflict, matching the certifiers' weak treatment of arrays. *)

type endpoint = {
  e_path : int list;
  e_span : Loc.span;
  e_var : string;
  e_write : bool;
  e_read : bool;
}

let endpoints accs =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (a : Mhp.access) ->
      let key = (a.Mhp.path, a.Mhp.var) in
      match Hashtbl.find_opt tbl key with
      | Some e ->
        Hashtbl.replace tbl key
          { e with e_write = e.e_write || a.Mhp.write;
                   e_read = e.e_read || not a.Mhp.write }
      | None ->
        Hashtbl.add tbl key
          {
            e_path = a.Mhp.path;
            e_span = a.Mhp.span;
            e_var = a.Mhp.var;
            e_write = a.Mhp.write;
            e_read = not a.Mhp.write;
          };
        order := key :: !order)
    accs;
  List.rev_map (Hashtbl.find tbl) !order

let race_findings mhp ~atomic_spans =
  let eps = endpoints (Mhp.accesses mhp) in
  let pairs = ref 0 in
  let findings = ref [] in
  let rec scan = function
    | [] -> ()
    | e :: rest ->
      List.iter
        (fun f ->
          if e.e_var = f.e_var && (e.e_write || f.e_write) then begin
            incr pairs;
            if Mhp.may_happen_in_parallel mhp e.e_path f.e_path then begin
              let kind =
                if e.e_write && f.e_write then "write/write" else "read/write"
              in
              let atomic =
                List.mem e.e_span atomic_spans || List.mem f.e_span atomic_spans
              in
              let note =
                if atomic then
                  "; a concurrent interleaving mid-expression makes the \
                   atomicity warning here exploitable"
                else ""
              in
              findings :=
                Finding.make ~related:f.e_span Finding.Race Finding.Warning
                  e.e_span
                  (Printf.sprintf
                     "possible %s race on %s with a parallel process%s" kind
                     e.e_var note)
                :: !findings
            end
          end)
        rest;
      scan rest
  in
  scan eps;
  (List.rev !findings, !pairs)

(* ------------------------------------------------------------------ *)
(* The channel lint, adapted: the graph gets the structural relation and
   the may-parallel predicate from this analyzer's MHP pass, and its
   findings are folded into the shared diagnostic type. *)

let chan_relation = function
  | Mhp.Equal -> Ifc_chan.Graph.Equal
  | Mhp.Before -> Ifc_chan.Graph.Before
  | Mhp.After -> Ifc_chan.Graph.After
  | Mhp.Parallel -> Ifc_chan.Graph.Parallel
  | Mhp.Exclusive -> Ifc_chan.Graph.Exclusive

let chan_site (s : Mhp.sem_site) =
  {
    Ifc_chan.Graph.path = s.Mhp.site_path;
    span = s.Mhp.site_span;
    under_loop = s.Mhp.under_loop;
  }

let chan_finding (f : Ifc_chan.Lint.finding) =
  let kind =
    match f.Ifc_chan.Lint.kind with
    | Ifc_chan.Lint.Comm_deadlock -> Finding.Chan_deadlock
    | Ifc_chan.Lint.Orphan_message -> Finding.Orphan_message
    | Ifc_chan.Lint.Chan_race -> Finding.Chan_race
  in
  let severity =
    match f.Ifc_chan.Lint.severity with
    | Ifc_chan.Lint.Error -> Finding.Error
    | Ifc_chan.Lint.Warning -> Finding.Warning
  in
  Finding.make
    ?related:f.Ifc_chan.Lint.related kind severity f.Ifc_chan.Lint.span
    f.Ifc_chan.Lint.message

let chan_lint mhp (p : Ast.program) =
  let site_map m = Ifc_support.Smap.map (List.map chan_site) m in
  let graph =
    Ifc_chan.Graph.build
      ~relate:(fun a b -> chan_relation (Mhp.relate mhp a b))
      ~sends:(site_map (Mhp.send_sites mhp))
      ~recvs:(site_map (Mhp.recv_sites mhp))
      p
  in
  Ifc_chan.Lint.analyze
    ~may_parallel:(Mhp.may_happen_in_parallel mhp)
    ~graph p

(* ------------------------------------------------------------------ *)

let no_prune p =
  { Prune.program = p; pruned = []; dead_stores = []; iterations = 0; visits = 0 }

let run ?(dataflow = true) ?prune (p : Ast.program) =
  (* Prune statically infeasible arms first: the structural analyses
     below then never walk code no execution reaches, so races,
     deadlocks and channel findings inside dead arms disappear. Guard
     lints still see the original program — a constant guard is a
     finding about the source as written. [?prune] supplies
     pre-computed facts (per-module summaries at link time). *)
  let presult =
    match prune with
    | Some r -> r
    | None -> if dataflow then Prune.analyze p else no_prune p
  in
  let analyzed = presult.Prune.program in
  let mhp = Mhp.create analyzed in
  let atomic_spans =
    List.map
      (fun (i : Wellformed.issue) -> i.Wellformed.span)
      (Wellformed.atomicity_issues analyzed.Ast.body)
  in
  let races, pairs = race_findings mhp ~atomic_spans in
  let live = Semlive.analyze analyzed in
  let chan = chan_lint mhp analyzed in
  let guards = Guards.findings p in
  let unreachable =
    List.filter_map
      (fun (pr : Prune.pruned) ->
        if pr.Prune.p_const_guard then None
        else
          let what =
            match pr.Prune.p_arm with
            | Ifc_dataflow.Cfg.Then -> "then branch"
            | Ifc_dataflow.Cfg.Else -> "else branch"
            | Ifc_dataflow.Cfg.Loop_body -> "loop body"
          in
          Some
            (Finding.make ~related:pr.Prune.p_stmt_span Finding.Unreachable
               Finding.Warning pr.Prune.p_span
               (Printf.sprintf "%s is unreachable on every input" what)))
      presult.Prune.pruned
  in
  let dead_stores =
    List.map
      (fun (x, span) ->
        Finding.make Finding.Dead_store Finding.Warning span
          (Printf.sprintf "value assigned to %s is overwritten before any read"
             x))
      presult.Prune.dead_stores
  in
  let findings =
    List.sort Finding.compare
      (races
      @ live.Semlive.findings
      @ List.map chan_finding chan.Ifc_chan.Lint.findings
      @ guards @ unreachable @ dead_stores)
  in
  (* The blocking claims combine both synchronization disciplines:
     deadlock-freedom needs every semaphore {e and} every channel unable
     to block, while a guaranteed block through either one suffices for
     [must_block]. *)
  let chan_claims = chan.Ifc_chan.Lint.claims in
  let claims =
    {
      race_free = races = [];
      deadlock_free =
        live.Semlive.deadlock_free
        && chan_claims.Ifc_chan.Lint.comm_deadlock_free;
      must_block =
        live.Semlive.must_block || chan_claims.Ifc_chan.Lint.comm_must_block;
      chan_race_free = chan_claims.Ifc_chan.Lint.chan_race_free;
      chan_deadlock_free = chan_claims.Ifc_chan.Lint.comm_deadlock_free;
    }
  in
  let stats =
    {
      statements = (Metrics.of_program p).Metrics.statements;
      accesses = List.length (Mhp.accesses mhp);
      pairs;
    }
  in
  {
    findings;
    claims;
    stats;
    channels = chan.Ifc_chan.Lint.summaries;
    pruned = presult.Prune.pruned;
  }

let pp_report ppf r =
  List.iter (fun f -> Fmt.pf ppf "%a@." Finding.pp f) r.findings
