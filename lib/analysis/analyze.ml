(* The analyzer entry point: races via MHP, liveness, guard lints. *)

module Ast = Ifc_lang.Ast
module Loc = Ifc_lang.Loc
module Metrics = Ifc_lang.Metrics
module Wellformed = Ifc_lang.Wellformed

type claims = { race_free : bool; deadlock_free : bool; must_block : bool }

type stats = { statements : int; accesses : int; pairs : int }

type report = { findings : Finding.t list; claims : claims; stats : stats }

(* ------------------------------------------------------------------ *)
(* Race detection.

   Accesses are grouped into endpoints — one per (statement, variable)
   with read/write flags — then every endpoint pair on the same variable
   with at least one write and no ordering (structural or handshake) is
   a finding. Arrays are whole-object: two stores to a[0] and a[1]
   conflict, matching the certifiers' weak treatment of arrays. *)

type endpoint = {
  e_path : int list;
  e_span : Loc.span;
  e_var : string;
  e_write : bool;
  e_read : bool;
}

let endpoints accs =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (a : Mhp.access) ->
      let key = (a.Mhp.path, a.Mhp.var) in
      match Hashtbl.find_opt tbl key with
      | Some e ->
        Hashtbl.replace tbl key
          { e with e_write = e.e_write || a.Mhp.write;
                   e_read = e.e_read || not a.Mhp.write }
      | None ->
        Hashtbl.add tbl key
          {
            e_path = a.Mhp.path;
            e_span = a.Mhp.span;
            e_var = a.Mhp.var;
            e_write = a.Mhp.write;
            e_read = not a.Mhp.write;
          };
        order := key :: !order)
    accs;
  List.rev_map (Hashtbl.find tbl) !order

let race_findings mhp ~atomic_spans =
  let eps = endpoints (Mhp.accesses mhp) in
  let pairs = ref 0 in
  let findings = ref [] in
  let rec scan = function
    | [] -> ()
    | e :: rest ->
      List.iter
        (fun f ->
          if e.e_var = f.e_var && (e.e_write || f.e_write) then begin
            incr pairs;
            if Mhp.may_happen_in_parallel mhp e.e_path f.e_path then begin
              let kind =
                if e.e_write && f.e_write then "write/write" else "read/write"
              in
              let atomic =
                List.mem e.e_span atomic_spans || List.mem f.e_span atomic_spans
              in
              let note =
                if atomic then
                  "; a concurrent interleaving mid-expression makes the \
                   atomicity warning here exploitable"
                else ""
              in
              findings :=
                Finding.make ~related:f.e_span Finding.Race Finding.Warning
                  e.e_span
                  (Printf.sprintf
                     "possible %s race on %s with a parallel process%s" kind
                     e.e_var note)
                :: !findings
            end
          end)
        rest;
      scan rest
  in
  scan eps;
  (List.rev !findings, !pairs)

(* ------------------------------------------------------------------ *)

let run (p : Ast.program) =
  let mhp = Mhp.create p in
  let atomic_spans =
    List.map
      (fun (i : Wellformed.issue) -> i.Wellformed.span)
      (Wellformed.atomicity_issues p.Ast.body)
  in
  let races, pairs = race_findings mhp ~atomic_spans in
  let live = Semlive.analyze p in
  let guards = Guards.findings p in
  let findings =
    List.sort Finding.compare (races @ live.Semlive.findings @ guards)
  in
  let claims =
    {
      race_free = races = [];
      deadlock_free = live.Semlive.deadlock_free;
      must_block = live.Semlive.must_block;
    }
  in
  let stats =
    {
      statements = (Metrics.of_program p).Metrics.statements;
      accesses = List.length (Mhp.accesses mhp);
      pairs;
    }
  in
  { findings; claims; stats }

let pp_report ppf r =
  List.iter (fun f -> Fmt.pf ppf "%a@." Finding.pp f) r.findings
