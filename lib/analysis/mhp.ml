(* May-happen-in-parallel over tree paths, with handshake refinement. *)

module Ast = Ifc_lang.Ast
module Loc = Ifc_lang.Loc
module Vars = Ifc_lang.Vars
module Sset = Ifc_support.Sset
module Smap = Ifc_support.Smap

type relation = Equal | Before | After | Parallel | Exclusive

type access = { path : int list; span : Loc.span; var : string; write : bool }

type sem_site = { site_path : int list; site_span : Loc.span; under_loop : bool }

type t = {
  body : Ast.stmt;
  accs : access list;
  waits : sem_site list Smap.t;
  signals : sem_site list Smap.t;
  sends : sem_site list Smap.t;
  recvs : sem_site list Smap.t;
  eligible : Sset.t;
      (* Semaphores usable for must-precede edges: initial count 0 and
         no wait/signal site under a while. *)
}

let children (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.If (_, a, b) -> [ a; b ]
  | Ast.While (_, b) -> [ b ]
  | Ast.Seq ss | Ast.Cobegin ss -> ss
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Access collection *)

let collect_accesses body =
  let out = ref [] in
  let add path span var write = out := { path; span; var; write } :: !out in
  let add_reads path span e =
    Sset.iter (fun v -> add path span v false) (Vars.expr_vars e)
  in
  let rec walk path (s : Ast.stmt) =
    match s.Ast.node with
    | Ast.Skip | Ast.Wait _ | Ast.Signal _ -> ()
    | Ast.Assign (x, e) | Ast.Declassify (x, e, _) ->
      add path s.Ast.span x true;
      add_reads path s.Ast.span e
    | Ast.Send (_, e) ->
      (* The channel itself is a synchronization object, not a data
         access (its sites live in [sends]/[recvs]); the payload read
         is data. *)
      add_reads path s.Ast.span e
    | Ast.Recv (_, x) -> add path s.Ast.span x true
    | Ast.Store (a, i, e) ->
      add path s.Ast.span a true;
      add_reads path s.Ast.span i;
      add_reads path s.Ast.span e
    | Ast.If (cond, a, b) ->
      add_reads path s.Ast.span cond;
      walk (path @ [ 0 ]) a;
      walk (path @ [ 1 ]) b
    | Ast.While (cond, b) ->
      add_reads path s.Ast.span cond;
      walk (path @ [ 0 ]) b
    | Ast.Seq ss | Ast.Cobegin ss ->
      List.iteri (fun i c -> walk (path @ [ i ]) c) ss
  in
  walk [] body;
  List.rev !out

let collect_sites body =
  let waits = ref Smap.empty
  and signals = ref Smap.empty
  and sends = ref Smap.empty
  and recvs = ref Smap.empty in
  let add store sem site = store := Smap.add sem (site :: Smap.find_or ~default:[] sem !store) !store in
  let rec walk path under_loop (s : Ast.stmt) =
    match s.Ast.node with
    | Ast.Wait sem ->
      add waits sem { site_path = path; site_span = s.Ast.span; under_loop }
    | Ast.Signal sem ->
      add signals sem { site_path = path; site_span = s.Ast.span; under_loop }
    | Ast.Send (chan, _) ->
      add sends chan { site_path = path; site_span = s.Ast.span; under_loop }
    | Ast.Recv (chan, _) ->
      add recvs chan { site_path = path; site_span = s.Ast.span; under_loop }
    | Ast.If (_, a, b) ->
      walk (path @ [ 0 ]) under_loop a;
      walk (path @ [ 1 ]) under_loop b
    | Ast.While (_, b) -> walk (path @ [ 0 ]) true b
    | Ast.Seq ss | Ast.Cobegin ss ->
      List.iteri (fun i c -> walk (path @ [ i ]) under_loop c) ss
    | Ast.Skip | Ast.Assign _ | Ast.Declassify _ | Ast.Store _ -> ()
  in
  walk [] false body;
  ( Smap.map List.rev !waits,
    Smap.map List.rev !signals,
    Smap.map List.rev !sends,
    Smap.map List.rev !recvs )

let create (p : Ast.program) =
  let body = p.Ast.body in
  let waits, signals, sends, recvs = collect_sites body in
  let inits =
    List.fold_left
      (fun acc -> function
        | Ast.Sem_decl { name; init; _ } -> Smap.add name init acc
        | Ast.Var_decl _ | Ast.Arr_decl _ | Ast.Chan_decl _ -> acc)
      Smap.empty p.Ast.decls
  in
  let looping sites = List.exists (fun s -> s.under_loop) sites in
  let sems =
    Sset.union
      (Sset.of_list (Smap.keys waits))
      (Sset.of_list (Smap.keys signals))
  in
  let eligible =
    Sset.filter
      (fun s ->
        Smap.find_or ~default:0 s inits = 0
        && (not (looping (Smap.find_or ~default:[] s waits)))
        && not (looping (Smap.find_or ~default:[] s signals)))
      sems
  in
  { body; accs = collect_accesses body; waits; signals; sends; recvs; eligible }

let accesses t = t.accs
let send_sites t = t.sends
let recv_sites t = t.recvs

(* ------------------------------------------------------------------ *)
(* Structural relation *)

let relate t p q =
  let rec go s p q =
    match (p, q) with
    | [], [] -> Equal
    | [], _ -> Before (* guard read of an enclosing if/while *)
    | _, [] -> After
    | i :: p', j :: q' ->
      if i = j then go (List.nth (children s) i) p' q'
      else (
        match s.Ast.node with
        | Ast.Seq _ -> if i < j then Before else After
        | Ast.Cobegin _ -> Parallel
        | Ast.If _ -> Exclusive
        | _ -> assert false (* while has one child; leaves have none *))
  in
  go t.body p q

(* ------------------------------------------------------------------ *)
(* Handshake refinement *)

(* Semaphores some wait of which must have completed whenever the
   statement completes. Loops promise nothing (zero iterations);
   alternation promises only what both arms promise. *)
let rec must_wait (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.Wait sem -> Sset.singleton sem
  | Ast.Seq ss | Ast.Cobegin ss ->
    List.fold_left (fun acc c -> Sset.union acc (must_wait c)) Sset.empty ss
  | Ast.If (_, a, b) -> Sset.inter (must_wait a) (must_wait b)
  | Ast.While _ | Ast.Skip | Ast.Assign _ | Ast.Declassify _ | Ast.Store _
  | Ast.Signal _
  (* Channel ops promise no semaphore handshakes; their own ordering is
     the channel graph's subject, not this refinement's. *)
  | Ast.Send _ | Ast.Recv _ ->
    Sset.empty

(* Waits that must have completed before the point at [path] starts:
   the union over every Seq ancestor of the must-waits of the siblings
   it has already passed. *)
let must_wait_before t path =
  let rec go s path acc =
    match path with
    | [] -> acc
    | i :: rest ->
      let acc =
        match s.Ast.node with
        | Ast.Seq ss ->
          List.filteri (fun j _ -> j < i) ss
          |> List.fold_left (fun acc c -> Sset.union acc (must_wait c)) acc
        | _ -> acc
      in
      go (List.nth (children s) i) rest acc
  in
  go t.body path Sset.empty

let handshake_ordered t p q =
  Sset.exists
    (fun sem ->
      Sset.mem sem t.eligible
      && List.for_all
           (fun site -> relate t p site.site_path = Before)
           (Smap.find_or ~default:[] sem t.signals))
    (must_wait_before t q)

let may_happen_in_parallel t p q =
  relate t p q = Parallel
  && (not (handshake_ordered t p q))
  && not (handshake_ordered t q p)
