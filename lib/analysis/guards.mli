(** Constant-guard lints.

    A guard that mentions no variable evaluates to the same value in
    every execution: an [if] with one arm dead, or a [while] that either
    never runs or never terminates. These are warnings — dead arms often
    hide the interesting branch of a leak example, and a [while true]
    loop makes everything after it unreachable. *)

val findings : Ifc_lang.Ast.program -> Finding.t list
(** One {!Finding.Guard} warning per constant [if]/[while] guard, in
    source order. *)
