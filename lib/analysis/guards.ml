(* Lints for constant if/while guards. *)

module Ast = Ifc_lang.Ast

(* Evaluate a closed expression (no variable or array reads). Division
   by zero and any variable reference make the guard non-constant. *)
type value = I of int | B of bool

let rec eval (e : Ast.expr) =
  match e with
  | Ast.Int n -> Some (I n)
  | Ast.Bool b -> Some (B b)
  | Ast.Var _ | Ast.Index _ -> None
  | Ast.Unop (op, a) -> (
    match (op, eval a) with
    | Ast.Neg, Some (I n) -> Some (I (-n))
    | Ast.Not, Some (B b) -> Some (B (not b))
    | _ -> None)
  | Ast.Binop (op, a, b) -> (
    match (eval a, eval b) with
    | Some (I x), Some (I y) -> (
      match op with
      | Ast.Add -> Some (I (x + y))
      | Ast.Sub -> Some (I (x - y))
      | Ast.Mul -> Some (I (x * y))
      | Ast.Div -> if y = 0 then None else Some (I (x / y))
      | Ast.Mod -> if y = 0 then None else Some (I (x mod y))
      | Ast.Eq -> Some (B (x = y))
      | Ast.Ne -> Some (B (x <> y))
      | Ast.Lt -> Some (B (x < y))
      | Ast.Le -> Some (B (x <= y))
      | Ast.Gt -> Some (B (x > y))
      | Ast.Ge -> Some (B (x >= y))
      | Ast.And | Ast.Or -> None)
    | Some (B x), Some (B y) -> (
      match op with
      | Ast.And -> Some (B (x && y))
      | Ast.Or -> Some (B (x || y))
      | Ast.Eq -> Some (B (x = y))
      | Ast.Ne -> Some (B (x <> y))
      | _ -> None)
    | _ -> None)

let const_bool e = match eval e with Some (B b) -> Some b | _ -> None

let findings (p : Ast.program) =
  let out = ref [] in
  let emit span msg =
    out := Finding.make Finding.Guard Finding.Warning span msg :: !out
  in
  let rec walk (s : Ast.stmt) =
    (match s.Ast.node with
    | Ast.If (cond, _, _) -> (
      match const_bool cond with
      | Some b ->
        emit s.Ast.span
          (Printf.sprintf
             "if guard is constantly %b; the %s branch never executes" b
             (if b then "else" else "then"))
      | None -> ())
    | Ast.While (cond, _) -> (
      match const_bool cond with
      | Some true ->
        emit s.Ast.span "while guard is constantly true; the loop never terminates"
      | Some false ->
        emit s.Ast.span "while guard is constantly false; the body never executes"
      | None -> ())
    | _ -> ());
    match s.Ast.node with
    | Ast.If (_, a, b) ->
      walk a;
      walk b
    | Ast.While (_, b) -> walk b
    | Ast.Seq ss | Ast.Cobegin ss -> List.iter walk ss
    | _ -> ()
  in
  walk p.Ast.body;
  List.rev !out
