(* Lints for constant if/while guards. *)

module Ast = Ifc_lang.Ast

(* The typed closed-expression evaluator lives with the dataflow
   engine now ([Ifc_dataflow.Interval]), shared with the pruning
   analysis; the semantics are unchanged — division by zero and any
   variable reference make the guard non-constant. *)
let const_bool = Ifc_dataflow.Interval.const_bool

let findings (p : Ast.program) =
  let out = ref [] in
  let emit span msg =
    out := Finding.make Finding.Guard Finding.Warning span msg :: !out
  in
  let rec walk (s : Ast.stmt) =
    (match s.Ast.node with
    | Ast.If (cond, _, _) -> (
      match const_bool cond with
      | Some b ->
        emit s.Ast.span
          (Printf.sprintf
             "if guard is constantly %b; the %s branch never executes" b
             (if b then "else" else "then"))
      | None -> ())
    | Ast.While (cond, _) -> (
      match const_bool cond with
      | Some true ->
        emit s.Ast.span "while guard is constantly true; the loop never terminates"
      | Some false ->
        emit s.Ast.span "while guard is constantly false; the body never executes"
      | None -> ())
    | _ -> ());
    match s.Ast.node with
    | Ast.If (_, a, b) ->
      walk a;
      walk b
    | Ast.While (_, b) -> walk b
    | Ast.Seq ss | Ast.Cobegin ss -> List.iter walk ss
    | _ -> ()
  in
  walk p.Ast.body;
  List.rev !out
