(** Flow witnesses: minimal source→sink chains explaining a rejection.

    When certification refuses a program, the failed check says {e
    which} constraint broke but not {e where the information came
    from}. A witness chain names the source variables whose classes
    caused the violation, the statements the flow traversed (each with
    the rule that propagated it), and the sink check that failed.

    Chains are not trusted: {!replay} re-derives the rejection from
    scratch and validates the chain step by step — the sink must still
    be a failed check with the same rule at the same span, every step
    must name a real statement, consecutive steps must nest or precede
    each other in program order, and the join of the source classes
    must genuinely exceed the sink's bound. The fuzzer replays every
    emitted witness and files a chain that fails replay under its own
    inversion class. *)

module Ast = Ifc_lang.Ast
module Loc = Ifc_lang.Loc
module Binding = Ifc_core.Binding

type step = { w_span : Loc.span; w_var : string; w_rule : string }

type mode = Cfm_mode | Fs_mode

type t = {
  w_mode : mode;
  w_source : string list;  (** Variables whose classes start the flow. *)
  w_steps : step list;  (** Source toward sink; may be empty. *)
  w_sink_span : Loc.span;
  w_sink_rule : string;
  w_sink_var : string option;
}

val explain : ?self_check:bool -> 'a Binding.t -> Ast.program -> t option
(** [None] iff the program is accepted (CFM and, failing that,
    flow-sensitive both pass). Prefers the first failed CFM check;
    falls back to the first flow-sensitive violation. *)

val replay : ?self_check:bool -> 'a Binding.t -> Ast.program -> t -> bool

val mode_name : mode -> string

val pp : Format.formatter -> t -> unit
