(* AST -> control-flow graph. *)

module Ast = Ifc_lang.Ast
module Loc = Ifc_lang.Loc
module Sset = Ifc_support.Sset
module Vars = Ifc_lang.Vars

type action =
  | A_skip
  | A_assign of string * Ast.expr
  | A_store of string * Ast.expr * Ast.expr
  | A_assume of Ast.expr * bool
  | A_wait of string
  | A_signal of string
  | A_send of string * Ast.expr
  | A_recv of string * string
  | A_par_join of Sset.t

type edge = {
  src : int;
  dst : int;
  action : action;
  volatile : Sset.t;
  span : Loc.span;
}

type arm = Then | Else | Loop_body

type branch = {
  b_arm : arm;
  b_entry : int;
  b_span : Loc.span;
  b_stmt_span : Loc.span;
  b_guard : Ast.expr;
}

type t = {
  node_count : int;
  edges : edge list;
  entry : int;
  exit : int;
  branches : branch list;
  loop_heads : int list;
}

let of_stmt stmt =
  let next = ref 0 in
  let fresh () =
    let n = !next in
    incr next;
    n
  in
  let edges = ref [] in
  let branches = ref [] in
  let loop_heads = ref [] in
  let add ?(span = Loc.dummy) ~src ~dst action volatile =
    edges := { src; dst; action; volatile; span } :: !edges
  in
  let rec go ~volatile src (s : Ast.stmt) =
    let span = s.Ast.span in
    let leaf action =
      let dst = fresh () in
      add ~span ~src ~dst action volatile;
      dst
    in
    match s.Ast.node with
    | Ast.Skip -> leaf A_skip
    | Ast.Assign (x, e) | Ast.Declassify (x, e, _) -> leaf (A_assign (x, e))
    | Ast.Store (a, i, e) -> leaf (A_store (a, i, e))
    | Ast.Wait sem -> leaf (A_wait sem)
    | Ast.Signal sem -> leaf (A_signal sem)
    | Ast.Send (chan, e) -> leaf (A_send (chan, e))
    | Ast.Recv (chan, x) -> leaf (A_recv (chan, x))
    | Ast.If (cond, then_, else_) ->
      let nt = fresh () and ne = fresh () in
      add ~span ~src ~dst:nt (A_assume (cond, true)) volatile;
      add ~span ~src ~dst:ne (A_assume (cond, false)) volatile;
      branches :=
        {
          b_arm = Else;
          b_entry = ne;
          b_span = else_.Ast.span;
          b_stmt_span = s.Ast.span;
          b_guard = cond;
        }
        :: {
             b_arm = Then;
             b_entry = nt;
             b_span = then_.Ast.span;
             b_stmt_span = s.Ast.span;
             b_guard = cond;
           }
        :: !branches;
      let dt = go ~volatile nt then_ in
      let de = go ~volatile ne else_ in
      let j = fresh () in
      add ~src:dt ~dst:j A_skip volatile;
      add ~src:de ~dst:j A_skip volatile;
      j
    | Ast.While (cond, body) ->
      let head = fresh () in
      add ~src ~dst:head A_skip volatile;
      loop_heads := head :: !loop_heads;
      let nb = fresh () in
      add ~span ~src:head ~dst:nb (A_assume (cond, true)) volatile;
      branches :=
        {
          b_arm = Loop_body;
          b_entry = nb;
          b_span = body.Ast.span;
          b_stmt_span = s.Ast.span;
          b_guard = cond;
        }
        :: !branches;
      let db = go ~volatile nb body in
      add ~src:db ~dst:head A_skip volatile;
      let out = fresh () in
      add ~span ~src:head ~dst:out (A_assume (cond, false)) volatile;
      out
    | Ast.Seq ss -> List.fold_left (go ~volatile) src ss
    | Ast.Cobegin [] -> leaf A_skip
    | Ast.Cobegin bs ->
      let mods = List.map Vars.modified bs in
      let all = List.fold_left Sset.union Sset.empty mods in
      let exits =
        List.mapi
          (fun i b ->
            let siblings =
              List.concat
                (List.filteri (fun j _ -> j <> i) (List.map Sset.elements mods))
            in
            let v =
              List.fold_left (fun acc x -> Sset.add x acc) volatile siblings
            in
            let entry = fresh () in
            add ~src ~dst:entry A_skip v;
            go ~volatile:v entry b)
          bs
      in
      let j = fresh () in
      List.iter (fun d -> add ~src:d ~dst:j (A_par_join all) volatile) exits;
      j
  in
  let entry = fresh () in
  let exit = go ~volatile:Sset.empty entry stmt in
  {
    node_count = !next;
    edges = List.rev !edges;
    entry;
    exit;
    branches = List.rev !branches;
    loop_heads = !loop_heads;
  }

let of_program (p : Ast.program) = of_stmt p.Ast.body
