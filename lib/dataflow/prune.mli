(** Infeasible-path pruning and the lints that fall out of it.

    The interval analysis runs forward over the CFG from an
    unconstrained entry state (the executor may start from any input
    store, so nothing is assumed about initial values). A branch arm
    whose entry node stays at bottom in the fixpoint is statically
    unreachable: {!analyze} rewrites such arms to [skip] — keeping the
    enclosing [if]/[while] and every span intact — so downstream
    analyses (MHP, liveness of semaphores, channel lint) never walk
    code no execution reaches.

    On the pruned program a backward liveness pass then reports {e dead
    stores}: assignments whose value is definitely overwritten before
    any read. The terminal store is observable (noninterference
    compares low projections of final states), so every variable is
    live at program exit; variables touched inside any [cobegin] are
    pinned live throughout, since a sibling may read them at any
    interleaving point. *)

module Ast = Ifc_lang.Ast
module Loc = Ifc_lang.Loc

type pruned = {
  p_arm : Cfg.arm;
  p_span : Loc.span;  (** Span of the unreachable arm. *)
  p_stmt_span : Loc.span;  (** Span of the enclosing [if]/[while]. *)
  p_const_guard : bool;
      (** The guard lint already reports constant guards; unreachable
          findings are only emitted when this is [false]. *)
}

type result = {
  program : Ast.program;  (** Input with unreachable arms as [skip]. *)
  pruned : pruned list;  (** In program order. *)
  dead_stores : (string * Loc.span) list;
      (** Variable and span of each definitely-overwritten assignment,
          in CFG order. *)
  iterations : int;  (** Worklist pops in the interval fixpoint. *)
  visits : int;  (** Transfer applications in the interval fixpoint. *)
}

val analyze : Ast.program -> result

val arm_name : Cfg.arm -> string
(** ["then"], ["else"], or ["loop body"], for messages. *)
