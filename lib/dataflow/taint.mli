(** Flow provenance: which variables can an observed value trace back to?

    A second instantiation of the worklist solver, used to seed witness
    chains. The domain maps each variable to the set of {e origin}
    variables whose initial value (or whose synchronisation behaviour)
    may have influenced it; a variable not in the map is its own sole
    origin. A program-counter component accumulates the origins of every
    guard tested, semaphore awaited, and channel received on the path —
    implicit flows — and is folded into every subsequent assignment.
    The pc only grows along a path (it is never popped at joins), which
    over-approximates — exactly what a provenance explanation needs. *)

module Ast = Ifc_lang.Ast

type state = Bot | St of Ifc_support.Sset.t Ifc_support.Smap.t * Ifc_support.Sset.t
(** [St (origins, pc)]. *)

module Dom : Solver.DOMAIN with type t = state

val origins : state -> string -> Ifc_support.Sset.t
(** Origins of a variable in a state; [{x}] when untracked, empty at
    bottom. *)

val analyze : Ast.program -> state
(** Forward fixpoint over the program's CFG; returns the exit state. *)
