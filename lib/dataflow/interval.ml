(* The constant + interval abstract domain over machine integers. *)

module Ast = Ifc_lang.Ast
module Smap = Ifc_support.Smap
module Sset = Ifc_support.Sset

type bnd = Ninf | Fin of int | Pinf

type value = Bot | Itv of bnd * bnd

let top = Itv (Ninf, Pinf)

let singleton n = Itv (Fin n, Fin n)

let bnd_le a b =
  match (a, b) with
  | Ninf, _ | _, Pinf -> true
  | Pinf, _ | _, Ninf -> false
  | Fin a, Fin b -> a <= b

let bnd_min a b = if bnd_le a b then a else b

let bnd_max a b = if bnd_le a b then b else a

(* Predecessor/successor of a bound, saturating at infinity rather than
   wrapping: used only to tighten strict comparisons. *)
let bnd_pred = function
  | Fin n when n > min_int -> Fin (n - 1)
  | Fin _ -> Ninf
  | b -> b

let bnd_succ = function
  | Fin n when n < max_int -> Fin (n + 1)
  | Fin _ -> Pinf
  | b -> b

let norm lo hi = if bnd_le lo hi then Itv (lo, hi) else Bot

let value_join a b =
  match (a, b) with
  | Bot, v | v, Bot -> v
  | Itv (la, ha), Itv (lb, hb) -> Itv (bnd_min la lb, bnd_max ha hb)

let value_widen a b =
  match (a, b) with
  | Bot, v | v, Bot -> v
  | Itv (la, ha), Itv (lb, hb) ->
    let lo = if bnd_le la lb then la else Ninf in
    let hi = if bnd_le hb ha then ha else Pinf in
    Itv (lo, hi)

let value_equal a b =
  match (a, b) with
  | Bot, Bot -> true
  | Itv (la, ha), Itv (lb, hb) -> la = lb && ha = hb
  | _ -> false

let contains v n =
  match v with
  | Bot -> false
  | Itv (lo, hi) -> bnd_le lo (Fin n) && bnd_le (Fin n) hi

type truth = True | False | Maybe

let truthiness = function
  | Bot -> Maybe (* unreachable; any answer is sound *)
  | Itv (Fin 0, Fin 0) -> False
  | Itv (lo, hi) ->
    if bnd_le (Fin 1) lo || bnd_le hi (Fin (-1)) then True
    else if contains (Itv (lo, hi)) 0 then Maybe
    else True

(* Checked machine arithmetic. The concrete evaluator uses native ints
   and silently wraps, so an abstract result that could overflow must
   collapse to [top]: a tight-but-wrapped bound would be unsound. *)

let add_checked a b =
  let s = a + b in
  if (a >= 0 && b >= 0 && s < 0) || (a < 0 && b < 0 && s >= 0) then None
  else Some s

let sub_checked a b =
  let s = a - b in
  if (a >= 0 && b < 0 && s < 0) || (a < 0 && b >= 0 && s >= 0) then None
  else Some s

let mul_checked a b =
  if a = 0 || b = 0 then Some 0
  else
    let p = a * b in
    if p / b = a && not (a = min_int && b = -1) then Some p else None

let neg_checked a = if a = min_int then None else Some (-a)

let bnd2 f a b =
  match (a, b) with
  | Fin a, Fin b -> ( match f a b with Some n -> Some (Fin n) | None -> None)
  | _ -> Some (if a = Ninf || b = Ninf then Ninf else Pinf)

let lift2 f a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (la, ha), Itv (lb, hb) -> (
    match (f la lb, f ha hb) with
    | Some lo, Some hi -> Itv (lo, hi)
    | _ -> top)

let add_v = lift2 (bnd2 add_checked)

let sub_v a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (la, ha), Itv (lb, hb) -> (
    (* [la - hb, ha - lb]; infinities dominate like in addition. *)
    let f a b =
      match (a, b) with
      | Fin a, Fin b -> (
        match sub_checked a b with Some n -> Some (Fin n) | None -> None)
      | Ninf, _ | _, Pinf -> Some Ninf
      | Pinf, _ | _, Ninf -> Some Pinf
    in
    match (f la hb, f ha lb) with
    | Some lo, Some hi -> Itv (lo, hi)
    | _ -> top)

let neg_v = function
  | Bot -> Bot
  | Itv (lo, hi) -> (
    let flip = function
      | Ninf -> Some Pinf
      | Pinf -> Some Ninf
      | Fin n -> ( match neg_checked n with Some n -> Some (Fin n) | None -> None)
    in
    match (flip hi, flip lo) with
    | Some lo, Some hi -> Itv (lo, hi)
    | _ -> top)

let mul_v a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (Fin la, Fin ha), Itv (Fin lb, Fin hb) -> (
    let products =
      [ mul_checked la lb; mul_checked la hb; mul_checked ha lb;
        mul_checked ha hb ]
    in
    match products with
    | [ Some a; Some b; Some c; Some d ] ->
      let lo = min (min a b) (min c d) and hi = max (max a b) (max c d) in
      Itv (Fin lo, Fin hi)
    | _ -> top)
  | _ -> top

(* Division and modulo fault on a zero divisor and truncate toward zero
   otherwise; only the all-constant case is worth being precise about. *)
let div_v a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (Fin la, Fin ha), Itv (Fin lb, Fin hb)
    when la = ha && lb = hb && lb <> 0 ->
    if la = min_int && lb = -1 then top else singleton (la / lb)
  | _ -> top

let mod_v a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (Fin la, Fin ha), Itv (Fin lb, Fin hb)
    when la = ha && lb = hb && lb <> 0 ->
    if la = min_int && lb = -1 then top else singleton (la mod lb)
  | _ -> top

let of_truth = function
  | True -> singleton 1
  | False -> singleton 0
  | Maybe -> Itv (Fin 0, Fin 1)

let bool_v b = singleton (if b then 1 else 0)

(* Comparisons return 0/1 like the concrete evaluator. *)
let cmp_v op a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (la, ha), Itv (lb, hb) -> (
    let lt_strict x y =
      (* every element of the first interval < every element of the second *)
      match (x, y) with Fin x, Fin y -> x < y | _ -> false
    in
    let le_all x y = match (x, y) with Fin x, Fin y -> x <= y | _ -> false in
    match op with
    | Ast.Lt ->
      if lt_strict ha lb then bool_v true
      else if le_all hb la then bool_v false
      else of_truth Maybe
    | Ast.Le ->
      if le_all ha lb then bool_v true
      else if lt_strict hb la then bool_v false
      else of_truth Maybe
    | Ast.Gt ->
      if lt_strict hb la then bool_v true
      else if le_all ha lb then bool_v false
      else of_truth Maybe
    | Ast.Ge ->
      if le_all hb la then bool_v true
      else if lt_strict ha lb then bool_v false
      else of_truth Maybe
    | Ast.Eq ->
      if la = ha && lb = hb && la = lb && la <> Ninf && la <> Pinf then
        bool_v true
      else if lt_strict ha lb || lt_strict hb la then bool_v false
      else of_truth Maybe
    | Ast.Ne ->
      if lt_strict ha lb || lt_strict hb la then bool_v true
      else if la = ha && lb = hb && la = lb && la <> Ninf && la <> Pinf then
        bool_v false
      else of_truth Maybe
    | _ -> assert false)

(* Environments: absent variable = top, so maps stay small. *)

type env = Unreachable | Env of value Smap.t

let top_env = Env Smap.empty

let lookup ~volatile env x =
  match env with
  | Unreachable -> Bot
  | Env m ->
    if Sset.mem x volatile then top
    else ( match Smap.find_opt x m with Some v -> v | None -> top)

let set x v env =
  match env with
  | Unreachable -> Unreachable
  | Env m ->
    if value_equal v top then Env (Smap.remove x m) else Env (Smap.add x v m)

let env_merge f a b =
  match (a, b) with
  | Unreachable, e | e, Unreachable -> e
  | Env ma, Env mb ->
    Env
      (Smap.merge
         (fun _ va vb ->
           match (va, vb) with
           | Some va, Some vb ->
             let v = f va vb in
             if value_equal v top then None else Some v
           | _ -> None (* absent = top; join/widen with top = top *))
         ma mb)

module Dom = struct
  type t = env

  let bottom = Unreachable

  let join = env_merge value_join

  let widen = env_merge value_widen

  let equal a b =
    a == b
    ||
    match (a, b) with
    | Unreachable, Unreachable -> true
    | Env ma, Env mb -> ma == mb || Smap.equal value_equal ma mb
    | _ -> false
end

let rec eval ~volatile env (e : Ast.expr) =
  match env with
  | Unreachable -> Bot
  | Env _ -> (
    match e with
    | Ast.Int n -> singleton n
    | Ast.Bool b -> bool_v b
    | Ast.Var x -> lookup ~volatile env x
    | Ast.Index (_, _) -> top
    | Ast.Unop (Ast.Neg, e) -> neg_v (eval ~volatile env e)
    | Ast.Unop (Ast.Not, e) -> of_truth (invert (truthiness (eval ~volatile env e)))
    | Ast.Binop (op, e1, e2) -> (
      let a = eval ~volatile env e1 and b = eval ~volatile env e2 in
      match op with
      | Ast.Add -> add_v a b
      | Ast.Sub -> sub_v a b
      | Ast.Mul -> mul_v a b
      | Ast.Div -> div_v a b
      | Ast.Mod -> mod_v a b
      | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> cmp_v op a b
      | Ast.And -> (
        match (truthiness a, truthiness b) with
        | False, _ | _, False -> bool_v false
        | True, True -> bool_v true
        | _ -> of_truth Maybe)
      | Ast.Or -> (
        match (truthiness a, truthiness b) with
        | True, _ | _, True -> bool_v true
        | False, False -> bool_v false
        | _ -> of_truth Maybe)))

and invert = function True -> False | False -> True | Maybe -> Maybe

(* Guard-edge narrowing: when the tested variable is not volatile its
   value cannot change between the guard evaluation and the arm entry,
   so a comparison against a known interval tightens it. *)

let meet_var ~volatile env x v =
  if Sset.mem x volatile then env
  else
    match (lookup ~volatile env x, v) with
    | Bot, _ | _, Bot -> Unreachable
    | Itv (la, ha), Itv (lb, hb) -> (
      match norm (bnd_max la lb) (bnd_min ha hb) with
      | Bot -> Unreachable
      | v -> set x v env)

let exclude_var ~volatile env x n =
  if Sset.mem x volatile then env
  else
    match lookup ~volatile env x with
    | Bot -> Unreachable
    | Itv (lo, hi) ->
      if lo = Fin n && hi = Fin n then Unreachable
      else if lo = Fin n then set x (Itv (bnd_succ lo, hi)) env
      else if hi = Fin n then set x (Itv (lo, bnd_pred hi)) env
      else env

let rec narrow ~volatile env (cond : Ast.expr) expected =
  match env with
  | Unreachable -> Unreachable
  | Env _ -> (
    let refine_cmp op x rhs =
      (* Knowing [x `op` e] (or its negation) where e ∈ rhs. *)
      match rhs with
      | Bot -> Unreachable
      | Itv (lo, hi) -> (
        (* With e ∈ [lo, hi]: x < e gives x ≤ hi-1; its negation x ≥ e
           gives x ≥ lo; and symmetrically for the other comparisons. *)
        match (op, expected) with
        | Ast.Lt, true -> meet_var ~volatile env x (Itv (Ninf, bnd_pred hi))
        | Ast.Lt, false -> meet_var ~volatile env x (Itv (lo, Pinf))
        | Ast.Le, true -> meet_var ~volatile env x (Itv (Ninf, hi))
        | Ast.Le, false -> meet_var ~volatile env x (Itv (bnd_succ lo, Pinf))
        | Ast.Gt, true -> meet_var ~volatile env x (Itv (bnd_succ lo, Pinf))
        | Ast.Gt, false -> meet_var ~volatile env x (Itv (Ninf, hi))
        | Ast.Ge, true -> meet_var ~volatile env x (Itv (lo, Pinf))
        | Ast.Ge, false -> meet_var ~volatile env x (Itv (Ninf, bnd_pred hi))
        | Ast.Eq, true | Ast.Ne, false ->
          meet_var ~volatile env x (Itv (lo, hi))
        | Ast.Ne, true | Ast.Eq, false -> (
          match (lo, hi) with
          | Fin n, Fin m when n = m -> exclude_var ~volatile env x n
          | _ -> env)
        | _ -> env)
    in
    match cond with
    | Ast.Var x ->
      if expected then exclude_var ~volatile env x 0
      else meet_var ~volatile env x (singleton 0)
    | Ast.Unop (Ast.Not, e) -> narrow ~volatile env e (not expected)
    | Ast.Binop (Ast.And, e1, e2) when expected ->
      narrow ~volatile (narrow ~volatile env e1 true) e2 true
    | Ast.Binop (Ast.Or, e1, e2) when not expected ->
      narrow ~volatile (narrow ~volatile env e1 false) e2 false
    | Ast.Binop (op, Ast.Var x, rhs)
      when (match op with
           | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> true
           | _ -> false) ->
      refine_cmp op x (eval ~volatile env rhs)
    | Ast.Binop (op, lhs, Ast.Var x)
      when (match op with
           | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> true
           | _ -> false) ->
      let mirror = function
        | Ast.Lt -> Ast.Gt
        | Ast.Le -> Ast.Ge
        | Ast.Gt -> Ast.Lt
        | Ast.Ge -> Ast.Le
        | op -> op
      in
      refine_cmp (mirror op) x (eval ~volatile env lhs)
    | _ -> env)

let transfer ~volatile action env =
  match env with
  | Unreachable -> Unreachable
  | Env _ -> (
    match action with
    | Cfg.A_skip | Cfg.A_wait _ | Cfg.A_signal _ -> env
    | Cfg.A_store (_, _, _) | Cfg.A_send (_, _) -> env
    | Cfg.A_assign (x, e) ->
      let v = if Sset.mem x volatile then top else eval ~volatile env e in
      set x v env
    | Cfg.A_recv (_, x) -> set x top env
    | Cfg.A_par_join _ -> env
    | Cfg.A_assume (cond, expected) -> (
      match (truthiness (eval ~volatile env cond), expected) with
      | False, true | True, false -> Unreachable
      | _ -> narrow ~volatile env cond expected))

(* The typed closed-expression evaluator behind the guard lint. The
   semantics here are pinned by the byte-for-byte guard-finding tests:
   integers and booleans never mix, [and]/[or] apply only to booleans,
   a zero divisor or any variable/index reference is non-constant. *)

type const = I of int | B of bool

let rec const_value (e : Ast.expr) =
  match e with
  | Ast.Int n -> Some (I n)
  | Ast.Bool b -> Some (B b)
  | Ast.Var _ | Ast.Index _ -> None
  | Ast.Unop (op, e) -> (
    match (op, const_value e) with
    | Ast.Neg, Some (I n) -> Some (I (-n))
    | Ast.Not, Some (B b) -> Some (B (not b))
    | _ -> None)
  | Ast.Binop (op, e1, e2) -> (
    match (const_value e1, const_value e2) with
    | Some (I a), Some (I b) -> (
      match op with
      | Ast.Add -> Some (I (a + b))
      | Ast.Sub -> Some (I (a - b))
      | Ast.Mul -> Some (I (a * b))
      | Ast.Div -> if b = 0 then None else Some (I (a / b))
      | Ast.Mod -> if b = 0 then None else Some (I (a mod b))
      | Ast.Eq -> Some (B (a = b))
      | Ast.Ne -> Some (B (a <> b))
      | Ast.Lt -> Some (B (a < b))
      | Ast.Le -> Some (B (a <= b))
      | Ast.Gt -> Some (B (a > b))
      | Ast.Ge -> Some (B (a >= b))
      | Ast.And | Ast.Or -> None)
    | Some (B a), Some (B b) -> (
      match op with
      | Ast.And -> Some (B (a && b))
      | Ast.Or -> Some (B (a || b))
      | Ast.Eq -> Some (B (a = b))
      | Ast.Ne -> Some (B (a <> b))
      | _ -> None)
    | _ -> None)

let const_bool e = match const_value e with Some (B b) -> Some b | _ -> None

let pp_bnd ppf = function
  | Ninf -> Format.pp_print_string ppf "-inf"
  | Pinf -> Format.pp_print_string ppf "+inf"
  | Fin n -> Format.pp_print_int ppf n

let pp_value ppf = function
  | Bot -> Format.pp_print_string ppf "_|_"
  | Itv (lo, hi) when lo = hi -> pp_bnd ppf lo
  | Itv (lo, hi) -> Format.fprintf ppf "[%a, %a]" pp_bnd lo pp_bnd hi
