(** The generic monotone-framework worklist solver.

    A dataflow problem is a finite graph whose edges carry monotone
    transfer functions over a join-semilattice, a direction, and an
    initial value at the entry (forward) or exit (backward) nodes. The
    solver computes the least fixpoint above the initial assignment by
    chaotic iteration; for domains with infinite ascending chains
    (intervals) it applies the domain's widening operator at the
    designated widening points — loop heads — which bounds the number of
    times any node can be revisited.

    The iteration order is configurable ({!solve}'s [order]): the
    fixpoint of a monotone problem is independent of the order in which
    the worklist is drained, and the test suite holds the solver to
    exactly that. *)

module type DOMAIN = sig
  type t

  val bottom : t
  (** The least element: "unreachable" / "no information yet". *)

  val join : t -> t -> t

  val widen : t -> t -> t
  (** [widen old next] must over-approximate [join old next] and
      guarantee that every chain [x0, widen x0 x1, widen (widen x0 x1)
      x2, ...] stabilises. Domains satisfying the ascending chain
      condition can use [join]. *)

  val equal : t -> t -> bool
end

type direction = Forward | Backward

module Make (D : DOMAIN) : sig
  type edge = { src : int; dst : int; transfer : D.t -> D.t }

  type graph = {
    node_count : int;  (** Nodes are [0 .. node_count - 1]. *)
    edges : edge list;
    entry : int list;
        (** Nodes seeded with [init]: roots in the chosen direction. *)
    widen_points : int list;
        (** Nodes where [D.widen] replaces [D.join] — loop heads. *)
  }

  type stats = { iterations : int; visits : int }
  (** [iterations] counts worklist pops; [visits] counts edge transfer
      applications. Both are exposed so benchmarks can report solver
      throughput and tests can bound widening behaviour. *)

  val solve :
    ?direction:direction ->
    ?order:(int -> int) ->
    graph ->
    init:D.t ->
    D.t array * stats
  (** [solve g ~init] returns the fixpoint state at every node. In the
      forward direction the state at [n] is the join over incoming edges
      [(u, f, n)] of [f state(u)]; backward flips every edge. [order]
      assigns each node a priority (smaller pops first) — any total
      function yields the same fixpoint, only [stats] may differ. *)
end
