(* The monotone-framework worklist solver. *)

module type DOMAIN = sig
  type t

  val bottom : t

  val join : t -> t -> t

  val widen : t -> t -> t

  val equal : t -> t -> bool
end

type direction = Forward | Backward

module Make (D : DOMAIN) = struct
  type edge = { src : int; dst : int; transfer : D.t -> D.t }

  type graph = {
    node_count : int;
    edges : edge list;
    entry : int list;
    widen_points : int list;
  }

  type stats = { iterations : int; visits : int }

  (* A binary heap keyed by [order] would be overkill: the graphs this
     engine sees are per-program CFGs (thousands of nodes at the most),
     so the ready set is a sorted association left to stdlib Set. *)
  module Iset = Set.Make (struct
    type t = int * int (* (priority, node) *)

    let compare = compare
  end)

  let solve ?(direction = Forward) ?(order = fun n -> n) g ~init =
    (* Orient the graph: in the backward direction every edge flips, so
       the rest of the algorithm is direction-agnostic. *)
    let edges =
      match direction with
      | Forward -> g.edges
      | Backward ->
        List.map (fun e -> { e with src = e.dst; dst = e.src }) g.edges
    in
    let succs = Array.make g.node_count [] in
    List.iter (fun e -> succs.(e.src) <- e :: succs.(e.src)) edges;
    let widen_at = Array.make g.node_count false in
    List.iter (fun n -> widen_at.(n) <- true) g.widen_points;
    let state = Array.make g.node_count D.bottom in
    List.iter (fun n -> state.(n) <- init) g.entry;
    let iterations = ref 0 in
    let visits = ref 0 in
    let queued = Array.make g.node_count false in
    let ready = ref Iset.empty in
    let push n =
      if not queued.(n) then begin
        queued.(n) <- true;
        ready := Iset.add (order n, n) !ready
      end
    in
    List.iter push g.entry;
    let rec drain () =
      match Iset.min_elt_opt !ready with
      | None -> ()
      | Some ((_, n) as key) ->
        ready := Iset.remove key !ready;
        queued.(n) <- false;
        incr iterations;
        List.iter
          (fun e ->
            incr visits;
            let contribution = e.transfer state.(n) in
            let current = state.(e.dst) in
            let next =
              if widen_at.(e.dst) then D.widen current contribution
              else D.join current contribution
            in
            if not (D.equal next current) then begin
              state.(e.dst) <- next;
              push e.dst
            end)
          succs.(n);
        drain ()
    in
    drain ();
    (state, { iterations = !iterations; visits = !visits })
end
