(** Control-flow graphs of while-language programs.

    Nodes are program points; edges carry the indivisible action taken
    between them, plus the set of variables {e volatile} on that edge —
    variables a sibling [cobegin] branch may write at any moment, which
    any sound sequential analysis of the branch must treat as unknown.

    Branch entries (then/else arms, loop bodies) are recorded so clients
    can ask "is this arm reachable in the fixpoint?" and map the answer
    back to source spans. Loop heads are exported as the widening points
    the solver needs. *)

module Ast = Ifc_lang.Ast
module Loc = Ifc_lang.Loc

type action =
  | A_skip
  | A_assign of string * Ast.expr
  | A_store of string * Ast.expr * Ast.expr
  | A_assume of Ast.expr * bool
      (** Guard edge of an [if]/[while]: taken when the condition
          evaluates truthy ([true]) or falsy ([false]). *)
  | A_wait of string
  | A_signal of string
  | A_send of string * Ast.expr
  | A_recv of string * string
  | A_par_join of Ifc_support.Sset.t
      (** Rejoin after a [cobegin]: the set is every variable some
          branch may have written. *)

type edge = {
  src : int;
  dst : int;
  action : action;
  volatile : Ifc_support.Sset.t;
  span : Loc.span;
      (** Span of the statement the action came from; {!Loc.dummy} on
          purely structural edges (joins, loop back-edges). *)
}

type arm = Then | Else | Loop_body

type branch = {
  b_arm : arm;
  b_entry : int;  (** Node at the arm's entry, after the assume edge. *)
  b_span : Loc.span;  (** Span of the arm statement itself. *)
  b_stmt_span : Loc.span;  (** Span of the enclosing [if]/[while]. *)
  b_guard : Ast.expr;
}

type t = {
  node_count : int;
  edges : edge list;
  entry : int;
  exit : int;
  branches : branch list;
  loop_heads : int list;
}

val of_program : Ast.program -> t

val of_stmt : Ast.stmt -> t
