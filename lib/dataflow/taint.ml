(* Provenance (taint) analysis: a second solver instantiation. *)

module Ast = Ifc_lang.Ast
module Smap = Ifc_support.Smap
module Sset = Ifc_support.Sset
module Vars = Ifc_lang.Vars

type state = Bot | St of Sset.t Smap.t * Sset.t

let self x = Sset.singleton x

(* Entries equal to the default [{x}] are dropped so that maps compare
   structurally. *)
let norm m = Smap.filter (fun x o -> not (Sset.equal o (self x))) m

let origins st x =
  match st with
  | Bot -> Sset.empty
  | St (m, _) -> ( match Smap.find_opt x m with Some o -> o | None -> self x)

module Dom = struct
  type t = state

  let bottom = Bot

  let join a b =
    match (a, b) with
    | Bot, s | s, Bot -> s
    | St (ma, pa), St (mb, pb) ->
      let m =
        Smap.merge
          (fun x oa ob ->
            let get = function Some o -> o | None -> self x in
            Some (Sset.union (get oa) (get ob)))
          ma mb
      in
      St (norm m, Sset.union pa pb)

  (* Origin sets are drawn from the finite variable population, so the
     ascending chain condition holds and join widens. *)
  let widen = join

  let equal a b =
    match (a, b) with
    | Bot, Bot -> true
    | St (ma, pa), St (mb, pb) -> Smap.equal Sset.equal ma mb && Sset.equal pa pb
    | _ -> false
end

let expr_origins st pc e =
  Sset.fold
    (fun y acc -> Sset.union (origins st y) acc)
    (Vars.expr_vars e) pc

let transfer (action : Cfg.action) st =
  match st with
  | Bot -> Bot
  | St (m, pc) -> (
    let set x o = St (norm (Smap.add x o m), pc) in
    match action with
    | Cfg.A_skip | Cfg.A_signal _ | Cfg.A_par_join _ -> st
    | Cfg.A_assign (x, e) -> set x (expr_origins st pc e)
    | Cfg.A_store (a, i, e) ->
      set a
        (Sset.union (origins st a)
           (Sset.union (expr_origins st pc i) (expr_origins st pc e)))
    | Cfg.A_assume (c, _) -> St (m, expr_origins st pc c)
    | Cfg.A_wait s -> St (m, Sset.add s pc)
    | Cfg.A_send (_, _) -> st
    | Cfg.A_recv (c, x) -> set x (Sset.add c pc))

module T = Solver.Make (Dom)

let analyze (p : Ast.program) =
  let cfg = Cfg.of_program p in
  let edges =
    List.map
      (fun (e : Cfg.edge) ->
        { T.src = e.Cfg.src; dst = e.Cfg.dst; transfer = transfer e.Cfg.action })
      cfg.Cfg.edges
  in
  let state, _ =
    T.solve
      {
        T.node_count = cfg.Cfg.node_count;
        edges;
        entry = [ cfg.Cfg.entry ];
        widen_points = cfg.Cfg.loop_heads;
      }
      ~init:(St (Smap.empty, Sset.empty))
  in
  state.(cfg.Cfg.exit)
