(* Witness chains: build a source→sink explanation for a rejection, and
   replay one against the mechanism to validate it. *)

module Ast = Ifc_lang.Ast
module Loc = Ifc_lang.Loc
module Sset = Ifc_support.Sset
module Vars = Ifc_lang.Vars
module Lattice = Ifc_lattice.Lattice
module Extended = Ifc_lattice.Extended
module Cfm = Ifc_core.Cfm
module Binding = Ifc_core.Binding
module Fs = Ifc_core.Flow_sensitive

type step = { w_span : Loc.span; w_var : string; w_rule : string }

type mode = Cfm_mode | Fs_mode

type t = {
  w_mode : mode;
  w_source : string list;
  w_steps : step list;
  w_sink_span : Loc.span;
  w_sink_rule : string;
  w_sink_var : string option;
}

let mode_name = function Cfm_mode -> "cfm" | Fs_mode -> "flow-sensitive"

(* ---- helpers over spans and the AST ---- *)

let pos_leq (a : Loc.pos) (b : Loc.pos) =
  a.Loc.line < b.Loc.line || (a.Loc.line = b.Loc.line && a.Loc.col <= b.Loc.col)

let span_contains (outer : Loc.span) (inner : Loc.span) =
  Loc.is_dummy outer || Loc.is_dummy inner
  || (pos_leq outer.Loc.start inner.Loc.start
     && pos_leq inner.Loc.stop outer.Loc.stop)

let span_precedes (a : Loc.span) (b : Loc.span) =
  Loc.is_dummy a || Loc.is_dummy b || pos_leq a.Loc.start b.Loc.start

let iter_stmts f (p : Ast.program) =
  let rec go (s : Ast.stmt) =
    f s;
    match s.Ast.node with
    | Ast.If (_, a, b) ->
      go a;
      go b
    | Ast.While (_, b) -> go b
    | Ast.Seq ss | Ast.Cobegin ss -> List.iter go ss
    | _ -> ()
  in
  go p.Ast.body

let find_stmt p span =
  if Loc.is_dummy span then None
  else begin
    let found = ref None in
    iter_stmts
      (fun s -> if !found = None && s.Ast.span = span then found := Some s)
      p;
    !found
  end

let stmt_exists_at p span = Loc.is_dummy span || find_stmt p span <> None

(* ---- building a chain from a failed CFM check ---- *)

(* Search a flow-producing region for a primitive contributor whose
   class is not below the sink's bound. If the joined flow violates the
   bound, some primitive contribution does (a join is below a class iff
   every joinand is): a wait's semaphore, a recv's channel, a loop
   guard, or the guard of a conditional whose branches leak a flow. The
   returned steps run source-first; enclosing constructs append
   propagation steps as the recursion unwinds. *)
let search_flow_origin binding ~bad stmt =
  let bad_vars vars =
    List.filter (fun y -> bad (Binding.sbind binding y)) (Sset.elements vars)
  in
  let rec search (s : Ast.stmt) =
    match s.Ast.node with
    | Ast.Wait sem when bad (Binding.sbind binding sem) ->
      Some
        ( [ { w_span = s.Ast.span;
              w_var = sem;
              w_rule = "wait: conditional delay is a global flow of sbind(s)";
            } ],
          [ sem ] )
    | Ast.Recv (chan, _) when bad (Binding.sbind binding chan) ->
      Some
        ( [ { w_span = s.Ast.span;
              w_var = chan;
              w_rule = "recv: conditional delivery is a global flow of sbind(c)";
            } ],
          [ chan ] )
    | Ast.While (cond, body) -> (
      match search body with
      | Some (steps, srcs) ->
        Some
          ( steps
            @ [ { w_span = s.Ast.span;
                  w_var = (match srcs with v :: _ -> v | [] -> "");
                  w_rule = "while: flow(S1) (+) sbind(e) propagates";
                } ],
            srcs )
      | None -> (
        match bad_vars (Vars.expr_vars cond) with
        | [] -> None
        | (v :: _) as vs ->
          Some
            ( [ { w_span = s.Ast.span;
                  w_var = v;
                  w_rule = "while: termination is conditional on sbind(e)";
                } ],
              vs )))
    | Ast.If (cond, then_, else_) -> (
      let propagate (steps, srcs) =
        ( steps
          @ [ { w_span = s.Ast.span;
                w_var = (match srcs with v :: _ -> v | [] -> "");
                w_rule = "if: escaping global flow joins sbind(e)";
              } ],
          srcs )
      in
      match search then_ with
      | Some r -> Some (propagate r)
      | None -> (
        match search else_ with
        | Some r -> Some (propagate r)
        | None -> (
          let leaks arm = not (Extended.is_nil (Cfm.flow_of binding arm)) in
          match bad_vars (Vars.expr_vars cond) with
          | (v :: _) as vs when leaks then_ || leaks else_ ->
            Some
              ( [ { w_span = s.Ast.span;
                    w_var = v;
                    w_rule = "if: escaping global flow reveals sbind(e)";
                  } ],
                vs )
          | _ -> None)))
    | Ast.Seq ss | Ast.Cobegin ss ->
      List.fold_left
        (fun acc s' -> match acc with Some _ -> acc | None -> search s')
        None ss
    | _ -> None
  in
  search stmt

(* For a [Seq_global i] check the flow region is the prefix of the
   enclosing sequence: the components before the one the check bounds
   (plus itself under the self-check reading). The check's span points
   at the bounded component, so locate the sequence holding it. *)
let find_seq_prefix p span i ~self_check =
  let found = ref None in
  iter_stmts
    (fun s ->
      match s.Ast.node with
      | Ast.Seq ss when !found = None ->
        (match List.nth_opt ss i with
        | Some si when si.Ast.span = span && not (Loc.is_dummy span) ->
          let take = if self_check then i + 1 else i in
          found := Some (List.filteri (fun j _ -> j < take) ss)
        | _ -> ())
      | _ -> ())
    p;
  !found

let cfm_chain ~self_check binding p (c : 'a Cfm.check) =
  let l = Binding.lattice binding in
  let bad cls = not (l.Lattice.leq cls c.Cfm.rhs) in
  let bad_vars vars =
    List.filter (fun y -> bad (Binding.sbind binding y)) (Sset.elements vars)
  in
  let direct ?sink_var vars =
    { w_mode = Cfm_mode;
      w_source = bad_vars vars;
      w_steps = [];
      w_sink_span = c.Cfm.span;
      w_sink_rule = Cfm.rule_name c.Cfm.rule;
      w_sink_var = sink_var;
    }
  in
  let of_region region =
    let steps, srcs =
      match
        List.fold_left
          (fun acc s ->
            match acc with
            | Some _ -> acc
            | None -> search_flow_origin binding ~bad s)
          None region
      with
      | Some r -> r
      | None -> ([], [])
    in
    { w_mode = Cfm_mode;
      w_source = srcs;
      w_steps = steps;
      w_sink_span = c.Cfm.span;
      w_sink_rule = Cfm.rule_name c.Cfm.rule;
      w_sink_var = None;
    }
  in
  let stmt = find_stmt p c.Cfm.span in
  match (c.Cfm.rule, stmt) with
  | Cfm.Assign_direct, Some { Ast.node = Ast.Assign (x, e); _ } ->
    direct ~sink_var:x (Vars.expr_vars e)
  | Cfm.Declassify_direct, Some { Ast.node = Ast.Declassify (x, _, _); _ } ->
    direct ~sink_var:x Sset.empty
  | Cfm.Store_direct, Some { Ast.node = Ast.Store (a, i, e); _ } ->
    direct ~sink_var:a (Sset.union (Vars.expr_vars i) (Vars.expr_vars e))
  | Cfm.Send_direct, Some { Ast.node = Ast.Send (chan, e); _ } ->
    direct ~sink_var:chan (Vars.expr_vars e)
  | Cfm.Recv_direct, Some { Ast.node = Ast.Recv (chan, x); _ } ->
    direct ~sink_var:x (Sset.singleton chan)
  | Cfm.If_local, Some { Ast.node = Ast.If (cond, _, _); _ } ->
    direct (Vars.expr_vars cond)
  | Cfm.While_global, Some ({ Ast.node = Ast.While (cond, body); _ } as w) -> (
    (* Search the body first; only then blame the guard, whose class
       always joins the loop's flow. *)
    match search_flow_origin binding ~bad body with
    | Some (steps, srcs) -> { (of_region []) with w_steps = steps; w_source = srcs }
    | None -> (
      match bad_vars (Vars.expr_vars cond) with
      | (v :: _) as vs ->
        { w_mode = Cfm_mode;
          w_source = vs;
          w_steps =
            [ { w_span = w.Ast.span;
                w_var = v;
                w_rule = "while: termination is conditional on sbind(e)";
              } ];
          w_sink_span = c.Cfm.span;
          w_sink_rule = Cfm.rule_name c.Cfm.rule;
          w_sink_var = None;
        }
      | [] -> of_region []))
  | Cfm.Seq_global i, _ -> (
    match find_seq_prefix p c.Cfm.span i ~self_check with
    | Some region -> of_region region
    | None -> of_region [])
  | _ ->
    (* Span not found (synthetic programs with dummy spans): fall back
       to a sourceless chain; replay then leans on the sink check. *)
    of_region []

let fs_chain binding p x =
  let exit_state = Taint.analyze p in
  let l = Binding.lattice binding in
  let target = Binding.sbind binding x in
  let sources =
    Sset.elements (Taint.origins exit_state x)
    |> List.filter (fun y -> not (l.Lattice.leq (Binding.sbind binding y) target))
  in
  let last_write = ref None in
  iter_stmts
    (fun s ->
      match s.Ast.node with
      | Ast.Assign (y, _) | Ast.Declassify (y, _, _) | Ast.Recv (_, y)
        when y = x ->
        last_write := Some s.Ast.span
      | _ -> ())
    p;
  let sink_span =
    match !last_write with Some sp -> sp | None -> p.Ast.body.Ast.span
  in
  { w_mode = Fs_mode;
    w_source = sources;
    w_steps =
      [ { w_span = sink_span;
          w_var = x;
          w_rule = "assign: current class = sbind(e) (+) pc (+) global";
        } ];
    w_sink_span = sink_span;
    w_sink_rule = "flow-sensitive: final(x) <= sbind(x)";
    w_sink_var = Some x;
  }

let explain ?(self_check = false) binding (p : Ast.program) =
  let r = Cfm.analyze_program ~self_check binding p in
  match Cfm.failed_checks r with
  | c :: _ -> Some (cfm_chain ~self_check binding p c)
  | [] -> (
    let fs = Fs.analyze binding p.Ast.body in
    match fs.Fs.violations with
    | (x, _) :: _ -> Some (fs_chain binding p x)
    | [] -> None)

(* ---- replay ---- *)

let chain_connected p chain =
  let steps_ok =
    List.for_all (fun st -> stmt_exists_at p st.w_span) chain.w_steps
  in
  let rec nested = function
    | a :: (b :: _ as rest) -> span_contains b.w_span a.w_span && nested rest
    | _ -> true
  in
  let sink_ok =
    match List.rev chain.w_steps with
    | [] -> true
    | last :: _ ->
      span_contains chain.w_sink_span last.w_span
      || span_precedes last.w_span chain.w_sink_span
  in
  steps_ok && nested chain.w_steps && sink_ok

let replay ?(self_check = false) binding (p : Ast.program) chain =
  let l = Binding.lattice binding in
  match chain.w_mode with
  | Cfm_mode -> (
    let r = Cfm.analyze_program ~self_check binding p in
    let sink =
      List.find_opt
        (fun (c : 'a Cfm.check) ->
          (not c.Cfm.ok)
          && Cfm.rule_name c.Cfm.rule = chain.w_sink_rule
          && (Loc.is_dummy chain.w_sink_span || c.Cfm.span = chain.w_sink_span))
        r.Cfm.checks
    in
    match sink with
    | None -> false
    | Some c ->
      let sources_ok =
        match chain.w_source with
        | [] ->
          (* Only a declassify (whose offending class is named, not
             carried by a variable) or a spanless synthetic program may
             omit sources. *)
          chain.w_sink_rule = Cfm.rule_name Cfm.Declassify_direct
          || chain.w_steps = []
        | srcs ->
          let joined =
            Lattice.joins l (List.map (Binding.sbind binding) srcs)
          in
          not (l.Lattice.leq joined c.Cfm.rhs)
      in
      sources_ok && chain_connected p chain)
  | Fs_mode -> (
    match chain.w_sink_var with
    | None -> false
    | Some x ->
      let fs = Fs.analyze binding p.Ast.body in
      List.exists (fun (y, _) -> y = x) fs.Fs.violations
      && (match chain.w_source with
         | [] -> true
         | srcs ->
           let target = Binding.sbind binding x in
           let joined =
             Lattice.joins l (List.map (Binding.sbind binding) srcs)
           in
           not (l.Lattice.leq joined target))
      && chain_connected p chain)

let pp ppf chain =
  Format.fprintf ppf "witness (%s): %s at %a" (mode_name chain.w_mode)
    chain.w_sink_rule Loc.pp chain.w_sink_span;
  (match chain.w_sink_var with
  | Some x -> Format.fprintf ppf " [%s]" x
  | None -> ());
  List.iteri
    (fun i st ->
      Format.fprintf ppf "@.  %d. %s" (i + 1) st.w_rule;
      if st.w_var <> "" then Format.fprintf ppf " (%s)" st.w_var;
      Format.fprintf ppf " at %a" Loc.pp st.w_span)
    chain.w_steps;
  match chain.w_source with
  | [] -> ()
  | srcs ->
    Format.fprintf ppf "@.  source: %s" (String.concat ", " srcs)
