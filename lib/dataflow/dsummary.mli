(** Per-module dataflow facts, rendered to a single line.

    The facts a module contributes to a linked lint — its statically
    unreachable arms and dead stores — depend only on the module body:
    the interval analysis starts from an unconstrained entry state, so
    whatever the linking context, the facts stay sound. That makes them
    cacheable through the store's summary seam (see
    [Ifc_modsys.Dflow]); this module is the context-free core — facts,
    their line round-trip, and re-application to an elaborated
    program — with no store dependency. *)

module Ast = Ifc_lang.Ast
module Loc = Ifc_lang.Loc

type fact_pruned = {
  f_arm : string;  (** ["then"], ["else"], or ["loop body"]. *)
  f_span : Loc.span;
  f_stmt_span : Loc.span;
  f_const : bool;
}

type t = {
  d_pruned : fact_pruned list;
  d_dead : (string * Loc.span) list;
}

val empty : t

val of_program : Ast.program -> t
(** Run {!Prune.analyze} and keep the facts. *)

val of_result : Prune.result -> t

val concat : t list -> t

val render : t -> string
(** One line, no newlines; [parse] inverts it. *)

val parse : string -> (t, string) result

val apply : Ast.program -> t -> Prune.result
(** Re-apply recorded facts to a program containing the summarized
    statements (an elaborated linked unit): arms whose spans are listed
    are rewritten to [skip], dead stores are carried over. Solver
    counters are zero — nothing was re-walked. *)
