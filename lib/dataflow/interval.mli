(** The constant + interval abstract domain.

    Values abstract the executor's machine integers ([Ifc_exec.Eval]):
    booleans are 0/1, truthiness is "nonzero". An interval claims that
    every non-faulting concrete evaluation lands inside it; operations
    whose native-int result could wrap return {!top} rather than an
    unsound tight bound.

    Environments map variables to values; an absent variable is
    unconstrained ({!top}), and {!Unreachable} is the bottom of the
    lattice — no execution reaches this point. Reads of {e volatile}
    variables (writable by a parallel sibling) always produce {!top},
    whatever the environment says, so the analysis stays sound under
    arbitrary interleaving. *)

module Ast = Ifc_lang.Ast

type bnd = Ninf | Fin of int | Pinf

type value = Bot | Itv of bnd * bnd

val top : value

val singleton : int -> value

val value_join : value -> value -> value

val value_widen : value -> value -> value

val value_equal : value -> value -> bool

val contains : value -> int -> bool

type truth = True | False | Maybe

val truthiness : value -> truth

(** {1 Environments} *)

type env = Unreachable | Env of value Ifc_support.Smap.t

val top_env : env

val lookup : volatile:Ifc_support.Sset.t -> env -> string -> value

val set : string -> value -> env -> env

(** The solver domain instance. *)
module Dom : Solver.DOMAIN with type t = env

val eval : volatile:Ifc_support.Sset.t -> env -> Ast.expr -> value
(** Abstract expression evaluation: for every store [s] with [s x ∈
    env(x)] for non-volatile [x], a non-faulting concrete evaluation is
    contained in the result. *)

val transfer : volatile:Ifc_support.Sset.t -> Cfg.action -> env -> env
(** One CFG action, including guard-edge feasibility: an [A_assume]
    whose condition cannot evaluate to the expected truthiness yields
    {!Unreachable}, and simple comparisons narrow the tested variable. *)

(** {1 Closed-expression constant evaluation}

    The typed evaluator the guard lint has always used: integers and
    booleans kept apart, division by zero and any variable reference
    make the result non-constant. [Guards] delegates here, and the lint
    messages it produces are pinned byte-for-byte by the tests. *)

type const = I of int | B of bool

val const_value : Ast.expr -> const option

val const_bool : Ast.expr -> bool option
(** [Some b] only when the expression is a constant {e boolean}; a
    constant integer guard is deliberately not "constant" to the lint. *)

val pp_value : Format.formatter -> value -> unit
