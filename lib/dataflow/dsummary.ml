(* Dataflow facts as a storable line. *)

module Ast = Ifc_lang.Ast
module Loc = Ifc_lang.Loc

type fact_pruned = {
  f_arm : string;
  f_span : Loc.span;
  f_stmt_span : Loc.span;
  f_const : bool;
}

type t = {
  d_pruned : fact_pruned list;
  d_dead : (string * Loc.span) list;
}

let empty = { d_pruned = []; d_dead = [] }

let of_result (r : Prune.result) =
  {
    d_pruned =
      List.map
        (fun (pr : Prune.pruned) ->
          {
            f_arm = Prune.arm_name pr.Prune.p_arm;
            f_span = pr.Prune.p_span;
            f_stmt_span = pr.Prune.p_stmt_span;
            f_const = pr.Prune.p_const_guard;
          })
        r.Prune.pruned;
    d_dead = r.Prune.dead_stores;
  }

let of_program p = of_result (Prune.analyze p)

let concat ts =
  {
    d_pruned = List.concat_map (fun t -> t.d_pruned) ts;
    d_dead = List.concat_map (fun t -> t.d_dead) ts;
  }

(* ---- line round-trip ----

   dataflow 1|pruned=ARM,SPAN,SPAN,0or1;...|dead=VAR,SPAN;...
   where SPAN is line.col-line.col. Arm names contain a space ("loop
   body"), never the separators. *)

let render_span (s : Loc.span) =
  Printf.sprintf "%d.%d-%d.%d" s.Loc.start.Loc.line s.Loc.start.Loc.col
    s.Loc.stop.Loc.line s.Loc.stop.Loc.col

let parse_span str =
  match String.split_on_char '-' str with
  | [ a; b ] -> (
    let pos s =
      match String.split_on_char '.' s with
      | [ l; c ] -> (
        match (int_of_string_opt l, int_of_string_opt c) with
        | Some line, Some col -> Some { Loc.line; Loc.col }
        | _ -> None)
      | _ -> None
    in
    match (pos a, pos b) with
    | Some start, Some stop -> Ok { Loc.start; Loc.stop }
    | _ -> Error ("bad position in span " ^ str))
  | _ -> Error ("bad span " ^ str)

let render t =
  let pruned =
    String.concat ";"
      (List.map
         (fun f ->
           Printf.sprintf "%s,%s,%s,%d" f.f_arm (render_span f.f_span)
             (render_span f.f_stmt_span)
             (if f.f_const then 1 else 0))
         t.d_pruned)
  in
  let dead =
    String.concat ";"
      (List.map
         (fun (x, sp) -> Printf.sprintf "%s,%s" x (render_span sp))
         t.d_dead)
  in
  Printf.sprintf "dataflow 1|pruned=%s|dead=%s" pruned dead

let ( let* ) = Result.bind

let parse line =
  match String.split_on_char '|' line with
  | [ "dataflow 1"; pruned_f; dead_f ] ->
    let strip prefix s =
      if String.length s >= String.length prefix
         && String.sub s 0 (String.length prefix) = prefix
      then Ok (String.sub s (String.length prefix) (String.length s - String.length prefix))
      else Error ("expected " ^ prefix ^ "... in dataflow facts")
    in
    let items s =
      if s = "" then [] else String.split_on_char ';' s
    in
    let* pruned_s = strip "pruned=" pruned_f in
    let* dead_s = strip "dead=" dead_f in
    let* d_pruned =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match String.split_on_char ',' item with
          | [ arm; sp; ssp; c ] ->
            let* f_span = parse_span sp in
            let* f_stmt_span = parse_span ssp in
            Ok ({ f_arm = arm; f_span; f_stmt_span; f_const = c = "1" } :: acc)
          | _ -> Error ("bad pruned fact " ^ item))
        (Ok []) (items pruned_s)
    in
    let* d_dead =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          match String.split_on_char ',' item with
          | [ x; sp ] ->
            let* span = parse_span sp in
            Ok ((x, span) :: acc)
          | _ -> Error ("bad dead-store fact " ^ item))
        (Ok []) (items dead_s)
    in
    Ok { d_pruned = List.rev d_pruned; d_dead = List.rev d_dead }
  | _ -> Error "not a dataflow facts line"

let apply (p : Ast.program) t =
  let arm_of = function
    | "then" -> Cfg.Then
    | "else" -> Cfg.Else
    | _ -> Cfg.Loop_body
  in
  let listed span =
    (not (Loc.is_dummy span))
    && List.exists (fun f -> f.f_span = span) t.d_pruned
  in
  let skip_of (s : Ast.stmt) = { s with Ast.node = Ast.Skip } in
  let rec walk (s : Ast.stmt) =
    match s.Ast.node with
    | Ast.If (c, a, b) ->
      let a' = if listed a.Ast.span then skip_of a else walk a in
      let b' = if listed b.Ast.span then skip_of b else walk b in
      { s with Ast.node = Ast.If (c, a', b') }
    | Ast.While (c, body) ->
      let body' = if listed body.Ast.span then skip_of body else walk body in
      { s with Ast.node = Ast.While (c, body') }
    | Ast.Seq ss -> { s with Ast.node = Ast.Seq (List.map walk ss) }
    | Ast.Cobegin ss -> { s with Ast.node = Ast.Cobegin (List.map walk ss) }
    | _ -> s
  in
  {
    Prune.program = { p with Ast.body = walk p.Ast.body };
    pruned =
      List.map
        (fun f ->
          {
            Prune.p_arm = arm_of f.f_arm;
            p_span = f.f_span;
            p_stmt_span = f.f_stmt_span;
            p_const_guard = f.f_const;
          })
        t.d_pruned;
    dead_stores = t.d_dead;
    iterations = 0;
    visits = 0;
  }
