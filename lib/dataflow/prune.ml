(* Infeasible-path pruning + dead-store detection. *)

module Ast = Ifc_lang.Ast
module Loc = Ifc_lang.Loc
module Sset = Ifc_support.Sset
module Vars = Ifc_lang.Vars

type pruned = {
  p_arm : Cfg.arm;
  p_span : Loc.span;
  p_stmt_span : Loc.span;
  p_const_guard : bool;
}

type result = {
  program : Ast.program;
  pruned : pruned list;
  dead_stores : (string * Loc.span) list;
  iterations : int;
  visits : int;
}

let arm_name = function
  | Cfg.Then -> "then"
  | Cfg.Else -> "else"
  | Cfg.Loop_body -> "loop body"

module Intervals = Solver.Make (Interval.Dom)

let interval_fixpoint (cfg : Cfg.t) =
  let edges =
    List.map
      (fun (e : Cfg.edge) ->
        {
          Intervals.src = e.Cfg.src;
          dst = e.Cfg.dst;
          transfer = Interval.transfer ~volatile:e.Cfg.volatile e.Cfg.action;
        })
      cfg.Cfg.edges
  in
  Intervals.solve
    {
      Intervals.node_count = cfg.Cfg.node_count;
      edges;
      entry = [ cfg.Cfg.entry ];
      widen_points = cfg.Cfg.loop_heads;
    }
    ~init:Interval.top_env

(* Rewrite unreachable arms to [skip], preserving each arm's span so
   guard findings and error positions are unchanged. The CFG records
   branches in the order a pre-order AST walk meets them, so a cursor
   keeps the two in lockstep; arms nested inside a pruned arm have
   their records consumed silently (they are unreachable only because
   the enclosing arm is, and reporting them would be noise). *)
let rewrite (p : Ast.program) (cfg : Cfg.t) state =
  let branches = Array.of_list cfg.Cfg.branches in
  let cursor = ref 0 in
  let take () =
    let b = branches.(!cursor) in
    incr cursor;
    b
  in
  let dead (b : Cfg.branch) =
    match state.(b.Cfg.b_entry) with
    | Interval.Unreachable -> true
    | Interval.Env _ -> false
  in
  let reported = ref [] in
  let report (b : Cfg.branch) =
    reported :=
      {
        p_arm = b.Cfg.b_arm;
        p_span = b.Cfg.b_span;
        p_stmt_span = b.Cfg.b_stmt_span;
        p_const_guard = Interval.const_bool b.Cfg.b_guard <> None;
      }
      :: !reported
  in
  let rec consume (s : Ast.stmt) =
    match s.Ast.node with
    | Ast.If (_, a, b) ->
      cursor := !cursor + 2;
      consume a;
      consume b
    | Ast.While (_, body) ->
      incr cursor;
      consume body
    | Ast.Seq ss | Ast.Cobegin ss -> List.iter consume ss
    | _ -> ()
  in
  let skip_of (s : Ast.stmt) = { s with Ast.node = Ast.Skip } in
  let rec walk (s : Ast.stmt) =
    match s.Ast.node with
    | Ast.If (cond, then_, else_) ->
      let bt = take () in
      let be = take () in
      let arm b arm_stmt =
        if dead b then begin
          report b;
          consume arm_stmt;
          skip_of arm_stmt
        end
        else walk arm_stmt
      in
      let then_' = arm bt then_ in
      let else_' = arm be else_ in
      { s with Ast.node = Ast.If (cond, then_', else_') }
    | Ast.While (cond, body) ->
      let bb = take () in
      let body' =
        if dead bb then begin
          report bb;
          consume body;
          skip_of body
        end
        else walk body
      in
      { s with Ast.node = Ast.While (cond, body') }
    | Ast.Seq ss -> { s with Ast.node = Ast.Seq (List.map walk ss) }
    | Ast.Cobegin ss -> { s with Ast.node = Ast.Cobegin (List.map walk ss) }
    | _ -> s
  in
  let body = walk p.Ast.body in
  ({ p with Ast.body }, List.rev !reported)

(* Backward liveness over variable sets; the domain is finite so join
   doubles as widening. Programs with at most 62 variables — all of
   them, in practice — run on an int-bitmask domain; larger ones fall
   back to string sets. *)
module Live_dom = struct
  type t = Sset.t

  let bottom = Sset.empty

  let join = Sset.union

  let widen = Sset.union

  let equal = Sset.equal
end

module Liveness = Solver.Make (Live_dom)

module Bit_dom = struct
  type t = int

  let bottom = 0

  let join = ( lor )

  let widen = ( lor )

  let equal (a : int) b = a = b
end

module Bitlive = Solver.Make (Bit_dom)

let gen (action : Cfg.action) =
  match action with
  | Cfg.A_skip | Cfg.A_wait _ | Cfg.A_signal _ | Cfg.A_par_join _ -> Sset.empty
  | Cfg.A_assign (_, e) -> Vars.expr_vars e
  | Cfg.A_store (a, i, e) ->
    Sset.add a (Sset.union (Vars.expr_vars i) (Vars.expr_vars e))
  | Cfg.A_assume (c, _) -> Vars.expr_vars c
  | Cfg.A_send (_, e) -> Vars.expr_vars e
  | Cfg.A_recv (_, _) -> Sset.empty

let kill (action : Cfg.action) =
  match action with
  | Cfg.A_assign (x, _) | Cfg.A_recv (_, x) -> Some x
  | _ -> None

(* Liveness over string sets: the general fallback for programs with
   more variables than an int has bits. *)
let live_by_set (cfg : Cfg.t) init_vars =
  let edges =
    List.map
      (fun (e : Cfg.edge) ->
        let g = gen e.Cfg.action and k = kill e.Cfg.action in
        {
          Liveness.src = e.Cfg.src;
          dst = e.Cfg.dst;
          transfer =
            (fun out ->
              let out =
                match k with Some x -> Sset.remove x out | None -> out
              in
              Sset.union g out);
        })
      cfg.Cfg.edges
  in
  let state, _ =
    Liveness.solve ~direction:Solver.Backward
      {
        Liveness.node_count = cfg.Cfg.node_count;
        edges;
        entry = [ cfg.Cfg.exit ];
        widen_points = [];
      }
      ~init:init_vars
  in
  fun node x -> Sset.mem x state.(node)

(* Liveness over int bitmasks: each variable gets a bit, transfer is
   two word ops, join is [lor]. Valid whenever every mentioned variable
   fits in an OCaml int. *)
let live_by_bits (cfg : Cfg.t) init_vars mentioned =
  let index = Hashtbl.create 16 in
  let next = ref 0 in
  Sset.iter
    (fun x ->
      Hashtbl.add index x !next;
      incr next)
    mentioned;
  let bit x = 1 lsl Hashtbl.find index x in
  let mask s = Sset.fold (fun x acc -> acc lor bit x) s 0 in
  let edges =
    List.map
      (fun (e : Cfg.edge) ->
        let g = mask (gen e.Cfg.action) in
        let keep =
          match kill e.Cfg.action with
          | Some x -> lnot (bit x)
          | None -> -1
        in
        {
          Bitlive.src = e.Cfg.src;
          dst = e.Cfg.dst;
          transfer = (fun out -> out land keep lor g);
        })
      cfg.Cfg.edges
  in
  let state, _ =
    Bitlive.solve ~direction:Solver.Backward
      {
        Bitlive.node_count = cfg.Cfg.node_count;
        edges;
        entry = [ cfg.Cfg.exit ];
        widen_points = [];
      }
      ~init:(mask init_vars)
  in
  fun node x -> state.(node) land bit x <> 0

let dead_store_pass ?cfg (p : Ast.program) =
  let cfg = match cfg with Some c -> c | None -> Cfg.of_program p in
  let ints, arrays, _, _ = Vars.declared p in
  let all_vars = Sset.union ints arrays in
  let mentioned =
    List.fold_left
      (fun acc (e : Cfg.edge) ->
        let acc = Sset.union acc (gen e.Cfg.action) in
        match kill e.Cfg.action with
        | Some x -> Sset.add x acc
        | None -> acc)
      all_vars cfg.Cfg.edges
  in
  let live =
    if Sset.cardinal mentioned <= 62 then live_by_bits cfg all_vars mentioned
    else live_by_set cfg all_vars
  in
  (* Anything a cobegin touches may be read at any interleaving point
     by a sibling; never call its stores dead. *)
  let pinned = ref Sset.empty in
  let rec pin in_par (s : Ast.stmt) =
    match s.Ast.node with
    | Ast.Cobegin ss ->
      List.iter
        (fun b ->
          pinned := Sset.union !pinned (Sset.union (Vars.read b) (Vars.modified b));
          pin true b)
        ss
    | Ast.If (_, a, b) ->
      pin in_par a;
      pin in_par b
    | Ast.While (_, b) -> pin in_par b
    | Ast.Seq ss -> List.iter (pin in_par) ss
    | _ -> ()
  in
  pin false p.Ast.body;
  let dead = ref [] in
  List.iter
    (fun (e : Cfg.edge) ->
      match e.Cfg.action with
      | Cfg.A_assign (x, _)
        when (not (live e.Cfg.dst x)) && not (Sset.mem x !pinned) ->
        dead := (x, e.Cfg.span) :: !dead
      | _ -> ())
    cfg.Cfg.edges;
  List.rev !dead

let analyze (p : Ast.program) =
  let cfg = Cfg.of_program p in
  (* No branches means nothing can be infeasible: skip the interval
     fixpoint and go straight to liveness on the same CFG. *)
  if cfg.Cfg.branches = [] then
    {
      program = p;
      pruned = [];
      dead_stores = dead_store_pass ~cfg p;
      iterations = 0;
      visits = 0;
    }
  else
    let state, stats = interval_fixpoint cfg in
    let program, pruned = rewrite p cfg state in
    (* An unchanged program keeps its CFG; only a rewritten one needs a
       fresh graph for the liveness pass. *)
    let dead_stores =
      if pruned = [] then dead_store_pass ~cfg program
      else dead_store_pass program
    in
    {
      program;
      pruned;
      dead_stores;
      iterations = stats.Intervals.iterations;
      visits = stats.Intervals.visits;
    }
