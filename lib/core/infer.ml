(* Symbolic constraint extraction and least-binding inference. *)

module Lattice = Ifc_lattice.Lattice
module Smap = Ifc_support.Smap
module Sset = Ifc_support.Sset
module Ast = Ifc_lang.Ast

type atom =
  | Const_low
  | Const_named of string  (** A class named in the program (declassify). *)
  | Class of string

type constr = {
  span : Ifc_lang.Loc.span;
  rule : Cfm.rule;
  lhs : atom list;
  rhs : string;
}

let rec expr_atoms = function
  | Ast.Int _ | Ast.Bool _ -> [ Const_low ]
  | Ast.Var x -> [ Class x ]
  | Ast.Index (a, i) -> Class a :: expr_atoms i
  | Ast.Unop (_, e) -> expr_atoms e
  | Ast.Binop (_, a, b) -> expr_atoms a @ expr_atoms b

let atom_compare a b =
  match (a, b) with
  | Const_low, Const_low -> 0
  | Const_low, _ -> -1
  | _, Const_low -> 1
  | Const_named x, Const_named y -> String.compare x y
  | Const_named _, Class _ -> -1
  | Class _, Const_named _ -> 1
  | Class x, Class y -> String.compare x y

let norm_atoms atoms =
  let atoms = List.sort_uniq atom_compare atoms in
  match
    List.filter (function Class _ | Const_named _ -> true | Const_low -> false) atoms
  with
  | [] -> [ Const_low ]
  | keep -> keep

(* Symbolic flow: [None] is Figure 2's nil. Merges normalise so atom
   lists stay bounded by the variable count, not the program length. *)
let flow_merge f1 f2 =
  match (f1, f2) with
  | None, f | f, None -> f
  | Some a, Some b -> Some (norm_atoms (a @ b))

let constraints ?(self_check = false) stmt =
  let out = ref [] in
  let emit span rule lhs mod_set =
    let lhs = norm_atoms lhs in
    (* A constraint bounded by an empty mod (mod = top) always holds. *)
    Sset.iter (fun v -> out := { span; rule; lhs; rhs = v } :: !out) mod_set
  in
  (* Returns (modified-variable set, symbolic flow). *)
  let rec go (s : Ast.stmt) =
    match s.node with
    | Ast.Skip -> (Sset.empty, None)
    | Ast.Assign (x, e) ->
      out := { span = s.span; rule = Cfm.Assign_direct; lhs = norm_atoms (expr_atoms e); rhs = x } :: !out;
      (Sset.singleton x, None)
    | Ast.Declassify (x, _, cls) ->
      out :=
        { span = s.span; rule = Cfm.Declassify_direct; lhs = [ Const_named cls ]; rhs = x }
        :: !out;
      (Sset.singleton x, None)
    | Ast.Store (a, i, e) ->
      out :=
        { span = s.span; rule = Cfm.Store_direct;
          lhs = norm_atoms (expr_atoms i @ expr_atoms e); rhs = a }
        :: !out;
      (Sset.singleton a, None)
    | Ast.Wait sem -> (Sset.singleton sem, Some [ Class sem ])
    | Ast.Signal sem -> (Sset.singleton sem, None)
    | Ast.Send (chan, e) ->
      out :=
        { span = s.span; rule = Cfm.Send_direct; lhs = norm_atoms (expr_atoms e);
          rhs = chan }
        :: !out;
      (Sset.singleton chan, None)
    | Ast.Recv (chan, x) ->
      out :=
        { span = s.span; rule = Cfm.Recv_direct; lhs = [ Class chan ]; rhs = x }
        :: !out;
      (Sset.add x (Sset.singleton chan), Some [ Class chan ])
    | Ast.If (cond, then_, else_) ->
      let m1, f1 = go then_ in
      let m2, f2 = go else_ in
      let mod_set = Sset.union m1 m2 in
      emit s.span Cfm.If_local (expr_atoms cond) mod_set;
      let flow =
        match flow_merge f1 f2 with
        | None -> None
        | Some atoms -> Some (atoms @ expr_atoms cond)
      in
      (mod_set, flow)
    | Ast.While (cond, body) ->
      let m1, f1 = go body in
      let flow_atoms = Option.value f1 ~default:[] @ expr_atoms cond in
      emit s.span Cfm.While_global flow_atoms m1;
      (m1, Some flow_atoms)
    | Ast.Seq stmts ->
      (* Prefix-join form, mirroring Cfm.traverse: one constraint per
         component bounding the join of all earlier flows. *)
      let _, _, mod_set, flow =
        List.fold_left
          (fun (i, prefix, mods, flow) s' ->
            let m, f = go s' in
            let to_check = if self_check then flow_merge prefix f else prefix in
            (match to_check with
            | None -> ()
            | Some atoms -> emit s'.Ast.span (Cfm.Seq_global i) atoms m);
            (* Normalise the running prefix so its atom list stays bounded
               by the variable count rather than the block length. *)
            let prefix' = Option.map norm_atoms (flow_merge prefix f) in
            (i + 1, prefix', Sset.union mods m, flow_merge flow f))
          (0, None, Sset.empty, None) stmts
      in
      (mod_set, flow)
    | Ast.Cobegin branches ->
      let results = List.map go branches in
      let mod_set = List.fold_left (fun acc (m, _) -> Sset.union acc m) Sset.empty results in
      let flow = List.fold_left (fun acc (_, f) -> flow_merge acc f) None results in
      (mod_set, flow)
  in
  let _ = go stmt in
  List.rev !out

let pp_atom ppf = function
  | Const_low -> Fmt.string ppf "low"
  | Const_named c -> Fmt.string ppf c
  | Class v -> Fmt.pf ppf "sbind(%s)" v

let pp_constr ppf c =
  Fmt.pf ppf "%a <= sbind(%s)" (Fmt.list ~sep:(Fmt.any " (+) ") pp_atom) c.lhs c.rhs

type 'a conflict = { constr : constr; actual : 'a; allowed : 'a }

let solve (l : 'a Lattice.t) ~fixed constrs =
  let fixed_map = Smap.of_list fixed in
  let value env = function
    | Const_low -> l.Lattice.bottom
    | Const_named c -> (
      match l.Lattice.of_string c with Ok x -> x | Error _ -> l.Lattice.top)
    | Class v -> Smap.find_or ~default:l.Lattice.bottom v env
  in
  let env =
    (* Free variables start at bottom; fixed ones at their given class. *)
    List.fold_left (fun env (v, c) -> Smap.add v c env) Smap.empty fixed
  in
  (* Kleene iteration: the left-hand sides only grow, so a violation of a
     fixed bound observed at any point is permanent and reported. *)
  let conflict = ref None in
  let step env =
    List.fold_left
      (fun (env, changed) c ->
        if Option.is_some !conflict then (env, changed)
        else
          let lhs_value = Lattice.joins l (List.map (value env) c.lhs) in
          let rhs_value = value env (Class c.rhs) in
          if l.Lattice.leq lhs_value rhs_value then (env, changed)
          else
            match Smap.find_opt c.rhs fixed_map with
            | Some allowed ->
              conflict := Some { constr = c; actual = lhs_value; allowed };
              (env, changed)
            | None -> (Smap.add c.rhs (l.Lattice.join rhs_value lhs_value) env, true))
      (env, false) constrs
  in
  let rec fixpoint env =
    let env, changed = step env in
    match !conflict with
    | Some c -> Error c
    | None -> if changed then fixpoint env else Ok env
  in
  fixpoint env

let infer ?self_check (l : 'a Lattice.t) ~fixed (p : Ast.program) =
  let constrs = constraints ?self_check p.body in
  Result.map
    (fun env -> Binding.make l (Smap.bindings env))
    (solve l ~fixed constrs)
