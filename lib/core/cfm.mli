(** The Concurrent Flow Mechanism (paper §4.2, Figure 2).

    For a statement [S] and a static binding, CFM computes:

    - [mod S] — the greatest lower bound of the bindings of variables
      potentially modified by [S] (Definition 5a);
    - [flow S] — the least upper bound of the global flows produced by [S],
      valued in the extended scheme with [nil] meaning "no global flow"
      (Definition 5b);
    - [cert S] — whether [S] specifies no flow violating the binding
      (Definition 5c),

    by a single post-order pass, hence in time linear in the program length
    (the paper's §6 complexity claim; see the scaling benchmarks).

    [analyze] retains every individual certification check so reports can
    say exactly which constraint failed and where; [certified] is the bare
    boolean for hot paths.

    The composition rule is implemented with the [j < i] reading of
    Figure 2's side condition (matching the appendix proofs); pass
    [~self_check:true] for the literal [j <= i] reading, which additionally
    requires each statement's own global flow to be bounded by its own
    [mod]. See DESIGN.md §3. *)

module Extended = Ifc_lattice.Extended

(** One primitive certification check: [lhs <= rhs] in the extended
    scheme, with enough context to render a diagnostic. *)
type 'a check = {
  span : Ifc_lang.Loc.span;  (** The statement that required the check. *)
  rule : rule;  (** Which Figure 2 clause produced it. *)
  lhs : 'a Extended.elt;
  rhs : 'a;
  ok : bool;
}

and rule =
  | Assign_direct  (** [sbind(e) <= sbind(x)]. *)
  | Declassify_direct
      (** [C <= sbind(x)] for [x := declassify e to C]: the named class
          stands in for [sbind(e)]. Unresolvable class names fail as the
          lattice top. *)
  | Store_direct
      (** [sbind(i) (+) sbind(e) <= sbind(a)] for [a\[i\] := e]: the index
          flows into the array — which slot changed is information
          (Denning & Denning's array treatment). *)
  | Send_direct
      (** [sbind(e) <= sbind(c)] for [send(c, e)]: the payload flows into
          the channel. A send is otherwise signal-like — [mod] is
          [sbind(c)], so the surrounding context checks bound every
          potential sender's global flow by the channel's class. *)
  | Recv_direct
      (** [sbind(c) <= sbind(x)] for [recv(c, x)]: the delivered message
          (whose class the send rule capped at [sbind(c)]) flows into [x].
          A recv is otherwise wait-like — its conditional delay is a
          global flow of the channel's class. *)
  | If_local  (** [sbind(e) <= mod(S)]. *)
  | While_global  (** [flow(S) <= mod(S1)]. *)
  | Seq_global of int
      (** [i]: [(+)_(j<i) flow(Sj) <= mod(Si)], 0-based — the prefix-join
          form of Figure 2's pairwise [flow(Sj) <= mod(Si)] conditions,
          equivalent because a join is below a class iff every joinand is,
          and linear instead of quadratic in the block length. *)

(** The result of analysing one statement (Definition 5's three
    functions, plus the full check list in evaluation order). *)
type 'a result = {
  certified : bool;
  mod_ : 'a;
  flow : 'a Extended.elt;
  checks : 'a check list;
}

val rule_name : rule -> string

val check_outcome : 'a Ifc_lattice.Lattice.t -> 'a Extended.elt -> 'a -> bool
(** [check_outcome l lhs rhs] decides [lhs <= rhs] with [lhs] in the
    extended scheme ([Nil] always passes). Shared with {!Denning}. *)

val analyze :
  ?self_check:bool ->
  'a Binding.t ->
  Ifc_lang.Ast.stmt ->
  'a result
(** [analyze b s] runs CFM on [s] under binding [b]. *)

val certified : ?self_check:bool -> 'a Binding.t -> Ifc_lang.Ast.stmt -> bool
(** [certified b s] is [cert(S)] alone — no check list is accumulated, so
    this is the function to benchmark and to call in search loops. *)

val mod_of : 'a Binding.t -> Ifc_lang.Ast.stmt -> 'a
(** [mod_of b s] is Definition 5a's [mod(S)]. For a statement modifying
    nothing (e.g. [skip]) it is the lattice top: every flow into "nothing"
    is acceptable. *)

val flow_of : 'a Binding.t -> Ifc_lang.Ast.stmt -> 'a Extended.elt
(** [flow_of b s] is Definition 5b's [flow(S)]. *)

val failed_checks : 'a result -> 'a check list

val analyze_program :
  ?self_check:bool -> 'a Binding.t -> Ifc_lang.Ast.program -> 'a result
(** [analyze_program b p] analyses the body of [p]. *)
