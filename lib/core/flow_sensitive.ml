(* Flow-sensitive certification: forward abstract interpretation over the
   information state. See the interface for the design and the
   concurrency degradation rule. *)

module Lattice = Ifc_lattice.Lattice
module Extended = Ifc_lattice.Extended
module Smap = Ifc_support.Smap
module Sset = Ifc_support.Sset
module Ast = Ifc_lang.Ast

type 'a state = { classes : 'a Smap.t; global : 'a }

type 'a result = {
  accepted : bool;
  final : 'a state;
  violations : (string * 'a) list;
}

let rec expr_class (l : 'a Lattice.t) classes = function
  | Ast.Int _ | Ast.Bool _ -> l.Lattice.bottom
  | Ast.Var x -> Smap.find_or ~default:l.Lattice.bottom x classes
  | Ast.Index (a, i) ->
    l.Lattice.join
      (Smap.find_or ~default:l.Lattice.bottom a classes)
      (expr_class l classes i)
  | Ast.Unop (_, e) -> expr_class l classes e
  | Ast.Binop (_, a, b) ->
    l.Lattice.join (expr_class l classes a) (expr_class l classes b)

let join_states (l : 'a Lattice.t) a b =
  {
    classes =
      Smap.union (fun _ x y -> Some (l.Lattice.join x y)) a.classes b.classes;
    global = l.Lattice.join a.global b.global;
  }

let state_equal (l : 'a Lattice.t) a b =
  l.Lattice.equal a.global b.global && Smap.equal l.Lattice.equal a.classes b.classes

let analyze binding stmt =
  let l = Binding.lattice binding in
  let join = l.Lattice.join in
  let ok = ref true in
  (* The conservative cobegin rule: every read must currently be at or
     below its binding, the context must be bounded by the statement's
     mod, and the statement itself must pass CFM; afterwards modified
     variables sit at their bindings and the global class absorbs the
     statement's flow. *)
  let enter_cobegin ~pc st (s : Ast.stmt) =
    let reads = Ifc_lang.Vars.read s in
    let entry_ok =
      Sset.for_all
        (fun v ->
          l.Lattice.leq
            (Smap.find_or ~default:l.Lattice.bottom v st.classes)
            (Binding.sbind binding v))
        reads
    in
    let mod_s = Cfm.mod_of binding s in
    let context_ok = l.Lattice.leq (join pc st.global) mod_s in
    if not (entry_ok && context_ok && Cfm.certified binding s) then ok := false;
    let classes =
      Sset.fold
        (fun v classes -> Smap.add v (Binding.sbind binding v) classes)
        (Ifc_lang.Vars.modified s) st.classes
    in
    let flow = Extended.get ~default:l.Lattice.bottom (Cfm.flow_of binding s) in
    { classes; global = join st.global flow }
  in
  let rec go ~pc st (s : Ast.stmt) =
    match s.Ast.node with
    | Ast.Skip -> st
    | Ast.Assign (x, e) ->
      let c = join (expr_class l st.classes e) (join pc st.global) in
      { st with classes = Smap.add x c st.classes }
    | Ast.Declassify (x, _, cls) ->
      (* Data declassified to the named class; context still applies. *)
      let named =
        match l.Lattice.of_string cls with Ok c -> c | Error _ -> l.Lattice.top
      in
      let c = join named (join pc st.global) in
      { st with classes = Smap.add x c st.classes }
    | Ast.Store (a, i, e) ->
      (* Weak update: other slots keep their information, so the array's
         class only grows; the index joins in (which slot changed is
         information). *)
      let stored =
        join (expr_class l st.classes i)
          (join (expr_class l st.classes e) (join pc st.global))
      in
      let old = Smap.find_or ~default:l.Lattice.bottom a st.classes in
      { st with classes = Smap.add a (join old stored) st.classes }
    | Ast.If (cond, then_, else_) ->
      let c = expr_class l st.classes cond in
      let pc' = join pc c in
      join_states l (go ~pc:pc' st then_) (go ~pc:pc' st else_)
    | Ast.While (cond, body) ->
      (* Kleene iteration; monotone over a finite lattice, so it
         terminates. Entering the loop is a conditional-termination event:
         global absorbs the condition's (current) class. *)
      let rec fix st =
        let c = expr_class l st.classes cond in
        let st = { st with global = join st.global (join pc c) } in
        let st' = go ~pc:(join pc c) st body in
        let merged = join_states l st st' in
        if state_equal l merged st then st else fix merged
      in
      fix st
    | Ast.Seq stmts -> List.fold_left (fun st s' -> go ~pc st s') st stmts
    | Ast.Wait sem ->
      let sem_c = Smap.find_or ~default:l.Lattice.bottom sem st.classes in
      let global = join st.global (join pc sem_c) in
      { classes = Smap.add sem (join sem_c (join pc global)) st.classes; global }
    | Ast.Signal sem ->
      let sem_c = Smap.find_or ~default:l.Lattice.bottom sem st.classes in
      { st with classes = Smap.add sem (join sem_c (join pc st.global)) st.classes }
    | Ast.Send (chan, e) ->
      (* Signal-like, plus the payload joins the channel's class. *)
      let chan_c = Smap.find_or ~default:l.Lattice.bottom chan st.classes in
      let stored = join (expr_class l st.classes e) (join pc st.global) in
      { st with classes = Smap.add chan (join chan_c stored) st.classes }
    | Ast.Recv (chan, x) ->
      (* Wait-like — the conditional delay raises global by the channel's
         class — followed by the delivered message landing in x. *)
      let chan_c = Smap.find_or ~default:l.Lattice.bottom chan st.classes in
      let global = join st.global (join pc chan_c) in
      let delivered = join chan_c (join pc global) in
      {
        classes = Smap.add x delivered (Smap.add chan delivered st.classes);
        global;
      }
    | Ast.Cobegin _ -> enter_cobegin ~pc st s
  in
  let init =
    {
      classes =
        Sset.fold
          (fun v m -> Smap.add v (Binding.sbind binding v) m)
          (Ifc_lang.Vars.all_vars stmt) Smap.empty;
      global = l.Lattice.bottom;
    }
  in
  let final = go ~pc:l.Lattice.bottom init stmt in
  let violations =
    Smap.fold
      (fun v c acc ->
        if l.Lattice.leq c (Binding.sbind binding v) then acc else (v, c) :: acc)
      final.classes []
  in
  { accepted = !ok && violations = []; final; violations = List.rev violations }

let certified binding stmt = (analyze binding stmt).accepted

let certified_program binding (p : Ast.program) = certified binding p.body
