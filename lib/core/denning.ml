(* The Denning & Denning baseline: local flows only, no [flow] function. *)

module Lattice = Ifc_lattice.Lattice
module Extended = Ifc_lattice.Extended
module Ast = Ifc_lang.Ast

type 'a result = {
  certified : bool;
  checks : 'a Cfm.check list;
  rejected_constructs : Ifc_lang.Loc.span list;
}

let traverse ~on_concurrency binding ~record ~reject stmt =
  let l = Binding.lattice binding in
  (* Returns (mod, cert). *)
  let rec go (s : Ast.stmt) =
    match s.node with
    | Ast.Skip -> (l.Lattice.top, true)
    | Ast.Assign (x, e) ->
      let target = Binding.sbind binding x in
      let source = Binding.expr_class binding e in
      let ok = record s.span Cfm.Assign_direct (Extended.El source) target in
      (target, ok)
    | Ast.Declassify (x, _, cls) ->
      let target = Binding.sbind binding x in
      let source =
        match l.Lattice.of_string cls with Ok c -> c | Error _ -> l.Lattice.top
      in
      let ok = record s.span Cfm.Declassify_direct (Extended.El source) target in
      (target, ok)
    | Ast.Store (a, i, e) ->
      let target = Binding.sbind binding a in
      let source =
        l.Lattice.join (Binding.expr_class binding i) (Binding.expr_class binding e)
      in
      let ok = record s.span Cfm.Store_direct (Extended.El source) target in
      (target, ok)
    | Ast.If (cond, then_, else_) ->
      let m1, c1 = go then_ in
      let m2, c2 = go else_ in
      let mod_ = l.Lattice.meet m1 m2 in
      let e_class = Binding.expr_class binding cond in
      let ok = record s.span Cfm.If_local (Extended.El e_class) mod_ in
      (mod_, c1 && c2 && ok)
    | Ast.While (cond, body) ->
      let m1, c1 = go body in
      let e_class = Binding.expr_class binding cond in
      (* Local check only: the Dennings treat the loop condition like an
         alternation condition and see no termination channel. *)
      let ok = record s.span Cfm.If_local (Extended.El e_class) m1 in
      (m1, c1 && ok)
    | Ast.Seq stmts ->
      let results = List.map go stmts in
      (Lattice.meets l (List.map fst results), List.for_all snd results)
    | Ast.Wait sem | Ast.Signal sem -> (
      match on_concurrency with
      | `Reject ->
        reject s.span;
        (Binding.sbind binding sem, false)
      | `Ignore -> (Binding.sbind binding sem, true))
    | Ast.Send (chan, e) -> (
      (* The payload check is a local flow the Dennings would see; the
         synchronization (and its global flow) is what they would not. *)
      let target = Binding.sbind binding chan in
      let source = Binding.expr_class binding e in
      let ok = record s.span Cfm.Send_direct (Extended.El source) target in
      match on_concurrency with
      | `Reject ->
        reject s.span;
        (target, false)
      | `Ignore -> (target, ok))
    | Ast.Recv (chan, x) -> (
      let target = Binding.sbind binding x in
      let source = Binding.sbind binding chan in
      let ok = record s.span Cfm.Recv_direct (Extended.El source) target in
      match on_concurrency with
      | `Reject ->
        reject s.span;
        (target, false)
      | `Ignore -> (target, ok))
    | Ast.Cobegin branches -> (
      match on_concurrency with
      | `Reject ->
        reject s.span;
        let results = List.map go branches in
        (Lattice.meets l (List.map fst results), false)
      | `Ignore ->
        let results = List.map go branches in
        (Lattice.meets l (List.map fst results), List.for_all snd results))
  in
  go stmt

let analyze ~on_concurrency binding stmt =
  let l = Binding.lattice binding in
  let checks = ref [] in
  let rejected = ref [] in
  let record span rule lhs rhs =
    let ok = Cfm.check_outcome l lhs rhs in
    checks := { Cfm.span; rule; lhs; rhs; ok } :: !checks;
    ok
  in
  let reject span = rejected := span :: !rejected in
  let _, certified = traverse ~on_concurrency binding ~record ~reject stmt in
  { certified; checks = List.rev !checks; rejected_constructs = List.rev !rejected }

let certified ~on_concurrency binding stmt =
  let l = Binding.lattice binding in
  let record _ _ lhs rhs = Cfm.check_outcome l lhs rhs in
  let reject _ = () in
  snd (traverse ~on_concurrency binding ~record ~reject stmt)

let analyze_program ~on_concurrency binding (p : Ast.program) =
  analyze ~on_concurrency binding p.body
