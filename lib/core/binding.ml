(* Static bindings (Definition 3). *)

module Lattice = Ifc_lattice.Lattice
module Smap = Ifc_support.Smap
module Ast = Ifc_lang.Ast

type 'a t = { lattice : 'a Lattice.t; map : 'a Smap.t; default : 'a }

let lattice b = b.lattice

let make lattice ?default bindings =
  let default = Option.value default ~default:lattice.Lattice.bottom in
  { lattice; map = Smap.of_list bindings; default }

let of_program lattice ?default ?(overrides = []) (p : Ast.program) =
  let resolve acc (name, cls) =
    Result.bind acc (fun bindings ->
        match cls with
        | None -> Ok bindings
        | Some cls_name ->
          Result.map
            (fun c -> (name, c) :: bindings)
            (lattice.Lattice.of_string cls_name))
  in
  let annotated =
    List.map
      (function
        | Ast.Var_decl { name; cls }
        | Ast.Arr_decl { name; cls; _ }
        | Ast.Sem_decl { name; cls; _ }
        | Ast.Chan_decl { name; cls; _ } ->
          (name, cls))
      p.decls
  in
  Result.map
    (fun bindings -> make lattice ?default (bindings @ overrides))
    (List.fold_left resolve (Ok []) annotated)

let of_spec lattice ?default text =
  let lines = String.split_on_char '\n' text in
  let parse_line acc (lineno, raw) =
    Result.bind acc (fun bindings ->
        let line =
          match String.index_opt raw '#' with
          | None -> String.trim raw
          | Some i -> String.trim (String.sub raw 0 i)
        in
        if line = "" then Ok bindings
        else
          match String.index_opt line ':' with
          | None -> Error (Printf.sprintf "line %d: expected name : class" lineno)
          | Some i ->
            let name = String.trim (String.sub line 0 i) in
            let cls = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
            if name = "" then Error (Printf.sprintf "line %d: empty variable name" lineno)
            else
              Result.map
                (fun c -> (name, c) :: bindings)
                (lattice.Lattice.of_string cls))
  in
  Result.map
    (make lattice ?default)
    (List.fold_left parse_line (Ok []) (List.mapi (fun i l -> (i + 1, l)) lines))

let sbind b v = Smap.find_or ~default:b.default v b.map

let bind b v c = { b with map = Smap.add v c b.map }

let rec expr_class b = function
  | Ast.Int _ | Ast.Bool _ -> b.lattice.Lattice.bottom
  | Ast.Var x -> sbind b x
  | Ast.Index (a, i) -> b.lattice.Lattice.join (sbind b a) (expr_class b i)
  | Ast.Unop (_, e) -> expr_class b e
  | Ast.Binop (_, e1, e2) -> b.lattice.Lattice.join (expr_class b e1) (expr_class b e2)

let bindings b = Smap.bindings b.map

let names b = Smap.keys b.map

let pp ppf b =
  let pp_cls ppf c = Fmt.string ppf (b.lattice.Lattice.to_string c) in
  Smap.pp pp_cls ppf b.map
