(* The Concurrent Flow Mechanism (Figure 2). One post-order pass computes
   mod, flow and the certification checks of every construct. *)

module Lattice = Ifc_lattice.Lattice
module Extended = Ifc_lattice.Extended
module Ast = Ifc_lang.Ast

type 'a check = {
  span : Ifc_lang.Loc.span;
  rule : rule;
  lhs : 'a Extended.elt;
  rhs : 'a;
  ok : bool;
}

and rule =
  | Assign_direct
  | Declassify_direct
  | Store_direct
  | Send_direct
  | Recv_direct
  | If_local
  | While_global
  | Seq_global of int

type 'a result = {
  certified : bool;
  mod_ : 'a;
  flow : 'a Extended.elt;
  checks : 'a check list;
}

let rule_name = function
  | Assign_direct -> "assign: sbind(e) <= sbind(x)"
  | Declassify_direct -> "declassify: C <= sbind(x)"
  | Store_direct -> "store: sbind(i) (+) sbind(e) <= sbind(a)"
  | Send_direct -> "send: sbind(e) <= sbind(c)"
  | Recv_direct -> "recv: sbind(c) <= sbind(x)"
  | If_local -> "if: sbind(e) <= mod(S)"
  | While_global -> "while: flow(S) <= mod(S1)"
  | Seq_global i -> Printf.sprintf "begin: flow(S1..S%d) <= mod(S%d)" i (i + 1)

(* Join of two extended-flow values: nil is the identity of ⊕ on the
   extended scheme (Definition 4). *)
let flow_join l f1 f2 =
  match (f1, f2) with
  | Extended.Nil, f | f, Extended.Nil -> f
  | Extended.El a, Extended.El b -> Extended.El (l.Lattice.join a b)

(* The core traversal is written once, parameterised by how checks are
   recorded, so [analyze] (full diagnostics) and [certified] (boolean only)
   cannot drift apart. [record] both logs the check (if it cares) and
   returns its outcome. *)
let traverse binding ~self_check ~record stmt =
  let l = Binding.lattice binding in
  (* Returns (mod, flow, cert). *)
  let rec go (s : Ast.stmt) =
    match s.node with
    | Ast.Skip -> (l.Lattice.top, Extended.Nil, true)
    | Ast.Assign (x, e) ->
      let target = Binding.sbind binding x in
      let source = Binding.expr_class binding e in
      let ok = record s.span Assign_direct (Extended.El source) target in
      (target, Extended.Nil, ok)
    | Ast.Declassify (x, _, cls) ->
      (* The named class replaces the expression's class: the escape
         hatch for data. The target must still clear the named class, and
         contexts are enforced by the surrounding if/while/seq checks. An
         unresolvable class name conservatively fails as top. *)
      let target = Binding.sbind binding x in
      let source =
        match l.Lattice.of_string cls with Ok c -> c | Error _ -> l.Lattice.top
      in
      let ok = record s.span Declassify_direct (Extended.El source) target in
      (target, Extended.Nil, ok)
    | Ast.Store (a, i, e) ->
      (* Denning's array rule: the index is part of the stored
         information — which slot changed reveals it. *)
      let target = Binding.sbind binding a in
      let source =
        l.Lattice.join (Binding.expr_class binding i) (Binding.expr_class binding e)
      in
      let ok = record s.span Store_direct (Extended.El source) target in
      (target, Extended.Nil, ok)
    | Ast.Wait sem ->
      (* mod = flow = sbind(sem); cert = true. The conditional delay of a
         wait is a global flow of the semaphore's class. *)
      let c = Binding.sbind binding sem in
      (c, Extended.El c, true)
    | Ast.Signal sem ->
      let c = Binding.sbind binding sem in
      (c, Extended.Nil, true)
    | Ast.Send (chan, e) ->
      (* A send is an assignment into the channel that also signals: the
         payload's class must flow to the channel's class, and — like a
         signal — it produces no global flow of its own. mod = sbind(c)
         means the enclosing if/while/seq checks force every potential
         sender's context flow below the channel's class, so sbind(c)
         dominates the global flow of every potential sender (the join the
         recv rule needs is paid for here). *)
      let c = Binding.sbind binding chan in
      let source = Binding.expr_class binding e in
      let ok = record s.span Send_direct (Extended.El source) c in
      (c, Extended.Nil, ok)
    | Ast.Recv (chan, x) ->
      (* A recv is a wait whose class is the channel's — the conditional
         delay is a global flow of sbind(c) — followed by an assignment of
         the delivered message (class sbind(c), which bounds every
         sender's payload and context) into x. *)
      let c = Binding.sbind binding chan in
      let target = Binding.sbind binding x in
      let ok = record s.span Recv_direct (Extended.El c) target in
      (l.Lattice.meet c target, Extended.El c, ok)
    | Ast.If (cond, then_, else_) ->
      let m1, f1, c1 = go then_ in
      let m2, f2, c2 = go else_ in
      let e_class = Binding.expr_class binding cond in
      let mod_ = l.Lattice.meet m1 m2 in
      (* flow(S) = nil when both branches are flow-free; otherwise the
         branch flows joined with sbind(e) — escaping global flows reveal
         the condition. *)
      let flow =
        match flow_join l f1 f2 with
        | Extended.Nil -> Extended.Nil
        | Extended.El f -> Extended.El (l.Lattice.join f e_class)
      in
      let local_ok = record s.span If_local (Extended.El e_class) mod_ in
      (mod_, flow, c1 && c2 && local_ok)
    | Ast.While (cond, body) ->
      let m1, f1, c1 = go body in
      let e_class = Binding.expr_class binding cond in
      (* flow(S) = flow(S1) ⊕ sbind(e): a loop always produces a global
         flow — its termination is conditional on [e]. *)
      let flow =
        Extended.El (l.Lattice.join (Extended.get ~default:l.Lattice.bottom f1) e_class)
      in
      let global_ok = record s.span While_global flow m1 in
      (m1, flow, c1 && global_ok)
    | Ast.Seq stmts ->
      (* flow(Sj) <= mod(Si) for all j < i is equivalent to checking the
         running prefix join (+)_{j<i} flow(Sj) against mod(Si) — which
         keeps the whole pass linear, the paper's §6 complexity claim.
         Under ~self_check (the literal j <= i reading) the component's
         own flow joins the prefix before its check. *)
      let _, rev_results, ok =
        List.fold_left
          (fun (i, acc, ok) s' ->
            let m, f, c = go s' in
            (i + 1, (s', i, m, f, c) :: acc, ok && c))
          (0, [], true) stmts
      in
      let results = List.rev rev_results in
      let mod_ = Lattice.meets l (List.map (fun (_, _, m, _, _) -> m) results) in
      let flow =
        List.fold_left (fun acc (_, _, _, f, _) -> flow_join l acc f) Extended.Nil results
      in
      let _, global_ok =
        List.fold_left
          (fun (prefix, ok_acc) (si, i, mi, fi, _) ->
            let to_check = if self_check then flow_join l prefix fi else prefix in
            let ok =
              if i = 0 && not self_check then true
              else record si.Ast.span (Seq_global i) to_check mi
            in
            (flow_join l prefix fi, ok && ok_acc))
          (Extended.Nil, true) results
      in
      (mod_, flow, ok && global_ok)
    | Ast.Cobegin branches ->
      (* Parallel composition needs no extra check: branches execute
         independently (§4.2). *)
      let results = List.map go branches in
      let mod_ = Lattice.meets l (List.map (fun (m, _, _) -> m) results) in
      let flow =
        List.fold_left (fun acc (_, f, _) -> flow_join l acc f) Extended.Nil results
      in
      (mod_, flow, List.for_all (fun (_, _, c) -> c) results)
  in
  go stmt

let check_outcome l lhs rhs =
  match lhs with Extended.Nil -> true | Extended.El f -> l.Lattice.leq f rhs

let analyze ?(self_check = false) binding stmt =
  let l = Binding.lattice binding in
  let checks = ref [] in
  let record span rule lhs rhs =
    let ok = check_outcome l lhs rhs in
    checks := { span; rule; lhs; rhs; ok } :: !checks;
    ok
  in
  let mod_, flow, certified = traverse binding ~self_check ~record stmt in
  { certified; mod_; flow; checks = List.rev !checks }

let certified ?(self_check = false) binding stmt =
  let l = Binding.lattice binding in
  let record _span _rule lhs rhs = check_outcome l lhs rhs in
  let _, _, cert = traverse binding ~self_check ~record stmt in
  cert

let mod_of binding stmt =
  let record _ _ _ _ = true in
  let mod_, _, _ = traverse binding ~self_check:false ~record stmt in
  mod_

let flow_of binding stmt =
  let record _ _ _ _ = true in
  let _, flow, _ = traverse binding ~self_check:false ~record stmt in
  flow

let failed_checks r = List.filter (fun c -> not c.ok) r.checks

let analyze_program ?self_check binding (p : Ast.program) =
  analyze ?self_check binding p.body
