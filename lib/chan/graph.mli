(** The channel graph: one node per channel with its endpoint sites, and
    a {e may-communicate} edge from a [send] site to a [recv] site when a
    message enqueued at the former may be the one dequeued at the latter.

    The structural relation between two program points is injected (the
    caller typically adapts {!Ifc_analysis.Mhp.relate}); this keeps the
    subsystem independent of the concurrency analyzer while letting it
    reuse the same tree-path reasoning. An edge exists when the send is
    sequentially before the recv, the two sit in parallel branches of a
    common [cobegin], or both sit under a loop (a send textually after a
    recv can feed its next iteration). Sites in exclusive [if] arms never
    exchange a message. *)

type site = {
  path : int list;  (** Tree path from the body to the statement. *)
  span : Ifc_lang.Loc.span;
  under_loop : bool;
}

(** Mirror of {!Ifc_analysis.Mhp.relation} (redeclared here to keep the
    dependency injected rather than structural). *)
type relation = Equal | Before | After | Parallel | Exclusive

type node = {
  chan : string;
  cap : int;  (** Declared capacity (default for undeclared channels). *)
  cls : string option;  (** Declared class annotation, if any. *)
  sends : site list;  (** [send] sites, in source order. *)
  recvs : site list;  (** [recv] sites, in source order. *)
}

type edge = { e_chan : string; e_send : site; e_recv : site }

type t = { nodes : node list; edges : edge list }

val build :
  relate:(int list -> int list -> relation) ->
  sends:site list Ifc_support.Smap.t ->
  recvs:site list Ifc_support.Smap.t ->
  Ifc_lang.Ast.program ->
  t
(** Nodes in declaration order, then any used-but-undeclared channels in
    name order at the default capacity. *)

val fed : t -> site -> string -> bool
(** [fed t r c]: some may-communicate edge of channel [c] ends at recv
    site [r]. A recv no edge feeds blocks forever whenever reached. *)

val consumed : t -> site -> string -> bool
(** [consumed t s c]: some edge of [c] starts at send site [s]. A send no
    edge consumes produces a message that is never received. *)

val degree : t -> string -> int
(** Number of may-communicate edges of a channel. *)

val pp : Format.formatter -> t -> unit
