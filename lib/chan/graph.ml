(* The channel graph: endpoints and may-communicate edges. *)

module Ast = Ifc_lang.Ast
module Loc = Ifc_lang.Loc
module Smap = Ifc_support.Smap

type site = { path : int list; span : Loc.span; under_loop : bool }

type relation = Equal | Before | After | Parallel | Exclusive

type node = {
  chan : string;
  cap : int;
  cls : string option;
  sends : site list;
  recvs : site list;
}

type edge = { e_chan : string; e_send : site; e_recv : site }

type t = { nodes : node list; edges : edge list }

(* A message enqueued at [s] may be the one dequeued at [r] when [s] can
   complete no later than [r] runs: [s] strictly before [r], the two in
   parallel branches, or — when both sit under a loop — [s] "after" [r]
   within one iteration but feeding a later one. Exclusive sites (arms of
   one [if]) never exchange a message. *)
let may_communicate ~(send : site) ~(recv : site) relation =
  match relation with
  | Before | Parallel -> true
  | After -> send.under_loop && recv.under_loop
  | Equal | Exclusive -> false

let build ~relate ~sends ~recvs (p : Ast.program) =
  let sites m chan = Smap.find_or ~default:[] chan m in
  let node chan cap cls =
    { chan; cap; cls; sends = sites sends chan; recvs = sites recvs chan }
  in
  let nodes =
    List.filter_map
      (function
        | Ast.Chan_decl { name; cap; cls } -> Some (node name cap cls)
        | Ast.Var_decl _ | Ast.Arr_decl _ | Ast.Sem_decl _ -> None)
      p.Ast.decls
  in
  (* Channels used without a declaration (callers normally run
     [Wellformed.infer_decls] first, but the graph must not silently drop
     endpoints if they did not): default capacity, no annotation. *)
  let declared = List.map (fun n -> n.chan) nodes in
  let undeclared =
    List.sort_uniq String.compare (Smap.keys sends @ Smap.keys recvs)
    |> List.filter (fun c -> not (List.mem c declared))
  in
  let nodes =
    nodes
    @ List.map
        (fun c -> node c Ifc_lang.Wellformed.default_channel_capacity None)
        undeclared
  in
  let edges =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun s ->
            List.filter_map
              (fun r ->
                if may_communicate ~send:s ~recv:r (relate s.path r.path) then
                  Some { e_chan = n.chan; e_send = s; e_recv = r }
                else None)
              n.recvs)
          n.sends)
      nodes
  in
  { nodes; edges }

let fed t (r : site) chan =
  List.exists
    (fun e -> String.equal e.e_chan chan && e.e_recv.path = r.path)
    t.edges

let consumed t (s : site) chan =
  List.exists
    (fun e -> String.equal e.e_chan chan && e.e_send.path = s.path)
    t.edges

let degree t chan =
  List.length (List.filter (fun e -> String.equal e.e_chan chan) t.edges)

let pp ppf t =
  let pp_site ppf (s : site) = Loc.pp ppf s.span in
  List.iter
    (fun n ->
      Fmt.pf ppf "channel %s(cap %d): %d send site%s, %d recv site%s, %d edge%s@."
        n.chan n.cap (List.length n.sends)
        (if List.length n.sends = 1 then "" else "s")
        (List.length n.recvs)
        (if List.length n.recvs = 1 then "" else "s")
        (degree t n.chan)
        (if degree t n.chan = 1 then "" else "s"))
    t.nodes;
  List.iter
    (fun e ->
      Fmt.pf ppf "  %s: %a -> %a@." e.e_chan pp_site e.e_send pp_site e.e_recv)
    t.edges
