(** Channel lint over the {!Graph}: communication deadlock, orphan
    (never-received) messages, same-endpoint contention, and the
    per-channel summary records.

    Two complementary mechanisms back the diagnostics. The {e graph}
    checks are per-endpoint: a recv site no may-communicate edge feeds
    blocks forever whenever it is reached, and a send site no edge
    consumes produces a message that is never received. The {e interval}
    checks mirror the semaphore liveness analysis ({!Ifc_analysis.Semlive})
    with per-channel send/recv counting: when the fewest recvs any
    execution performs exceed the most messages that could ever be sent,
    or the fewest sends exceed capacity plus the most possible recvs,
    every execution blocks — a guaranteed communication deadlock.

    The claims are phrased for refutation by bounded dynamic exploration
    (see {!Ifc_exec.Explore.summary}): a reached stuck state with a
    blocked channel refutes [comm_deadlock_free]; a reached terminal
    refutes [comm_must_block]; a witnessed pair of co-enabled same-kind
    operations on one channel refutes [chan_race_free]. *)

type count = Fin of int | Inf

val le_count : count -> count -> bool

val pp_count : Format.formatter -> count -> unit

type kind =
  | Comm_deadlock
      (** A recv that can never be fed, or counting proves every
          execution blocks on the channel. *)
  | Orphan_message  (** A sent message that no recv can ever consume. *)
  | Chan_race
      (** Two sends (or two recvs) on one channel may run in parallel:
          which message lands where depends on the schedule. A send
          alongside a recv is the intended rendezvous, not contention. *)

type severity = Error | Warning

type finding = {
  kind : kind;
  severity : severity;
  span : Ifc_lang.Loc.span;
  related : Ifc_lang.Loc.span option;
  message : string;
}

(** The per-channel summary record: capacity, class annotation, the
    send/recv operation intervals, and the channel's may-communicate
    degree. *)
type summary = {
  s_chan : string;
  s_cap : int;
  s_cls : string option;
  s_send_min : int;
  s_send_max : count;
  s_recv_min : int;
  s_recv_max : count;
  s_degree : int;
}

type claims = {
  comm_deadlock_free : bool;
      (** No execution can block on a channel, even transiently.
          Deliberately conservative: queues start empty, so only
          channels whose sends fit capacity outright and which nobody
          receives from qualify. *)
  comm_must_block : bool;  (** No execution terminates. *)
  chan_race_free : bool;  (** No same-endpoint contention finding. *)
}

type result = { findings : finding list; claims : claims; summaries : summary list }

val kind_name : kind -> string
(** ["chan-deadlock"], ["orphan-message"], ["chan-race"]. *)

val analyze :
  may_parallel:(int list -> int list -> bool) ->
  graph:Graph.t ->
  Ifc_lang.Ast.program ->
  result
(** [may_parallel] is injected (typically
    {!Ifc_analysis.Mhp.may_happen_in_parallel}, which refines the
    structural relation by wait/signal handshakes). Findings come out in
    channel-declaration order, graph checks before interval checks. *)

val pp_summary : Format.formatter -> summary -> unit
