(* Channel lint: interval counting of send/recv operations per channel
   (communication deadlock, orphan messages), graph-based never-fed /
   never-consumed endpoint checks, and same-endpoint contention. *)

module Ast = Ifc_lang.Ast
module Loc = Ifc_lang.Loc
module Smap = Ifc_support.Smap

(* The same interval algebra the semaphore liveness analysis uses,
   redeclared locally: [Ifc_analysis] depends on this library, not the
   other way around. *)
type count = Fin of int | Inf

let add_count a b =
  match (a, b) with Fin x, Fin y -> Fin (x + y) | _ -> Inf

let max_count a b =
  match (a, b) with Fin x, Fin y -> Fin (max x y) | _ -> Inf

let le_count a b =
  match (a, b) with
  | Fin x, Fin y -> x <= y
  | _, Inf -> true
  | Inf, Fin _ -> false

let pp_count ppf = function
  | Fin n -> Fmt.int ppf n
  | Inf -> Fmt.string ppf "unboundedly many"

type usage = {
  send_min : int;
  send_max : count;
  recv_min : int;
  recv_max : count;
  first_send : Loc.span option;
  first_recv : Loc.span option;
}

let zero =
  {
    send_min = 0;
    send_max = Fin 0;
    recv_min = 0;
    recv_max = Fin 0;
    first_send = None;
    first_recv = None;
  }

let first a b = match a with Some _ -> a | None -> b

(* Sequencing (and cobegin: every branch runs to completion) adds. *)
let seq_usage a b =
  {
    send_min = a.send_min + b.send_min;
    send_max = add_count a.send_max b.send_max;
    recv_min = a.recv_min + b.recv_min;
    recv_max = add_count a.recv_max b.recv_max;
    first_send = first a.first_send b.first_send;
    first_recv = first a.first_recv b.first_recv;
  }

(* Alternation: exactly one arm runs, so take the envelope. *)
let alt_usage a b =
  {
    send_min = min a.send_min b.send_min;
    send_max = max_count a.send_max b.send_max;
    recv_min = min a.recv_min b.recv_min;
    recv_max = max_count a.recv_max b.recv_max;
    first_send = first a.first_send b.first_send;
    first_recv = first a.first_recv b.first_recv;
  }

(* Iteration: possibly zero times, possibly unboundedly many. *)
let loop_usage a =
  {
    send_min = 0;
    send_max = (if a.send_max = Fin 0 then Fin 0 else Inf);
    recv_min = 0;
    recv_max = (if a.recv_max = Fin 0 then Fin 0 else Inf);
    first_send = a.first_send;
    first_recv = a.first_recv;
  }

let merge_with f a b =
  Smap.merge
    (fun _ l r ->
      match (l, r) with
      | Some u, Some v -> Some (f u v)
      | Some u, None -> Some (f u zero)
      | None, Some v -> Some (f zero v)
      | None, None -> None)
    a b

let rec usages (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.Skip | Ast.Assign _ | Ast.Declassify _ | Ast.Store _ | Ast.Wait _
  | Ast.Signal _ ->
    Smap.empty
  | Ast.Send (chan, _) ->
    Smap.singleton chan
      { zero with send_min = 1; send_max = Fin 1; first_send = Some s.Ast.span }
  | Ast.Recv (chan, _) ->
    Smap.singleton chan
      { zero with recv_min = 1; recv_max = Fin 1; first_recv = Some s.Ast.span }
  | Ast.Seq ss | Ast.Cobegin ss ->
    List.fold_left
      (fun acc c -> merge_with seq_usage acc (usages c))
      Smap.empty ss
  | Ast.If (_, a, b) -> merge_with alt_usage (usages a) (usages b)
  | Ast.While (_, b) -> Smap.map loop_usage (usages b)

(* ------------------------------------------------------------------ *)

type kind = Comm_deadlock | Orphan_message | Chan_race

type severity = Error | Warning

type finding = {
  kind : kind;
  severity : severity;
  span : Loc.span;
  related : Loc.span option;
  message : string;
}

type summary = {
  s_chan : string;
  s_cap : int;
  s_cls : string option;
  s_send_min : int;
  s_send_max : count;
  s_recv_min : int;
  s_recv_max : count;
  s_degree : int;  (* May-communicate edges. *)
}

type claims = {
  comm_deadlock_free : bool;
  comm_must_block : bool;
  chan_race_free : bool;
}

type result = { findings : finding list; claims : claims; summaries : summary list }

let kind_name = function
  | Comm_deadlock -> "chan-deadlock"
  | Orphan_message -> "orphan-message"
  | Chan_race -> "chan-race"

let analyze ~may_parallel ~(graph : Graph.t) (p : Ast.program) =
  let u = usages p.Ast.body in
  let findings = ref [] in
  let emit f = findings := f :: !findings in
  let deadlock_free = ref true and must_block = ref false in
  let race_free = ref true in
  List.iter
    (fun (n : Graph.node) ->
      let usage = Smap.find_or ~default:zero n.Graph.chan u in
      let chan = n.Graph.chan and cap = n.Graph.cap in
      (* Never-fed recv: no send may complete before it or alongside it,
         so whenever the statement runs the queue is empty, forever. *)
      let starved =
        List.filter (fun r -> not (Graph.fed graph r chan)) n.Graph.recvs
      in
      List.iter
        (fun (r : Graph.site) ->
          emit
            {
              kind = Comm_deadlock;
              severity = Error;
              span = r.Graph.span;
              related = usage.first_send;
              message =
                Printf.sprintf
                  "no send on %s can precede or run alongside this recv; it \
                   blocks forever whenever reached"
                  chan;
            })
        starved;
      if starved <> [] && n.Graph.recvs <> [] && List.length starved = List.length n.Graph.recvs
         && usage.recv_min >= 1
      then must_block := true;
      (* Guaranteed starvation by counting: the fewest recvs any
         execution performs already exceed the most messages it could
         ever be sent. The finding is skipped when a never-fed recv
         already explains it; the claim is not. *)
      let counting_starved =
        not (le_count (Fin usage.recv_min) usage.send_max)
      in
      if counting_starved then must_block := true;
      if starved = [] && counting_starved then
        emit
          {
            kind = Comm_deadlock;
            severity = Error;
            span = Option.value ~default:Loc.dummy usage.first_recv;
            related = usage.first_send;
            message =
              Format.asprintf
                "every execution performs at least %d recv(%s) but at most %a \
                 message%s can ever be sent; some recv blocks forever"
                usage.recv_min chan pp_count usage.send_max
                (match usage.send_max with Fin 1 -> "" | _ -> "s");
          };
      (* Guaranteed overflow: even if every possible recv happens, the
         sends any execution must perform exceed capacity plus drains. *)
      if not (le_count (Fin usage.send_min) (add_count (Fin cap) usage.recv_max))
      then begin
        must_block := true;
        emit
          {
            kind = Comm_deadlock;
            severity = Error;
            span = Option.value ~default:Loc.dummy usage.first_send;
            related = usage.first_recv;
            message =
              Format.asprintf
                "every execution sends at least %d message%s on %s but its \
                 capacity is %d and at most %a can ever be received; some \
                 send blocks forever on a full queue"
                usage.send_min
                (if usage.send_min = 1 then "" else "s")
                chan cap pp_count usage.recv_max;
          }
      end;
      (* Never-consumed send: its message has no recv it may reach. *)
      let orphan_sites =
        List.filter (fun s -> not (Graph.consumed graph s chan)) n.Graph.sends
      in
      List.iter
        (fun (s : Graph.site) ->
          emit
            {
              kind = Orphan_message;
              severity = Warning;
              span = s.Graph.span;
              related = usage.first_recv;
              message =
                Printf.sprintf
                  "no recv on %s can follow or run alongside this send; the \
                   message is never received"
                  chan;
            })
        orphan_sites;
      (* Orphans by counting: messages every execution sends beyond the
         most it could ever receive (and which fit in capacity, else the
         overflow error above fires instead). *)
      if orphan_sites = []
         && le_count (Fin usage.send_min) (add_count (Fin cap) usage.recv_max)
         && not (le_count (Fin usage.send_min) usage.recv_max)
      then
        emit
          {
            kind = Orphan_message;
            severity = Warning;
            span = Option.value ~default:Loc.dummy usage.first_send;
            related = usage.first_recv;
            message =
              Format.asprintf
                "every execution sends at least %d message%s on %s but \
                 performs at most %a recv%s; leftover messages are never \
                 received"
                usage.send_min
                (if usage.send_min = 1 then "" else "s")
                chan pp_count usage.recv_max
                (match usage.recv_max with Fin 1 -> "" | _ -> "s");
          };
      (* Same-endpoint contention: two sends (or two recvs) on the
         channel that may run in parallel — which message lands where
         depends on the schedule. A send alongside a recv is the intended
         rendezvous, not contention. *)
      let contention what (sites : Graph.site list) =
        let rec scan = function
          | [] -> ()
          | (s : Graph.site) :: rest ->
            List.iter
              (fun (t : Graph.site) ->
                if may_parallel s.Graph.path t.Graph.path then begin
                  race_free := false;
                  emit
                    {
                      kind = Chan_race;
                      severity = Warning;
                      span = s.Graph.span;
                      related = Some t.Graph.span;
                      message =
                        Printf.sprintf
                          "two parallel %ss on %s; message order depends on \
                           the schedule"
                          what chan;
                    }
                end)
              rest;
            scan rest
        in
        scan sites
      in
      contention "send" n.Graph.sends;
      contention "recv" n.Graph.recvs;
      (* The no-transient-block claim. The queue starts empty, so the
         only channels that can never block anyone are those whose sends
         fit the capacity outright and which nobody ever receives from —
         deliberately conservative, like the semaphore claim, so a
         dynamic block witness refutes it definitively. *)
      if not (le_count usage.send_max (Fin cap) && usage.recv_max = Fin 0) then
        deadlock_free := false)
    graph.Graph.nodes;
  let summaries =
    List.map
      (fun (n : Graph.node) ->
        let usage = Smap.find_or ~default:zero n.Graph.chan u in
        {
          s_chan = n.Graph.chan;
          s_cap = n.Graph.cap;
          s_cls = n.Graph.cls;
          s_send_min = usage.send_min;
          s_send_max = usage.send_max;
          s_recv_min = usage.recv_min;
          s_recv_max = usage.recv_max;
          s_degree = Graph.degree graph n.Graph.chan;
        })
      graph.Graph.nodes
  in
  {
    findings = List.rev !findings;
    claims =
      {
        comm_deadlock_free = !deadlock_free;
        comm_must_block = !must_block;
        chan_race_free = !race_free;
      };
    summaries;
  }

let pp_summary ppf s =
  Fmt.pf ppf
    "channel %s: cap %d%a, sends [%d, %a], recvs [%d, %a], %d may-communicate \
     edge%s"
    s.s_chan s.s_cap
    (fun ppf -> function
      | Some c -> Fmt.pf ppf " class %s" c
      | None -> ())
    s.s_cls s.s_send_min pp_count s.s_send_max s.s_recv_min pp_count s.s_recv_max
    s.s_degree
    (if s.s_degree = 1 then "" else "s")
