(** Small-step operational semantics.

    A configuration pairs a task tree with the variable store, the
    semaphore counters and the channel queues. {!enabled} enumerates every
    indivisible action currently possible (one per runnable process), which
    drives the random and round-robin schedulers and the exhaustive
    interleaving exploration alike; a [wait] on a zero semaphore, a [send]
    on a full channel and a [recv] on an empty channel are simply not
    enabled, giving blocking — and deadlock when nothing is enabled but the
    task is unfinished. *)

type config = {
  task : Task.t;
  store : Eval.store;
  arrays : int array Ifc_support.Smap.t;
      (** Treated as immutable; successors carry fresh copies. *)
  sems : int Ifc_support.Smap.t;
  chans : int list Ifc_support.Smap.t;
      (** Per-channel FIFO of pending messages, head = oldest. *)
  chan_caps : int Ifc_support.Smap.t;  (** Declared capacities. *)
}

(** What an action did — the trace vocabulary. *)
type label =
  | L_skip
  | L_assign of string * int
  | L_store of string * int * int  (** Array, index, value. *)
  | L_branch of bool  (** Direction taken by an [if]. *)
  | L_loop of bool  (** [while] condition outcome. *)
  | L_wait of string
  | L_signal of string
  | L_send of string * int  (** Channel, enqueued value. *)
  | L_recv of string * string * int  (** Channel, target, dequeued value. *)

type choice = {
  index : int;  (** Redex position (left-to-right leaf order); stable
                    across a step for round-robin fairness. *)
  label : label;
  next : config;
  footprint : Ifc_support.Sset.t;
      (** Variables and semaphores this indivisible action reads or
          writes; two actions with footprints that do not meet any shared
          (racy) variable commute — the independence relation behind
          {!Explore}'s partial-order reduction. *)
  span : Ifc_lang.Loc.span;
      (** Source span of the statement the action steps — what the
          exploration's visited-span record is built from. *)
}

val init : Ifc_lang.Ast.program -> ?inputs:(string * int) list -> unit -> config
(** Initial configuration: declared integers start at 0 (overridable via
    [inputs]); semaphores at their declared initial count; channels
    empty, at their declared capacities. *)

val blocked_channels : config -> string list
(** Channels on which some currently-runnable leaf is blocked — a [send]
    on a full queue or a [recv] on an empty one — sorted. Nonempty at a
    deadlocked configuration exactly when channel communication is part
    of what is stuck. *)

val enabled : config -> (choice list, string) result
(** All enabled actions; [Error] carries a runtime fault message (e.g.
    division by zero in the redex evaluated first). *)

val is_terminated : config -> bool

val key : config -> string
(** Canonical state key for memoisation. *)

val low_projection :
  'a Ifc_core.Binding.t -> observer:'a -> config -> (string * int) list
(** The observable part of a final state: values of variables, array
    cells (as [a\[i\]] entries), channel queues (pending messages as
    [c<i>] entries plus a [c#len] count) and semaphore counters whose
    binding is [<= observer], sorted by name. *)

val pp : Format.formatter -> config -> unit

val pp_label : Format.formatter -> label -> unit
