(* Possibilistic, termination-sensitive noninterference testing. *)

module Smap = Ifc_support.Smap
module Sset = Ifc_support.Sset
module Prng = Ifc_support.Prng
module Lattice = Ifc_lattice.Lattice
module Ast = Ifc_lang.Ast
module Binding = Ifc_core.Binding

type observable =
  | Low_store of (string * int) list
  | Deadlock
  | Divergence
  | Fault of string

type violation = {
  inputs_a : (string * int) list;
  inputs_b : (string * int) list;
  only_a : observable list;
  only_b : observable list;
}

type result = {
  pairs_tested : int;
  pairs_skipped : int;
  violations : violation list;
}

let observables ?max_states ~observer binding ~inputs p =
  let summary = Explore.explore_program ?max_states ~inputs p in
  if not summary.Explore.complete then Error "state-space bound hit"
  else begin
    let obs = ref [] in
    let add o = if not (List.mem o !obs) then obs := o :: !obs in
    List.iter
      (fun cfg -> add (Low_store (Step.low_projection binding ~observer cfg)))
      summary.Explore.terminals;
    if summary.Explore.deadlocks <> [] then add Deadlock;
    if summary.Explore.has_cycle then add Divergence;
    List.iter (fun msg -> add (Fault msg)) summary.Explore.faults;
    Ok (List.sort compare !obs)
  end

(* In termination-insensitive comparison, a side that may fail to
   terminate normally (deadlock, divergence, fault) excuses missing
   terminal observables on the other side: the paper's model only tracks
   flows into variables, so "did it finish" with no subsequent write is
   outside the threat model (§1 deems such channels covert). *)
let is_marker = function
  | Deadlock | Divergence | Fault _ -> true
  | Low_store _ -> false

let compare_observables ~termination oa ob =
  match termination with
  | `Sensitive ->
    ( List.filter (fun o -> not (List.mem o ob)) oa,
      List.filter (fun o -> not (List.mem o oa)) ob )
  | `Insensitive ->
    let stuck obs = List.exists is_marker obs in
    let terminals obs = List.filter (fun o -> not (is_marker o)) obs in
    let ta = terminals oa and tb = terminals ob in
    let only_a = if stuck ob then [] else List.filter (fun o -> not (List.mem o tb)) ta in
    let only_b = if stuck oa then [] else List.filter (fun o -> not (List.mem o ta)) tb in
    (only_a, only_b)

let test ?(seed = 0) ?(pairs = 16) ?max_states ?(value_range = 4)
    ?(termination = `Insensitive) ~observer binding (p : Ast.program) =
  let lat = Binding.lattice binding in
  let vars, _arrays, _sems, _chans = Ifc_lang.Vars.declared p in
  let low_vars, high_vars =
    List.partition
      (fun v -> lat.Lattice.leq (Binding.sbind binding v) observer)
      (Sset.elements vars)
  in
  if high_vars = [] then { pairs_tested = 0; pairs_skipped = 0; violations = [] }
  else begin
    let rng = Prng.create seed in
    let tested = ref 0 and skipped = ref 0 and violations = ref [] in
    for _ = 1 to pairs do
      let low_part = List.map (fun v -> (v, Prng.int rng value_range)) low_vars in
      let high_a = List.map (fun v -> (v, Prng.int rng value_range)) high_vars in
      (* Ensure the pair differs on at least one high variable. *)
      let high_b =
        let b = List.map (fun v -> (v, Prng.int rng value_range)) high_vars in
        if List.exists2 (fun (_, x) (_, y) -> x <> y) high_a b then b
        else
          match b with
          | (v, x) :: rest -> (v, (x + 1) mod value_range) :: rest
          | [] -> b
      in
      let inputs_a = low_part @ high_a and inputs_b = low_part @ high_b in
      match
        ( observables ?max_states ~observer binding ~inputs:inputs_a p,
          observables ?max_states ~observer binding ~inputs:inputs_b p )
      with
      | Ok oa, Ok ob ->
        incr tested;
        let only_a, only_b = compare_observables ~termination oa ob in
        if only_a <> [] || only_b <> [] then
          violations := { inputs_a; inputs_b; only_a; only_b } :: !violations
      | Error _, _ | _, Error _ -> incr skipped
    done;
    { pairs_tested = !tested; pairs_skipped = !skipped; violations = List.rev !violations }
  end

let secure r = r.violations = []

let pp_observable ppf = function
  | Low_store kvs ->
    Fmt.pf ppf "{%a}"
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (k, v) -> Fmt.pf ppf "%s=%d" k v))
      kvs
  | Deadlock -> Fmt.string ppf "<deadlock>"
  | Divergence -> Fmt.string ppf "<divergence>"
  | Fault m -> Fmt.pf ppf "<fault: %s>" m

let pp_violation ppf v =
  let pp_inputs ppf kvs =
    Fmt.pf ppf "%a"
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (k, x) -> Fmt.pf ppf "%s=%d" k x))
      kvs
  in
  Fmt.pf ppf
    "@[<v>inputs A: %a@ inputs B: %a@ observable only from A: %a@ observable only from B: %a@]"
    pp_inputs v.inputs_a pp_inputs v.inputs_b
    (Fmt.list ~sep:(Fmt.any "; ") pp_observable)
    v.only_a
    (Fmt.list ~sep:(Fmt.any "; ") pp_observable)
    v.only_b
