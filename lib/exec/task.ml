(* Runtime task trees. *)

module Ast = Ifc_lang.Ast

type t = Nil | Leaf of Ast.stmt | Seq of t * t | Par of t list

let rec of_stmt (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.Skip -> Leaf s
  | Ast.Seq stmts ->
    List.fold_right (fun st acc -> Seq (of_stmt st, acc)) stmts Nil
  | Ast.Cobegin branches -> Par (List.map of_stmt branches)
  | Ast.Assign _ | Ast.Declassify _ | Ast.Store _ | Ast.If _ | Ast.While _ | Ast.Wait _
  | Ast.Signal _ | Ast.Send _ | Ast.Recv _ ->
    Leaf s

let rec is_done = function
  | Nil -> true
  | Leaf _ -> false
  | Seq (a, b) -> is_done a && is_done b
  | Par ts -> List.for_all is_done ts

let rec simplify = function
  | Nil -> Nil
  | Leaf _ as t -> t
  | Seq (a, b) -> (
    match simplify a with Nil -> simplify b | a' -> Seq (a', b))
  | Par ts -> (
    match List.filter (fun t -> not (is_done t)) (List.map simplify ts) with
    | [] -> Nil
    | ts' -> Par ts')

(* Canonical serialisation: statements via the (injective up to layout)
   pretty-printer, structure via explicit tags. *)
let key t =
  let buf = Buffer.create 64 in
  let rec go = function
    | Nil -> Buffer.add_char buf '.'
    | Leaf s ->
      Buffer.add_char buf 'L';
      Buffer.add_string buf (Ifc_lang.Pretty.stmt_to_string s);
      Buffer.add_char buf ';'
    | Seq (a, b) ->
      Buffer.add_char buf '(';
      go a;
      Buffer.add_char buf '>';
      go b;
      Buffer.add_char buf ')'
    | Par ts ->
      Buffer.add_char buf '[';
      List.iter
        (fun t ->
          go t;
          Buffer.add_char buf '|')
        ts;
      Buffer.add_char buf ']'
  in
  go t;
  Buffer.contents buf

let rec pp ppf = function
  | Nil -> Fmt.string ppf "<done>"
  | Leaf s -> Fmt.pf ppf "%s" (Ifc_lang.Pretty.stmt_to_string s)
  | Seq (a, b) -> Fmt.pf ppf "(%a ; %a)" pp a pp b
  | Par ts -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any " || ") pp) ts
