(* Small-step operational semantics. *)

module Smap = Ifc_support.Smap
module Ast = Ifc_lang.Ast

type config = {
  task : Task.t;
  store : Eval.store;
  arrays : int array Smap.t;
  sems : int Smap.t;
  chans : int list Smap.t;
  chan_caps : int Smap.t;
}

let env_of cfg = { Eval.store = cfg.store; arrays = cfg.arrays }

type label =
  | L_skip
  | L_assign of string * int
  | L_store of string * int * int
  | L_branch of bool
  | L_loop of bool
  | L_wait of string
  | L_signal of string
  | L_send of string * int
  | L_recv of string * string * int

type choice = {
  index : int;
  label : label;
  next : config;
  footprint : Ifc_support.Sset.t;
  span : Ifc_lang.Loc.span;
}

(* The variables and semaphores one indivisible action touches — the
   basis of the independence relation used by partial-order reduction.
   For control statements only the condition is evaluated in the step. *)
let action_footprint (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.Skip -> Ifc_support.Sset.empty
  | Ast.Assign (x, e) | Ast.Declassify (x, e, _) ->
    Ifc_support.Sset.add x (Ifc_lang.Vars.expr_vars e)
  | Ast.Store (a, i, e) ->
    Ifc_support.Sset.add a
      (Ifc_support.Sset.union (Ifc_lang.Vars.expr_vars i) (Ifc_lang.Vars.expr_vars e))
  | Ast.If (cond, _, _) | Ast.While (cond, _) -> Ifc_lang.Vars.expr_vars cond
  | Ast.Wait sem | Ast.Signal sem -> Ifc_support.Sset.singleton sem
  | Ast.Send (chan, e) -> Ifc_support.Sset.add chan (Ifc_lang.Vars.expr_vars e)
  | Ast.Recv (chan, x) -> Ifc_support.Sset.add x (Ifc_support.Sset.singleton chan)
  | Ast.Seq _ | Ast.Cobegin _ -> Ifc_support.Sset.empty

let init (p : Ast.program) ?(inputs = []) () =
  let store, arrays, sems, chans, chan_caps =
    List.fold_left
      (fun (store, arrays, sems, chans, caps) decl ->
        match decl with
        | Ast.Var_decl { name; _ } -> (Smap.add name 0 store, arrays, sems, chans, caps)
        | Ast.Arr_decl { name; size; _ } ->
          (store, Smap.add name (Array.make size 0) arrays, sems, chans, caps)
        | Ast.Sem_decl { name; init; _ } ->
          (store, arrays, Smap.add name init sems, chans, caps)
        | Ast.Chan_decl { name; cap; _ } ->
          (store, arrays, sems, Smap.add name [] chans, Smap.add name cap caps))
      (Smap.empty, Smap.empty, Smap.empty, Smap.empty, Smap.empty)
      p.decls
  in
  let store =
    List.fold_left
      (fun store (x, v) ->
        if Smap.mem x store then Smap.add x v store else store)
      store inputs
  in
  { task = Task.simplify (Task.of_stmt p.body); store; arrays; sems; chans; chan_caps }

let is_terminated c = Task.is_done c.task

(* Step a leaf statement: the action label, successor task fragment, and
   updated (store, arrays, sems). *)
let step_leaf cfg (s : Ast.stmt) =
  let env = env_of cfg in
  let unchanged = (cfg.store, cfg.arrays, cfg.sems, cfg.chans) in
  match s.Ast.node with
  | Ast.Skip -> Some (L_skip, Task.Nil, unchanged)
  | Ast.Assign (x, e) | Ast.Declassify (x, e, _) ->
    let v = Eval.expr env e in
    Some
      (L_assign (x, v), Task.Nil, (Smap.add x v cfg.store, cfg.arrays, cfg.sems, cfg.chans))
  | Ast.Store (a, i, e) ->
    let idx = Eval.expr env i in
    let v = Eval.expr env e in
    let env' = Eval.store_index env a idx v in
    Some
      (L_store (a, idx, v), Task.Nil, (cfg.store, env'.Eval.arrays, cfg.sems, cfg.chans))
  | Ast.If (cond, then_, else_) ->
    let taken = Eval.truthy (Eval.expr env cond) in
    let branch = if taken then then_ else else_ in
    Some (L_branch taken, Task.of_stmt branch, unchanged)
  | Ast.While (cond, body) ->
    let continue = Eval.truthy (Eval.expr env cond) in
    if continue then
      Some (L_loop true, Task.Seq (Task.of_stmt body, Task.Leaf s), unchanged)
    else Some (L_loop false, Task.Nil, unchanged)
  | Ast.Wait sem ->
    let count = Smap.find_or ~default:0 sem cfg.sems in
    if count > 0 then
      Some
        ( L_wait sem,
          Task.Nil,
          (cfg.store, cfg.arrays, Smap.add sem (count - 1) cfg.sems, cfg.chans) )
    else None (* blocked *)
  | Ast.Signal sem ->
    let count = Smap.find_or ~default:0 sem cfg.sems in
    Some
      ( L_signal sem,
        Task.Nil,
        (cfg.store, cfg.arrays, Smap.add sem (count + 1) cfg.sems, cfg.chans) )
  | Ast.Send (chan, e) ->
    (* Bounded asynchronous send: blocks while the queue is full. An
       undeclared channel has capacity [default_channel_capacity]. *)
    let queue = Smap.find_or ~default:[] chan cfg.chans in
    let cap =
      Smap.find_or ~default:Ifc_lang.Wellformed.default_channel_capacity chan
        cfg.chan_caps
    in
    if List.length queue >= cap then None (* blocked on full channel *)
    else
      let v = Eval.expr env e in
      Some
        ( L_send (chan, v),
          Task.Nil,
          (cfg.store, cfg.arrays, cfg.sems, Smap.add chan (queue @ [ v ]) cfg.chans) )
  | Ast.Recv (chan, x) -> (
    match Smap.find_or ~default:[] chan cfg.chans with
    | [] -> None (* blocked on empty channel *)
    | v :: rest ->
      Some
        ( L_recv (chan, x, v),
          Task.Nil,
          (Smap.add x v cfg.store, cfg.arrays, cfg.sems, Smap.add chan rest cfg.chans) ))
  | Ast.Seq _ | Ast.Cobegin _ ->
    (* Normalisation guarantees composition never appears at a leaf. *)
    assert false

(* Enumerate redexes: leaves reachable without entering the continuation
   of a Seq. Rebuilds the task with the redex replaced by its successor. *)
let enabled cfg =
  let counter = ref 0 in
  let choices = ref [] in
  let rec walk task (rebuild : Task.t -> Task.t) =
    match task with
    | Task.Nil -> ()
    | Task.Leaf s ->
      let index = !counter in
      incr counter;
      (match step_leaf cfg s with
      | None -> () (* blocked wait or channel op *)
      | Some (label, succ, (store, arrays, sems, chans)) ->
        let next =
          {
            task = Task.simplify (rebuild succ);
            store;
            arrays;
            sems;
            chans;
            chan_caps = cfg.chan_caps;
          }
        in
        choices :=
          { index; label; next; footprint = action_footprint s; span = s.Ast.span }
          :: !choices)
    | Task.Seq (a, b) -> walk a (fun a' -> rebuild (Task.Seq (a', b)))
    | Task.Par ts ->
      List.iteri
        (fun i t ->
          walk t (fun t' ->
              rebuild (Task.Par (List.mapi (fun j u -> if j = i then t' else u) ts))))
        ts
  in
  match walk cfg.task Fun.id with
  | () -> Ok (List.rev !choices)
  | exception Eval.Fault msg -> Error msg

let key cfg =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Task.key cfg.task);
  Smap.iter (fun k v -> Buffer.add_string buf (Printf.sprintf "%s=%d," k v)) cfg.store;
  Buffer.add_char buf '/';
  Smap.iter
    (fun k arr ->
      Buffer.add_string buf (k ^ "=");
      Array.iter (fun v -> Buffer.add_string buf (string_of_int v ^ ".")) arr;
      Buffer.add_char buf ',')
    cfg.arrays;
  Buffer.add_char buf '/';
  Smap.iter (fun k v -> Buffer.add_string buf (Printf.sprintf "%s=%d," k v)) cfg.sems;
  Buffer.add_char buf '/';
  Smap.iter
    (fun k queue ->
      Buffer.add_string buf (k ^ "=");
      List.iter (fun v -> Buffer.add_string buf (string_of_int v ^ ".")) queue;
      Buffer.add_char buf ',')
    cfg.chans;
  Buffer.contents buf

(* Channels on which some redex is currently blocked: a send on a full
   queue or a recv on an empty one. Nonempty at a deadlock exactly when
   channel communication is (part of) what is stuck. *)
let blocked_channels cfg =
  let out = ref Ifc_support.Sset.empty in
  let rec walk task =
    match task with
    | Task.Nil -> ()
    | Task.Leaf s -> (
      match s.Ast.node with
      | Ast.Send (chan, _) ->
        let queue = Smap.find_or ~default:[] chan cfg.chans in
        let cap =
          Smap.find_or ~default:Ifc_lang.Wellformed.default_channel_capacity chan
            cfg.chan_caps
        in
        if List.length queue >= cap then out := Ifc_support.Sset.add chan !out
      | Ast.Recv (chan, _) ->
        if Smap.find_or ~default:[] chan cfg.chans = [] then
          out := Ifc_support.Sset.add chan !out
      | _ -> ())
    | Task.Seq (a, _) -> walk a
    | Task.Par ts -> List.iter walk ts
  in
  walk cfg.task;
  Ifc_support.Sset.elements !out

let low_projection binding ~observer cfg =
  let lat = Ifc_core.Binding.lattice binding in
  let visible name = lat.Ifc_lattice.Lattice.leq (Ifc_core.Binding.sbind binding name) observer in
  let of_map m = List.filter (fun (name, _) -> visible name) (Smap.bindings m) in
  let array_cells =
    List.concat_map
      (fun (name, arr) ->
        if visible name then
          List.mapi (fun i v -> (Printf.sprintf "%s[%d]" name i, v)) (Array.to_list arr)
        else [])
      (Smap.bindings cfg.arrays)
  in
  (* A visible channel exposes its queue contents and (via a length
     entry) how many messages are pending — both observable to anyone
     who can recv from it. *)
  let chan_cells =
    List.concat_map
      (fun (name, queue) ->
        if visible name then
          (Printf.sprintf "%s#len" name, List.length queue)
          :: List.mapi (fun i v -> (Printf.sprintf "%s<%d>" name i, v)) queue
        else [])
      (Smap.bindings cfg.chans)
  in
  List.sort compare (of_map cfg.store @ array_cells @ chan_cells @ of_map cfg.sems)

let pp ppf cfg =
  Fmt.pf ppf "@[<v>task: %a@ store: %a@ sems: %a@ chans: %a@]" Task.pp cfg.task
    Eval.pp_env (env_of cfg) (Smap.pp Fmt.int) cfg.sems
    (Smap.pp (Fmt.brackets (Fmt.list ~sep:Fmt.comma Fmt.int)))
    cfg.chans

let pp_label ppf = function
  | L_skip -> Fmt.string ppf "skip"
  | L_assign (x, v) -> Fmt.pf ppf "%s := %d" x v
  | L_store (a, i, v) -> Fmt.pf ppf "%s[%d] := %d" a i v
  | L_branch b -> Fmt.pf ppf "if -> %b" b
  | L_loop b -> Fmt.pf ppf "while -> %b" b
  | L_wait s -> Fmt.pf ppf "wait(%s)" s
  | L_signal s -> Fmt.pf ppf "signal(%s)" s
  | L_send (c, v) -> Fmt.pf ppf "send(%s, %d)" c v
  | L_recv (c, x, v) -> Fmt.pf ppf "recv(%s, %s) = %d" c x v
