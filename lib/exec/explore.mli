(** Bounded exhaustive exploration of the interleaving space.

    Breadth-first search over the configuration graph with memoisation.
    For programs whose reachable state space fits in [max_states], the
    summary is exact: every reachable terminal store, whether deadlock is
    reachable, and whether the graph contains a cycle (i.e. divergence is
    possible). When the bound is hit the summary is marked incomplete and
    consumers (the noninterference tester) must treat it as unknown. *)

type summary = {
  terminals : Step.config list;  (** Distinct terminated configurations. *)
  deadlocks : Step.config list;  (** Distinct deadlocked configurations. *)
  faults : string list;  (** Distinct runtime-fault messages. *)
  races : string list;
      (** Variables with a witnessed data race: in some visited state two
          co-enabled actions of different processes conflicted (one wrote
          a variable in the other's footprint). Co-enabled actions are
          necessarily unordered, so a witness is definitive even when the
          exploration is bounded or reduced; an empty list proves nothing
          unless [complete] (and partial-order reduction may skip states,
          so only an unreduced complete exploration is exhaustive).
          Semaphore operations never witness a race. *)
  chan_races : string list;
      (** Channels with witnessed same-endpoint contention: two
          co-enabled sends (or two co-enabled recvs) on the channel —
          which message lands where depends on the schedule. A send
          co-enabled with a recv is the intended rendezvous, not a
          race. *)
  chan_blocked : string list;
      (** Channels on which some reached deadlock has a blocked [send]
          (full queue) or [recv] (empty queue): channel communication is
          part of what is stuck there. *)
  has_cycle : bool;  (** A configuration can reach itself: divergence. *)
  states : int;  (** States visited. *)
  complete : bool;  (** False iff [max_states] was exhausted. *)
  visited_spans : Ifc_lang.Loc.span list;
      (** Distinct source spans of statements enabled in some visited
          state (dummy spans dropped) — the execution-side evidence that
          a statement is reachable, cross-checked against static
          infeasible-path pruning. *)
}

val explore : ?por:bool -> ?max_states:int -> Step.config -> summary
(** [explore c] searches from [c]; default [max_states] is 20_000.

    [~por:true] enables partial-order reduction: when an enabled action
    touches only variables no other process ever accesses (computed
    statically from the initial task), it commutes with every concurrent
    action and is explored as a singleton persistent set, with the
    standard cycle proviso (never reduce onto the DFS stack). This
    preserves the summary — terminal stores, deadlock and fault
    reachability, divergence — while visiting fewer states; the test
    suite checks the equivalence on random corpora and the benchmark
    harness reports the reduction factors. Default off. *)

val explore_program :
  ?por:bool ->
  ?max_states:int ->
  ?inputs:(string * int) list ->
  Ifc_lang.Ast.program ->
  summary

val can_deadlock : summary -> bool

val pp : Format.formatter -> summary -> unit
