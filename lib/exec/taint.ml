(* Dynamic information-state monitoring. *)

module Smap = Ifc_support.Smap
module Prng = Ifc_support.Prng
module Lattice = Ifc_lattice.Lattice
module Ast = Ifc_lang.Ast
module Binding = Ifc_core.Binding

(* Monitored task trees: [Ctx (c, t)] runs [t] with the local context
   raised by [c] — the classes of the conditions guarding [t]. *)
type 'a ttask =
  | TNil
  | TLeaf of Ast.stmt
  | TSeq of 'a ttask * 'a ttask
  | TPar of 'a ttask list
  | TCtx of 'a * 'a ttask

let rec of_stmt (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.Seq stmts -> List.fold_right (fun st acc -> TSeq (of_stmt st, acc)) stmts TNil
  | Ast.Cobegin branches -> TPar (List.map of_stmt branches)
  | Ast.Skip | Ast.Assign _ | Ast.Declassify _ | Ast.Store _ | Ast.If _ | Ast.While _
  | Ast.Wait _ | Ast.Signal _ | Ast.Send _ | Ast.Recv _ ->
    TLeaf s

let rec is_done = function
  | TNil -> true
  | TLeaf _ -> false
  | TSeq (a, b) -> is_done a && is_done b
  | TPar ts -> List.for_all is_done ts
  | TCtx (_, t) -> is_done t

let rec simplify = function
  | TNil -> TNil
  | TLeaf _ as t -> t
  | TSeq (a, b) -> ( match simplify a with TNil -> simplify b | a' -> TSeq (a', b))
  | TPar ts -> (
    match List.filter (fun t -> not (is_done t)) (List.map simplify ts) with
    | [] -> TNil
    | ts' -> TPar ts')
  | TCtx (c, t) -> ( match simplify t with TNil -> TNil | t' -> TCtx (c, t'))

type 'a state = {
  task : 'a ttask;
  store : Eval.store;
  arrays : int array Smap.t;
  sems : int Smap.t;
  chans : int list Smap.t;
  chan_caps : int Smap.t;
  classes : 'a Smap.t;
  global : 'a;
}

let env_of (st : 'a state) = { Eval.store = st.store; arrays = st.arrays }

type 'a report = {
  outcome : [ `Terminated | `Deadlock | `Fault of string | `Fuel_exhausted ];
  store : Eval.store;
  classes : 'a Smap.t;
  global : 'a;
  violations : (string * 'a) list;
}

(* The class of an expression under the *current* information state;
   arrays carry one class for all slots. *)
let rec expr_class (lat : 'a Lattice.t) classes = function
  | Ast.Int _ | Ast.Bool _ -> lat.Lattice.bottom
  | Ast.Var x -> Smap.find_or ~default:lat.Lattice.bottom x classes
  | Ast.Index (a, i) ->
    lat.Lattice.join
      (Smap.find_or ~default:lat.Lattice.bottom a classes)
      (expr_class lat classes i)
  | Ast.Unop (_, e) -> expr_class lat classes e
  | Ast.Binop (_, a, b) ->
    lat.Lattice.join (expr_class lat classes a) (expr_class lat classes b)

(* One step of a leaf under local context [pc]. *)
let step_leaf (lat : 'a Lattice.t) (st : 'a state) pc (s : Ast.stmt) =
  let cls name = Smap.find_or ~default:lat.Lattice.bottom name st.classes in
  match s.Ast.node with
  | Ast.Skip -> Some (TNil, st)
  | Ast.Assign (x, e) ->
    let v = Eval.expr (env_of st) e in
    let c = lat.Lattice.join (expr_class lat st.classes e) (lat.Lattice.join pc st.global) in
    Some
      (TNil, { st with store = Smap.add x v st.store; classes = Smap.add x c st.classes })
  | Ast.Declassify (x, e, cls) ->
    let v = Eval.expr (env_of st) e in
    let named =
      match lat.Lattice.of_string cls with Ok c -> c | Error _ -> lat.Lattice.top
    in
    let c = lat.Lattice.join named (lat.Lattice.join pc st.global) in
    Some
      (TNil, { st with store = Smap.add x v st.store; classes = Smap.add x c st.classes })
  | Ast.Store (a, i, e) ->
    let env = env_of st in
    let idx = Eval.expr env i in
    let v = Eval.expr env e in
    let env' = Eval.store_index env a idx v in
    (* Weak update on the class: slots not written keep their
       information. *)
    let stored =
      lat.Lattice.join
        (expr_class lat st.classes i)
        (lat.Lattice.join (expr_class lat st.classes e) (lat.Lattice.join pc st.global))
    in
    let c = lat.Lattice.join (cls a) stored in
    Some
      ( TNil,
        { st with arrays = env'.Eval.arrays; classes = Smap.add a c st.classes } )
  | Ast.If (cond, then_, else_) ->
    let taken = Eval.truthy (Eval.expr (env_of st) cond) in
    let c = expr_class lat st.classes cond in
    let branch = if taken then then_ else else_ in
    Some (TCtx (c, of_stmt branch), st)
  | Ast.While (cond, body) ->
    let c = expr_class lat st.classes cond in
    let st = { st with global = lat.Lattice.join st.global (lat.Lattice.join pc c) } in
    if Eval.truthy (Eval.expr (env_of st) cond) then
      Some (TCtx (c, TSeq (of_stmt body, TLeaf s)), st)
    else Some (TNil, st)
  | Ast.Wait sem ->
    let count = Smap.find_or ~default:0 sem st.sems in
    if count <= 0 then None
    else
      let g = lat.Lattice.join st.global (lat.Lattice.join pc (cls sem)) in
      let sem_c = lat.Lattice.join (cls sem) (lat.Lattice.join pc g) in
      Some
        ( TNil,
          {
            st with
            sems = Smap.add sem (count - 1) st.sems;
            classes = Smap.add sem sem_c st.classes;
            global = g;
          } )
  | Ast.Signal sem ->
    let count = Smap.find_or ~default:0 sem st.sems in
    let sem_c = lat.Lattice.join (cls sem) (lat.Lattice.join pc st.global) in
    Some
      ( TNil,
        {
          st with
          sems = Smap.add sem (count + 1) st.sems;
          classes = Smap.add sem sem_c st.classes;
        } )
  | Ast.Send (chan, e) ->
    let queue = Smap.find_or ~default:[] chan st.chans in
    let cap =
      Smap.find_or ~default:Ifc_lang.Wellformed.default_channel_capacity chan
        st.chan_caps
    in
    if List.length queue >= cap then None
    else
      let v = Eval.expr (env_of st) e in
      (* Mirror the flow-sensitive send rule: the channel absorbs the
         payload's current class and the sending context. *)
      let stored =
        lat.Lattice.join
          (expr_class lat st.classes e)
          (lat.Lattice.join pc st.global)
      in
      let chan_c = lat.Lattice.join (cls chan) stored in
      Some
        ( TNil,
          {
            st with
            chans = Smap.add chan (queue @ [ v ]) st.chans;
            classes = Smap.add chan chan_c st.classes;
          } )
  | Ast.Recv (chan, x) -> (
    match Smap.find_or ~default:[] chan st.chans with
    | [] -> None
    | v :: rest ->
      (* Wait-like conditional delay (global absorbs the channel's
         class), then the delivered message lands in [x]. *)
      let g = lat.Lattice.join st.global (lat.Lattice.join pc (cls chan)) in
      let delivered = lat.Lattice.join (cls chan) (lat.Lattice.join pc g) in
      Some
        ( TNil,
          {
            st with
            store = Smap.add x v st.store;
            chans = Smap.add chan rest st.chans;
            classes = Smap.add x delivered (Smap.add chan delivered st.classes);
            global = g;
          } ))
  | Ast.Seq _ | Ast.Cobegin _ -> assert false

(* Enumerate enabled choices as (successor-state) thunks. *)
let enabled (lat : 'a Lattice.t) st =
  let choices = ref [] in
  let counter = ref 0 in
  let rec walk task pc rebuild =
    match task with
    | TNil -> ()
    | TLeaf s ->
      let index = !counter in
      incr counter;
      (match step_leaf lat st pc s with
      | None -> ()
      | Some (succ, st') ->
        choices := (index, { st' with task = simplify (rebuild succ) }) :: !choices)
    | TSeq (a, b) -> walk a pc (fun a' -> rebuild (TSeq (a', b)))
    | TPar ts ->
      List.iteri
        (fun i t ->
          walk t pc (fun t' ->
              rebuild (TPar (List.mapi (fun j u -> if j = i then t' else u) ts))))
        ts
    | TCtx (c, t) -> walk t (lat.Lattice.join pc c) (fun t' -> rebuild (TCtx (c, t')))
  in
  match walk st.task lat.Lattice.bottom Fun.id with
  | () -> Ok (List.rev !choices)
  | exception Eval.Fault msg -> Error msg

let run ?(fuel = 100_000) ?(inputs = []) ~strategy binding (p : Ast.program) =
  let lat = Binding.lattice binding in
  let store, arrays, sems, chans, chan_caps =
    List.fold_left
      (fun (store, arrays, sems, chans, caps) decl ->
        match decl with
        | Ast.Var_decl { name; _ } -> (Smap.add name 0 store, arrays, sems, chans, caps)
        | Ast.Arr_decl { name; size; _ } ->
          (store, Smap.add name (Array.make size 0) arrays, sems, chans, caps)
        | Ast.Sem_decl { name; init; _ } ->
          (store, arrays, Smap.add name init sems, chans, caps)
        | Ast.Chan_decl { name; cap; _ } ->
          (store, arrays, sems, Smap.add name [] chans, Smap.add name cap caps))
      (Smap.empty, Smap.empty, Smap.empty, Smap.empty, Smap.empty)
      p.decls
  in
  let store =
    List.fold_left
      (fun store (x, v) -> if Smap.mem x store then Smap.add x v store else store)
      store inputs
  in
  (* Inputs arrive at their clearance: initial class = binding. *)
  let classes =
    List.fold_left
      (fun classes decl ->
        let name =
          match decl with
          | Ast.Var_decl { name; _ }
          | Ast.Arr_decl { name; _ }
          | Ast.Sem_decl { name; _ }
          | Ast.Chan_decl { name; _ } ->
            name
        in
        Smap.add name (Binding.sbind binding name) classes)
      Smap.empty p.decls
  in
  let init =
    {
      task = simplify (of_stmt p.body);
      store;
      arrays;
      sems;
      chans;
      chan_caps;
      classes;
      global = lat.Lattice.bottom;
    }
  in
  let rng = match strategy with `Random seed -> Some (Prng.create seed) | _ -> None in
  let cursor = ref 0 in
  let pick choices =
    match (strategy, choices) with
    | _, [] -> None
    | `Leftmost, c :: _ -> Some c
    | `Random _, cs ->
      let rng = Option.get rng in
      Some (List.nth cs (Prng.int rng (List.length cs)))
    | `Round_robin, cs ->
      let sorted = List.sort (fun (i, _) (j, _) -> compare i j) cs in
      let chosen =
        match List.find_opt (fun (i, _) -> i >= !cursor) sorted with
        | Some c -> c
        | None -> List.hd sorted
      in
      cursor := fst chosen + 1;
      Some chosen
  in
  let finish outcome (st : 'a state) =
    let violations =
      Smap.fold
        (fun v c acc ->
          if lat.Lattice.leq c (Binding.sbind binding v) then acc else (v, c) :: acc)
        st.classes []
    in
    { outcome; store = st.store; classes = st.classes; global = st.global; violations }
  in
  let rec loop st fuel =
    if is_done st.task then finish `Terminated st
    else if fuel <= 0 then finish `Fuel_exhausted st
    else
      match enabled lat st with
      | Error msg -> finish (`Fault msg) st
      | Ok [] -> finish `Deadlock st
      | Ok choices -> (
        match pick choices with
        | None -> finish `Deadlock st
        | Some (_, st') -> loop st' (fuel - 1))
  in
  loop init fuel

let pp_report (lat : 'a Lattice.t) ppf r =
  let pp_cls ppf c = Fmt.string ppf (lat.Lattice.to_string c) in
  Fmt.pf ppf
    "@[<v>outcome: %s@ store: %a@ information state: %a@ global: %a@ violations: %a@]"
    (match r.outcome with
    | `Terminated -> "terminated"
    | `Deadlock -> "deadlock"
    | `Fault m -> "fault: " ^ m
    | `Fuel_exhausted -> "fuel exhausted")
    Eval.pp_store r.store (Smap.pp pp_cls) r.classes pp_cls r.global
    (Fmt.list ~sep:(Fmt.any ",@ ") (fun ppf (v, c) -> Fmt.pf ppf "%s at %a" v pp_cls c))
    r.violations
