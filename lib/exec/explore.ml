(* Exhaustive interleaving exploration with memoisation, with optional
   partial-order reduction. *)

module Sset = Ifc_support.Sset
module Ast = Ifc_lang.Ast

type summary = {
  terminals : Step.config list;
  deadlocks : Step.config list;
  faults : string list;
  races : string list;
  chan_races : string list;
  chan_blocked : string list;
  has_cycle : bool;
  states : int;
  complete : bool;
  visited_spans : Ifc_lang.Loc.span list;
}

(* Variables an action writes. Semaphore operations are synchronization,
   not data accesses, so they never witness a race; a recv writes its
   target variable (the channel endpoint itself is not a data access —
   same-endpoint contention is [chan_races]'s subject). *)
let label_writes = function
  | Step.L_assign (x, _) -> Some x
  | Step.L_store (a, _, _) -> Some a
  | Step.L_recv (_, x, _) -> Some x
  | Step.L_skip | Step.L_branch _ | Step.L_loop _ | Step.L_wait _
  | Step.L_signal _ | Step.L_send _ ->
    None

(* Racy variables: names accessed by two or more branches of some
   cobegin. An action whose footprint avoids them commutes with every
   action of every other process — so exploring it alone from a state is
   a (singleton) persistent set and preserves reachable terminals,
   deadlocks, faults and divergence. Accesses only disappear as the
   program runs, so computing this once on the initial task is sound. *)
let rec racy_stmt (s : Ast.stmt) =
  match s.Ast.node with
  | Ast.Skip | Ast.Assign _ | Ast.Declassify _ | Ast.Store _ | Ast.Wait _ | Ast.Signal _
  | Ast.Send _ | Ast.Recv _ ->
    Sset.empty
  | Ast.If (_, a, b) -> Sset.union (racy_stmt a) (racy_stmt b)
  | Ast.While (_, b) -> racy_stmt b
  | Ast.Seq ss -> List.fold_left (fun acc s -> Sset.union acc (racy_stmt s)) Sset.empty ss
  | Ast.Cobegin branches ->
    let accesses = List.map Ifc_lang.Vars.all_vars branches in
    let shared =
      List.fold_left
        (fun acc (a, b) -> Sset.union acc (Sset.inter a b))
        Sset.empty
        (Ifc_support.Listx.pairs accesses)
    in
    List.fold_left (fun acc s -> Sset.union acc (racy_stmt s)) shared branches

let rec racy_task (t : Task.t) =
  match t with
  | Task.Nil -> Sset.empty
  | Task.Leaf s -> racy_stmt s
  | Task.Seq (a, b) -> Sset.union (racy_task a) (racy_task b)
  | Task.Par ts ->
    let accesses =
      List.map
        (fun t ->
          let rec acc = function
            | Task.Nil -> Sset.empty
            | Task.Leaf s -> Ifc_lang.Vars.all_vars s
            | Task.Seq (a, b) -> Sset.union (acc a) (acc b)
            | Task.Par us -> List.fold_left (fun s u -> Sset.union s (acc u)) Sset.empty us
          in
          acc t)
        ts
    in
    let shared =
      List.fold_left
        (fun s (a, b) -> Sset.union s (Sset.inter a b))
        Sset.empty
        (Ifc_support.Listx.pairs accesses)
    in
    List.fold_left (fun s t -> Sset.union s (racy_task t)) shared ts

let explore ?(por = false) ?(max_states = 20_000) cfg =
  (* Iterative DFS with white/gray/black colouring: gray-hits are cycles. *)
  let racy = if por then racy_task cfg.Step.task else Sset.empty in
  let colour : (string, [ `Gray | `Black ]) Hashtbl.t = Hashtbl.create 1024 in
  let terminals = ref [] in
  let deadlocks = ref [] in
  let faults = ref [] in
  let races = ref Sset.empty in
  let chan_races = ref Sset.empty in
  let chan_blocked = ref Sset.empty in
  let has_cycle = ref false in
  let complete = ref true in
  let span_seen : (Ifc_lang.Loc.span, unit) Hashtbl.t = Hashtbl.create 64 in
  let visited_spans = ref [] in
  let note_span sp =
    if (not (Ifc_lang.Loc.is_dummy sp)) && not (Hashtbl.mem span_seen sp) then begin
      Hashtbl.add span_seen sp ();
      visited_spans := sp :: !visited_spans
    end
  in
  let add_fault msg = if not (List.mem msg !faults) then faults := msg :: !faults in
  (* A race witness: two co-enabled actions of different processes where
     one writes a variable in the other's footprint. Enabled choices with
     distinct indices always belong to distinct parallel branches, so
     co-enabledness alone proves the accesses are unordered — the witness
     is definitive even when the exploration is bounded.

     A channel-race witness is same-endpoint contention: two co-enabled
     sends (or two co-enabled recvs) on one channel — which message lands
     where depends on the schedule. A send co-enabled with a recv is the
     intended rendezvous, not a race. *)
  let scan_races choices =
    let rec go = function
      | [] -> ()
      | ch :: rest ->
        List.iter
          (fun other ->
            let conflict a b =
              match label_writes a.Step.label with
              | Some x when Sset.mem x b.Step.footprint ->
                races := Sset.add x !races
              | _ -> ()
            in
            conflict ch other;
            conflict other ch;
            match (ch.Step.label, other.Step.label) with
            | Step.L_send (c, _), Step.L_send (c', _)
            | Step.L_recv (c, _, _), Step.L_recv (c', _, _)
              when String.equal c c' ->
              chan_races := Sset.add c !chan_races
            | _ -> ())
          rest;
        go rest
    in
    go choices
  in
  (* Stack frames: Enter (first visit) or Leave (mark black). *)
  let stack = ref [ `Enter cfg ] in
  let push f = stack := f :: !stack in
  let states = ref 0 in
  let rec loop () =
    match !stack with
    | [] -> ()
    | frame :: rest ->
      stack := rest;
      (match frame with
      | `Leave k -> Hashtbl.replace colour k `Black
      | `Enter c -> (
        let k = Step.key c in
        match Hashtbl.find_opt colour k with
        | Some `Gray -> has_cycle := true
        | Some `Black -> ()
        | None ->
          if !states >= max_states then complete := false
          else begin
            incr states;
            Hashtbl.replace colour k `Gray;
            push (`Leave k);
            if Step.is_terminated c then terminals := c :: !terminals
            else
              match Step.enabled c with
              | Error msg -> add_fault msg
              | Ok [] ->
                deadlocks := c :: !deadlocks;
                List.iter
                  (fun chan -> chan_blocked := Sset.add chan !chan_blocked)
                  (Step.blocked_channels c)
              | Ok choices ->
                (* Every enabled choice's statement is reachable — record
                   it before any reduction thins the list. *)
                List.iter (fun ch -> note_span ch.Step.span) choices;
                if List.length choices > 1 then scan_races choices;
                (* Partial-order reduction: if some enabled action touches
                   no racy name, it commutes with everything the other
                   processes can do, so it alone is a persistent set. The
                   cycle proviso (never reduce onto the DFS stack) guards
                   against postponing the other processes forever. *)
                let choices =
                  if por && List.length choices > 1 then
                    match
                      List.find_opt
                        (fun ch ->
                          Sset.is_empty (Sset.inter ch.Step.footprint racy)
                          && Hashtbl.find_opt colour (Step.key ch.Step.next)
                             <> Some `Gray)
                        choices
                    with
                    | Some ch -> [ ch ]
                    | None -> choices
                  else choices
                in
                List.iter (fun ch -> push (`Enter ch.Step.next)) choices
          end));
      loop ()
  in
  loop ();
  {
    terminals = !terminals;
    deadlocks = !deadlocks;
    faults = !faults;
    races = Sset.elements !races;
    chan_races = Sset.elements !chan_races;
    chan_blocked = Sset.elements !chan_blocked;
    has_cycle = !has_cycle;
    states = !states;
    complete = !complete;
    visited_spans = !visited_spans;
  }

let explore_program ?por ?max_states ?inputs p =
  explore ?por ?max_states (Step.init p ?inputs ())

let can_deadlock s = s.deadlocks <> []

let pp ppf s =
  Fmt.pf ppf
    "@[<v>states: %d%s@ terminals: %d@ deadlocks: %d@ faults: %d@ divergence possible: %b@]"
    s.states
    (if s.complete then "" else " (bound hit, incomplete)")
    (List.length s.terminals) (List.length s.deadlocks) (List.length s.faults)
    s.has_cycle
