(** A persistent content-addressed artifact store: the disk tier behind
    the in-memory {!Ifc_pipeline.Cache}.

    One file per entry under [objects/], named by the {!Ifc_pipeline.Job}
    digest it answers for, carrying the job's full analysis results —
    verdicts, check counts, and artifacts (certificate bytes, lint
    claims). Every write goes to [tmp/] first and reaches its final name
    by an atomic rename, so a crash at any instant leaves either the old
    store or the new store, never a torn entry. Every file ends in a
    checksum line over its payload; a reader that finds a mismatch — or
    any other structural damage — moves the file to [quarantine/] and
    answers as if the entry never existed, so corruption degrades to a
    recompute, never to a wrong answer served.

    Layout under the store directory:

    {v
    manifest            generation counter (bumped per open)
    objects/<digest>    one analysis-result entry per job digest
    summaries/<digest>  one subtree flow summary per {!Incremental} digest
    tmp/                write staging; leftovers are swept by gc
    quarantine/         damaged files moved aside, kept for forensics
    v}

    {b Generations and heat.} The manifest holds a generation counter,
    bumped every time the store is opened for writing. Entries are
    stamped with the generation current when they were written, and are
    re-stamped on a read hit and by {!record_heat}, so an entry's stamp
    is the last generation that cared about it. {!preload} loads the
    highest-stamped entries — the previous session's hot set — into the
    memory cache at boot, and {!gc} sweeps entries whose stamp has
    fallen out of the keep window.

    The store is safe to share across the domains of one process: all
    disk operations serialise behind an internal lock. It is {e not} a
    concurrency-safe database across processes, but because writes are
    atomic renames of content-addressed files, the worst a concurrent
    writer can do is replace an entry with identical bytes. *)

module Job := Ifc_pipeline.Job
module Cache := Ifc_pipeline.Cache
module Tier := Ifc_pipeline.Tier

type t

val open_ : ?bump:bool -> string -> (t, string) result
(** [open_ dir] opens (creating if needed) the store at [dir] and bumps
    its generation. [~bump:false] opens without bumping — for read-only
    inspection verbs ([stats], [verify]) that must not age the heat
    ranking. [Error] reports an unusable directory (e.g. a manifest path
    occupied by a directory). *)

val dir : t -> string

val generation : t -> int
(** The generation this session writes; stamps re-written by reads and
    {!record_heat} also use it. *)

(** {1 Entries} *)

val find :
  ?validate:(Job.analysis_result list -> bool) ->
  t ->
  digest:string ->
  Job.analysis_result list option
(** [find t ~digest] reads the entry for [digest], if any. The entry's
    checksum and structure are always verified; [validate] (default:
    accept) lets the caller impose semantic checks — the {!tier} runs
    certificate artifacts through the independent checker here. Any
    failure quarantines the file and answers [None]. A hit re-stamps
    the entry to the current generation. Counts one disk hit or miss. *)

val add : t -> digest:string -> Job.analysis_result list -> unit
(** Persist one result set under [digest] (atomic write-then-rename;
    last writer wins). Counts one write. *)

(** {1 Subtree summaries}

    Persistence for {!Incremental}: class values are stored as rendered
    strings so the store itself stays lattice-agnostic. *)

type summary = {
  s_mod : string;  (** Rendered [mod] class. *)
  s_flow : string option;  (** Rendered [flow] class; [None] is [nil]. *)
  s_cert : bool;  (** Is the subtree certified? *)
}

val find_summary : t -> digest:string -> summary option
(** Checksum-verified like {!find} (corrupt summaries are quarantined);
    a hit re-stamps. Does not count toward entry hit/miss statistics. *)

val add_summary : t -> digest:string -> summary -> unit

(** {1 Warm start} *)

val preload : t -> Job.analysis_result list Cache.t -> int
(** Load the hottest generation — every entry carrying the highest stamp
    on disk, up to the cache's capacity — into the memory cache, coldest
    first so the hottest end up most recent. Returns the number loaded. *)

val record_heat : t -> Job.analysis_result list Cache.t -> unit
(** Re-stamp every store entry still live in the memory cache to the
    current generation, so the next {!preload} resurrects this session's
    final hot set. *)

(** {1 Maintenance} *)

type disk_stats = {
  generation : int;
  entries : int;
  entry_bytes : int;
  summaries : int;
  summary_bytes : int;
  quarantined : int;
}

val disk_stats : t -> disk_stats

type verify_report = {
  checked : int;
  ok : int;
  quarantined : int;
  quarantined_files : string list;  (** Basenames, in walk order. *)
}

val verify : t -> verify_report
(** Structurally verify every object and summary: checksum, digest line
    matching the file name, parseable results, and certificate artifacts
    accepted by {!Ifc_cert.Cert.parse}. Files that fail — including junk
    files whose names are not digests — are moved to [quarantine/]. *)

type gc_report = {
  live : int;
  swept : int;
  tmp_swept : int;
  bytes_freed : int;
}

val gc : ?keep:int -> ?tmp_age:float -> t -> gc_report
(** Mark-and-sweep by generation: an entry or summary is live iff its
    stamp is within [keep] (default 2) generations of the current one;
    everything older is deleted. Staging leftovers in [tmp/] are swept
    only when older than [tmp_age] seconds (default one hour): a fresh
    tmp file may be a concurrent writer's in-flight publish — the
    in-process mutex does not cover other processes sharing the
    directory — and removing it mid-publish would tear that write, so
    gc keeps it for a later pass rather than half-collecting it.
    Unrecognised files are left for {!verify} to quarantine. *)

(** {1 The pipeline tier} *)

val tier : t -> Tier.t
(** [tier t] adapts the store to the pipeline's second-level cache
    interface. Its [find] re-validates certificate artifacts read from
    disk with the independent checker ({!Ifc_cert.Checker.check})
    against the requesting spec's program, quarantining entries whose
    certificates no longer check. Its [stats] combines session counters
    (hits, misses, writes, preloads) with current disk occupancy. *)
