(** Incremental CFM certification over persistent subtree summaries.

    Figure 2's flow mechanism is syntax-directed: the [mod], [flow] and
    certification verdict of a construct are functions of its children's
    triples plus its own atoms (condition classes, binding lookups).
    Those triples therefore compose — and cache. This module keys each
    subtree's triple (its {e summary}) by a structural digest covering
    the subtree's printed form and the certification context (binding,
    scheme, self-check mode), memoises summaries in memory, and — when a
    {!Store} is attached — persists them, so re-certifying an edited
    program recomputes only the {e spine}: the nodes from each changed
    leaf up to the root. Every untouched subtree is answered by digest
    lookup without a single lattice operation.

    The digest pass itself always walks the whole program (hashing is
    the only way to recognise an unchanged subtree), but it performs no
    lattice operations and no check recording; the {!stats} counters
    report how much semantic work was actually redone.

    Results agree exactly with {!Ifc_core.Cfm.certified} — the test
    suite checks the two against each other on random programs. *)

module Binding := Ifc_core.Binding
module Extended := Ifc_lattice.Extended
module Ast := Ifc_lang.Ast

type t

type summary = {
  mod_ : string;  (** Meet of the classes the subtree may modify. *)
  flow : string Extended.elt;  (** Join of the subtree's global flows. *)
  cert : bool;  (** Is the subtree certified? *)
}

type stats = {
  computed : int;
      (** Summaries computed from children this session — the spine. *)
  reused_memory : int;  (** Summaries answered by the in-memory memo. *)
  reused_disk : int;  (** Summaries answered by the attached store. *)
}

val create :
  ?store:Store.t -> ?self_check:bool -> string Binding.t -> t
(** [create binding] is an incremental certifier for [binding] (and its
    lattice). With [store], summaries computed here are persisted and
    summaries persisted by earlier sessions are reused; without, the
    memo lives only as long as [t]. [self_check] selects the literal
    [j <= i] reading of the composition rule, as in
    {!Ifc_core.Cfm.analyze}. *)

val certify : t -> Ast.stmt -> summary
(** [certify t s] is the summary of [s], reusing every subtree summary
    the memo or store already holds. *)

val certify_program : t -> Ast.program -> bool
(** [certify_program t p] is [(certify t p.body).cert]. *)

val digest : t -> Ast.stmt -> string
(** The structural digest of [s] under [t]'s certification context —
    the key {!certify} files [s]'s summary under. *)

val stats : t -> stats
(** Cumulative since [create] or the last {!reset_stats}. *)

val reset_stats : t -> unit
