(* Subtree-summary certification: one digest pass recognises unchanged
   subtrees; Figure 2's combination rules run only on the spine. *)

module Lattice = Ifc_lattice.Lattice
module Extended = Ifc_lattice.Extended
module Binding = Ifc_core.Binding
module Ast = Ifc_lang.Ast
module Pretty = Ifc_lang.Pretty

type summary = {
  mod_ : string;
  flow : string Extended.elt;
  cert : bool;
}

type stats = {
  computed : int;
  reused_memory : int;
  reused_disk : int;
}

type t = {
  binding : string Binding.t;
  lattice : string Lattice.t;
  self_check : bool;
  ctx : string;
  memo : (string, summary) Hashtbl.t;
  store : Store.t option;
  mutable computed : int;
  mutable reused_memory : int;
  mutable reused_disk : int;
}

let hash parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

(* The context digest pins everything a summary depends on besides the
   subtree itself: the binding (variable classes), the scheme, and the
   composition-rule reading. Two certifiers with equal contexts may
   share summaries; any difference changes every key. *)
let context_digest binding lattice self_check =
  hash
    [
      "ifc-incremental 1";
      Fmt.str "%a" Binding.pp binding;
      lattice.Lattice.name;
      String.concat "," (List.map lattice.Lattice.to_string lattice.Lattice.elements);
      string_of_bool self_check;
    ]

let create ?store ?(self_check = false) binding =
  let lattice = Binding.lattice binding in
  {
    binding;
    lattice;
    self_check;
    ctx = context_digest binding lattice self_check;
    memo = Hashtbl.create 256;
    store;
    computed = 0;
    reused_memory = 0;
    reused_disk = 0;
  }

(* ------------------------------------------------------------------ *)
(* Figure 2 combination, over summaries instead of recursion *)

let flow_join l f1 f2 =
  match (f1, f2) with
  | Extended.Nil, f | f, Extended.Nil -> f
  | Extended.El a, Extended.El b -> Extended.El (l.Lattice.join a b)

let check_outcome l lhs rhs =
  match lhs with Extended.Nil -> true | Extended.El f -> l.Lattice.leq f rhs

(* Each case mirrors Cfm.traverse exactly, reading children through
   their summaries; the equivalence is under test against the direct
   recursion on random programs. *)
let combine t (node : Ast.node) (children : summary list) =
  let l = t.lattice in
  let b = t.binding in
  match (node, children) with
  | Ast.Skip, [] -> { mod_ = l.Lattice.top; flow = Extended.Nil; cert = true }
  | Ast.Assign (x, e), [] ->
    let target = Binding.sbind b x in
    let source = Binding.expr_class b e in
    { mod_ = target; flow = Extended.Nil; cert = l.Lattice.leq source target }
  | Ast.Declassify (x, _, cls), [] ->
    let target = Binding.sbind b x in
    let source =
      match l.Lattice.of_string cls with Ok c -> c | Error _ -> l.Lattice.top
    in
    { mod_ = target; flow = Extended.Nil; cert = l.Lattice.leq source target }
  | Ast.Store (a, i, e), [] ->
    let target = Binding.sbind b a in
    let source =
      l.Lattice.join (Binding.expr_class b i) (Binding.expr_class b e)
    in
    { mod_ = target; flow = Extended.Nil; cert = l.Lattice.leq source target }
  | Ast.Wait sem, [] ->
    let c = Binding.sbind b sem in
    { mod_ = c; flow = Extended.El c; cert = true }
  | Ast.Signal sem, [] ->
    let c = Binding.sbind b sem in
    { mod_ = c; flow = Extended.Nil; cert = true }
  | Ast.Send (chan, e), [] ->
    let c = Binding.sbind b chan in
    let source = Binding.expr_class b e in
    { mod_ = c; flow = Extended.Nil; cert = l.Lattice.leq source c }
  | Ast.Recv (chan, x), [] ->
    let c = Binding.sbind b chan in
    let target = Binding.sbind b x in
    {
      mod_ = l.Lattice.meet c target;
      flow = Extended.El c;
      cert = l.Lattice.leq c target;
    }
  | Ast.If (cond, _, _), [ s1; s2 ] ->
    let e_class = Binding.expr_class b cond in
    let mod_ = l.Lattice.meet s1.mod_ s2.mod_ in
    let flow =
      match flow_join l s1.flow s2.flow with
      | Extended.Nil -> Extended.Nil
      | Extended.El f -> Extended.El (l.Lattice.join f e_class)
    in
    let local_ok = check_outcome l (Extended.El e_class) mod_ in
    { mod_; flow; cert = s1.cert && s2.cert && local_ok }
  | Ast.While (cond, _), [ s1 ] ->
    let e_class = Binding.expr_class b cond in
    let flow =
      Extended.El
        (l.Lattice.join (Extended.get ~default:l.Lattice.bottom s1.flow) e_class)
    in
    let global_ok = check_outcome l flow s1.mod_ in
    { mod_ = s1.mod_; flow; cert = s1.cert && global_ok }
  | Ast.Seq _, ss ->
    let mod_ = Lattice.meets l (List.map (fun s -> s.mod_) ss) in
    let flow =
      List.fold_left (fun acc s -> flow_join l acc s.flow) Extended.Nil ss
    in
    let _, _, global_ok =
      List.fold_left
        (fun (i, prefix, ok_acc) s ->
          let to_check =
            if t.self_check then flow_join l prefix s.flow else prefix
          in
          let ok =
            if i = 0 && not t.self_check then true
            else check_outcome l to_check s.mod_
          in
          (i + 1, flow_join l prefix s.flow, ok && ok_acc))
        (0, Extended.Nil, true) ss
    in
    { mod_; flow; cert = List.for_all (fun s -> s.cert) ss && global_ok }
  | Ast.Cobegin _, ss ->
    {
      mod_ = Lattice.meets l (List.map (fun s -> s.mod_) ss);
      flow = List.fold_left (fun acc s -> flow_join l acc s.flow) Extended.Nil ss;
      cert = List.for_all (fun s -> s.cert) ss;
    }
  | _ ->
    (* Child count is fixed by the constructor; [certify] always passes
       a matching list. *)
    assert false

(* ------------------------------------------------------------------ *)
(* Digesting and the memo *)

let node_digest t (node : Ast.node) child_digests =
  let atoms =
    match node with
    | Ast.Skip -> [ "skip" ]
    | Ast.Assign (x, e) -> [ "assign"; x; Pretty.expr_to_string e ]
    | Ast.Declassify (x, e, cls) ->
      [ "declassify"; x; Pretty.expr_to_string e; cls ]
    | Ast.Store (a, i, e) ->
      [ "store"; a; Pretty.expr_to_string i; Pretty.expr_to_string e ]
    | Ast.Wait sem -> [ "wait"; sem ]
    | Ast.Signal sem -> [ "signal"; sem ]
    | Ast.Send (chan, e) -> [ "send"; chan; Pretty.expr_to_string e ]
    | Ast.Recv (chan, x) -> [ "recv"; chan; x ]
    | Ast.If (cond, _, _) -> [ "if"; Pretty.expr_to_string cond ]
    | Ast.While (cond, _) -> [ "while"; Pretty.expr_to_string cond ]
    | Ast.Seq _ -> [ "seq" ]
    | Ast.Cobegin _ -> [ "cobegin" ]
  in
  hash ((t.ctx :: atoms) @ child_digests)

let to_stored (s : summary) =
  {
    Store.s_mod = s.mod_;
    s_flow =
      (match s.flow with Extended.Nil -> None | Extended.El f -> Some f);
    s_cert = s.cert;
  }

(* Stored class strings re-enter through the lattice's own parser; a
   string the scheme no longer recognises (edited spec, crossed store)
   is treated as a miss, not trusted. *)
let of_stored t (s : Store.summary) =
  let parse v =
    match t.lattice.Lattice.of_string v with Ok c -> Some c | Error _ -> None
  in
  match (parse s.Store.s_mod, s.Store.s_flow) with
  | None, _ -> None
  | Some mod_, None ->
    Some { mod_; flow = Extended.Nil; cert = s.Store.s_cert }
  | Some mod_, Some f -> (
    match parse f with
    | None -> None
    | Some f -> Some { mod_; flow = Extended.El f; cert = s.Store.s_cert })

let lookup t digest =
  match Hashtbl.find_opt t.memo digest with
  | Some s ->
    t.reused_memory <- t.reused_memory + 1;
    Some s
  | None -> (
    match t.store with
    | None -> None
    | Some store -> (
      match Store.find_summary store ~digest with
      | None -> None
      | Some stored -> (
        match of_stored t stored with
        | None -> None
        | Some s ->
          t.reused_disk <- t.reused_disk + 1;
          Hashtbl.replace t.memo digest s;
          Some s)))

let certify t stmt =
  let rec go (s : Ast.stmt) =
    let children =
      match s.node with
      | Ast.Skip | Ast.Assign _ | Ast.Declassify _ | Ast.Store _ | Ast.Wait _
      | Ast.Signal _ | Ast.Send _ | Ast.Recv _ ->
        []
      | Ast.If (_, then_, else_) -> [ then_; else_ ]
      | Ast.While (_, body) -> [ body ]
      | Ast.Seq ss | Ast.Cobegin ss -> ss
    in
    let child_results = List.map go children in
    let digest = node_digest t s.node (List.map fst child_results) in
    match lookup t digest with
    | Some summary -> (digest, summary)
    | None ->
      let summary = combine t s.node (List.map snd child_results) in
      t.computed <- t.computed + 1;
      Hashtbl.replace t.memo digest summary;
      (match t.store with
      | Some store -> Store.add_summary store ~digest (to_stored summary)
      | None -> ());
      (digest, summary)
  in
  snd (go stmt)

let certify_program t (p : Ast.program) = (certify t p.Ast.body).cert

let digest t stmt =
  let rec go (s : Ast.stmt) =
    let children =
      match s.node with
      | Ast.Skip | Ast.Assign _ | Ast.Declassify _ | Ast.Store _ | Ast.Wait _
      | Ast.Signal _ | Ast.Send _ | Ast.Recv _ ->
        []
      | Ast.If (_, then_, else_) -> [ then_; else_ ]
      | Ast.While (_, body) -> [ body ]
      | Ast.Seq ss | Ast.Cobegin ss -> ss
    in
    node_digest t s.node (List.map go children)
  in
  go stmt

let stats t =
  {
    computed = t.computed;
    reused_memory = t.reused_memory;
    reused_disk = t.reused_disk;
  }

let reset_stats t =
  t.computed <- 0;
  t.reused_memory <- 0;
  t.reused_disk <- 0
