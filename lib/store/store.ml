(* The disk tier: content-addressed entry files with checksum trailers,
   written via tmp-then-rename, stamped with a manifest generation that
   doubles as the heat ranking for warm starts and gc. *)

module Job = Ifc_pipeline.Job
module Cache = Ifc_pipeline.Cache
module Tier = Ifc_pipeline.Tier

type t = {
  dir : string;
  mutable generation : int;
  lock : Mutex.t;
  tmp_seq : int Atomic.t;
  mutable disk_hits : int;
  mutable disk_misses : int;
  mutable writes : int;
  mutable preloaded : int;
}

let dir t = t.dir

let generation t = t.generation

(* ------------------------------------------------------------------ *)
(* Filesystem plumbing *)

let ( / ) = Filename.concat

let objects_dir t = t.dir / "objects"
let summaries_dir t = t.dir / "summaries"
let tmp_dir t = t.dir / "tmp"
let quarantine_dir t = t.dir / "quarantine"
let manifest_path t = t.dir / "manifest"

let ensure_dir path =
  if not (Sys.file_exists path) then Sys.mkdir path 0o755
  else if not (Sys.is_directory path) then
    failwith (path ^ " exists and is not a directory")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let file_size path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> in_channel_length ic)

(* Atomic publication: stage in tmp/ (same filesystem as the target, so
   the rename cannot degrade to copy-and-delete), then rename. A crash
   before the rename leaves only a staging file for gc to sweep. *)
let write_atomic t ~dest content =
  let tmp =
    tmp_dir t
    / Printf.sprintf "%s.%d.tmp" (Filename.basename dest)
        (Atomic.fetch_and_add t.tmp_seq 1)
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp dest

(* Damaged files are moved aside, never deleted: the bytes are evidence.
   The destination name gets a numeric suffix if the slot is taken. *)
let quarantine t path =
  ensure_dir (quarantine_dir t);
  let base = Filename.basename path in
  let rec free n =
    let candidate =
      if n = 0 then quarantine_dir t / base
      else quarantine_dir t / Printf.sprintf "%s.%d" base n
    in
    if Sys.file_exists candidate then free (n + 1) else candidate
  in
  try Sys.rename path (free 0) with Sys_error _ -> ()

let list_dir path =
  if Sys.file_exists path && Sys.is_directory path then
    let names = Sys.readdir path in
    Array.sort String.compare names;
    Array.to_list names
  else []

let is_digest_name name =
  String.length name = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       name

(* ------------------------------------------------------------------ *)
(* Entry and summary serialization *)

exception Malformed of string

(* Every file ends in "checksum <md5-of-payload>\n" — fixed width, so
   splitting it off needs no scan. *)
let checksum_width = String.length "checksum " + 32 + 1

let seal payload =
  payload ^ "checksum " ^ Digest.to_hex (Digest.string payload) ^ "\n"

let unseal raw =
  let len = String.length raw in
  if len < checksum_width then raise (Malformed "truncated before checksum");
  let payload = String.sub raw 0 (len - checksum_width) in
  let trailer = String.sub raw (len - checksum_width) checksum_width in
  let expected = "checksum " ^ Digest.to_hex (Digest.string payload) ^ "\n" in
  if not (String.equal trailer expected) then
    raise (Malformed "checksum mismatch");
  payload

(* A strict position-based scanner: artifacts are length-prefixed raw
   bytes, so line splitting alone cannot parse an entry. *)
type scanner = { src : string; mutable pos : int }

let scan_line sc =
  match String.index_from_opt sc.src sc.pos '\n' with
  | None -> raise (Malformed "unterminated line")
  | Some nl ->
    let line = String.sub sc.src sc.pos (nl - sc.pos) in
    sc.pos <- nl + 1;
    line

let scan_bytes sc n =
  if n < 0 || sc.pos + n > String.length sc.src then
    raise (Malformed "artifact length out of range");
  let s = String.sub sc.src sc.pos n in
  sc.pos <- sc.pos + n;
  (match String.index_from_opt sc.src sc.pos '\n' with
  | Some nl when nl = sc.pos -> sc.pos <- nl + 1
  | _ -> raise (Malformed "artifact not newline-terminated"));
  s

let scan_done sc =
  if sc.pos <> String.length sc.src then raise (Malformed "trailing garbage")

let scan_field sc key =
  let line = scan_line sc in
  let prefix = key ^ " " in
  let plen = String.length prefix in
  if String.length line < plen || not (String.equal (String.sub line 0 plen) prefix)
  then raise (Malformed ("expected " ^ key ^ " line"))
  else String.sub line plen (String.length line - plen)

let scan_int sc key =
  match int_of_string_opt (scan_field sc key) with
  | Some n -> n
  | None -> raise (Malformed ("bad " ^ key))

let scan_bool sc key =
  match bool_of_string_opt (scan_field sc key) with
  | Some b -> b
  | None -> raise (Malformed ("bad " ^ key))

let entry_magic = "ifc-store-entry 1"
let summary_magic = "ifc-store-summary 1"

let render_entry ~digest ~generation (results : Job.analysis_result list) =
  let b = Buffer.create 256 in
  Buffer.add_string b (entry_magic ^ "\n");
  Buffer.add_string b (Printf.sprintf "digest %s\n" digest);
  Buffer.add_string b (Printf.sprintf "generation %d\n" generation);
  Buffer.add_string b (Printf.sprintf "results %d\n" (List.length results));
  List.iter
    (fun (r : Job.analysis_result) ->
      Buffer.add_string b (Printf.sprintf "analysis %s\n" r.Job.analysis);
      Buffer.add_string b (Printf.sprintf "verdict %b\n" r.Job.verdict);
      Buffer.add_string b (Printf.sprintf "checks %d\n" r.Job.checks);
      Buffer.add_string b (Printf.sprintf "duration_ns %Ld\n" r.Job.duration_ns);
      match r.Job.artifact with
      | None -> Buffer.add_string b "artifact -\n"
      | Some a ->
        Buffer.add_string b (Printf.sprintf "artifact %d\n" (String.length a));
        Buffer.add_string b a;
        Buffer.add_char b '\n')
    results;
  seal (Buffer.contents b)

let parse_entry raw =
  let sc = { src = unseal raw; pos = 0 } in
  if not (String.equal (scan_line sc) entry_magic) then
    raise (Malformed "bad entry magic");
  let digest = scan_field sc "digest" in
  if not (is_digest_name digest) then raise (Malformed "bad digest");
  let generation = scan_int sc "generation" in
  let n = scan_int sc "results" in
  if n < 0 || n > 10_000 then raise (Malformed "bad results count");
  let results =
    List.init n (fun _ ->
        let analysis = scan_field sc "analysis" in
        let verdict = scan_bool sc "verdict" in
        let checks = scan_int sc "checks" in
        let duration_ns =
          match Int64.of_string_opt (scan_field sc "duration_ns") with
          | Some d -> d
          | None -> raise (Malformed "bad duration_ns")
        in
        let artifact =
          match scan_field sc "artifact" with
          | "-" -> None
          | len -> (
            match int_of_string_opt len with
            | Some n -> Some (scan_bytes sc n)
            | None -> raise (Malformed "bad artifact length"))
        in
        { Job.analysis; verdict; checks; duration_ns; artifact })
  in
  scan_done sc;
  (digest, generation, results)

type summary = { s_mod : string; s_flow : string option; s_cert : bool }

let render_summary ~digest ~generation s =
  let one_line v =
    if String.contains v '\n' then raise (Malformed "class renders multi-line")
    else v
  in
  let b = Buffer.create 128 in
  Buffer.add_string b (summary_magic ^ "\n");
  Buffer.add_string b (Printf.sprintf "digest %s\n" digest);
  Buffer.add_string b (Printf.sprintf "generation %d\n" generation);
  Buffer.add_string b
    (Printf.sprintf "mod %d\n%s\n" (String.length s.s_mod) (one_line s.s_mod));
  (match s.s_flow with
  | None -> Buffer.add_string b "flow -\n"
  | Some f ->
    Buffer.add_string b
      (Printf.sprintf "flow %d\n%s\n" (String.length f) (one_line f)));
  Buffer.add_string b (Printf.sprintf "cert %b\n" s.s_cert);
  seal (Buffer.contents b)

let parse_summary raw =
  let sc = { src = unseal raw; pos = 0 } in
  if not (String.equal (scan_line sc) summary_magic) then
    raise (Malformed "bad summary magic");
  let digest = scan_field sc "digest" in
  if not (is_digest_name digest) then raise (Malformed "bad digest");
  let generation = scan_int sc "generation" in
  let s_mod =
    match int_of_string_opt (scan_field sc "mod") with
    | Some n -> scan_bytes sc n
    | None -> raise (Malformed "bad mod length")
  in
  let s_flow =
    match scan_field sc "flow" with
    | "-" -> None
    | len -> (
      match int_of_string_opt len with
      | Some n -> Some (scan_bytes sc n)
      | None -> raise (Malformed "bad flow length"))
  in
  let s_cert = scan_bool sc "cert" in
  scan_done sc;
  (digest, generation, { s_mod; s_flow; s_cert })

(* ------------------------------------------------------------------ *)
(* Manifest and opening *)

let manifest_magic = "ifc-store 1"

let read_manifest path =
  if not (Sys.file_exists path) then None
  else
    try
      let raw = read_file path in
      let sc = { src = raw; pos = 0 } in
      if not (String.equal (scan_line sc) manifest_magic) then None
      else Some (scan_int sc "generation")
    with Malformed _ | Sys_error _ -> None

let write_manifest t =
  write_atomic t ~dest:(manifest_path t)
    (Printf.sprintf "%s\ngeneration %d\n" manifest_magic t.generation)

(* An unreadable manifest must not brick the store: recover the counter
   from the highest stamp on disk, so new writes still sort as newest. *)
let recover_generation t =
  List.fold_left
    (fun acc name ->
      try
        let _, gen, _ = parse_entry (read_file (objects_dir t / name)) in
        max acc gen
      with Malformed _ | Sys_error _ -> acc)
    0
    (List.filter is_digest_name (list_dir (objects_dir t)))

let open_ ?(bump = true) dir =
  try
    ensure_dir dir;
    let t =
      {
        dir;
        generation = 0;
        lock = Mutex.create ();
        tmp_seq = Atomic.make 0;
        disk_hits = 0;
        disk_misses = 0;
        writes = 0;
        preloaded = 0;
      }
    in
    ensure_dir (objects_dir t);
    ensure_dir (summaries_dir t);
    ensure_dir (tmp_dir t);
    (match read_manifest (manifest_path t) with
    | Some g -> t.generation <- g
    | None -> t.generation <- recover_generation t);
    if bump then begin
      t.generation <- t.generation + 1;
      write_manifest t
    end;
    Ok t
  with
  | Failure msg -> Error msg
  | Sys_error msg -> Error msg

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ------------------------------------------------------------------ *)
(* Entries *)

let add t ~digest results =
  with_lock t (fun () ->
      write_atomic t
        ~dest:(objects_dir t / digest)
        (render_entry ~digest ~generation:t.generation results);
      t.writes <- t.writes + 1)

(* Re-stamping marks heat; once an entry carries the current generation
   the rewrite is skipped, so a hot entry costs one rewrite per session. *)
let restamp_entry t ~digest ~stamped results =
  if stamped < t.generation then
    write_atomic t
      ~dest:(objects_dir t / digest)
      (render_entry ~digest ~generation:t.generation results)

let find ?(validate = fun _ -> true) t ~digest =
  with_lock t (fun () ->
      let path = objects_dir t / digest in
      if not (Sys.file_exists path) then begin
        t.disk_misses <- t.disk_misses + 1;
        None
      end
      else
        match
          let stored, stamped, results = parse_entry (read_file path) in
          if not (String.equal stored digest) then
            raise (Malformed "digest does not match file name");
          (stamped, results)
        with
        | exception (Malformed _ | Sys_error _) ->
          (* Damage degrades to a recompute, never a wrong answer. *)
          quarantine t path;
          t.disk_misses <- t.disk_misses + 1;
          None
        | stamped, results ->
          if validate results then begin
            restamp_entry t ~digest ~stamped results;
            t.disk_hits <- t.disk_hits + 1;
            Some results
          end
          else begin
            quarantine t path;
            t.disk_misses <- t.disk_misses + 1;
            None
          end)

(* ------------------------------------------------------------------ *)
(* Summaries *)

let add_summary t ~digest s =
  with_lock t (fun () ->
      match render_summary ~digest ~generation:t.generation s with
      | rendered -> write_atomic t ~dest:(summaries_dir t / digest) rendered
      | exception Malformed _ ->
        (* A class that renders multi-line cannot be framed; skip
           persistence rather than write an unparseable file. *)
        ())

let find_summary t ~digest =
  with_lock t (fun () ->
      let path = summaries_dir t / digest in
      if not (Sys.file_exists path) then None
      else
        match
          let stored, stamped, s = parse_summary (read_file path) in
          if not (String.equal stored digest) then
            raise (Malformed "digest does not match file name");
          (stamped, s)
        with
        | exception (Malformed _ | Sys_error _) ->
          quarantine t path;
          None
        | stamped, s ->
          if stamped < t.generation then
            write_atomic t ~dest:path
              (render_summary ~digest ~generation:t.generation s);
          Some s)

(* ------------------------------------------------------------------ *)
(* Warm start *)

let preload t cache =
  with_lock t (fun () ->
      let entries =
        List.filter_map
          (fun name ->
            if not (is_digest_name name) then None
            else
              match parse_entry (read_file (objects_dir t / name)) with
              | digest, gen, results when String.equal digest name ->
                Some (digest, gen, results)
              | _ -> None
              | exception (Malformed _ | Sys_error _) -> None)
          (list_dir (objects_dir t))
      in
      let hottest =
        List.fold_left (fun acc (_, g, _) -> max acc g) 0 entries
      in
      let capacity = (Cache.stats cache).Cache.capacity in
      let hot =
        List.filter (fun (_, g, _) -> g = hottest && hottest > 0) entries
      in
      let chosen = Ifc_support.Listx.take capacity hot in
      (* Coldest-first insertion leaves the last-added — arbitrary within
         one generation — most recent; every chosen entry ends resident. *)
      List.iter (fun (digest, _, results) -> Cache.add cache digest results)
        (List.rev chosen);
      let n = List.length chosen in
      t.preloaded <- t.preloaded + n;
      n)

let record_heat t cache =
  let digests = List.rev (Cache.fold cache (fun acc k _ -> k :: acc) []) in
  with_lock t (fun () ->
      List.iter
        (fun digest ->
          let path = objects_dir t / digest in
          if Sys.file_exists path then
            match parse_entry (read_file path) with
            | stored, stamped, results when String.equal stored digest ->
              restamp_entry t ~digest ~stamped results
            | _ -> ()
            | exception (Malformed _ | Sys_error _) -> ())
        digests)

(* ------------------------------------------------------------------ *)
(* Maintenance *)

type disk_stats = {
  generation : int;
  entries : int;
  entry_bytes : int;
  summaries : int;
  summary_bytes : int;
  quarantined : int;
}

let disk_stats t =
  with_lock t (fun () ->
      let tally dir =
        List.fold_left
          (fun (n, bytes) name ->
            match file_size (dir / name) with
            | size -> (n + 1, bytes + size)
            | exception Sys_error _ -> (n, bytes))
          (0, 0) (list_dir dir)
      in
      let entries, entry_bytes = tally (objects_dir t) in
      let summaries, summary_bytes = tally (summaries_dir t) in
      {
        generation = t.generation;
        entries;
        entry_bytes;
        summaries;
        summary_bytes;
        quarantined = List.length (list_dir (quarantine_dir t));
      })

type verify_report = {
  checked : int;
  ok : int;
  quarantined : int;
  quarantined_files : string list;
}

(* Structural verification only: checksum, framing, digest/name match,
   and certificate artifacts that at least parse. Semantic re-checking
   against a program happens in [tier]'s find, where a program exists. *)
let verify t =
  with_lock t (fun () ->
      let bad = ref [] in
      let checked = ref 0 in
      let condemn path =
        bad := Filename.basename path :: !bad;
        quarantine t path
      in
      let check_file dir parse name =
        incr checked;
        let path = dir / name in
        if not (is_digest_name name) then condemn path
        else
          match parse (read_file path) with
          | exception (Malformed _ | Sys_error _) -> condemn path
          | stored -> if not (String.equal stored name) then condemn path
      in
      let check_entry raw =
        let stored, _, results = parse_entry raw in
        List.iter
          (fun (r : Job.analysis_result) ->
            match (r.Job.analysis, r.Job.artifact) with
            | "cert", Some text -> (
              match Ifc_cert.Cert.parse text with
              | Ok _ -> ()
              | Error _ -> raise (Malformed "unparseable certificate artifact"))
            | _ -> ())
          results;
        stored
      in
      let check_summary raw =
        let stored, _, _ = parse_summary raw in
        stored
      in
      List.iter (check_file (objects_dir t) check_entry) (list_dir (objects_dir t));
      List.iter
        (check_file (summaries_dir t) check_summary)
        (list_dir (summaries_dir t));
      let quarantined_files = List.rev !bad in
      {
        checked = !checked;
        ok = !checked - List.length quarantined_files;
        quarantined = List.length quarantined_files;
        quarantined_files;
      })

type gc_report = {
  live : int;
  swept : int;
  tmp_swept : int;
  bytes_freed : int;
}

let gc ?(keep = 2) ?(tmp_age = 3600.) t =
  if keep < 0 then invalid_arg "Store.gc: keep must be >= 0";
  if tmp_age < 0. then invalid_arg "Store.gc: tmp_age must be >= 0";
  with_lock t (fun () ->
      let floor = t.generation - keep in
      let live = ref 0 and swept = ref 0 and bytes_freed = ref 0 in
      let sweep path =
        let size = try file_size path with Sys_error _ -> 0 in
        try
          Sys.remove path;
          incr swept;
          bytes_freed := !bytes_freed + size
        with Sys_error _ -> ()
      in
      let collect dir parse =
        List.iter
          (fun name ->
            if is_digest_name name then begin
              let path = dir / name in
              match parse (read_file path) with
              | exception (Malformed _ | Sys_error _) ->
                (* Damage is verify's concern; gc only ages things out. *)
                incr live
              | gen -> if gen < floor then sweep path else incr live
            end)
          (list_dir dir)
      in
      collect (objects_dir t) (fun raw ->
          let _, gen, _ = parse_entry raw in
          gen);
      collect (summaries_dir t) (fun raw ->
          let _, gen, _ = parse_summary raw in
          gen);
      (* Staging leftovers: a tmp file may be a concurrent writer's
         in-flight publish (the mutex only covers this process — another
         process sharing the directory stages and renames outside it).
         Deleting one mid-publish would tear the write, so only files
         older than [tmp_age] — crash leftovers, not live staging — are
         swept; fresh ones are kept for a later pass. *)
      let tmp_swept = ref 0 in
      let now = Unix.gettimeofday () in
      List.iter
        (fun name ->
          let path = tmp_dir t / name in
          let stale =
            match Unix.stat path with
            | exception Unix.Unix_error _ -> false
            | st -> now -. st.Unix.st_mtime > tmp_age
          in
          if stale then begin
            let size = try file_size path with Sys_error _ -> 0 in
            try
              Sys.remove path;
              incr tmp_swept;
              bytes_freed := !bytes_freed + size
            with Sys_error _ -> ()
          end)
        (list_dir (tmp_dir t));
      {
        live = !live;
        swept = !swept;
        tmp_swept = !tmp_swept;
        bytes_freed = !bytes_freed;
      })

(* ------------------------------------------------------------------ *)
(* The pipeline tier *)

(* Certificates read back from disk go through the independent checker
   before they are served: a stored verdict is only as good as the
   artifact still checking against the program in hand. *)
let revalidate_certs (spec : Job.spec) (results : Job.analysis_result list) =
  List.for_all
    (fun (r : Job.analysis_result) ->
      match (r.Job.analysis, r.Job.artifact) with
      | "cert", Some text -> (
        match Ifc_cert.Cert.parse text with
        | Error _ -> false
        | Ok cert -> (
          match Ifc_cert.Checker.check cert spec.Job.program with
          | Ok () -> r.Job.verdict
          | Error _ -> false))
      | "cert", None ->
        (* A positive cert verdict must carry its certificate. *)
        not r.Job.verdict
      | _ -> true)
    results

let tier t =
  {
    Tier.find =
      (fun spec ~digest -> find ~validate:(revalidate_certs spec) t ~digest);
    store = (fun ~digest results -> add t ~digest results);
    preload = (fun cache -> preload t cache);
    record_heat = (fun cache -> record_heat t cache);
    stats =
      (fun () ->
        let disk = disk_stats t in
        with_lock t (fun () ->
            {
              Tier.disk_hits = t.disk_hits;
              disk_misses = t.disk_misses;
              writes = t.writes;
              preloaded = t.preloaded;
              entries = disk.entries;
              bytes_on_disk = disk.entry_bytes + disk.summary_bytes;
            }));
  }
