(** Batch job specifications and results.

    A job names one program, one binding, one lattice, and the list of
    analyses to run over them. Running a job is pure with respect to the
    spec — the same spec always yields the same verdicts — which is what
    makes results content-addressable (see {!Cache}) and batches safe to
    fan out over domains in any order.

    Analyses operate on the [string]-element lattice representation (the
    CLI-uniform one, {!Ifc_lattice.Lattice.stringify}): jobs cross domain
    boundaries and a first-class polymorphic lattice would force the spec
    type to be existential for no benefit. *)

type analysis =
  | Denning  (** The Denning & Denning baseline, concurrency ignored. *)
  | Cfm  (** The paper's Concurrent Flow Mechanism. *)
  | Prove
      (** Theorem-1 proof generation plus the independent checker
          ({!Ifc_logic_gen.Invariance.witness}). *)
  | Cert
      (** Certificate emission with an independent re-check: build the
          Theorem-1 proof, serialize it ({!Ifc_cert.Cert}), re-parse the
          bytes and validate them with {!Ifc_cert.Checker.check}. The
          verdict is [true] only when the checker accepts; the certificate
          text becomes the result's [artifact]. *)
  | Ni of { pairs : int; max_states : int }
      (** Empirical noninterference with bounded exploration; observer is
          the lattice bottom. *)
  | Lint
      (** The static concurrency analyzer ({!Ifc_analysis.Analyze}):
          may-happen-in-parallel races, semaphore liveness, guard lints.
          The verdict is [true] iff there are no findings; the findings
          and safety claims ride along as a JSON [artifact], so cache
          hits (and the serve protocol) return the full report without
          re-running the analysis. Binding-independent: only the program
          is analyzed. *)
  | Custom of string * (string Ifc_core.Binding.t -> Ifc_lang.Ast.program -> bool * int)
      (** An out-of-tree analysis: [(verdict, check_count)]. The name
          participates in the cache key, so distinct analyses must use
          distinct names. Not constructible from the CLI. *)
  | Link of
      string * (string Ifc_core.Binding.t -> Ifc_lang.Ast.program -> bool * int * string option)
      (** Compositional certification of a linked unit
          ([Ifc_modsys.Link], injected as a closure so the pipeline stays
          modsys-free). The spec's program is the unit's elaboration and
          its binding the linked binding; the carried string is the
          linked unit's digest, which joins the cache key because the
          verdict also depends on interface bounds the elaboration does
          not record. Returns [(verdict, checks, artifact)] — the
          artifact is the emitted [ifc-cert 2] text when one is
          produced. *)

val analysis_name : analysis -> string
(** Display name: ["denning"], ["cfm"], ["prove"], ["ni"], or the custom
    name. *)

val analysis_key : analysis -> string
(** Cache-key form: like {!analysis_name} but parameterised analyses
    include their parameters (e.g. ["ni:8:20000"]). *)

val analysis_of_string :
  ?ni_pairs:int -> ?ni_max_states:int -> string -> (analysis, string) result
(** Parses ["denning" | "cfm" | "prove" | "cert" | "ni" | "lint"]; [ni]
    takes its bounds from the optional arguments (defaults 8 and
    20000). *)

val default_analyses : analysis list
(** [[Cfm]]. *)

type spec = {
  id : int;  (** Position in the batch; results are folded in id order. *)
  name : string;  (** Human label (file path or corpus tag). *)
  program : Ifc_lang.Ast.program;
  binding : string Ifc_core.Binding.t;
  lattice : string Ifc_lattice.Lattice.t;
  analyses : analysis list;
  self_check : bool;  (** CFM's literal Figure-2 composition reading. *)
}

val make :
  id:int ->
  name:string ->
  lattice:string Ifc_lattice.Lattice.t ->
  binding:string Ifc_core.Binding.t ->
  ?analyses:analysis list ->
  ?self_check:bool ->
  Ifc_lang.Ast.program ->
  spec

val digest : spec -> string
(** Content address of everything the verdict depends on: the
    pretty-printed program, the rendered binding, the lattice rendered in
    spec-file form, the analysis keys, and the [self_check] flag, hashed
    with [Digest] and rendered in hex. Two specs with equal digests
    produce equal outcomes. *)

type analysis_result = {
  analysis : string;  (** {!analysis_name}. *)
  verdict : bool;
  checks : int;
      (** Primitive certification checks (CFM/Denning), rule applications
          or checker errors (prove), certificate nodes or checker failures
          (cert), pairs tested (ni), or findings reported (lint). *)
  duration_ns : int64;
  artifact : string option;
      (** A byproduct worth keeping — the certificate text for [Cert],
          the findings/claims report JSON for [Lint]. Cached with the
          result, so a cache hit returns the artifact without re-running
          the analysis. *)
}

type outcome = (analysis_result list, string) result
(** [Error] means the job raised; the message includes the exception.
    A [false] verdict is a normal [Ok] result, not an error. *)

type result = {
  job_id : int;
  job_name : string;
  job_digest : string;
  outcome : outcome;
  duration_ns : int64;
  from_cache : bool;
}

val lint_report_json :
  ?extra:(string * Telemetry.json) list ->
  Ifc_analysis.Analyze.report ->
  string
(** The [Lint] artifact renderer, exposed so [ifc lint --json] prints
    byte-identical JSON to the cached artifact and the serve protocol's
    ["report"] object: [{findings; claims; stats}], each finding with
    [kind], [severity], [span], [message], and [related] when present. *)

val run : ?digest:string -> spec -> result
(** Executes the analyses in order, timing each. Any exception an
    analysis raises is captured into [Error] — callers never see it.
    [?digest] avoids recomputing a digest the caller already has. *)

val verdict : result -> [ `Pass | `Fail | `Error ]
(** [`Pass] iff every analysis verdict is [true]. *)

val verdict_string : result -> string
(** ["pass" | "fail" | "error"]. *)

val result_fields : result -> (string * Telemetry.json) list
(** The JSONL event body for one job: [event=job], id, name, digest,
    cache, verdict, duration, and one object per analysis. *)
