(** The second-level result tier behind the in-memory {!Cache}.

    {!Batch} and the server consult results memory-first, then through
    this record of closures, then compute. The record exists so the
    pipeline can be layered over a persistent store without depending on
    one: the disk-backed implementation ({!Ifc_store.Store}) lives above
    this library and is plugged in by the CLI driver.

    A tier is expected to be safe to call from multiple domains and
    threads concurrently, and to return only results it can vouch for —
    a disk tier validates checksums (and re-checks certificate artifacts
    with the independent checker) before answering, and answers [None]
    for anything it had to quarantine. *)

type stats = {
  disk_hits : int;  (** Lookups answered from the tier. *)
  disk_misses : int;  (** Lookups that fell through to compute. *)
  writes : int;  (** Results persisted this session. *)
  preloaded : int;  (** Entries warm-started into the memory cache. *)
  entries : int;  (** Live entries in the backing store right now. *)
  bytes_on_disk : int;  (** Bytes of live entries right now. *)
}

type t = {
  find : Job.spec -> digest:string -> Job.analysis_result list option;
      (** [find spec ~digest] returns the stored results for [digest], or
          [None]. The spec rides along so implementations can re-validate
          artifacts against the program (certificates through the
          independent checker). *)
  store : digest:string -> Job.analysis_result list -> unit;
      (** Persist one result set. Must be atomic: a crash mid-write may
          lose the entry but never corrupt the store. *)
  preload : Job.analysis_result list Cache.t -> int;
      (** Warm-start: load the hottest stored entries into the memory
          cache (up to its capacity), returning how many were loaded. *)
  record_heat : Job.analysis_result list Cache.t -> unit;
      (** Persist the memory cache's recency ranking (via {!Cache.fold})
          so the {e next} {!preload} resurrects today's hot set. *)
  stats : unit -> stats;
}

val stats_fields : stats -> (string * Telemetry.json) list
(** The stats record as JSON fields, ready for a [stats] response or a
    JSONL event. *)
