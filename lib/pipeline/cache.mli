(** A bounded, content-addressed LRU result cache, shared across
    domains and striped so concurrent users don't serialize on one lock.

    Keys are {!Job.digest} strings; values are whatever the batch wants
    to memoise (normally the analysis results of a job). The cache never
    stores failures — that policy lives in {!Batch} — and eviction is
    least-recently-used, where both {!find} hits and {!add} refresh
    recency. Hit/miss/eviction counters are cumulative over the cache's
    lifetime so warm-over-cold deltas can be reported.

    A cache is an array of independent stripes, each an LRU behind its
    own mutex; keys route to stripes by hash, so the striping is
    invisible to callers. With one stripe (the default) behavior is
    exactly the classic single-lock LRU; with [n] stripes eviction is
    least-recently-used per stripe — the standard approximation. *)

type 'v t

val create : ?shards:int -> ?capacity:int -> unit -> 'v t
(** [create ()] is an empty cache holding at most [capacity] (default
    4096, minimum 1) entries, split over [shards] (default 1, minimum 1)
    independently locked stripes. Total capacity is divided evenly
    (rounding up) across stripes. *)

val shards : 'v t -> int
(** Number of stripes the cache was created with. *)

val find : 'v t -> string -> 'v option
(** Bumps the entry to most-recent on hit; counts a hit or a miss. *)

val add : 'v t -> string -> 'v -> unit
(** Inserts or refreshes; evicts the least-recently-used entry when the
    cache is over capacity. Neither counts a hit nor a miss. *)

val mem : 'v t -> string -> bool
(** Recency- and counter-neutral membership test. *)

val remove : 'v t -> string -> bool
(** Explicit invalidation: drops the entry (if present, returning whether
    it was) and counts an {e invalidation} — never an eviction, so the
    two causes of entry loss stay distinguishable in {!stats}. *)

val fold : 'v t -> ('a -> string -> 'v -> 'a) -> 'a -> 'a
(** [fold t f init] folds [f] over every live entry, stripe by stripe,
    each stripe in recency order (most recently used first) — so with
    one stripe this is exact global recency, and with several it is the
    concatenation of per-stripe recency orders. Recency- and
    counter-neutral, so a cache can be exported (e.g. persisted to a
    disk store) without perturbing what is being exported. Runs under
    each stripe's lock in turn: [f] must not call back into the
    cache. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;  (** Entries dropped by capacity pressure only. *)
  invalidations : int;  (** Entries dropped by explicit {!remove} only. *)
  size : int;
  capacity : int;
}

val stats : 'v t -> stats

val hit_rate : stats -> float
(** [hits / (hits + misses)] in percent; [0.] before any lookup. *)

val clear : 'v t -> unit
(** Drops all entries; counters are preserved. *)
