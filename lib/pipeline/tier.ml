(* The second-level result tier: a record of closures so the pipeline
   can consult a persistent store without depending on its
   implementation (the disk store lives above this library). *)

type stats = {
  disk_hits : int;
  disk_misses : int;
  writes : int;
  preloaded : int;
  entries : int;
  bytes_on_disk : int;
}

type t = {
  find : Job.spec -> digest:string -> Job.analysis_result list option;
  store : digest:string -> Job.analysis_result list -> unit;
  preload : Job.analysis_result list Cache.t -> int;
  record_heat : Job.analysis_result list Cache.t -> unit;
  stats : unit -> stats;
}

let stats_fields s =
  [
    ("disk_hits", Telemetry.Int s.disk_hits);
    ("disk_misses", Telemetry.Int s.disk_misses);
    ("writes", Telemetry.Int s.writes);
    ("preloaded", Telemetry.Int s.preloaded);
    ("entries", Telemetry.Int s.entries);
    ("bytes_on_disk", Telemetry.Int s.bytes_on_disk);
  ]
