(* Fan-out/fold orchestration over the worker pool. *)

type summary = {
  total : int;
  passed : int;
  failed : int;
  errored : int;
  cache_hits : int;
  cache_misses : int;
  store_hits : int;
  store_misses : int;
  wall_ns : int64;
  per_analysis : (string * int * int) list;
  results : Job.result list;
}

(* One job: memory-cache lookup, then the persistent tier, execution on
   a double miss, event emission, slot write. Slots are disjoint array
   cells, each written by exactly one worker and read only after the
   pool is joined, so no lock is needed beyond the ones inside Cache,
   the tier and Telemetry. *)
let run_one ~cache ~store ~sink slots (spec : Job.spec) =
  let timer = Telemetry.start () in
  let digest = Job.digest spec in
  let cached_result analyses =
    {
      Job.job_id = spec.Job.id;
      job_name = spec.Job.name;
      job_digest = digest;
      outcome = Ok analyses;
      duration_ns = Telemetry.elapsed_ns timer;
      from_cache = true;
    }
  in
  let consult_store () =
    match store with
    | None -> None
    | Some (tier : Tier.t) -> (
      match tier.Tier.find spec ~digest with
      | None -> None
      | Some analyses ->
        (* Promote the disk hit so the rest of the batch hits memory. *)
        (match cache with
        | Some cache -> Cache.add cache digest analyses
        | None -> ());
        Some (cached_result analyses))
  in
  let compute () =
    let r = Job.run ~digest spec in
    (match r.Job.outcome with
    | Ok analyses ->
      (match cache with
      | Some cache -> Cache.add cache digest analyses
      | None -> ());
      (match store with
      | Some (tier : Tier.t) -> tier.Tier.store ~digest analyses
      | None -> ())
    | Error _ -> ());
    r
  in
  let result =
    match cache with
    | None -> (
      match consult_store () with Some r -> r | None -> compute ())
    | Some cache -> (
      match Cache.find cache digest with
      | Some cached -> cached_result cached
      | None -> (
        match consult_store () with Some r -> r | None -> compute ()))
  in
  (match sink with
  | Some sink -> Telemetry.emit sink (Job.result_fields result)
  | None -> ());
  slots.(spec.Job.id) <- Some result

let fold ~wall_ns ~cache_hits ~cache_misses ~store_hits ~store_misses results =
  let passed = ref 0 and failed = ref 0 and errored = ref 0 in
  let per = Hashtbl.create 8 in
  List.iter
    (fun r ->
      (match Job.verdict r with
      | `Pass -> incr passed
      | `Fail -> incr failed
      | `Error -> incr errored);
      match r.Job.outcome with
      | Error _ -> ()
      | Ok analyses ->
        List.iter
          (fun (ar : Job.analysis_result) ->
            let p, f =
              Option.value ~default:(0, 0) (Hashtbl.find_opt per ar.Job.analysis)
            in
            Hashtbl.replace per ar.Job.analysis
              (if ar.Job.verdict then (p + 1, f) else (p, f + 1)))
          analyses)
    results;
  {
    total = List.length results;
    passed = !passed;
    failed = !failed;
    errored = !errored;
    cache_hits;
    cache_misses;
    store_hits;
    store_misses;
    wall_ns;
    per_analysis =
      Hashtbl.fold (fun name (p, f) acc -> (name, p, f) :: acc) per []
      |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b);
    results;
  }

let run ?(jobs = 1) ?cache ?store ?sink specs =
  if jobs < 1 then invalid_arg "Batch.run: jobs must be >= 1";
  let n = List.length specs in
  (* Re-id specs positionally so slots are dense even if the caller's
     ids are sparse; reported results keep the caller's metadata. *)
  let specs = List.mapi (fun i spec -> { spec with Job.id = i }) specs in
  let names = Array.of_list (List.map (fun s -> s.Job.name) specs) in
  let slots = Array.make (max 1 n) None in
  let stats_before = Option.map Cache.stats cache in
  let tier_before =
    Option.map (fun (tier : Tier.t) -> tier.Tier.stats ()) store
  in
  let timer = Telemetry.start () in
  if n > 0 then
    Pool.run ~workers:jobs
      (List.map (fun spec () -> run_one ~cache ~store ~sink slots spec) specs);
  let wall_ns = Telemetry.elapsed_ns timer in
  (* Persist the memory cache's recency ranking so the store's next
     warm start resurrects this batch's hot set. *)
  (match (store, cache) with
  | Some (tier : Tier.t), Some cache -> tier.Tier.record_heat cache
  | _ -> ());
  let results =
    Array.to_list slots
    |> List.filteri (fun i _ -> i < n)
    |> List.mapi (fun i slot ->
           match slot with
           | Some r -> r
           | None ->
             (* Unreachable unless a worker died outside the job barrier;
                surface it as a per-job error rather than crashing. *)
             {
               Job.job_id = i;
               job_name = names.(i);
               job_digest = "";
               outcome = Error "job was never completed by the pool";
               duration_ns = 0L;
               from_cache = false;
             })
  in
  let cache_hits, cache_misses =
    match (stats_before, Option.map Cache.stats cache) with
    | Some before, Some after ->
      (after.Cache.hits - before.Cache.hits, after.Cache.misses - before.Cache.misses)
    | _ -> (0, 0)
  in
  let store_hits, store_misses =
    match
      (tier_before, Option.map (fun (t : Tier.t) -> t.Tier.stats ()) store)
    with
    | Some before, Some after ->
      ( after.Tier.disk_hits - before.Tier.disk_hits,
        after.Tier.disk_misses - before.Tier.disk_misses )
    | _ -> (0, 0)
  in
  let summary =
    fold ~wall_ns ~cache_hits ~cache_misses ~store_hits ~store_misses results
  in
  (match sink with
  | Some sink ->
    Telemetry.emit sink
      [
        ("event", Telemetry.String "summary");
        ("total", Telemetry.Int summary.total);
        ("passed", Telemetry.Int summary.passed);
        ("failed", Telemetry.Int summary.failed);
        ("errored", Telemetry.Int summary.errored);
        ("cache_hits", Telemetry.Int summary.cache_hits);
        ("cache_misses", Telemetry.Int summary.cache_misses);
        ("store_hits", Telemetry.Int summary.store_hits);
        ("store_misses", Telemetry.Int summary.store_misses);
        ("wall_ns", Telemetry.Int (Int64.to_int summary.wall_ns));
        ("jobs", Telemetry.Int jobs);
      ]
  | None -> ());
  summary

let throughput s =
  let secs = Int64.to_float s.wall_ns /. 1e9 in
  if secs <= 0. then 0. else float_of_int s.total /. secs

let pp_summary ppf s =
  Fmt.pf ppf "jobs: %d total, %d passed, %d failed, %d errored@." s.total s.passed
    s.failed s.errored;
  if s.cache_hits + s.cache_misses > 0 then begin
    let rate =
      100. *. float_of_int s.cache_hits
      /. float_of_int (s.cache_hits + s.cache_misses)
    in
    Fmt.pf ppf "cache: %d hits, %d misses (%.1f%% hit rate)@." s.cache_hits
      s.cache_misses rate
  end;
  if s.store_hits + s.store_misses > 0 then begin
    let rate =
      100. *. float_of_int s.store_hits
      /. float_of_int (s.store_hits + s.store_misses)
    in
    Fmt.pf ppf "store: %d disk hits, %d disk misses (%.1f%% hit rate)@."
      s.store_hits s.store_misses rate
  end;
  (match s.per_analysis with
  | [] -> ()
  | per ->
    Fmt.pf ppf "per-analysis:%a@."
      (fun ppf ->
        List.iter (fun (name, p, f) -> Fmt.pf ppf " %s %d/%d pass" name p (p + f)))
      per);
  Fmt.pf ppf "wall: %.1f ms (%.1f jobs/s)@."
    (Telemetry.ns_to_ms s.wall_ns)
    (throughput s)
