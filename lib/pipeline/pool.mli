(** A fixed-size worker pool of OCaml 5 domains over a mutex/condition
    work queue.

    The pool is deliberately minimal: tasks are [unit -> unit] thunks,
    submission is FIFO, and results travel through whatever the thunk
    closes over ({!Batch} writes into a per-job slot). Every task runs
    under a per-worker exception barrier, so a faulting job can never
    kill a domain or wedge the queue — the exception is routed to the
    [on_error] callback (default: ignored) and the worker moves on.

    {!shutdown} is graceful: already-queued tasks drain before the
    domains exit, and the call blocks until every worker has been
    joined. *)

type t

val create : ?on_error:(worker:int -> exn -> unit) -> workers:int -> unit -> t
(** [create ~workers ()] spawns [workers] domains immediately.
    @raise Invalid_argument if [workers < 1]. *)

val workers : t -> int

val submit : t -> (unit -> unit) -> unit
(** Enqueues a task.
    @raise Invalid_argument if the pool has been shut down. *)

val pending : t -> int
(** Tasks enqueued but not yet picked up (a snapshot, racy by nature). *)

val shutdown : t -> unit
(** Stops accepting tasks, drains the queue, joins all domains.
    Idempotent; concurrent calls are safe. *)

val run : ?on_error:(worker:int -> exn -> unit) -> workers:int ->
  (unit -> unit) list -> unit
(** [run ~workers tasks] is a one-shot pool: create, submit all, shut
    down. *)
