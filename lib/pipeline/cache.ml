(* Content-addressed LRU cache: a hash table over an intrusive
   doubly-linked recency list, everything behind one mutex. Operations
   are O(1); the lock is held only for pointer surgery, never while
   computing a value. *)

type 'v node = {
  key : string;
  mutable value : 'v;
  mutable prev : 'v node option;  (* towards most-recent *)
  mutable next : 'v node option;  (* towards least-recent *)
}

type 'v t = {
  mutex : Mutex.t;
  table : (string, 'v node) Hashtbl.t;
  capacity : int;
  mutable head : 'v node option;  (* most recently used *)
  mutable tail : 'v node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ?(capacity = 4096) () =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    capacity = max 1 capacity;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* List surgery; caller holds the lock. *)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some lru ->
    unlink t lru;
    Hashtbl.remove t.table lru.key;
    t.evictions <- t.evictions + 1

let find t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node ->
        t.hits <- t.hits + 1;
        unlink t node;
        push_front t node;
        Some node.value
      | None ->
        t.misses <- t.misses + 1;
        None)

let add t key value =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node ->
        node.value <- value;
        unlink t node;
        push_front t node
      | None ->
        let node = { key; value; prev = None; next = None } in
        Hashtbl.add t.table key node;
        push_front t node;
        if Hashtbl.length t.table > t.capacity then evict_lru t)

let mem t key = with_lock t (fun () -> Hashtbl.mem t.table key)

(* Explicit invalidation is not an eviction: capacity pressure and
   deliberate removal are separate signals, counted separately. *)
let remove t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | None -> false
      | Some node ->
        unlink t node;
        Hashtbl.remove t.table key;
        t.invalidations <- t.invalidations + 1;
        true)

(* Folds over live entries in recency order, most recently used first —
   recency- and counter-neutral, so exporting the cache (say, into a
   persistent store) never perturbs what it is exporting. The fold runs
   under the lock: [f] must not call back into the cache. *)
let fold t f init =
  with_lock t (fun () ->
      let rec go acc = function
        | None -> acc
        | Some node -> go (f acc node.key node.value) node.next
      in
      go init t.head)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  size : int;
  capacity : int;
}

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        invalidations = t.invalidations;
        size = Hashtbl.length t.table;
        capacity = t.capacity;
      })

let hit_rate s =
  let looked = s.hits + s.misses in
  if looked = 0 then 0. else 100. *. float_of_int s.hits /. float_of_int looked

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None)
