(* Content-addressed LRU cache, striped so worker domains and I/O
   shards don't serialize on one mutex: a cache is an array of
   independent stripes, each a hash table over an intrusive
   doubly-linked recency list behind its own lock. Keys are routed to
   stripes by hash, so digest-identical lookups always meet in the same
   stripe and the striping is invisible to callers. Operations are
   O(1); a lock is held only for pointer surgery, never while computing
   a value. With one stripe (the default) behavior is exactly the
   classic single-lock LRU; with [n] stripes eviction is
   least-recently-used *per stripe*, which is the standard
   approximation. *)

type 'v node = {
  key : string;
  mutable value : 'v;
  mutable prev : 'v node option;  (* towards most-recent *)
  mutable next : 'v node option;  (* towards least-recent *)
}

type 'v stripe = {
  mutex : Mutex.t;
  table : (string, 'v node) Hashtbl.t;
  capacity : int;
  mutable head : 'v node option;  (* most recently used *)
  mutable tail : 'v node option;  (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

type 'v t = 'v stripe array

let create ?(shards = 1) ?(capacity = 4096) () =
  let shards = max 1 shards in
  let capacity = max 1 capacity in
  (* Ceiling division: the total never rounds below the request. *)
  let per_stripe = max 1 ((capacity + shards - 1) / shards) in
  Array.init shards (fun _ ->
      {
        mutex = Mutex.create ();
        table = Hashtbl.create 64;
        capacity = per_stripe;
        head = None;
        tail = None;
        hits = 0;
        misses = 0;
        evictions = 0;
        invalidations = 0;
      })

let shards t = Array.length t

let stripe_of t key = t.(Hashtbl.hash key mod Array.length t)

let with_lock s f =
  Mutex.lock s.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) f

(* List surgery; caller holds the stripe lock. *)

let unlink s node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> s.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> s.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front s node =
  node.next <- s.head;
  node.prev <- None;
  (match s.head with Some h -> h.prev <- Some node | None -> s.tail <- Some node);
  s.head <- Some node

let evict_lru s =
  match s.tail with
  | None -> ()
  | Some lru ->
    unlink s lru;
    Hashtbl.remove s.table lru.key;
    s.evictions <- s.evictions + 1

let find t key =
  let s = stripe_of t key in
  with_lock s (fun () ->
      match Hashtbl.find_opt s.table key with
      | Some node ->
        s.hits <- s.hits + 1;
        unlink s node;
        push_front s node;
        Some node.value
      | None ->
        s.misses <- s.misses + 1;
        None)

let add t key value =
  let s = stripe_of t key in
  with_lock s (fun () ->
      match Hashtbl.find_opt s.table key with
      | Some node ->
        node.value <- value;
        unlink s node;
        push_front s node
      | None ->
        let node = { key; value; prev = None; next = None } in
        Hashtbl.add s.table key node;
        push_front s node;
        if Hashtbl.length s.table > s.capacity then evict_lru s)

let mem t key =
  let s = stripe_of t key in
  with_lock s (fun () -> Hashtbl.mem s.table key)

(* Explicit invalidation is not an eviction: capacity pressure and
   deliberate removal are separate signals, counted separately. *)
let remove t key =
  let s = stripe_of t key in
  with_lock s (fun () ->
      match Hashtbl.find_opt s.table key with
      | None -> false
      | Some node ->
        unlink s node;
        Hashtbl.remove s.table key;
        s.invalidations <- s.invalidations + 1;
        true)

(* Folds over live entries, stripe by stripe, each stripe in recency
   order (most recently used first) — recency- and counter-neutral, so
   exporting the cache (say, into a persistent store) never perturbs
   what it is exporting. With several stripes the concatenation is only
   approximately a global recency order, which is all the heat-recording
   consumer needs. Each stripe's fold runs under that stripe's lock:
   [f] must not call back into the cache. *)
let fold t f init =
  Array.fold_left
    (fun acc s ->
      with_lock s (fun () ->
          let rec go acc = function
            | None -> acc
            | Some node -> go (f acc node.key node.value) node.next
          in
          go acc s.head))
    init t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  size : int;
  capacity : int;
}

let stats t =
  Array.fold_left
    (fun acc s ->
      with_lock s (fun () ->
          {
            hits = acc.hits + s.hits;
            misses = acc.misses + s.misses;
            evictions = acc.evictions + s.evictions;
            invalidations = acc.invalidations + s.invalidations;
            size = acc.size + Hashtbl.length s.table;
            capacity = acc.capacity + s.capacity;
          }))
    { hits = 0; misses = 0; evictions = 0; invalidations = 0; size = 0; capacity = 0 }
    t

let hit_rate s =
  let looked = s.hits + s.misses in
  if looked = 0 then 0. else 100. *. float_of_int s.hits /. float_of_int looked

let clear t =
  Array.iter
    (fun s ->
      with_lock s (fun () ->
          Hashtbl.reset s.table;
          s.head <- None;
          s.tail <- None))
    t
