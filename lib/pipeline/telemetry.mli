(** Stage timers, counters and a JSONL event sink for the batch pipeline.

    Everything here is hand-rolled on the standard library plus the
    monotonic clock stub already shipped for the benchmarks — no JSON
    dependency. The sink writes one self-contained JSON object per line
    (JSONL), so a batch log can be replayed, diffed, or fed to any
    line-oriented tool; every write is serialised behind a mutex so
    concurrent domains never interleave bytes of two events. *)

val now_ns : unit -> int64
(** Monotonic clock reading in nanoseconds. Differences are meaningful;
    absolute values are not. *)

(** {1 Timers} *)

type timer

val start : unit -> timer

val elapsed_ns : timer -> int64

val ns_to_ms : int64 -> float

(** {1 JSON values}

    A minimal JSON tree, enough to describe pipeline events. [Float]
    values that are not finite render as [null] (JSON has no NaN). *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val json_to_string : json -> string
(** Compact (single-line) rendering with full string escaping. *)

(** {1 Counters}

    A named-counter registry shared across domains. *)

type counters

val counters : unit -> counters

val incr : counters -> string -> unit

val add : counters -> string -> int -> unit

val count : counters -> string -> int
(** [count c name] is the current value ([0] if never touched). *)

val snapshot : counters -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Event sinks} *)

type sink

val null_sink : unit -> sink
(** Discards every event (the default when no log is requested). *)

val sink_of_channel : out_channel -> sink
(** Events append to the channel; {!close} flushes but does not close
    it (the caller owns the channel). *)

val open_sink : string -> sink
(** [open_sink path] truncates/creates [path]; {!close} closes it. *)

val emit : sink -> (string * json) list -> unit
(** [emit sink fields] writes [fields] as one JSON object on one line,
    prefixed with a ["seq"] field carrying the event's sequence number
    within this sink. Thread-safe. The complete line — newline included
    — is written in a single call and flushed before [emit] returns, so
    an interrupted process can lose whole events but the file never ends
    in a partial line. *)

val close : sink -> unit
(** Flush and release the sink. Idempotent; [emit] after [close] is a
    silent no-op. *)

val events_written : sink -> int

val with_sink : string -> (sink -> 'a) -> 'a
(** [with_sink path f] opens a sink on [path], runs [f], and guarantees
    {!close} on every exit path — normal return, exception, or early
    exit via [raise]. This is the hygienic way to log from CLI commands
    and servers alike. *)

(** {1 Latency histograms}

    Log-spaced buckets (bucket [i] holds observations at or below
    [1024 * 2^i] ns, from ~1 us to an overflow bucket at ~1.2 h), shared
    across threads and domains behind a mutex. Quantiles are reported as
    the upper bound of the bucket containing the rank, so they are exact
    to within one octave. *)

type histogram

val histogram : unit -> histogram

val bucket_count : int
(** Number of buckets, overflow included. *)

val bucket_upper_ns : int -> int64
(** [bucket_upper_ns i] is the inclusive upper bound of bucket [i],
    i.e. [1024 * 2^i] ns. The last bucket ([bucket_count - 1]) is an
    overflow whose quantiles report the maximum observation instead. *)

val observe : histogram -> int64 -> unit
(** Record one duration in nanoseconds (negative values clamp to 0). *)

val observations : histogram -> int

val quantile_ns : histogram -> float -> int64
(** [quantile_ns h q] for [q] in [[0, 1]]; [0L] when empty. *)

val histogram_fields : histogram -> (string * json) list
(** [count], [mean_ns], [p50_ns], [p90_ns], [p95_ns], [p99_ns],
    [max_ns] — ready to embed in a stats response or JSONL event. *)
