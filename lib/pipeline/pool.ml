(* A fixed-size Domain worker pool with a mutex/condition work queue.

   Invariants: [closed] flips once, under the mutex; workers exit only
   when [closed && queue empty]; [domains] is written once right after
   the workers are spawned and joined exactly once ([joined] guards
   idempotent shutdown, including racing shutdown callers). *)

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  on_error : worker:int -> exn -> unit;
  mutable closed : bool;
  mutable joined : bool;
  mutable domains : unit Domain.t list;
}

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let worker t index =
  let rec loop () =
    let task =
      with_lock t (fun () ->
          while Queue.is_empty t.queue && not t.closed do
            Condition.wait t.nonempty t.mutex
          done;
          if Queue.is_empty t.queue then None else Some (Queue.pop t.queue))
    in
    match task with
    | None -> () (* closed and drained *)
    | Some task ->
      (* The barrier: a faulting task is reported, never propagated. A
         faulting error callback is swallowed outright — the pool's
         liveness outranks its diagnostics. *)
      (try task () with exn -> ( try t.on_error ~worker:index exn with _ -> ()));
      loop ()
  in
  loop ()

let create ?(on_error = fun ~worker:_ _ -> ()) ~workers () =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let t =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      on_error;
      closed = false;
      joined = false;
      domains = [];
    }
  in
  t.domains <- List.init workers (fun i -> Domain.spawn (fun () -> worker t i));
  t

let workers t = List.length t.domains

let submit t task =
  with_lock t (fun () ->
      if t.closed then invalid_arg "Pool.submit: pool is shut down";
      Queue.push task t.queue;
      Condition.signal t.nonempty)

let pending t = with_lock t (fun () -> Queue.length t.queue)

let shutdown t =
  let to_join =
    with_lock t (fun () ->
        t.closed <- true;
        Condition.broadcast t.nonempty;
        if t.joined then []
        else begin
          t.joined <- true;
          t.domains
        end)
  in
  List.iter Domain.join to_join

let run ?on_error ~workers tasks =
  let t = create ?on_error ~workers () in
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () -> List.iter (submit t) tasks)
