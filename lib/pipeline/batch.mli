(** The batch orchestrator: fan job specs out over a {!Pool}, consult
    the {!Cache}, emit {!Telemetry} events, fold a summary.

    Results are deterministic regardless of worker count or scheduling:
    each job's verdict depends only on its spec, and the summary folds
    results in spec-id order. The only schedule-dependent observables
    are durations and, with a shared cache, {e which} of two identical
    jobs in the same batch pays the miss. *)

type summary = {
  total : int;
  passed : int;  (** Every analysis verdict true. *)
  failed : int;  (** Ran to completion, some verdict false. *)
  errored : int;  (** The job raised; see its [outcome]. *)
  cache_hits : int;  (** Memory-cache hits during this batch only. *)
  cache_misses : int;  (** Memory-cache misses during this batch only. *)
  store_hits : int;  (** Persistent-tier hits during this batch only. *)
  store_misses : int;  (** Persistent-tier misses during this batch only. *)
  wall_ns : int64;  (** Submission to last-result wall time. *)
  per_analysis : (string * int * int) list;
      (** [(analysis, passes, fails)], sorted by analysis name. *)
  results : Job.result list;  (** In spec-id order. *)
}

val run :
  ?jobs:int ->
  ?cache:Job.analysis_result list Cache.t ->
  ?store:Tier.t ->
  ?sink:Telemetry.sink ->
  Job.spec list ->
  summary
(** [run specs] certifies every spec and returns the fold.

    [jobs] (default 1) is the number of worker domains; [1] still goes
    through the pool, so the single-domain baseline exercises the same
    code path the parallel runs do. With [cache], a job whose digest is
    present skips execution and reuses the cached analysis results
    (marked [from_cache]); only [Ok] outcomes are ever inserted. With
    [store], a memory miss consults the persistent tier before
    computing: disk hits are promoted into the memory cache and marked
    [from_cache], computed [Ok] results are persisted, and the cache's
    final recency ranking is recorded back to the tier so its next warm
    start preloads this batch's hot set. With [sink], one [event=job]
    line is emitted per job as it completes plus a final [event=summary]
    line. *)

val throughput : summary -> float
(** Jobs per second over the batch wall time. *)

val pp_summary : Format.formatter -> summary -> unit
(** The human summary: a [jobs:] line, [cache:] and [store:] lines (each
    only when a lookup happened at that tier), a [per-analysis:] line
    (when non-trivial), and a [wall:] line with throughput. *)
