(* Job specs, content addressing, and per-job analysis execution. *)

module Lattice = Ifc_lattice.Lattice
module Spec = Ifc_lattice.Spec
module Ast = Ifc_lang.Ast
module Pretty = Ifc_lang.Pretty
module Binding = Ifc_core.Binding
module Cfm = Ifc_core.Cfm
module Denning = Ifc_core.Denning
module Invariance = Ifc_logic_gen.Invariance
module Proof = Ifc_logic.Proof
module Ni = Ifc_exec.Noninterference

type analysis =
  | Denning
  | Cfm
  | Prove
  | Cert
  | Ni of { pairs : int; max_states : int }
  | Lint
  | Custom of string * (string Binding.t -> Ast.program -> bool * int)
  | Link of string * (string Binding.t -> Ast.program -> bool * int * string option)

let analysis_name = function
  | Denning -> "denning"
  | Cfm -> "cfm"
  | Prove -> "prove"
  | Cert -> "cert"
  | Ni _ -> "ni"
  | Lint -> "lint"
  | Custom (name, _) -> name
  | Link _ -> "link"

let analysis_key = function
  | Ni { pairs; max_states } -> Printf.sprintf "ni:%d:%d" pairs max_states
  | Custom (name, _) -> "custom:" ^ name
  | Link (unit_digest, _) -> "link:" ^ unit_digest
  | a -> analysis_name a

let analysis_of_string ?(ni_pairs = 8) ?(ni_max_states = 20_000) = function
  | "denning" -> Ok Denning
  | "cfm" -> Ok Cfm
  | "prove" -> Ok Prove
  | "cert" -> Ok Cert
  | "ni" -> Ok (Ni { pairs = ni_pairs; max_states = ni_max_states })
  | "lint" -> Ok Lint
  | other ->
    Error
      (Printf.sprintf
         "unknown analysis %S (use denning, cfm, prove, cert, ni, or lint)"
         other)

let default_analyses = [ Cfm ]

type spec = {
  id : int;
  name : string;
  program : Ast.program;
  binding : string Binding.t;
  lattice : string Lattice.t;
  analyses : analysis list;
  self_check : bool;
}

let make ~id ~name ~lattice ~binding ?(analyses = default_analyses)
    ?(self_check = false) program =
  { id; name; program; binding; lattice; analyses; self_check }

(* The digest covers every input the verdicts depend on. The program is
   keyed by its canonical pretty-printed form, so two parses of the same
   source — or a generated program and its round-tripped copy — share a
   cache entry. *)
let digest spec =
  let payload =
    String.concat "\x00"
      [
        Pretty.program_to_string spec.program;
        Fmt.str "%a" Binding.pp spec.binding;
        Spec.to_text spec.lattice;
        String.concat "," (List.map analysis_key spec.analyses);
        string_of_bool spec.self_check;
      ]
  in
  Digest.to_hex (Digest.string payload)

type analysis_result = {
  analysis : string;
  verdict : bool;
  checks : int;
  duration_ns : int64;
  artifact : string option;
}

type outcome = (analysis_result list, string) result

type result = {
  job_id : int;
  job_name : string;
  job_digest : string;
  outcome : outcome;
  duration_ns : int64;
  from_cache : bool;
}

(* Emit a certificate for the program and re-validate it through the
   independent checker (serialize, re-parse, re-check): the verdict is
   true only when the checker accepts the exact bytes that would be
   handed out, and those bytes ride along as the artifact — so
   digest-keyed cache entries carry the certificate itself. *)
let run_cert binding program =
  match Invariance.witness binding program.Ast.body with
  | Error errors -> (false, List.length errors, None)
  | Ok proof -> (
    let cert = Ifc_cert.Cert.of_proof ~binding ~program proof in
    let text = Ifc_cert.Cert.to_string cert in
    match Ifc_cert.Cert.parse text with
    | Error _ -> (false, Proof.size proof, None)
    | Ok parsed -> (
      match Ifc_cert.Checker.check parsed program with
      | Ok () -> (true, Ifc_cert.Cert.node_count parsed, Some text)
      | Error failures -> (false, List.length failures, None)))

(* The concurrency analyzer. The verdict is "no findings"; the full
   findings list and the safety claims ride along as a JSON artifact, so
   digest-keyed cache entries (and the serve protocol) carry the report
   itself. *)
let lint_report_json ?(extra = []) (report : Ifc_analysis.Analyze.report) =
  let open Telemetry in
  let span s = Fmt.str "%a" Ifc_lang.Loc.pp s in
  let finding (f : Ifc_analysis.Finding.t) =
    Obj
      ([
         ("kind", String (Ifc_analysis.Finding.kind_name f.kind));
         ("severity", String (Ifc_analysis.Finding.severity_name f.severity));
         ("span", String (span f.span));
         ("message", String f.message);
       ]
      @
      match f.related with
      | Some r when not (Ifc_lang.Loc.is_dummy r) ->
        [ ("related", String (span r)) ]
      | _ -> [])
  in
  let claims = report.Ifc_analysis.Analyze.claims in
  let stats = report.Ifc_analysis.Analyze.stats in
  json_to_string
    (Obj
       ([
         ("findings", List (List.map finding report.Ifc_analysis.Analyze.findings));
         ( "claims",
           Obj
             [
               ("race_free", Bool claims.Ifc_analysis.Analyze.race_free);
               ("deadlock_free", Bool claims.Ifc_analysis.Analyze.deadlock_free);
               ("must_block", Bool claims.Ifc_analysis.Analyze.must_block);
               ( "chan_race_free",
                 Bool claims.Ifc_analysis.Analyze.chan_race_free );
               ( "chan_deadlock_free",
                 Bool claims.Ifc_analysis.Analyze.chan_deadlock_free );
             ] );
         ( "channels",
           List
             (List.map
                (fun (c : Ifc_chan.Lint.summary) ->
                  let count = function
                    | Ifc_chan.Lint.Fin n -> Int n
                    | Ifc_chan.Lint.Inf -> String "inf"
                  in
                  Obj
                    [
                      ("name", String c.Ifc_chan.Lint.s_chan);
                      ("cap", Int c.Ifc_chan.Lint.s_cap);
                      ("send_min", Int c.Ifc_chan.Lint.s_send_min);
                      ("send_max", count c.Ifc_chan.Lint.s_send_max);
                      ("recv_min", Int c.Ifc_chan.Lint.s_recv_min);
                      ("recv_max", count c.Ifc_chan.Lint.s_recv_max);
                      ("edges", Int c.Ifc_chan.Lint.s_degree);
                    ])
                report.Ifc_analysis.Analyze.channels) );
         ( "stats",
           Obj
             [
               ("statements", Int stats.Ifc_analysis.Analyze.statements);
               ("accesses", Int stats.Ifc_analysis.Analyze.accesses);
               ("pairs", Int stats.Ifc_analysis.Analyze.pairs);
             ] );
         ( "pruned",
           List
             (List.map
                (fun (pr : Ifc_dataflow.Prune.pruned) ->
                  Obj
                    [
                      ( "arm",
                        String (Ifc_dataflow.Prune.arm_name pr.Ifc_dataflow.Prune.p_arm) );
                      ("span", String (span pr.Ifc_dataflow.Prune.p_span));
                      ("stmt", String (span pr.Ifc_dataflow.Prune.p_stmt_span));
                    ])
                report.Ifc_analysis.Analyze.pruned) );
       ]
       @ extra))

let run_lint program =
  let report = Ifc_analysis.Analyze.run program in
  let n = List.length report.Ifc_analysis.Analyze.findings in
  (n = 0, n, Some (lint_report_json report))

let run_analysis spec analysis =
  let timer = Telemetry.start () in
  let verdict, checks, artifact =
    match analysis with
    | Denning ->
      let r =
        Denning.analyze_program ~on_concurrency:`Ignore spec.binding spec.program
      in
      (r.Denning.certified, List.length r.Denning.checks, None)
    | Cfm ->
      let r =
        Cfm.analyze_program ~self_check:spec.self_check spec.binding spec.program
      in
      (r.Cfm.certified, List.length r.Cfm.checks, None)
    | Prove -> (
      match Invariance.witness spec.binding spec.program.Ast.body with
      | Ok proof -> (true, Proof.size proof, None)
      | Error errors -> (false, List.length errors, None))
    | Cert -> run_cert spec.binding spec.program
    | Ni { pairs; max_states } ->
      let r =
        Ni.test ~pairs ~max_states ~observer:spec.lattice.Lattice.bottom
          spec.binding spec.program
      in
      (Ni.secure r, r.Ni.pairs_tested, None)
    | Lint -> run_lint spec.program
    | Custom (_, f) ->
      let verdict, checks = f spec.binding spec.program in
      (verdict, checks, None)
    | Link (_, f) -> f spec.binding spec.program
  in
  {
    analysis = analysis_name analysis;
    verdict;
    checks;
    duration_ns = Telemetry.elapsed_ns timer;
    artifact;
  }

let run ?digest:precomputed spec =
  let job_digest =
    match precomputed with Some d -> d | None -> digest spec
  in
  let timer = Telemetry.start () in
  let outcome =
    try Ok (List.map (run_analysis spec) spec.analyses)
    with exn -> Error (Printexc.to_string exn)
  in
  {
    job_id = spec.id;
    job_name = spec.name;
    job_digest;
    outcome;
    duration_ns = Telemetry.elapsed_ns timer;
    from_cache = false;
  }

let verdict r =
  match r.outcome with
  | Error _ -> `Error
  | Ok results ->
    if List.for_all (fun ar -> ar.verdict) results then `Pass else `Fail

let verdict_string r =
  match verdict r with `Pass -> "pass" | `Fail -> "fail" | `Error -> "error"

let result_fields r =
  let open Telemetry in
  let analyses =
    match r.outcome with
    | Error msg -> [ ("error", String msg) ]
    | Ok results ->
      [
        ( "analyses",
          List
            (List.map
               (fun ar ->
                 Obj
                   ([
                      ("analysis", String ar.analysis);
                      ("verdict", Bool ar.verdict);
                      ("checks", Int ar.checks);
                      ("duration_ns", Int (Int64.to_int ar.duration_ns));
                    ]
                   @
                   match ar.artifact with
                   | None -> []
                   | Some a -> [ ("artifact_bytes", Int (String.length a)) ]))
               results) );
      ]
  in
  [
    ("event", String "job");
    ("id", Int r.job_id);
    ("name", String r.job_name);
    ("digest", String r.job_digest);
    ("cache", String (if r.from_cache then "hit" else "miss"));
    ("verdict", String (verdict_string r));
    ("duration_ns", Int (Int64.to_int r.duration_ns));
  ]
  @ analyses
