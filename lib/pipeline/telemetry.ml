(* Timers, counters, and the JSONL event sink. *)

let now_ns () = Monotonic_clock.now ()

(* ------------------------------------------------------------------ *)
(* Timers *)

type timer = int64

let start () = now_ns ()

let elapsed_ns t0 = Int64.sub (now_ns ()) t0

let ns_to_ms ns = Int64.to_float ns /. 1e6

(* ------------------------------------------------------------------ *)
(* JSON *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec json_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then
      (* %.17g is lossless for doubles but noisy; 12 significant digits
         are plenty for durations and rates. *)
      Buffer.add_string buf (Printf.sprintf "%.12g" f)
    else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        json_to buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        json_to buf v)
      fields;
    Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 128 in
  json_to buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Counters *)

type counters = { mutex : Mutex.t; table : (string, int ref) Hashtbl.t }

let counters () = { mutex = Mutex.create (); table = Hashtbl.create 16 }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let add c name n =
  with_lock c.mutex (fun () ->
      match Hashtbl.find_opt c.table name with
      | Some r -> r := !r + n
      | None -> Hashtbl.add c.table name (ref n))

let incr c name = add c name 1

let count c name =
  with_lock c.mutex (fun () ->
      match Hashtbl.find_opt c.table name with
      | Some r -> !r
      | None -> 0)

let snapshot c =
  with_lock c.mutex (fun () ->
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) c.table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

(* ------------------------------------------------------------------ *)
(* Sinks *)

type target =
  | Discard
  | Channel of { oc : out_channel; owned : bool }

type sink = {
  sink_mutex : Mutex.t;
  mutable target : target;
  mutable seq : int;
  mutable closed : bool;
}

let make_sink target =
  { sink_mutex = Mutex.create (); target; seq = 0; closed = false }

let null_sink () = make_sink Discard

let sink_of_channel oc = make_sink (Channel { oc; owned = false })

let open_sink path = make_sink (Channel { oc = open_out path; owned = true })

let emit sink fields =
  with_lock sink.sink_mutex (fun () ->
      if not sink.closed then begin
        let seq = sink.seq in
        sink.seq <- seq + 1;
        match sink.target with
        | Discard -> ()
        | Channel { oc; _ } ->
          (* One write, one flush: the complete line (newline included)
             reaches the OS before emit returns, so a crash between
             events can lose whole lines but never leave a partial one. *)
          let buf = Buffer.create 256 in
          json_to buf (Obj (("seq", Int seq) :: fields));
          Buffer.add_char buf '\n';
          output_string oc (Buffer.contents buf);
          flush oc
      end)

let close sink =
  with_lock sink.sink_mutex (fun () ->
      if not sink.closed then begin
        sink.closed <- true;
        match sink.target with
        | Discard -> ()
        | Channel { oc; owned } ->
          flush oc;
          if owned then close_out oc
      end)

let events_written sink = with_lock sink.sink_mutex (fun () -> sink.seq)

let with_sink path f =
  let sink = open_sink path in
  Fun.protect ~finally:(fun () -> close sink) (fun () -> f sink)

(* ------------------------------------------------------------------ *)
(* Histograms *)

(* Log-spaced latency buckets: bucket [i] counts observations at or
   below [1024 * 2^i] ns (~1 us up to ~1.2 h); the last bucket is an
   overflow. Quantiles report a bucket upper bound, so they carry at
   most one octave of error — plenty for a service dashboard. *)

let bucket_count = 33

let bucket_base_ns = 1024L

type histogram = {
  h_mutex : Mutex.t;
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : int64;
  mutable h_max : int64;
}

let histogram () =
  {
    h_mutex = Mutex.create ();
    buckets = Array.make bucket_count 0;
    h_count = 0;
    h_sum = 0L;
    h_max = 0L;
  }

let bucket_upper_ns i = Int64.shift_left bucket_base_ns i

let bucket_of ns =
  let rec go i =
    if i >= bucket_count - 1 then bucket_count - 1
    else if Int64.compare ns (bucket_upper_ns i) <= 0 then i
    else go (i + 1)
  in
  go 0

let observe h ns =
  let ns = if Int64.compare ns 0L < 0 then 0L else ns in
  with_lock h.h_mutex (fun () ->
      let i = bucket_of ns in
      h.buckets.(i) <- h.buckets.(i) + 1;
      h.h_count <- h.h_count + 1;
      h.h_sum <- Int64.add h.h_sum ns;
      if Int64.compare ns h.h_max > 0 then h.h_max <- ns)

let observations h = with_lock h.h_mutex (fun () -> h.h_count)

let quantile_ns h q =
  let q = Float.max 0. (Float.min 1. q) in
  with_lock h.h_mutex (fun () ->
      if h.h_count = 0 then 0L
      else begin
        let rank =
          max 1
            (min h.h_count (int_of_float (ceil (q *. float_of_int h.h_count))))
        in
        let acc = ref 0 and result = ref h.h_max in
        (try
           for i = 0 to bucket_count - 1 do
             acc := !acc + h.buckets.(i);
             if !acc >= rank then begin
               (result := if i = bucket_count - 1 then h.h_max else bucket_upper_ns i);
               raise Exit
             end
           done
         with Exit -> ());
        !result
      end)

let histogram_fields h =
  let p50 = quantile_ns h 0.50
  and p90 = quantile_ns h 0.90
  and p95 = quantile_ns h 0.95
  and p99 = quantile_ns h 0.99 in
  with_lock h.h_mutex (fun () ->
      let mean =
        if h.h_count = 0 then 0.
        else Int64.to_float h.h_sum /. float_of_int h.h_count
      in
      [
        ("count", Int h.h_count);
        ("mean_ns", Float mean);
        ("p50_ns", Int (Int64.to_int p50));
        ("p90_ns", Int (Int64.to_int p90));
        ("p95_ns", Int (Int64.to_int p95));
        ("p99_ns", Int (Int64.to_int p99));
        ("max_ns", Int (Int64.to_int h.h_max));
      ])
