(* Timers, counters, and the JSONL event sink. *)

let now_ns () = Monotonic_clock.now ()

(* ------------------------------------------------------------------ *)
(* Timers *)

type timer = int64

let start () = now_ns ()

let elapsed_ns t0 = Int64.sub (now_ns ()) t0

let ns_to_ms ns = Int64.to_float ns /. 1e6

(* ------------------------------------------------------------------ *)
(* JSON *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec json_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then
      (* %.17g is lossless for doubles but noisy; 12 significant digits
         are plenty for durations and rates. *)
      Buffer.add_string buf (Printf.sprintf "%.12g" f)
    else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        json_to buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        json_to buf v)
      fields;
    Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 128 in
  json_to buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Counters *)

type counters = { mutex : Mutex.t; table : (string, int ref) Hashtbl.t }

let counters () = { mutex = Mutex.create (); table = Hashtbl.create 16 }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let add c name n =
  with_lock c.mutex (fun () ->
      match Hashtbl.find_opt c.table name with
      | Some r -> r := !r + n
      | None -> Hashtbl.add c.table name (ref n))

let incr c name = add c name 1

let count c name =
  with_lock c.mutex (fun () ->
      match Hashtbl.find_opt c.table name with
      | Some r -> !r
      | None -> 0)

let snapshot c =
  with_lock c.mutex (fun () ->
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) c.table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

(* ------------------------------------------------------------------ *)
(* Sinks *)

type target =
  | Discard
  | Channel of { oc : out_channel; owned : bool }

type sink = {
  sink_mutex : Mutex.t;
  mutable target : target;
  mutable seq : int;
  mutable closed : bool;
}

let make_sink target =
  { sink_mutex = Mutex.create (); target; seq = 0; closed = false }

let null_sink () = make_sink Discard

let sink_of_channel oc = make_sink (Channel { oc; owned = false })

let open_sink path = make_sink (Channel { oc = open_out path; owned = true })

let emit sink fields =
  with_lock sink.sink_mutex (fun () ->
      if not sink.closed then begin
        let seq = sink.seq in
        sink.seq <- seq + 1;
        match sink.target with
        | Discard -> ()
        | Channel { oc; _ } ->
          let line = json_to_string (Obj (("seq", Int seq) :: fields)) in
          output_string oc line;
          output_char oc '\n'
      end)

let close sink =
  with_lock sink.sink_mutex (fun () ->
      if not sink.closed then begin
        sink.closed <- true;
        match sink.target with
        | Discard -> ()
        | Channel { oc; owned } ->
          flush oc;
          if owned then close_out oc
      end)

let events_written sink = with_lock sink.sink_mutex (fun () -> sink.seq)
