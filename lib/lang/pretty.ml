(* Pretty-printer. Precedence levels mirror the parser so that output
   re-parses to the same AST (checked by a round-trip property test). *)

let binop_symbol = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Eq -> "="
  | Ast.Ne -> "<>"
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.And -> "and"
  | Ast.Or -> "or"

(* Precedence of a construct, and the levels required of its operands.
   [or] and [and] are parsed right-associatively, [+ - * / %] left-
   associatively; relations do not associate. *)
let level = function
  | Ast.Binop (Ast.Or, _, _) -> 1
  | Ast.Binop (Ast.And, _, _) -> 2
  | Ast.Unop (Ast.Not, _) -> 3
  | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), _, _) -> 4
  | Ast.Binop ((Ast.Add | Ast.Sub), _, _) -> 5
  | Ast.Binop ((Ast.Mul | Ast.Div | Ast.Mod), _, _) -> 6
  | Ast.Unop (Ast.Neg, _) -> 7
  | Ast.Int _ | Ast.Bool _ | Ast.Var _ | Ast.Index _ -> 8

let rec pp_prec min_level ppf e =
  let this = level e in
  let wrap = this < min_level in
  if wrap then Fmt.string ppf "(";
  (match e with
  | Ast.Int n -> Fmt.int ppf n
  | Ast.Bool b -> Fmt.string ppf (if b then "true" else "false")
  | Ast.Var x -> Fmt.string ppf x
  | Ast.Index (a, i) -> Fmt.pf ppf "%s[%a]" a (pp_prec 0) i
  | Ast.Unop (Ast.Neg, operand) ->
    (* Parenthesise a nested negation: "--x" would lex as a comment. *)
    let operand_level = match operand with Ast.Unop (Ast.Neg, _) -> 9 | _ -> 7 in
    Fmt.string ppf "-";
    pp_prec operand_level ppf operand
  | Ast.Unop (Ast.Not, operand) ->
    Fmt.string ppf "not ";
    pp_prec 3 ppf operand
  | Ast.Binop ((Ast.Or | Ast.And) as op, a, b) ->
    let this = level e in
    Fmt.pf ppf "%a %s %a" (pp_prec (this + 1)) a (binop_symbol op) (pp_prec this) b
  | Ast.Binop (((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op), a, b) ->
    Fmt.pf ppf "%a %s %a" (pp_prec 5) a (binop_symbol op) (pp_prec 5) b
  | Ast.Binop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod) as op), a, b) ->
    let this = level e in
    Fmt.pf ppf "%a %s %a" (pp_prec this) a (binop_symbol op) (pp_prec (this + 1)) b);
  if wrap then Fmt.string ppf ")"

let pp_expr ppf e = pp_prec 0 ppf e

let rec pp_stmt ppf (s : Ast.stmt) =
  match s.node with
  | Ast.Skip -> Fmt.string ppf "skip"
  | Ast.Assign (x, e) -> Fmt.pf ppf "@[<hv 2>%s :=@ %a@]" x pp_expr e
  | Ast.Declassify (x, e, cls) ->
    Fmt.pf ppf "@[<hv 2>%s :=@ declassify %a to %s@]" x pp_expr e cls
  | Ast.Store (a, i, e) -> Fmt.pf ppf "@[<hv 2>%s[%a] :=@ %a@]" a pp_expr i pp_expr e
  | Ast.If (cond, then_, else_) -> (
    match else_.node with
    | Ast.Skip ->
      Fmt.pf ppf "@[<hv>@[<hv 2>if %a then@ %a@]@ fi@]" pp_expr cond pp_stmt then_
    | _ ->
      Fmt.pf ppf "@[<hv>@[<hv 2>if %a then@ %a@]@ @[<hv 2>else@ %a@]@ fi@]" pp_expr cond
        pp_stmt then_ pp_stmt else_)
  | Ast.While (cond, body) ->
    Fmt.pf ppf "@[<hv>@[<hv 2>while %a do@ %a@]@ od@]" pp_expr cond pp_stmt body
  | Ast.Seq stmts ->
    Fmt.pf ppf "@[<hv>begin@;<1 2>@[<hv>%a@]@ end@]"
      (Fmt.list ~sep:(Fmt.any ";@ ") pp_stmt)
      stmts
  | Ast.Cobegin branches ->
    Fmt.pf ppf "@[<hv>cobegin@;<1 2>@[<hv>%a@]@ coend@]"
      (Fmt.list ~sep:(Fmt.any "@ ||@ ") pp_stmt)
      branches
  | Ast.Wait sem -> Fmt.pf ppf "wait(%s)" sem
  | Ast.Signal sem -> Fmt.pf ppf "signal(%s)" sem
  | Ast.Send (chan, e) -> Fmt.pf ppf "send(%s, %a)" chan pp_expr e
  | Ast.Recv (chan, x) -> Fmt.pf ppf "recv(%s, %s)" chan x

let pp_decl ppf = function
  | Ast.Arr_decl { name; size; cls } ->
    Fmt.pf ppf "%s : array(%d)%a;" name size
      Fmt.(option (fun ppf c -> pf ppf " class %s" c))
      cls
  | Ast.Var_decl { name; cls } ->
    Fmt.pf ppf "%s : integer%a;" name
      Fmt.(option (fun ppf c -> pf ppf " class %s" c))
      cls
  | Ast.Sem_decl { name; init; cls } ->
    Fmt.pf ppf "%s : semaphore initially(%d)%a;" name init
      Fmt.(option (fun ppf c -> pf ppf " class %s" c))
      cls
  | Ast.Chan_decl { name; cap; cls } ->
    Fmt.pf ppf "%s : channel(%d)%a;" name cap
      Fmt.(option (fun ppf c -> pf ppf " class %s" c))
      cls

let pp_program ppf (p : Ast.program) =
  match p.decls with
  | [] -> Fmt.pf ppf "@[<v>%a@]" pp_stmt p.body
  | decls ->
    Fmt.pf ppf "@[<v>var@;<1 2>@[<v>%a@]@ %a@]"
      (Fmt.list ~sep:Fmt.cut pp_decl)
      decls pp_stmt p.body

let pp_iface_entry rel ppf (e : Ast.iface_entry) =
  Fmt.pf ppf "%s : class %s %s" e.iv_name rel e.iv_class

let pp_iface_clause rel kw ppf = function
  | [] -> ()
  | entries ->
    Fmt.pf ppf "@ @[<hv 2>%s (%a)@]" kw
      (Fmt.list ~sep:(Fmt.any ",@ ") (pp_iface_entry rel))
      entries

let pp_module_unit ppf (m : Ast.module_unit) =
  let header ppf () =
    Fmt.pf ppf "@[<hv 2>module %s%a@]" m.iface.m_name
      (fun ppf () ->
        pp_iface_clause "<=" "provides" ppf m.iface.provides;
        pp_iface_clause ">=" "requires" ppf m.iface.requires)
      ()
  in
  match m.m_decls with
  | [] -> Fmt.pf ppf "@[<v>%a@;<1 2>@[<v>%a@]@ end@]" header () pp_stmt m.m_body
  | decls ->
    Fmt.pf ppf "@[<v>%a@;<1 2>@[<v>var@;<1 2>@[<v>%a@]@ %a@]@ end@]" header ()
      (Fmt.list ~sep:Fmt.cut pp_decl)
      decls pp_stmt m.m_body

let pp_linked ppf (l : Ast.linked) =
  let sep = Fmt.any "@ @ " in
  match (l.modules, l.main) with
  | [], None -> Fmt.pf ppf "@[<v>skip@]"
  | [], Some main -> pp_program ppf main
  | modules, None -> Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep pp_module_unit) modules
  | modules, Some main ->
    Fmt.pf ppf "@[<v>%a@ @ %a@]" (Fmt.list ~sep pp_module_unit) modules pp_program main

let expr_to_string e = Fmt.str "%a" pp_expr e

let stmt_to_string s = Fmt.str "%a" pp_stmt s

let program_to_string p = Fmt.str "%a" pp_program p

let linked_to_string l = Fmt.str "%a" pp_linked l
