(** Recursive-descent parser for the concrete syntax.

    The grammar is the paper's language (§2) with small conveniences:

    {v
    program := [decls] stmt
    decls   := 'var' group ';' (group ';')*
    group   := ident (',' ident)* ':' type ['class' ident]
    type    := 'integer' | 'semaphore' 'initially' '(' int ')'
             | 'channel' '(' int ')'
    stmt    := 'skip'
             | ident ':=' expr
             | 'if' expr 'then' stmt ['else' stmt] ['fi']
             | 'while' expr 'do' stmt ['od']
             | 'begin' stmt (';' stmt)* 'end'
             | 'cobegin' stmt ('||' stmt)* 'coend'
             | 'wait' '(' ident ')' | 'signal' '(' ident ')'
             | 'send' '(' ident ',' expr ')' | 'recv' '(' ident ',' ident ')'
    v}

    Expressions have conventional precedence; boolean connectives are the
    keywords [and]/[or]/[not] (the symbol [||] is reserved for process
    separation, following the paper). A dangling [else] binds to the
    nearest [if]; the optional [fi]/[od] close an [if]/[while] explicitly
    when that is not wanted. *)

type error = { message : string; pos : Loc.pos }

val pp_error : Format.formatter -> error -> unit

val parse_program : string -> (Ast.program, error) result
(** [parse_program src] parses a complete program (declarations + body). *)

val parse_stmt : string -> (Ast.stmt, error) result
(** [parse_stmt src] parses a single statement — handy in tests. *)

val parse_expr : string -> (Ast.expr, error) result
(** [parse_expr src] parses a single expression. *)

val parse_linked : string -> (Ast.linked, error) result
(** [parse_linked src] parses a linked compilation unit:

    {v
    linked  := module* [program]
    module  := 'module' ident ['provides' '(' pentry (',' pentry)* ')']
                              ['requires' '(' rentry (',' rentry)* ')']
               [decls] stmt 'end'
    pentry  := ident ':' 'class' '<=' ident
    rentry  := ident ':' 'class' '>=' ident
    v}

    Exports carry upper class bounds, imports lower bounds; the bound
    direction is enforced syntactically. A plain program parses as a
    linked unit with no modules. *)

val looks_linked : string -> bool
(** [looks_linked src] is [true] iff [src] lexes and its first token is
    the [module] keyword — used by loaders that accept either a plain
    program or a linked unit. *)
