(** Size and shape metrics over programs.

    The paper's complexity claim is "time proportional to the length of the
    program"; [length] below is the statement count used as the x-axis of
    the scaling benchmarks. *)

type t = {
  statements : int;  (** Total statement nodes (incl. [skip]). *)
  assignments : int;
  branches : int;  (** [if] nodes. *)
  loops : int;  (** [while] nodes. *)
  cobegins : int;
  sync_ops : int;  (** [wait] + [signal] + [send] + [recv] nodes. *)
  max_depth : int;  (** Maximum statement nesting depth. *)
  max_width : int;  (** Largest [cobegin] arity. *)
  expr_nodes : int;  (** Expression AST nodes. *)
}

val of_stmt : Ast.stmt -> t

val of_program : Ast.program -> t

val length : Ast.program -> int
(** [length p] is [statements + expr_nodes] — the "length of the program"
    in the paper's complexity claim. *)

val of_linked : Ast.linked -> t
(** [of_linked l] aggregates metrics over every module body and the main
    program of a linked unit. *)

val interface_size : Ast.linked -> int
(** [interface_size l] is the total number of [provides] + [requires]
    entries — the quantity linked certification cost scales with (module
    bodies, by contrast, contribute only to {!of_linked}). *)

val pp : Format.formatter -> t -> unit
